//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so the workspace
//! vendors a minimal harness with criterion's calling convention:
//! `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with `bench_with_input`, and `Bencher::iter` /
//! `iter_batched`. It measures wall-clock means over a short,
//! time-boxed run — no statistical analysis, outlier detection, or
//! HTML reports.
//!
//! When cargo invokes a `harness = false` bench target during `cargo
//! test` (it passes `--test`), each benchmark runs exactly once as a
//! smoke test so the suite stays fast.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup; all variants behave alike here.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Identifier for a parameterized benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Benchmark named by its parameter value alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }

    /// Benchmark named `function_name/parameter`.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    smoke: bool,
    /// Measured mean time per iteration, filled by `iter*`.
    mean: Duration,
}

const WARMUP_ITERS: u64 = 3;
const TARGET: Duration = Duration::from_millis(40);
const MAX_ITERS: u64 = 100_000;

impl Bencher {
    /// Time `routine`, storing the mean per-iteration wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.smoke {
            std::hint::black_box(routine());
            return;
        }
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(routine());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while iters < MAX_ITERS {
            std::hint::black_box(routine());
            iters += 1;
            if iters.is_multiple_of(16) && start.elapsed() > TARGET {
                break;
            }
        }
        self.mean = start.elapsed() / (iters.max(1) as u32);
    }

    /// Time `routine` over inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.smoke {
            let input = setup();
            std::hint::black_box(routine(input));
            return;
        }
        for _ in 0..WARMUP_ITERS {
            let input = setup();
            std::hint::black_box(routine(input));
        }
        let mut spent = Duration::ZERO;
        let mut iters = 0u64;
        let wall = Instant::now();
        while iters < MAX_ITERS {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            spent += start.elapsed();
            iters += 1;
            if iters.is_multiple_of(16) && wall.elapsed() > TARGET {
                break;
            }
        }
        self.mean = spent / (iters.max(1) as u32);
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn run_one(name: &str, smoke: bool, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { smoke, mean: Duration::ZERO };
    f(&mut b);
    if smoke {
        println!("{name}: smoke ok");
    } else {
        println!("{name:<48} time: {}", fmt_duration(b.mean));
    }
}

/// The benchmark manager; collects and runs benchmark functions.
pub struct Criterion {
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Under `cargo test`, harness=false bench targets are executed
        // with `--test`: run in smoke mode (one iteration each).
        let smoke = std::env::args().any(|a| a == "--test");
        Criterion { smoke }
    }
}

impl Criterion {
    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.smoke, &mut f);
        self
    }

    /// Open a named group of related parameterized benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.to_string() }
    }
}

/// Group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.parent.smoke, &mut |b| f(b, input));
        self
    }

    /// Finish the group (formatting no-op).
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_and_group_run() {
        let mut c = Criterion { smoke: true };
        let mut hits = 0u32;
        c.bench_function("shim/add", |b| b.iter(|| 1u64 + 1));
        let mut g = c.benchmark_group("shim/group");
        g.bench_with_input(BenchmarkId::from_parameter(4u32), &4u32, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
        hits += 1;
        assert_eq!(hits, 1);
    }

    #[test]
    fn iter_batched_consumes_inputs() {
        let mut b = Bencher { smoke: true, mean: Duration::ZERO };
        b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput);
        assert_eq!(b.mean, Duration::ZERO);
    }
}
