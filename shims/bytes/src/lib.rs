//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no registry access, so the workspace
//! vendors the thin slice of the `bytes` API it actually uses: an
//! immutable, cheaply clonable byte container. Backed by `Arc<[u8]>`,
//! which gives the same O(1) clone the real crate provides.

#![forbid(unsafe_code)]

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable chunk of contiguous memory.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates a new empty `Bytes`.
    pub fn new() -> Self {
        Bytes { data: Arc::from(&[][..]) }
    }

    /// Creates `Bytes` from a copy of the given slice.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: Arc::from(data) }
    }

    /// Number of bytes contained.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the container holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_clone() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b, c);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert!(Bytes::new().is_empty());
    }
}
