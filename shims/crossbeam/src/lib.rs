//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::thread::scope` is used by this workspace (the
//! parallel repetition runner). Since Rust 1.63 the standard library
//! provides scoped threads, so this shim is a thin adapter exposing
//! the crossbeam calling convention (`spawn` closures receive the
//! scope, `scope` returns a `Result`) over `std::thread::scope`.

#![forbid(unsafe_code)]

/// Scoped-thread API mirroring `crossbeam::thread`.
pub mod thread {
    /// Result of a scope: `Err` would carry a panic payload; with the
    /// std backend a child panic propagates when the scope joins, so in
    /// practice this is always `Ok`.
    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

    /// A scope for spawning threads that may borrow from the caller.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. As in crossbeam, the
        /// closure receives the scope so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            self.inner.spawn(move || f(&scope))
        }
    }

    /// Creates a scope, runs `f` inside it, and joins all spawned
    /// threads before returning.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join_and_borrow() {
        let data = [1u64, 2, 3, 4];
        let total = crate::thread::scope(|s| {
            let handles: Vec<_> = data
                .iter()
                .map(|&x| s.spawn(move |_| x * 10))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .expect("scope");
        assert_eq!(total, 100);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = crate::thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 7).join().unwrap())
                .join()
                .unwrap()
        })
        .expect("scope");
        assert_eq!(n, 7);
    }
}
