//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace
//! vendors a miniature property-testing engine with the same calling
//! convention as proptest's: `Strategy` values generate inputs from a
//! deterministic RNG, the `proptest!` macro expands to `#[test]`
//! functions that loop over generated cases, and `prop_assert*!`
//! report failures with the offending case index.
//!
//! Differences from the real crate, by design:
//! * no shrinking — the failing input is printed as generated;
//! * the RNG is a fixed-seed splitmix64, so every run of a test binary
//!   sees the identical case sequence (good for a deterministic DES
//!   workspace, and `PROPTEST_SEED` overrides it for exploration);
//! * `.proptest-regressions` files are ignored.

#![forbid(unsafe_code)]

/// Deterministic RNG and test configuration.
pub mod test_runner {
    /// splitmix64 — tiny, fast, and plenty for test-case generation.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Fixed-seed RNG; `PROPTEST_SEED` (a u64) overrides the seed.
        pub fn deterministic() -> Self {
            let seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0x9e37_79b9_7f4a_7c15);
            TestRng { state: seed }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            // Multiply-shift reduction: unbiased enough for test-case
            // generation and avoids modulo bias at large bounds.
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }
    }

    /// Subset of proptest's run configuration.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run each property `cases` times.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed test case; property bodies may `?` these out.
    #[derive(Clone, Debug)]
    pub struct TestCaseError {
        reason: String,
    }

    impl TestCaseError {
        /// Reject the current case with a reason.
        pub fn fail<S: Into<String>>(reason: S) -> Self {
            TestCaseError { reason: reason.into() }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.reason)
        }
    }
}

/// Input-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Keep only values `f` maps to `Some`, retrying the draw
        /// otherwise. `whence` names the filter in the give-up panic.
        fn prop_filter_map<U, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> Option<U>,
        {
            FilterMap { inner: self, f, whence }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy { inner: Box::new(self) }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter_map`].
    pub struct FilterMap<S, F> {
        inner: S,
        f: F,
        whence: &'static str,
    }

    impl<S, F, U> Strategy for FilterMap<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> Option<U>,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            for _ in 0..10_000 {
                if let Some(v) = (self.f)(self.inner.generate(rng)) {
                    return v;
                }
            }
            panic!("prop_filter_map {:?} rejected 10000 draws in a row", self.whence);
        }
    }

    /// Type-erased strategy, used by `prop_oneof!`.
    pub struct BoxedStrategy<V> {
        inner: Box<dyn Strategy<Value = V>>,
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.inner.generate(rng)
        }
    }

    /// Choice between boxed alternatives (`prop_oneof!`), uniform or
    /// weighted (`weight => strategy` arms, as in upstream proptest).
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total_weight: u64,
    }

    impl<V> Union<V> {
        /// Build from the macro's collected arms; at least one required.
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            Union::new_weighted(arms.into_iter().map(|a| (1, a)).collect())
        }

        /// Build from `(weight, strategy)` pairs; weights must not all
        /// be zero.
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total_weight = arms.iter().map(|&(w, _)| u64::from(w)).sum();
            assert!(total_weight > 0, "prop_oneof! weights must not all be zero");
            Union { arms, total_weight }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.below(self.total_weight);
            for (w, arm) in &self.arms {
                let w = u64::from(*w);
                if pick < w {
                    return arm.generate(rng);
                }
                pick -= w;
            }
            unreachable!("pick < total_weight")
        }
    }

    macro_rules! int_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64) - (self.start as u64);
                    self.start + (rng.below(span) as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64) - (lo as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.below(span + 1) as $t)
                }
            }
        )*};
    }
    int_strategies!(u8, u16, u32, u64, usize);

    macro_rules! float_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    // 53 uniform mantissa bits in [0, 1), scaled to span.
                    let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                    self.start + (self.end - self.start) * (u as $t)
                }
            }
        )*};
    }
    float_strategies!(f32, f64);

    macro_rules! tuple_strategies {
        ($(($($s:ident . $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
        (A.0, B.1, C.2, D.3, E.4);
        (A.0, B.1, C.2, D.3, E.4, F.5);
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generate vectors of `element` draws; length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test needs, glob-imported.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced strategy constructors, as in the real prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Expands to `#[test]` functions looping over generated cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic();
                for case in 0..cfg.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    // The immediately-called closure gives `?` a Result
                    // context inside the test body.
                    #[allow(clippy::redundant_closure_call)]
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            Ok(())
                        })();
                    if let Err(e) = outcome {
                        panic!("proptest case {case} failed: {e}");
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// `assert!` under proptest's name.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` under proptest's name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` under proptest's name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice among strategy arms producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($arm))),+
        ])
    };
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic();
        for _ in 0..2000 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let w = (0u8..=255).generate(&mut rng);
            let _ = w; // full-range inclusive must not overflow
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let draw = || {
            let mut rng = crate::test_runner::TestRng::deterministic();
            prop::collection::vec((0u32..100, 0u32..100), 1..50).generate(&mut rng)
        };
        assert_eq!(draw(), draw());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// The macro parses metas, patterns, and multiple args.
        #[test]
        fn macro_round_trip((a, b) in (0u32..50, 0u32..50), extra in 1usize..4) {
            prop_assert!(a < 50 && b < 50);
            prop_assert_ne!(extra, 0);
            let choice = prop_oneof![
                (0u32..10).prop_map(|x| x as u64),
                (100u32..110).prop_map(|x| x as u64),
            ];
            let mut rng = crate::test_runner::TestRng::deterministic();
            let v = choice.generate(&mut rng);
            prop_assert!(v < 10 || (100..110).contains(&v));
        }
    }
}
