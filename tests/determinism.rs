//! Determinism contract of the `simcore::par` pool: thread count is a
//! throughput knob, never a semantics knob. The same fig6 cell grid must
//! produce bit-identical per-cell values at 1 worker and at N workers.

use cluster::experiment::run_seed;
use cluster::{Cluster, ClusterConfig, OsVariant};
use simcore::{par, Cycles};
use workloads::osu::{Collective, OsuConfig};

/// One reduced fig6 cell: a short size sweep for (collective, OS, run).
fn fig6_cell(coll: Collective, os: OsVariant, run: usize) -> Vec<f64> {
    let osu_cfg = OsuConfig {
        warmup: 2,
        iters: 2,
        iter_gap: Cycles::from_us(300),
    };
    let cfg = ClusterConfig::paper(os)
        .with_nodes(4)
        .with_seed(run_seed(0xF166, run));
    let mut cluster = Cluster::build(cfg);
    let mut at = Cycles::from_ms(1);
    coll.message_sizes()
        .into_iter()
        .take(4)
        .map(|bytes| {
            let res = cluster.run_osu(coll, bytes, &osu_cfg, at).expect("fault-free");
            at = res.end + Cycles::from_secs(2);
            res.latencies_us.iter().sum::<f64>() / res.latencies_us.len() as f64
        })
        .collect()
}

fn grid(threads: usize) -> Vec<Vec<f64>> {
    let colls = Collective::all();
    let oses = [OsVariant::LinuxCgroup, OsVariant::McKernel];
    let cells: Vec<(Collective, OsVariant, usize)> = colls
        .iter()
        .flat_map(|&coll| {
            oses.iter()
                .flat_map(move |&os| (0..2).map(move |run| (coll, os, run)))
        })
        .collect();
    par::parallel_map_threads(threads, cells.len(), |ci| {
        let (coll, os, run) = cells[ci];
        fig6_cell(coll, os, run)
    })
}

/// `HLWK_THREADS=1` and `HLWK_THREADS=N` must agree exactly (f64 bit
/// equality, not tolerance): each cell is an isolated simulation whose
/// result depends only on its index, and the pool reduces by index.
#[test]
fn fig6_grid_identical_at_any_thread_count() {
    let serial = grid(1);
    for threads in [2, 4, par::pool_size().max(3)] {
        let parallel = grid(threads);
        assert_eq!(
            serial, parallel,
            "per-cell values diverged at {threads} threads"
        );
    }
}

/// The pool preserves index order even when tasks finish wildly out of
/// order (later indices are much cheaper than early ones).
#[test]
fn unbalanced_tasks_collect_in_index_order() {
    let out = par::parallel_map_threads(4, 64, |i| {
        if i < 4 {
            // Early tasks are ~100x the work of late ones.
            (0..200_000u64).fold(i as u64, |a, x| a.wrapping_add(x * x)) & 0xFFFF_0000
        } else {
            0
        }
        .wrapping_add(i as u64)
    });
    for (i, v) in out.iter().enumerate() {
        assert_eq!(v & 0xFFFF, i as u64 & 0xFFFF);
    }
    assert_eq!(out.len(), 64);
}
