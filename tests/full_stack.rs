//! End-to-end integration of the whole hybrid stack: IHK partitioning,
//! LWK boot, proxy pairing, unified address space, device mapping, IKC
//! delegation, and teardown — asserted through the public APIs only.

use cluster::{node::NodeRuntime, Cluster, ClusterConfig, OsVariant};
use hlwk_core::abi::Sysno;
use hwmodel::pci::DeviceClass;
use simcore::{Cycles, StreamRng};

fn mck_node(seed: u64) -> NodeRuntime {
    let mut cfg = ClusterConfig::paper(OsVariant::McKernel)
        .with_nodes(1)
        .with_seed(seed);
    cfg.horizon_secs = 5;
    NodeRuntime::build(&cfg, 0, &StreamRng::root(seed))
}

#[test]
fn boot_leaves_linux_with_numa0_plus_proxy_core() {
    let node = mck_node(1);
    let ihk = node.ihk.as_ref().expect("IHK manager present");
    assert_eq!(ihk.linux_cores().len(), 11);
    // The LWK partition got 16 GiB of NUMA-1 memory.
    let mck = node.mck.as_ref().expect("LWK booted");
    assert_eq!(mck.alloc.len_bytes(), 16 << 30);
    assert!(mck.alloc.base().raw() >= 32 << 30, "memory from NUMA 1");
}

#[test]
fn offloaded_syscall_round_trip_crosses_every_layer() {
    let mut node = mck_node(2);
    let before_offloads = node.mck.as_ref().unwrap().trace.get("mck.syscall.offloaded");
    let (ret, done) = node.offload_syscall(
        Sysno::GetRandom,
        [node.arena_va.raw(), 512, 0, 0, 0, 0],
        Cycles::from_ms(3),
    );
    assert_eq!(ret, 512);
    assert!(done > Cycles::from_ms(3));
    // LWK counted the offload...
    assert_eq!(
        node.mck.as_ref().unwrap().trace.get("mck.syscall.offloaded"),
        before_offloads + 1
    );
    // ...Linux serviced it...
    assert!(node.linux.trace.get("linux.offload.serviced") >= 1);
    // ...the IKC channels carried request and reply...
    let (sent, received, full) = node.ikc.to_linux.stats();
    assert_eq!(sent, received);
    assert!(sent >= 1);
    assert_eq!(full, 0);
    // ...and the data is really in the application's physical memory.
    let pa = node
        .mck
        .as_ref()
        .unwrap()
        .process(node.app_pid)
        .unwrap()
        .aspace
        .pt
        .translate(node.arena_va)
        .unwrap()
        .phys;
    let mut buf = vec![0u8; 512];
    node.hw.mem.read(pa, &mut buf);
    assert!(buf.iter().any(|&b| b != 0));
}

#[test]
fn unified_address_space_proxy_reads_app_bytes() {
    let mut node = mck_node(3);
    // The app writes a path into its own memory...
    let pa = node
        .mck
        .as_ref()
        .unwrap()
        .process(node.app_pid)
        .unwrap()
        .aspace
        .pt
        .translate(node.arena_va)
        .unwrap()
        .phys;
    node.hw.mem.write(pa, b"/proc/meminfo\0");
    // ...and the proxy dereferences the pointer while servicing open().
    let (fd, _) = node.offload_syscall(
        Sysno::Open,
        [node.arena_va.raw(), 0, 0, 0, 0, 0],
        Cycles::from_ms(5),
    );
    assert!(fd > node.uverbs_fd, "new fd allocated by Linux");
    // Close it again, through the same path.
    let (r, _) = node.offload_syscall(Sysno::Close, [fd as u64, 0, 0, 0, 0, 0], Cycles::from_ms(6));
    assert_eq!(r, 0);
}

#[test]
fn doorbell_page_is_the_real_bar_and_survives_reuse() {
    let node = mck_node(4);
    let bar = node
        .hw
        .device_of_class(DeviceClass::InfinibandHca)
        .unwrap()
        .bars[0];
    let db = node.ib.doorbell_phys.expect("mapped during setup");
    assert!(bar.contains(db));
    // The LWK page table maps it as device memory.
    let proc = node.mck.as_ref().unwrap().process(node.app_pid).unwrap();
    let dev_leaves = proc
        .aspace
        .vm
        .iter()
        .filter(|v| matches!(v.kind, hlwk_core::mck::mem::vm::VmaKind::Device { .. }))
        .count();
    assert_eq!(dev_leaves, 1, "exactly one device mapping (the UAR)");
}

#[test]
fn teardown_restores_pristine_lwk_and_linux() {
    let mut node = mck_node(5);
    node.offload_syscall(
        Sysno::GetRandom,
        [node.arena_va.raw(), 64, 0, 0, 0, 0],
        Cycles::from_ms(1),
    );
    let proxy = node.proxy_pid.unwrap();
    assert!(node.linux.vfs.fd_count(proxy) > 0);
    node.reap_job();
    assert!(node.mck.as_ref().unwrap().is_pristine());
    assert_eq!(node.linux.vfs.fd_count(proxy), 0);
    assert!(node.linux.proxy(proxy).is_none());
}

#[test]
fn cluster_builds_are_deterministic() {
    let build_and_run = |os: OsVariant, seed: u64| {
        let mut cfg = ClusterConfig::paper(os).with_nodes(4).with_seed(seed);
        cfg.insitu = true;
        cfg.horizon_secs = 20;
        let mut c = Cluster::build(cfg);
        let app = workloads::miniapps::MiniApp {
            iterations: 3,
            ..workloads::miniapps::MiniApp::minife()
        };
        c.run_miniapp(&app, Cycles::from_ms(1)).expect("fault-free").raw()
    };
    // Same seed: bit-identical results.
    assert_eq!(
        build_and_run(OsVariant::LinuxCgroup, 42),
        build_and_run(OsVariant::LinuxCgroup, 42)
    );
    // Different seed: the noisy configuration must differ...
    assert_ne!(
        build_and_run(OsVariant::LinuxCgroup, 42),
        build_and_run(OsVariant::LinuxCgroup, 43)
    );
    // ...while a *quiet* McKernel run is seed-independent by construction:
    // an LWK with no noise sources has nothing stochastic in it.
    let quiet = |seed| {
        let cfg = ClusterConfig::paper(OsVariant::McKernel)
            .with_nodes(4)
            .with_seed(seed);
        let mut c = Cluster::build(cfg);
        let app = workloads::miniapps::MiniApp {
            iterations: 3,
            ..workloads::miniapps::MiniApp::minife()
        };
        c.run_miniapp(&app, Cycles::from_ms(1)).expect("fault-free").raw()
    };
    assert_eq!(quiet(42), quiet(43));
}

#[test]
fn every_os_variant_runs_the_same_binary() {
    // "we used the exact same binaries for measurements running on top of
    // Linux and our stack" — the same MiniApp spec runs unmodified on all
    // three variants and produces comparable times.
    let app = workloads::miniapps::MiniApp {
        iterations: 4,
        ..workloads::miniapps::MiniApp::ffvc()
    };
    let mut times = Vec::new();
    for os in OsVariant::all() {
        let cfg = ClusterConfig::paper(os).with_nodes(2).with_seed(9);
        let mut c = Cluster::build(cfg);
        times.push(c.run_miniapp(&app, Cycles::from_ms(1)).expect("fault-free").as_secs_f64());
    }
    let max = times.iter().cloned().fold(0.0, f64::max);
    let min = times.iter().cloned().fold(f64::MAX, f64::min);
    assert!(max / min < 1.10, "same app, same ballpark: {times:?}");
}

#[test]
fn proc_meminfo_shows_linux_view_minus_the_lwk_partition() {
    // The motivating use case from Sec. I: rich Linux APIs (/proc) work
    // from the LWK through delegation — and return *Linux's* view, in
    // which IHK's 16 GiB reservation has vanished from MemTotal.
    let mut node = mck_node(6);
    let pa = node
        .mck
        .as_ref()
        .unwrap()
        .process(node.app_pid)
        .unwrap()
        .aspace
        .pt
        .translate(node.arena_va)
        .unwrap()
        .phys;
    node.hw.mem.write(pa, b"/proc/meminfo\0");
    let (fd, t1) = node.offload_syscall(
        Sysno::Open,
        [node.arena_va.raw(), 0, 0, 0, 0, 0],
        Cycles::from_ms(2),
    );
    assert!(fd >= 0);
    let buf_va = node.arena_va + 0x1000;
    let (n, _) = node.offload_syscall(
        Sysno::Read,
        [fd as u64, buf_va.raw(), 4096, 0, 0, 0],
        t1,
    );
    assert!(n > 0, "read returned {n}");
    // Fetch what the proxy wrote into the app's buffer.
    let pa = node
        .mck
        .as_ref()
        .unwrap()
        .process(node.app_pid)
        .unwrap()
        .aspace
        .pt
        .translate(buf_va)
        .unwrap()
        .phys;
    let mut content = vec![0u8; n as usize];
    node.hw.mem.read(pa, &mut content);
    let text = String::from_utf8(content).expect("procfs is text");
    // 64 GiB node minus the 16 GiB LWK partition = 48 GiB visible.
    let visible_kb = (48u64 << 30) >> 10;
    assert!(
        text.contains(&format!("{visible_kb}")),
        "MemTotal should reflect the reservation; got:\n{text}"
    );
}
