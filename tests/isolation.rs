//! Kernel-level workload isolation, asserted mechanically: nothing the
//! in-situ job does can reach the LWK partition.

use cluster::{node::NodeRuntime, ClusterConfig, OsVariant};
use hwmodel::cpu::CoreId;
use simcore::{Cycles, StreamRng};

fn insitu_node(os: OsVariant, seed: u64) -> NodeRuntime {
    let mut cfg = ClusterConfig::paper(os).with_nodes(1).with_seed(seed);
    cfg.insitu = true;
    cfg.horizon_secs = 30;
    NodeRuntime::build(&cfg, 0, &StreamRng::root(seed))
}

#[test]
fn hadoop_never_lands_on_lwk_cores() {
    let node = insitu_node(OsVariant::McKernel, 1);
    for core in 10..19 {
        assert!(
            !node.linux.occupancy.has_load(CoreId(core)),
            "cpu{core} is IHK-reserved; Linux cannot schedule there"
        );
    }
    // ... but the proxy core is fair game (it belongs to Linux).
    assert!(node.linux.occupancy.has_load(CoreId(19)));
}

#[test]
fn cgroup_only_leaks_hadoop_onto_app_cores() {
    let node = insitu_node(OsVariant::LinuxCgroup, 1);
    let leaked = (10..18).any(|c| node.linux.occupancy.has_load(CoreId(c)));
    assert!(leaked, "cgroups pin the app, not the analytics");
}

#[test]
fn isolcpus_blocks_tasks_but_not_kernel_noise() {
    let mut node = insitu_node(OsVariant::LinuxCgroupIsolcpus, 1);
    for core in 10..18 {
        assert!(!node.linux.occupancy.has_load(CoreId(core)));
    }
    // Kernel noise still reaches the isolated cores: run long enough work
    // there and interruptions appear.
    node.mem_intensity = 0.0;
    let out = node
        .linux
        .execute_on(CoreId(10), Cycles::from_ms(7), Cycles::from_secs(1));
    assert!(
        out.stolen > Cycles::ZERO,
        "isolcpus is NOT noise-free — the paper's central point"
    );
}

#[test]
fn lwk_compute_is_bit_exact_under_full_insitu_pressure() {
    let mut node = insitu_node(OsVariant::McKernel, 2);
    node.mem_intensity = 0.0; // pure ALU: immune even to cache pollution
    let work = Cycles::from_secs(1);
    for k in 0..5 {
        let start = Cycles::from_ms(100 * k + 1);
        let done = node.exec_app_thread(0, start, work);
        assert_eq!(done, start + work, "LWK quantum perturbed at {start}");
    }
}

#[test]
fn memory_pollution_is_the_only_residual_on_mckernel() {
    let mut node = insitu_node(OsVariant::McKernel, 3);
    node.mem_intensity = 0.9; // highly memory-bound
    // Find instants inside and outside busy phases.
    let phases = node.busy_phases.clone();
    assert!(!phases.is_empty(), "in-situ load has phases");
    let inside = phases[0].0 + Cycles(1);
    let work = Cycles::from_ms(10);
    let in_busy = node.exec_app_thread(0, inside, work) - inside;
    // A quiet instant: just before the first phase, or after the last.
    let quiet_at = if phases[0].0 > Cycles::from_ms(20) {
        Cycles::from_ms(1)
    } else {
        phases.last().expect("nonempty").1 + Cycles::from_ms(1)
    };
    let in_quiet = node.exec_app_thread(0, quiet_at, work) - quiet_at;
    assert!(in_busy > in_quiet, "cross-socket bandwidth pressure exists");
    let resid = in_busy.raw() as f64 / in_quiet.raw() as f64 - 1.0;
    assert!(
        resid < 0.05,
        "the residual is small ({resid}) — hardware, not OS"
    );
}

#[test]
fn proxy_core_contention_slows_offloads_only() {
    let mut node = insitu_node(OsVariant::McKernel, 4);
    // Find a busy instant on the proxy core.
    let phases = node.busy_phases.clone();
    let busy_at = phases[0].0.midpoint(phases[0].1);
    let quiet_at = if phases[0].0 > Cycles::from_ms(200) {
        Cycles::from_ms(100)
    } else {
        phases.last().expect("nonempty").1 + Cycles::from_secs(1)
    };
    let reg_quiet: Vec<u64> = (0..8)
        .map(|i| (node.mr_register(quiet_at + Cycles(i * 50_000), 1 << 20)
            - (quiet_at + Cycles(i * 50_000)))
        .raw())
        .collect();
    let reg_busy: Vec<u64> = (0..8)
        .map(|i| (node.mr_register(busy_at + Cycles(i * 50_000), 1 << 20)
            - (busy_at + Cycles(i * 50_000)))
        .raw())
        .collect();
    let avg = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len() as f64;
    assert!(
        avg(&reg_busy) > avg(&reg_quiet),
        "offloads queue behind Hadoop on the proxy core: {} vs {}",
        avg(&reg_busy),
        avg(&reg_quiet)
    );
    // Yet compute on LWK cores at the same busy instant is untouched.
    node.mem_intensity = 0.0;
    let done = node.exec_app_thread(0, busy_at, Cycles::from_ms(50));
    assert_eq!(done, busy_at + Cycles::from_ms(50));
}
