//! Reduced-scale shape checks for every figure of the evaluation — the
//! same code paths the bench binaries drive, small enough for `cargo
//! test`. Each test asserts the *qualitative* claim of its figure.

use cluster::experiment::{parallel_runs, run_seed, RunStats};
use cluster::{Cluster, ClusterConfig, OsVariant};
use simcore::{Cycles, Summary};
use workloads::fwq;
use workloads::miniapps::MiniApp;
use workloads::osu::{Collective, OsuConfig};

fn cluster(os: OsVariant, nodes: u32, insitu: bool, seed: u64) -> Cluster {
    let mut cfg = ClusterConfig::paper(os).with_nodes(nodes).with_seed(seed);
    cfg.insitu = insitu;
    cfg.horizon_secs = 30;
    Cluster::build(cfg)
}

/// Fig. 5: McKernel FWQ is flat with and without Hadoop; Linux is not;
/// cgroup-only under Hadoop is the worst.
#[test]
fn fig5_shape() {
    let quantum = fwq::DEFAULT_QUANTUM;
    let dur = Cycles::from_secs(2);
    let run = |os, insitu, seed| {
        let mut c = cluster(os, 1, insitu, seed);
        let samples = c.fwq(quantum, dur, Cycles::from_us(1));
        let worst = fwq::worst_window(&samples, fwq::WINDOW);
        Summary::from_samples(&worst.iter().map(|&x| x as f64).collect::<Vec<_>>())
    };
    let mck = run(OsVariant::McKernel, false, 1);
    assert_eq!(mck.max, quantum.raw() as f64, "LWK: virtually constant");
    let mck_hadoop = run(OsVariant::McKernel, true, 1);
    assert_eq!(mck_hadoop.max, quantum.raw() as f64, "no disturbance at all");
    let linux = run(OsVariant::LinuxCgroup, false, 1);
    assert!(linux.max > quantum.raw() as f64, "idle Linux still ticks");
    // Worst case under Hadoop across a few seeds: cgroup >> idle Linux.
    let worst_cgroup_hadoop = (1..=4)
        .map(|s| run(OsVariant::LinuxCgroup, true, s).max)
        .fold(0.0f64, f64::max);
    assert!(
        worst_cgroup_hadoop / quantum.raw() as f64 > 6.0,
        "cgroup+Hadoop slowdown {}",
        worst_cgroup_hadoop / quantum.raw() as f64
    );
}

/// Fig. 6: similar averages, lower variation on McKernel.
#[test]
fn fig6_shape() {
    let osu = OsuConfig {
        warmup: 5,
        iters: 6,
        iter_gap: Cycles::from_us(300),
    };
    let sweep = |os| -> Vec<f64> {
        parallel_runs(4, |run| {
            let mut c = cluster(os, 8, false, run_seed(61, run));
            let res = c.run_osu(Collective::Allreduce, 1024, &osu, Cycles::from_ms(1)).expect("fault-free");
            res.latencies_us.iter().sum::<f64>() / res.latencies_us.len() as f64
        })
    };
    let linux = Summary::from_samples(&sweep(OsVariant::LinuxCgroup));
    let mck = Summary::from_samples(&sweep(OsVariant::McKernel));
    // Averages within ~15% of each other.
    assert!((linux.mean / mck.mean - 1.0).abs() < 0.15);
    // McKernel variation no worse than Linux.
    assert!(mck.max_variation_pct() <= linux.max_variation_pct() + 1e-9);
}

/// Fig. 7: under Hadoop, variation ordering cgroup >= isolcpus >= McKernel
/// for small messages; for large reduce McKernel exceeds isolcpus (the
/// registration-offload artifact).
#[test]
fn fig7_shape() {
    let osu = OsuConfig {
        warmup: 5,
        iters: 5,
        iter_gap: Cycles::from_us(300),
    };
    let measure = |os, bytes| {
        let vals = parallel_runs(5, |run| {
            let mut c = cluster(os, 8, true, run_seed(71, run));
            let res = c.run_osu(Collective::Reduce, bytes, &osu, Cycles::from_ms(1)).expect("fault-free");
            res.latencies_us.iter().sum::<f64>() / res.latencies_us.len() as f64
        });
        Summary::from_samples(&vals).max_variation_pct()
    };
    // Small messages: McKernel is the quietest.
    let small_mck = measure(OsVariant::McKernel, 64);
    let small_cgroup = measure(OsVariant::LinuxCgroup, 64);
    assert!(small_mck < small_cgroup, "{small_mck} vs {small_cgroup}");
    // Large reduce: the offloaded-registration artifact makes McKernel's
    // large-message variation jump well above its own small-message noise
    // floor (at full 64-node scale it approaches/exceeds isolcpus; at this
    // reduced scale we assert the robust within-variant signature).
    let large_mck = measure(OsVariant::McKernel, 256 << 10);
    assert!(
        large_mck > 3.0 * small_mck,
        "registration artifact missing: large {large_mck}% vs small {small_mck}%"
    );
}

/// Fig. 8: McKernel outperforms Linux by percent-scale margins on plain
/// runs.
#[test]
fn fig8_shape() {
    let app = MiniApp {
        iterations: 8,
        ..MiniApp::hpccg()
    };
    let run = |os| {
        let mut c = cluster(os, 4, false, 81);
        c.run_miniapp(&app, Cycles::from_ms(1)).expect("fault-free").as_secs_f64()
    };
    let linux = run(OsVariant::LinuxCgroup);
    let mck = run(OsVariant::McKernel);
    let gain = linux / mck - 1.0;
    assert!(
        (0.005..0.10).contains(&gain),
        "McKernel gain {gain} outside the paper's 1-8% band"
    );
}

/// Fig. 9: variation ordering under Hadoop across repeated runs.
#[test]
fn fig9_shape() {
    let app = MiniApp {
        iterations: 25,
        ..MiniApp::ffvc()
    };
    let measure = |os| {
        let vals = parallel_runs(6, |run| {
            let mut c = cluster(os, 2, true, run_seed(91, run));
            c.run_miniapp(&app, Cycles::from_ms(1)).expect("fault-free").as_secs_f64()
        });
        RunStats::new(vals).max_variation_pct()
    };
    let cgroup = measure(OsVariant::LinuxCgroup);
    let iso = measure(OsVariant::LinuxCgroupIsolcpus);
    let mck = measure(OsVariant::McKernel);
    assert!(
        cgroup > iso && iso > mck,
        "isolation ordering violated: cgroup {cgroup}% isolcpus {iso}% mck {mck}%"
    );
    assert!(mck < 10.0, "McKernel stays percent-scale: {mck}%");
}
