//! Fault-injection integration tests: determinism of the fault schedule
//! under a fixed seed, recovery of the offload path under loss and
//! corruption, and liveness under proxy death (bounded -EIO, full
//! partition reclamation, no hangs).

use cluster::{node::NodeRuntime, ClusterConfig, OsVariant};
use hlwk_core::abi::{Errno, Sysno};
use hwmodel::cpu::{CoreId, NumaId};
use simcore::fault::FaultConfig;
use simcore::{Cycles, StreamRng};

const EIO: i64 = -(Errno::EIO as i64);

fn mck_node(seed: u64, faults: FaultConfig) -> NodeRuntime {
    let mut cfg = ClusterConfig::paper(OsVariant::McKernel)
        .with_nodes(1)
        .with_seed(seed)
        .with_faults(faults);
    cfg.horizon_secs = 5;
    NodeRuntime::build(&cfg, 0, &StreamRng::root(seed))
}

/// Drive a fixed offload workload; returns (rets, completion instants).
fn run_workload(node: &mut NodeRuntime, count: u64) -> (Vec<i64>, Vec<Cycles>) {
    let mut rets = Vec::new();
    let mut dones = Vec::new();
    let mut at = Cycles::from_ms(1);
    for i in 0..count {
        let len = 64 + (i % 4) * 64;
        let (ret, done) =
            node.offload_syscall(Sysno::GetRandom, [node.arena_va.raw(), len, 0, 0, 0, 0], at);
        rets.push(ret);
        dones.push(done);
        at = done + Cycles::from_us(10);
    }
    (rets, dones)
}

/// Same seed, same config, run twice: the fault schedule (what was
/// injected, when, on which leg), the retry counts, and every result and
/// completion instant must be byte-identical.
#[test]
fn fault_schedule_is_deterministic() {
    let cfg = FaultConfig::message_loss(0.15)
        .with_corruption(0.1)
        .with_delay(0.2, 5_000.0);
    let mut a = mck_node(0xFA_17, cfg);
    let mut b = mck_node(0xFA_17, cfg);
    let (rets_a, dones_a) = run_workload(&mut a, 40);
    let (rets_b, dones_b) = run_workload(&mut b, 40);
    assert_eq!(rets_a, rets_b);
    assert_eq!(dones_a, dones_b);
    assert_eq!(a.faults.fingerprint(), b.faults.fingerprint());
    assert_eq!(a.faults.counts(), b.faults.counts());
    assert_eq!(a.offload_retries, b.offload_retries);
    assert_eq!(a.nacks, b.nacks);
    assert!(
        !a.faults.log().is_empty(),
        "at those rates the plan must have fired"
    );
    // A different seed produces a different schedule (the plan draws from
    // its own stream, not a shared one).
    let mut c = mck_node(0xFA_18, cfg);
    let _ = run_workload(&mut c, 40);
    assert_ne!(a.faults.fingerprint(), c.faults.fingerprint());
}

/// With the plan disabled nothing is drawn and nothing is logged — the
/// fault-free path stays bit-identical to the seed behavior.
#[test]
fn disabled_plan_is_inert() {
    let mut n = mck_node(7, FaultConfig::off());
    let (rets, _) = run_workload(&mut n, 10);
    assert!(rets.iter().all(|&r| r > 0));
    assert!(n.faults.log().is_empty());
    assert_eq!(n.offload_retries, 0);
    assert_eq!(n.nacks, 0);
    assert_eq!(n.offload_eio, 0);
}

/// Message loss and corruption are masked by timeouts, NACKs and
/// retransmission: every offload still returns the right result, and the
/// dedup machinery guarantees none executed twice.
#[test]
fn loss_and_corruption_are_recovered() {
    let cfg = FaultConfig::message_loss(0.2).with_corruption(0.15);
    let mut n = mck_node(99, cfg);
    // A generous retry budget: with ~54% per-attempt failure here, the
    // default 8 attempts would occasionally exhaust (which is the correct
    // degradation — but this test is about full recovery).
    n.retry.max_attempts = 24;
    let before = n.linux.trace.get("linux.offload.serviced");
    let (rets, _) = run_workload(&mut n, 30);
    for (i, ret) in rets.iter().enumerate() {
        let expected = 64 + (i as i64 % 4) * 64;
        assert_eq!(*ret, expected, "offload {i} must survive the faults");
    }
    assert!(n.offload_retries > 0, "at 20% loss retries must happen");
    let (drops, corruptions, ..) = n.faults.counts();
    assert!(drops + corruptions > 0);
    // Dedup: each of the 30 getrandom calls was serviced exactly once —
    // retransmits were answered from the completed cache, never re-run.
    let serviced = n.linux.trace.get("linux.offload.serviced") - before;
    assert_eq!(serviced, 30, "no duplicate execution under retransmission");
}

/// Proxy death: stranded offloads come back as -EIO within the heartbeat
/// detection bound, nothing hangs, and the partition (cores, memory,
/// tracking objects) is fully reclaimed — reusable immediately.
#[test]
fn proxy_death_liveness_and_reclamation() {
    // The crash fires on the first steady-state offload.
    let mut n = mck_node(5, FaultConfig::off().with_proxy_crash_at(1));
    let at = Cycles::from_ms(1);
    let (ret, done) = n.offload_syscall(Sysno::GetRandom, [n.arena_va.raw(), 64, 0, 0, 0, 0], at);
    assert_eq!(ret, EIO, "stranded offload fails with -EIO, not a hang");
    let hb_bound = Cycles::from_us(300); // paper_default: 100us x 3 misses
    assert!(
        done - at <= hb_bound + Cycles::from_us(100),
        "detection + recovery within the heartbeat bound: took {}",
        done - at
    );
    // The LWK application was SIGKILLed and the partition reclaimed.
    assert!(!n.proxy_alive);
    assert!(n.mck.is_none(), "LWK instance torn down");
    assert!(n.proxy_pid.is_none());
    let ihk = n.ihk.as_mut().expect("manager survives");
    assert_eq!(
        ihk.linux_cores().len(),
        20,
        "all cores returned to Linux (9 LWK + proxy + 10 NUMA-0)"
    );
    assert_eq!(n.linux.delegator.tracking_count(), 0, "tracking reclaimed");
    assert_eq!(n.linux.delegator.in_flight(), 0, "no stranded requests");
    // Memory came back too: the same partition can be created again.
    let again = ihk.create_os(
        &mut n.hw.mem,
        &(10..19).map(CoreId).collect::<Vec<_>>(),
        NumaId(1),
        16 << 30,
    );
    assert!(again.is_ok(), "partition is immediately reusable: {again:?}");
    // Subsequent offloads fast-fail instead of touching dead machinery.
    let (ret2, done2) =
        n.offload_syscall(Sysno::GetRandom, [n.arena_va.raw(), 64, 0, 0, 0, 0], done);
    assert_eq!(ret2, EIO);
    assert!(done2 - done < Cycles::from_us(1), "fast fail, no timeout wait");
    assert_eq!(n.offload_eio, 2);
}

/// External injection entry point: killing the proxy mid-burst answers
/// every in-flight request and leaves the node in the same safe state.
#[test]
fn injected_proxy_death_reports_stranded_requests() {
    let mut n = mck_node(11, FaultConfig::off());
    let (rets, dones) = run_workload(&mut n, 3);
    assert!(rets.iter().all(|&r| r > 0));
    let stranded = n
        .inject_proxy_death(dones[2] + Cycles::from_us(5))
        .expect("first injection succeeds");
    assert_eq!(stranded, 0, "synchronous workload leaves nothing in flight");
    assert!(!n.proxy_alive);
    // Idempotent: a second injection is a no-op.
    assert_eq!(n.inject_proxy_death(Cycles::from_ms(50)), None);
}

/// Back-pressure (queue-full) and delegator stalls delay but never lose
/// offloads.
#[test]
fn backpressure_and_stalls_only_delay() {
    let cfg = FaultConfig::off()
        .with_backpressure(0.2, 2)
        .with_stalls(0.3, 20_000.0);
    let mut n = mck_node(23, cfg);
    let (rets, _) = run_workload(&mut n, 20);
    for (i, ret) in rets.iter().enumerate() {
        let expected = 64 + (i as i64 % 4) * 64;
        assert_eq!(*ret, expected);
    }
    let (_, _, _, queue_fulls, stalls, _) = n.faults.counts();
    assert!(queue_fulls + stalls > 0, "the knobs must have fired");
}
