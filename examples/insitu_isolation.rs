//! Performance isolation under an in-situ workload — a miniature Fig. 9.
//!
//! ```text
//! cargo run --release --example insitu_isolation
//! ```
//!
//! Runs a shortened HPC-CG on 4 nodes while a Hadoop-like analytics job
//! hammers the same machines, under each of the paper's three isolation
//! strategies, several seeds each.

use cluster::{Cluster, ClusterConfig, OsVariant};
use simcore::{Cycles, Summary};
use workloads::miniapps::MiniApp;

fn main() {
    println!("=== In-situ isolation shoot-out (HPC-CG, 4 nodes, Hadoop co-located) ===\n");
    let app = MiniApp {
        iterations: 30,
        ..MiniApp::hpccg()
    };
    // Quiet baseline.
    let baseline = {
        let cfg = ClusterConfig::paper(OsVariant::McKernel).with_nodes(4).with_seed(1);
        Cluster::build(cfg)
            .run_miniapp(&app, Cycles::from_ms(1)).expect("fault-free")
            .as_secs_f64()
    };
    println!("quiet-system baseline: {baseline:.2}s\n");
    println!(
        "{:<24} {:>9} {:>9} {:>11} {:>10}",
        "configuration", "mean(s)", "worst(s)", "variation", "vs quiet"
    );
    for os in OsVariant::all() {
        let times: Vec<f64> = (0..6)
            .map(|seed| {
                let cfg = ClusterConfig::paper(os)
                    .with_nodes(4)
                    .with_insitu()
                    .with_seed(100 + seed);
                Cluster::build(cfg)
                    .run_miniapp(&app, Cycles::from_ms(1)).expect("fault-free")
                    .as_secs_f64()
            })
            .collect();
        let s = Summary::from_samples(&times);
        println!(
            "{:<24} {:>9.2} {:>9.2} {:>10.1}% {:>9.2}x",
            os.label(),
            s.mean,
            s.max,
            s.max_variation_pct(),
            s.max / baseline
        );
    }
    println!("\ncgroups pin the app but not the analytics; isolcpus fences the CPUS");
    println!("but not interrupts or memory traffic; the LWK partition fences all");
    println!("three (CPUs by IHK, memory by reservation, and it has no IRQs).");
}
