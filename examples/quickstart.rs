//! Quickstart: boot the hybrid stack on one node and watch it work.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the whole IHK/McKernel lifecycle on a simulated paper-testbed
//! node: dynamic partitioning, LWK boot, proxy spawn, an offloaded
//! syscall crossing the unified address space, and the noise difference
//! between a Linux core and an LWK core.

use cluster::{node::NodeRuntime, Cluster, ClusterConfig, OsVariant};
use hlwk_core::abi::Sysno;
use simcore::{Cycles, StreamRng};
use workloads::fwq;

fn main() {
    println!("=== IHK/McKernel quickstart ===\n");

    // 1. Build a paper-testbed node running the hybrid stack. This is not
    //    a stub: IHK reserves 9 NUMA-1 cores + 16 GiB, boots McKernel,
    //    spawns the proxy on core 19, offloads open("/dev/infiniband/
    //    uverbs0") through IKC, and maps the HCA doorbell page via the
    //    Fig. 4 device-mapping flow.
    let cfg = ClusterConfig::paper(OsVariant::McKernel).with_nodes(1).with_seed(7);
    let mut node = NodeRuntime::build(&cfg, 0, &StreamRng::root(cfg.seed));
    println!("LWK booted on cores {:?}", cfg.lwk_cores());
    println!("proxy process pid {:?} on {}", node.proxy_pid, cfg.proxy_core());
    println!("uverbs fd (lives in Linux)   = {}", node.uverbs_fd);
    println!("doorbell page physical addr  = {:?}", node.ib.doorbell_phys);

    // 2. A performance-sensitive syscall stays on the LWK...
    let t0 = Cycles::from_ms(1);
    let (pid, t1) = node.offload_syscall(Sysno::Getpid, [0; 6], t0);
    println!("\ngetpid() -> {pid} in {} (handled in McKernel)", t1 - t0);

    // 3. ...while getrandom() offloads: marshalled over IKC, the proxy
    //    writes the result INTO APPLICATION MEMORY through the unified
    //    address space.
    let (n, t2) = node.offload_syscall(
        Sysno::GetRandom,
        [node.arena_va.raw(), 128, 0, 0, 0, 0],
        t1,
    );
    println!(
        "getrandom(app buffer, 128) -> {n} bytes in {} (offloaded to Linux)",
        t2 - t1
    );
    let stats = node
        .linux
        .proxy(node.proxy_pid.expect("proxy spawned"))
        .expect("registered")
        .uas
        .stats();
    println!("unified address space: {} faults, {} cached hits", stats.0, stats.1);

    // 4. The punchline: the same fixed work quantum on each kernel.
    println!("\nFWQ noise probe (4000-cycle quanta, 100 ms):");
    for os in [OsVariant::LinuxCgroup, OsVariant::McKernel] {
        let cfg = ClusterConfig::paper(os).with_nodes(1).with_seed(7);
        let mut cluster = Cluster::build(cfg);
        let samples = cluster.fwq(
            fwq::DEFAULT_QUANTUM,
            Cycles::from_ms(100),
            Cycles::from_us(1),
        );
        let max = *samples.iter().max().expect("samples");
        let noisy = samples.iter().filter(|&&s| s > 4000).count();
        println!(
            "  {:<22} worst sample {:>6} cycles, {} of {} samples disturbed",
            os.label(),
            max,
            noisy,
            samples.len()
        );
    }
    println!("\nMcKernel's quiet is structural: no timer tick, no kernel threads,");
    println!("cooperative scheduling — there is simply nothing to interrupt the app.");
}
