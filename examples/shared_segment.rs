//! Simulation → in-situ hand-off over a shared memory segment.
//!
//! ```text
//! cargo run --release --example shared_segment
//! ```
//!
//! The paper's co-location story assumes "a straightforward shared memory
//! segment would be sufficient" for the simulation (on McKernel) to feed
//! the in-situ analytics (on Linux). This example builds that pipe: a
//! producer process on the LWK writes time-step output into a segment;
//! a second LWK process (a coupled solver) and a Linux-side reader (the
//! analytics job, going by physical address like a DMA consumer) both see
//! the bytes — with zero copies and zero system calls on the fast path.

use cluster::{node::NodeRuntime, ClusterConfig, OsVariant};
use simcore::StreamRng;

fn main() {
    println!("=== shared-memory in-situ hand-off ===\n");
    let cfg = ClusterConfig::paper(OsVariant::McKernel).with_nodes(1).with_seed(3);
    let mut node = NodeRuntime::build(&cfg, 0, &StreamRng::root(cfg.seed));
    let mck = node.mck.as_mut().expect("LWK booted");

    // The simulation process (already running) creates a 4 MiB segment.
    let sim_pid = node.app_pid;
    let (shm, sim_va) = mck
        .shm_create_attach(sim_pid, 4 << 20)
        .expect("partition has room");
    println!("simulation {sim_pid:?} created segment {shm:?}, mapped at {sim_va}");

    // A second LWK process (say, a coupled solver) attaches.
    let solver_pid = mck.create_process(None);
    let solver_va = mck.shm_attach(solver_pid, shm).expect("attach");
    println!("solver     {solver_pid:?} attached at {solver_va}");

    // The simulation writes a time step (through its own translation —
    // plain stores, 2 MiB pages).
    let payload = b"step=42 residual=1.2e-9 cells=16777216";
    let pa = mck
        .process(sim_pid)
        .expect("alive")
        .aspace
        .pt
        .translate(sim_va)
        .expect("eagerly mapped")
        .phys;
    node.hw.mem.write(pa, payload);
    println!("\nsimulation wrote: {}", String::from_utf8_lossy(payload));

    // The solver reads the same bytes through its own mapping.
    let pb = mck
        .process(solver_pid)
        .expect("alive")
        .aspace
        .pt
        .translate(solver_va)
        .expect("eagerly mapped")
        .phys;
    let mut buf = vec![0u8; payload.len()];
    node.hw.mem.read(pb, &mut buf);
    println!("solver read:      {}", String::from_utf8_lossy(&buf));
    assert_eq!(buf, payload);

    // The Linux-side analytics consumer resolves segment offsets to
    // physical addresses (the cross-kernel view — no LWK involvement).
    let seg = mck.shm_segment(shm).expect("live");
    let p_linux = seg.phys_at(0).expect("offset 0");
    let mut buf2 = vec![0u8; payload.len()];
    node.hw.mem.read(p_linux, &mut buf2);
    println!("analytics read:   {}", String::from_utf8_lossy(&buf2));
    assert_eq!(buf2, payload);

    println!("\nsame physical bytes, three views, no copies — and because the");
    println!("segment is 2 MiB-contiguous LWK memory, the analytics side can");
    println!("DMA from it while the LWK cores stay perfectly quiet.");
}
