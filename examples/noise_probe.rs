//! FWQ noise probe with an ASCII rendering of the paper's Fig. 5.
//!
//! ```text
//! cargo run --release --example noise_probe
//! ```

use cluster::{Cluster, ClusterConfig, OsVariant};
use simcore::Cycles;
use workloads::fwq;

fn sparkline(samples: &[u64], quantum: u64) -> String {
    const GLYPHS: [char; 7] = [' ', '.', ':', '+', '*', '#', '@'];
    // Bucket 480 samples into 96 columns, plot the max of each bucket as
    // a slowdown factor.
    let cols = 96;
    let per = samples.len().div_ceil(cols);
    samples
        .chunks(per)
        .map(|c| {
            let worst = *c.iter().max().expect("nonempty") as f64 / quantum as f64;
            let idx = match worst {
                w if w < 1.05 => 0,
                w if w < 1.5 => 1,
                w if w < 2.5 => 2,
                w if w < 4.0 => 3,
                w if w < 8.0 => 4,
                w if w < 12.0 => 5,
                _ => 6,
            };
            GLYPHS[idx]
        })
        .collect()
}

fn main() {
    println!("=== FWQ worst-window, rendered (each column = 5 samples, height = slowdown) ===\n");
    let quantum = fwq::DEFAULT_QUANTUM;
    let configs = [
        ("Linux+cgroup", OsVariant::LinuxCgroup, false),
        ("McKernel", OsVariant::McKernel, false),
        ("Linux+cgroup + Hadoop", OsVariant::LinuxCgroup, true),
        ("Linux+isolcpus + Hadoop", OsVariant::LinuxCgroupIsolcpus, true),
        ("McKernel + Hadoop", OsVariant::McKernel, true),
    ];
    for (label, os, insitu) in configs {
        let mut cfg = ClusterConfig::paper(os).with_nodes(1).with_seed(0xBEEF);
        cfg.insitu = insitu;
        cfg.horizon_secs = 8;
        let mut cluster = Cluster::build(cfg);
        let samples = cluster.fwq(quantum, Cycles::from_secs(6), Cycles::from_us(1));
        let worst = fwq::worst_window(&samples, fwq::WINDOW);
        println!("{label:>24} |{}|", sparkline(worst, quantum.raw()));
    }
    println!("\nlegend: ' ' flat  '.' <1.5x  ':' <2.5x  '+' <4x  '*' <8x  '#' <12x  '@' >=12x");
}
