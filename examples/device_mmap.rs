//! The eleven-step device-file mapping flow (paper Fig. 4), narrated.
//!
//! ```text
//! cargo run --release --example device_mmap
//! ```
//!
//! Shows how an application on McKernel memory-maps an InfiniBand HCA's
//! doorbell page with zero driver code in the LWK — the paper's central
//! "device driver transparency" mechanism.

use hlwk_core::abi::Pid;
use hlwk_core::costs::CostModel;
use hlwk_core::ihk::delegator::Delegator;
use hlwk_core::mck::McKernel;
use hlwk_core::proxy::{devmap, ProxyProcess};
use hwmodel::addr::PhysAddr;
use hwmodel::cpu::CoreId;
use hwmodel::node::{NodeId, NodeSpec};
use hwmodel::pci::DeviceClass;

fn main() {
    println!("=== Fig. 4: mapping device files in McKernel ===\n");

    // Substrate: a testbed node with a Connect-IB HCA on the PCI bus.
    let hw = NodeSpec::paper_testbed().build(NodeId(0));
    let dev = hw
        .device_of_class(DeviceClass::InfinibandHca)
        .expect("testbed has an HCA")
        .clone();
    println!(
        "device {} at PCI {}, BAR0 {} (+{} KiB)",
        dev.dev_name, dev.address, dev.bars[0].base, dev.bars[0].size >> 10
    );

    // The three actors.
    let mut mck = McKernel::boot(
        (10..19).map(CoreId).collect(),
        PhysAddr(1 << 30),
        64 << 20,
        CostModel::default(),
    );
    let app = mck.create_process(Some(Pid(500)));
    let mut proxy = ProxyProcess::new(Pid(500), app);
    let mut delegator = Delegator::new();
    println!("app {app:?} on McKernel, proxy pid500 on Linux (image at {})", proxy.image_base);

    // Steps 1-5: mmap() of the device file.
    println!("\n-- setup: steps 1-5 --");
    println!(" 1  app calls mmap(\"/dev/{}\", 8 KiB)", dev.dev_name);
    println!(" 2  McKernel forwards the request over IKC");
    let map = devmap::device_mmap(&mut mck, app, &mut proxy, &mut delegator, &dev, 0, 0, 8192)
        .expect("UAR maps");
    println!(" 3  Linux vm_mmap()s the device into the proxy at {}", map.proxy_va);
    println!("    and creates tracking object #{}", map.tracking);
    println!(" 4  Linux replies over IKC");
    println!(" 5  McKernel allocates the app's own range at {}", map.lwk_va);
    println!("    (different addresses — the proxy never touches its copy;");
    println!("     its view of app memory is the unified-AS pseudo mapping)");
    println!("    modeled setup cost: {}", map.cost);

    // Steps 6-11: first access.
    println!("\n-- fault: steps 6-11 --");
    println!(" 6  app stores to {} (a doorbell ring)", map.lwk_va);
    println!(" 7  page fault on the LWK");
    println!(" 8  McKernel sends a PFN request for tracking #{}", map.tracking);
    let (phys, cost) =
        devmap::device_fault(&mut mck, app, &mut delegator, map.lwk_va).expect("resolves");
    println!(" 9  Linux resolves via the tracking object");
    println!("10  reply carries physical address {phys}");
    println!("11  McKernel fills its PTE (cost {cost})");

    // Aftermath: plain user-space stores.
    let t = mck
        .process(app)
        .expect("alive")
        .aspace
        .pt
        .translate(map.lwk_va)
        .expect("mapped");
    println!("\ntranslation installed: {} -> {} (device, write-enabled: {})", map.lwk_va, t.phys, t.flags.write);
    let (_, refault) = devmap::device_fault(&mut mck, app, &mut delegator, map.lwk_va)
        .expect("still mapped");
    println!("subsequent accesses: {refault} extra cost — pure user-space load/store,");
    println!("\"carried out entirely in user-space\" with no Linux code on LWK cores.");
}
