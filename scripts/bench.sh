#!/usr/bin/env bash
# Perf-baseline benchmark driver. Run from the repo root.
#
#   scripts/bench.sh              # full run, rewrites BENCH_offload.json,
#                                 # BENCH_engine.json, BENCH_mem.json,
#                                 # BENCH_resilience.json and
#                                 # BENCH_serve.json
#   scripts/bench.sh --check      # compare fresh runs against the
#                                 # committed baselines (2x tolerance for
#                                 # the wall-clock benches; exact for the
#                                 # simulated-time fig_domains metrics),
#                                 # exit non-zero on regression
#
# Knobs (environment):
#   HLWK_BENCH_ITERS  iterations per metric (default 20000)
#   HLWK_BENCH_OUT    output path override (single-binary runs only)
#   HLWK_THREADS      worker count for the pool half of fig_engine
#
# The metrics are host wall-clock nanoseconds (NOT modeled cycles):
# fig_offload_hotpath covers the offload round trip, software-TLB
# translate hit/miss, and an IKC send+recv pair; fig_bypass sweeps the
# in-LWK promoted syscalls across {offload, bypass, bypass+domains},
# the zero-copy device mmap, and the MPK-style domain switch, merging
# bypass_* metrics into BENCH_offload.json (run after
# fig_offload_hotpath, which rewrites that file); fig_engine covers the
# timer-wheel event queue (vs. the retired heap baseline) and the
# simcore::par pool (reduced fig6, serial vs. full pool); fig_mem covers
# the flat O(1) buddy allocator (vs. the retired BTreeSet baseline), a
# fragmentation sweep, and a first-touch fault storm with PCP hit rate.
# fig_scale covers the partitioned engine: 1024/4096-node windowed BSP
# sweeps, merging intra-run speedup metrics (scale_*_speedup_x) into
# BENCH_engine.json — it must run after fig_engine, which rewrites that
# file wholesale. fig_scale_app replays the *real* mini-app (HPC-CG via
# the full collectives layer) at 1024/4096 nodes on the partitioned
# engine, merging app_scale_* metrics the same way (also after
# fig_engine). fig_domains is the exception: its metrics are
# *simulated* time
# (failure-domain recovery sweep), deterministic across machines, so its
# --check demands an exact match against BENCH_resilience.json.
# fig_serve is simulated time too (elastic-tenancy serving sweep: SLO
# shrink/grow, overload shedding, the 100+-cycle resize storm); its
# --check demands an exact match against BENCH_serve.json.
# See EXPERIMENTS.md for how to read and update them.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p bench \
    --bin fig_offload_hotpath --bin fig_bypass --bin fig_engine \
    --bin fig_mem --bin fig_domains --bin fig_scale --bin fig_scale_app \
    --bin fig_serve

if [[ "${1:-}" == "--check" ]]; then
    ./target/release/fig_offload_hotpath --check BENCH_offload.json
    # fig_bypass gates the syscall fast path: bypass_* metrics within
    # 2x of the baseline AND the promoted read >= 3x cheaper than the
    # offload round trip with protection domains armed.
    ./target/release/fig_bypass --check BENCH_offload.json
    ./target/release/fig_engine --check BENCH_engine.json
    # fig_scale gates determinism everywhere, the intra-run speedup floor
    # only on hosts with >1 pool worker (the ratio is noise on one core).
    ./target/release/fig_scale --check BENCH_engine.json
    # fig_scale_app replays the real 1024-node mini-app: digest
    # invariance across worker counts, walk-verified, pool-gated floor.
    ./target/release/fig_scale_app --check
    ./target/release/fig_mem --check BENCH_mem.json
    ./target/release/fig_domains --check BENCH_resilience.json
    # fig_serve: simulated-time elastic-tenancy metrics, exact match.
    exec ./target/release/fig_serve --check BENCH_serve.json
fi
./target/release/fig_offload_hotpath
# Order matters: fig_offload_hotpath rewrites BENCH_offload.json
# wholesale, fig_bypass then merges its bypass_* / devmap / domain
# metrics into the fresh file (same pattern as fig_engine/fig_scale).
./target/release/fig_bypass
./target/release/fig_engine
./target/release/fig_scale
./target/release/fig_scale_app
./target/release/fig_mem
./target/release/fig_domains
exec ./target/release/fig_serve
