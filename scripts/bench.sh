#!/usr/bin/env bash
# Offload hot-path benchmark driver. Run from the repo root.
#
#   scripts/bench.sh              # full run, rewrites BENCH_offload.json
#   scripts/bench.sh --check      # compare a fresh run against the
#                                 # committed baseline (2x tolerance),
#                                 # exit non-zero on regression
#
# Knobs (environment):
#   HLWK_BENCH_ITERS  iterations per metric (default 20000)
#   HLWK_BENCH_OUT    output path (default BENCH_offload.json)
#
# The metrics are host wall-clock nanoseconds (NOT modeled cycles): the
# offload round trip, software-TLB translate hit/miss, and an IKC
# send+recv pair. See EXPERIMENTS.md for how to read and update them.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p bench --bin fig_offload_hotpath

if [[ "${1:-}" == "--check" ]]; then
    exec ./target/release/fig_offload_hotpath --check BENCH_offload.json
fi
exec ./target/release/fig_offload_hotpath
