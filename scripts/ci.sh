#!/usr/bin/env bash
# Tier-1 gate: build, test, lint, parallel-determinism smoke. Run from
# the repo root.
#
#   scripts/ci.sh                 # build + test + clippy + determinism
#   scripts/ci.sh --bench-smoke   # also run the offload hot-path,
#                                 # event-engine and memory benches (few
#                                 # iterations) and fail on a >2x
#                                 # regression against BENCH_offload.json
#                                 # / BENCH_engine.json / BENCH_mem.json,
#                                 # plus the exact-match failure-domain
#                                 # check against BENCH_resilience.json,
#                                 # plus the fig_scale partitioned-engine
#                                 # gate (digest invariance + speedup
#                                 # floor + blackout soak) and the
#                                 # fig_scale_app real-mini-app replay
#                                 # gate (1024 nodes, walk-verified),
#                                 # and the fig_serve elastic-tenancy
#                                 # gate (exact match vs BENCH_serve.json
#                                 # at full knobs, 100+ resize cycles)
#   scripts/ci.sh --soak          # also soak the resilience sweeps:
#                                 # HLWK_SOAK_SEEDS (default 5) fresh
#                                 # seeds through fig_resilience (5% loss
#                                 # + node crash), fig_domains (rack
#                                 # kills + fault storm) and the
#                                 # fig_serve resize storm, each run
#                                 # under a wall-clock timeout — a hang
#                                 # or claim violation on ANY seed fails
set -euo pipefail
cd "$(dirname "$0")/.."

# Scratch space: a private mktemp dir instead of fixed /tmp names, so
# concurrent CI runs on one machine cannot clobber each other's files.
scratch="$(mktemp -d "${TMPDIR:-/tmp}/hlwk-ci.XXXXXX")"
trap 'rm -rf "$scratch"' EXIT

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings

# Parallel-determinism smoke: thread count must never change figure
# output. Run a reduced fig6 sweep serial and parallel, diff stdout.
reduced="HLWK_RUNS=2 HLWK_NODES=4 HLWK_OSU_ITERS=2"
env $reduced HLWK_THREADS=1 ./target/release/fig6_osu_latency > "$scratch/fig6_t1.txt"
env $reduced HLWK_THREADS=4 ./target/release/fig6_osu_latency > "$scratch/fig6_tn.txt"
if ! diff -q "$scratch/fig6_t1.txt" "$scratch/fig6_tn.txt" >/dev/null; then
    echo "DETERMINISM FAILURE: fig6 output differs between 1 and 4 threads" >&2
    diff "$scratch/fig6_t1.txt" "$scratch/fig6_tn.txt" >&2 || true
    exit 1
fi
echo "parallel-determinism smoke passed (fig6 @ 1 thread == 4 threads)"

# Bypass-determinism smoke: the offload-bypass machinery must be
# invisible to modeled time unless a call is actually promoted. Figure
# output must be byte-identical with the bypass unset (the default,
# already captured above), explicitly off, and armed-but-cold
# (enabled with an infinite promotion threshold: every check runs,
# nothing promotes).
env $reduced HLWK_THREADS=1 HLWK_BYPASS=off \
    ./target/release/fig6_osu_latency > "$scratch/fig6_off.txt"
env $reduced HLWK_THREADS=1 HLWK_BYPASS=on-but-cold \
    ./target/release/fig6_osu_latency > "$scratch/fig6_cold.txt"
env HLWK_FWQ_SECS=1 HLWK_BYPASS=off \
    ./target/release/fig5_fwq > "$scratch/fig5_off.txt"
env HLWK_FWQ_SECS=1 HLWK_BYPASS=on-but-cold \
    ./target/release/fig5_fwq > "$scratch/fig5_cold.txt"
for pair in "fig6_t1 fig6_off" "fig6_t1 fig6_cold" "fig5_off fig5_cold"; do
    a="${pair% *}"
    b="${pair#* }"
    if ! diff -q "$scratch/$a.txt" "$scratch/$b.txt" >/dev/null; then
        echo "DETERMINISM FAILURE: $a differs from $b (bypass must not change figures)" >&2
        diff "$scratch/$a.txt" "$scratch/$b.txt" >&2 || true
        exit 1
    fi
done
echo "bypass-determinism smoke passed (fig5/fig6 byte-identical: default == off == armed-but-cold)"

# Memory-subsystem determinism smoke: the page-size ablation exercises
# the buddy/PCP/fault-around paths end to end; its figure output must be
# thread-count independent too.
env HLWK_THREADS=1 ./target/release/fig_ablation_pagesize > "$scratch/pgsz_t1.txt"
env HLWK_THREADS=4 ./target/release/fig_ablation_pagesize > "$scratch/pgsz_tn.txt"
if ! diff -q "$scratch/pgsz_t1.txt" "$scratch/pgsz_tn.txt" >/dev/null; then
    echo "DETERMINISM FAILURE: pagesize ablation differs between 1 and 4 threads" >&2
    diff "$scratch/pgsz_t1.txt" "$scratch/pgsz_tn.txt" >&2 || true
    exit 1
fi
echo "memory-determinism smoke passed (pagesize ablation @ 1 thread == 4 threads)"

# Resilience smoke: link faults + node crash + every recovery policy,
# reduced grid. Two properties:
#   1. thread-count independence (faulty runs draw from per-link RNG
#      streams, which must not observe scheduling);
#   2. fault-free equivalence — the binary itself asserts per loss-free
#      cell that the resilient runner reproduces run_miniapp exactly, so
#      merely *wiring in* the recovery machinery costs nothing.
resil="HLWK_RESIL_ITERS=6 HLWK_NODES=4"
env $resil HLWK_THREADS=1 ./target/release/fig_resilience > "$scratch/resil_t1.txt"
env $resil HLWK_THREADS=4 ./target/release/fig_resilience > "$scratch/resil_tn.txt"
if ! diff -q "$scratch/resil_t1.txt" "$scratch/resil_tn.txt" >/dev/null; then
    echo "DETERMINISM FAILURE: fig_resilience differs between 1 and 4 threads" >&2
    diff "$scratch/resil_t1.txt" "$scratch/resil_tn.txt" >&2 || true
    exit 1
fi
echo "resilience smoke passed (fig_resilience @ 1 thread == 4 threads, fault-free cells == plain runs)"

# Failure-domain smoke: correlated rack kills + the stochastic fault
# storm draw from per-domain RNG streams, which must not observe worker
# scheduling either. The binary also self-asserts the acceptance claims
# (buddy rollback < global rollback, degraded completes where abort
# loses, async overhead < blocking) in every mode, reduced knobs
# included.
dom="HLWK_DOMAIN_ITERS=6"
env $dom HLWK_THREADS=1 HLWK_BENCH_OUT="$scratch/dom_t1.json" \
    ./target/release/fig_domains > "$scratch/dom_t1.txt"
env $dom HLWK_THREADS=4 HLWK_BENCH_OUT="$scratch/dom_t4.json" \
    ./target/release/fig_domains > "$scratch/dom_t4.txt"
if ! diff -q "$scratch/dom_t1.json" "$scratch/dom_t4.json" >/dev/null; then
    echo "DETERMINISM FAILURE: fig_domains metrics differ between 1 and 4 threads" >&2
    diff "$scratch/dom_t1.json" "$scratch/dom_t4.json" >&2 || true
    exit 1
fi
echo "failure-domain smoke passed (fig_domains @ 1 thread == 4 threads, claims hold)"

# Partitioned-engine app smoke: fig8's fault-free mini-app grid now
# records on the global wheel and replays on the partitioned engine
# (one partition per node). The replay worker count must never change
# figure output — reduced grid, 1 vs 4 engine workers, diff stdout.
fig8r="HLWK_RUNS=2 HLWK_NODES=8 HLWK_THREADS=1"
env $fig8r HLWK_ENGINE_THREADS=1 ./target/release/fig8_miniapps > "$scratch/fig8_e1.txt"
env $fig8r HLWK_ENGINE_THREADS=4 ./target/release/fig8_miniapps > "$scratch/fig8_e4.txt"
if ! diff -q "$scratch/fig8_e1.txt" "$scratch/fig8_e4.txt" >/dev/null; then
    echo "DETERMINISM FAILURE: fig8 output differs between 1 and 4 engine workers" >&2
    diff "$scratch/fig8_e1.txt" "$scratch/fig8_e4.txt" >&2 || true
    exit 1
fi
echo "partitioned-app smoke passed (fig8 @ 1 engine worker == 4 engine workers)"

# Elastic-tenancy smoke: SLO-driven online LWK resizing under the mixed
# serving + gang workload, reduced knobs (40 windows, 2 nodes). The
# binary self-asserts the acceptance claims (conservation, idle holds,
# overload sheds then gets elastic relief, storm audits every released
# core) in every mode; here we additionally require the figure output to
# be byte-identical at 1 vs 4 engine workers (the batch plane replays on
# the partitioned engine).
serve="HLWK_SERVE_WINDOWS=40 HLWK_SERVE_NODES=2 HLWK_THREADS=1"
env $serve HLWK_ENGINE_THREADS=1 HLWK_BENCH_OUT="$scratch/serve_e1.json" \
    ./target/release/fig_serve > "$scratch/serve_e1.txt"
env $serve HLWK_ENGINE_THREADS=4 HLWK_BENCH_OUT="$scratch/serve_e4.json" \
    ./target/release/fig_serve > "$scratch/serve_e4.txt"
if ! diff -q "$scratch/serve_e1.json" "$scratch/serve_e4.json" >/dev/null \
    || ! diff <(grep -v '^wrote ' "$scratch/serve_e1.txt") \
              <(grep -v '^wrote ' "$scratch/serve_e4.txt") >/dev/null; then
    echo "DETERMINISM FAILURE: fig_serve differs between 1 and 4 engine workers" >&2
    diff "$scratch/serve_e1.txt" "$scratch/serve_e4.txt" >&2 || true
    exit 1
fi
echo "elastic-tenancy smoke passed (fig_serve @ 1 engine worker == 4 engine workers, claims hold)"

if [[ "${1:-}" == "--soak" ]]; then
    # Resilience soak: fresh seeds through both fault sweeps, each run
    # under a hard wall-clock guard. What it hunts: schedule-dependent
    # hangs (a recovery loop that fails to terminate shows up as a
    # timeout, exit 124) and seed-dependent claim violations
    # (fig_domains exits non-zero if any acceptance claim breaks).
    seeds="${HLWK_SOAK_SEEDS:-5}"
    for s in $(seq 1 "$seeds"); do
        env HLWK_SEED_BASE=$((11851 + s)) HLWK_RESIL_ITERS=6 HLWK_NODES=4 \
            timeout 300 ./target/release/fig_resilience > "$scratch/soak_resil_$s.txt"
        # Seed varies, job length stays at the default: the rollback
        # claims need a kill that lands past a local snapshot that is
        # newer than the last global commit, which the default length
        # guarantees.
        env HLWK_DOMAIN_SEED=$((53870 + s)) \
            HLWK_BENCH_OUT="$scratch/soak_dom_$s.json" \
            timeout 300 ./target/release/fig_domains > "$scratch/soak_dom_$s.txt"
    done
    # Resize-storm soak: fresh seeds through the tenancy storm profile
    # (one reserve/release cycle per 10 ms window, width-pinned gang
    # evicted and resumed on every cycle). Hunts schedule-dependent
    # hangs in the drain protocol and seed-dependent reclaim-audit or
    # digest failures; any lost request or corrupted job fails the run.
    env HLWK_SERVE_WINDOWS=60 HLWK_SERVE_NODES=2 \
        timeout 300 ./target/release/fig_serve --soak "$seeds"
    echo "soak passed ($seeds seeds x {fig_resilience @ 5% loss + crash, fig_domains rack kills + storm, fig_serve resize storm}, no hangs)"
fi

if [[ "${1:-}" == "--bench-smoke" ]]; then
    # Smoke iterations: enough to exercise every measured path and give
    # stable-order-of-magnitude numbers, small enough for CI. The checks
    # compare against the committed baselines with the binaries' built-in
    # 2x tolerance, so smoke-run noise does not produce false failures.
    HLWK_BENCH_ITERS="${HLWK_BENCH_ITERS:-2000}" \
        ./target/release/fig_offload_hotpath --check BENCH_offload.json
    # Syscall fast-path gate: bypass_* metrics within tolerance AND the
    # promoted read >= 3x cheaper than the offload round trip with
    # protection domains armed (the fresh-run floor, not baseline-relative).
    HLWK_BENCH_ITERS="${HLWK_BENCH_ITERS:-2000}" \
        ./target/release/fig_bypass --check BENCH_offload.json
    HLWK_BENCH_ITERS="${HLWK_BENCH_ITERS:-2000}" \
        ./target/release/fig_engine --check BENCH_engine.json
    # Partitioned-engine scale gate: 1024-node digest identical at
    # 1/2/4/N threads everywhere; intra-run speedup floor only when the
    # pool has real workers. Then a short multi-seed hang hunt with NIC
    # blackouts armed (shrunken fault-mode lookahead windows).
    HLWK_SCALE_ITERS="${HLWK_SCALE_ITERS:-3}" \
        ./target/release/fig_scale --check BENCH_engine.json
    HLWK_SCALE_ITERS="${HLWK_SCALE_ITERS:-3}" \
        timeout 300 ./target/release/fig_scale --soak 4
    # Real mini-app on the partitioned engine: 1024-node HPC-CG digest
    # invariance at 1/2/4/N workers, replay verified against a direct
    # global-wheel walk, pool-gated speedup floor (logs an explicit
    # "speedup floor skipped: pool_threads=1" on single-core hosts).
    HLWK_SCALE_APP_ITERS="${HLWK_SCALE_APP_ITERS:-3}" \
        timeout 300 ./target/release/fig_scale_app --check
    # fig_mem needs a few more iterations than the other two before the
    # fault-storm metrics amortize their setup; still well under a second.
    HLWK_BENCH_ITERS="${HLWK_MEM_BENCH_ITERS:-5000}" \
        ./target/release/fig_mem --check BENCH_mem.json
    # Simulated-time metrics are deterministic: exact match, full knobs.
    ./target/release/fig_domains --check BENCH_resilience.json
    # Elastic-tenancy gate: exact match against the committed baseline
    # at full knobs (240 windows, 4 nodes: the resize storm completes
    # 100+ reserve/release cycles) plus the built-in claims, including
    # the coloc p99-isolation floor against idle.
    timeout 600 ./target/release/fig_serve --check BENCH_serve.json
fi
