#!/usr/bin/env bash
# Tier-1 gate: build, test, lint. Run from the repo root.
#
#   scripts/ci.sh                 # build + test + clippy
#   scripts/ci.sh --bench-smoke   # also run the offload hot-path bench
#                                 # (few iterations) and fail on a >2x
#                                 # regression against BENCH_offload.json
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings

if [[ "${1:-}" == "--bench-smoke" ]]; then
    # Smoke iterations: enough to exercise every measured path and give
    # stable-order-of-magnitude numbers, small enough for CI. The check
    # compares against the committed baseline with the binary's built-in
    # 2x tolerance, so smoke-run noise does not produce false failures.
    HLWK_BENCH_ITERS="${HLWK_BENCH_ITERS:-2000}" \
        ./target/release/fig_offload_hotpath --check BENCH_offload.json
fi
