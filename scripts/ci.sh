#!/usr/bin/env bash
# Tier-1 gate: build, test, lint, parallel-determinism smoke. Run from
# the repo root.
#
#   scripts/ci.sh                 # build + test + clippy + determinism
#   scripts/ci.sh --bench-smoke   # also run the offload hot-path,
#                                 # event-engine and memory benches (few
#                                 # iterations) and fail on a >2x
#                                 # regression against BENCH_offload.json
#                                 # / BENCH_engine.json / BENCH_mem.json
set -euo pipefail
cd "$(dirname "$0")/.."

# Scratch space: a private mktemp dir instead of fixed /tmp names, so
# concurrent CI runs on one machine cannot clobber each other's files.
scratch="$(mktemp -d "${TMPDIR:-/tmp}/hlwk-ci.XXXXXX")"
trap 'rm -rf "$scratch"' EXIT

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings

# Parallel-determinism smoke: thread count must never change figure
# output. Run a reduced fig6 sweep serial and parallel, diff stdout.
reduced="HLWK_RUNS=2 HLWK_NODES=4 HLWK_OSU_ITERS=2"
env $reduced HLWK_THREADS=1 ./target/release/fig6_osu_latency > "$scratch/fig6_t1.txt"
env $reduced HLWK_THREADS=4 ./target/release/fig6_osu_latency > "$scratch/fig6_tn.txt"
if ! diff -q "$scratch/fig6_t1.txt" "$scratch/fig6_tn.txt" >/dev/null; then
    echo "DETERMINISM FAILURE: fig6 output differs between 1 and 4 threads" >&2
    diff "$scratch/fig6_t1.txt" "$scratch/fig6_tn.txt" >&2 || true
    exit 1
fi
echo "parallel-determinism smoke passed (fig6 @ 1 thread == 4 threads)"

# Memory-subsystem determinism smoke: the page-size ablation exercises
# the buddy/PCP/fault-around paths end to end; its figure output must be
# thread-count independent too.
env HLWK_THREADS=1 ./target/release/fig_ablation_pagesize > "$scratch/pgsz_t1.txt"
env HLWK_THREADS=4 ./target/release/fig_ablation_pagesize > "$scratch/pgsz_tn.txt"
if ! diff -q "$scratch/pgsz_t1.txt" "$scratch/pgsz_tn.txt" >/dev/null; then
    echo "DETERMINISM FAILURE: pagesize ablation differs between 1 and 4 threads" >&2
    diff "$scratch/pgsz_t1.txt" "$scratch/pgsz_tn.txt" >&2 || true
    exit 1
fi
echo "memory-determinism smoke passed (pagesize ablation @ 1 thread == 4 threads)"

# Resilience smoke: link faults + node crash + every recovery policy,
# reduced grid. Two properties:
#   1. thread-count independence (faulty runs draw from per-link RNG
#      streams, which must not observe scheduling);
#   2. fault-free equivalence — the binary itself asserts per loss-free
#      cell that the resilient runner reproduces run_miniapp exactly, so
#      merely *wiring in* the recovery machinery costs nothing.
resil="HLWK_RESIL_ITERS=6 HLWK_NODES=4"
env $resil HLWK_THREADS=1 ./target/release/fig_resilience > "$scratch/resil_t1.txt"
env $resil HLWK_THREADS=4 ./target/release/fig_resilience > "$scratch/resil_tn.txt"
if ! diff -q "$scratch/resil_t1.txt" "$scratch/resil_tn.txt" >/dev/null; then
    echo "DETERMINISM FAILURE: fig_resilience differs between 1 and 4 threads" >&2
    diff "$scratch/resil_t1.txt" "$scratch/resil_tn.txt" >&2 || true
    exit 1
fi
echo "resilience smoke passed (fig_resilience @ 1 thread == 4 threads, fault-free cells == plain runs)"

if [[ "${1:-}" == "--bench-smoke" ]]; then
    # Smoke iterations: enough to exercise every measured path and give
    # stable-order-of-magnitude numbers, small enough for CI. The checks
    # compare against the committed baselines with the binaries' built-in
    # 2x tolerance, so smoke-run noise does not produce false failures.
    HLWK_BENCH_ITERS="${HLWK_BENCH_ITERS:-2000}" \
        ./target/release/fig_offload_hotpath --check BENCH_offload.json
    HLWK_BENCH_ITERS="${HLWK_BENCH_ITERS:-2000}" \
        ./target/release/fig_engine --check BENCH_engine.json
    # fig_mem needs a few more iterations than the other two before the
    # fault-storm metrics amortize their setup; still well under a second.
    HLWK_BENCH_ITERS="${HLWK_MEM_BENCH_ITERS:-5000}" \
        ./target/release/fig_mem --check BENCH_mem.json
fi
