//! Physical memory: NUMA layout, frame ownership (the IHK partition), and
//! sparse *real* byte storage.
//!
//! Byte storage matters: the unified-address-space claim of the paper is
//! that an offloaded system call executed by the proxy process dereferences
//! pointer arguments and observes exactly the application's memory. With
//! real bytes behind physical frames, that property becomes an executable
//! test instead of an assumption. Frames materialize lazily (zero-filled)
//! on first write, so modeling a 64 GiB node costs only what is touched.

use crate::addr::{PhysAddr, PAGE_SHIFT, PAGE_SIZE};
use crate::cpu::NumaId;
use std::collections::{BTreeMap, HashMap};

/// Physical frame number (`phys >> 12`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FrameId(pub u64);

impl FrameId {
    /// Frame containing `addr`.
    #[inline]
    pub fn containing(addr: PhysAddr) -> FrameId {
        FrameId(addr.raw() >> PAGE_SHIFT)
    }

    /// First byte of this frame.
    #[inline]
    pub fn base(self) -> PhysAddr {
        PhysAddr(self.0 << PAGE_SHIFT)
    }
}

/// Who owns a physical frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FrameOwner {
    /// Managed by the host Linux kernel (the default at boot).
    Linux,
    /// Reserved by IHK for the LWK partition.
    Lwk,
    /// Memory-mapped I/O (device BAR) — not RAM.
    Mmio,
}

/// One node's physical memory.
#[derive(Debug)]
pub struct PhysMemory {
    /// Exclusive end of each NUMA domain's range; domain `i` spans
    /// `[ends[i-1], ends[i])` with `ends[-1] == 0`.
    numa_ends: Vec<u64>,
    /// Ownership intervals: start byte -> (end byte, owner). Non-overlapping,
    /// covering `[0, ram_bytes)`; MMIO ranges may lie above RAM.
    owners: BTreeMap<u64, (u64, FrameOwner)>,
    /// Lazily materialized frame contents.
    content: HashMap<FrameId, Box<[u8]>>,
}

impl PhysMemory {
    /// Equal split of `total_bytes` RAM across `numa_domains` domains.
    /// `total_bytes` must be page-aligned and divisible by the domain count.
    pub fn new(total_bytes: u64, numa_domains: u16) -> Self {
        assert!(numa_domains > 0);
        assert_eq!(total_bytes % PAGE_SIZE, 0, "RAM size must be page aligned");
        assert_eq!(
            total_bytes % u64::from(numa_domains),
            0,
            "RAM must split evenly across NUMA domains"
        );
        let per = total_bytes / u64::from(numa_domains);
        let numa_ends = (1..=u64::from(numa_domains)).map(|i| i * per).collect();
        let mut owners = BTreeMap::new();
        owners.insert(0, (total_bytes, FrameOwner::Linux));
        PhysMemory {
            numa_ends,
            owners,
            content: HashMap::new(),
        }
    }

    /// The paper's node: 64 GiB over 2 NUMA domains.
    pub fn paper_testbed() -> Self {
        PhysMemory::new(64 << 30, 2)
    }

    /// Total RAM bytes.
    pub fn ram_bytes(&self) -> u64 {
        *self.numa_ends.last().expect("at least one NUMA domain")
    }

    /// NUMA domain of a RAM address (None for MMIO / out of range).
    pub fn numa_of(&self, addr: PhysAddr) -> Option<NumaId> {
        let a = addr.raw();
        self.numa_ends
            .iter()
            .position(|&end| a < end)
            .map(|i| NumaId(i as u16))
    }

    /// RAM range `[start, end)` of one NUMA domain.
    pub fn numa_range(&self, numa: NumaId) -> (PhysAddr, PhysAddr) {
        let i = usize::from(numa.0);
        assert!(i < self.numa_ends.len(), "{numa} out of range");
        let start = if i == 0 { 0 } else { self.numa_ends[i - 1] };
        (PhysAddr(start), PhysAddr(self.numa_ends[i]))
    }

    /// Mark `[start, start+len)` as owned by `owner`, splitting intervals as
    /// needed. Used by IHK reserve/release and for registering device BARs.
    /// Panics if the range is not page-aligned.
    pub fn set_owner(&mut self, start: PhysAddr, len: u64, owner: FrameOwner) {
        assert!(start.is_page_aligned() && len % PAGE_SIZE == 0 && len > 0);
        let (s, e) = (start.raw(), start.raw() + len);
        // Collect intervals overlapping [s, e).
        let overlapping: Vec<(u64, u64, FrameOwner)> = self
            .owners
            .range(..e)
            .rev()
            .take_while(|(_, (iend, _))| *iend > s)
            .map(|(&istart, &(iend, o))| (istart, iend, o))
            .filter(|&(istart, _, _)| istart < e)
            .collect();
        for (istart, iend, o) in &overlapping {
            if *iend > s && *istart < e {
                self.owners.remove(istart);
                if *istart < s {
                    self.owners.insert(*istart, (s, *o));
                }
                if *iend > e {
                    self.owners.insert(e, (*iend, *o));
                }
            }
        }
        self.owners.insert(s, (e, owner));
        self.coalesce_around(s, e);
    }

    fn coalesce_around(&mut self, s: u64, e: u64) {
        // Merge with the predecessor if contiguous and same owner.
        if let Some((&ps, &(pe, po))) = self.owners.range(..s).next_back() {
            if pe == s && po == self.owners[&s].1 {
                let (end, o) = self.owners.remove(&s).expect("interval present");
                self.owners.insert(ps, (end, o));
                return self.coalesce_around(ps, e);
            }
        }
        // Merge with the successor.
        let (cur_end, cur_owner) = self.owners[&s];
        if let Some(&(ne, no)) = self.owners.get(&cur_end) {
            if no == cur_owner {
                self.owners.remove(&cur_end);
                self.owners.insert(s, (ne, cur_owner));
            }
        }
        let _ = e;
    }

    /// Whether all of `[start, start+len)` lies in intervals owned by
    /// `owner`. O(intervals overlapped), not O(pages).
    pub fn range_uniformly_owned(&self, start: PhysAddr, len: u64, owner: FrameOwner) -> bool {
        let (s, e) = (start.raw(), start.raw() + len);
        let mut cursor = s;
        // Walk intervals from the one containing `s` forward.
        let mut iter = self
            .owners
            .range(..=s)
            .next_back()
            .into_iter()
            .map(|(&k, &v)| (k, v))
            .chain(
                self.owners
                    .range((
                        std::ops::Bound::Excluded(s),
                        std::ops::Bound::Unbounded,
                    ))
                    .map(|(&k, &v)| (k, v)),
            );
        while cursor < e {
            match iter.next() {
                Some((istart, (iend, o))) => {
                    if istart > cursor || o != owner {
                        return false;
                    }
                    cursor = iend;
                }
                None => return false,
            }
        }
        true
    }

    /// Owner of the frame containing `addr` (frames outside any registered
    /// interval — e.g. unregistered MMIO holes — report `Mmio`).
    pub fn owner_of(&self, addr: PhysAddr) -> FrameOwner {
        let a = addr.raw();
        self.owners
            .range(..=a)
            .next_back()
            .filter(|(_, (end, _))| a < *end)
            .map(|(_, (_, o))| *o)
            .unwrap_or(FrameOwner::Mmio)
    }

    /// Total bytes currently owned by `owner`.
    pub fn bytes_owned_by(&self, owner: FrameOwner) -> u64 {
        self.owners
            .values()
            .zip(self.owners.keys())
            .map(|(&(end, o), &start)| if o == owner { end - start } else { 0 })
            .sum()
    }

    /// Number of ownership intervals (diagnostic; coalescing keeps it small).
    pub fn interval_count(&self) -> usize {
        self.owners.len()
    }

    /// Write bytes at a physical address (may span frames). Frames
    /// materialize zero-filled on demand.
    pub fn write(&mut self, addr: PhysAddr, data: &[u8]) {
        let mut cur = addr;
        let mut rest = data;
        while !rest.is_empty() {
            let frame = FrameId::containing(cur);
            let off = cur.page_offset() as usize;
            let n = rest.len().min(PAGE_SIZE as usize - off);
            let buf = self
                .content
                .entry(frame)
                .or_insert_with(|| vec![0u8; PAGE_SIZE as usize].into_boxed_slice());
            buf[off..off + n].copy_from_slice(&rest[..n]);
            rest = &rest[n..];
            cur = cur + n as u64;
        }
    }

    /// Fill `[addr, addr+len)` with `byte` (may span frames) without a
    /// bounce buffer — the memset runs directly in the backing frames.
    /// The in-LWK promoted `read()` path uses this to produce its
    /// result bytes; a per-call staging buffer would dominate its cost.
    pub fn fill(&mut self, addr: PhysAddr, len: u64, byte: u8) {
        let mut cur = addr;
        let mut rest = len as usize;
        while rest > 0 {
            let frame = FrameId::containing(cur);
            let off = cur.page_offset() as usize;
            let n = rest.min(PAGE_SIZE as usize - off);
            let buf = self
                .content
                .entry(frame)
                .or_insert_with(|| vec![0u8; PAGE_SIZE as usize].into_boxed_slice());
            buf[off..off + n].fill(byte);
            rest -= n;
            cur = cur + n as u64;
        }
    }

    /// Read bytes at a physical address (may span frames). Unmaterialized
    /// frames read as zero.
    pub fn read(&self, addr: PhysAddr, out: &mut [u8]) {
        let mut cur = addr;
        let mut done = 0;
        while done < out.len() {
            let frame = FrameId::containing(cur);
            let off = cur.page_offset() as usize;
            let n = (out.len() - done).min(PAGE_SIZE as usize - off);
            match self.content.get(&frame) {
                Some(buf) => out[done..done + n].copy_from_slice(&buf[off..off + n]),
                None => out[done..done + n].fill(0),
            }
            done += n;
            cur = cur + n as u64;
        }
    }

    /// Convenience: read a `u64` (little-endian) at `addr`.
    pub fn read_u64(&self, addr: PhysAddr) -> u64 {
        let mut b = [0u8; 8];
        self.read(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Convenience: write a `u64` (little-endian) at `addr`.
    pub fn write_u64(&mut self, addr: PhysAddr, v: u64) {
        self.write(addr, &v.to_le_bytes());
    }

    /// Number of materialized frames (diagnostic / memory accounting).
    pub fn resident_frames(&self) -> usize {
        self.content.len()
    }

    /// Drop the contents of every frame in `[start, start+len)` (e.g. when
    /// the LWK partition is released back to Linux).
    pub fn clear_range(&mut self, start: PhysAddr, len: u64) {
        for f in (start.raw() >> PAGE_SHIFT)..((start.raw() + len + PAGE_SIZE - 1) >> PAGE_SHIFT) {
            self.content.remove(&FrameId(f));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numa_split() {
        let m = PhysMemory::paper_testbed();
        assert_eq!(m.ram_bytes(), 64 << 30);
        assert_eq!(m.numa_of(PhysAddr(0)), Some(NumaId(0)));
        assert_eq!(m.numa_of(PhysAddr((32 << 30) - 1)), Some(NumaId(0)));
        assert_eq!(m.numa_of(PhysAddr(32 << 30)), Some(NumaId(1)));
        assert_eq!(m.numa_of(PhysAddr(64 << 30)), None);
        let (s, e) = m.numa_range(NumaId(1));
        assert_eq!((s.raw(), e.raw()), (32 << 30, 64 << 30));
    }

    #[test]
    fn ownership_split_and_query() {
        let mut m = PhysMemory::new(1 << 30, 1);
        assert_eq!(m.owner_of(PhysAddr(0x5000)), FrameOwner::Linux);
        m.set_owner(PhysAddr(0x100000), 0x100000, FrameOwner::Lwk);
        assert_eq!(m.owner_of(PhysAddr(0x100000)), FrameOwner::Lwk);
        assert_eq!(m.owner_of(PhysAddr(0x1fffff)), FrameOwner::Lwk);
        assert_eq!(m.owner_of(PhysAddr(0x200000)), FrameOwner::Linux);
        assert_eq!(m.owner_of(PhysAddr(0xfffff)), FrameOwner::Linux);
        assert_eq!(m.bytes_owned_by(FrameOwner::Lwk), 0x100000);
    }

    #[test]
    fn ownership_release_coalesces() {
        let mut m = PhysMemory::new(1 << 30, 1);
        m.set_owner(PhysAddr(0x100000), 0x100000, FrameOwner::Lwk);
        assert_eq!(m.interval_count(), 3);
        m.set_owner(PhysAddr(0x100000), 0x100000, FrameOwner::Linux);
        assert_eq!(m.interval_count(), 1, "release should coalesce back");
        assert_eq!(m.bytes_owned_by(FrameOwner::Linux), 1 << 30);
    }

    #[test]
    fn overlapping_reservation_overwrites() {
        let mut m = PhysMemory::new(1 << 30, 1);
        m.set_owner(PhysAddr(0x100000), 0x200000, FrameOwner::Lwk);
        m.set_owner(PhysAddr(0x200000), 0x200000, FrameOwner::Mmio);
        assert_eq!(m.owner_of(PhysAddr(0x150000)), FrameOwner::Lwk);
        assert_eq!(m.owner_of(PhysAddr(0x250000)), FrameOwner::Mmio);
        assert_eq!(m.owner_of(PhysAddr(0x3f0000)), FrameOwner::Mmio);
        assert_eq!(m.owner_of(PhysAddr(0x400000)), FrameOwner::Linux);
    }

    #[test]
    fn reserve_release_churn_coalesces_fully() {
        // Regression guard for set_owner/coalesce_around bookkeeping:
        // repeated reserve/release churn must never leave adjacent
        // same-owner intervals unmerged (interval_count creeping up
        // round over round would make every later set_owner slower).
        let mut m = PhysMemory::new(64 << 20, 1);
        let blk = 1u64 << 20;
        for round in 0..50u64 {
            // Checkerboard reserve (every other block)...
            for i in (0..32u64).step_by(2) {
                m.set_owner(PhysAddr(i * blk), blk, FrameOwner::Lwk);
            }
            assert_eq!(m.interval_count(), 32, "round {round}: checkerboard");
            // ...then fill the holes: one Lwk run + the Linux tail.
            for i in (1..32u64).step_by(2) {
                m.set_owner(PhysAddr(i * blk), blk, FrameOwner::Lwk);
            }
            assert!(m.range_uniformly_owned(PhysAddr(0), 32 * blk, FrameOwner::Lwk));
            assert_eq!(m.interval_count(), 2, "round {round}: holes filled");
            // Release in descending order: each release must merge with
            // the growing Linux successor immediately.
            for i in (0..32u64).rev() {
                m.set_owner(PhysAddr(i * blk), blk, FrameOwner::Linux);
                assert!(m.interval_count() <= 3, "round {round}: release {i}");
            }
            assert_eq!(m.interval_count(), 1, "round {round}: fully coalesced");
            assert_eq!(m.bytes_owned_by(FrameOwner::Linux), 64 << 20);
        }
    }

    #[test]
    fn same_owner_reinsert_does_not_fragment() {
        let mut m = PhysMemory::new(16 << 20, 1);
        // Re-marking a sub-range with its current owner must stay one
        // interval (pred merge then succ merge across the insert).
        m.set_owner(PhysAddr(4 << 20), 4 << 20, FrameOwner::Linux);
        assert_eq!(m.interval_count(), 1);
        // Same-owner neighbors created independently coalesce too.
        m.set_owner(PhysAddr(0), 2 << 20, FrameOwner::Lwk);
        m.set_owner(PhysAddr(2 << 20), 2 << 20, FrameOwner::Lwk);
        assert_eq!(m.interval_count(), 2);
        assert_eq!(m.bytes_owned_by(FrameOwner::Lwk), 4 << 20);
    }

    #[test]
    fn mmio_above_ram() {
        let m = PhysMemory::new(1 << 30, 1);
        assert_eq!(m.owner_of(PhysAddr(2 << 30)), FrameOwner::Mmio);
    }

    #[test]
    fn read_write_round_trip_across_frames() {
        let mut m = PhysMemory::new(1 << 20, 1);
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let addr = PhysAddr(0x0fff); // deliberately unaligned, spans frames
        m.write(addr, &data);
        let mut back = vec![0u8; data.len()];
        m.read(addr, &mut back);
        assert_eq!(back, data);
        assert!(m.resident_frames() >= 3);
    }

    #[test]
    fn unwritten_memory_reads_zero() {
        let m = PhysMemory::new(1 << 20, 1);
        let mut buf = [1u8; 64];
        m.read(PhysAddr(0x8000), &mut buf);
        assert!(buf.iter().all(|&b| b == 0));
        assert_eq!(m.resident_frames(), 0, "reads must not materialize frames");
    }

    #[test]
    fn u64_helpers() {
        let mut m = PhysMemory::new(1 << 20, 1);
        m.write_u64(PhysAddr(0x100), 0xdead_beef_cafe_f00d);
        assert_eq!(m.read_u64(PhysAddr(0x100)), 0xdead_beef_cafe_f00d);
    }

    #[test]
    fn clear_range_drops_content() {
        let mut m = PhysMemory::new(1 << 20, 1);
        m.write_u64(PhysAddr(0x1000), 7);
        m.clear_range(PhysAddr(0x1000), PAGE_SIZE);
        assert_eq!(m.read_u64(PhysAddr(0x1000)), 0);
    }
}
