//! Virtual and physical addresses with page arithmetic.

use std::fmt;
use std::ops::{Add, Sub};

/// Base page size (x86-64 4 KiB pages).
pub const PAGE_SIZE: u64 = 4096;
/// log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;
/// Large page size (x86-64 2 MiB pages) — McKernel backs anonymous memory
/// with these when alignment and length allow, which is the mechanism
/// behind its TLB advantage (DESIGN.md D4).
pub const PAGE_SIZE_2M: u64 = 2 * 1024 * 1024;

/// A virtual address in some process address space.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(pub u64);

/// A physical (or PCI bus) address on some node.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(pub u64);

macro_rules! addr_impl {
    ($t:ident, $tag:literal) => {
        impl $t {
            /// Zero address.
            pub const NULL: $t = $t(0);

            /// Round down to a page boundary.
            #[inline]
            pub fn page_align_down(self) -> $t {
                $t(self.0 & !(PAGE_SIZE - 1))
            }

            /// Round up to a page boundary.
            #[inline]
            pub fn page_align_up(self) -> $t {
                $t((self.0 + PAGE_SIZE - 1) & !(PAGE_SIZE - 1))
            }

            /// Is this page-aligned?
            #[inline]
            pub fn is_page_aligned(self) -> bool {
                self.0 & (PAGE_SIZE - 1) == 0
            }

            /// Is this aligned to a 2 MiB boundary?
            #[inline]
            pub fn is_2m_aligned(self) -> bool {
                self.0 & (PAGE_SIZE_2M - 1) == 0
            }

            /// Byte offset within the containing 4 KiB page.
            #[inline]
            pub fn page_offset(self) -> u64 {
                self.0 & (PAGE_SIZE - 1)
            }

            /// Raw numeric value.
            #[inline]
            pub fn raw(self) -> u64 {
                self.0
            }

            /// Checked addition of a byte offset.
            #[inline]
            pub fn checked_add(self, off: u64) -> Option<$t> {
                self.0.checked_add(off).map($t)
            }
        }

        impl Add<u64> for $t {
            type Output = $t;
            #[inline]
            fn add(self, rhs: u64) -> $t {
                $t(self.0 + rhs)
            }
        }

        impl Sub<u64> for $t {
            type Output = $t;
            #[inline]
            fn sub(self, rhs: u64) -> $t {
                $t(self.0 - rhs)
            }
        }

        impl Sub<$t> for $t {
            type Output = u64;
            #[inline]
            fn sub(self, rhs: $t) -> u64 {
                self.0 - rhs.0
            }
        }

        impl fmt::Debug for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{:#x}"), self.0)
            }
        }

        impl fmt::Display for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }
    };
}

addr_impl!(VirtAddr, "v");
addr_impl!(PhysAddr, "p");

/// Iterate over the page-aligned starts of every 4 KiB page overlapping
/// `[start, start+len)`.
pub fn pages_covering(start: VirtAddr, len: u64) -> impl Iterator<Item = VirtAddr> {
    let first = start.page_align_down().raw();
    let end = start.raw() + len;
    let last = if len == 0 { first } else { (end - 1) & !(PAGE_SIZE - 1) };
    (first..=last).step_by(PAGE_SIZE as usize).map(VirtAddr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment() {
        let a = VirtAddr(0x1234);
        assert_eq!(a.page_align_down(), VirtAddr(0x1000));
        assert_eq!(a.page_align_up(), VirtAddr(0x2000));
        assert!(VirtAddr(0x3000).is_page_aligned());
        assert!(!a.is_page_aligned());
        assert_eq!(a.page_offset(), 0x234);
        assert!(PhysAddr(0x200000).is_2m_aligned());
        assert!(!PhysAddr(0x201000).is_2m_aligned());
    }

    #[test]
    fn align_up_of_aligned_is_identity() {
        assert_eq!(VirtAddr(0x4000).page_align_up(), VirtAddr(0x4000));
    }

    #[test]
    fn arithmetic() {
        let a = PhysAddr(0x1000);
        assert_eq!(a + 0x10, PhysAddr(0x1010));
        assert_eq!((a + 0x10) - a, 0x10);
        assert_eq!(a.checked_add(u64::MAX), None);
    }

    #[test]
    fn pages_covering_spans() {
        let pages: Vec<_> = pages_covering(VirtAddr(0x1800), 0x1000).collect();
        assert_eq!(pages, vec![VirtAddr(0x1000), VirtAddr(0x2000)]);
        let one: Vec<_> = pages_covering(VirtAddr(0x1000), 1).collect();
        assert_eq!(one, vec![VirtAddr(0x1000)]);
        let zero: Vec<_> = pages_covering(VirtAddr(0x1000), 0).collect();
        assert_eq!(zero, vec![VirtAddr(0x1000)]);
        let exact: Vec<_> = pages_covering(VirtAddr(0x1000), 0x1000).collect();
        assert_eq!(exact, vec![VirtAddr(0x1000)]);
    }

    #[test]
    fn debug_formats_tagged() {
        assert_eq!(format!("{:?}", VirtAddr(0x10)), "v0x10");
        assert_eq!(format!("{:?}", PhysAddr(0x10)), "p0x10");
    }
}
