//! Node composition: topology + memory + devices.

use crate::cpu::CpuTopology;
use crate::memory::{FrameOwner, PhysMemory};
use crate::pci::{Bar, DeviceClass, MmioWindow, PciAddress, PciDevice};
use std::fmt;

/// Cluster-wide node number.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Descriptive node specification (cheap to clone; build into [`NodeHw`]).
#[derive(Clone, Debug)]
pub struct NodeSpec {
    /// CPU layout.
    pub topology: CpuTopology,
    /// Total RAM bytes.
    pub ram_bytes: u64,
    /// NUMA domain count (must divide `ram_bytes`).
    pub numa_domains: u16,
    /// Whether the node has an InfiniBand HCA.
    pub with_ib: bool,
    /// Whether the node has an Ethernet NIC.
    pub with_eth: bool,
}

impl NodeSpec {
    /// The paper's testbed node.
    pub fn paper_testbed() -> Self {
        NodeSpec {
            topology: CpuTopology::paper_testbed(),
            ram_bytes: 64 << 30,
            numa_domains: 2,
            with_ib: true,
            with_eth: true,
        }
    }

    /// Instantiate hardware state for node `id`.
    pub fn build(&self, id: NodeId) -> NodeHw {
        let mut mem = PhysMemory::new(self.ram_bytes, self.numa_domains);
        let mut mmio = MmioWindow::above_ram(self.ram_bytes, 4 << 30);
        let mut devices = Vec::new();
        if self.with_ib {
            // Connect-IB: BAR0 = command/doorbell (UAR) space.
            let base = mmio.alloc(2 << 20).expect("MMIO window exhausted");
            mem.set_owner(base, 2 << 20, FrameOwner::Mmio);
            devices.push(PciDevice {
                address: PciAddress {
                    bus: 0x81,
                    device: 0,
                    function: 0,
                },
                class: DeviceClass::InfinibandHca,
                dev_name: "infiniband/uverbs0".into(),
                bars: vec![Bar {
                    index: 0,
                    base,
                    size: 2 << 20,
                }],
            });
        }
        if self.with_eth {
            let base = mmio.alloc(128 << 10).expect("MMIO window exhausted");
            mem.set_owner(base, 128 << 10, FrameOwner::Mmio);
            devices.push(PciDevice {
                address: PciAddress {
                    bus: 0x02,
                    device: 0,
                    function: 0,
                },
                class: DeviceClass::EthernetNic,
                dev_name: "eth0".into(),
                bars: vec![Bar {
                    index: 0,
                    base,
                    size: 128 << 10,
                }],
            });
        }
        NodeHw {
            id,
            topology: self.topology.clone(),
            mem,
            devices,
        }
    }
}

/// Instantiated hardware state of one node.
#[derive(Debug)]
pub struct NodeHw {
    /// Cluster-wide id.
    pub id: NodeId,
    /// CPU layout.
    pub topology: CpuTopology,
    /// Physical memory (RAM + registered MMIO).
    pub mem: PhysMemory,
    /// PCI devices.
    pub devices: Vec<PciDevice>,
}

impl NodeHw {
    /// First device of the given class, if present.
    pub fn device_of_class(&self, class: DeviceClass) -> Option<&PciDevice> {
        self.devices.iter().find(|d| d.class == class)
    }

    /// Device by its `/dev` name.
    pub fn device_by_name(&self, name: &str) -> Option<&PciDevice> {
        self.devices.iter().find(|d| d.dev_name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PhysAddr;

    #[test]
    fn testbed_node_builds() {
        let hw = NodeSpec::paper_testbed().build(NodeId(3));
        assert_eq!(hw.id, NodeId(3));
        assert_eq!(hw.topology.num_cores(), 20);
        assert_eq!(hw.mem.ram_bytes(), 64 << 30);
        assert_eq!(hw.devices.len(), 2);
        let ib = hw.device_of_class(DeviceClass::InfinibandHca).unwrap();
        assert_eq!(ib.dev_name, "infiniband/uverbs0");
        assert!(hw.device_by_name("eth0").is_some());
        assert!(hw.device_by_name("nope").is_none());
    }

    #[test]
    fn bars_are_mmio_above_ram() {
        let hw = NodeSpec::paper_testbed().build(NodeId(0));
        for dev in &hw.devices {
            for bar in &dev.bars {
                assert!(bar.base.raw() >= hw.mem.ram_bytes());
                assert_eq!(hw.mem.owner_of(bar.base), FrameOwner::Mmio);
            }
        }
    }

    #[test]
    fn bars_do_not_overlap() {
        let hw = NodeSpec::paper_testbed().build(NodeId(0));
        let bars: Vec<_> = hw.devices.iter().flat_map(|d| d.bars.iter()).collect();
        for (i, a) in bars.iter().enumerate() {
            for b in &bars[i + 1..] {
                let disjoint = a.base.raw() + a.size <= b.base.raw()
                    || b.base.raw() + b.size <= a.base.raw();
                assert!(disjoint, "BARs overlap: {a:?} {b:?}");
            }
        }
    }

    #[test]
    fn diskless_node_without_nics() {
        let spec = NodeSpec {
            with_ib: false,
            with_eth: false,
            ..NodeSpec::paper_testbed()
        };
        let hw = spec.build(NodeId(1));
        assert!(hw.devices.is_empty());
        assert!(hw.device_of_class(DeviceClass::InfinibandHca).is_none());
    }

    #[test]
    fn ram_defaults_linux_owned() {
        let hw = NodeSpec::paper_testbed().build(NodeId(0));
        assert_eq!(hw.mem.owner_of(PhysAddr(0x1000)), FrameOwner::Linux);
        assert_eq!(
            hw.mem.bytes_owned_by(FrameOwner::Linux),
            hw.mem.ram_bytes()
        );
    }
}
