//! Cluster-level topology.

use crate::node::{NodeHw, NodeId, NodeSpec};

/// A homogeneous cluster of nodes (the paper's is 64 identical nodes).
#[derive(Clone, Debug)]
pub struct ClusterSpec {
    /// Number of compute nodes.
    pub num_nodes: u32,
    /// Per-node hardware.
    pub node: NodeSpec,
}

impl ClusterSpec {
    /// The paper's 64-node KNSC cluster.
    pub fn paper_testbed() -> Self {
        ClusterSpec {
            num_nodes: 64,
            node: NodeSpec::paper_testbed(),
        }
    }

    /// Same node spec, different node count (for scaling sweeps).
    pub fn with_nodes(&self, n: u32) -> ClusterSpec {
        ClusterSpec {
            num_nodes: n,
            node: self.node.clone(),
        }
    }

    /// Instantiate hardware for every node.
    pub fn build_nodes(&self) -> Vec<NodeHw> {
        (0..self.num_nodes)
            .map(|i| self.node.build(NodeId(i)))
            .collect()
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes).map(NodeId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_all_nodes_with_distinct_ids() {
        let spec = ClusterSpec::paper_testbed().with_nodes(4);
        let nodes = spec.build_nodes();
        assert_eq!(nodes.len(), 4);
        let ids: Vec<_> = nodes.iter().map(|n| n.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn paper_testbed_is_64_nodes() {
        assert_eq!(ClusterSpec::paper_testbed().num_nodes, 64);
    }
}
