//! Socket / core / NUMA topology.

use std::fmt;

/// Node-local logical CPU core number (0-based, dense).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CoreId(pub u16);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

/// NUMA domain number within a node.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NumaId(pub u16);

impl fmt::Display for NumaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "numa{}", self.0)
    }
}

/// Static CPU topology of one node.
///
/// Cores are numbered socket-major: socket 0 holds cores
/// `0..cores_per_socket`, socket 1 the next batch, and so on. Each socket is
/// one NUMA domain (true for the E5-2680v2 testbed).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CpuTopology {
    sockets: u16,
    cores_per_socket: u16,
}

impl CpuTopology {
    /// Build a topology; panics on a zero dimension.
    pub fn new(sockets: u16, cores_per_socket: u16) -> Self {
        assert!(sockets > 0 && cores_per_socket > 0);
        CpuTopology {
            sockets,
            cores_per_socket,
        }
    }

    /// The paper's testbed: 2 sockets x 10 cores.
    pub fn paper_testbed() -> Self {
        CpuTopology::new(2, 10)
    }

    /// Number of sockets (== NUMA domains).
    pub fn sockets(&self) -> u16 {
        self.sockets
    }

    /// Cores per socket.
    pub fn cores_per_socket(&self) -> u16 {
        self.cores_per_socket
    }

    /// Total core count.
    pub fn num_cores(&self) -> u16 {
        self.sockets * self.cores_per_socket
    }

    /// Number of NUMA domains.
    pub fn num_numa(&self) -> u16 {
        self.sockets
    }

    /// NUMA domain of a core. Panics on an out-of-range core.
    pub fn numa_of(&self, core: CoreId) -> NumaId {
        assert!(core.0 < self.num_cores(), "core {core} out of range");
        NumaId(core.0 / self.cores_per_socket)
    }

    /// All cores in a NUMA domain, ascending.
    pub fn cores_in_numa(&self, numa: NumaId) -> Vec<CoreId> {
        assert!(numa.0 < self.num_numa(), "{numa} out of range");
        let start = numa.0 * self.cores_per_socket;
        (start..start + self.cores_per_socket).map(CoreId).collect()
    }

    /// All cores on the node, ascending.
    pub fn all_cores(&self) -> Vec<CoreId> {
        (0..self.num_cores()).map(CoreId).collect()
    }

    /// Whether two cores share a socket (and therefore an LLC).
    pub fn share_llc(&self, a: CoreId, b: CoreId) -> bool {
        self.numa_of(a) == self.numa_of(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_dimensions() {
        let t = CpuTopology::paper_testbed();
        assert_eq!(t.num_cores(), 20);
        assert_eq!(t.num_numa(), 2);
        assert_eq!(t.cores_per_socket(), 10);
    }

    #[test]
    fn numa_mapping_is_socket_major() {
        let t = CpuTopology::paper_testbed();
        assert_eq!(t.numa_of(CoreId(0)), NumaId(0));
        assert_eq!(t.numa_of(CoreId(9)), NumaId(0));
        assert_eq!(t.numa_of(CoreId(10)), NumaId(1));
        assert_eq!(t.numa_of(CoreId(19)), NumaId(1));
    }

    #[test]
    fn cores_in_numa_partition_all_cores() {
        let t = CpuTopology::paper_testbed();
        let mut all: Vec<CoreId> = (0..t.num_numa())
            .flat_map(|n| t.cores_in_numa(NumaId(n)))
            .collect();
        all.sort();
        assert_eq!(all, t.all_cores());
    }

    #[test]
    fn llc_sharing_follows_sockets() {
        let t = CpuTopology::paper_testbed();
        assert!(t.share_llc(CoreId(0), CoreId(9)));
        assert!(!t.share_llc(CoreId(0), CoreId(10)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn numa_of_rejects_bad_core() {
        CpuTopology::paper_testbed().numa_of(CoreId(20));
    }
}
