//! PCI devices and BARs.
//!
//! The paper's device-driver-transparency mechanism revolves around
//! `mmap()` of device files whose pages resolve to PCI BAR space (the HCA's
//! doorbell/UAR pages). The hardware side of that story is here: devices
//! with typed classes and BARs placed in an MMIO window above RAM.

use crate::addr::{PhysAddr, PAGE_SIZE};
use std::fmt;

/// Bus/device/function triple.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PciAddress {
    /// Bus number.
    pub bus: u8,
    /// Device number (0-31).
    pub device: u8,
    /// Function number (0-7).
    pub function: u8,
}

impl fmt::Display for PciAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}.{:x}",
            self.bus, self.device, self.function
        )
    }
}

/// Device category — determines which driver binds and which fabric the
/// device reaches.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeviceClass {
    /// InfiniBand host channel adapter (Connect-IB FDR in the testbed).
    InfinibandHca,
    /// Gigabit Ethernet NIC.
    EthernetNic,
}

/// One memory BAR.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Bar {
    /// BAR index (0-5).
    pub index: u8,
    /// Physical (bus) base address; page-aligned.
    pub base: PhysAddr,
    /// Size in bytes; page-aligned.
    pub size: u64,
}

impl Bar {
    /// Whether `addr` falls inside this BAR.
    pub fn contains(&self, addr: PhysAddr) -> bool {
        addr >= self.base && addr.raw() < self.base.raw() + self.size
    }
}

/// A PCI device instance on a node.
#[derive(Clone, Debug)]
pub struct PciDevice {
    /// Location on the bus.
    pub address: PciAddress,
    /// Category.
    pub class: DeviceClass,
    /// Device-file name under `/dev` (e.g. `infiniband/uverbs0`).
    pub dev_name: String,
    /// Memory BARs.
    pub bars: Vec<Bar>,
}

impl PciDevice {
    /// Resolve a byte offset into BAR `bar_index` to a physical address.
    pub fn bar_phys(&self, bar_index: u8, offset: u64) -> Option<PhysAddr> {
        let bar = self.bars.iter().find(|b| b.index == bar_index)?;
        if offset >= bar.size {
            return None;
        }
        Some(bar.base + offset)
    }
}

/// Allocates BAR space in the MMIO window above RAM.
#[derive(Debug)]
pub struct MmioWindow {
    next: u64,
    end: u64,
}

impl MmioWindow {
    /// Window starting just above `ram_bytes`, aligned up to 1 GiB, spanning
    /// `span` bytes.
    pub fn above_ram(ram_bytes: u64, span: u64) -> Self {
        let gib = 1u64 << 30;
        let start = ram_bytes.div_ceil(gib) * gib;
        MmioWindow {
            next: start,
            end: start + span,
        }
    }

    /// Carve a page-aligned BAR of `size` bytes.
    pub fn alloc(&mut self, size: u64) -> Option<PhysAddr> {
        let size = size.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        if self.next + size > self.end {
            return None;
        }
        let base = self.next;
        self.next += size;
        Some(PhysAddr(base))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_contains_and_resolve() {
        let dev = PciDevice {
            address: PciAddress {
                bus: 3,
                device: 0,
                function: 0,
            },
            class: DeviceClass::InfinibandHca,
            dev_name: "infiniband/uverbs0".into(),
            bars: vec![Bar {
                index: 0,
                base: PhysAddr(0x10_0000_0000),
                size: 0x10000,
            }],
        };
        assert!(dev.bars[0].contains(PhysAddr(0x10_0000_0000)));
        assert!(dev.bars[0].contains(PhysAddr(0x10_0000_ffff)));
        assert!(!dev.bars[0].contains(PhysAddr(0x10_0001_0000)));
        assert_eq!(
            dev.bar_phys(0, 0x2000),
            Some(PhysAddr(0x10_0000_2000))
        );
        assert_eq!(dev.bar_phys(0, 0x10000), None);
        assert_eq!(dev.bar_phys(1, 0), None);
    }

    #[test]
    fn mmio_window_allocates_above_ram() {
        let mut w = MmioWindow::above_ram(64 << 30, 1 << 30);
        let a = w.alloc(0x1000).unwrap();
        let b = w.alloc(0x2345).unwrap(); // rounds to 0x3000
        assert_eq!(a, PhysAddr(64 << 30));
        assert_eq!(b, PhysAddr((64 << 30) + 0x1000));
        let c = w.alloc(0x1000).unwrap();
        assert_eq!(c.raw(), (64 << 30) + 0x1000 + 0x3000);
    }

    #[test]
    fn mmio_window_exhausts() {
        let mut w = MmioWindow::above_ram(1 << 30, 0x2000);
        assert!(w.alloc(0x1000).is_some());
        assert!(w.alloc(0x1000).is_some());
        assert!(w.alloc(0x1000).is_none());
    }

    #[test]
    fn pci_address_display() {
        let a = PciAddress {
            bus: 0x81,
            device: 0,
            function: 1,
        };
        assert_eq!(a.to_string(), "81:00.1");
    }
}
