//! # hwmodel — compute-node hardware model
//!
//! Descriptive and functional hardware state for the simulated cluster:
//!
//! * [`addr`] — virtual/physical addresses and page arithmetic.
//! * [`memory`] — sparse physical memory with *real byte storage*, so the
//!   unified-address-space property ("the proxy process sees the same bytes
//!   as the application") is directly testable, plus frame ownership
//!   tracking for the IHK partition.
//! * [`cpu`] — socket/core/NUMA topology.
//! * [`interference`] — the TLB and shared-LLC stretch models behind the
//!   paper's "1% fewer TLB / 3% fewer LLC misses" observation and the
//!   residual noise McKernel cannot eliminate (shared last-level cache).
//! * [`pci`] — PCI devices and BARs (the NIC doorbell pages that get
//!   `mmap()`ed through the device-file path).
//! * [`node`] / [`topology`] — the paper's testbed: 64 nodes, each
//!   2 sockets x 10 cores Xeon E5-2680v2 @ 2.8 GHz, 64 GiB in 2 NUMA
//!   domains, one Connect-IB FDR HCA + one GbE NIC.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod cpu;
pub mod interference;
pub mod memory;
pub mod node;
pub mod pci;
pub mod topology;

pub use addr::{PhysAddr, VirtAddr, PAGE_SHIFT, PAGE_SIZE, PAGE_SIZE_2M};
pub use cpu::{CoreId, CpuTopology, NumaId};
pub use memory::{FrameId, FrameOwner, PhysMemory};
pub use node::{NodeId, NodeSpec};
pub use pci::{Bar, DeviceClass, PciAddress, PciDevice};
pub use topology::ClusterSpec;
