//! TLB and shared-resource interference models.
//!
//! Two hardware effects in the paper are *not* eliminated by kernel-level
//! isolation and must come from the hardware model:
//!
//! 1. **Memory-management dividend** (Fig. 8): McKernel backs anonymous
//!    memory with physically contiguous extents and 2 MiB mappings, and the
//!    paper measures ~1% fewer TLB misses and ~3% fewer LLC misses,
//!    yielding a 1–8% application-level win. We model the fraction of a
//!    compute quantum lost to TLB walks and LLC misses as a function of the
//!    mapping's page size and contiguity.
//! 2. **Shared-resource pollution** (Sec. IV-B2): "certain hardware
//!    components (e.g., the last level cache) are shared, which we cannot
//!    control in software" — an in-situ workload pollutes the LLC of the
//!    socket it runs on and consumes memory/QPI bandwidth node-wide, so
//!    even McKernel shows a few percent variation under co-location.
//!
//! The model outputs a multiplicative *stretch factor* applied to compute
//! quanta. All parameters are public and documented so ablations can sweep
//! them.

/// How a process's hot anonymous memory is mapped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PageBacking {
    /// 4 KiB pages, demand-paged, physically scattered (Linux default).
    Small4k,
    /// 2 MiB mappings over physically contiguous extents (McKernel's buddy
    /// allocator output).
    Large2mContiguous,
}

/// Memory behaviour of a workload's compute phase.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MemProfile {
    /// Fraction of execution that is memory-bound (0 = pure ALU, 1 = pure
    /// streaming). Sparse solvers (HPC-CG) sit high; MD force loops lower.
    pub mem_intensity: f64,
}

impl MemProfile {
    /// A compute-bound profile.
    pub fn compute_bound() -> Self {
        MemProfile { mem_intensity: 0.2 }
    }

    /// A memory-bound profile (sparse matrix kernels).
    pub fn memory_bound() -> Self {
        MemProfile { mem_intensity: 0.8 }
    }
}

/// Pollution pressure exerted by co-located work, per socket.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Pollution {
    /// Cache pressure (0..1) from co-runners sharing this core's LLC.
    pub same_socket: f64,
    /// Memory/QPI bandwidth pressure (0..1) from the other socket.
    pub cross_socket: f64,
}

impl Pollution {
    /// No co-located interference.
    pub const NONE: Pollution = Pollution {
        same_socket: 0.0,
        cross_socket: 0.0,
    };
}

/// The interference model; see module docs. Defaults are calibrated so the
/// Linux-vs-McKernel gap lands in the paper's 1–8% band (Fig. 8) and
/// McKernel's residual under co-location stays at a few percent (Fig. 9).
#[derive(Clone, Copy, Debug)]
pub struct InterferenceModel {
    /// Fraction of a fully memory-bound quantum lost to TLB walks with
    /// 4 KiB scattered pages.
    pub tlb_frac_4k: f64,
    /// Multiplier on TLB loss when 2 MiB contiguous mappings are used
    /// (512x fewer leaf entries; walks mostly disappear).
    pub tlb_large_factor: f64,
    /// Fraction of a fully memory-bound quantum lost to LLC misses in the
    /// uncontended, scattered-pages case.
    pub llc_frac: f64,
    /// Multiplier on LLC loss for physically contiguous backing (fewer
    /// conflict misses; better hardware prefetch).
    pub llc_contig_factor: f64,
    /// Extra LLC loss (relative to `llc_frac`) at same-socket pollution 1.0.
    pub llc_pollution_gain: f64,
    /// Runtime stretch at cross-socket bandwidth pressure 1.0 for a fully
    /// memory-bound quantum. This is large: on Linux the co-located job's
    /// page cache and reclaim traffic spill into the HPC socket's memory
    /// (remote allocations over QPI), stealing local DRAM bandwidth. IHK's
    /// memory reservation makes the LWK partition invisible to Linux's
    /// allocator, so McKernel nodes only feel a small residual (the
    /// `cross_socket` *pressure* is set lower there, not this gain).
    pub membw_pollution_gain: f64,
}

impl Default for InterferenceModel {
    fn default() -> Self {
        InterferenceModel {
            tlb_frac_4k: 0.030,
            tlb_large_factor: 0.25,
            llc_frac: 0.050,
            llc_contig_factor: 0.94,
            llc_pollution_gain: 0.60,
            membw_pollution_gain: 0.32,
        }
    }
}

impl InterferenceModel {
    /// Multiplicative stretch applied to a compute quantum.
    ///
    /// Always >= 1.0; equals 1.0 only for a zero-memory-intensity workload.
    pub fn stretch(&self, prof: MemProfile, backing: PageBacking, pol: Pollution) -> f64 {
        let mi = prof.mem_intensity.clamp(0.0, 1.0);
        let (tlb_mult, llc_mult) = match backing {
            PageBacking::Small4k => (1.0, 1.0),
            PageBacking::Large2mContiguous => (self.tlb_large_factor, self.llc_contig_factor),
        };
        let tlb = self.tlb_frac_4k * tlb_mult;
        let llc = self.llc_frac
            * llc_mult
            * (1.0 + self.llc_pollution_gain * pol.same_socket.clamp(0.0, 1.0));
        let membw = self.membw_pollution_gain * pol.cross_socket.clamp(0.0, 1.0);
        1.0 + mi * (tlb + llc + membw)
    }

    /// Modeled relative TLB miss count (arbitrary units, for the perf
    /// counter interface; the paper reports McKernel seeing ~1% fewer).
    pub fn tlb_miss_index(&self, prof: MemProfile, backing: PageBacking) -> f64 {
        let mult = match backing {
            PageBacking::Small4k => 1.0,
            PageBacking::Large2mContiguous => self.tlb_large_factor,
        };
        prof.mem_intensity * self.tlb_frac_4k * mult
    }

    /// Modeled relative LLC miss count (arbitrary units).
    pub fn llc_miss_index(&self, prof: MemProfile, backing: PageBacking, pol: Pollution) -> f64 {
        let mult = match backing {
            PageBacking::Small4k => 1.0,
            PageBacking::Large2mContiguous => self.llc_contig_factor,
        };
        prof.mem_intensity
            * self.llc_frac
            * mult
            * (1.0 + self.llc_pollution_gain * pol.same_socket)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stretch_at_least_one() {
        let m = InterferenceModel::default();
        for mi in [0.0, 0.3, 1.0] {
            for backing in [PageBacking::Small4k, PageBacking::Large2mContiguous] {
                let s = m.stretch(MemProfile { mem_intensity: mi }, backing, Pollution::NONE);
                assert!(s >= 1.0, "stretch {s} < 1");
            }
        }
        assert_eq!(
            m.stretch(
                MemProfile { mem_intensity: 0.0 },
                PageBacking::Small4k,
                Pollution::NONE
            ),
            1.0
        );
    }

    #[test]
    fn large_pages_beat_small_pages() {
        let m = InterferenceModel::default();
        let p = MemProfile::memory_bound();
        let small = m.stretch(p, PageBacking::Small4k, Pollution::NONE);
        let large = m.stretch(p, PageBacking::Large2mContiguous, Pollution::NONE);
        assert!(large < small);
        // Paper band: the win should be percent-scale, not 2x.
        let gain = small / large - 1.0;
        assert!((0.005..0.10).contains(&gain), "gain {gain} outside 0.5-10%");
    }

    #[test]
    fn pollution_monotone() {
        let m = InterferenceModel::default();
        let p = MemProfile::memory_bound();
        let quiet = m.stretch(p, PageBacking::Large2mContiguous, Pollution::NONE);
        let cross = m.stretch(
            p,
            PageBacking::Large2mContiguous,
            Pollution {
                same_socket: 0.0,
                cross_socket: 1.0,
            },
        );
        let same = m.stretch(
            p,
            PageBacking::Large2mContiguous,
            Pollution {
                same_socket: 1.0,
                cross_socket: 1.0,
            },
        );
        assert!(quiet < cross && cross < same);
        // Full cross-socket pressure (Linux page-cache spill) is a heavy
        // hit on a memory-bound code...
        assert!(cross / quiet - 1.0 > 0.15);
        // ...while the McKernel residual (pressure ~0.1) stays small.
        let resid = m.stretch(
            p,
            PageBacking::Large2mContiguous,
            Pollution {
                same_socket: 0.0,
                cross_socket: 0.1,
            },
        );
        assert!(resid / quiet - 1.0 < 0.04);
    }

    #[test]
    fn miss_indices_reflect_backing() {
        let m = InterferenceModel::default();
        let p = MemProfile::memory_bound();
        assert!(
            m.tlb_miss_index(p, PageBacking::Large2mContiguous)
                < m.tlb_miss_index(p, PageBacking::Small4k)
        );
        assert!(
            m.llc_miss_index(p, PageBacking::Large2mContiguous, Pollution::NONE)
                < m.llc_miss_index(p, PageBacking::Small4k, Pollution::NONE)
        );
    }

    #[test]
    fn pollution_clamped() {
        let m = InterferenceModel::default();
        let p = MemProfile::memory_bound();
        let over = m.stretch(
            p,
            PageBacking::Small4k,
            Pollution {
                same_socket: 5.0,
                cross_socket: 5.0,
            },
        );
        let unit = m.stretch(
            p,
            PageBacking::Small4k,
            Pollution {
                same_socket: 1.0,
                cross_socket: 1.0,
            },
        );
        assert_eq!(over, unit);
    }
}
