//! Transparent device-file mapping — the Fig. 4 flow, executable.
//!
//! Setup (steps 1–5): the application `mmap()`s a device file; McKernel
//! forwards the request; the IHK delegator `vm_mmap()`s the device into
//! the *proxy's* address space and creates a tracking object; McKernel
//! then allocates its own virtual range for the application. The two
//! virtual addresses differ — and that is fine, because the proxy never
//! runs application code and thus never touches its copy of the mapping.
//!
//! Fault (steps 6–11): the application touches the mapping; McKernel's
//! fault handler recognizes the device VMA and asks Linux (through IHK) to
//! resolve the physical address from the tracking object and offset;
//! McKernel fills its own PTE. Afterwards the device is driven entirely by
//! user-space loads/stores — no Linux code on LWK cores.

use crate::abi::{Errno, Pid};
use crate::costs::CostModel;
use crate::ihk::delegator::Delegator;
use crate::mck::mem::vm::VmaKind;
use crate::mck::mem::{self, FaultOutcome};
use crate::mck::McKernel;
use crate::proxy::ProxyProcess;
use hwmodel::addr::{PhysAddr, VirtAddr};
use hwmodel::pci::PciDevice;
use simcore::Cycles;

/// Result of a completed device `mmap` (steps 1–5).
#[derive(Debug, PartialEq, Eq)]
pub struct DevMmapResult {
    /// Application-visible address in the McKernel range.
    pub lwk_va: VirtAddr,
    /// Proxy-side address of the Linux mapping (never dereferenced).
    pub proxy_va: VirtAddr,
    /// Tracking-object id linking the two.
    pub tracking: u64,
    /// Modeled setup cost (IKC round trip + Linux `vm_mmap` + bookkeeping).
    pub cost: Cycles,
}

/// Execute the device-mmap setup flow (Fig. 4 steps 1–5) synchronously.
/// The `cluster` crate performs the same transitions with DES timing.
#[allow(clippy::too_many_arguments)] // mirrors the protocol's actors
pub fn device_mmap(
    mck: &mut McKernel,
    app_pid: Pid,
    proxy: &mut ProxyProcess,
    delegator: &mut Delegator,
    dev: &PciDevice,
    bar: u8,
    file_off: u64,
    len: u64,
) -> Result<DevMmapResult, Errno> {
    let costs = mck.costs;
    // Steps 1-2 happened: the app called mmap(fd) and McKernel forwarded
    // it. Step 3: Linux memory-maps the device file into the proxy.
    let phys_base = dev.bar_phys(bar, file_off).ok_or(Errno::ENODEV)?;
    let proxy_va = proxy.linux_vm.mmap(
        len,
        VmaKind::Device {
            dev_name: dev.dev_name.clone(),
            file_off,
            tracking: 0, // Linux side: the tracking object *is* the record
        },
        true,
        None,
    )?;
    let tracking = delegator.create_tracking(app_pid, &dev.dev_name, phys_base, len, proxy_va.raw());
    // Steps 4-5: Linux replies; McKernel allocates its own virtual range.
    let lwk_va = mck.complete_device_mmap(app_pid, len, &dev.dev_name, file_off, tracking)?;
    // The unified-address-space invariant: the two ranges differ because
    // the proxy's whole view of app memory is the pseudo mapping.
    debug_assert_ne!(lwk_va, proxy_va);
    let cost = costs.offload_fixed_rtt() + costs.devmap_setup;
    Ok(DevMmapResult {
        lwk_va,
        proxy_va,
        tracking,
        cost,
    })
}

/// Execute the device-fault flow (Fig. 4 steps 6–11) synchronously:
/// returns the physical address now installed in the LWK PTE.
pub fn device_fault(
    mck: &mut McKernel,
    app_pid: Pid,
    delegator: &mut Delegator,
    va: VirtAddr,
) -> Result<(PhysAddr, Cycles), Errno> {
    let costs: CostModel = mck.costs;
    // Steps 6-7: access + page fault; McKernel recognizes the device VMA.
    match mck.page_fault(app_pid, va) {
        FaultOutcome::NeedsDeviceResolve {
            file_off: _,
            tracking,
            page_va,
            ..
        } => {
            // Steps 8-10: IKC request; Linux resolves via the tracking
            // object; reply. The offset key is relative to the mapping.
            let vma_start = {
                let proc = mck.process(app_pid).ok_or(Errno::ENOENT)?;
                let vma = proc.aspace.vm.vma_at(va).ok_or(Errno::EFAULT)?;
                vma.start
            };
            let offset = page_va - vma_start;
            let phys = delegator
                .resolve_pfn(tracking, offset)
                .ok_or(Errno::EFAULT)?;
            // Step 11: fill in the missing PTE.
            let proc = mck.process_mut(app_pid).ok_or(Errno::ENOENT)?;
            mem::complete_device_fault(&mut proc.aspace, page_va, phys)
                .map_err(|_| Errno::EEXIST)?;
            mck.trace.bump("mck.devmap.fault");
            Ok((phys, costs.devmap_fault))
        }
        FaultOutcome::Mapped { phys, .. } => Ok((phys, Cycles::ZERO)),
        FaultOutcome::SegFault => Err(Errno::EFAULT),
    }
}

/// Result of a zero-copy device `mmap`: the ordinary Fig. 4 setup plus
/// an eager, batched population of every PTE in the range.
#[derive(Debug, PartialEq, Eq)]
pub struct DevMmapZeroCopyResult {
    /// The underlying mapping (same fields as the lazy flow).
    pub map: DevMmapResult,
    /// PTEs installed eagerly.
    pub pages: u64,
    /// Modeled cost of the batched population: one PFN-resolve IKC
    /// exchange amortized over the whole range, plus a per-page PTE
    /// install. After this, device touches cost nothing extra — the
    /// lazy flow instead pays `devmap_fault` (an offload-class round
    /// trip) on the first touch of *every* page.
    pub populate_cost: Cycles,
}

/// Zero-copy device mmap: run the Fig. 4 setup, then resolve **all**
/// pages of the mapping through the tracking object in one batched
/// exchange and install the device PTEs up front. The mapped frames are
/// the device's own BAR frames — no bounce buffer, no copy — and the
/// app's first touch of any page is already a plain user-space access.
#[allow(clippy::too_many_arguments)] // mirrors the protocol's actors
pub fn device_mmap_zero_copy(
    mck: &mut McKernel,
    app_pid: Pid,
    proxy: &mut ProxyProcess,
    delegator: &mut Delegator,
    dev: &PciDevice,
    bar: u8,
    file_off: u64,
    len: u64,
) -> Result<DevMmapZeroCopyResult, Errno> {
    let map = device_mmap(mck, app_pid, proxy, delegator, dev, bar, file_off, len)?;
    let pages = len.div_ceil(hwmodel::addr::PAGE_SIZE);
    // One batched resolve trip for the whole range (the request carries
    // the page count; the reply carries every PFN) ...
    let mut populate_cost = mck.costs.devmap_fault;
    for i in 0..pages {
        let offset = i * hwmodel::addr::PAGE_SIZE;
        let phys = delegator
            .resolve_pfn(map.tracking, offset)
            .ok_or(Errno::EFAULT)?;
        let proc = mck.process_mut(app_pid).ok_or(Errno::ENOENT)?;
        mem::complete_device_fault(&mut proc.aspace, map.lwk_va + offset, phys)
            .map_err(|_| Errno::EEXIST)?;
        // ... plus the local PTE install per page.
        populate_cost += mck.costs.page_touch;
    }
    mck.trace.add("mck.devmap.zero_copy_pages", pages);
    Ok(DevMmapZeroCopyResult {
        map,
        pages,
        populate_cost,
    })
}

/// Tear down a zero-copy mapping: unmap every PTE through the
/// TLB-coherent path (each leaf removal broadcasts a software-TLB
/// shootdown to every CPU) and drop the Linux-side tracking object.
/// Returns the modeled teardown cost.
pub fn device_munmap_zero_copy(
    mck: &mut McKernel,
    app_pid: Pid,
    delegator: &mut Delegator,
    lwk_va: VirtAddr,
    len: u64,
    tracking: u64,
) -> Result<Cycles, Errno> {
    let stats = mck.munmap_range(app_pid, lwk_va, len)?;
    // The tracking object may already be gone (proxy death reclaimed it);
    // the unmap itself must still succeed.
    delegator.drop_tracking(tracking);
    mck.trace.bump("mck.devmap.zero_copy_unmap");
    Ok(stats.cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs::CostModel;
    use hwmodel::cpu::CoreId;
    use hwmodel::node::{NodeId, NodeSpec};
    use hwmodel::pci::DeviceClass;

    fn setup() -> (McKernel, ProxyProcess, Delegator, PciDevice) {
        let hw = NodeSpec::paper_testbed().build(NodeId(0));
        let dev = hw
            .device_of_class(DeviceClass::InfinibandHca)
            .unwrap()
            .clone();
        let mck = McKernel::boot(
            (10..19).map(CoreId).collect(),
            PhysAddr(1 << 30),
            64 << 20,
            CostModel::default(),
        );
        (mck, ProxyProcess::new(Pid(500), Pid(0)), Delegator::new(), dev)
    }

    #[test]
    fn full_eleven_step_flow() {
        let (mut mck, mut proxy, mut delegator, dev) = setup();
        let pid = mck.create_process(Some(proxy.pid));
        proxy.app_pid = pid;

        // Steps 1-5.
        let res = device_mmap(
            &mut mck,
            pid,
            &mut proxy,
            &mut delegator,
            &dev,
            0,
            0x1000,
            0x4000,
        )
        .unwrap();
        assert_ne!(res.lwk_va, res.proxy_va, "the two mappings differ");
        assert!(res.cost > Cycles::ZERO);

        // Steps 6-11 at an interior page.
        let fault_va = res.lwk_va + 0x2000;
        let (phys, cost) = device_fault(&mut mck, pid, &mut delegator, fault_va).unwrap();
        let bar_base = dev.bars[0].base;
        assert_eq!(phys, bar_base + 0x1000 + 0x2000, "BAR-relative resolution");
        assert_eq!(cost, mck.costs.devmap_fault);

        // The PTE is installed: subsequent access is a plain user-space
        // load/store with no kernel involvement.
        let t = mck
            .process(pid)
            .unwrap()
            .aspace
            .pt
            .translate(fault_va)
            .unwrap();
        assert!(t.flags.device);
        assert_eq!(t.phys, phys);
        let (_, refault_cost) = device_fault(&mut mck, pid, &mut delegator, fault_va).unwrap();
        assert_eq!(refault_cost, Cycles::ZERO, "already mapped: no IKC trip");
    }

    #[test]
    fn zero_copy_mmap_populates_every_pte_eagerly() {
        let (mut mck, mut proxy, mut delegator, dev) = setup();
        let pid = mck.create_process(Some(proxy.pid));
        proxy.app_pid = pid;
        let res = device_mmap_zero_copy(
            &mut mck,
            pid,
            &mut proxy,
            &mut delegator,
            &dev,
            0,
            0x1000,
            0x4000,
        )
        .unwrap();
        assert_eq!(res.pages, 4);
        assert!(res.populate_cost > mck.costs.devmap_fault);
        assert!(
            res.populate_cost < mck.costs.devmap_fault * 4,
            "batched: far cheaper than one resolve trip per page"
        );
        // Every page translates immediately — no faults, no IKC.
        let bar_base = dev.bars[0].base;
        for i in 0..4u64 {
            let (phys, cost) =
                device_fault(&mut mck, pid, &mut delegator, res.map.lwk_va + i * 0x1000)
                    .unwrap();
            assert_eq!(cost, Cycles::ZERO, "page {i} pre-resolved");
            assert_eq!(phys, bar_base + 0x1000 + i * 0x1000);
        }
        assert_eq!(
            mck.trace.get("mck.devmap.fault"),
            0,
            "no lazy faults were needed"
        );
    }

    #[test]
    fn zero_copy_unmap_shoots_down_every_cpu_tlb() {
        // Regression: a stale software-TLB entry must never survive a
        // devmap unmap. Warm every CPU's TLB on every page, tear the
        // mapping down, then do *cache-only* lookups — any hit means a
        // CPU could still touch device frames through a dead mapping.
        let (mut mck, mut proxy, mut delegator, dev) = setup();
        let pid = mck.create_process(Some(proxy.pid));
        proxy.app_pid = pid;
        let res = device_mmap_zero_copy(
            &mut mck,
            pid,
            &mut proxy,
            &mut delegator,
            &dev,
            0,
            0,
            0x3000,
        )
        .unwrap();
        let ncpus = {
            let proc = mck.process_mut(pid).unwrap();
            let n = proc.aspace.tlb.len();
            for cpu in 0..n {
                for i in 0..3u64 {
                    assert!(proc
                        .aspace
                        .translate_on(cpu, res.map.lwk_va + i * 0x1000)
                        .is_some());
                }
            }
            n
        };
        let cost = device_munmap_zero_copy(
            &mut mck,
            pid,
            &mut delegator,
            res.map.lwk_va,
            0x3000,
            res.map.tracking,
        )
        .unwrap();
        assert!(cost > Cycles::ZERO, "teardown charges shootdown work");
        let proc = mck.process_mut(pid).unwrap();
        for cpu in 0..ncpus {
            for i in 0..3u64 {
                assert!(
                    proc.aspace
                        .tlb
                        .lookup_on(cpu, res.map.lwk_va + i * 0x1000)
                        .is_none(),
                    "stale TLB entry for page {i} survived on cpu {cpu}"
                );
            }
        }
        assert_eq!(delegator.tracking_count(), 0, "tracking object dropped");
        // The VMA itself is gone: a new fault is a clean EFAULT.
        assert_eq!(
            device_fault(&mut mck, pid, &mut delegator, res.map.lwk_va),
            Err(Errno::EFAULT)
        );
    }

    #[test]
    fn mapping_past_bar_end_rejected() {
        let (mut mck, mut proxy, mut delegator, dev) = setup();
        let pid = mck.create_process(Some(proxy.pid));
        let bar_size = dev.bars[0].size;
        assert_eq!(
            device_mmap(
                &mut mck,
                pid,
                &mut proxy,
                &mut delegator,
                &dev,
                0,
                bar_size, // offset at the very end: no space left
                0x1000,
            ),
            Err(Errno::ENODEV)
        );
    }

    #[test]
    fn fault_past_mapping_end_is_efault() {
        let (mut mck, mut proxy, mut delegator, dev) = setup();
        let pid = mck.create_process(Some(proxy.pid));
        let res = device_mmap(
            &mut mck,
            pid,
            &mut proxy,
            &mut delegator,
            &dev,
            0,
            0,
            0x2000,
        )
        .unwrap();
        // The VMA is exactly 0x2000; an address beyond it has no VMA.
        assert_eq!(
            device_fault(&mut mck, pid, &mut delegator, res.lwk_va + 0x3000),
            Err(Errno::EFAULT)
        );
    }

    #[test]
    fn two_mappings_get_distinct_tracking_objects() {
        let (mut mck, mut proxy, mut delegator, dev) = setup();
        let pid = mck.create_process(Some(proxy.pid));
        let a = device_mmap(&mut mck, pid, &mut proxy, &mut delegator, &dev, 0, 0, 0x1000)
            .unwrap();
        let b = device_mmap(
            &mut mck,
            pid,
            &mut proxy,
            &mut delegator,
            &dev,
            0,
            0x10_0000,
            0x1000,
        )
        .unwrap();
        assert_ne!(a.tracking, b.tracking);
        assert_ne!(a.lwk_va, b.lwk_va);
        assert_ne!(a.proxy_va, b.proxy_va);
        // Each resolves to its own BAR offset.
        let (pa, _) = device_fault(&mut mck, pid, &mut delegator, a.lwk_va).unwrap();
        let (pb, _) = device_fault(&mut mck, pid, &mut delegator, b.lwk_va).unwrap();
        assert_eq!(pb - pa, 0x10_0000);
    }
}

#[cfg(test)]
mod failure_tests {
    use super::*;
    use crate::costs::CostModel;
    use hwmodel::cpu::CoreId;
    use hwmodel::node::{NodeId, NodeSpec};
    use hwmodel::pci::DeviceClass;

    #[test]
    fn fault_after_tracking_dropped_is_efault() {
        // Failure injection: Linux tears down the tracking object (e.g.
        // the proxy died and the delegator cleaned up) while the LWK
        // still holds the VMA. The next fault must fail cleanly, not
        // resolve to stale physical memory.
        let hw = NodeSpec::paper_testbed().build(NodeId(0));
        let dev = hw
            .device_of_class(DeviceClass::InfinibandHca)
            .expect("HCA present")
            .clone();
        let mut mck = McKernel::boot(
            (10..19).map(CoreId).collect(),
            PhysAddr(1 << 30),
            64 << 20,
            CostModel::default(),
        );
        let mut delegator = Delegator::new();
        let pid = mck.create_process(Some(Pid(500)));
        let mut proxy = ProxyProcess::new(Pid(500), pid);
        let map = device_mmap(&mut mck, pid, &mut proxy, &mut delegator, &dev, 0, 0, 0x4000)
            .expect("UAR maps");
        // First page resolves fine.
        device_fault(&mut mck, pid, &mut delegator, map.lwk_va).expect("resolves");
        // Linux drops the tracking object.
        assert!(delegator.drop_tracking(map.tracking));
        // A fault on a *new* page of the same mapping now fails.
        assert_eq!(
            device_fault(&mut mck, pid, &mut delegator, map.lwk_va + 0x2000),
            Err(Errno::EFAULT)
        );
        // But the already-installed PTE keeps working (the paper's point:
        // after setup, the data path needs no Linux at all).
        let (_, cost) = device_fault(&mut mck, pid, &mut delegator, map.lwk_va)
            .expect("installed PTE survives");
        assert_eq!(cost, simcore::Cycles::ZERO);
    }
}
