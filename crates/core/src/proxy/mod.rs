//! The proxy process.
//!
//! "For each process running on McKernel there is a process created on the
//! Linux side, which we call the proxy-process. The proxy process' central
//! role is to facilitate system call offloading... The proxy process also
//! enables Linux to maintain certain state information that would have to
//! be otherwise kept track of in the LWK" (Sec. II) — e.g., the file
//! descriptor table lives in Linux, not in McKernel.

pub mod devmap;
pub mod unified;

use crate::abi::Pid;
use crate::mck::mem::vm::{VmSpace, EXCLUDED_END, EXCLUDED_START};
use hwmodel::addr::VirtAddr;
use unified::UnifiedAddressSpace;

/// Execution state of the proxy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProxyState {
    /// Parked in the delegator `ioctl()` waiting for requests.
    Parked,
    /// Executing an offloaded syscall (sequence number attached).
    Executing(u64),
    /// The process died (crash or kill); it will never answer again.
    /// Stranded offloads must be failed with `-EIO` and the paired LWK
    /// application torn down.
    Dead,
}

/// A proxy process on Linux, paired with one McKernel application.
#[derive(Debug)]
pub struct ProxyProcess {
    /// Linux pid of the proxy.
    pub pid: Pid,
    /// McKernel pid of the application it serves.
    pub app_pid: Pid,
    /// Load address of the position-independent proxy image — inside the
    /// range excluded from McKernel user space (Fig. 3, red box).
    pub image_base: VirtAddr,
    /// The proxy's Linux-side VMA tree (device files are `vm_mmap()`ed
    /// here in Fig. 4 step 3).
    pub linux_vm: VmSpace,
    /// The pseudo mapping covering the application's user range
    /// (Fig. 3, green box).
    pub uas: UnifiedAddressSpace,
    /// Current state.
    pub state: ProxyState,
}

impl ProxyProcess {
    /// Spawn the proxy for application `app_pid`. The PIE image is placed
    /// in the excluded range.
    pub fn new(pid: Pid, app_pid: Pid) -> Self {
        let mut linux_vm = VmSpace::proxy_side();
        // Load the proxy image (text+data+heap, modeled as one 32 MiB VMA)
        // at the start of the excluded window.
        let image_base = linux_vm
            .mmap(
                32 << 20,
                crate::mck::mem::vm::VmaKind::Anon { large_ok: false },
                true,
                Some(VirtAddr(EXCLUDED_START)),
            )
            .expect("excluded range free in a fresh proxy");
        ProxyProcess {
            pid,
            app_pid,
            image_base,
            linux_vm,
            uas: UnifiedAddressSpace::new(),
            state: ProxyState::Parked,
        }
    }

    /// Whether the image landed inside the excluded window (invariant the
    /// unified address space depends on).
    pub fn image_in_excluded_range(&self) -> bool {
        self.image_base.raw() >= EXCLUDED_START && self.image_base.raw() < EXCLUDED_END
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proxy_image_is_in_excluded_window() {
        let p = ProxyProcess::new(Pid(500), Pid(1000));
        assert!(p.image_in_excluded_range());
        assert_eq!(p.state, ProxyState::Parked);
    }

    #[test]
    fn proxy_vm_holds_the_image() {
        let p = ProxyProcess::new(Pid(500), Pid(1000));
        assert!(p.linux_vm.vma_at(p.image_base).is_some());
        assert_eq!(p.linux_vm.mapped_bytes(), 32 << 20);
    }
}
