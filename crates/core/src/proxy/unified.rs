//! The unified address space (Sec. III-A, Fig. 3).
//!
//! "The entire valid virtual address range of McKernel's application
//! user-space is covered by a special mapping in the proxy process for
//! which we use a pseudo file mapping in Linux... Every time an unmapped
//! address is accessed, the page fault handler of the pseudo mapping
//! consults the page tables corresponding to the application on the LWK
//! and maps it to the exact same physical page."
//!
//! The payoff is testable directly here: offloaded syscalls executed by
//! the proxy read and write **the application's bytes** through
//! [`UnifiedAddressSpace::read`]/[`write`](UnifiedAddressSpace::write),
//! which go va → (LWK page table) → physical frame → `PhysMemory`.

use crate::costs::CostModel;
use crate::mck::mem::pagetable::PageTable;
use crate::mck::mem::vm::{EXCLUDED_END, EXCLUDED_START, USER_END, USER_START};
use hwmodel::addr::{PhysAddr, VirtAddr, PAGE_SIZE};
use hwmodel::memory::PhysMemory;
use simcore::Cycles;
use std::collections::HashMap;

/// Faults the pseudo mapping can raise.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UasFault {
    /// Address is inside the excluded proxy-image window — by construction
    /// the pseudo mapping does not cover it.
    ExcludedRange(VirtAddr),
    /// Address is outside McKernel's valid user range.
    OutOfRange(VirtAddr),
    /// The LWK page tables have no translation: the *application* never
    /// touched this page either, so the access is a genuine EFAULT (the
    /// app would have passed a bad pointer).
    NotMappedOnLwk(VirtAddr),
}

/// Direct-mapped front-cache size. Every offloaded pointer dereference
/// lands here first; the authoritative `faulted` map is only consulted
/// (and hashed) on a front miss.
const FRONT_SLOTS: usize = 64;

/// Proxy-side pseudo-mapping state: which pages have been faulted in and
/// what they resolve to. `faulted` is authoritative; `front_tags`/
/// `front_base` are a small direct-mapped cache in front of it so the
/// steady-state resolve is an index + compare instead of a SipHash probe.
/// Observable behavior (fault/hit counts, resident PTEs, returned
/// addresses) is identical with the cache disabled.
#[derive(Debug)]
pub struct UnifiedAddressSpace {
    faulted: HashMap<u64, PhysAddr>,
    front_tags: [u64; FRONT_SLOTS],
    front_base: [PhysAddr; FRONT_SLOTS],
    fault_count: u64,
    hit_count: u64,
    invalidated: u64,
}

impl Default for UnifiedAddressSpace {
    fn default() -> Self {
        UnifiedAddressSpace {
            faulted: HashMap::new(),
            front_tags: [u64::MAX; FRONT_SLOTS],
            front_base: [PhysAddr(0); FRONT_SLOTS],
            fault_count: 0,
            hit_count: 0,
            invalidated: 0,
        }
    }
}

impl UnifiedAddressSpace {
    /// Empty pseudo mapping (no pages faulted).
    pub fn new() -> Self {
        UnifiedAddressSpace::default()
    }

    /// Resolve `va` to the physical page backing the application's memory,
    /// faulting the pseudo-mapping PTE in on first touch. Returns the
    /// physical address of the *byte* and the service cost (near zero for
    /// already-faulted pages).
    pub fn resolve(
        &mut self,
        va: VirtAddr,
        lwk_pt: &PageTable,
        costs: &CostModel,
    ) -> Result<(PhysAddr, Cycles), UasFault> {
        let raw = va.raw();
        if (EXCLUDED_START..EXCLUDED_END).contains(&raw) {
            return Err(UasFault::ExcludedRange(va));
        }
        if !(USER_START..USER_END).contains(&raw) {
            return Err(UasFault::OutOfRange(va));
        }
        let page = va.page_align_down().raw();
        let slot = ((page / PAGE_SIZE) as usize) % FRONT_SLOTS;
        if self.front_tags[slot] == page {
            self.hit_count += 1;
            return Ok((self.front_base[slot] + va.page_offset(), Cycles::ZERO));
        }
        if let Some(&base) = self.faulted.get(&page) {
            self.front_tags[slot] = page;
            self.front_base[slot] = base;
            self.hit_count += 1;
            return Ok((base + va.page_offset(), Cycles::ZERO));
        }
        let tr = lwk_pt
            .translate(va)
            .ok_or(UasFault::NotMappedOnLwk(va))?;
        let page_phys = tr.phys.page_align_down();
        self.faulted.insert(page, page_phys);
        self.front_tags[slot] = page;
        self.front_base[slot] = page_phys;
        self.fault_count += 1;
        Ok((page_phys + va.page_offset(), costs.unified_fault))
    }

    /// Proxy-side read of application memory (pointer-argument
    /// dereference during an offloaded syscall). Returns total fault cost.
    pub fn read(
        &mut self,
        va: VirtAddr,
        out: &mut [u8],
        lwk_pt: &PageTable,
        mem: &PhysMemory,
        costs: &CostModel,
    ) -> Result<Cycles, UasFault> {
        let mut cost = Cycles::ZERO;
        let mut done = 0usize;
        while done < out.len() {
            let cur = va + done as u64;
            let (pa, c) = self.resolve(cur, lwk_pt, costs)?;
            cost += c;
            let n = (out.len() - done).min((PAGE_SIZE - cur.page_offset()) as usize);
            mem.read(pa, &mut out[done..done + n]);
            done += n;
        }
        Ok(cost)
    }

    /// Proxy-side write into application memory (e.g. `read()` results).
    pub fn write(
        &mut self,
        va: VirtAddr,
        data: &[u8],
        lwk_pt: &PageTable,
        mem: &mut PhysMemory,
        costs: &CostModel,
    ) -> Result<Cycles, UasFault> {
        let mut cost = Cycles::ZERO;
        let mut done = 0usize;
        while done < data.len() {
            let cur = va + done as u64;
            let (pa, c) = self.resolve(cur, lwk_pt, costs)?;
            cost += c;
            let n = (data.len() - done).min((PAGE_SIZE - cur.page_offset()) as usize);
            mem.write(pa, &data[done..done + n]);
            done += n;
        }
        Ok(cost)
    }

    /// Batch-prefault every page of `[start, start+len)` in one sweep —
    /// the Linux-side half of a zero-copy device mmap, where the proxy
    /// pre-populates its pseudo mapping instead of taking one
    /// `unified_fault` per later pointer dereference. Returns the pages
    /// resolved and the total (one-time) fault cost.
    pub fn prefault_range(
        &mut self,
        start: VirtAddr,
        len: u64,
        lwk_pt: &PageTable,
        costs: &CostModel,
    ) -> Result<(u64, Cycles), UasFault> {
        let mut cost = Cycles::ZERO;
        let mut pages = 0u64;
        let mut va = start.page_align_down();
        let end = start.raw() + len;
        while va.raw() < end {
            let (_, c) = self.resolve(va, lwk_pt, costs)?;
            cost += c;
            pages += 1;
            va = va + PAGE_SIZE;
        }
        Ok((pages, cost))
    }

    /// Synchronization on `munmap`: "Linux' page table entries in the
    /// pseudo mapping have to be occasionally synchronized with McKernel,
    /// for instance, when the application calls munmap()". Returns the
    /// number of PTEs shot down.
    pub fn invalidate_range(&mut self, start: VirtAddr, len: u64) -> u64 {
        let s = start.page_align_down().raw();
        let e = start.raw() + len;
        let before = self.faulted.len();
        self.faulted.retain(|&page, _| page < s || page >= e);
        // Shoot down the front cache wholesale: invalidation is the cold
        // path and a full flush can never leave a stale translation behind.
        self.front_tags = [u64::MAX; FRONT_SLOTS];
        let removed = (before - self.faulted.len()) as u64;
        self.invalidated += removed;
        removed
    }

    /// (first-touch faults, cached hits, invalidated PTEs).
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.fault_count, self.hit_count, self.invalidated)
    }

    /// Populated pseudo-mapping PTE count.
    pub fn resident_ptes(&self) -> usize {
        self.faulted.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mck::mem::pagetable::PteFlags;

    fn setup() -> (PageTable, PhysMemory, CostModel) {
        let mut pt = PageTable::new();
        pt.map_4k(VirtAddr(0x100_0000), PhysAddr(0x20_0000), PteFlags::rw())
            .unwrap();
        pt.map_4k(VirtAddr(0x100_1000), PhysAddr(0x5_0000), PteFlags::rw())
            .unwrap();
        (pt, PhysMemory::new(1 << 30, 1), CostModel::default())
    }

    #[test]
    fn resolves_to_the_exact_same_physical_page() {
        let (pt, _, costs) = setup();
        let mut uas = UnifiedAddressSpace::new();
        let (pa, cost) = uas.resolve(VirtAddr(0x100_0123), &pt, &costs).unwrap();
        assert_eq!(pa, PhysAddr(0x20_0123));
        assert_eq!(cost, costs.unified_fault);
        // Second access: PTE cached, no fault cost.
        let (pa2, cost2) = uas.resolve(VirtAddr(0x100_0456), &pt, &costs).unwrap();
        assert_eq!(pa2, PhysAddr(0x20_0456));
        assert_eq!(cost2, Cycles::ZERO);
        assert_eq!(uas.stats().0, 1);
        assert_eq!(uas.stats().1, 1);
    }

    #[test]
    fn proxy_sees_app_bytes() {
        let (pt, mut mem, costs) = setup();
        // The "application" wrote through its own mapping.
        mem.write(PhysAddr(0x20_0100), b"syscall-arg-buffer");
        let mut uas = UnifiedAddressSpace::new();
        let mut buf = [0u8; 18];
        uas.read(VirtAddr(0x100_0100), &mut buf, &pt, &mem, &costs)
            .unwrap();
        assert_eq!(&buf, b"syscall-arg-buffer");
    }

    #[test]
    fn proxy_writes_are_visible_to_app() {
        let (pt, mut mem, costs) = setup();
        let mut uas = UnifiedAddressSpace::new();
        uas.write(VirtAddr(0x100_0800), b"result", &pt, &mut mem, &costs)
            .unwrap();
        // The app reads through its own translation.
        let pa = pt.translate(VirtAddr(0x100_0800)).unwrap().phys;
        let mut back = [0u8; 6];
        mem.read(pa, &mut back);
        assert_eq!(&back, b"result");
    }

    #[test]
    fn cross_page_read_spans_discontiguous_frames() {
        let (pt, mut mem, costs) = setup();
        // Pages 0x100_0000 and 0x100_1000 map to wildly different frames.
        mem.write(PhysAddr(0x20_0000 + 0xff0), b"AAAABBBBCCCCDDDD");
        // ... but only the first 16 bytes of that write are on page one;
        // emulate the app writing the tail on the second page.
        mem.write(PhysAddr(0x5_0000), b"tail-on-page-two");
        let mut uas = UnifiedAddressSpace::new();
        let mut buf = [0u8; 32];
        uas.read(VirtAddr(0x100_0ff0), &mut buf, &pt, &mem, &costs)
            .unwrap();
        assert_eq!(&buf[..16], b"AAAABBBBCCCCDDDD");
        assert_eq!(&buf[16..], b"tail-on-page-two");
        assert_eq!(uas.resident_ptes(), 2);
    }

    #[test]
    fn prefault_range_populates_in_one_sweep() {
        let (pt, _, costs) = setup();
        let mut uas = UnifiedAddressSpace::new();
        let (pages, cost) = uas
            .prefault_range(VirtAddr(0x100_0000), 2 * PAGE_SIZE, &pt, &costs)
            .unwrap();
        assert_eq!(pages, 2);
        assert_eq!(cost, costs.unified_fault * 2);
        assert_eq!(uas.resident_ptes(), 2);
        // Later dereferences are all hits: the prefault paid everything.
        let (_, c) = uas.resolve(VirtAddr(0x100_0abc), &pt, &costs).unwrap();
        assert_eq!(c, Cycles::ZERO);
        // Prefaulting again is free (already resident).
        let (pages2, cost2) = uas
            .prefault_range(VirtAddr(0x100_0000), 2 * PAGE_SIZE, &pt, &costs)
            .unwrap();
        assert_eq!((pages2, cost2), (2, Cycles::ZERO));
        // A range the app never mapped propagates the EFAULT.
        assert!(uas
            .prefault_range(VirtAddr(0x7000_0000), PAGE_SIZE, &pt, &costs)
            .is_err());
    }

    #[test]
    fn excluded_range_faults() {
        let (pt, _, costs) = setup();
        let mut uas = UnifiedAddressSpace::new();
        let va = VirtAddr(EXCLUDED_START + 0x1000);
        assert_eq!(
            uas.resolve(va, &pt, &costs),
            Err(UasFault::ExcludedRange(va))
        );
    }

    #[test]
    fn unmapped_app_page_is_efault() {
        let (pt, _, costs) = setup();
        let mut uas = UnifiedAddressSpace::new();
        let va = VirtAddr(0x7000_0000);
        assert_eq!(
            uas.resolve(va, &pt, &costs),
            Err(UasFault::NotMappedOnLwk(va))
        );
    }

    #[test]
    fn out_of_user_range_rejected() {
        let (pt, _, costs) = setup();
        let mut uas = UnifiedAddressSpace::new();
        assert_eq!(
            uas.resolve(VirtAddr(0x100), &pt, &costs),
            Err(UasFault::OutOfRange(VirtAddr(0x100)))
        );
        assert_eq!(
            uas.resolve(VirtAddr(USER_END + 0x1000), &pt, &costs),
            Err(UasFault::OutOfRange(VirtAddr(USER_END + 0x1000)))
        );
    }

    #[test]
    fn munmap_sync_invalidates_pseudo_ptes() {
        let (pt, _, costs) = setup();
        let mut uas = UnifiedAddressSpace::new();
        uas.resolve(VirtAddr(0x100_0000), &pt, &costs).unwrap();
        uas.resolve(VirtAddr(0x100_1000), &pt, &costs).unwrap();
        assert_eq!(uas.resident_ptes(), 2);
        let n = uas.invalidate_range(VirtAddr(0x100_0000), 0x1000);
        assert_eq!(n, 1);
        assert_eq!(uas.resident_ptes(), 1);
        // After invalidation, a fresh access re-faults (and would observe a
        // *new* translation if McKernel remapped the page).
        let (_, cost) = uas.resolve(VirtAddr(0x100_0000), &pt, &costs).unwrap();
        assert_eq!(cost, costs.unified_fault);
    }

    #[test]
    fn front_cache_aliases_never_mix_pages() {
        // Two pages FRONT_SLOTS apart share a direct-mapped slot; ping-pong
        // accesses must keep returning each page's own frame, with the
        // same counter evolution as the cache-free implementation.
        let (mut pt, _, costs) = setup();
        let stride = FRONT_SLOTS as u64 * PAGE_SIZE;
        pt.map_4k(
            VirtAddr(0x100_0000 + stride),
            PhysAddr(0x9_0000),
            PteFlags::rw(),
        )
        .unwrap();
        let mut uas = UnifiedAddressSpace::new();
        for _ in 0..4 {
            let (a, _) = uas.resolve(VirtAddr(0x100_0000), &pt, &costs).unwrap();
            let (b, _) = uas
                .resolve(VirtAddr(0x100_0000 + stride), &pt, &costs)
                .unwrap();
            assert_eq!(a, PhysAddr(0x20_0000));
            assert_eq!(b, PhysAddr(0x9_0000));
        }
        let (faults, hits, _) = uas.stats();
        assert_eq!(faults, 2, "one first-touch fault per page");
        assert_eq!(hits, 6, "every later access counts as a hit");
    }

    #[test]
    fn stale_translation_detected_after_remap() {
        // Documented semantics: invalidate-then-refault picks up remaps.
        let (mut pt, _, costs) = setup();
        let mut uas = UnifiedAddressSpace::new();
        let va = VirtAddr(0x100_0000);
        let (pa1, _) = uas.resolve(va, &pt, &costs).unwrap();
        // McKernel unmaps and remaps the page to a different frame.
        pt.unmap(va);
        pt.map_4k(va, PhysAddr(0x77_0000), PteFlags::rw()).unwrap();
        uas.invalidate_range(va, PAGE_SIZE);
        let (pa2, _) = uas.resolve(va, &pt, &costs).unwrap();
        assert_ne!(pa1.page_align_down(), pa2.page_align_down());
        assert_eq!(pa2, PhysAddr(0x77_0000));
    }
}
