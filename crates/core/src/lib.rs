//! # hlwk-core — the IHK/McKernel hybrid lightweight kernel
//!
//! This crate models the paper's primary contribution: a lightweight kernel
//! (**McKernel**) running beside an unmodified Linux on a partition of CPU
//! cores and physical memory, glued together by the **Interface for
//! Heterogeneous Kernels (IHK)** and a per-application **proxy process**
//! that executes offloaded system calls on Linux.
//!
//! Module map (mirrors Fig. 2 of the paper):
//!
//! * [`abi`] — the Linux-compatible ABI surface: syscall numbers, errno,
//!   process ids. McKernel is binary-ABI-compatible with Linux; the same
//!   "binaries" (workload descriptions) run on both kernels unmodified.
//! * [`costs`] — the calibrated cost model for kernel entry, IKC hops,
//!   page-fault service and friends.
//! * [`ihk`] — resource partitioning ([`ihk::partition`]), LWK lifecycle
//!   ([`ihk::manager`]), inter-kernel communication ([`ihk::ikc`]) and the
//!   Linux-side system-call delegator ([`ihk::delegator`]).
//! * [`mck`] — the lightweight kernel proper: physical memory management
//!   ([`mck::mem`]), processes and threads ([`mck::process`]), the
//!   cooperative tick-less scheduler ([`mck::sched`]), the syscall table
//!   with its delegate-vs-implement split ([`mck::syscall`]), signals
//!   ([`mck::signal`]) and hardware performance counters ([`mck::perfctr`]).
//! * [`proxy`] — the proxy process: the unified address space
//!   ([`proxy::unified`]) and transparent device-file mapping
//!   ([`proxy::devmap`]).
//!
//! The crate is *functionally* complete and synchronous; the discrete-event
//! timing (when an IKC interrupt is delivered, when the proxy gets
//! scheduled) is supplied by the `cluster` crate which drives these state
//! machines from the simulation loop.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abi;
pub mod costs;
pub mod ihk;
pub mod mck;
pub mod proxy;

pub use abi::{Errno, Fd, Pid, Sysno, Tid};
pub use ihk::manager::{IhkManager, OsInstance};
pub use mck::McKernel;
