//! Linux-compatible ABI surface.
//!
//! McKernel "retains a binary compatible ABI with Linux" (Sec. II): the
//! same application runs on either kernel. Here that means both kernels
//! speak the same [`Sysno`] numbering (the x86-64 Linux table), the same
//! [`Errno`] values, and the same id types.

use std::fmt;

/// Process id (shared between McKernel and its Linux proxy pairing).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Pid(pub u32);

/// Thread id.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Tid(pub u32);

/// File descriptor. McKernel deliberately has *no* fd table: "McKernel for
/// instance has no notion of file descriptors, but rather it simply returns
/// the number it receives from the proxy process" (Sec. II).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Fd(pub i32);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

impl fmt::Display for Tid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tid{}", self.0)
    }
}

/// Errno values (x86-64 Linux numbering).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(i32)]
#[allow(missing_docs)]
pub enum Errno {
    EPERM = 1,
    ENOENT = 2,
    EINTR = 4,
    EIO = 5,
    EBADF = 9,
    EAGAIN = 11,
    ENOMEM = 12,
    EACCES = 13,
    EFAULT = 14,
    EBUSY = 16,
    EEXIST = 17,
    ENODEV = 19,
    EINVAL = 22,
    ENFILE = 23,
    ENOSPC = 28,
    ENOSYS = 38,
    EOVERFLOW = 75,
}

/// Result of a system call: non-negative value or errno.
pub type SyscallResult = Result<i64, Errno>;

/// Encode a [`SyscallResult`] in the Linux register convention
/// (negative errno in `rax`).
pub fn encode_result(r: SyscallResult) -> i64 {
    match r {
        Ok(v) => v,
        Err(e) => -(e as i32 as i64),
    }
}

/// Decode the Linux register convention back into a [`SyscallResult`].
/// Unknown negative values map to `EINVAL` (they cannot occur internally).
pub fn decode_result(raw: i64) -> SyscallResult {
    if raw >= 0 {
        return Ok(raw);
    }
    let e = match -raw {
        1 => Errno::EPERM,
        2 => Errno::ENOENT,
        4 => Errno::EINTR,
        5 => Errno::EIO,
        9 => Errno::EBADF,
        11 => Errno::EAGAIN,
        12 => Errno::ENOMEM,
        13 => Errno::EACCES,
        14 => Errno::EFAULT,
        16 => Errno::EBUSY,
        17 => Errno::EEXIST,
        19 => Errno::ENODEV,
        22 => Errno::EINVAL,
        23 => Errno::ENFILE,
        28 => Errno::ENOSPC,
        38 => Errno::ENOSYS,
        75 => Errno::EOVERFLOW,
        _ => Errno::EINVAL,
    };
    Err(e)
}

/// System call numbers (x86-64 Linux table subset used by the workloads).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u32)]
#[allow(missing_docs)]
pub enum Sysno {
    Read = 0,
    Write = 1,
    Open = 2,
    Close = 3,
    Stat = 4,
    Lseek = 8,
    Mmap = 9,
    Mprotect = 10,
    Munmap = 11,
    Brk = 12,
    RtSigaction = 13,
    RtSigprocmask = 14,
    Ioctl = 16,
    SchedYield = 24,
    Madvise = 28,
    Nanosleep = 35,
    Getpid = 39,
    Clone = 56,
    Exit = 60,
    Kill = 62,
    Uname = 63,
    Fcntl = 72,
    Getcwd = 79,
    Gettimeofday = 96,
    Futex = 202,
    SchedSetaffinity = 203,
    SchedGetaffinity = 204,
    ClockGettime = 228,
    ExitGroup = 231,
    Openat = 257,
    PerfEventOpen = 298,
    GetRandom = 318,
}

impl Sysno {
    /// The raw Linux syscall number.
    pub fn nr(self) -> u32 {
        self as u32
    }

    /// Look up a syscall by number.
    pub fn from_nr(nr: u32) -> Option<Sysno> {
        use Sysno::*;
        Some(match nr {
            0 => Read,
            1 => Write,
            2 => Open,
            3 => Close,
            4 => Stat,
            8 => Lseek,
            9 => Mmap,
            10 => Mprotect,
            11 => Munmap,
            12 => Brk,
            13 => RtSigaction,
            14 => RtSigprocmask,
            16 => Ioctl,
            24 => SchedYield,
            28 => Madvise,
            35 => Nanosleep,
            39 => Getpid,
            56 => Clone,
            60 => Exit,
            62 => Kill,
            63 => Uname,
            72 => Fcntl,
            79 => Getcwd,
            96 => Gettimeofday,
            202 => Futex,
            203 => SchedSetaffinity,
            204 => SchedGetaffinity,
            228 => ClockGettime,
            231 => ExitGroup,
            257 => Openat,
            298 => PerfEventOpen,
            318 => GetRandom,
            _ => return None,
        })
    }

    /// Every syscall this model knows about.
    pub fn all() -> &'static [Sysno] {
        use Sysno::*;
        &[
            Read,
            Write,
            Open,
            Close,
            Stat,
            Lseek,
            Mmap,
            Mprotect,
            Munmap,
            Brk,
            RtSigaction,
            RtSigprocmask,
            Ioctl,
            SchedYield,
            Madvise,
            Nanosleep,
            Getpid,
            Clone,
            Exit,
            Kill,
            Uname,
            Fcntl,
            Getcwd,
            Gettimeofday,
            Futex,
            SchedSetaffinity,
            SchedGetaffinity,
            ClockGettime,
            ExitGroup,
            Openat,
            PerfEventOpen,
            GetRandom,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nr_round_trips() {
        for &s in Sysno::all() {
            assert_eq!(Sysno::from_nr(s.nr()), Some(s));
        }
    }

    #[test]
    fn unknown_nr_is_none() {
        assert_eq!(Sysno::from_nr(9999), None);
        assert_eq!(Sysno::from_nr(5), None); // fstat not modeled
    }

    #[test]
    fn result_encoding_matches_linux_convention() {
        assert_eq!(encode_result(Ok(42)), 42);
        assert_eq!(encode_result(Err(Errno::ENOSYS)), -38);
        assert_eq!(decode_result(42), Ok(42));
        assert_eq!(decode_result(-38), Err(Errno::ENOSYS));
        assert_eq!(decode_result(0), Ok(0));
    }

    #[test]
    fn encode_decode_round_trip() {
        for e in [
            Errno::EPERM,
            Errno::ENOENT,
            Errno::EBADF,
            Errno::ENOMEM,
            Errno::EFAULT,
            Errno::EINVAL,
            Errno::ENOSYS,
        ] {
            assert_eq!(decode_result(encode_result(Err(e))), Err(e));
        }
    }
}
