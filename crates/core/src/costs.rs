//! Calibrated cost model.
//!
//! Fixed mechanism costs live here; anything that depends on dynamic state
//! (how long until the proxy gets a Linux timeslice, wire latency) is
//! computed where that state lives. Values are era-appropriate estimates
//! for a 2.8 GHz Sandy/Ivy-Bridge-class part running RHEL 6.5 and are the
//! knobs the A1/A6 ablation benches sweep.

use simcore::Cycles;

/// Cost table for kernel mechanisms.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// McKernel syscall entry + dispatch + exit for an in-LWK call.
    pub lwk_syscall: Cycles,
    /// Linux syscall entry/exit overhead (before service time).
    pub linux_syscall_entry: Cycles,
    /// Marshal arguments + enqueue an IKC message + ring the doorbell.
    pub ikc_send: Cycles,
    /// Inter-kernel interrupt delivery latency (IPI across the partition).
    pub ikc_ipi: Cycles,
    /// Delegator kernel-module work to dequeue a request and wake the proxy.
    pub delegator_dispatch: Cycles,
    /// Proxy `ioctl()` return path: back to userspace, invoke the syscall.
    pub proxy_dispatch: Cycles,
    /// McKernel anonymous-page fault service (allocate + map, no IKC).
    pub lwk_page_fault: Cycles,
    /// Unified-address-space fault in the proxy: consult LWK page tables and
    /// install the same physical page into the pseudo mapping.
    pub unified_fault: Cycles,
    /// LWK-side device-map fault: IKC query of the tracking object, Linux
    /// resolves the physical address, LWK fills the PTE (steps 7-11, Fig 4).
    pub devmap_fault: Cycles,
    /// Linux-side `vm_mmap()` of a device file + tracking-object creation
    /// (steps 3 of Fig 4).
    pub devmap_setup: Cycles,
    /// TLB shootdown of one page on munmap synchronization.
    pub tlb_shootdown_page: Cycles,
    /// Per-4KiB-page cost of zeroing/copying during fault service.
    pub page_touch: Cycles,
    /// Extra first-touch cost when a frame lands on a remote NUMA domain
    /// (local arena exhausted, placement spilled across the socket).
    pub remote_numa_touch: Cycles,
    /// One MPK-style protection-domain switch (a WRPKRU-class register
    /// write plus its serializing cost). Charged on every fast-path
    /// entry/exit when intra-kernel protection domains are enabled, so
    /// the offload-bypass win is reported net of protection.
    pub domain_switch: Cycles,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            lwk_syscall: Cycles::from_ns(120),
            linux_syscall_entry: Cycles::from_ns(250),
            ikc_send: Cycles::from_ns(180),
            ikc_ipi: Cycles::from_ns(1_400),
            delegator_dispatch: Cycles::from_ns(600),
            proxy_dispatch: Cycles::from_ns(500),
            lwk_page_fault: Cycles::from_ns(650),
            unified_fault: Cycles::from_ns(1_800),
            devmap_fault: Cycles::from_ns(2_600),
            devmap_setup: Cycles::from_us(9),
            tlb_shootdown_page: Cycles::from_ns(900),
            page_touch: Cycles::from_ns(300),
            remote_numa_touch: Cycles::from_ns(220),
            domain_switch: Cycles::from_ns(25),
        }
    }
}

impl CostModel {
    /// Fixed (uncontended) part of a full offload round trip:
    /// marshal → IPI → delegator → proxy dispatch → reply IPI → LWK resume.
    /// Excludes the Linux service time of the call itself and any scheduling
    /// delay of the proxy — those are dynamic.
    pub fn offload_fixed_rtt(&self) -> Cycles {
        self.ikc_send
            + self.ikc_ipi
            + self.delegator_dispatch
            + self.proxy_dispatch
            + self.linux_syscall_entry
            + self.ikc_send
            + self.ikc_ipi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offload_is_much_dearer_than_lwk_path() {
        let c = CostModel::default();
        // Paper's premise: delegation is fine for non-performance-critical
        // calls precisely because the fast ones stay local. The fixed RTT
        // should be ~one order of magnitude above an in-LWK syscall.
        assert!(c.offload_fixed_rtt().raw() > 10 * c.lwk_syscall.raw());
        // ... but still microseconds, not milliseconds (Sec. III-A works
        // because offload is cheap enough for control-plane calls).
        assert!(c.offload_fixed_rtt() < Cycles::from_us(20));
    }

    #[test]
    fn fault_cost_ordering() {
        let c = CostModel::default();
        // Local LWK fault < unified-AS fault < device-map fault (the last
        // two cross kernels; devmap additionally resolves tracking state).
        assert!(c.lwk_page_fault < c.unified_fault);
        assert!(c.unified_fault < c.devmap_fault);
    }

    #[test]
    fn domain_switch_is_cheap_relative_to_offload() {
        let c = CostModel::default();
        // The whole point of the bypass: an in-LWK call plus two domain
        // switches (enter + exit the protected region) must stay far
        // below the fixed offload round trip, or promotion buys nothing.
        let guarded = c.lwk_syscall + c.domain_switch * 2;
        assert!(guarded.raw() * 3 < c.offload_fixed_rtt().raw());
    }
}
