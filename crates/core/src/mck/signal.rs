//! POSIX signal state, implemented inside the LWK.
//!
//! McKernel "implements signaling" locally (Sec. II) — signals never cross
//! to Linux, so delivery costs no IKC hop.

use std::collections::HashMap;

/// Signal numbers used by the workloads.
pub mod sig {
    /// SIGINT.
    pub const INT: u8 = 2;
    /// SIGKILL (cannot be caught or blocked).
    pub const KILL: u8 = 9;
    /// SIGUSR1.
    pub const USR1: u8 = 10;
    /// SIGSEGV.
    pub const SEGV: u8 = 11;
    /// SIGUSR2.
    pub const USR2: u8 = 12;
    /// SIGTERM.
    pub const TERM: u8 = 15;
    /// SIGCHLD (default-ignored).
    pub const CHLD: u8 = 17;
}

/// Disposition configured via `rt_sigaction`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SigAction {
    /// Default action for the signal.
    Default,
    /// Explicitly ignored.
    Ignore,
    /// User handler installed.
    Handler,
}

/// What delivering a signal does to the process.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Delivery {
    /// Process terminates.
    Terminate,
    /// Signal dropped.
    Ignored,
    /// User handler runs (costs a user-level trampoline, no kernel exit).
    RunHandler,
}

/// Per-process signal state.
#[derive(Debug, Default)]
pub struct SignalState {
    pending: u64,
    blocked: u64,
    actions: HashMap<u8, SigAction>,
}

fn bit(signo: u8) -> u64 {
    assert!((1..=63).contains(&signo), "bad signal {signo}");
    1u64 << signo
}

/// Default action table (terminate vs ignore) for the modeled signals.
fn default_delivery(signo: u8) -> Delivery {
    match signo {
        sig::CHLD => Delivery::Ignored,
        _ => Delivery::Terminate,
    }
}

impl SignalState {
    /// Fresh state: nothing pending, nothing blocked, all defaults.
    pub fn new() -> Self {
        SignalState::default()
    }

    /// `rt_sigaction`: set the disposition. SIGKILL cannot be changed.
    #[allow(clippy::result_unit_err)] // the only failure is "was SIGKILL"
    pub fn set_action(&mut self, signo: u8, action: SigAction) -> Result<(), ()> {
        if signo == sig::KILL {
            return Err(());
        }
        self.actions.insert(signo, action);
        Ok(())
    }

    /// `rt_sigprocmask`: block a signal. SIGKILL cannot be blocked.
    pub fn block(&mut self, signo: u8) {
        if signo != sig::KILL {
            self.blocked |= bit(signo);
        }
    }

    /// Unblock a signal.
    pub fn unblock(&mut self, signo: u8) {
        self.blocked &= !bit(signo);
    }

    /// Post a signal (sender side of `kill`).
    pub fn send(&mut self, signo: u8) {
        self.pending |= bit(signo);
    }

    /// Whether any deliverable (pending & !blocked) signal exists.
    pub fn has_deliverable(&self) -> bool {
        self.pending & !self.blocked != 0
    }

    /// Take the lowest-numbered deliverable signal and resolve its action.
    pub fn deliver_next(&mut self) -> Option<(u8, Delivery)> {
        let ready = self.pending & !self.blocked;
        if ready == 0 {
            return None;
        }
        let signo = ready.trailing_zeros() as u8;
        self.pending &= !bit(signo);
        let delivery = match self.actions.get(&signo).copied().unwrap_or(SigAction::Default) {
            SigAction::Default => default_delivery(signo),
            SigAction::Ignore => Delivery::Ignored,
            SigAction::Handler => Delivery::RunHandler,
        };
        Some((signo, delivery))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_term_signal_terminates() {
        let mut s = SignalState::new();
        s.send(sig::TERM);
        assert!(s.has_deliverable());
        assert_eq!(s.deliver_next(), Some((sig::TERM, Delivery::Terminate)));
        assert!(!s.has_deliverable());
    }

    #[test]
    fn handler_overrides_default() {
        let mut s = SignalState::new();
        s.set_action(sig::USR1, SigAction::Handler).unwrap();
        s.send(sig::USR1);
        assert_eq!(s.deliver_next(), Some((sig::USR1, Delivery::RunHandler)));
    }

    #[test]
    fn ignore_drops() {
        let mut s = SignalState::new();
        s.set_action(sig::INT, SigAction::Ignore).unwrap();
        s.send(sig::INT);
        assert_eq!(s.deliver_next(), Some((sig::INT, Delivery::Ignored)));
    }

    #[test]
    fn sigchld_default_ignored() {
        let mut s = SignalState::new();
        s.send(sig::CHLD);
        assert_eq!(s.deliver_next(), Some((sig::CHLD, Delivery::Ignored)));
    }

    #[test]
    fn blocking_defers_until_unblock() {
        let mut s = SignalState::new();
        s.block(sig::USR2);
        s.send(sig::USR2);
        assert!(!s.has_deliverable());
        assert_eq!(s.deliver_next(), None);
        s.unblock(sig::USR2);
        assert_eq!(s.deliver_next(), Some((sig::USR2, Delivery::Terminate)));
    }

    #[test]
    fn sigkill_unblockable_uncatchable() {
        let mut s = SignalState::new();
        assert!(s.set_action(sig::KILL, SigAction::Ignore).is_err());
        s.block(sig::KILL);
        s.send(sig::KILL);
        assert_eq!(s.deliver_next(), Some((sig::KILL, Delivery::Terminate)));
    }

    #[test]
    fn lowest_signal_first_and_no_requeue() {
        let mut s = SignalState::new();
        s.send(sig::TERM);
        s.send(sig::INT);
        assert_eq!(s.deliver_next().unwrap().0, sig::INT);
        assert_eq!(s.deliver_next().unwrap().0, sig::TERM);
        assert_eq!(s.deliver_next(), None);
    }
}
