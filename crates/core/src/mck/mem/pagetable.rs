//! Four-level page table (x86-64 style) with 4 KiB and 2 MiB leaves.
//!
//! This is the authoritative virtual-to-physical mapping for a McKernel
//! process. The proxy process's pseudo-mapping fault handler "consults the
//! page tables corresponding to the application on the LWK and maps it to
//! the exact same physical page" (Sec. III-A) — i.e., it calls
//! [`PageTable::translate`] on this structure.
//!
//! Layout mirrors the hardware: each level is a flat 512-entry array
//! indexed directly by the 9-bit VA field, so a walk is four array loads
//! with no hashing. Each node tracks its live-entry count so `unmap` can
//! prune empty intermediate tables in O(1) per level. Callers that
//! translate repeatedly should put a [`SoftTlb`](super::tlb::SoftTlb) in
//! front (see [`super::tlb`]); this walk is the miss path.

use hwmodel::addr::{PhysAddr, VirtAddr, PAGE_SIZE, PAGE_SIZE_2M};

/// Leaf mapping size.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PageSize {
    /// 4 KiB leaf at level 1.
    Size4k,
    /// 2 MiB leaf at level 2.
    Size2m,
}

impl PageSize {
    /// Bytes covered by one leaf.
    pub fn bytes(self) -> u64 {
        match self {
            PageSize::Size4k => PAGE_SIZE,
            PageSize::Size2m => PAGE_SIZE_2M,
        }
    }
}

/// PTE permission/attribute flags.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PteFlags {
    /// Writable.
    pub write: bool,
    /// User-accessible (always true for the mappings we model).
    pub user: bool,
    /// Device memory (uncached; device-file mappings).
    pub device: bool,
}

impl PteFlags {
    /// Read/write anonymous user memory.
    pub fn rw() -> Self {
        PteFlags {
            write: true,
            user: true,
            device: false,
        }
    }

    /// Read-only user memory.
    pub fn ro() -> Self {
        PteFlags {
            write: false,
            user: true,
            device: false,
        }
    }

    /// Device (MMIO) mapping.
    pub fn device() -> Self {
        PteFlags {
            write: true,
            user: true,
            device: true,
        }
    }
}

/// A successful translation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Translation {
    /// Physical address corresponding to the queried virtual address
    /// (leaf base + offset).
    pub phys: PhysAddr,
    /// Leaf size.
    pub size: PageSize,
    /// Leaf flags.
    pub flags: PteFlags,
}

/// Mapping errors.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MapError {
    /// Address not aligned for the requested page size.
    Misaligned,
    /// A mapping already exists somewhere in the target range.
    AlreadyMapped(VirtAddr),
    /// A 2 MiB leaf would overlap existing 4 KiB leaves (or vice versa).
    Overlap,
}

#[derive(Debug, Default)]
enum Entry {
    #[default]
    Empty,
    Table(Box<Level>),
    Leaf2m { phys: PhysAddr, flags: PteFlags },
    Leaf4k { phys: PhysAddr, flags: PteFlags },
}

/// One radix node: 512 slots indexed by the VA's 9-bit field, plus a
/// live count so emptiness checks (pruning) cost O(1).
#[derive(Debug)]
struct Level {
    entries: Box<[Entry; 512]>,
    live: u16,
}

impl Default for Level {
    fn default() -> Self {
        let entries: Box<[Entry; 512]> = (0..512)
            .map(|_| Entry::Empty)
            .collect::<Vec<_>>()
            .into_boxed_slice()
            .try_into()
            .expect("512 entries");
        Level { entries, live: 0 }
    }
}

/// Index of `va` at page-table level `lvl` (3 = root/PML4 ... 0 = PT).
#[inline]
fn index(va: u64, lvl: u8) -> usize {
    ((va >> (12 + 9 * lvl as u64)) & 0x1ff) as usize
}

/// Four-level page table.
#[derive(Debug, Default)]
pub struct PageTable {
    root: Level,
    leaves_4k: u64,
    leaves_2m: u64,
}

impl PageTable {
    /// Empty table.
    pub fn new() -> Self {
        PageTable::default()
    }

    /// Map a 4 KiB page.
    pub fn map_4k(&mut self, va: VirtAddr, pa: PhysAddr, flags: PteFlags) -> Result<(), MapError> {
        if !va.is_page_aligned() || !pa.is_page_aligned() {
            return Err(MapError::Misaligned);
        }
        let mut lvl_ref = &mut self.root;
        for lvl in (1..=3u8).rev() {
            let idx = index(va.raw(), lvl);
            if matches!(lvl_ref.entries[idx], Entry::Empty) {
                lvl_ref.entries[idx] = Entry::Table(Box::default());
                lvl_ref.live += 1;
            }
            match &mut lvl_ref.entries[idx] {
                Entry::Table(next) => lvl_ref = next,
                _ => return Err(MapError::Overlap),
            }
        }
        let idx = index(va.raw(), 0);
        match lvl_ref.entries[idx] {
            Entry::Empty => {
                lvl_ref.entries[idx] = Entry::Leaf4k { phys: pa, flags };
                lvl_ref.live += 1;
                self.leaves_4k += 1;
                Ok(())
            }
            _ => Err(MapError::AlreadyMapped(va)),
        }
    }

    /// Map a 2 MiB page (leaf at level 1).
    pub fn map_2m(&mut self, va: VirtAddr, pa: PhysAddr, flags: PteFlags) -> Result<(), MapError> {
        if va.raw() % PAGE_SIZE_2M != 0 || pa.raw() % PAGE_SIZE_2M != 0 {
            return Err(MapError::Misaligned);
        }
        let mut lvl_ref = &mut self.root;
        for lvl in (2..=3u8).rev() {
            let idx = index(va.raw(), lvl);
            if matches!(lvl_ref.entries[idx], Entry::Empty) {
                lvl_ref.entries[idx] = Entry::Table(Box::default());
                lvl_ref.live += 1;
            }
            match &mut lvl_ref.entries[idx] {
                Entry::Table(next) => lvl_ref = next,
                _ => return Err(MapError::Overlap),
            }
        }
        let idx = index(va.raw(), 1);
        match lvl_ref.entries[idx] {
            Entry::Empty => {
                lvl_ref.entries[idx] = Entry::Leaf2m { phys: pa, flags };
                lvl_ref.live += 1;
                self.leaves_2m += 1;
                Ok(())
            }
            Entry::Table(_) => Err(MapError::Overlap),
            _ => Err(MapError::AlreadyMapped(va)),
        }
    }

    /// Translate a virtual address — the raw radix walk (TLB miss path):
    /// four direct array indexes, no hashing.
    pub fn translate(&self, va: VirtAddr) -> Option<Translation> {
        let mut lvl_ref = &self.root;
        for lvl in (1..=3u8).rev() {
            match &lvl_ref.entries[index(va.raw(), lvl)] {
                Entry::Table(next) => lvl_ref = next,
                Entry::Leaf2m { phys, flags } if lvl == 1 => {
                    let off = va.raw() & (PAGE_SIZE_2M - 1);
                    return Some(Translation {
                        phys: *phys + off,
                        size: PageSize::Size2m,
                        flags: *flags,
                    });
                }
                _ => return None,
            }
        }
        match &lvl_ref.entries[index(va.raw(), 0)] {
            Entry::Leaf4k { phys, flags } => Some(Translation {
                phys: *phys + va.page_offset(),
                size: PageSize::Size4k,
                flags: *flags,
            }),
            _ => None,
        }
    }

    /// Unmap the leaf containing `va`. Returns the leaf's base physical
    /// address and size, or `None` if nothing was mapped. Empty intermediate
    /// tables are pruned so table growth stays bounded.
    ///
    /// Any [`SoftTlb`](super::tlb::SoftTlb) caching this table must be
    /// shot down for the removed range — see
    /// [`TlbSet::shootdown_page`](super::tlb::TlbSet::shootdown_page);
    /// [`super::AddressSpace`] does this automatically.
    pub fn unmap(&mut self, va: VirtAddr) -> Option<(PhysAddr, PageSize)> {
        let result = Self::unmap_rec(&mut self.root, va.raw(), 3)?;
        match result.1 {
            PageSize::Size4k => self.leaves_4k -= 1,
            PageSize::Size2m => self.leaves_2m -= 1,
        }
        Some(result)
    }

    fn unmap_rec(level: &mut Level, va: u64, lvl: u8) -> Option<(PhysAddr, PageSize)> {
        let idx = index(va, lvl);
        match &mut level.entries[idx] {
            Entry::Empty => None,
            Entry::Leaf4k { phys, .. } => {
                let pa = *phys;
                level.entries[idx] = Entry::Empty;
                level.live -= 1;
                Some((pa, PageSize::Size4k))
            }
            Entry::Leaf2m { phys, .. } if lvl == 1 => {
                let pa = *phys;
                level.entries[idx] = Entry::Empty;
                level.live -= 1;
                Some((pa, PageSize::Size2m))
            }
            Entry::Leaf2m { .. } => None,
            Entry::Table(next) => {
                let r = Self::unmap_rec(next, va, lvl - 1)?;
                if next.live == 0 {
                    level.entries[idx] = Entry::Empty;
                    level.live -= 1;
                }
                Some(r)
            }
        }
    }

    /// Count of (4 KiB, 2 MiB) leaves — the "TLB reach" diagnostic the
    /// interference model keys off.
    pub fn leaf_counts(&self) -> (u64, u64) {
        (self.leaves_4k, self.leaves_2m)
    }

    /// True if no leaves are mapped.
    pub fn is_empty(&self) -> bool {
        self.leaves_4k == 0 && self.leaves_2m == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_translate_4k() {
        let mut pt = PageTable::new();
        pt.map_4k(VirtAddr(0x4000), PhysAddr(0x10_0000), PteFlags::rw())
            .unwrap();
        let t = pt.translate(VirtAddr(0x4123)).unwrap();
        assert_eq!(t.phys, PhysAddr(0x10_0123));
        assert_eq!(t.size, PageSize::Size4k);
        assert!(t.flags.write);
        assert!(pt.translate(VirtAddr(0x5000)).is_none());
    }

    #[test]
    fn map_translate_2m() {
        let mut pt = PageTable::new();
        pt.map_2m(VirtAddr(0x4000_0000), PhysAddr(0x800000), PteFlags::rw())
            .unwrap();
        let t = pt.translate(VirtAddr(0x4000_0000 + 0x12345)).unwrap();
        assert_eq!(t.phys, PhysAddr(0x800000 + 0x12345));
        assert_eq!(t.size, PageSize::Size2m);
        assert_eq!(pt.leaf_counts(), (0, 1));
    }

    #[test]
    fn misaligned_rejected() {
        let mut pt = PageTable::new();
        assert_eq!(
            pt.map_4k(VirtAddr(0x123), PhysAddr(0x1000), PteFlags::rw()),
            Err(MapError::Misaligned)
        );
        assert_eq!(
            pt.map_2m(VirtAddr(0x1000), PhysAddr(0x200000), PteFlags::rw()),
            Err(MapError::Misaligned)
        );
    }

    #[test]
    fn double_map_rejected() {
        let mut pt = PageTable::new();
        pt.map_4k(VirtAddr(0x1000), PhysAddr(0x1000), PteFlags::rw())
            .unwrap();
        assert_eq!(
            pt.map_4k(VirtAddr(0x1000), PhysAddr(0x2000), PteFlags::rw()),
            Err(MapError::AlreadyMapped(VirtAddr(0x1000)))
        );
    }

    #[test]
    fn mixed_granularity_overlap_rejected() {
        let mut pt = PageTable::new();
        pt.map_4k(VirtAddr(0x20_0000), PhysAddr(0x1000), PteFlags::rw())
            .unwrap();
        // 2M leaf over the same region must be refused: a page table
        // already hangs at that level-1 slot.
        assert_eq!(
            pt.map_2m(VirtAddr(0x20_0000), PhysAddr(0x200000), PteFlags::rw()),
            Err(MapError::Overlap)
        );
        // And the converse: 4K inside an existing 2M leaf.
        pt.map_2m(VirtAddr(0x40_0000), PhysAddr(0x400000), PteFlags::rw())
            .unwrap();
        assert_eq!(
            pt.map_4k(VirtAddr(0x40_1000), PhysAddr(0x3000), PteFlags::rw()),
            Err(MapError::Overlap)
        );
    }

    #[test]
    fn unmap_returns_leaf_and_prunes() {
        let mut pt = PageTable::new();
        pt.map_4k(VirtAddr(0x7000), PhysAddr(0x9000), PteFlags::ro())
            .unwrap();
        assert_eq!(
            pt.unmap(VirtAddr(0x7abc)),
            Some((PhysAddr(0x9000), PageSize::Size4k))
        );
        assert!(pt.translate(VirtAddr(0x7000)).is_none());
        assert!(pt.is_empty());
        assert_eq!(pt.unmap(VirtAddr(0x7000)), None);
        // Intermediate tables were pruned back to an empty root.
        assert_eq!(pt.root.live, 0);
    }

    #[test]
    fn distant_addresses_do_not_collide() {
        let mut pt = PageTable::new();
        // Same low 9-bit indices at some levels, different higher ones.
        let a = VirtAddr(0x0000_1000);
        let b = VirtAddr(0x7f00_0000_1000);
        pt.map_4k(a, PhysAddr(0xa000), PteFlags::rw()).unwrap();
        pt.map_4k(b, PhysAddr(0xb000), PteFlags::rw()).unwrap();
        assert_eq!(pt.translate(a).unwrap().phys, PhysAddr(0xa000));
        assert_eq!(pt.translate(b).unwrap().phys, PhysAddr(0xb000));
        pt.unmap(a);
        assert!(pt.translate(b).is_some());
    }

    #[test]
    fn device_flag_survives() {
        let mut pt = PageTable::new();
        pt.map_4k(VirtAddr(0x1000), PhysAddr(0x10_0000_0000), PteFlags::device())
            .unwrap();
        assert!(pt.translate(VirtAddr(0x1000)).unwrap().flags.device);
    }
}
