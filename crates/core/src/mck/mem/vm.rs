//! Virtual memory areas and address-space layout.
//!
//! McKernel "has its own memory management" (Sec. II): this module holds
//! the per-process VMA tree and layout policy. One paper-specific twist is
//! the **excluded range** (Fig. 3): the proxy process binary is position-
//! independent and loaded at an address range explicitly *excluded* from
//! McKernel user space, so the unified address space can cover the whole
//! valid application range with a pseudo-mapping without colliding with
//! the proxy's own text/data/heap.

use crate::abi::Errno;
use hwmodel::addr::{VirtAddr, PAGE_SIZE, PAGE_SIZE_2M};
use std::collections::BTreeMap;

/// Lowest user address McKernel hands out.
pub const USER_START: u64 = 0x40_0000; // 4 MiB
/// One past the highest user address (128 TiB, x86-64 canonical low half).
pub const USER_END: u64 = 0x8000_0000_0000;
/// Start of the range excluded for the proxy process image.
pub const EXCLUDED_START: u64 = 0x7f00_0000_0000;
/// End of the excluded range.
pub const EXCLUDED_END: u64 = 0x7f80_0000_0000;
/// Where the anonymous mmap cursor starts.
const MMAP_BASE: u64 = 0x2000_0000_0000;

/// What backs a VMA.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum VmaKind {
    /// Anonymous memory. `large_ok` allows 2 MiB backing (the default on
    /// McKernel; Linux-modeled processes use 4 KiB unless THP kicks in).
    Anon {
        /// Whether fault service may install 2 MiB leaves.
        large_ok: bool,
    },
    /// Device-file mapping established by the Fig. 4 flow.
    Device {
        /// Device name (e.g. `infiniband/uverbs0`).
        dev_name: String,
        /// Offset into the device file / BAR.
        file_off: u64,
        /// Tracking-object id assigned by the Linux-side delegator.
        tracking: u64,
    },
    /// Process heap (`brk`).
    Heap,
    /// Thread stack.
    Stack,
}

/// One virtual memory area `[start, end)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Vma {
    /// Inclusive start (page-aligned).
    pub start: VirtAddr,
    /// Exclusive end (page-aligned).
    pub end: VirtAddr,
    /// Backing.
    pub kind: VmaKind,
    /// Whether stores are permitted.
    pub writable: bool,
}

impl Vma {
    /// Bytes covered.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Whether the area is degenerate (never true for live VMAs; present
    /// for API completeness).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether `va` falls inside.
    pub fn contains(&self, va: VirtAddr) -> bool {
        va >= self.start && va < self.end
    }
}

/// Per-process VMA tree + layout policy.
#[derive(Debug)]
pub struct VmSpace {
    vmas: BTreeMap<u64, Vma>,
    mmap_cursor: u64,
    /// Whether the proxy-exclusion hole applies (true on McKernel).
    exclude_proxy_range: bool,
}

impl VmSpace {
    /// Fresh address space. `exclude_proxy_range` carves out the
    /// [`EXCLUDED_START`]..[`EXCLUDED_END`] hole (McKernel processes).
    pub fn new(exclude_proxy_range: bool) -> Self {
        VmSpace {
            vmas: BTreeMap::new(),
            mmap_cursor: MMAP_BASE,
            exclude_proxy_range,
        }
    }

    /// Address space for the *proxy process* on Linux: its own mappings
    /// (PIE image, Linux-side device mappings) are placed inside the
    /// window excluded from McKernel user space, because everything
    /// outside it belongs to the unified-address-space pseudo mapping
    /// (Fig. 3).
    pub fn proxy_side() -> Self {
        VmSpace {
            vmas: BTreeMap::new(),
            mmap_cursor: EXCLUDED_START,
            exclude_proxy_range: false,
        }
    }

    /// Whether `va` lies in the excluded proxy range of this space.
    pub fn in_excluded(&self, va: VirtAddr) -> bool {
        self.exclude_proxy_range && (EXCLUDED_START..EXCLUDED_END).contains(&va.raw())
    }

    /// The VMA containing `va`, if any.
    pub fn vma_at(&self, va: VirtAddr) -> Option<&Vma> {
        self.vmas
            .range(..=va.raw())
            .next_back()
            .map(|(_, v)| v)
            .filter(|v| v.contains(va))
    }

    /// Iterate all VMAs in address order.
    pub fn iter(&self) -> impl Iterator<Item = &Vma> {
        self.vmas.values()
    }

    /// Number of VMAs.
    pub fn count(&self) -> usize {
        self.vmas.len()
    }

    /// Total mapped bytes.
    pub fn mapped_bytes(&self) -> u64 {
        self.vmas.values().map(Vma::len).sum()
    }

    fn range_free(&self, start: u64, end: u64) -> bool {
        if self.exclude_proxy_range && start < EXCLUDED_END && end > EXCLUDED_START {
            return false;
        }
        if start < USER_START || end > USER_END {
            return false;
        }
        // Any VMA overlapping [start, end)?
        if let Some((_, v)) = self.vmas.range(..end).next_back() {
            if v.end.raw() > start {
                return false;
            }
        }
        true
    }

    /// Create a mapping. `fixed` requests an exact placement (MAP_FIXED
    /// without the clobber semantics: overlap is an error). Without
    /// `fixed`, the allocator bump-searches from the mmap base, aligning
    /// 2 MiB-eligible anonymous areas so large leaves are usable.
    pub fn mmap(
        &mut self,
        len: u64,
        kind: VmaKind,
        writable: bool,
        fixed: Option<VirtAddr>,
    ) -> Result<VirtAddr, Errno> {
        if len == 0 {
            return Err(Errno::EINVAL);
        }
        let len = len.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        let align = match kind {
            VmaKind::Anon { large_ok: true } if len >= PAGE_SIZE_2M => PAGE_SIZE_2M,
            _ => PAGE_SIZE,
        };
        let start = match fixed {
            Some(va) => {
                if !va.is_page_aligned() {
                    return Err(Errno::EINVAL);
                }
                if !self.range_free(va.raw(), va.raw() + len) {
                    return Err(Errno::EEXIST);
                }
                va.raw()
            }
            None => {
                let mut cand = self.mmap_cursor.div_ceil(align) * align;
                loop {
                    if cand + len > USER_END {
                        return Err(Errno::ENOMEM);
                    }
                    if self.range_free(cand, cand + len) {
                        break;
                    }
                    // Skip past the blocker (existing VMA or excluded hole).
                    if self.exclude_proxy_range
                        && cand < EXCLUDED_END
                        && cand + len > EXCLUDED_START
                    {
                        cand = EXCLUDED_END.div_ceil(align) * align;
                        continue;
                    }
                    let blocker_end = self
                        .vmas
                        .range(..cand + len)
                        .next_back()
                        .map(|(_, v)| v.end.raw())
                        .unwrap_or(cand + align);
                    cand = blocker_end.max(cand + 1).div_ceil(align) * align;
                }
                self.mmap_cursor = cand + len;
                cand
            }
        };
        self.vmas.insert(
            start,
            Vma {
                start: VirtAddr(start),
                end: VirtAddr(start + len),
                kind,
                writable,
            },
        );
        Ok(VirtAddr(start))
    }

    /// Remove mappings overlapping `[start, start+len)`, splitting VMAs at
    /// the boundaries. Returns the removed sub-ranges (for PTE teardown and
    /// pseudo-mapping synchronization — Sec. III-A notes Linux-side PTEs
    /// "have to be occasionally synchronized with McKernel, for instance,
    /// when the application calls munmap()").
    pub fn munmap(&mut self, start: VirtAddr, len: u64) -> Result<Vec<Vma>, Errno> {
        if !start.is_page_aligned() || len == 0 {
            return Err(Errno::EINVAL);
        }
        let len = len.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        let (s, e) = (start.raw(), start.raw() + len);
        let overlapping: Vec<u64> = self
            .vmas
            .range(..e)
            .filter(|(_, v)| v.end.raw() > s)
            .map(|(&k, _)| k)
            .collect();
        let mut removed = Vec::new();
        for key in overlapping {
            let v = self.vmas.remove(&key).expect("key just enumerated");
            // Left remainder.
            if v.start.raw() < s {
                let mut left = v.clone();
                left.end = VirtAddr(s);
                self.vmas.insert(left.start.raw(), left);
            }
            // Right remainder.
            if v.end.raw() > e {
                let mut right = v.clone();
                right.start = VirtAddr(e);
                self.vmas.insert(right.start.raw(), right);
            }
            let cut = Vma {
                start: VirtAddr(v.start.raw().max(s)),
                end: VirtAddr(v.end.raw().min(e)),
                kind: v.kind,
                writable: v.writable,
            };
            removed.push(cut);
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mmap_places_and_finds() {
        let mut vs = VmSpace::new(true);
        let a = vs
            .mmap(8192, VmaKind::Anon { large_ok: false }, true, None)
            .unwrap();
        let v = vs.vma_at(a).unwrap();
        assert_eq!(v.len(), 8192);
        assert!(vs.vma_at(a + 8192).is_none());
        assert_eq!(vs.count(), 1);
        assert_eq!(vs.mapped_bytes(), 8192);
    }

    #[test]
    fn large_anon_is_2m_aligned() {
        let mut vs = VmSpace::new(true);
        let a = vs
            .mmap(4 << 20, VmaKind::Anon { large_ok: true }, true, None)
            .unwrap();
        assert_eq!(a.raw() % PAGE_SIZE_2M, 0);
    }

    #[test]
    fn fixed_mapping_respected_and_conflicts_detected() {
        let mut vs = VmSpace::new(true);
        let want = VirtAddr(0x5000_0000);
        let a = vs
            .mmap(0x3000, VmaKind::Stack, true, Some(want))
            .unwrap();
        assert_eq!(a, want);
        assert_eq!(
            vs.mmap(0x1000, VmaKind::Stack, true, Some(want + 0x2000)),
            Err(Errno::EEXIST)
        );
        assert_eq!(
            vs.mmap(0x1000, VmaKind::Stack, true, Some(VirtAddr(0x123))),
            Err(Errno::EINVAL)
        );
    }

    #[test]
    fn excluded_range_is_untouchable_on_mckernel() {
        let mut vs = VmSpace::new(true);
        assert_eq!(
            vs.mmap(
                0x1000,
                VmaKind::Anon { large_ok: false },
                true,
                Some(VirtAddr(EXCLUDED_START + 0x1000))
            ),
            Err(Errno::EEXIST)
        );
        assert!(vs.in_excluded(VirtAddr(EXCLUDED_START)));
        assert!(!vs.in_excluded(VirtAddr(EXCLUDED_END)));
        // A Linux-side space has no such hole.
        let mut linux = VmSpace::new(false);
        assert!(linux
            .mmap(
                0x1000,
                VmaKind::Anon { large_ok: false },
                true,
                Some(VirtAddr(EXCLUDED_START + 0x1000))
            )
            .is_ok());
    }

    #[test]
    fn unfixed_mmap_skips_over_collisions() {
        let mut vs = VmSpace::new(true);
        // Occupy where the cursor would land first.
        let first = vs
            .mmap(0x1000, VmaKind::Anon { large_ok: false }, true, None)
            .unwrap();
        let second = vs
            .mmap(0x1000, VmaKind::Anon { large_ok: false }, true, None)
            .unwrap();
        assert_ne!(first, second);
        assert!(second > first);
    }

    #[test]
    fn munmap_whole_and_partial() {
        let mut vs = VmSpace::new(true);
        let a = vs
            .mmap(0x4000, VmaKind::Anon { large_ok: false }, true, None)
            .unwrap();
        // Punch out the middle two pages.
        let removed = vs.munmap(a + 0x1000, 0x2000).unwrap();
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].start, a + 0x1000);
        assert_eq!(removed[0].end, a + 0x3000);
        assert_eq!(vs.count(), 2, "split into left and right remainders");
        assert!(vs.vma_at(a).is_some());
        assert!(vs.vma_at(a + 0x1000).is_none());
        assert!(vs.vma_at(a + 0x3000).is_some());
        // Unmap everything.
        let removed = vs.munmap(a, 0x4000).unwrap();
        assert_eq!(removed.len(), 2);
        assert_eq!(vs.count(), 0);
    }

    #[test]
    fn munmap_spanning_multiple_vmas() {
        let mut vs = VmSpace::new(true);
        let a = vs
            .mmap(0x2000, VmaKind::Anon { large_ok: false }, true, Some(VirtAddr(0x100_0000)))
            .unwrap();
        let b = vs
            .mmap(0x2000, VmaKind::Stack, false, Some(VirtAddr(0x100_2000)))
            .unwrap();
        let removed = vs.munmap(a, 0x4000).unwrap();
        assert_eq!(removed.len(), 2);
        assert_eq!(removed[0].start, a);
        assert_eq!(removed[1].start, b);
        assert_eq!(vs.count(), 0);
    }

    #[test]
    fn munmap_nothing_is_ok_and_empty() {
        let mut vs = VmSpace::new(true);
        assert!(vs.munmap(VirtAddr(0x100_0000), 0x1000).unwrap().is_empty());
        assert_eq!(vs.munmap(VirtAddr(0x100_0000), 0), Err(Errno::EINVAL));
    }

    #[test]
    fn device_vma_kind_round_trips() {
        let mut vs = VmSpace::new(true);
        let a = vs
            .mmap(
                0x2000,
                VmaKind::Device {
                    dev_name: "infiniband/uverbs0".into(),
                    file_off: 0x1000,
                    tracking: 7,
                },
                true,
                None,
            )
            .unwrap();
        match &vs.vma_at(a).unwrap().kind {
            VmaKind::Device {
                dev_name,
                file_off,
                tracking,
            } => {
                assert_eq!(dev_name, "infiniband/uverbs0");
                assert_eq!(*file_off, 0x1000);
                assert_eq!(*tracking, 7);
            }
            k => panic!("wrong kind {k:?}"),
        }
    }
}
