//! Software TLB: a direct-mapped translation cache in front of the
//! radix walk of [`PageTable`](super::pagetable::PageTable).
//!
//! The offload and fault paths translate the same handful of pages over
//! and over (proxy dereferences of syscall pointer arguments, arena
//! touches); a hit costs one array index and a tag compare instead of a
//! four-level walk. The cache mirrors hardware structure: separate
//! direct-mapped arrays for 4 KiB and 2 MiB leaves, each entry tagged
//! with the full virtual page number so aliased slots never return a
//! stale mapping. Like a real TLB it caches *leaf base + flags*, never
//! an offset, and must be shot down when a mapping is removed —
//! [`TlbSet::shootdown_page`] broadcasts the invalidation to every
//! per-CPU cache, which is exactly the hook
//! [`unmap_range`](super::unmap_range) drives.

use super::pagetable::{PageSize, PageTable, PteFlags, Translation};
use hwmodel::addr::{PhysAddr, VirtAddr, PAGE_SIZE_2M};

/// 4 KiB-entry slots (direct-mapped by VPN low bits).
const SLOTS_4K: usize = 256;
/// 2 MiB-entry slots.
const SLOTS_2M: usize = 32;

/// One cached leaf: full-VPN tag + leaf base + flags. `tag == u64::MAX`
/// marks an invalid slot (no virtual page number reaches that value:
/// the canonical VA space tops out well below 2^52 pages).
#[derive(Clone, Copy, Debug)]
struct TlbEntry {
    tag: u64,
    base: PhysAddr,
    flags: PteFlags,
}

const INVALID: TlbEntry = TlbEntry {
    tag: u64::MAX,
    base: PhysAddr(0),
    flags: PteFlags {
        write: false,
        user: false,
        device: false,
    },
};

/// One CPU's translation cache.
#[derive(Debug)]
pub struct SoftTlb {
    e4k: Box<[TlbEntry; SLOTS_4K]>,
    e2m: Box<[TlbEntry; SLOTS_2M]>,
    hits: u64,
    misses: u64,
}

impl SoftTlb {
    /// Empty cache.
    pub fn new() -> Self {
        SoftTlb {
            e4k: Box::new([INVALID; SLOTS_4K]),
            e2m: Box::new([INVALID; SLOTS_2M]),
            hits: 0,
            misses: 0,
        }
    }

    /// Cache-only lookup; counts a hit or miss.
    #[inline]
    pub fn lookup(&mut self, va: VirtAddr) -> Option<Translation> {
        let vpn4k = va.raw() >> 12;
        let e = &self.e4k[(vpn4k as usize) & (SLOTS_4K - 1)];
        if e.tag == vpn4k {
            self.hits += 1;
            return Some(Translation {
                phys: e.base + va.page_offset(),
                size: PageSize::Size4k,
                flags: e.flags,
            });
        }
        let vpn2m = va.raw() >> 21;
        let e = &self.e2m[(vpn2m as usize) & (SLOTS_2M - 1)];
        if e.tag == vpn2m {
            self.hits += 1;
            return Some(Translation {
                phys: e.base + (va.raw() & (PAGE_SIZE_2M - 1)),
                size: PageSize::Size2m,
                flags: e.flags,
            });
        }
        self.misses += 1;
        None
    }

    /// Install the leaf covering `va`. `t` may carry an in-page offset
    /// (as [`PageTable::translate`] returns); only the leaf base is
    /// cached.
    #[inline]
    pub fn insert(&mut self, va: VirtAddr, t: &Translation) {
        match t.size {
            PageSize::Size4k => {
                let vpn = va.raw() >> 12;
                self.e4k[(vpn as usize) & (SLOTS_4K - 1)] = TlbEntry {
                    tag: vpn,
                    base: PhysAddr(t.phys.raw() & !(super::PAGE_SIZE - 1)),
                    flags: t.flags,
                };
            }
            PageSize::Size2m => {
                let vpn = va.raw() >> 21;
                self.e2m[(vpn as usize) & (SLOTS_2M - 1)] = TlbEntry {
                    tag: vpn,
                    base: PhysAddr(t.phys.raw() & !(PAGE_SIZE_2M - 1)),
                    flags: t.flags,
                };
            }
        }
    }

    /// Translate through the cache, walking `pt` and filling on a miss.
    #[inline]
    pub fn translate(&mut self, pt: &PageTable, va: VirtAddr) -> Option<Translation> {
        if let Some(t) = self.lookup(va) {
            return Some(t);
        }
        let t = pt.translate(va)?;
        self.insert(va, &t);
        Some(t)
    }

    /// Invalidate any cached leaf covering `va` (both granularities —
    /// the caller rarely knows which size was mapped).
    pub fn flush_page(&mut self, va: VirtAddr) {
        let vpn4k = va.raw() >> 12;
        let e = &mut self.e4k[(vpn4k as usize) & (SLOTS_4K - 1)];
        if e.tag == vpn4k {
            *e = INVALID;
        }
        let vpn2m = va.raw() >> 21;
        let e = &mut self.e2m[(vpn2m as usize) & (SLOTS_2M - 1)];
        if e.tag == vpn2m {
            *e = INVALID;
        }
    }

    /// Drop every entry.
    pub fn flush_all(&mut self) {
        self.e4k.fill(INVALID);
        self.e2m.fill(INVALID);
    }

    /// Valid cached leaves (both granularities) — the core-offline audit:
    /// a released core must hold zero resident translations.
    pub fn resident(&self) -> usize {
        self.e4k.iter().filter(|e| e.tag != u64::MAX).count()
            + self.e2m.iter().filter(|e| e.tag != u64::MAX).count()
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

impl Default for SoftTlb {
    fn default() -> Self {
        SoftTlb::new()
    }
}

/// Per-CPU software TLBs with shootdown broadcast — the software
/// analogue of IPI-driven TLB invalidation: removing a mapping must
/// invalidate every core's cached copy, not just the unmapping core's.
#[derive(Debug)]
pub struct TlbSet {
    cpus: Vec<SoftTlb>,
}

impl TlbSet {
    /// One cache per CPU.
    pub fn new(ncpus: usize) -> Self {
        TlbSet {
            cpus: (0..ncpus.max(1)).map(|_| SoftTlb::new()).collect(),
        }
    }

    /// Number of per-CPU caches.
    pub fn len(&self) -> usize {
        self.cpus.len()
    }

    /// Whether the set is empty (never true — `new` clamps to 1 CPU).
    pub fn is_empty(&self) -> bool {
        self.cpus.is_empty()
    }

    /// Translate on `cpu` (indexes modulo the CPU count), filling that
    /// CPU's cache from `pt` on a miss.
    #[inline]
    pub fn translate_on(&mut self, cpu: usize, pt: &PageTable, va: VirtAddr) -> Option<Translation> {
        let n = self.cpus.len();
        self.cpus[cpu % n].translate(pt, va)
    }

    /// Cache-only lookup on `cpu` — never consults a page table. This is
    /// the shootdown audit hook: after any unmap, a `lookup_on` of the
    /// torn-down page must miss on *every* CPU, otherwise a stale
    /// translation survived the shootdown.
    #[inline]
    pub fn lookup_on(&mut self, cpu: usize, va: VirtAddr) -> Option<Translation> {
        let n = self.cpus.len();
        self.cpus[cpu % n].lookup(va)
    }

    /// Shoot down the page containing `va` on every CPU.
    pub fn shootdown_page(&mut self, va: VirtAddr) {
        for tlb in &mut self.cpus {
            tlb.flush_page(va);
        }
    }

    /// Full flush on every CPU (address-space teardown).
    pub fn shootdown_all(&mut self) {
        for tlb in &mut self.cpus {
            tlb.flush_all();
        }
    }

    /// Flush one CPU's cache (core going offline: its translations must
    /// not survive the core's release back to Linux).
    pub fn flush_cpu(&mut self, cpu: usize) {
        let n = self.cpus.len();
        self.cpus[cpu % n].flush_all();
    }

    /// Valid cached leaves on one CPU — the release audit hook.
    pub fn resident_on(&self, cpu: usize) -> usize {
        let n = self.cpus.len();
        self.cpus[cpu % n].resident()
    }

    /// Aggregate (hits, misses) over all CPUs.
    pub fn stats(&self) -> (u64, u64) {
        self.cpus.iter().fold((0, 0), |(h, m), t| {
            let (th, tm) = t.stats();
            (h + th, m + tm)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::super::pagetable::PteFlags;
    use super::*;
    use hwmodel::addr::PAGE_SIZE;

    fn sample_pt() -> PageTable {
        let mut pt = PageTable::new();
        pt.map_4k(VirtAddr(0x4000), PhysAddr(0x10_0000), PteFlags::rw())
            .unwrap();
        pt.map_2m(VirtAddr(0x4000_0000), PhysAddr(0x80_0000), PteFlags::ro())
            .unwrap();
        pt
    }

    #[test]
    fn hit_after_fill_matches_walk() {
        let pt = sample_pt();
        let mut tlb = SoftTlb::new();
        for va in [VirtAddr(0x4123), VirtAddr(0x4000_5123)] {
            let walked = pt.translate(va).unwrap();
            assert_eq!(tlb.translate(&pt, va), Some(walked)); // miss+fill
            assert_eq!(tlb.translate(&pt, va), Some(walked)); // hit
        }
        assert_eq!(tlb.stats(), (2, 2));
    }

    #[test]
    fn aliased_slots_never_return_stale_translation() {
        let mut pt = PageTable::new();
        // Two VAs whose 4K VPNs alias the same direct-mapped slot
        // (differ by exactly SLOTS_4K pages).
        let a = VirtAddr(0x10_0000);
        let b = VirtAddr(0x10_0000 + (SLOTS_4K as u64) * PAGE_SIZE);
        pt.map_4k(a, PhysAddr(0xa000), PteFlags::rw()).unwrap();
        pt.map_4k(b, PhysAddr(0xb000), PteFlags::rw()).unwrap();
        let mut tlb = SoftTlb::new();
        assert_eq!(tlb.translate(&pt, a).unwrap().phys, PhysAddr(0xa000));
        // b evicts a's entry; a must re-walk, not hit b's slot data.
        assert_eq!(tlb.translate(&pt, b).unwrap().phys, PhysAddr(0xb000));
        assert_eq!(tlb.translate(&pt, a).unwrap().phys, PhysAddr(0xa000));
    }

    #[test]
    fn flush_page_invalidates_both_granularities() {
        let pt = sample_pt();
        let mut tlb = SoftTlb::new();
        tlb.translate(&pt, VirtAddr(0x4000)).unwrap();
        tlb.translate(&pt, VirtAddr(0x4000_0000)).unwrap();
        tlb.flush_page(VirtAddr(0x4abc));
        tlb.flush_page(VirtAddr(0x4010_0000));
        assert_eq!(tlb.lookup(VirtAddr(0x4000)), None);
        assert_eq!(tlb.lookup(VirtAddr(0x4000_0000)), None);
    }

    #[test]
    fn stale_entry_after_unmap_without_shootdown_is_the_hazard() {
        // Documents WHY shootdown exists: without flushing, the cache
        // would keep translating an unmapped page.
        let mut pt = sample_pt();
        let mut tlb = SoftTlb::new();
        tlb.translate(&pt, VirtAddr(0x4000)).unwrap();
        pt.unmap(VirtAddr(0x4000)).unwrap();
        assert!(tlb.lookup(VirtAddr(0x4000)).is_some(), "stale without flush");
        tlb.flush_page(VirtAddr(0x4000));
        assert_eq!(tlb.translate(&pt, VirtAddr(0x4000)), None);
    }

    #[test]
    fn shootdown_reaches_every_cpu() {
        let pt = sample_pt();
        let mut set = TlbSet::new(4);
        for cpu in 0..4 {
            set.translate_on(cpu, &pt, VirtAddr(0x4000)).unwrap();
        }
        set.shootdown_page(VirtAddr(0x4000));
        let (hits, misses) = set.stats();
        assert_eq!((hits, misses), (0, 4));
        for cpu in 0..4 {
            // All misses again: every CPU's copy was invalidated.
            set.translate_on(cpu, &pt, VirtAddr(0x4000)).unwrap();
        }
        assert_eq!(set.stats(), (0, 8));
        set.shootdown_all();
        assert!(!set.is_empty());
        assert_eq!(set.len(), 4);
    }
}
