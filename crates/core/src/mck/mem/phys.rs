//! Physical page-frame allocator for the LWK partition.
//!
//! A binary buddy allocator over the physically contiguous memory range
//! IHK reserved for McKernel. Two properties matter for the paper:
//!
//! * **Contiguity**: the buddy structure hands out naturally aligned,
//!   physically contiguous blocks, letting anonymous mappings be backed by
//!   2 MiB extents — the mechanism behind McKernel's TLB/LLC advantage
//!   ("contiguous physical memory behind anonymous mappings", Sec. IV-B3).
//! * **Determinism**: free lists are ordered sets, so allocation is
//!   lowest-address-first and replays identically across runs.

use hwmodel::addr::{PhysAddr, PAGE_SHIFT, PAGE_SIZE};
use std::collections::{BTreeSet, HashMap};

/// Maximum buddy order: 2^10 pages = 4 MiB blocks.
pub const MAX_ORDER: u8 = 10;

/// Order of a 2 MiB block.
pub const ORDER_2M: u8 = 9;

/// Errors from the allocator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AllocError {
    /// No free block of the requested (or any higher) order.
    OutOfMemory,
    /// `free` of an address that is not an allocated block start.
    BadFree(PhysAddr),
}

/// Binary buddy allocator.
#[derive(Debug)]
pub struct BuddyAllocator {
    base: PhysAddr,
    len: u64,
    /// Free block start offsets (in pages from base), per order.
    free: Vec<BTreeSet<u64>>,
    /// Allocated block start page-offset -> order.
    allocated: HashMap<u64, u8>,
    free_pages: u64,
}

impl BuddyAllocator {
    /// Manage `[base, base+len)`. Both must be 4 MiB aligned so every
    /// maximal block is naturally aligned.
    pub fn new(base: PhysAddr, len: u64) -> Self {
        let block = PAGE_SIZE << MAX_ORDER;
        assert!(len > 0 && len % block == 0, "length must be 4MiB aligned");
        assert_eq!(base.raw() % block, 0, "base must be 4MiB aligned");
        let mut free: Vec<BTreeSet<u64>> = (0..=MAX_ORDER).map(|_| BTreeSet::new()).collect();
        let pages = len >> PAGE_SHIFT;
        let top = &mut free[MAX_ORDER as usize];
        let step = 1u64 << MAX_ORDER;
        for off in (0..pages).step_by(step as usize) {
            top.insert(off);
        }
        BuddyAllocator {
            base,
            len,
            free,
            allocated: HashMap::new(),
            free_pages: pages,
        }
    }

    /// Managed range start.
    pub fn base(&self) -> PhysAddr {
        self.base
    }

    /// Managed range length in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// Free bytes remaining.
    pub fn free_bytes(&self) -> u64 {
        self.free_pages << PAGE_SHIFT
    }

    /// Largest order with a free block, if any.
    pub fn largest_free_order(&self) -> Option<u8> {
        (0..=MAX_ORDER).rev().find(|&o| !self.free[o as usize].is_empty())
    }

    /// Allocate a block of `1 << order` pages, naturally aligned.
    pub fn alloc(&mut self, order: u8) -> Result<PhysAddr, AllocError> {
        assert!(order <= MAX_ORDER, "order {order} > MAX_ORDER");
        // Find the smallest order >= requested with a free block.
        let mut o = order;
        while (o as usize) < self.free.len() && self.free[o as usize].is_empty() {
            o += 1;
        }
        if o > MAX_ORDER {
            return Err(AllocError::OutOfMemory);
        }
        let off = *self.free[o as usize].iter().next().expect("nonempty");
        self.free[o as usize].remove(&off);
        // Split down to the requested order, freeing the upper halves.
        while o > order {
            o -= 1;
            let buddy = off + (1u64 << o);
            self.free[o as usize].insert(buddy);
        }
        self.allocated.insert(off, order);
        self.free_pages -= 1u64 << order;
        Ok(self.base + (off << PAGE_SHIFT))
    }

    /// Allocate the smallest block covering `bytes`.
    pub fn alloc_bytes(&mut self, bytes: u64) -> Result<(PhysAddr, u8), AllocError> {
        assert!(bytes > 0);
        let pages = (bytes + PAGE_SIZE - 1) >> PAGE_SHIFT;
        let order = pages.next_power_of_two().trailing_zeros() as u8;
        if order > MAX_ORDER {
            return Err(AllocError::OutOfMemory);
        }
        self.alloc(order).map(|a| (a, order))
    }

    /// Free a previously allocated block (identified by its start address).
    pub fn free(&mut self, addr: PhysAddr) -> Result<(), AllocError> {
        if addr < self.base || addr.raw() >= self.base.raw() + self.len {
            return Err(AllocError::BadFree(addr));
        }
        let mut off = (addr - self.base) >> PAGE_SHIFT;
        let Some(mut order) = self.allocated.remove(&off) else {
            return Err(AllocError::BadFree(addr));
        };
        self.free_pages += 1u64 << order;
        // Coalesce with the buddy while possible.
        while order < MAX_ORDER {
            let buddy = off ^ (1u64 << order);
            if !self.free[order as usize].remove(&buddy) {
                break;
            }
            off = off.min(buddy);
            order += 1;
        }
        self.free[order as usize].insert(off);
        Ok(())
    }

    /// Order of the allocated block starting at `addr`, if any.
    pub fn allocated_order(&self, addr: PhysAddr) -> Option<u8> {
        if addr < self.base {
            return None;
        }
        self.allocated
            .get(&((addr - self.base) >> PAGE_SHIFT))
            .copied()
    }

    /// Number of live allocations.
    pub fn allocation_count(&self) -> usize {
        self.allocated.len()
    }

    /// Internal consistency check (used by tests and debug assertions):
    /// free lists disjoint from allocations, page accounting exact.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut counted = 0u64;
        let mut seen = BTreeSet::new();
        for (o, set) in self.free.iter().enumerate() {
            for &off in set {
                if off % (1 << o) != 0 {
                    return Err(format!("free block {off} misaligned for order {o}"));
                }
                for p in off..off + (1 << o) {
                    if !seen.insert(p) {
                        return Err(format!("page {p} on two free lists"));
                    }
                }
                counted += 1 << o;
            }
        }
        for (&off, &o) in &self.allocated {
            for p in off..off + (1 << o) {
                if !seen.insert(p) {
                    return Err(format!("allocated page {p} also free"));
                }
            }
        }
        if counted != self.free_pages {
            return Err(format!(
                "free page accounting mismatch: {counted} vs {}",
                self.free_pages
            ));
        }
        if seen.len() as u64 != self.len >> PAGE_SHIFT {
            return Err(format!(
                "pages unaccounted for: {} of {}",
                seen.len(),
                self.len >> PAGE_SHIFT
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk() -> BuddyAllocator {
        BuddyAllocator::new(PhysAddr(8 << 20), 16 << 20) // 16 MiB at 8 MiB
    }

    #[test]
    fn fresh_allocator_is_all_free() {
        let a = mk();
        assert_eq!(a.free_bytes(), 16 << 20);
        assert_eq!(a.largest_free_order(), Some(MAX_ORDER));
        a.check_invariants().unwrap();
    }

    #[test]
    fn alloc_is_lowest_address_first_and_aligned() {
        let mut a = mk();
        let p0 = a.alloc(0).unwrap();
        assert_eq!(p0, PhysAddr(8 << 20));
        let p2m = a.alloc(ORDER_2M).unwrap();
        assert_eq!(p2m.raw() % (2 << 20), 0, "2M block naturally aligned");
        a.check_invariants().unwrap();
    }

    #[test]
    fn free_coalesces_back_to_max_order() {
        let mut a = mk();
        let mut blocks = Vec::new();
        loop {
            match a.alloc(0) {
                Ok(p) => blocks.push(p),
                Err(AllocError::OutOfMemory) => break,
                Err(e) => panic!("{e:?}"),
            }
        }
        assert_eq!(a.free_bytes(), 0);
        for p in blocks {
            a.free(p).unwrap();
        }
        assert_eq!(a.free_bytes(), 16 << 20);
        assert_eq!(a.largest_free_order(), Some(MAX_ORDER));
        a.check_invariants().unwrap();
    }

    #[test]
    fn double_free_rejected() {
        let mut a = mk();
        let p = a.alloc(3).unwrap();
        a.free(p).unwrap();
        assert_eq!(a.free(p), Err(AllocError::BadFree(p)));
    }

    #[test]
    fn free_of_interior_address_rejected() {
        let mut a = mk();
        let p = a.alloc(2).unwrap();
        assert_eq!(
            a.free(p + PAGE_SIZE),
            Err(AllocError::BadFree(p + PAGE_SIZE))
        );
        assert_eq!(a.free(PhysAddr(0)), Err(AllocError::BadFree(PhysAddr(0))));
    }

    #[test]
    fn alloc_bytes_picks_covering_order() {
        let mut a = mk();
        let (_, o1) = a.alloc_bytes(1).unwrap();
        assert_eq!(o1, 0);
        let (_, o2) = a.alloc_bytes(PAGE_SIZE + 1).unwrap();
        assert_eq!(o2, 1);
        let (p, o3) = a.alloc_bytes(2 << 20).unwrap();
        assert_eq!(o3, ORDER_2M);
        assert!(p.is_2m_aligned());
        assert!(a.alloc_bytes(4 << 20).is_ok(), "max block is 4 MiB");
        assert_eq!(a.alloc_bytes(8 << 20), Err(AllocError::OutOfMemory));
    }

    #[test]
    fn exhaustion_then_recovery() {
        let mut a = mk();
        let b1 = a.alloc(MAX_ORDER).unwrap();
        let b2 = a.alloc(MAX_ORDER).unwrap();
        let b3 = a.alloc(MAX_ORDER).unwrap();
        let b4 = a.alloc(MAX_ORDER).unwrap();
        assert_eq!(a.alloc(0), Err(AllocError::OutOfMemory));
        a.free(b2).unwrap();
        assert!(a.alloc(ORDER_2M).is_ok());
        for p in [b1, b3, b4] {
            a.free(p).unwrap();
        }
        a.check_invariants().unwrap();
    }

    #[test]
    fn allocated_order_lookup() {
        let mut a = mk();
        let p = a.alloc(4).unwrap();
        assert_eq!(a.allocated_order(p), Some(4));
        assert_eq!(a.allocated_order(p + PAGE_SIZE), None);
        assert_eq!(a.allocation_count(), 1);
    }
}
