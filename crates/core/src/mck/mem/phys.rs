//! Physical page-frame allocation for the LWK partition.
//!
//! Two layers live here:
//!
//! * [`BuddyAllocator`] — a flat, index-based binary buddy over one
//!   physically contiguous range: per-order intrusive free lists threaded
//!   through a flat per-frame metadata table plus a buddy-pair bitmap.
//!   Alloc, free and coalescing are all O(1) with zero heap activity on
//!   the hot path (the metadata arrays are allocated once at boot).
//! * [`FrameAllocator`] — the kernel-facing engine: one buddy arena per
//!   NUMA domain with first-touch placement keyed off the faulting CPU,
//!   deterministic spill to remote domains, and per-CPU page-frame caches
//!   (PCP lists, Linux-style) for order-0 and 2 MiB blocks so
//!   steady-state faults never touch the shared buddy.
//!
//! Three properties matter for the paper:
//!
//! * **Contiguity**: the buddy structure hands out naturally aligned,
//!   physically contiguous blocks, letting anonymous mappings be backed by
//!   2 MiB extents — the mechanism behind McKernel's TLB/LLC advantage
//!   ("contiguous physical memory behind anonymous mappings", Sec. IV-B3).
//! * **Determinism**: the allocation policy is a pure function of the
//!   operation history. Free lists are LIFO; blocks split low-half-first;
//!   never-touched memory is carved from an ascending *virgin watermark*;
//!   PCP refill/drain happen in fixed batches. Replays are bit-identical.
//! * **Locality**: frames come from the faulting CPU's NUMA domain when
//!   possible; spill to a remote domain is deterministic (ascending wrap
//!   from the local domain) and reported so the cost model can charge it.
//!
//! The metadata arrays are zero-initialized (`calloc`-backed) and the
//! virgin watermark defers free-list seeding, so resident metadata stays
//! proportional to *touched* memory — a 16 GiB partition that faults a
//! few megabytes pays for a few metadata pages, not for 4M frame entries.

use hwmodel::addr::{PhysAddr, PAGE_SHIFT, PAGE_SIZE};
use hwmodel::cpu::NumaId;

/// Maximum buddy order: 2^10 pages = 4 MiB blocks.
pub const MAX_ORDER: u8 = 10;

/// Order of a 2 MiB block.
pub const ORDER_2M: u8 = 9;

const NUM_ORDERS: usize = MAX_ORDER as usize + 1;

/// Free-list sentinel ("no frame").
const NIL: u32 = u32::MAX;

/// Frame states stored in the per-frame tag byte (high nibble).
const S_TAIL: u8 = 0; // interior of some block (or never touched)
const S_FREE: u8 = 1; // head of a free block on a free list
const S_ALLOC: u8 = 2; // head of a live allocation
const S_CACHED: u8 = 3; // head of a block parked in a per-CPU cache

/// Errors from the allocator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AllocError {
    /// No free block of the requested (or any higher) order.
    OutOfMemory,
    /// `free` of an address that is not an allocated block start.
    BadFree(PhysAddr),
}

/// Binary buddy allocator over `[base, base+len)` — flat metadata, O(1)
/// alloc/free/coalesce.
///
/// Implementation notes (the DESIGN.md frame-metadata section mirrors
/// this):
/// * `tag[f]` holds the frame state in the high nibble and the block
///   order in the low nibble; only block *heads* carry state, interior
///   frames stay `S_TAIL`.
/// * `next`/`prev` are intrusive doubly-linked free-list links, valid
///   only while a frame heads a free block.
/// * `pair_bits` holds one bit per buddy pair per order, toggled whenever
///   either buddy enters or leaves that order's free list. While freeing
///   a block (itself not on a list), the bit is `1` iff its buddy is free
///   at the same order — the O(1) coalesce test.
/// * `virgin` is the offset of the first never-used frame; everything at
///   or above it is free by definition and is carved in max-order blocks
///   as the free lists run dry.
#[derive(Debug)]
pub struct BuddyAllocator {
    base: PhysAddr,
    len: u64,
    pages: u64,
    /// Intrusive free-list forward links (valid for `S_FREE` heads).
    next: Vec<u32>,
    /// Intrusive free-list back links (valid for `S_FREE` heads).
    prev: Vec<u32>,
    /// state << 4 | order, per frame.
    tag: Vec<u8>,
    /// Buddy-pair bitmaps for orders `0..MAX_ORDER`, concatenated.
    pair_bits: Vec<u64>,
    /// Word offset of each order's bitmap inside `pair_bits`.
    bit_base: [usize; MAX_ORDER as usize],
    /// Free-list heads per order.
    heads: [u32; NUM_ORDERS],
    /// First never-touched page offset (ascending watermark).
    virgin: u64,
    free_pages: u64,
    /// Live allocations (excludes cache-parked blocks).
    live: u64,
    /// Blocks parked in per-CPU caches (heads in state `S_CACHED`).
    cached_blocks: u64,
}

impl BuddyAllocator {
    /// Manage `[base, base+len)`. Both must be 4 MiB aligned so every
    /// maximal block is naturally aligned.
    pub fn new(base: PhysAddr, len: u64) -> Self {
        let block = PAGE_SIZE << MAX_ORDER;
        assert!(len > 0 && len % block == 0, "length must be 4MiB aligned");
        assert_eq!(base.raw() % block, 0, "base must be 4MiB aligned");
        let pages = len >> PAGE_SHIFT;
        assert!(pages < u64::from(NIL), "partition too large for u32 links");
        let mut bit_base = [0usize; MAX_ORDER as usize];
        let mut words = 0usize;
        for (o, slot) in bit_base.iter_mut().enumerate() {
            *slot = words;
            let pairs = (pages >> (o + 1)) as usize;
            words += pairs.div_ceil(64).max(1);
        }
        BuddyAllocator {
            base,
            len,
            pages,
            // Zeroed primitive vecs are calloc-backed: untouched frames
            // cost address space, not resident memory.
            next: vec![0u32; pages as usize],
            prev: vec![0u32; pages as usize],
            tag: vec![0u8; pages as usize],
            pair_bits: vec![0u64; words],
            bit_base,
            heads: [NIL; NUM_ORDERS],
            virgin: 0,
            free_pages: pages,
            live: 0,
            cached_blocks: 0,
        }
    }

    /// Managed range start.
    pub fn base(&self) -> PhysAddr {
        self.base
    }

    /// Managed range length in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// Free bytes remaining (cache-parked blocks count as *allocated*
    /// here; [`FrameAllocator`] adds them back).
    pub fn free_bytes(&self) -> u64 {
        self.free_pages << PAGE_SHIFT
    }

    /// Largest order with a free block, if any.
    pub fn largest_free_order(&self) -> Option<u8> {
        if self.pages - self.virgin >= 1 << MAX_ORDER {
            return Some(MAX_ORDER);
        }
        (0..=MAX_ORDER).rev().find(|&o| self.heads[o as usize] != NIL)
    }

    #[inline]
    fn state_of(&self, off: u64) -> u8 {
        self.tag[off as usize] >> 4
    }

    #[inline]
    fn order_of(&self, off: u64) -> u8 {
        self.tag[off as usize] & 0xf
    }

    #[inline]
    fn set_tag(&mut self, off: u64, state: u8, order: u8) {
        self.tag[off as usize] = state << 4 | order;
    }

    /// Toggle the buddy-pair bit of `off` at `order` (no pairs exist at
    /// `MAX_ORDER`).
    #[inline]
    fn toggle_pair(&mut self, order: u8, off: u64) {
        if order < MAX_ORDER {
            let pair = off >> (order + 1);
            let w = self.bit_base[order as usize] + (pair >> 6) as usize;
            self.pair_bits[w] ^= 1u64 << (pair & 63);
        }
    }

    /// Whether exactly one of the pair containing `off` is free at
    /// `order`. Called while `off` itself is *not* free, so a set bit
    /// means "the buddy is free at this order".
    #[inline]
    fn buddy_is_free(&self, order: u8, off: u64) -> bool {
        if order >= MAX_ORDER {
            return false;
        }
        let pair = off >> (order + 1);
        let w = self.bit_base[order as usize] + (pair >> 6) as usize;
        self.pair_bits[w] >> (pair & 63) & 1 == 1
    }

    /// Push `off` onto `order`'s free list (LIFO) and flag it free.
    #[inline]
    fn push_free(&mut self, order: u8, off: u64) {
        let o = order as usize;
        let head = self.heads[o];
        self.next[off as usize] = head;
        self.prev[off as usize] = NIL;
        if head != NIL {
            self.prev[head as usize] = off as u32;
        }
        self.heads[o] = off as u32;
        self.set_tag(off, S_FREE, order);
        self.toggle_pair(order, off);
    }

    /// Unlink the free block headed at `off` from `order`'s list.
    #[inline]
    fn unlink_free(&mut self, order: u8, off: u64) {
        let (p, n) = (self.prev[off as usize], self.next[off as usize]);
        if p == NIL {
            self.heads[order as usize] = n;
        } else {
            self.next[p as usize] = n;
        }
        if n != NIL {
            self.prev[n as usize] = p;
        }
        self.set_tag(off, S_TAIL, 0);
        self.toggle_pair(order, off);
    }

    /// Allocate a block of `1 << order` pages, naturally aligned.
    ///
    /// Policy (deterministic): the smallest populated order >= the
    /// request is split LIFO-first; when no list can serve it, one
    /// max-order block is carved off the ascending virgin watermark.
    pub fn alloc(&mut self, order: u8) -> Result<PhysAddr, AllocError> {
        assert!(order <= MAX_ORDER, "order {order} > MAX_ORDER");
        let mut o = order;
        while o <= MAX_ORDER && self.heads[o as usize] == NIL {
            o += 1;
        }
        let off = if o <= MAX_ORDER {
            let off = u64::from(self.heads[o as usize]);
            self.unlink_free(o, off);
            off
        } else {
            // Lists dry: carve a pristine max-order block.
            if self.pages - self.virgin < 1 << MAX_ORDER {
                return Err(AllocError::OutOfMemory);
            }
            let off = self.virgin;
            self.virgin += 1 << MAX_ORDER;
            o = MAX_ORDER;
            off
        };
        // Split down to the requested order, freeing the upper halves.
        while o > order {
            o -= 1;
            self.push_free(o, off + (1u64 << o));
        }
        self.set_tag(off, S_ALLOC, order);
        self.free_pages -= 1u64 << order;
        self.live += 1;
        Ok(self.base + (off << PAGE_SHIFT))
    }

    /// Allocate extents covering `bytes`: a greedy binary decomposition
    /// (largest blocks first, each naturally aligned, capped at
    /// `MAX_ORDER`), so requests beyond 4 MiB are backed by multiple
    /// max-order extents instead of failing. All-or-nothing: on
    /// exhaustion every extent is rolled back.
    pub fn alloc_bytes(&mut self, bytes: u64) -> Result<Vec<(PhysAddr, u8)>, AllocError> {
        assert!(bytes > 0);
        let mut remaining = (bytes + PAGE_SIZE - 1) >> PAGE_SHIFT;
        let mut out = Vec::new();
        while remaining > 0 {
            let order = (63 - remaining.leading_zeros() as u8).min(MAX_ORDER);
            match self.alloc(order) {
                Ok(p) => {
                    out.push((p, order));
                    remaining -= 1u64 << order;
                }
                Err(e) => {
                    for (p, _) in out {
                        self.free(p).expect("just allocated");
                    }
                    return Err(e);
                }
            }
        }
        Ok(out)
    }

    /// Free a previously allocated block (identified by its start
    /// address). O(1): the buddy-pair bitmap answers the coalesce
    /// question without any search.
    pub fn free(&mut self, addr: PhysAddr) -> Result<(), AllocError> {
        if addr < self.base || addr.raw() >= self.base.raw() + self.len {
            return Err(AllocError::BadFree(addr));
        }
        let mut off = (addr - self.base) >> PAGE_SHIFT;
        if self.state_of(off) != S_ALLOC {
            return Err(AllocError::BadFree(addr));
        }
        let order = self.order_of(off);
        self.set_tag(off, S_TAIL, 0);
        self.free_pages += 1u64 << order;
        self.live -= 1;
        // Coalesce upward while the buddy is free at the same order.
        let mut o = order;
        while o < MAX_ORDER && self.buddy_is_free(o, off) {
            let buddy = off ^ (1u64 << o);
            self.unlink_free(o, buddy);
            off = off.min(buddy);
            o += 1;
        }
        self.push_free(o, off);
        Ok(())
    }

    /// Park an allocated block in a per-CPU cache: the head flips to
    /// `S_CACHED` and stops counting as a live allocation (a second
    /// `free` of the same address is still rejected). Returns the order.
    pub(crate) fn cache_block(&mut self, addr: PhysAddr) -> Result<u8, AllocError> {
        let off = (addr - self.base) >> PAGE_SHIFT;
        if addr < self.base || off >= self.pages || self.state_of(off) != S_ALLOC {
            return Err(AllocError::BadFree(addr));
        }
        let order = self.order_of(off);
        self.set_tag(off, S_CACHED, order);
        self.live -= 1;
        self.cached_blocks += 1;
        Ok(order)
    }

    /// Take a cache-parked block back out as a live allocation.
    pub(crate) fn uncache_block(&mut self, addr: PhysAddr) -> Result<u8, AllocError> {
        let off = (addr - self.base) >> PAGE_SHIFT;
        if addr < self.base || off >= self.pages || self.state_of(off) != S_CACHED {
            return Err(AllocError::BadFree(addr));
        }
        let order = self.order_of(off);
        self.set_tag(off, S_ALLOC, order);
        self.live += 1;
        self.cached_blocks -= 1;
        Ok(order)
    }

    /// Order of the allocated block starting at `addr`, if any.
    pub fn allocated_order(&self, addr: PhysAddr) -> Option<u8> {
        if addr < self.base || addr.raw() >= self.base.raw() + self.len {
            return None;
        }
        let off = (addr - self.base) >> PAGE_SHIFT;
        (self.state_of(off) == S_ALLOC).then(|| self.order_of(off))
    }

    /// Number of live allocations (cache-parked blocks excluded).
    pub fn allocation_count(&self) -> usize {
        self.live as usize
    }

    /// Whether `addr` falls inside the managed range.
    pub fn contains(&self, addr: PhysAddr) -> bool {
        addr >= self.base && addr.raw() < self.base.raw() + self.len
    }

    /// Internal consistency check (used by tests and debug assertions):
    /// free lists disjoint from allocations, page accounting exact,
    /// buddy-pair bitmap consistent with the lists.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut covered = vec![false; self.virgin as usize];
        let mut free_counted = 0u64;
        let mut live = 0u64;
        let mut cached = 0u64;
        let mut f = 0u64;
        while f < self.virgin {
            let state = self.state_of(f);
            let order = self.order_of(f);
            match state {
                S_TAIL => {
                    f += 1;
                    continue;
                }
                S_FREE | S_ALLOC | S_CACHED => {
                    if f % (1 << order) != 0 {
                        return Err(format!("block {f} misaligned for order {order}"));
                    }
                    if f + (1 << order) > self.virgin {
                        return Err(format!("block {f} crosses the virgin watermark"));
                    }
                    for p in f..f + (1 << order) {
                        if covered[p as usize] {
                            return Err(format!("page {p} covered twice"));
                        }
                        covered[p as usize] = true;
                        if p > f && self.state_of(p) != S_TAIL {
                            return Err(format!("interior page {p} not TAIL"));
                        }
                    }
                    match state {
                        S_FREE => free_counted += 1 << order,
                        S_ALLOC => live += 1,
                        _ => cached += 1,
                    }
                    f += 1 << order;
                }
                s => return Err(format!("frame {f} has invalid state {s}")),
            }
        }
        // Every page below the watermark must belong to some block: heads
        // cover their interiors, and a TAIL page outside any block is a
        // leak. Covered pages were marked above; the only uncovered pages
        // allowed are none.
        if let Some(p) = covered.iter().position(|&c| !c) {
            return Err(format!("page {p} below watermark belongs to no block"));
        }
        if live != self.live {
            return Err(format!("live count {live} vs tracked {}", self.live));
        }
        if cached != self.cached_blocks {
            return Err(format!(
                "cached count {cached} vs tracked {}",
                self.cached_blocks
            ));
        }
        if free_counted + (self.pages - self.virgin) != self.free_pages {
            return Err(format!(
                "free page accounting mismatch: {} listed + {} virgin vs {}",
                free_counted,
                self.pages - self.virgin,
                self.free_pages
            ));
        }
        // Free lists are well-linked and members are S_FREE at the order.
        for o in 0..NUM_ORDERS as u8 {
            let mut cur = self.heads[o as usize];
            let mut prev = NIL;
            while cur != NIL {
                let off = u64::from(cur);
                if self.state_of(off) != S_FREE || self.order_of(off) != o {
                    return Err(format!("list {o} holds non-free block {off}"));
                }
                if self.prev[cur as usize] != prev {
                    return Err(format!("broken prev link at {off} order {o}"));
                }
                prev = cur;
                cur = self.next[cur as usize];
            }
        }
        // Pair bitmap == XOR of the buddies' free-at-order states.
        for o in 0..MAX_ORDER {
            let step = 1u64 << (o + 1);
            let mut off = 0u64;
            while off < self.virgin {
                let left = self.state_of(off) == S_FREE && self.order_of(off) == o;
                let right_off = off + (1 << o);
                let right = right_off < self.pages
                    && self.state_of(right_off) == S_FREE
                    && self.order_of(right_off) == o;
                let expect = left ^ right;
                let pair = off >> (o + 1);
                let w = self.bit_base[o as usize] + (pair >> 6) as usize;
                let got = self.pair_bits[w] >> (pair & 63) & 1 == 1;
                if got != expect {
                    return Err(format!("pair bit wrong at off {off} order {o}"));
                }
                off += step;
            }
        }
        Ok(())
    }
}

/// PCP (per-CPU page-frame cache) batching policy. Small = order-0,
/// large = 2 MiB. Refill pulls `*_BATCH` blocks from the owning arena in
/// one trip; a free that would push the cache past `*_HIGH` first drains
/// the *oldest* `*_BATCH` entries back to the buddy. All constants are
/// compile-time policy: replays are deterministic.
pub const PCP_SMALL_BATCH: usize = 16;
/// High watermark for the order-0 cache (drain trigger).
pub const PCP_SMALL_HIGH: usize = 32;
/// Refill batch for the 2 MiB cache.
pub const PCP_LARGE_BATCH: usize = 2;
/// High watermark for the 2 MiB cache.
pub const PCP_LARGE_HIGH: usize = 4;

/// Allocator-side mechanism counters (mirrored into `simcore::trace` by
/// the kernel via [`FrameAllocator::publish_stats`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MemStats {
    /// Order-0 / 2 MiB allocations served straight from a PCP list.
    pub pcp_hit: u64,
    /// PCP refill trips to the shared buddy (each pulls a batch).
    pub pcp_refill: u64,
    /// PCP drain trips back to the shared buddy.
    pub pcp_drain: u64,
    /// Blocks handed out from the faulting CPU's own domain.
    pub alloc_local: u64,
    /// Blocks that spilled to a remote domain (local arena dry).
    pub alloc_spill: u64,
}

/// One NUMA domain's share of the partition.
#[derive(Debug)]
struct Arena {
    domain: NumaId,
    buddy: BuddyAllocator,
}

/// Per-CPU frame cache: LIFO stacks of cache-parked block addresses.
#[derive(Debug, Default)]
struct PcpCache {
    small: Vec<PhysAddr>,
    large: Vec<PhysAddr>,
}

/// The LWK physical-memory engine: per-NUMA-domain buddy arenas fronted
/// by per-CPU frame caches. See the module docs for the policy.
#[derive(Debug)]
pub struct FrameAllocator {
    arenas: Vec<Arena>,
    /// CPU index (partition-relative) -> arena index. CPUs beyond the
    /// table use arena 0.
    cpu_arena: Vec<u32>,
    pcp: Vec<PcpCache>,
    /// Bytes currently parked in PCP caches (free from the kernel's
    /// point of view).
    cached_bytes: u64,
    /// Mechanism counters.
    pub stats: MemStats,
    /// Snapshot of `stats` at the last `publish_stats` call (published
    /// as deltas so counters in `Trace` accumulate correctly).
    published: MemStats,
}

impl FrameAllocator {
    /// Single-domain engine over `[base, base+len)` for `ncpus` CPUs —
    /// the default partition shape (IHK reserves from one domain).
    pub fn single(base: PhysAddr, len: u64, ncpus: usize) -> Self {
        FrameAllocator::new(&[(base, len, NumaId(0))], &vec![NumaId(0); ncpus.max(1)])
    }

    /// Multi-domain engine: one arena per extent `(base, len, domain)`,
    /// and `cpu_domain[i]` naming CPU `i`'s home domain. Extents must be
    /// 4 MiB aligned and non-overlapping; a CPU whose domain has no
    /// arena homes to arena 0.
    pub fn new(extents: &[(PhysAddr, u64, NumaId)], cpu_domain: &[NumaId]) -> Self {
        assert!(!extents.is_empty(), "need at least one extent");
        let arenas: Vec<Arena> = extents
            .iter()
            .map(|&(base, len, domain)| Arena {
                domain,
                buddy: BuddyAllocator::new(base, len),
            })
            .collect();
        let cpu_arena = cpu_domain
            .iter()
            .map(|d| {
                arenas
                    .iter()
                    .position(|a| a.domain == *d)
                    .unwrap_or(0) as u32
            })
            .collect();
        let pcp = (0..cpu_domain.len().max(1))
            .map(|_| PcpCache::default())
            .collect();
        FrameAllocator {
            arenas,
            cpu_arena,
            pcp,
            cached_bytes: 0,
            stats: MemStats::default(),
            published: MemStats::default(),
        }
    }

    /// Number of CPUs with a cache.
    pub fn ncpus(&self) -> usize {
        self.pcp.len()
    }

    /// Number of NUMA arenas.
    pub fn arena_count(&self) -> usize {
        self.arenas.len()
    }

    /// First arena's base (the partition base in the single-domain case).
    pub fn base(&self) -> PhysAddr {
        self.arenas[0].buddy.base()
    }

    /// Total managed bytes across arenas.
    pub fn len_bytes(&self) -> u64 {
        self.arenas.iter().map(|a| a.buddy.len_bytes()).sum()
    }

    /// Free bytes: arena free lists + virgin zones + PCP-parked blocks
    /// (parked frames are free, just cached close to a CPU).
    pub fn free_bytes(&self) -> u64 {
        self.arenas.iter().map(|a| a.buddy.free_bytes()).sum::<u64>() + self.cached_bytes
    }

    /// Home NUMA domain of `cpu`.
    pub fn cpu_domain(&self, cpu: usize) -> NumaId {
        let idx = self.arena_idx_of_cpu(cpu);
        self.arenas[idx].domain
    }

    /// NUMA domain owning `addr`, if any arena contains it.
    pub fn domain_of(&self, addr: PhysAddr) -> Option<NumaId> {
        self.arenas
            .iter()
            .find(|a| a.buddy.contains(addr))
            .map(|a| a.domain)
    }

    #[inline]
    fn arena_idx_of_cpu(&self, cpu: usize) -> usize {
        self.cpu_arena.get(cpu).copied().unwrap_or(0) as usize
    }

    #[inline]
    fn arena_of_addr(&mut self, addr: PhysAddr) -> Option<&mut BuddyAllocator> {
        self.arenas
            .iter_mut()
            .map(|a| &mut a.buddy)
            .find(|b| b.contains(addr))
    }

    /// First-touch arena allocation with deterministic spill: try the
    /// CPU's home arena, then the others in ascending wrap order.
    fn arena_alloc(&mut self, cpu: usize, order: u8) -> Result<PhysAddr, AllocError> {
        let home = self.arena_idx_of_cpu(cpu);
        let n = self.arenas.len();
        for i in 0..n {
            let idx = (home + i) % n;
            if let Ok(p) = self.arenas[idx].buddy.alloc(order) {
                if i == 0 {
                    self.stats.alloc_local += 1;
                } else {
                    self.stats.alloc_spill += 1;
                }
                return Ok(p);
            }
        }
        Err(AllocError::OutOfMemory)
    }

    /// Allocate a block of `1 << order` pages for `cpu`. Order-0 and
    /// 2 MiB requests go through the CPU's PCP cache; everything else
    /// hits the arenas directly.
    pub fn alloc_on(&mut self, cpu: usize, order: u8) -> Result<PhysAddr, AllocError> {
        let (batch, is_small) = match order {
            0 => (PCP_SMALL_BATCH, true),
            ORDER_2M => (PCP_LARGE_BATCH, false),
            _ => return self.arena_alloc(cpu, order),
        };
        let ci = cpu.min(self.pcp.len() - 1);
        let cached = if is_small {
            self.pcp[ci].small.pop()
        } else {
            self.pcp[ci].large.pop()
        };
        if let Some(pa) = cached {
            self.stats.pcp_hit += 1;
            self.cached_bytes -= PAGE_SIZE << order;
            self.arena_of_addr(pa)
                .expect("cached frame belongs to an arena")
                .uncache_block(pa)
                .expect("cached frame uncaches");
            return Ok(pa);
        }
        // Miss: refill a batch (minus one — the caller takes the first).
        self.stats.pcp_refill += 1;
        let first = self.arena_alloc(cpu, order)?;
        for _ in 1..batch {
            match self.arena_alloc(cpu, order) {
                Ok(pa) => {
                    self.arena_of_addr(pa)
                        .expect("allocated frame belongs to an arena")
                        .cache_block(pa)
                        .expect("fresh block caches");
                    self.cached_bytes += PAGE_SIZE << order;
                    let c = &mut self.pcp[ci];
                    if is_small {
                        c.small.push(pa);
                    } else {
                        c.large.push(pa);
                    }
                }
                Err(_) => break, // partial refill is fine
            }
        }
        Ok(first)
    }

    /// Allocate on CPU 0 (kernel-internal allocations with no faulting
    /// CPU context: shm segments, boot-time structures).
    pub fn alloc(&mut self, order: u8) -> Result<PhysAddr, AllocError> {
        self.alloc_on(0, order)
    }

    /// Free a block into `cpu`'s cache when it is PCP-eligible, draining
    /// the oldest batch first if the cache is at its high watermark.
    pub fn free_on(&mut self, cpu: usize, addr: PhysAddr) -> Result<(), AllocError> {
        let order = {
            let Some(b) = self.arena_of_addr(addr) else {
                return Err(AllocError::BadFree(addr));
            };
            match b.allocated_order(addr) {
                Some(o) if o == 0 || o == ORDER_2M => o,
                // Not PCP-eligible (or not allocated: let free() report).
                _ => return b.free(addr),
            }
        };
        let ci = cpu.min(self.pcp.len() - 1);
        let (high, batch, is_small) = if order == 0 {
            (PCP_SMALL_HIGH, PCP_SMALL_BATCH, true)
        } else {
            (PCP_LARGE_HIGH, PCP_LARGE_BATCH, false)
        };
        let len = if is_small {
            self.pcp[ci].small.len()
        } else {
            self.pcp[ci].large.len()
        };
        if len >= high {
            self.stats.pcp_drain += 1;
            let drained: Vec<PhysAddr> = if is_small {
                self.pcp[ci].small.drain(..batch).collect()
            } else {
                self.pcp[ci].large.drain(..batch).collect()
            };
            for pa in drained {
                self.cached_bytes -= PAGE_SIZE << order;
                let b = self
                    .arena_of_addr(pa)
                    .expect("cached frame belongs to an arena");
                b.uncache_block(pa).expect("was cached");
                b.free(pa).expect("uncached block frees");
            }
        }
        self.arena_of_addr(addr)
            .expect("checked above")
            .cache_block(addr)?;
        self.cached_bytes += PAGE_SIZE << order;
        let c = &mut self.pcp[ci];
        if is_small {
            c.small.push(addr);
        } else {
            c.large.push(addr);
        }
        Ok(())
    }

    /// Free straight to the owning arena, bypassing the caches — the
    /// bulk-teardown path (munmap, process reap, shm destroy), where
    /// coalescing back to large blocks matters more than cache warmth.
    pub fn free(&mut self, addr: PhysAddr) -> Result<(), AllocError> {
        match self.arena_of_addr(addr) {
            Some(b) => b.free(addr),
            None => Err(AllocError::BadFree(addr)),
        }
    }

    /// Extents covering `bytes` (multi-extent beyond 4 MiB), first-touch
    /// on `cpu` with deterministic spill and all-or-nothing rollback.
    pub fn alloc_bytes_on(
        &mut self,
        cpu: usize,
        bytes: u64,
    ) -> Result<Vec<(PhysAddr, u8)>, AllocError> {
        assert!(bytes > 0);
        let mut remaining = (bytes + PAGE_SIZE - 1) >> PAGE_SHIFT;
        let mut out = Vec::new();
        while remaining > 0 {
            let order = (63 - remaining.leading_zeros() as u8).min(MAX_ORDER);
            match self.arena_alloc(cpu, order) {
                Ok(p) => {
                    out.push((p, order));
                    remaining -= 1u64 << order;
                }
                Err(e) => {
                    for (p, _) in out {
                        self.free(p).expect("just allocated");
                    }
                    return Err(e);
                }
            }
        }
        Ok(out)
    }

    /// Order of the live allocation starting at `addr`, if any.
    pub fn allocated_order(&self, addr: PhysAddr) -> Option<u8> {
        self.arenas
            .iter()
            .find(|a| a.buddy.contains(addr))
            .and_then(|a| a.buddy.allocated_order(addr))
    }

    /// Live allocations across arenas (PCP-parked blocks excluded).
    pub fn allocation_count(&self) -> usize {
        self.arenas.iter().map(|a| a.buddy.allocation_count()).sum()
    }

    /// Largest free order across arenas (virgin zones included).
    pub fn largest_free_order(&self) -> Option<u8> {
        self.arenas
            .iter()
            .filter_map(|a| a.buddy.largest_free_order())
            .max()
    }

    /// Return every PCP-parked block to its arena (tests, teardown
    /// audits: full coalescing only happens once the caches are empty).
    pub fn drain_all(&mut self) {
        for ci in 0..self.pcp.len() {
            self.drain_index(ci);
        }
    }

    /// Return one CPU's parked blocks to the arenas (core going offline:
    /// a released core must not keep frames parked in its cache).
    pub fn drain_cpu(&mut self, cpu: usize) {
        if !self.pcp.is_empty() {
            self.drain_index(cpu % self.pcp.len());
        }
    }

    /// Blocks currently parked in one CPU's cache — the release audit.
    pub fn pcp_cached_on(&self, cpu: usize) -> usize {
        self.pcp
            .get(cpu % self.pcp.len().max(1))
            .map_or(0, |c| c.small.len() + c.large.len())
    }

    fn drain_index(&mut self, ci: usize) {
        let small = std::mem::take(&mut self.pcp[ci].small);
        let large = std::mem::take(&mut self.pcp[ci].large);
        for (list, order) in [(small, 0u8), (large, ORDER_2M)] {
            for pa in list {
                self.cached_bytes -= PAGE_SIZE << order;
                let b = self
                    .arena_of_addr(pa)
                    .expect("cached frame belongs to an arena");
                b.uncache_block(pa).expect("was cached");
                b.free(pa).expect("uncached block frees");
            }
        }
    }

    /// Mirror counter deltas since the last publish into `trace` under
    /// `mck.pcp.*` / `mck.alloc.*`.
    pub fn publish_stats(&mut self, trace: &mut simcore::Trace) {
        let s = self.stats;
        let p = self.published;
        trace.add("mck.pcp.hit", s.pcp_hit - p.pcp_hit);
        trace.add("mck.pcp.refill", s.pcp_refill - p.pcp_refill);
        trace.add("mck.pcp.drain", s.pcp_drain - p.pcp_drain);
        trace.add("mck.alloc.local", s.alloc_local - p.alloc_local);
        trace.add("mck.alloc.spill", s.alloc_spill - p.alloc_spill);
        self.published = s;
    }

    /// Run every arena's invariant sweep (caches stay parked).
    pub fn check_invariants(&self) -> Result<(), String> {
        for a in &self.arenas {
            a.buddy.check_invariants()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk() -> BuddyAllocator {
        BuddyAllocator::new(PhysAddr(8 << 20), 16 << 20) // 16 MiB at 8 MiB
    }

    #[test]
    fn fresh_allocator_is_all_free() {
        let a = mk();
        assert_eq!(a.free_bytes(), 16 << 20);
        assert_eq!(a.largest_free_order(), Some(MAX_ORDER));
        a.check_invariants().unwrap();
    }

    #[test]
    fn alloc_is_deterministic_and_aligned() {
        let mut a = mk();
        let p0 = a.alloc(0).unwrap();
        assert_eq!(p0, PhysAddr(8 << 20), "first alloc carves the base block");
        let p2m = a.alloc(ORDER_2M).unwrap();
        assert_eq!(p2m.raw() % (2 << 20), 0, "2M block naturally aligned");
        a.check_invariants().unwrap();
        // Same sequence on a fresh allocator replays identically.
        let mut b = mk();
        assert_eq!(b.alloc(0).unwrap(), p0);
        assert_eq!(b.alloc(ORDER_2M).unwrap(), p2m);
    }

    #[test]
    fn free_coalesces_back_to_max_order() {
        let mut a = mk();
        let mut blocks = Vec::new();
        loop {
            match a.alloc(0) {
                Ok(p) => blocks.push(p),
                Err(AllocError::OutOfMemory) => break,
                Err(e) => panic!("{e:?}"),
            }
        }
        assert_eq!(a.free_bytes(), 0);
        for p in blocks {
            a.free(p).unwrap();
        }
        assert_eq!(a.free_bytes(), 16 << 20);
        assert_eq!(a.largest_free_order(), Some(MAX_ORDER));
        a.check_invariants().unwrap();
    }

    #[test]
    fn double_free_rejected() {
        let mut a = mk();
        let p = a.alloc(3).unwrap();
        a.free(p).unwrap();
        assert_eq!(a.free(p), Err(AllocError::BadFree(p)));
    }

    #[test]
    fn free_of_interior_address_rejected() {
        let mut a = mk();
        let p = a.alloc(2).unwrap();
        assert_eq!(
            a.free(p + PAGE_SIZE),
            Err(AllocError::BadFree(p + PAGE_SIZE))
        );
        assert_eq!(a.free(PhysAddr(0)), Err(AllocError::BadFree(PhysAddr(0))));
    }

    #[test]
    fn alloc_bytes_decomposes_exactly() {
        let mut a = mk();
        let e1 = a.alloc_bytes(1).unwrap();
        assert_eq!(e1.len(), 1);
        assert_eq!(e1[0].1, 0);
        let e2 = a.alloc_bytes(PAGE_SIZE + 1).unwrap();
        assert_eq!(e2.len(), 1);
        assert_eq!(e2[0].1, 1);
        let e3 = a.alloc_bytes(2 << 20).unwrap();
        assert_eq!(e3.len(), 1);
        assert_eq!(e3[0].1, ORDER_2M);
        assert!(e3[0].0.is_2m_aligned());
        // 3 pages: order-1 + order-0, no rounding waste.
        let e4 = a.alloc_bytes(3 * PAGE_SIZE).unwrap();
        assert_eq!(e4.iter().map(|&(_, o)| o).collect::<Vec<_>>(), vec![1, 0]);
        a.check_invariants().unwrap();
    }

    #[test]
    fn alloc_bytes_backs_large_requests_with_multiple_extents() {
        let mut a = mk();
        // 8 MiB: two max-order extents — the old allocator refused this.
        let e = a.alloc_bytes(8 << 20).unwrap();
        assert_eq!(e.iter().map(|&(_, o)| o).collect::<Vec<_>>(), vec![
            MAX_ORDER, MAX_ORDER
        ]);
        // 16 MiB total: 8 remain.
        let e2 = a.alloc_bytes(8 << 20).unwrap();
        assert_eq!(e2.len(), 2);
        assert_eq!(a.free_bytes(), 0);
        // Larger than the pool: all-or-nothing rollback.
        assert_eq!(a.alloc_bytes(4 << 20), Err(AllocError::OutOfMemory));
        for (p, _) in e.into_iter().chain(e2) {
            a.free(p).unwrap();
        }
        assert_eq!(a.free_bytes(), 16 << 20);
        a.check_invariants().unwrap();
    }

    #[test]
    fn alloc_bytes_rolls_back_on_exhaustion() {
        let mut a = mk();
        let held = a.alloc_bytes(14 << 20).unwrap();
        let free0 = a.free_bytes();
        let live0 = a.allocation_count();
        assert_eq!(a.alloc_bytes(4 << 20), Err(AllocError::OutOfMemory));
        assert_eq!(a.free_bytes(), free0, "partial extents rolled back");
        assert_eq!(a.allocation_count(), live0);
        for (p, _) in held {
            a.free(p).unwrap();
        }
        a.check_invariants().unwrap();
    }

    #[test]
    fn exhaustion_then_recovery() {
        let mut a = mk();
        let b1 = a.alloc(MAX_ORDER).unwrap();
        let b2 = a.alloc(MAX_ORDER).unwrap();
        let b3 = a.alloc(MAX_ORDER).unwrap();
        let b4 = a.alloc(MAX_ORDER).unwrap();
        assert_eq!(a.alloc(0), Err(AllocError::OutOfMemory));
        a.free(b2).unwrap();
        assert!(a.alloc(ORDER_2M).is_ok());
        for p in [b1, b3, b4] {
            a.free(p).unwrap();
        }
        a.check_invariants().unwrap();
    }

    #[test]
    fn allocated_order_lookup() {
        let mut a = mk();
        let p = a.alloc(4).unwrap();
        assert_eq!(a.allocated_order(p), Some(4));
        assert_eq!(a.allocated_order(p + PAGE_SIZE), None);
        assert_eq!(a.allocation_count(), 1);
    }

    #[test]
    fn interleaved_churn_keeps_invariants() {
        let mut a = mk();
        let mut held = Vec::new();
        for round in 0..50u64 {
            for i in 0..8u64 {
                if let Ok(p) = a.alloc(((round + i) % 5) as u8) {
                    held.push(p);
                }
            }
            // Free every other block.
            let mut i = 0;
            held.retain(|&p| {
                i += 1;
                if i % 2 == 0 {
                    a.free(p).unwrap();
                    false
                } else {
                    true
                }
            });
        }
        a.check_invariants().unwrap();
        for p in held {
            a.free(p).unwrap();
        }
        assert_eq!(a.free_bytes(), 16 << 20);
        assert_eq!(a.largest_free_order(), Some(MAX_ORDER));
        a.check_invariants().unwrap();
    }

    fn mk_numa() -> FrameAllocator {
        // Two 8 MiB domains, 4 CPUs: 0-1 on domain 0, 2-3 on domain 1.
        FrameAllocator::new(
            &[
                (PhysAddr(16 << 20), 8 << 20, NumaId(0)),
                (PhysAddr(64 << 20), 8 << 20, NumaId(1)),
            ],
            &[NumaId(0), NumaId(0), NumaId(1), NumaId(1)],
        )
    }

    #[test]
    fn first_touch_places_locally() {
        let mut f = mk_numa();
        let p0 = f.alloc_on(0, 3).unwrap();
        let p2 = f.alloc_on(2, 3).unwrap();
        assert_eq!(f.domain_of(p0), Some(NumaId(0)));
        assert_eq!(f.domain_of(p2), Some(NumaId(1)));
        assert_eq!(f.stats.alloc_local, 2);
        assert_eq!(f.stats.alloc_spill, 0);
    }

    #[test]
    fn spill_is_deterministic_and_counted() {
        let mut f = mk_numa();
        // Exhaust domain 0 with direct (non-PCP) allocations.
        let mut held = Vec::new();
        while let Ok(p) = f.alloc_on(0, MAX_ORDER - 1) {
            if f.domain_of(p) == Some(NumaId(1)) {
                held.push(p);
                break;
            }
            held.push(p);
        }
        assert!(f.stats.alloc_spill >= 1, "domain 0 dry -> spill to 1");
        for p in held {
            f.free(p).unwrap();
        }
        f.check_invariants().unwrap();
    }

    #[test]
    fn pcp_hits_after_refill_and_drains_at_watermark() {
        let mut f = mk_numa();
        // First order-0 alloc refills the batch; the rest hit.
        let mut pages = Vec::new();
        for _ in 0..PCP_SMALL_BATCH {
            pages.push(f.alloc_on(1, 0).unwrap());
        }
        assert_eq!(f.stats.pcp_refill, 1);
        assert_eq!(f.stats.pcp_hit as usize, PCP_SMALL_BATCH - 1);
        // Frees park in the cache; accounting still sees them as free.
        let free_before = f.free_bytes();
        for p in &pages {
            f.free_on(1, *p).unwrap();
        }
        assert_eq!(
            f.free_bytes(),
            free_before + (pages.len() as u64) * PAGE_SIZE
        );
        assert_eq!(f.allocation_count(), 0);
        // Push past the high watermark: a drain trip fires.
        let mut more = Vec::new();
        for _ in 0..PCP_SMALL_HIGH + 1 {
            more.push(f.alloc_on(1, 0).unwrap());
        }
        for p in &more {
            f.free_on(1, *p).unwrap();
        }
        assert!(f.stats.pcp_drain >= 1);
        f.drain_all();
        assert_eq!(f.free_bytes(), f.len_bytes());
        f.check_invariants().unwrap();
    }

    #[test]
    fn pcp_double_free_rejected() {
        let mut f = mk_numa();
        let p = f.alloc_on(0, 0).unwrap();
        f.free_on(0, p).unwrap();
        assert_eq!(f.free_on(0, p), Err(AllocError::BadFree(p)));
        assert_eq!(f.free(p), Err(AllocError::BadFree(p)));
    }

    #[test]
    fn large_blocks_cache_separately() {
        let mut f = mk_numa();
        let p = f.alloc_on(0, ORDER_2M).unwrap();
        assert!(p.is_2m_aligned());
        f.free_on(0, p).unwrap();
        // Comes straight back out of the large cache.
        let q = f.alloc_on(0, ORDER_2M).unwrap();
        assert_eq!(p, q, "LIFO cache returns the parked block");
        assert!(f.stats.pcp_hit >= 1);
        f.free(q).unwrap();
        f.drain_all();
        assert_eq!(f.free_bytes(), f.len_bytes());
    }

    #[test]
    fn publish_stats_emits_deltas() {
        let mut f = mk_numa();
        let mut t = simcore::Trace::new();
        let _ = f.alloc_on(0, 0).unwrap();
        f.publish_stats(&mut t);
        assert_eq!(t.get("mck.pcp.refill"), 1);
        let _ = f.alloc_on(0, 0).unwrap();
        f.publish_stats(&mut t);
        assert_eq!(t.get("mck.pcp.hit"), 1);
        assert_eq!(t.get("mck.pcp.refill"), 1, "published as deltas");
    }

    #[test]
    fn replay_is_bit_identical() {
        let run = || {
            let mut f = mk_numa();
            let mut trace = Vec::new();
            let mut held: Vec<PhysAddr> = Vec::new();
            for i in 0..500u64 {
                match i % 7 {
                    0 | 1 | 4 => {
                        if let Ok(p) = f.alloc_on((i % 4) as usize, 0) {
                            trace.push(p.raw());
                            held.push(p);
                        }
                    }
                    2 => {
                        if let Ok(p) = f.alloc_on((i % 4) as usize, ORDER_2M) {
                            trace.push(p.raw());
                            held.push(p);
                        }
                    }
                    _ => {
                        if !held.is_empty() {
                            let p = held.swap_remove((i as usize * 31) % held.len());
                            f.free_on((i % 4) as usize, p).unwrap();
                            trace.push(u64::MAX - p.raw());
                        }
                    }
                }
            }
            trace
        };
        assert_eq!(run(), run(), "policy is a pure function of history");
    }
}
