//! McKernel memory management: buddy allocator, page tables, VMAs, and the
//! demand-paging fault path that ties them together.

pub mod pagetable;
pub mod phys;
pub mod tlb;
pub mod vm;

use crate::abi::Errno;
use crate::costs::CostModel;
use hwmodel::addr::{PhysAddr, VirtAddr, PAGE_SIZE, PAGE_SIZE_2M};
use pagetable::{PageSize, PageTable, PteFlags, Translation};
use phys::{AllocError, FrameAllocator, ORDER_2M};
use simcore::Cycles;
use tlb::TlbSet;
use vm::{VmSpace, Vma, VmaKind};

/// Default per-CPU software-TLB count for an address space. McKernel
/// partitions model up to a socket's worth of LWK cores per process.
const DEFAULT_TLB_CPUS: usize = 8;

/// Fault-around window: on a 4 KiB fault, up to this many consecutive
/// PTEs are populated in one trap (clipped at the VMA end and the next
/// 2 MiB boundary, and stopping early at an already-mapped page). The
/// value mirrors Linux's `fault_around_bytes` default (64 KiB).
pub const FAULT_AROUND_PAGES: u64 = 16;

/// One process's address space: VMA tree + hardware page table, fronted
/// by per-CPU software TLBs ([`tlb::TlbSet`]). Hot-path callers
/// translate through [`AddressSpace::translate_on`]; every leaf removal
/// below goes through the shootdown hook so the caches never serve a
/// stale mapping.
#[derive(Debug)]
pub struct AddressSpace {
    /// VMA tree and layout policy.
    pub vm: VmSpace,
    /// Four-level page table.
    pub pt: PageTable,
    /// Per-CPU translation caches over `pt`.
    pub tlb: TlbSet,
}

impl AddressSpace {
    /// New space. `on_mckernel` enables the proxy-exclusion hole.
    pub fn new(on_mckernel: bool) -> Self {
        AddressSpace {
            vm: VmSpace::new(on_mckernel),
            pt: PageTable::new(),
            tlb: TlbSet::new(DEFAULT_TLB_CPUS),
        }
    }

    /// Translate `va` through CPU 0's software TLB.
    #[inline]
    pub fn translate(&mut self, va: VirtAddr) -> Option<Translation> {
        self.tlb.translate_on(0, &self.pt, va)
    }

    /// Translate `va` through `cpu`'s software TLB.
    #[inline]
    pub fn translate_on(&mut self, cpu: usize, va: VirtAddr) -> Option<Translation> {
        self.tlb.translate_on(cpu, &self.pt, va)
    }

    /// Remove the leaf containing `va` and shoot it down on every CPU's
    /// TLB. All teardown paths must use this (or call
    /// `tlb.shootdown_page` themselves) rather than `pt.unmap` directly.
    pub fn unmap_page(&mut self, va: VirtAddr) -> Option<(PhysAddr, PageSize)> {
        let r = self.pt.unmap(va);
        if r.is_some() {
            self.tlb.shootdown_page(va);
        }
        r
    }
}

/// Outcome of a page fault on the LWK.
#[derive(Debug, PartialEq, Eq)]
pub enum FaultOutcome {
    /// Anonymous page mapped locally.
    Mapped {
        /// Base physical address of the leaf installed at the faulting
        /// page.
        phys: PhysAddr,
        /// Leaf size installed.
        size: PageSize,
        /// Fault service cost.
        cost: Cycles,
        /// Leaves installed by this trap: 0 for a spurious refault, 1
        /// for a plain or 2 MiB fault, up to [`FAULT_AROUND_PAGES`] when
        /// fault-around populated neighbours.
        pages: u64,
    },
    /// The fault hit a device mapping: resolution requires the Fig. 4
    /// steps 8-10 (IKC round trip to the Linux-side tracking object).
    /// The caller drives that flow and finishes with
    /// [`complete_device_fault`].
    NeedsDeviceResolve {
        /// Device name of the VMA.
        dev_name: String,
        /// Offset into the device file at the faulting page.
        file_off: u64,
        /// Tracking-object id.
        tracking: u64,
        /// Page-aligned faulting address.
        page_va: VirtAddr,
    },
    /// No VMA covers the address.
    SegFault,
}

/// Service an LWK page fault at `va` on behalf of `cpu` (partition-
/// relative index of the faulting core; drives first-touch NUMA
/// placement and the PCP cache used).
///
/// Anonymous memory is backed from the per-domain buddy arenas; when the
/// VMA allows it, a full 2 MiB naturally aligned window is installed at
/// once (the McKernel policy that produces its TLB advantage). The 4 KiB
/// path uses fault-around: up to [`FAULT_AROUND_PAGES`] consecutive PTEs
/// per trap.
pub fn handle_fault(
    aspace: &mut AddressSpace,
    alloc: &mut FrameAllocator,
    costs: &CostModel,
    cpu: usize,
    va: VirtAddr,
) -> FaultOutcome {
    handle_fault_with_window(aspace, alloc, costs, cpu, va, FAULT_AROUND_PAGES)
}

/// [`handle_fault`] with an explicit fault-around window (window 1 ==
/// one-page-at-a-time faulting; property tests compare the two).
pub fn handle_fault_with_window(
    aspace: &mut AddressSpace,
    alloc: &mut FrameAllocator,
    costs: &CostModel,
    cpu: usize,
    va: VirtAddr,
    window: u64,
) -> FaultOutcome {
    // Already mapped (racing fault): treat as spurious, cheap refill.
    // One cached translation instead of three raw walks.
    if let Some(t) = aspace.translate_on(cpu, va) {
        return FaultOutcome::Mapped {
            phys: t.phys.page_align_down(),
            size: t.size,
            cost: costs.lwk_syscall, // TLB refill-ish, nominal
            pages: 0,
        };
    }
    let Some(vma) = aspace.vm.vma_at(va) else {
        return FaultOutcome::SegFault;
    };
    let writable = vma.writable;
    match &vma.kind {
        VmaKind::Device {
            dev_name,
            file_off,
            tracking,
        } => {
            let page_va = va.page_align_down();
            FaultOutcome::NeedsDeviceResolve {
                dev_name: dev_name.clone(),
                file_off: file_off + (page_va - vma.start),
                tracking: *tracking,
                page_va,
            }
        }
        VmaKind::Anon { large_ok } => {
            let large_ok = *large_ok;
            let (vstart, vend) = (vma.start.raw(), vma.end.raw());
            let flags = if writable {
                PteFlags::rw()
            } else {
                PteFlags::ro()
            };
            // Try a 2 MiB leaf when policy and geometry allow.
            if large_ok {
                let win = va.raw() / PAGE_SIZE_2M * PAGE_SIZE_2M;
                if win >= vstart && win + PAGE_SIZE_2M <= vend {
                    if let Ok(pa) = alloc.alloc_on(cpu, ORDER_2M) {
                        aspace
                            .pt
                            .map_2m(VirtAddr(win), pa, flags)
                            .expect("fault path checked translate above");
                        let mut cost = costs.lwk_page_fault + costs.page_touch * 4;
                        if alloc.domain_of(pa) != Some(alloc.cpu_domain(cpu)) {
                            cost += costs.remote_numa_touch;
                        }
                        return FaultOutcome::Mapped {
                            phys: pa,
                            size: PageSize::Size2m,
                            cost,
                            pages: 1,
                        };
                    }
                }
            }
            fault_around_4k(aspace, alloc, costs, cpu, VirtAddr(vend), va, flags, window)
        }
        VmaKind::Heap | VmaKind::Stack => {
            let vend = vma.end;
            let flags = if writable {
                PteFlags::rw()
            } else {
                PteFlags::ro()
            };
            fault_around_4k(aspace, alloc, costs, cpu, vend, va, flags, window)
        }
    }
}

/// The shared 4 KiB populate loop: install PTEs for `[page, page+n)`
/// where `n <= window`, clipped at the VMA end and the next 2 MiB
/// boundary, stopping early at an already-mapped page or on allocator
/// exhaustion (a partial run is fine as long as the faulting page
/// itself mapped).
///
/// Cost: one trap (`lwk_page_fault`) + `page_touch` per installed page +
/// `remote_numa_touch` per frame placed off the faulting CPU's domain —
/// so a single-page window costs exactly what one-at-a-time faulting
/// does, and wider windows amortize the trap.
#[allow(clippy::too_many_arguments)]
fn fault_around_4k(
    aspace: &mut AddressSpace,
    alloc: &mut FrameAllocator,
    costs: &CostModel,
    cpu: usize,
    vma_end: VirtAddr,
    va: VirtAddr,
    flags: PteFlags,
    window: u64,
) -> FaultOutcome {
    let page = va.page_align_down();
    let next_2m = VirtAddr(page.raw() / PAGE_SIZE_2M * PAGE_SIZE_2M + PAGE_SIZE_2M);
    let limit = vma_end.min(next_2m);
    let max_pages = ((limit - page) >> 12).min(window.max(1));
    let home = alloc.cpu_domain(cpu);
    let mut first_pa = PhysAddr(0);
    let mut installed = 0u64;
    let mut remote = 0u64;
    for i in 0..max_pages {
        let p_va = page + i * PAGE_SIZE;
        // Neighbour already mapped: the run ends (raw walk — no TLB fill
        // for pages nobody touched yet).
        if i > 0 && aspace.pt.translate(p_va).is_some() {
            break;
        }
        match alloc.alloc_on(cpu, 0) {
            Ok(pa) => {
                aspace
                    .pt
                    .map_4k(p_va, pa, flags)
                    .expect("checked unmapped above");
                if i == 0 {
                    first_pa = pa;
                }
                if alloc.domain_of(pa) != Some(home) {
                    remote += 1;
                }
                installed += 1;
            }
            Err(AllocError::OutOfMemory) if i == 0 => return FaultOutcome::SegFault,
            Err(_) => break, // partial fault-around on exhaustion
        }
    }
    FaultOutcome::Mapped {
        phys: first_pa,
        size: PageSize::Size4k,
        cost: costs.lwk_page_fault
            + costs.page_touch * installed
            + costs.remote_numa_touch * remote,
        pages: installed,
    }
}

/// Finish a device fault after Linux resolved the physical address
/// (Fig. 4, step 11: "fill in the missing page table entry").
pub fn complete_device_fault(
    aspace: &mut AddressSpace,
    page_va: VirtAddr,
    phys: PhysAddr,
) -> Result<(), Errno> {
    aspace
        .pt
        .map_4k(page_va, phys.page_align_down(), PteFlags::device())
        .map_err(|_| Errno::EEXIST)
}

/// Result of an address-space range teardown.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct UnmapStats {
    /// 4 KiB leaves removed.
    pub pages_4k: u64,
    /// 2 MiB leaves removed.
    pub pages_2m: u64,
    /// Buddy blocks returned.
    pub blocks_freed: u64,
    /// Total teardown cost (PTE removal + TLB shootdowns + frees).
    pub cost: Cycles,
    /// The removed VMA fragments (the proxy pseudo-mapping must be
    /// invalidated over exactly these ranges).
    pub removed: Vec<Vma>,
}

/// `munmap` semantics: drop VMAs over `[start, start+len)`, tear down any
/// installed leaves, return anonymous frames to the buddy arenas.
///
/// Frames go back via the direct (cache-bypassing) path: bulk teardown
/// wants immediate coalescing into large blocks, not cache warmth.
///
/// A 2 MiB leaf partially covered by the range is removed in full (VMA
/// geometry guarantees leaves never span VMA boundaries, so this only
/// happens for sub-VMA unmaps; documented simplification).
pub fn unmap_range(
    aspace: &mut AddressSpace,
    alloc: &mut FrameAllocator,
    costs: &CostModel,
    start: VirtAddr,
    len: u64,
) -> Result<UnmapStats, Errno> {
    let removed = aspace.vm.munmap(start, len)?;
    let mut stats = UnmapStats::default();
    for vma in &removed {
        let mut va = vma.start;
        while va < vma.end {
            match aspace.unmap_page(va) {
                Some((pa, PageSize::Size4k)) => {
                    stats.pages_4k += 1;
                    stats.cost += costs.tlb_shootdown_page;
                    if !matches!(vma.kind, VmaKind::Device { .. }) {
                        alloc.free(pa).expect("frame came from this allocator");
                        stats.blocks_freed += 1;
                    }
                    va = va + PAGE_SIZE;
                }
                Some((pa, PageSize::Size2m)) => {
                    stats.pages_2m += 1;
                    stats.cost += costs.tlb_shootdown_page;
                    if !matches!(vma.kind, VmaKind::Device { .. }) {
                        alloc.free(pa).expect("frame came from this allocator");
                        stats.blocks_freed += 1;
                    }
                    // Skip to the end of the 2M window we just removed.
                    let win_end = (va.raw() / PAGE_SIZE_2M + 1) * PAGE_SIZE_2M;
                    va = VirtAddr(win_end);
                }
                None => va = va + PAGE_SIZE,
            }
        }
    }
    stats.removed = removed;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (AddressSpace, FrameAllocator, CostModel) {
        (
            AddressSpace::new(true),
            FrameAllocator::single(PhysAddr(64 << 20), 32 << 20, 4),
            CostModel::default(),
        )
    }

    #[test]
    fn anon_fault_small_vma_gets_4k() {
        let (mut a, mut alloc, costs) = setup();
        let va = a
            .vm
            .mmap(0x3000, VmaKind::Anon { large_ok: true }, true, None)
            .unwrap();
        match handle_fault(&mut a, &mut alloc, &costs, 0, va + 0x1234) {
            FaultOutcome::Mapped { size, pages, .. } => {
                assert_eq!(size, PageSize::Size4k);
                // Fault at page 1 of 3: pages 1 and 2 populate.
                assert_eq!(pages, 2);
            }
            o => panic!("{o:?}"),
        }
        let t = a.pt.translate(va + 0x1234).unwrap();
        assert!(t.flags.write);
        assert!(a.pt.translate(va + 0x2000).is_some(), "fault-around mapped");
        assert!(a.pt.translate(va).is_none(), "window runs forward only");
    }

    #[test]
    fn anon_fault_large_vma_gets_2m_on_mckernel_policy() {
        let (mut a, mut alloc, costs) = setup();
        let va = a
            .vm
            .mmap(8 << 20, VmaKind::Anon { large_ok: true }, true, None)
            .unwrap();
        match handle_fault(&mut a, &mut alloc, &costs, 0, va + 0x100) {
            FaultOutcome::Mapped { size, phys, pages, .. } => {
                assert_eq!(size, PageSize::Size2m);
                assert!(phys.is_2m_aligned());
                assert_eq!(pages, 1);
            }
            o => panic!("{o:?}"),
        }
        // Whole 2M window now translates.
        assert!(a.pt.translate(va + PAGE_SIZE_2M - 1).is_some());
    }

    #[test]
    fn anon_fault_linux_policy_stays_4k() {
        let (_, mut alloc, costs) = setup();
        let mut a = AddressSpace::new(false);
        let va = a
            .vm
            .mmap(8 << 20, VmaKind::Anon { large_ok: false }, true, None)
            .unwrap();
        match handle_fault(&mut a, &mut alloc, &costs, 0, va) {
            FaultOutcome::Mapped { size, pages, .. } => {
                assert_eq!(size, PageSize::Size4k);
                assert_eq!(pages, FAULT_AROUND_PAGES, "full window inside the VMA");
            }
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn fault_around_stops_at_2m_boundary_and_mapped_pages() {
        let (mut a, mut alloc, costs) = setup();
        let va = a
            .vm
            .mmap(4 << 20, VmaKind::Anon { large_ok: false }, true, None)
            .unwrap();
        // Fault 3 pages shy of a 2 MiB boundary: the run clips there.
        let near_end = va + PAGE_SIZE_2M - 3 * PAGE_SIZE;
        match handle_fault(&mut a, &mut alloc, &costs, 0, near_end) {
            FaultOutcome::Mapped { pages, .. } => assert_eq!(pages, 3),
            o => panic!("{o:?}"),
        }
        assert!(
            a.pt.translate(va + PAGE_SIZE_2M).is_none(),
            "nothing installed past the boundary"
        );
        // Pre-existing mapping ends the run early.
        match handle_fault(&mut a, &mut alloc, &costs, 0, va + PAGE_SIZE_2M - 5 * PAGE_SIZE) {
            FaultOutcome::Mapped { pages, .. } => {
                assert_eq!(pages, 2, "stops at the previously faulted run");
            }
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn fault_around_cost_scales_with_pages() {
        let (mut a, mut alloc, costs) = setup();
        let va = a
            .vm
            .mmap(1 << 20, VmaKind::Anon { large_ok: false }, true, None)
            .unwrap();
        let c_wide = match handle_fault(&mut a, &mut alloc, &costs, 0, va) {
            FaultOutcome::Mapped { cost, pages, .. } => {
                assert_eq!(pages, FAULT_AROUND_PAGES);
                cost
            }
            o => panic!("{o:?}"),
        };
        assert_eq!(
            c_wide,
            costs.lwk_page_fault + costs.page_touch * FAULT_AROUND_PAGES
        );
        // Window 1 costs exactly the classic single-page fault.
        let (mut b, mut alloc2, _) = setup();
        let vb = b
            .vm
            .mmap(1 << 20, VmaKind::Anon { large_ok: false }, true, None)
            .unwrap();
        match handle_fault_with_window(&mut b, &mut alloc2, &costs, 0, vb, 1) {
            FaultOutcome::Mapped { cost, pages, .. } => {
                assert_eq!(pages, 1);
                assert_eq!(cost, costs.lwk_page_fault + costs.page_touch);
            }
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn fault_outside_any_vma_segfaults() {
        let (mut a, mut alloc, costs) = setup();
        assert_eq!(
            handle_fault(&mut a, &mut alloc, &costs, 0, VirtAddr(0x4141_0000)),
            FaultOutcome::SegFault
        );
    }

    #[test]
    fn device_fault_requests_resolution_then_completes() {
        let (mut a, mut alloc, costs) = setup();
        let va = a
            .vm
            .mmap(
                0x4000,
                VmaKind::Device {
                    dev_name: "infiniband/uverbs0".into(),
                    file_off: 0x10000,
                    tracking: 42,
                },
                true,
                None,
            )
            .unwrap();
        let fault_va = va + 0x2345;
        match handle_fault(&mut a, &mut alloc, &costs, 0, fault_va) {
            FaultOutcome::NeedsDeviceResolve {
                dev_name,
                file_off,
                tracking,
                page_va,
            } => {
                assert_eq!(dev_name, "infiniband/uverbs0");
                assert_eq!(file_off, 0x10000 + 0x2000);
                assert_eq!(tracking, 42);
                assert_eq!(page_va, va + 0x2000);
                complete_device_fault(&mut a, page_va, PhysAddr(0x10_0000_4000)).unwrap();
            }
            o => panic!("{o:?}"),
        }
        let t = a.pt.translate(fault_va).unwrap();
        assert!(t.flags.device);
        assert_eq!(t.phys, PhysAddr(0x10_0000_4345).page_align_down() + 0x345);
    }

    #[test]
    fn fragmentation_falls_back_to_4k() {
        let (mut a, mut alloc, costs) = setup();
        // Fragment physical memory: keep odd order-0 allocations so no 2M
        // block remains.
        let mut held = Vec::new();
        while let Ok(p) = alloc.alloc(ORDER_2M) {
            held.push(p);
        }
        // Release one 2M block, then split it with a 4K allocation so
        // max contiguity is below 2M.
        let p = held.pop().unwrap();
        alloc.free(p).unwrap();
        let _pin = alloc.alloc(0).unwrap();
        let va = a
            .vm
            .mmap(4 << 20, VmaKind::Anon { large_ok: true }, true, None)
            .unwrap();
        match handle_fault(&mut a, &mut alloc, &costs, 0, va) {
            FaultOutcome::Mapped { size, .. } => assert_eq!(size, PageSize::Size4k),
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn unmap_returns_frames_and_reports_ranges() {
        let (mut a, mut alloc, costs) = setup();
        let free0 = alloc.free_bytes();
        let va = a
            .vm
            .mmap(4 << 20, VmaKind::Anon { large_ok: true }, true, None)
            .unwrap();
        // Touch both 2M windows.
        handle_fault(&mut a, &mut alloc, &costs, 0, va);
        handle_fault(&mut a, &mut alloc, &costs, 0, va + PAGE_SIZE_2M);
        assert_eq!(a.pt.leaf_counts(), (0, 2));
        let stats = unmap_range(&mut a, &mut alloc, &costs, va, 4 << 20).unwrap();
        assert_eq!(stats.pages_2m, 2);
        assert_eq!(stats.blocks_freed, 2);
        assert_eq!(stats.removed.len(), 1);
        assert_eq!(alloc.free_bytes(), free0);
        assert!(a.pt.is_empty());
        assert_eq!(a.vm.count(), 0);
    }

    #[test]
    fn unmap_skips_device_frames() {
        let (mut a, mut alloc, costs) = setup();
        let free0 = alloc.free_bytes();
        let va = a
            .vm
            .mmap(
                0x2000,
                VmaKind::Device {
                    dev_name: "eth0".into(),
                    file_off: 0,
                    tracking: 1,
                },
                true,
                None,
            )
            .unwrap();
        complete_device_fault(&mut a, va, PhysAddr(0x10_0000_0000)).unwrap();
        let stats = unmap_range(&mut a, &mut alloc, &costs, va, 0x2000).unwrap();
        assert_eq!(stats.pages_4k, 1);
        assert_eq!(stats.blocks_freed, 0, "BAR pages are not buddy frames");
        assert_eq!(alloc.free_bytes(), free0);
    }

    #[test]
    fn spurious_refault_is_cheap_noop() {
        let (mut a, mut alloc, costs) = setup();
        let va = a
            .vm
            .mmap(0x1000, VmaKind::Anon { large_ok: false }, true, None)
            .unwrap();
        let first = handle_fault(&mut a, &mut alloc, &costs, 0, va);
        let again = handle_fault(&mut a, &mut alloc, &costs, 0, va);
        match (first, again) {
            (
                FaultOutcome::Mapped { phys: p1, cost: c1, pages: n1, .. },
                FaultOutcome::Mapped { phys: p2, cost: c2, pages: n2, .. },
            ) => {
                assert_eq!(p1, p2, "no second frame allocated");
                assert!(c2 < c1);
                assert_eq!(n1, 1, "one-page VMA: no around");
                assert_eq!(n2, 0, "spurious refault installs nothing");
            }
            o => panic!("{o:?}"),
        }
        assert_eq!(alloc.allocation_count(), 1);
    }

    #[test]
    fn remote_spill_is_charged() {
        let mut a = AddressSpace::new(true);
        let costs = CostModel::default();
        // Two domains; CPU 0 homes to a tiny domain 0 that we exhaust.
        let mut alloc = FrameAllocator::new(
            &[
                (PhysAddr(64 << 20), 4 << 20, hwmodel::cpu::NumaId(0)),
                (PhysAddr(128 << 20), 8 << 20, hwmodel::cpu::NumaId(1)),
            ],
            &[hwmodel::cpu::NumaId(0)],
        );
        // Drain domain 0 completely (direct order beyond PCP).
        let h0 = alloc.alloc_bytes_on(0, 4 << 20).unwrap();
        assert!(h0.iter().all(|&(p, _)| p.raw() < 128 << 20));
        let va = a
            .vm
            .mmap(2 << 20, VmaKind::Anon { large_ok: true }, true, None)
            .unwrap();
        match handle_fault(&mut a, &mut alloc, &costs, 0, va) {
            FaultOutcome::Mapped { size, cost, phys, .. } => {
                assert_eq!(size, PageSize::Size2m);
                assert!(phys.raw() >= 128 << 20, "spilled to domain 1");
                assert_eq!(
                    cost,
                    costs.lwk_page_fault + costs.page_touch * 4 + costs.remote_numa_touch
                );
            }
            o => panic!("{o:?}"),
        }
        assert!(alloc.stats.alloc_spill >= 1);
    }
}
