//! Inter-process shared-memory segments.
//!
//! Sec. II: McKernel "allows inter-process memory mappings", and Sec. IV-A
//! notes the paper "simply assume\[s\] that a straightforward shared memory
//! segment would be sufficient" for communication between the simulation
//! and in-situ processes. This module provides those segments: physically
//! contiguous (buddy-backed) ranges mapped into any number of LWK
//! processes — and, because the physical frames are plain node memory,
//! equally readable by a Linux-side analytics process (which is exactly
//! the simulation→in-situ hand-off path).

use crate::abi::Errno;
use crate::mck::mem::pagetable::PteFlags;
use crate::mck::mem::phys::{FrameAllocator, ORDER_2M};
use crate::mck::mem::vm::VmaKind;
use crate::mck::mem::AddressSpace;
use hwmodel::addr::{PhysAddr, VirtAddr, PAGE_SIZE_2M};
use std::collections::HashMap;

/// Identifier of a shared segment.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ShmId(pub u64);

/// One shared segment: eagerly backed, physically contiguous chunks.
#[derive(Debug)]
pub struct ShmSegment {
    /// Segment id.
    pub id: ShmId,
    /// Byte length (2 MiB granular).
    pub len: u64,
    /// Backing chunks (each a buddy block of `ORDER_2M`).
    chunks: Vec<PhysAddr>,
    /// Attach count.
    refs: u32,
}

impl ShmSegment {
    /// Physical address of byte `offset` within the segment.
    pub fn phys_at(&self, offset: u64) -> Option<PhysAddr> {
        if offset >= self.len {
            return None;
        }
        let chunk = (offset / PAGE_SIZE_2M) as usize;
        Some(self.chunks[chunk] + offset % PAGE_SIZE_2M)
    }

    /// Current attach count.
    pub fn refs(&self) -> u32 {
        self.refs
    }
}

/// Segment registry (one per LWK instance).
#[derive(Debug, Default)]
pub struct ShmRegistry {
    segments: HashMap<ShmId, ShmSegment>,
    next_id: u64,
}

impl ShmRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        ShmRegistry::default()
    }

    /// Create a segment of at least `len` bytes (rounded up to 2 MiB),
    /// eagerly backed from the buddy allocator.
    pub fn create(&mut self, alloc: &mut FrameAllocator, len: u64) -> Result<ShmId, Errno> {
        if len == 0 {
            return Err(Errno::EINVAL);
        }
        let len = len.div_ceil(PAGE_SIZE_2M) * PAGE_SIZE_2M;
        let n_chunks = (len / PAGE_SIZE_2M) as usize;
        let mut chunks = Vec::with_capacity(n_chunks);
        for _ in 0..n_chunks {
            match alloc.alloc(ORDER_2M) {
                Ok(p) => chunks.push(p),
                Err(_) => {
                    // Roll back partial allocation.
                    for p in chunks {
                        alloc.free(p).expect("just allocated");
                    }
                    return Err(Errno::ENOMEM);
                }
            }
        }
        self.next_id += 1;
        let id = ShmId(self.next_id);
        self.segments.insert(
            id,
            ShmSegment {
                id,
                len,
                chunks,
                refs: 0,
            },
        );
        Ok(id)
    }

    /// Map the segment into `aspace` with 2 MiB leaves; bumps the attach
    /// count. Returns the virtual base.
    pub fn attach(&mut self, id: ShmId, aspace: &mut AddressSpace) -> Result<VirtAddr, Errno> {
        let seg = self.segments.get_mut(&id).ok_or(Errno::ENOENT)?;
        let va = aspace
            .vm
            .mmap(seg.len, VmaKind::Anon { large_ok: true }, true, None)?;
        debug_assert!(va.raw() % PAGE_SIZE_2M == 0, "2MiB-eligible placement");
        for (i, &chunk) in seg.chunks.iter().enumerate() {
            aspace
                .pt
                .map_2m(va + i as u64 * PAGE_SIZE_2M, chunk, PteFlags::rw())
                .map_err(|_| Errno::EEXIST)?;
        }
        seg.refs += 1;
        Ok(va)
    }

    /// Unmap from one process; the segment itself persists until
    /// [`ShmRegistry::destroy`].
    pub fn detach(
        &mut self,
        id: ShmId,
        aspace: &mut AddressSpace,
        va: VirtAddr,
    ) -> Result<(), Errno> {
        let seg = self.segments.get_mut(&id).ok_or(Errno::ENOENT)?;
        // Tear down leaves + the VMA (with TLB shootdown), but do NOT
        // free frames (shared).
        for i in 0..seg.chunks.len() as u64 {
            aspace.unmap_page(va + i * PAGE_SIZE_2M);
        }
        aspace.vm.munmap(va, seg.len)?;
        seg.refs = seg.refs.saturating_sub(1);
        Ok(())
    }

    /// Destroy a segment; fails while still attached anywhere. Returns
    /// the frames to the allocator.
    pub fn destroy(&mut self, id: ShmId, alloc: &mut FrameAllocator) -> Result<(), Errno> {
        let seg = self.segments.get(&id).ok_or(Errno::ENOENT)?;
        if seg.refs > 0 {
            return Err(Errno::EBUSY);
        }
        let seg = self.segments.remove(&id).expect("just found");
        for p in seg.chunks {
            alloc.free(p).expect("segment owned these frames");
        }
        Ok(())
    }

    /// Segment accessor (Linux-side readers resolve physical addresses
    /// through this — the cross-kernel hand-off).
    pub fn segment(&self, id: ShmId) -> Option<&ShmSegment> {
        self.segments.get(&id)
    }

    /// Live segment count.
    pub fn count(&self) -> usize {
        self.segments.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwmodel::addr::PAGE_SIZE;
    use hwmodel::memory::PhysMemory;

    fn setup() -> (ShmRegistry, FrameAllocator, AddressSpace, AddressSpace) {
        (
            ShmRegistry::new(),
            FrameAllocator::single(PhysAddr(1 << 30), 64 << 20, 4),
            AddressSpace::new(true),
            AddressSpace::new(true),
        )
    }

    #[test]
    fn two_processes_share_the_same_bytes() {
        let (mut shm, mut alloc, mut a, mut b) = setup();
        let mut mem = PhysMemory::new(4 << 30, 1);
        let id = shm.create(&mut alloc, 3 << 20).expect("fits");
        let va_a = shm.attach(id, &mut a).expect("attach a");
        let va_b = shm.attach(id, &mut b).expect("attach b");
        // Separate address spaces: the two placements may or may not
        // coincide numerically; what matters is the shared backing.
        // Process A writes through its translation...
        let pa = a.pt.translate(va_a + 0x12345).expect("mapped").phys;
        mem.write(pa, b"simulation step 42 output");
        // ...process B reads the identical bytes through its own.
        let pb = b.pt.translate(va_b + 0x12345).expect("mapped").phys;
        assert_eq!(pa, pb, "same physical byte");
        let mut buf = [0u8; 25];
        mem.read(pb, &mut buf);
        assert_eq!(&buf, b"simulation step 42 output");
        assert_eq!(shm.segment(id).expect("live").refs(), 2);
    }

    #[test]
    fn segment_is_2m_contiguous_per_chunk() {
        let (mut shm, mut alloc, mut a, _) = setup();
        let id = shm.create(&mut alloc, 5 << 20).expect("fits"); // rounds to 6 MiB
        let seg_len = shm.segment(id).expect("live").len;
        assert_eq!(seg_len, 6 << 20);
        let va = shm.attach(id, &mut a).expect("attach");
        // Every 2 MiB window maps as a single large leaf.
        for i in 0..3u64 {
            let t = a.pt.translate(va + i * PAGE_SIZE_2M).expect("mapped");
            assert_eq!(
                t.size,
                crate::mck::mem::pagetable::PageSize::Size2m
            );
        }
    }

    #[test]
    fn linux_side_reader_resolves_offsets() {
        let (mut shm, mut alloc, _, _) = setup();
        let id = shm.create(&mut alloc, 2 << 20).expect("fits");
        let seg = shm.segment(id).expect("live");
        let p0 = seg.phys_at(0).expect("in range");
        let p1 = seg.phys_at(PAGE_SIZE).expect("in range");
        assert_eq!(p1 - p0, PAGE_SIZE, "contiguous within a chunk");
        assert!(seg.phys_at(2 << 20).is_none(), "past the end");
    }

    #[test]
    fn destroy_requires_full_detach_and_frees_frames() {
        let (mut shm, mut alloc, mut a, _) = setup();
        let free0 = alloc.free_bytes();
        let id = shm.create(&mut alloc, 2 << 20).expect("fits");
        let va = shm.attach(id, &mut a).expect("attach");
        assert_eq!(shm.destroy(id, &mut alloc), Err(Errno::EBUSY));
        shm.detach(id, &mut a, va).expect("detach");
        assert!(a.pt.translate(va).is_none(), "leaves torn down");
        shm.destroy(id, &mut alloc).expect("no attachments left");
        assert_eq!(alloc.free_bytes(), free0, "frames returned");
        assert_eq!(shm.count(), 0);
    }

    #[test]
    fn create_rolls_back_on_exhaustion() {
        let (mut shm, mut alloc, _, _) = setup();
        let free0 = alloc.free_bytes();
        assert_eq!(shm.create(&mut alloc, 1 << 30), Err(Errno::ENOMEM));
        assert_eq!(alloc.free_bytes(), free0, "partial allocation rolled back");
    }

    #[test]
    fn zero_length_rejected() {
        let (mut shm, mut alloc, _, _) = setup();
        assert_eq!(shm.create(&mut alloc, 0), Err(Errno::EINVAL));
    }
}
