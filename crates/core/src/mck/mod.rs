//! The McKernel lightweight kernel.
//!
//! A from-scratch LWK (Sec. II): own memory management, processes and
//! multi-threading under a cooperative tick-less round-robin scheduler,
//! signaling, inter-process mappings and perf counters — everything else
//! is delegated to Linux through IKC.

pub mod domains;
pub mod mem;
pub mod perfctr;
pub mod process;
pub mod sched;
pub mod shm;
pub mod signal;
pub mod syscall;

use crate::abi::{Errno, Pid, Sysno, Tid};
use crate::costs::CostModel;
use hwmodel::addr::{PhysAddr, VirtAddr};
use hwmodel::cpu::{CoreId, NumaId};
use mem::phys::FrameAllocator;
use mem::vm::VmaKind;
use mem::FaultOutcome;
use perfctr::PerfCounters;
use process::{Process, Thread, ThreadState};
use sched::CoopScheduler;
use shm::{ShmId, ShmRegistry};
use signal::SignalState;
use simcore::{Cycles, Trace};
use std::collections::{BTreeSet, HashMap};
use syscall::{BypassConfig, Disposition, SyscallProfiler, SyscallRequest};

/// What the kernel wants the simulation to do after a syscall entry.
#[derive(Debug, PartialEq, Eq)]
pub enum SyscallOutcome {
    /// Completed locally.
    Done {
        /// Return value (Linux convention).
        ret: i64,
        /// Kernel time consumed.
        cost: Cycles,
    },
    /// Completed locally and the proxy's pseudo-mapping must be invalidated
    /// over these ranges (munmap synchronization, Sec. III-A).
    DoneInvalidate {
        /// Return value.
        ret: i64,
        /// Kernel time consumed.
        cost: Cycles,
        /// Ranges to shoot down in the proxy pseudo mapping.
        ranges: Vec<(VirtAddr, u64)>,
    },
    /// Must be offloaded: the calling thread blocks until the reply.
    Offload {
        /// Marshalled request for the IKC channel.
        req: SyscallRequest,
        /// Marshal + enqueue cost before the thread blocks.
        cost: Cycles,
    },
    /// Voluntary yield.
    Yield {
        /// Kernel time consumed.
        cost: Cycles,
    },
    /// Sleep for a duration.
    Sleep {
        /// Requested sleep time.
        dur: Cycles,
        /// Kernel time consumed.
        cost: Cycles,
    },
    /// Process exit.
    Exit {
        /// Exit code.
        code: i32,
    },
}

/// The LWK instance for one node.
#[derive(Debug)]
pub struct McKernel {
    /// Cost table.
    pub costs: CostModel,
    cores: Vec<CoreId>,
    /// Cores handed back to Linux mid-run (elastic shrink). They keep
    /// their slot in `cores` so partition-relative CPU indices stay
    /// stable for the TLB sets and frame caches; they just stop
    /// scheduling until `online_core` brings them back.
    offline: BTreeSet<CoreId>,
    /// Physical frame engine over the IHK-reserved range: per-NUMA buddy
    /// arenas fronted by per-CPU frame caches.
    pub alloc: FrameAllocator,
    /// Cooperative scheduler.
    pub sched: CoopScheduler,
    procs: HashMap<Pid, Process>,
    threads: HashMap<Tid, Thread>,
    signals: HashMap<Pid, SignalState>,
    perf: HashMap<Tid, PerfCounters>,
    next_pid: u32,
    next_tid: u32,
    next_seq: u64,
    shm: ShmRegistry,
    /// Mechanism counters (offloads, faults, ...).
    pub trace: Trace,
    /// Per-process syscall heat profiler (drives the promoted tier).
    pub prof: SyscallProfiler,
    /// Offload-bypass policy (off by default: figures stay identical).
    pub bypass: BypassConfig,
    /// MPK-style protection-domain model guarding the IKC ring,
    /// delegator slabs, fd rings, and time page (disabled by default).
    pub domains: domains::DomainModel,
    /// vDSO-style shared time page: the nanosecond value Linux last
    /// published toward the LWK (None until the first publish). The
    /// promoted clock fast path reads this; cold it falls back to
    /// offload, where Linux answers from the same page.
    time_page: Option<u64>,
}

impl McKernel {
    /// Boot the LWK over `cores` and one reserved physical range (the
    /// default single-domain partition: all CPUs home to domain 0).
    pub fn boot(cores: Vec<CoreId>, mem_base: PhysAddr, mem_len: u64, costs: CostModel) -> Self {
        let ncpus = cores.len();
        McKernel::boot_numa(
            cores,
            &[(mem_base, mem_len, NumaId(0))],
            &vec![NumaId(0); ncpus],
            costs,
        )
    }

    /// Boot the LWK with an explicit NUMA layout: one buddy arena per
    /// reserved extent, and `cpu_domain[i]` naming core `i`'s home
    /// domain (first-touch placement and deterministic spill follow).
    pub fn boot_numa(
        cores: Vec<CoreId>,
        extents: &[(PhysAddr, u64, NumaId)],
        cpu_domain: &[NumaId],
        costs: CostModel,
    ) -> Self {
        assert!(!cores.is_empty(), "LWK needs at least one core");
        assert_eq!(cores.len(), cpu_domain.len(), "one home domain per core");
        let sched = CoopScheduler::new(&cores);
        McKernel {
            costs,
            alloc: FrameAllocator::new(extents, cpu_domain),
            sched,
            cores,
            offline: BTreeSet::new(),
            procs: HashMap::new(),
            threads: HashMap::new(),
            signals: HashMap::new(),
            perf: HashMap::new(),
            next_pid: 1000,
            next_tid: 1000,
            next_seq: 1,
            shm: ShmRegistry::new(),
            trace: Trace::new(),
            prof: SyscallProfiler::new(),
            bypass: BypassConfig::default(),
            domains: domains::DomainModel::disabled(),
            time_page: None,
        }
    }

    /// Cores in the LWK partition.
    pub fn cores(&self) -> &[CoreId] {
        &self.cores
    }

    /// Cores currently schedulable (boot set minus offlined cores), in
    /// boot order.
    pub fn online_cores(&self) -> Vec<CoreId> {
        self.cores
            .iter()
            .copied()
            .filter(|c| !self.offline.contains(c))
            .collect()
    }

    /// Cores offlined by an elastic shrink, ascending.
    pub fn offline_cores(&self) -> Vec<CoreId> {
        self.offline.iter().copied().collect()
    }

    /// Whether `core` is in the partition and schedulable.
    pub fn core_online(&self, core: CoreId) -> bool {
        self.cores.contains(&core) && !self.offline.contains(&core)
    }

    /// Partition-relative CPU index of `core` (index into the boot core
    /// list — stable across offline/online cycles).
    pub fn cpu_index_of(&self, core: CoreId) -> Option<usize> {
        self.cores.iter().position(|&c| c == core)
    }

    /// Threads currently bound to `core`, ascending by tid.
    pub fn threads_on(&self, core: CoreId) -> Vec<Tid> {
        let mut tids: Vec<Tid> = self
            .threads
            .values()
            .filter(|t| t.core == core)
            .map(|t| t.tid)
            .collect();
        tids.sort_unstable();
        tids
    }

    /// Software-TLB entries still resident for `cpu` across every
    /// process (the reclaim audit after a core release).
    pub fn tlb_resident_on(&self, cpu: usize) -> usize {
        self.procs
            .values()
            .map(|p| p.aspace.tlb.resident_on(cpu))
            .sum()
    }

    /// Take `core` out of service for an elastic shrink. The caller must
    /// first migrate every thread off the core; this then removes the
    /// run queue, shoots down the core's software TLBs in every address
    /// space, and drains its per-CPU frame cache back to the buddy
    /// arenas so the IHK release hands back a fully reclaimed core.
    pub fn offline_core(&mut self, core: CoreId) -> Result<(), &'static str> {
        if !self.cores.contains(&core) {
            return Err("core not in LWK partition");
        }
        if self.offline.contains(&core) {
            return Err("core already offline");
        }
        if self.cores.len() - self.offline.len() <= 1 {
            return Err("cannot offline the last LWK core");
        }
        if self.threads.values().any(|t| t.core == core) {
            return Err("threads still bound to the core");
        }
        self.sched.remove_core(core)?;
        let cpu = self.cpu_index_of(core).expect("core index");
        for p in self.procs.values_mut() {
            p.aspace.tlb.flush_cpu(cpu);
        }
        self.alloc.drain_cpu(cpu);
        self.offline.insert(core);
        Ok(())
    }

    /// Bring an offlined core back into service (elastic expand).
    pub fn online_core(&mut self, core: CoreId) -> Result<(), &'static str> {
        if !self.cores.contains(&core) {
            return Err("core not in LWK partition");
        }
        if !self.offline.remove(&core) {
            return Err("core is not offline");
        }
        self.sched.add_core(core);
        Ok(())
    }

    /// Move a runnable (or blocked) thread to another online core.
    /// Refuses for the running thread on its core and for futex-parked
    /// threads, whose wake is bound to the parking core.
    pub fn migrate_thread(&mut self, tid: Tid, to: CoreId) -> Result<(), &'static str> {
        if !self.core_online(to) {
            return Err("destination core is not online");
        }
        let from = match self.threads.get(&tid) {
            Some(t) => t.core,
            None => return Err("no such thread"),
        };
        if from == to {
            return Ok(());
        }
        if self.sched.current(from) == Some(tid) {
            return Err("thread is running on its core");
        }
        if self.sched.is_futex_parked(tid) {
            return Err("thread is parked on a futex");
        }
        let was_queued = self.sched.dequeue(from, tid);
        self.threads.get_mut(&tid).expect("thread").core = to;
        if was_queued {
            self.sched.enqueue(to, tid);
        }
        Ok(())
    }

    /// Create a process (paired with a Linux proxy).
    pub fn create_process(&mut self, proxy_pid: Option<Pid>) -> Pid {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        let mut p = Process::new(pid);
        p.proxy_pid = proxy_pid;
        self.procs.insert(pid, p);
        self.signals.insert(pid, SignalState::new());
        pid
    }

    /// Create a thread bound to `core` and make it runnable.
    pub fn spawn_thread(&mut self, pid: Pid, core: CoreId) -> Tid {
        assert!(self.core_online(core), "{core} not online in LWK partition");
        let tid = Tid(self.next_tid);
        self.next_tid += 1;
        self.threads.insert(
            tid,
            Thread {
                tid,
                pid,
                state: ThreadState::Ready,
                core,
            },
        );
        self.procs
            .get_mut(&pid)
            .expect("spawn_thread on unknown pid")
            .threads
            .push(tid);
        self.sched.enqueue(core, tid);
        self.perf.insert(tid, PerfCounters::default());
        tid
    }

    /// Process accessor.
    pub fn process(&self, pid: Pid) -> Option<&Process> {
        self.procs.get(&pid)
    }

    /// Mutable process accessor.
    pub fn process_mut(&mut self, pid: Pid) -> Option<&mut Process> {
        self.procs.get_mut(&pid)
    }

    /// Thread accessor.
    pub fn thread(&self, tid: Tid) -> Option<&Thread> {
        self.threads.get(&tid)
    }

    /// Mutable thread accessor.
    pub fn thread_mut(&mut self, tid: Tid) -> Option<&mut Thread> {
        self.threads.get_mut(&tid)
    }

    /// Per-thread perf counters.
    pub fn perf_counters(&self, tid: Tid) -> Option<&PerfCounters> {
        self.perf.get(&tid)
    }

    /// Mutable perf counters.
    pub fn perf_counters_mut(&mut self, tid: Tid) -> Option<&mut PerfCounters> {
        self.perf.get_mut(&tid)
    }

    /// Signal state of a process.
    pub fn signals_mut(&mut self, pid: Pid) -> Option<&mut SignalState> {
        self.signals.get_mut(&pid)
    }

    /// System call entry. `now` provides the clock for `gettimeofday`.
    ///
    /// Local calls complete synchronously; delegated calls return
    /// [`SyscallOutcome::Offload`] and the caller blocks the thread until
    /// the IKC reply.
    pub fn handle_syscall(
        &mut self,
        pid: Pid,
        tid: Tid,
        sysno: Sysno,
        args: [u64; 6],
        now: Cycles,
    ) -> SyscallOutcome {
        let base = self.costs.lwk_syscall;
        let disposition = match sysno {
            Sysno::Mmap => syscall::mmap_disposition(args[4]),
            s => syscall::disposition(s),
        };
        if disposition == Disposition::Delegate {
            self.trace.bump("mck.syscall.offloaded");
            // Heat bookkeeping only — no modeled cycles, so figure
            // output is untouched whether or not bypass is armed.
            self.prof.record_call(pid, sysno);
            let req = SyscallRequest {
                seq: self.next_seq,
                pid: pid.0,
                tid: tid.0,
                sysno: sysno.nr(),
                args,
            };
            self.next_seq += 1;
            return SyscallOutcome::Offload {
                req,
                cost: base + self.costs.ikc_send,
            };
        }
        self.trace.bump("mck.syscall.local");
        match sysno {
            Sysno::Getpid => SyscallOutcome::Done {
                ret: pid.0 as i64,
                cost: base,
            },
            Sysno::Gettimeofday => SyscallOutcome::Done {
                ret: now.as_us_f64() as i64,
                cost: base,
            },
            Sysno::Mmap => {
                // Anonymous mmap handled locally, 2 MiB eligible.
                let len = args[1];
                let proc = self.procs.get_mut(&pid).expect("mmap on unknown pid");
                match proc
                    .aspace
                    .vm
                    .mmap(len, VmaKind::Anon { large_ok: true }, true, None)
                {
                    Ok(va) => SyscallOutcome::Done {
                        ret: va.raw() as i64,
                        cost: base,
                    },
                    Err(e) => SyscallOutcome::Done {
                        ret: crate::abi::encode_result(Err(e)),
                        cost: base,
                    },
                }
            }
            Sysno::Munmap => {
                let (start, len) = (VirtAddr(args[0]), args[1]);
                let proc = self.procs.get_mut(&pid).expect("munmap on unknown pid");
                match mem::unmap_range(&mut proc.aspace, &mut self.alloc, &self.costs, start, len)
                {
                    Ok(stats) => {
                        let ranges = stats
                            .removed
                            .iter()
                            .map(|v| (v.start, v.len()))
                            .collect();
                        SyscallOutcome::DoneInvalidate {
                            ret: 0,
                            cost: base + stats.cost,
                            ranges,
                        }
                    }
                    Err(e) => SyscallOutcome::Done {
                        ret: crate::abi::encode_result(Err(e)),
                        cost: base,
                    },
                }
            }
            Sysno::Brk | Sysno::Mprotect | Sysno::Madvise => SyscallOutcome::Done {
                ret: 0,
                cost: base,
            },
            Sysno::SchedYield => SyscallOutcome::Yield { cost: base },
            Sysno::Nanosleep => SyscallOutcome::Sleep {
                dur: Cycles::from_ns(args[0]),
                cost: base,
            },
            Sysno::Exit | Sysno::ExitGroup => SyscallOutcome::Exit {
                code: args[0] as i32,
            },
            Sysno::Clone => {
                let core = CoreId(args[0] as u16);
                if !self.core_online(core) {
                    return SyscallOutcome::Done {
                        ret: crate::abi::encode_result(Err(Errno::EINVAL)),
                        cost: base,
                    };
                }
                let tid = self.spawn_thread(pid, core);
                SyscallOutcome::Done {
                    ret: tid.0 as i64,
                    cost: base * 4,
                }
            }
            Sysno::RtSigaction => {
                let signo = args[0] as u8;
                let action = match args[1] {
                    0 => signal::SigAction::Default,
                    1 => signal::SigAction::Ignore,
                    _ => signal::SigAction::Handler,
                };
                let sig = self.signals.get_mut(&pid).expect("signals for pid");
                let ret = match sig.set_action(signo, action) {
                    Ok(()) => 0,
                    Err(()) => crate::abi::encode_result(Err(Errno::EINVAL)),
                };
                SyscallOutcome::Done { ret, cost: base }
            }
            Sysno::RtSigprocmask => {
                let sig = self.signals.get_mut(&pid).expect("signals for pid");
                let signo = args[1] as u8;
                if args[0] == 0 {
                    sig.block(signo);
                } else {
                    sig.unblock(signo);
                }
                SyscallOutcome::Done { ret: 0, cost: base }
            }
            Sysno::Kill => {
                let target = Pid(args[0] as u32);
                let signo = args[1] as u8;
                match self.signals.get_mut(&target) {
                    Some(s) => {
                        s.send(signo);
                        SyscallOutcome::Done { ret: 0, cost: base }
                    }
                    None => SyscallOutcome::Done {
                        ret: crate::abi::encode_result(Err(Errno::ENOENT)),
                        cost: base,
                    },
                }
            }
            Sysno::SchedSetaffinity | Sysno::SchedGetaffinity => SyscallOutcome::Done {
                ret: 0,
                cost: base,
            },
            Sysno::PerfEventOpen => SyscallOutcome::Done {
                ret: 100 + tid.0 as i64,
                cost: base,
            },
            // Remaining local syscalls are trivially acknowledged.
            _ => SyscallOutcome::Done { ret: 0, cost: base },
        }
    }

    /// Page fault entry on CPU 0 (callers without core context).
    pub fn page_fault(&mut self, pid: Pid, va: VirtAddr) -> FaultOutcome {
        self.page_fault_on(pid, 0, va)
    }

    /// Page fault entry for `cpu` (partition-relative core index; drives
    /// first-touch NUMA placement and the per-CPU frame cache). Split
    /// borrow over process map and allocator.
    pub fn page_fault_on(&mut self, pid: Pid, cpu: usize, va: VirtAddr) -> FaultOutcome {
        self.trace.bump("mck.fault");
        let proc = self.procs.get_mut(&pid).expect("fault on unknown pid");
        let out = mem::handle_fault(&mut proc.aspace, &mut self.alloc, &self.costs, cpu, va);
        if let FaultOutcome::Mapped { size, pages, .. } = &out {
            match (pages, size) {
                (0, _) => self.trace.bump("mck.fault.spurious"),
                (_, mem::pagetable::PageSize::Size2m) => self.trace.bump("mck.fault.2m"),
                (n, mem::pagetable::PageSize::Size4k) => {
                    self.trace.bump("mck.fault.4k");
                    self.trace.add("mck.fault.around", n - 1);
                }
            }
        }
        out
    }

    /// Mirror the frame engine's mechanism counters (PCP hit/refill/
    /// drain, local/spill placement) into the kernel trace as deltas.
    pub fn publish_mem_stats(&mut self) {
        self.alloc.publish_stats(&mut self.trace);
    }

    /// Mirror the syscall profiler into the kernel trace as deltas
    /// (`publish_mem_stats` pattern): total delegated calls observed and
    /// the number of (pid, sysno) entries with a live cost EWMA.
    pub fn publish_prof_stats(&mut self) {
        let (calls, hot) = self.prof.take_publish_delta();
        self.trace.add("mck.prof.calls", calls);
        self.trace.add("mck.prof.hot", hot);
    }

    /// Linux published a fresh time value to the vDSO-style shared page.
    pub fn publish_time_page(&mut self, ns: u64) {
        self.time_page = Some(ns);
    }

    /// The shared time page's current value (None until first publish).
    pub fn time_page(&self) -> Option<u64> {
        self.time_page
    }

    /// The effective disposition of one syscall under the current
    /// bypass policy and heat state. `mmap` keeps its backing split.
    pub fn effective_disposition(&self, pid: Pid, sysno: Sysno, args: &[u64; 6]) -> Disposition {
        if sysno == Sysno::Mmap {
            return syscall::mmap_disposition(args[4]);
        }
        self.prof.disposition(&self.bypass, pid, sysno)
    }

    /// Install the LWK-side VMA for a device mapping after Linux completed
    /// its half of the Fig. 4 flow (steps 4-5: "Linux replies to McKernel
    /// so that it can also allocate its own virtual memory range").
    pub fn complete_device_mmap(
        &mut self,
        pid: Pid,
        len: u64,
        dev_name: &str,
        file_off: u64,
        tracking: u64,
    ) -> Result<VirtAddr, Errno> {
        let proc = self.procs.get_mut(&pid).ok_or(Errno::ENOENT)?;
        proc.aspace.vm.mmap(
            len,
            VmaKind::Device {
                dev_name: dev_name.to_string(),
                file_off,
                tracking,
            },
            true,
            None,
        )
    }

    /// Unmap `len` bytes at `start` through the TLB-coherent teardown
    /// path — identical to the `munmap` syscall arm but callable from
    /// kernel-internal flows (zero-copy devmap teardown). Every leaf
    /// removal routes through `AddressSpace::unmap_page`, so the
    /// software-TLB shootdown is structural, not optional.
    pub fn munmap_range(
        &mut self,
        pid: Pid,
        start: VirtAddr,
        len: u64,
    ) -> Result<mem::UnmapStats, Errno> {
        let proc = self.procs.get_mut(&pid).ok_or(Errno::ENOENT)?;
        mem::unmap_range(&mut proc.aspace, &mut self.alloc, &self.costs, start, len)
    }

    /// Create an inter-process shared segment (Sec. II: "it also allows
    /// inter-process memory mappings") and attach it to `pid`.
    pub fn shm_create_attach(
        &mut self,
        pid: Pid,
        len: u64,
    ) -> Result<(ShmId, VirtAddr), Errno> {
        let id = self.shm.create(&mut self.alloc, len)?;
        let proc = self.procs.get_mut(&pid).ok_or(Errno::ENOENT)?;
        let va = self.shm.attach(id, &mut proc.aspace)?;
        self.trace.bump("mck.shm.created");
        Ok((id, va))
    }

    /// Attach an existing segment to another process.
    pub fn shm_attach(&mut self, pid: Pid, id: ShmId) -> Result<VirtAddr, Errno> {
        let proc = self.procs.get_mut(&pid).ok_or(Errno::ENOENT)?;
        self.shm.attach(id, &mut proc.aspace)
    }

    /// Detach a segment from a process.
    pub fn shm_detach(&mut self, pid: Pid, id: ShmId, va: VirtAddr) -> Result<(), Errno> {
        let proc = self.procs.get_mut(&pid).ok_or(Errno::ENOENT)?;
        self.shm.detach(id, &mut proc.aspace, va)
    }

    /// Destroy a fully detached segment.
    pub fn shm_destroy(&mut self, id: ShmId) -> Result<(), Errno> {
        self.shm.destroy(id, &mut self.alloc)
    }

    /// Segment accessor — a *Linux-side* consumer resolves physical
    /// addresses through this (the simulation → in-situ hand-off path).
    pub fn shm_segment(&self, id: ShmId) -> Option<&shm::ShmSegment> {
        self.shm.segment(id)
    }

    /// Tear down a process: free every mapped frame, drop threads.
    /// "It is our policy to have McKernel reinitialized between subsequent
    /// executions" (Sec. IV-B3) — experiments call this between runs and
    /// assert the allocator returns to a pristine state.
    pub fn reap_process(&mut self, pid: Pid) {
        let Some(mut proc) = self.procs.remove(&pid) else {
            return;
        };
        let ranges: Vec<(VirtAddr, u64)> = proc
            .aspace
            .vm
            .iter()
            .map(|v| (v.start, v.len()))
            .collect();
        for (start, len) in ranges {
            let _ = mem::unmap_range(&mut proc.aspace, &mut self.alloc, &self.costs, start, len);
        }
        for tid in &proc.threads {
            self.threads.remove(tid);
            self.perf.remove(tid);
        }
        // No stranded futex waiters or stale heat for the reaped job.
        let dead = proc.threads;
        self.sched.futex_reap(|t| dead.contains(&t));
        self.prof.forget(pid);
        self.signals.remove(&pid);
    }

    /// SIGKILL-equivalent delivery: send SIGKILL, confirm it delivers as
    /// a termination, and reap the process. Used when the proxy serving
    /// `pid` dies — without Linux there is nobody left to execute the
    /// application's offloads, so graceful degradation is to terminate
    /// it rather than leave a thread hung on a reply that never comes.
    /// Returns false if the process does not exist.
    pub fn kill_process(&mut self, pid: Pid) -> bool {
        let Some(sigs) = self.signals_mut(pid) else {
            return false;
        };
        sigs.send(signal::sig::KILL);
        let delivered = sigs.deliver_next();
        debug_assert!(
            matches!(delivered, Some((signal::sig::KILL, signal::Delivery::Terminate))),
            "SIGKILL must terminate: {delivered:?}"
        );
        self.trace.bump("mck.proc.killed");
        self.reap_process(pid);
        true
    }

    /// Whether the kernel is back to a pristine state (no processes, all
    /// physical memory free, no parked futex waiters, no stale heat).
    pub fn is_pristine(&self) -> bool {
        self.procs.is_empty()
            && self.alloc.free_bytes() == self.alloc.len_bytes()
            && !self.sched.has_futex_waiters()
            && self.prof.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boot() -> McKernel {
        McKernel::boot(
            (10..19).map(CoreId).collect(),
            PhysAddr(1 << 30),
            64 << 20,
            CostModel::default(),
        )
    }

    #[test]
    fn local_getpid() {
        let mut k = boot();
        let pid = k.create_process(None);
        let tid = k.spawn_thread(pid, CoreId(10));
        match k.handle_syscall(pid, tid, Sysno::Getpid, [0; 6], Cycles::ZERO) {
            SyscallOutcome::Done { ret, cost } => {
                assert_eq!(ret, pid.0 as i64);
                assert!(cost > Cycles::ZERO);
            }
            o => panic!("{o:?}"),
        }
        assert_eq!(k.trace.get("mck.syscall.local"), 1);
    }

    #[test]
    fn write_offloads() {
        let mut k = boot();
        let pid = k.create_process(None);
        let tid = k.spawn_thread(pid, CoreId(10));
        match k.handle_syscall(pid, tid, Sysno::Write, [3, 0x1000, 64, 0, 0, 0], Cycles::ZERO) {
            SyscallOutcome::Offload { req, .. } => {
                assert_eq!(req.sysno, Sysno::Write.nr());
                assert_eq!(req.pid, pid.0);
                assert_eq!(req.args[2], 64);
            }
            o => panic!("{o:?}"),
        }
        assert_eq!(k.trace.get("mck.syscall.offloaded"), 1);
    }

    #[test]
    fn anon_mmap_local_but_device_mmap_offloads() {
        let mut k = boot();
        let pid = k.create_process(None);
        let tid = k.spawn_thread(pid, CoreId(10));
        let anon = k.handle_syscall(
            pid,
            tid,
            Sysno::Mmap,
            [0, 1 << 20, 3, 0x22, u64::MAX, 0],
            Cycles::ZERO,
        );
        assert!(matches!(anon, SyscallOutcome::Done { ret, .. } if ret > 0));
        let dev = k.handle_syscall(
            pid,
            tid,
            Sysno::Mmap,
            [0, 1 << 20, 3, 0x1, 5, 0],
            Cycles::ZERO,
        );
        assert!(matches!(dev, SyscallOutcome::Offload { .. }));
    }

    #[test]
    fn mmap_fault_munmap_cycle_reports_invalidation() {
        let mut k = boot();
        let pid = k.create_process(None);
        let tid = k.spawn_thread(pid, CoreId(10));
        let va = match k.handle_syscall(
            pid,
            tid,
            Sysno::Mmap,
            [0, 4 << 20, 3, 0x22, u64::MAX, 0],
            Cycles::ZERO,
        ) {
            SyscallOutcome::Done { ret, .. } => VirtAddr(ret as u64),
            o => panic!("{o:?}"),
        };
        assert!(matches!(
            k.page_fault(pid, va),
            FaultOutcome::Mapped { .. }
        ));
        match k.handle_syscall(pid, tid, Sysno::Munmap, [va.raw(), 4 << 20, 0, 0, 0, 0], Cycles::ZERO)
        {
            SyscallOutcome::DoneInvalidate { ret, ranges, .. } => {
                assert_eq!(ret, 0);
                assert_eq!(ranges, vec![(va, 4 << 20)]);
            }
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn clone_spawns_bound_thread() {
        let mut k = boot();
        let pid = k.create_process(None);
        let tid = k.spawn_thread(pid, CoreId(10));
        match k.handle_syscall(pid, tid, Sysno::Clone, [11, 0, 0, 0, 0, 0], Cycles::ZERO) {
            SyscallOutcome::Done { ret, .. } => {
                let new_tid = Tid(ret as u32);
                assert_eq!(k.thread(new_tid).unwrap().core, CoreId(11));
                assert_eq!(k.process(pid).unwrap().threads.len(), 2);
            }
            o => panic!("{o:?}"),
        }
        // Core outside the partition is rejected.
        match k.handle_syscall(pid, tid, Sysno::Clone, [0, 0, 0, 0, 0, 0], Cycles::ZERO) {
            SyscallOutcome::Done { ret, .. } => assert!(ret < 0),
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn sleep_yield_exit_outcomes() {
        let mut k = boot();
        let pid = k.create_process(None);
        let tid = k.spawn_thread(pid, CoreId(10));
        assert!(matches!(
            k.handle_syscall(pid, tid, Sysno::SchedYield, [0; 6], Cycles::ZERO),
            SyscallOutcome::Yield { .. }
        ));
        match k.handle_syscall(pid, tid, Sysno::Nanosleep, [1_000_000, 0, 0, 0, 0, 0], Cycles::ZERO)
        {
            SyscallOutcome::Sleep { dur, .. } => assert_eq!(dur, Cycles::from_ms(1)),
            o => panic!("{o:?}"),
        }
        assert_eq!(
            k.handle_syscall(pid, tid, Sysno::ExitGroup, [3, 0, 0, 0, 0, 0], Cycles::ZERO),
            SyscallOutcome::Exit { code: 3 }
        );
    }

    #[test]
    fn signal_syscalls_route_to_signal_state() {
        let mut k = boot();
        let pid = k.create_process(None);
        let tid = k.spawn_thread(pid, CoreId(10));
        k.handle_syscall(
            pid,
            tid,
            Sysno::RtSigaction,
            [signal::sig::USR1 as u64, 2, 0, 0, 0, 0],
            Cycles::ZERO,
        );
        k.handle_syscall(
            pid,
            tid,
            Sysno::Kill,
            [pid.0 as u64, signal::sig::USR1 as u64, 0, 0, 0, 0],
            Cycles::ZERO,
        );
        let (signo, d) = k.signals_mut(pid).unwrap().deliver_next().unwrap();
        assert_eq!(signo, signal::sig::USR1);
        assert_eq!(d, signal::Delivery::RunHandler);
        // Kill to a dead pid errors.
        match k.handle_syscall(pid, tid, Sysno::Kill, [9999, 15, 0, 0, 0, 0], Cycles::ZERO) {
            SyscallOutcome::Done { ret, .. } => assert!(ret < 0),
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn reap_restores_pristine_state() {
        let mut k = boot();
        let pid = k.create_process(None);
        let tid = k.spawn_thread(pid, CoreId(10));
        let va = match k.handle_syscall(
            pid,
            tid,
            Sysno::Mmap,
            [0, 8 << 20, 3, 0x22, u64::MAX, 0],
            Cycles::ZERO,
        ) {
            SyscallOutcome::Done { ret, .. } => VirtAddr(ret as u64),
            o => panic!("{o:?}"),
        };
        k.page_fault(pid, va);
        k.page_fault(pid, va + (2 << 20));
        assert!(!k.is_pristine());
        k.reap_process(pid);
        assert!(k.is_pristine(), "reinit policy requires clean state");
        assert!(k.thread(tid).is_none());
    }

    #[test]
    fn core_offline_migrates_flushes_and_restores() {
        let mut k = boot();
        let pid = k.create_process(None);
        let t0 = k.spawn_thread(pid, CoreId(18));
        let t1 = k.spawn_thread(pid, CoreId(18));
        // Touch memory from cpu 8 (core 18) so its TLB and frame cache
        // hold state the shrink must provably reclaim.
        let va = match k.handle_syscall(
            pid,
            t0,
            Sysno::Mmap,
            [0, 4 << 20, 3, 0x22, u64::MAX, 0],
            Cycles::ZERO,
        ) {
            SyscallOutcome::Done { ret, .. } => VirtAddr(ret as u64),
            o => panic!("{o:?}"),
        };
        k.page_fault_on(pid, 8, va);
        k.process_mut(pid).unwrap().aspace.translate_on(8, va);
        assert!(k.tlb_resident_on(8) > 0, "translate must warm the TLB");

        // Threads still bound: refuse, then migrate and retry.
        assert!(k.offline_core(CoreId(18)).is_err());
        k.migrate_thread(t0, CoreId(10)).unwrap();
        k.migrate_thread(t1, CoreId(11)).unwrap();
        k.offline_core(CoreId(18)).unwrap();

        assert!(!k.core_online(CoreId(18)));
        assert_eq!(k.online_cores().len(), 8);
        assert_eq!(k.tlb_resident_on(8), 0, "shootdown on release");
        assert_eq!(k.alloc.pcp_cached_on(8), 0, "frame cache drained");
        assert!(!k.sched.has_core(CoreId(18)));
        assert!(k.offline_core(CoreId(18)).is_err(), "double offline");

        // Spawning on the offline core is a partition violation.
        match k.handle_syscall(
            pid,
            t0,
            Sysno::Clone,
            [18, 0, 0, 0, 0, 0],
            Cycles::ZERO,
        ) {
            SyscallOutcome::Done { ret, .. } => assert!(ret < 0),
            o => panic!("{o:?}"),
        }

        // Expand brings it back, schedulable again.
        k.online_core(CoreId(18)).unwrap();
        assert!(k.core_online(CoreId(18)));
        k.migrate_thread(t1, CoreId(18)).unwrap();
        assert_eq!(k.threads_on(CoreId(18)), vec![t1]);
        assert_eq!(k.sched.queued(CoreId(18)), 1);
    }

    #[test]
    fn cannot_offline_last_core() {
        let mut k = McKernel::boot(
            vec![CoreId(10)],
            PhysAddr(1 << 30),
            64 << 20,
            CostModel::default(),
        );
        assert!(k.offline_core(CoreId(10)).is_err());
    }

    #[test]
    fn device_mmap_completion_installs_vma() {
        let mut k = boot();
        let pid = k.create_process(None);
        let va = k
            .complete_device_mmap(pid, 0x3000, "infiniband/uverbs0", 0x1000, 7)
            .unwrap();
        match k.page_fault(pid, va + 0x1000) {
            FaultOutcome::NeedsDeviceResolve {
                file_off, tracking, ..
            } => {
                assert_eq!(file_off, 0x2000);
                assert_eq!(tracking, 7);
            }
            o => panic!("{o:?}"),
        }
    }
}
