//! Hardware performance counter interface.
//!
//! McKernel "provides interfaces to hardware performance counters"
//! (Sec. II); the paper uses them to attribute its mini-app wins to ~1%
//! fewer TLB misses and ~3% fewer LLC misses (Sec. IV-B3). Counters here
//! are fed by the interference model's miss indices during compute quanta,
//! so the same analysis can be replayed on the model.

use hwmodel::interference::{InterferenceModel, MemProfile, PageBacking, Pollution};
use simcore::Cycles;

/// Per-thread counter block (instructions are approximated as cycles at a
/// fixed IPC, which is sufficient for miss-*rate* comparisons).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PerfCounters {
    /// Retired cycle count of accounted compute.
    pub cycles: u64,
    /// Modeled TLB miss count.
    pub tlb_misses: u64,
    /// Modeled LLC miss count.
    pub llc_misses: u64,
}

/// Scale from miss index (fraction of time) to "events": one event per
/// ~200 lost cycles, roughly a miss penalty.
const CYCLES_PER_MISS: f64 = 200.0;

impl PerfCounters {
    /// Account one compute quantum executed under the given memory regime.
    pub fn account_compute(
        &mut self,
        quantum: Cycles,
        model: &InterferenceModel,
        prof: MemProfile,
        backing: PageBacking,
        pol: Pollution,
    ) {
        let q = quantum.raw();
        self.cycles += q;
        self.tlb_misses +=
            (q as f64 * model.tlb_miss_index(prof, backing) / CYCLES_PER_MISS) as u64;
        self.llc_misses +=
            (q as f64 * model.llc_miss_index(prof, backing, pol) / CYCLES_PER_MISS) as u64;
    }

    /// TLB misses per kilocycle.
    pub fn tlb_rate(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.tlb_misses as f64 / self.cycles as f64 * 1000.0
        }
    }

    /// LLC misses per kilocycle.
    pub fn llc_rate(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.llc_misses as f64 / self.cycles as f64 * 1000.0
        }
    }

    /// Merge counters (process-level aggregation).
    pub fn merge(&mut self, other: &PerfCounters) {
        self.cycles += other.cycles;
        self.tlb_misses += other.tlb_misses;
        self.llc_misses += other.llc_misses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mckernel_regime_shows_fewer_misses() {
        let model = InterferenceModel::default();
        let prof = MemProfile::memory_bound();
        let q = Cycles::from_ms(10);
        let mut linux = PerfCounters::default();
        let mut mck = PerfCounters::default();
        linux.account_compute(q, &model, prof, PageBacking::Small4k, Pollution::NONE);
        mck.account_compute(
            q,
            &model,
            prof,
            PageBacking::Large2mContiguous,
            Pollution::NONE,
        );
        assert!(mck.tlb_misses < linux.tlb_misses);
        assert!(mck.llc_misses < linux.llc_misses);
        assert_eq!(mck.cycles, linux.cycles);
        // Rates follow counts.
        assert!(mck.tlb_rate() < linux.tlb_rate());
    }

    #[test]
    fn empty_counters_rate_zero() {
        let c = PerfCounters::default();
        assert_eq!(c.tlb_rate(), 0.0);
        assert_eq!(c.llc_rate(), 0.0);
    }

    #[test]
    fn merge_sums() {
        let model = InterferenceModel::default();
        let prof = MemProfile::memory_bound();
        let mut a = PerfCounters::default();
        a.account_compute(
            Cycles::from_ms(1),
            &model,
            prof,
            PageBacking::Small4k,
            Pollution::NONE,
        );
        let b = a;
        a.merge(&b);
        assert_eq!(a.cycles, 2 * b.cycles);
        assert_eq!(a.tlb_misses, 2 * b.tlb_misses);
    }
}
