//! The system-call table: what McKernel implements locally and what it
//! delegates to Linux.
//!
//! Sec. II: McKernel "implements only a small set of performance sensitive
//! system calls and the rest are delegated to Linux. Specifically, McKernel
//! has its own memory management, it supports processes and multi-threading
//! ... and it implements signaling. It also allows inter-process memory
//! mappings and it provides interfaces to hardware performance counters."
//! Everything filesystem/device shaped goes to the proxy.

use crate::abi::Sysno;
use simcore::Cycles;

/// Where a system call executes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Disposition {
    /// Handled entirely inside McKernel (performance-sensitive set).
    Lwk,
    /// Marshalled over IKC and executed by the proxy process on Linux.
    Delegate,
}

/// Static disposition of a syscall. `mmap` is special-cased: anonymous
/// mappings are local, file/device-backed mappings take the Fig. 4
/// delegation path — use [`mmap_disposition`] for those.
pub fn disposition(s: Sysno) -> Disposition {
    use Sysno::*;
    match s {
        // Memory management — McKernel's own.
        Mmap | Munmap | Brk | Mprotect | Madvise => Disposition::Lwk,
        // Process / thread / scheduling.
        Clone | SchedYield | Getpid | Exit | ExitGroup | SchedSetaffinity
        | SchedGetaffinity | Nanosleep => Disposition::Lwk,
        // Signaling is implemented in the LWK.
        RtSigaction | RtSigprocmask | Kill => Disposition::Lwk,
        // Performance counters.
        PerfEventOpen => Disposition::Lwk,
        // Cheap local reads.
        Gettimeofday => Disposition::Lwk,
        // Everything touching files, devices, or Linux state.
        Read | Write | Open | Openat | Close | Stat | Ioctl | Fcntl | Getcwd | Uname
        | GetRandom => Disposition::Delegate,
    }
}

/// `mmap` disposition by backing: `fd == -1` (anonymous) stays local;
/// file/device mmap is forwarded to Linux (Fig. 4 step 2).
pub fn mmap_disposition(fd_arg: u64) -> Disposition {
    if fd_arg == u64::MAX {
        Disposition::Lwk
    } else {
        Disposition::Delegate
    }
}

/// A marshalled system call crossing the IKC channel.
///
/// "During system call delegation McKernel marshalls the system call number
/// along with its arguments and sends a message to Linux via a dedicated
/// IKC channel" (Sec. III-A). Pointer arguments are *not* chased at marshal
/// time — the unified address space lets the proxy dereference them.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SyscallRequest {
    /// Request sequence number (matches the reply).
    pub seq: u64,
    /// Calling process.
    pub pid: u32,
    /// Calling thread.
    pub tid: u32,
    /// System call number.
    pub sysno: u32,
    /// The six x86-64 argument registers.
    pub args: [u64; 6],
}

/// Reply to a [`SyscallRequest`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SyscallReply {
    /// Request sequence number.
    pub seq: u64,
    /// Raw return value in Linux convention (negative errno on failure).
    pub ret: i64,
}

impl SyscallRequest {
    /// Wire size in bytes.
    pub const WIRE_SIZE: usize = 8 + 4 + 4 + 4 + 4 + 6 * 8;

    /// Serialize into `out` (little-endian, fixed layout) — lets hot
    /// paths reuse a preallocated wire buffer.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.pid.to_le_bytes());
        out.extend_from_slice(&self.tid.to_le_bytes());
        out.extend_from_slice(&self.sysno.to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes()); // pad
        for a in self.args {
            out.extend_from_slice(&a.to_le_bytes());
        }
    }

    /// Serialize (little-endian, fixed layout).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::WIRE_SIZE);
        self.encode_into(&mut out);
        out
    }

    /// Deserialize; `None` on short/garbled input.
    pub fn decode(buf: &[u8]) -> Option<SyscallRequest> {
        if buf.len() != Self::WIRE_SIZE {
            return None;
        }
        let u64_at =
            |i: usize| u64::from_le_bytes(buf[i..i + 8].try_into().expect("length checked"));
        let u32_at =
            |i: usize| u32::from_le_bytes(buf[i..i + 4].try_into().expect("length checked"));
        let seq = u64_at(0);
        let pid = u32_at(8);
        let tid = u32_at(12);
        let sysno = u32_at(16);
        let mut args = [0u64; 6];
        for (k, a) in args.iter_mut().enumerate() {
            *a = u64_at(24 + 8 * k);
        }
        Some(SyscallRequest {
            seq,
            pid,
            tid,
            sysno,
            args,
        })
    }
}

impl SyscallReply {
    /// Wire size in bytes.
    pub const WIRE_SIZE: usize = 16;

    /// Serialize into `out` — lets hot paths reuse a wire buffer.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.ret.to_le_bytes());
    }

    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::WIRE_SIZE);
        self.encode_into(&mut out);
        out
    }

    /// Deserialize.
    pub fn decode(buf: &[u8]) -> Option<SyscallReply> {
        if buf.len() != Self::WIRE_SIZE {
            return None;
        }
        Some(SyscallReply {
            seq: u64::from_le_bytes(buf[0..8].try_into().ok()?),
            ret: i64::from_le_bytes(buf[8..16].try_into().ok()?),
        })
    }
}

/// Timeout-and-retry parameters for offloaded system calls.
///
/// The happy path assumes every IKC message arrives; under the fault
/// model a request or reply can vanish, so each offload attempt is
/// bounded by a timeout and retried with exponential backoff. After
/// `max_attempts` the offload fails with `-EIO` — the caller degrades
/// gracefully rather than hanging an LWK thread forever.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Timeout of the first attempt.
    pub base_timeout: Cycles,
    /// Multiplier applied per retry (exponential backoff).
    pub backoff_factor: u32,
    /// Cap on any single attempt's timeout.
    pub max_timeout: Cycles,
    /// Total attempts (first try included). At least 1.
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        // The modeled offload RTT is a few microseconds; 50 us catches
        // even heavily delayed replies while keeping recovery snappy.
        RetryPolicy {
            base_timeout: Cycles::from_us(50),
            backoff_factor: 2,
            max_timeout: Cycles::from_ms(1),
            max_attempts: 8,
        }
    }
}

impl RetryPolicy {
    /// Timeout of attempt `attempt` (0-based): `base * factor^attempt`,
    /// saturating at [`max_timeout`](Self::max_timeout).
    pub fn timeout_for(&self, attempt: u32) -> Cycles {
        let factor = u64::from(self.backoff_factor).saturating_pow(attempt);
        Cycles(self.base_timeout.raw().saturating_mul(factor)).min(self.max_timeout)
    }

    /// Upper bound on the wall time an offload can spend before the
    /// caller observes `-EIO`: the sum of every attempt's timeout.
    pub fn worst_case(&self) -> Cycles {
        (0..self.max_attempts.max(1)).map(|a| self.timeout_for(a)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_then_caps() {
        let p = RetryPolicy::default();
        assert_eq!(p.timeout_for(0), Cycles::from_us(50));
        assert_eq!(p.timeout_for(1), Cycles::from_us(100));
        assert_eq!(p.timeout_for(2), Cycles::from_us(200));
        assert_eq!(p.timeout_for(30), Cycles::from_ms(1), "capped");
        assert!(p.worst_case() >= p.timeout_for(0));
        let total: Cycles = (0..p.max_attempts).map(|a| p.timeout_for(a)).sum();
        assert_eq!(p.worst_case(), total);
    }

    #[test]
    fn performance_sensitive_set_is_local() {
        for s in [
            Sysno::Mmap,
            Sysno::Munmap,
            Sysno::Brk,
            Sysno::SchedYield,
            Sysno::Getpid,
            Sysno::Clone,
            Sysno::RtSigaction,
            Sysno::PerfEventOpen,
            Sysno::Gettimeofday,
        ] {
            assert_eq!(disposition(s), Disposition::Lwk, "{s:?}");
        }
    }

    #[test]
    fn io_and_files_delegate() {
        for s in [
            Sysno::Read,
            Sysno::Write,
            Sysno::Open,
            Sysno::Close,
            Sysno::Ioctl,
            Sysno::Stat,
            Sysno::Getcwd,
        ] {
            assert_eq!(disposition(s), Disposition::Delegate, "{s:?}");
        }
    }

    #[test]
    fn every_syscall_has_a_disposition() {
        // Force the match to stay total as the table grows.
        for &s in Sysno::all() {
            let _ = disposition(s);
        }
    }

    #[test]
    fn mmap_splits_on_backing() {
        assert_eq!(mmap_disposition(u64::MAX), Disposition::Lwk);
        assert_eq!(mmap_disposition(3), Disposition::Delegate);
    }

    #[test]
    fn request_round_trip() {
        let req = SyscallRequest {
            seq: 77,
            pid: 1000,
            tid: 1001,
            sysno: Sysno::Write.nr(),
            args: [3, 0x2000_0000_0000, 4096, 0, 0, 0],
        };
        let bytes = req.encode();
        assert_eq!(bytes.len(), SyscallRequest::WIRE_SIZE);
        assert_eq!(SyscallRequest::decode(&bytes), Some(req));
    }

    #[test]
    fn reply_round_trip_including_errno() {
        for ret in [0i64, 4096, -38] {
            let r = SyscallReply { seq: 9, ret };
            assert_eq!(SyscallReply::decode(&r.encode()), Some(r));
        }
    }

    #[test]
    fn decode_rejects_short_buffers() {
        assert_eq!(SyscallRequest::decode(&[0u8; 10]), None);
        assert_eq!(SyscallReply::decode(&[0u8; 15]), None);
    }
}
