//! The system-call table: what McKernel implements locally and what it
//! delegates to Linux.
//!
//! Sec. II: McKernel "implements only a small set of performance sensitive
//! system calls and the rest are delegated to Linux. Specifically, McKernel
//! has its own memory management, it supports processes and multi-threading
//! ... and it implements signaling. It also allows inter-process memory
//! mappings and it provides interfaces to hardware performance counters."
//! Everything filesystem/device shaped goes to the proxy.

use crate::abi::{Pid, Sysno};
use simcore::Cycles;
use std::collections::HashMap;

/// Where a system call executes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Disposition {
    /// Handled entirely inside McKernel (performance-sensitive set).
    Lwk,
    /// Marshalled over IKC and executed by the proxy process on Linux.
    Delegate,
    /// Statically delegated, but measured hot by the [`SyscallProfiler`]
    /// and promoted to an in-LWK fast path. The fast path must fall back
    /// to [`Disposition::Delegate`] on any flag, state, or cache miss it
    /// does not handle, so results never diverge from the proxy's.
    Promoted,
}

/// Static disposition of a syscall. `mmap` is special-cased: anonymous
/// mappings are local, file/device-backed mappings take the Fig. 4
/// delegation path — use [`mmap_disposition`] for those.
pub fn disposition(s: Sysno) -> Disposition {
    use Sysno::*;
    match s {
        // Memory management — McKernel's own.
        Mmap | Munmap | Brk | Mprotect | Madvise => Disposition::Lwk,
        // Process / thread / scheduling.
        Clone | SchedYield | Getpid | Exit | ExitGroup | SchedSetaffinity
        | SchedGetaffinity | Nanosleep => Disposition::Lwk,
        // Signaling is implemented in the LWK.
        RtSigaction | RtSigprocmask | Kill => Disposition::Lwk,
        // Performance counters.
        PerfEventOpen => Disposition::Lwk,
        // Cheap local reads.
        Gettimeofday => Disposition::Lwk,
        // Everything touching files, devices, or Linux state.
        Read | Write | Lseek | Open | Openat | Close | Stat | Ioctl | Fcntl | Getcwd
        | Uname | GetRandom => Disposition::Delegate,
        // Futex and clock reads are delegated by default in this model
        // (they live in the promotable subset below); the profiler can
        // promote them to the in-LWK futex table / vDSO time page.
        Futex | ClockGettime => Disposition::Delegate,
    }
}

/// Whether a delegated syscall has an in-LWK fast-path implementation
/// the profiler may promote it to: positional I/O on proxy-backed fds
/// (shared-ring file cache), futex wait/wake (native wait queues in
/// `mck::sched`), and clock reads (vDSO-style shared time page).
pub fn promotable(s: Sysno) -> bool {
    matches!(
        s,
        Sysno::Read | Sysno::Write | Sysno::Lseek | Sysno::Futex | Sysno::ClockGettime
    )
}

/// `mmap` disposition by backing: `fd == -1` (anonymous) stays local;
/// file/device mmap is forwarded to Linux (Fig. 4 step 2).
pub fn mmap_disposition(fd_arg: u64) -> Disposition {
    if fd_arg == u64::MAX {
        Disposition::Lwk
    } else {
        Disposition::Delegate
    }
}

/// A marshalled system call crossing the IKC channel.
///
/// "During system call delegation McKernel marshalls the system call number
/// along with its arguments and sends a message to Linux via a dedicated
/// IKC channel" (Sec. III-A). Pointer arguments are *not* chased at marshal
/// time — the unified address space lets the proxy dereference them.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SyscallRequest {
    /// Request sequence number (matches the reply).
    pub seq: u64,
    /// Calling process.
    pub pid: u32,
    /// Calling thread.
    pub tid: u32,
    /// System call number.
    pub sysno: u32,
    /// The six x86-64 argument registers.
    pub args: [u64; 6],
}

/// Reply to a [`SyscallRequest`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SyscallReply {
    /// Request sequence number.
    pub seq: u64,
    /// Raw return value in Linux convention (negative errno on failure).
    pub ret: i64,
}

impl SyscallRequest {
    /// Wire size in bytes.
    pub const WIRE_SIZE: usize = 8 + 4 + 4 + 4 + 4 + 6 * 8;

    /// Serialize into `out` (little-endian, fixed layout) — lets hot
    /// paths reuse a preallocated wire buffer.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.pid.to_le_bytes());
        out.extend_from_slice(&self.tid.to_le_bytes());
        out.extend_from_slice(&self.sysno.to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes()); // pad
        for a in self.args {
            out.extend_from_slice(&a.to_le_bytes());
        }
    }

    /// Serialize (little-endian, fixed layout).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::WIRE_SIZE);
        self.encode_into(&mut out);
        out
    }

    /// Deserialize; `None` on short/garbled input.
    pub fn decode(buf: &[u8]) -> Option<SyscallRequest> {
        if buf.len() != Self::WIRE_SIZE {
            return None;
        }
        let u64_at =
            |i: usize| u64::from_le_bytes(buf[i..i + 8].try_into().expect("length checked"));
        let u32_at =
            |i: usize| u32::from_le_bytes(buf[i..i + 4].try_into().expect("length checked"));
        let seq = u64_at(0);
        let pid = u32_at(8);
        let tid = u32_at(12);
        let sysno = u32_at(16);
        let mut args = [0u64; 6];
        for (k, a) in args.iter_mut().enumerate() {
            *a = u64_at(24 + 8 * k);
        }
        Some(SyscallRequest {
            seq,
            pid,
            tid,
            sysno,
            args,
        })
    }
}

impl SyscallReply {
    /// Wire size in bytes.
    pub const WIRE_SIZE: usize = 16;

    /// Serialize into `out` — lets hot paths reuse a wire buffer.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.ret.to_le_bytes());
    }

    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::WIRE_SIZE);
        self.encode_into(&mut out);
        out
    }

    /// Deserialize.
    pub fn decode(buf: &[u8]) -> Option<SyscallReply> {
        if buf.len() != Self::WIRE_SIZE {
            return None;
        }
        Some(SyscallReply {
            seq: u64::from_le_bytes(buf[0..8].try_into().ok()?),
            ret: i64::from_le_bytes(buf[8..16].try_into().ok()?),
        })
    }
}

/// Timeout-and-retry parameters for offloaded system calls.
///
/// The happy path assumes every IKC message arrives; under the fault
/// model a request or reply can vanish, so each offload attempt is
/// bounded by a timeout and retried with exponential backoff. After
/// `max_attempts` the offload fails with `-EIO` — the caller degrades
/// gracefully rather than hanging an LWK thread forever.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Timeout of the first attempt.
    pub base_timeout: Cycles,
    /// Multiplier applied per retry (exponential backoff).
    pub backoff_factor: u32,
    /// Cap on any single attempt's timeout.
    pub max_timeout: Cycles,
    /// Total attempts (first try included). At least 1.
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        // The modeled offload RTT is a few microseconds; 50 us catches
        // even heavily delayed replies while keeping recovery snappy.
        RetryPolicy {
            base_timeout: Cycles::from_us(50),
            backoff_factor: 2,
            max_timeout: Cycles::from_ms(1),
            max_attempts: 8,
        }
    }
}

impl RetryPolicy {
    /// Timeout of attempt `attempt` (0-based): `base * factor^attempt`,
    /// saturating at [`max_timeout`](Self::max_timeout).
    pub fn timeout_for(&self, attempt: u32) -> Cycles {
        let factor = u64::from(self.backoff_factor).saturating_pow(attempt);
        Cycles(self.base_timeout.raw().saturating_mul(factor)).min(self.max_timeout)
    }

    /// Upper bound on the wall time an offload can spend before the
    /// caller observes `-EIO`: the sum of every attempt's timeout.
    pub fn worst_case(&self) -> Cycles {
        (0..self.max_attempts.max(1)).map(|a| self.timeout_for(a)).sum()
    }
}

/// Offload-bypass policy knobs.
///
/// Promotion is **off by default**: the paper-reproduction binaries must
/// stay byte-identical, so nothing promotes unless a bench (or
/// `HLWK_BYPASS`) arms it explicitly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BypassConfig {
    /// Master switch. Disabled ⇒ every delegated call takes the IKC trip
    /// exactly as before, and the promotion check costs nothing.
    pub enabled: bool,
    /// A (pid, sysno) pair is promoted once the profiler has seen this
    /// many offloaded executions of it (the EWMA then has a signal).
    /// `u64::MAX` arms the machinery without ever promoting — the
    /// "on-but-cold" determinism smoke.
    pub promote_after: u64,
    /// Charge `costs.domain_switch` on fast-path entry and exit (the
    /// MPK-style protection domains around the IKC ring / delegator
    /// surface). Reported separately so the bypass win is honest.
    pub domains: bool,
}

impl Default for BypassConfig {
    fn default() -> Self {
        BypassConfig {
            enabled: false,
            promote_after: 8,
            domains: false,
        }
    }
}

impl BypassConfig {
    /// Read the policy from `HLWK_BYPASS`: `off` (default) /
    /// `on-but-cold` (armed, never promotes) / `on`.
    pub fn from_env() -> BypassConfig {
        match std::env::var("HLWK_BYPASS").as_deref() {
            Ok("on") => BypassConfig {
                enabled: true,
                ..BypassConfig::default()
            },
            Ok("on-but-cold") => BypassConfig {
                enabled: true,
                promote_after: u64::MAX,
                ..BypassConfig::default()
            },
            _ => BypassConfig::default(),
        }
    }
}

/// Per-(pid, sysno) heat entry.
#[derive(Clone, Copy, Debug, Default)]
struct Heat {
    /// Executions observed (local count, not a trace counter).
    count: u64,
    /// EWMA of the observed per-call cost in raw cycles (α = 1/8,
    /// integer arithmetic so replays are bit-identical). 0 = no sample.
    ewma_raw: u64,
}

/// Per-process syscall heat profiler: counts plus an EWMA of observed
/// cycles per [`Sysno`], driving the [`Disposition::Promoted`] tier.
///
/// Recording is branch-light bookkeeping on the LWK side of the offload
/// path; it charges no modeled cycles, so arming the profiler never
/// perturbs figure output. Stats are exported as trace-counter deltas by
/// `McKernel::publish_prof_stats` (same pattern as `publish_mem_stats`).
#[derive(Debug, Default)]
pub struct SyscallProfiler {
    heat: HashMap<(Pid, u32), Heat>,
    /// Totals already pushed to the trace (delta export).
    published_calls: u64,
    published_samples: u64,
}

impl SyscallProfiler {
    /// Fresh profiler.
    pub fn new() -> Self {
        SyscallProfiler::default()
    }

    /// Record one execution of `sysno` by `pid`; returns the new count.
    pub fn record_call(&mut self, pid: Pid, sysno: Sysno) -> u64 {
        let h = self.heat.entry((pid, sysno.nr())).or_default();
        h.count += 1;
        h.count
    }

    /// Fold one observed per-call cost into the EWMA (α = 1/8).
    pub fn record_cycles(&mut self, pid: Pid, sysno: Sysno, cost: Cycles) {
        let h = self.heat.entry((pid, sysno.nr())).or_default();
        if h.ewma_raw == 0 {
            h.ewma_raw = cost.raw();
        } else {
            h.ewma_raw = h.ewma_raw - h.ewma_raw / 8 + cost.raw() / 8;
        }
    }

    /// Executions recorded for (pid, sysno).
    pub fn count(&self, pid: Pid, sysno: Sysno) -> u64 {
        self.heat.get(&(pid, sysno.nr())).map_or(0, |h| h.count)
    }

    /// Smoothed per-call cost, if any sample landed yet.
    pub fn ewma(&self, pid: Pid, sysno: Sysno) -> Option<Cycles> {
        match self.heat.get(&(pid, sysno.nr())) {
            Some(h) if h.ewma_raw > 0 => Some(Cycles(h.ewma_raw)),
            _ => None,
        }
    }

    /// The tiered disposition under `cfg`: [`Disposition::Promoted`] for
    /// a measured-hot promotable call, the static table otherwise.
    pub fn disposition(&self, cfg: &BypassConfig, pid: Pid, sysno: Sysno) -> Disposition {
        let stat = disposition(sysno);
        if stat != Disposition::Delegate || !cfg.enabled || !promotable(sysno) {
            return stat;
        }
        if self.count(pid, sysno) >= cfg.promote_after {
            Disposition::Promoted
        } else {
            Disposition::Delegate
        }
    }

    /// Drop all state for a reaped process.
    pub fn forget(&mut self, pid: Pid) {
        self.heat.retain(|(p, _), _| *p != pid);
    }

    /// Whether any state is live (pristine-LWK check).
    pub fn is_empty(&self) -> bool {
        self.heat.is_empty()
    }

    /// Totals for delta export: (calls recorded, EWMA samples folded).
    pub fn totals(&self) -> (u64, u64) {
        let calls = self.heat.values().map(|h| h.count).sum();
        let samples = self.heat.values().filter(|h| h.ewma_raw > 0).count() as u64;
        (calls, samples)
    }

    /// Take the not-yet-published delta of (calls, hot entries) — the
    /// `publish_mem_stats` pattern, so repeated publishes never
    /// double-count.
    pub fn take_publish_delta(&mut self) -> (u64, u64) {
        let (calls, samples) = self.totals();
        let d = (
            calls - self.published_calls,
            samples.saturating_sub(self.published_samples),
        );
        self.published_calls = calls;
        self.published_samples = samples;
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_then_caps() {
        let p = RetryPolicy::default();
        assert_eq!(p.timeout_for(0), Cycles::from_us(50));
        assert_eq!(p.timeout_for(1), Cycles::from_us(100));
        assert_eq!(p.timeout_for(2), Cycles::from_us(200));
        assert_eq!(p.timeout_for(30), Cycles::from_ms(1), "capped");
        assert!(p.worst_case() >= p.timeout_for(0));
        let total: Cycles = (0..p.max_attempts).map(|a| p.timeout_for(a)).sum();
        assert_eq!(p.worst_case(), total);
    }

    #[test]
    fn performance_sensitive_set_is_local() {
        for s in [
            Sysno::Mmap,
            Sysno::Munmap,
            Sysno::Brk,
            Sysno::SchedYield,
            Sysno::Getpid,
            Sysno::Clone,
            Sysno::RtSigaction,
            Sysno::PerfEventOpen,
            Sysno::Gettimeofday,
        ] {
            assert_eq!(disposition(s), Disposition::Lwk, "{s:?}");
        }
    }

    #[test]
    fn io_and_files_delegate() {
        for s in [
            Sysno::Read,
            Sysno::Write,
            Sysno::Open,
            Sysno::Close,
            Sysno::Ioctl,
            Sysno::Stat,
            Sysno::Getcwd,
        ] {
            assert_eq!(disposition(s), Disposition::Delegate, "{s:?}");
        }
    }

    #[test]
    fn every_syscall_has_a_disposition() {
        // Force the match to stay total as the table grows.
        for &s in Sysno::all() {
            let _ = disposition(s);
        }
    }

    #[test]
    fn mmap_splits_on_backing() {
        assert_eq!(mmap_disposition(u64::MAX), Disposition::Lwk);
        assert_eq!(mmap_disposition(3), Disposition::Delegate);
    }

    #[test]
    fn request_round_trip() {
        let req = SyscallRequest {
            seq: 77,
            pid: 1000,
            tid: 1001,
            sysno: Sysno::Write.nr(),
            args: [3, 0x2000_0000_0000, 4096, 0, 0, 0],
        };
        let bytes = req.encode();
        assert_eq!(bytes.len(), SyscallRequest::WIRE_SIZE);
        assert_eq!(SyscallRequest::decode(&bytes), Some(req));
    }

    #[test]
    fn reply_round_trip_including_errno() {
        for ret in [0i64, 4096, -38] {
            let r = SyscallReply { seq: 9, ret };
            assert_eq!(SyscallReply::decode(&r.encode()), Some(r));
        }
    }

    #[test]
    fn decode_rejects_short_buffers() {
        assert_eq!(SyscallRequest::decode(&[0u8; 10]), None);
        assert_eq!(SyscallReply::decode(&[0u8; 15]), None);
    }

    #[test]
    fn promotable_subset_is_delegated_by_default() {
        for s in [
            Sysno::Read,
            Sysno::Write,
            Sysno::Lseek,
            Sysno::Futex,
            Sysno::ClockGettime,
        ] {
            assert!(promotable(s), "{s:?}");
            assert_eq!(disposition(s), Disposition::Delegate, "{s:?}");
        }
        assert!(!promotable(Sysno::Open), "control-plane calls never promote");
        assert!(!promotable(Sysno::Ioctl), "device calls never promote");
    }

    #[test]
    fn profiler_promotes_only_hot_promotable_calls() {
        let mut prof = SyscallProfiler::new();
        let cfg = BypassConfig {
            enabled: true,
            promote_after: 3,
            domains: false,
        };
        let pid = Pid(1000);
        // Cold: still delegated.
        assert_eq!(prof.disposition(&cfg, pid, Sysno::Read), Disposition::Delegate);
        for _ in 0..3 {
            prof.record_call(pid, Sysno::Read);
            prof.record_call(pid, Sysno::Open);
        }
        assert_eq!(prof.disposition(&cfg, pid, Sysno::Read), Disposition::Promoted);
        // Equally hot but not promotable: stays delegated.
        assert_eq!(prof.disposition(&cfg, pid, Sysno::Open), Disposition::Delegate);
        // Another process's heat does not leak.
        assert_eq!(
            prof.disposition(&cfg, Pid(2000), Sysno::Read),
            Disposition::Delegate
        );
        // Locally-dispatched calls are untouched by promotion.
        assert_eq!(prof.disposition(&cfg, pid, Sysno::Getpid), Disposition::Lwk);
        // Master switch off: nothing promotes no matter the heat.
        let off = BypassConfig::default();
        assert!(!off.enabled);
        assert_eq!(prof.disposition(&off, pid, Sysno::Read), Disposition::Delegate);
        // on-but-cold: armed, never promotes.
        let cold = BypassConfig {
            enabled: true,
            promote_after: u64::MAX,
            domains: false,
        };
        assert_eq!(prof.disposition(&cold, pid, Sysno::Read), Disposition::Delegate);
    }

    #[test]
    fn ewma_tracks_and_forget_clears() {
        let mut prof = SyscallProfiler::new();
        let pid = Pid(1000);
        assert_eq!(prof.ewma(pid, Sysno::Read), None);
        prof.record_cycles(pid, Sysno::Read, Cycles(8000));
        assert_eq!(prof.ewma(pid, Sysno::Read), Some(Cycles(8000)), "seeded");
        prof.record_cycles(pid, Sysno::Read, Cycles(800));
        // 8000 - 1000 + 100 = 7100: pulled 1/8 toward the new sample.
        assert_eq!(prof.ewma(pid, Sysno::Read), Some(Cycles(7100)));
        prof.record_call(pid, Sysno::Read);
        let (calls, hot) = prof.take_publish_delta();
        assert_eq!((calls, hot), (1, 1));
        assert_eq!(prof.take_publish_delta(), (0, 0), "delta export");
        prof.forget(pid);
        assert!(prof.is_empty());
        assert_eq!(prof.count(pid, Sysno::Read), 0);
    }
}
