//! McKernel processes and threads.
//!
//! McKernel "supports processes and multi-threading" (Sec. II). Every
//! process is paired with a proxy process on Linux; that pairing is
//! recorded here and the proxy side lives in [`crate::proxy`].

use crate::abi::{Pid, Tid};
use crate::mck::mem::AddressSpace;
use hwmodel::cpu::CoreId;

/// Why a thread is not runnable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BlockReason {
    /// Waiting for an offloaded syscall's reply from Linux.
    OffloadReply,
    /// Waiting on a futex (thread join, MPI progress waits).
    Futex,
    /// In `nanosleep`.
    Sleep,
    /// Waiting for a network completion (CQ event).
    Network,
}

/// Thread scheduling state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ThreadState {
    /// On a run queue.
    Ready,
    /// Currently on a core.
    Running(CoreId),
    /// Blocked.
    Blocked(BlockReason),
    /// Finished.
    Exited,
}

/// One McKernel thread.
#[derive(Debug)]
pub struct Thread {
    /// Thread id.
    pub tid: Tid,
    /// Owning process.
    pub pid: Pid,
    /// Scheduling state.
    pub state: ThreadState,
    /// Core this thread is bound to (McKernel binds HPC threads 1:1;
    /// the cooperative scheduler never migrates them).
    pub core: CoreId,
}

/// One McKernel process.
#[derive(Debug)]
pub struct Process {
    /// Process id (shared numbering with the Linux proxy pairing).
    pub pid: Pid,
    /// Address space.
    pub aspace: AddressSpace,
    /// Member threads.
    pub threads: Vec<Tid>,
    /// The Linux-side proxy process paired with this process.
    pub proxy_pid: Option<Pid>,
    /// Exit code once exited.
    pub exit_code: Option<i32>,
}

impl Process {
    /// New process with an empty McKernel address space.
    pub fn new(pid: Pid) -> Self {
        Process {
            pid,
            aspace: AddressSpace::new(true),
            threads: Vec::new(),
            proxy_pid: None,
            exit_code: None,
        }
    }

    /// Whether the process has exited.
    pub fn exited(&self) -> bool {
        self.exit_code.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_process_is_live_and_empty() {
        let p = Process::new(Pid(100));
        assert!(!p.exited());
        assert!(p.threads.is_empty());
        assert_eq!(p.aspace.vm.count(), 0);
        assert!(p.proxy_pid.is_none());
    }

    #[test]
    fn mckernel_process_has_proxy_exclusion() {
        use hwmodel::addr::VirtAddr;
        let p = Process::new(Pid(1));
        assert!(p
            .aspace
            .vm
            .in_excluded(VirtAddr(crate::mck::mem::vm::EXCLUDED_START)));
    }
}
