//! The cooperative, tick-less, round-robin scheduler.
//!
//! McKernel schedules "with a simple round-robin cooperative (tick-less)
//! scheduler" (Sec. II). Three properties make the LWK noiseless and all
//! three are structural here:
//!
//! * **No timer tick** — there is no periodic event source at all; the
//!   scheduler only acts when a thread yields, blocks, or is woken.
//! * **Cooperative** — a running thread is never preempted.
//! * **Per-core queues, no migration/balancing** — no cross-core locks, no
//!   work stealing, no IPIs between LWK cores.

use crate::abi::Tid;
use hwmodel::addr::VirtAddr;
use hwmodel::cpu::CoreId;
use std::collections::{BTreeMap, VecDeque};

/// Per-core cooperative run queues, plus the native futex wait table
/// used by the promoted `futex` fast path (keyed by the *virtual*
/// address of the futex word — LWK threads of one process share the
/// address space, so the VA is the identity).
#[derive(Debug)]
pub struct CoopScheduler {
    queues: BTreeMap<CoreId, VecDeque<Tid>>,
    current: BTreeMap<CoreId, Option<Tid>>,
    /// FIFO waiters per futex word. Waiters parked here are invisible to
    /// the Linux side by design: a futex word shared with the proxy must
    /// stay on the delegated path (that is exactly why the promoted path
    /// only handles process-private futexes).
    futexes: BTreeMap<VirtAddr, VecDeque<(CoreId, Tid)>>,
}

impl CoopScheduler {
    /// Scheduler over the LWK's core partition.
    pub fn new(cores: &[CoreId]) -> Self {
        CoopScheduler {
            queues: cores.iter().map(|&c| (c, VecDeque::new())).collect(),
            current: cores.iter().map(|&c| (c, None)).collect(),
            futexes: BTreeMap::new(),
        }
    }

    /// Cores managed by this scheduler.
    pub fn cores(&self) -> impl Iterator<Item = CoreId> + '_ {
        self.queues.keys().copied()
    }

    /// Whether `core` has a run queue here.
    pub fn has_core(&self, core: CoreId) -> bool {
        self.queues.contains_key(&core)
    }

    /// Core hotplug (online expansion): give `core` an empty run queue.
    pub fn add_core(&mut self, core: CoreId) {
        assert!(!self.has_core(core), "{core} already scheduled");
        self.queues.insert(core, VecDeque::new());
        self.current.insert(core, None);
    }

    /// Core hotplug (online shrink): remove `core`'s run queue. Refuses
    /// while anything still runs, queues, or waits on the core — the
    /// caller must migrate threads off first.
    pub fn remove_core(&mut self, core: CoreId) -> Result<(), &'static str> {
        if !self.has_core(core) {
            return Err("core not scheduled here");
        }
        if self.current(core).is_some() {
            return Err("a thread is running on the core");
        }
        if self.queued(core) > 0 {
            return Err("runnable threads still queued on the core");
        }
        if self.futexes.values().flatten().any(|&(c, _)| c == core) {
            return Err("futex waiters still parked on the core");
        }
        self.queues.remove(&core);
        self.current.remove(&core);
        Ok(())
    }

    /// Remove `tid` from `core`'s run queue (thread migration). Returns
    /// whether it was queued there.
    pub fn dequeue(&mut self, core: CoreId, tid: Tid) -> bool {
        let q = self.queue_mut(core);
        match q.iter().position(|&t| t == tid) {
            Some(i) => {
                q.remove(i);
                true
            }
            None => false,
        }
    }

    /// Whether `tid` is parked on any futex word (such a thread cannot
    /// be migrated — its wake is bound to the parking core).
    pub fn is_futex_parked(&self, tid: Tid) -> bool {
        self.futexes.values().flatten().any(|&(_, t)| t == tid)
    }

    fn queue_mut(&mut self, core: CoreId) -> &mut VecDeque<Tid> {
        self.queues
            .get_mut(&core)
            .unwrap_or_else(|| panic!("{core} not in LWK partition"))
    }

    /// Make `tid` runnable on `core` (enqueue at tail).
    pub fn enqueue(&mut self, core: CoreId, tid: Tid) {
        self.queue_mut(core).push_back(tid);
    }

    /// Thread currently on `core`.
    pub fn current(&self, core: CoreId) -> Option<Tid> {
        *self
            .current
            .get(&core)
            .unwrap_or_else(|| panic!("{core} not in LWK partition"))
    }

    /// Pick the next thread for an idle `core`. Returns `None` if the
    /// queue is empty (the core then simply halts — no idle tick).
    pub fn pick_next(&mut self, core: CoreId) -> Option<Tid> {
        assert!(
            self.current(core).is_none(),
            "pick_next on busy core {core}"
        );
        let next = self.queue_mut(core).pop_front();
        self.current.insert(core, next);
        next
    }

    /// Voluntary yield: requeue the current thread at the tail and pick the
    /// next. With a single thread on the core this is a no-op returning the
    /// same thread.
    pub fn yield_current(&mut self, core: CoreId) -> Option<Tid> {
        if let Some(tid) = self.current(core) {
            self.queue_mut(core).push_back(tid);
            self.current.insert(core, None);
        }
        self.pick_next(core)
    }

    /// Current thread blocks (offload wait, futex, CQ wait). The core picks
    /// the next runnable thread, if any.
    pub fn block_current(&mut self, core: CoreId) -> Option<Tid> {
        assert!(
            self.current(core).is_some(),
            "block_current with nothing running on {core}"
        );
        self.current.insert(core, None);
        self.pick_next(core)
    }

    /// Current thread exits.
    pub fn exit_current(&mut self, core: CoreId) -> Option<Tid> {
        self.current.insert(core, None);
        self.pick_next(core)
    }

    /// Wake `tid` onto `core`. Returns `true` if the core was idle and the
    /// thread was dispatched immediately (the caller then charges a
    /// dispatch, not an enqueue).
    pub fn wake(&mut self, core: CoreId, tid: Tid) -> bool {
        if self.current(core).is_none() && self.queue_mut(core).is_empty() {
            self.current.insert(core, Some(tid));
            true
        } else {
            self.enqueue(core, tid);
            false
        }
    }

    /// Runnable (queued, not running) count on a core.
    pub fn queued(&self, core: CoreId) -> usize {
        self.queues.get(&core).map(VecDeque::len).unwrap_or(0)
    }

    /// Park the current thread of `core` on the futex word at `uaddr`
    /// (`FUTEX_WAIT` after the value check passed). The core picks its
    /// next runnable thread, which is returned.
    pub fn futex_wait(&mut self, core: CoreId, uaddr: VirtAddr) -> Option<Tid> {
        let tid = self
            .current(core)
            .unwrap_or_else(|| panic!("futex_wait with nothing running on {core}"));
        self.futexes.entry(uaddr).or_default().push_back((core, tid));
        self.block_current(core)
    }

    /// Wake up to `n` FIFO waiters parked on `uaddr` (`FUTEX_WAKE`).
    /// Each is re-dispatched onto the core it blocked on. Returns the
    /// woken (core, tid) pairs in wake order.
    pub fn futex_wake(&mut self, uaddr: VirtAddr, n: usize) -> Vec<(CoreId, Tid)> {
        let mut woken = Vec::new();
        if let Some(q) = self.futexes.get_mut(&uaddr) {
            for _ in 0..n {
                match q.pop_front() {
                    Some(pair) => woken.push(pair),
                    None => break,
                }
            }
        }
        for &(core, tid) in &woken {
            self.wake(core, tid);
        }
        if self.futexes.get(&uaddr).is_some_and(VecDeque::is_empty) {
            self.futexes.remove(&uaddr);
        }
        woken
    }

    /// Waiters currently parked on `uaddr`.
    pub fn futex_waiters(&self, uaddr: VirtAddr) -> usize {
        self.futexes.get(&uaddr).map_or(0, VecDeque::len)
    }

    /// Whether any futex word has parked waiters (pristine-LWK check:
    /// a reaped job must leave no thread stranded on a wait queue).
    pub fn has_futex_waiters(&self) -> bool {
        !self.futexes.is_empty()
    }

    /// Drop every parked waiter whose tid satisfies `dead` (process
    /// teardown: SIGKILL must not leave tombstones in the wait table).
    pub fn futex_reap(&mut self, dead: impl Fn(Tid) -> bool) {
        for q in self.futexes.values_mut() {
            q.retain(|&(_, t)| !dead(t));
        }
        self.futexes.retain(|_, q| !q.is_empty());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cores() -> Vec<CoreId> {
        (10..13).map(CoreId).collect()
    }

    #[test]
    fn round_robin_order_is_fifo() {
        let mut s = CoopScheduler::new(&cores());
        let c = CoreId(10);
        for t in [1, 2, 3] {
            s.enqueue(c, Tid(t));
        }
        assert_eq!(s.pick_next(c), Some(Tid(1)));
        assert_eq!(s.yield_current(c), Some(Tid(2)));
        assert_eq!(s.yield_current(c), Some(Tid(3)));
        assert_eq!(s.yield_current(c), Some(Tid(1)), "wraps around");
    }

    #[test]
    fn single_thread_yield_keeps_running() {
        let mut s = CoopScheduler::new(&cores());
        let c = CoreId(11);
        s.enqueue(c, Tid(9));
        assert_eq!(s.pick_next(c), Some(Tid(9)));
        assert_eq!(s.yield_current(c), Some(Tid(9)));
        assert_eq!(s.current(c), Some(Tid(9)));
    }

    #[test]
    fn block_and_wake_cycle() {
        let mut s = CoopScheduler::new(&cores());
        let c = CoreId(10);
        s.enqueue(c, Tid(1));
        s.enqueue(c, Tid(2));
        s.pick_next(c);
        // Tid(1) blocks on an offload; Tid(2) runs.
        assert_eq!(s.block_current(c), Some(Tid(2)));
        // Reply arrives; core busy, so Tid(1) queues.
        assert!(!s.wake(c, Tid(1)));
        assert_eq!(s.queued(c), 1);
        // Tid(2) blocks; Tid(1) resumes.
        assert_eq!(s.block_current(c), Some(Tid(1)));
    }

    #[test]
    fn wake_onto_idle_core_dispatches_immediately() {
        let mut s = CoopScheduler::new(&cores());
        let c = CoreId(12);
        assert!(s.wake(c, Tid(5)));
        assert_eq!(s.current(c), Some(Tid(5)));
    }

    #[test]
    fn idle_core_stays_idle() {
        let mut s = CoopScheduler::new(&cores());
        assert_eq!(s.pick_next(CoreId(10)), None);
        assert_eq!(s.current(CoreId(10)), None);
    }

    #[test]
    fn cores_are_independent() {
        let mut s = CoopScheduler::new(&cores());
        s.enqueue(CoreId(10), Tid(1));
        s.enqueue(CoreId(11), Tid(2));
        assert_eq!(s.pick_next(CoreId(10)), Some(Tid(1)));
        assert_eq!(s.pick_next(CoreId(11)), Some(Tid(2)));
        assert_eq!(s.queued(CoreId(10)), 0);
    }

    #[test]
    #[should_panic(expected = "not in LWK partition")]
    fn foreign_core_rejected() {
        let mut s = CoopScheduler::new(&cores());
        s.enqueue(CoreId(0), Tid(1)); // core 0 belongs to Linux
    }

    #[test]
    fn exit_moves_on() {
        let mut s = CoopScheduler::new(&cores());
        let c = CoreId(10);
        s.enqueue(c, Tid(1));
        s.enqueue(c, Tid(2));
        s.pick_next(c);
        assert_eq!(s.exit_current(c), Some(Tid(2)));
        assert_eq!(s.exit_current(c), None);
    }

    #[test]
    fn futex_wait_parks_and_wake_redispatches_fifo() {
        let mut s = CoopScheduler::new(&cores());
        let (c1, c2) = (CoreId(10), CoreId(11));
        s.enqueue(c1, Tid(1));
        s.enqueue(c2, Tid(2));
        s.pick_next(c1);
        s.pick_next(c2);
        let word = VirtAddr(0x7000_1000);
        // Both threads park on the same word; their cores go idle.
        assert_eq!(s.futex_wait(c1, word), None);
        assert_eq!(s.futex_wait(c2, word), None);
        assert_eq!(s.futex_waiters(word), 2);
        assert!(s.has_futex_waiters());
        // Wake 1: strictly FIFO, back onto the parking core.
        assert_eq!(s.futex_wake(word, 1), vec![(c1, Tid(1))]);
        assert_eq!(s.current(c1), Some(Tid(1)), "idle core dispatches");
        assert_eq!(s.futex_waiters(word), 1);
        // Wake everything (n larger than the queue is fine).
        assert_eq!(s.futex_wake(word, 100), vec![(c2, Tid(2))]);
        assert_eq!(s.futex_waiters(word), 0);
        assert!(!s.has_futex_waiters(), "empty queues are pruned");
        // Waking an unknown word wakes nobody.
        assert!(s.futex_wake(VirtAddr(0xdead_0000), 5).is_empty());
    }

    #[test]
    fn futex_reap_drops_dead_waiters() {
        let mut s = CoopScheduler::new(&cores());
        let c = CoreId(10);
        s.enqueue(c, Tid(1));
        s.pick_next(c);
        let word = VirtAddr(0x7000_2000);
        s.futex_wait(c, word);
        s.futex_reap(|t| t == Tid(1));
        assert!(!s.has_futex_waiters());
        assert!(s.futex_wake(word, 1).is_empty(), "no tombstone wakeups");
    }
}
