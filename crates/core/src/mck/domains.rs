//! MPK-style intra-kernel protection domains.
//!
//! RustyMPK-flavored model: the LWK tags its unsafe shared surfaces —
//! the IKC ring, the delegator slabs, the promoted-fd shared file
//! rings, and the vDSO time page — with protection keys, and every
//! fast-path entry/exit pays a WRPKRU-class register write
//! (`costs.domain_switch`, ~25 ns) to open exactly one key. The model
//! is a cost/accounting model, not an enforcement engine: what matters
//! for the paper-style figures is that the offload-bypass win is
//! reported *net* of the protection the bypass needs, because the
//! whole point of keeping hot syscalls in-LWK is reaching kernel state
//! that offload would have kept on the other side of the IKC boundary.
//!
//! Disabled (the default) the model charges nothing and counts
//! nothing, so paper-reproduction binaries are byte-identical whether
//! or not the machinery is wired in.

use simcore::Cycles;

/// The kernel regions guarded by distinct protection keys.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
#[repr(u8)]
pub enum DomainId {
    /// Default key: ordinary kernel text/data, always accessible.
    KernelCore = 0,
    /// The IKC rings shared with Linux.
    IkcRing = 1,
    /// The delegator in-flight / reply-cache slabs.
    DelegatorSlab = 2,
    /// Per-fd shared file rings backing promoted read/write/lseek.
    FdRing = 3,
    /// The vDSO-style shared time page backing promoted clock reads.
    TimePage = 4,
}

/// PKRU-register model: a 2-bits-per-key access mask plus the switch
/// accounting. Same-domain re-entry elides the WRPKRU exactly like the
/// real instruction sequence would (the register already holds the
/// right mask), so tight loops over one fast path pay entry+exit once
/// per call, not per touch.
#[derive(Clone, Copy, Debug)]
pub struct DomainModel {
    /// Master switch; disabled ⇒ zero cost, zero counting.
    pub enabled: bool,
    /// Cost of one WRPKRU-class domain switch.
    pub switch_cost: Cycles,
    /// Domain currently opened in addition to [`DomainId::KernelCore`].
    current: DomainId,
    /// PKRU image: bit `2k` = access-disable, bit `2k+1` = write-disable
    /// for key `k`. Kept for inspection; `current` is the fast path.
    pkru: u32,
    /// WRPKRU writes performed (the figure-visible counter).
    pub switches: u64,
}

/// All keys access-disabled except [`DomainId::KernelCore`].
const PKRU_LOCKED: u32 = 0b11_11_11_11_00;

impl Default for DomainModel {
    fn default() -> Self {
        DomainModel::disabled()
    }
}

impl DomainModel {
    /// The default: protection modeling off, every charge zero.
    pub fn disabled() -> Self {
        DomainModel {
            enabled: false,
            switch_cost: Cycles::ZERO,
            current: DomainId::KernelCore,
            pkru: PKRU_LOCKED,
            switches: 0,
        }
    }

    /// Arm the model with the given WRPKRU cost.
    pub fn enabled(switch_cost: Cycles) -> Self {
        DomainModel {
            enabled: true,
            switch_cost,
            current: DomainId::KernelCore,
            pkru: PKRU_LOCKED,
            switches: 0,
        }
    }

    /// Open `domain` (fast-path entry). Returns the charge: one switch
    /// cost, or zero when disabled or when `domain` is already open
    /// (same-domain re-entry needs no WRPKRU).
    #[inline]
    pub fn enter(&mut self, domain: DomainId) -> Cycles {
        if !self.enabled || self.current == domain {
            return Cycles::ZERO;
        }
        self.pkru = PKRU_LOCKED & !(0b11 << (2 * domain as u32));
        self.current = domain;
        self.switches += 1;
        self.switch_cost
    }

    /// Close the open domain, returning to the locked kernel-core mask
    /// (fast-path exit). Charges like [`enter`](Self::enter).
    #[inline]
    pub fn exit(&mut self) -> Cycles {
        self.enter(DomainId::KernelCore)
    }

    /// The domain currently open.
    pub fn current(&self) -> DomainId {
        self.current
    }

    /// Whether the PKRU image currently permits access to `domain`.
    pub fn accessible(&self, domain: DomainId) -> bool {
        domain == DomainId::KernelCore || self.pkru & (0b1 << (2 * domain as u32)) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_model_charges_and_counts_nothing() {
        let mut d = DomainModel::disabled();
        assert_eq!(d.enter(DomainId::IkcRing), Cycles::ZERO);
        assert_eq!(d.exit(), Cycles::ZERO);
        assert_eq!(d.switches, 0);
        assert_eq!(d.current(), DomainId::KernelCore);
    }

    #[test]
    fn entry_exit_pair_costs_two_switches() {
        let mut d = DomainModel::enabled(Cycles::from_ns(25));
        let c1 = d.enter(DomainId::DelegatorSlab);
        assert_eq!(c1, Cycles::from_ns(25));
        assert!(d.accessible(DomainId::DelegatorSlab));
        assert!(!d.accessible(DomainId::IkcRing), "one key at a time");
        let c2 = d.exit();
        assert_eq!(c2, Cycles::from_ns(25));
        assert_eq!(d.switches, 2);
        assert!(!d.accessible(DomainId::DelegatorSlab), "locked after exit");
        assert!(d.accessible(DomainId::KernelCore), "core always open");
    }

    #[test]
    fn same_domain_reentry_elides_the_wrpkru() {
        let mut d = DomainModel::enabled(Cycles::from_ns(25));
        d.enter(DomainId::FdRing);
        assert_eq!(d.enter(DomainId::FdRing), Cycles::ZERO, "already open");
        assert_eq!(d.switches, 1);
        // Switching straight to another domain is one write, not two.
        assert_eq!(d.enter(DomainId::TimePage), Cycles::from_ns(25));
        assert_eq!(d.switches, 2);
        assert!(d.accessible(DomainId::TimePage));
        assert!(!d.accessible(DomainId::FdRing));
    }
}
