//! Interface for Heterogeneous Kernels.
//!
//! "IHK is a general framework that provides capabilities for partitioning
//! resources in a many-core environment (e.g., CPU cores and physical
//! memory) and it enables management of lightweight kernels... IHK can
//! allocate and release host resources dynamically and no reboot of the
//! host machine is required when altering configuration... Besides resource
//! and LWK management, IHK also provides an Inter-Kernel Communication
//! (IKC) layer, upon which system call delegation is implemented" (Sec. II).

pub mod delegator;
pub mod ikc;
pub mod manager;
pub mod partition;
