//! Inter-Kernel Communication: bounded message queues between McKernel and
//! Linux, with typed payloads for syscall delegation and the device-mapping
//! protocol (Fig. 4).
//!
//! The channel is the single structure every offloaded syscall crosses
//! twice, so it is built for **zero steady-state allocation**: a
//! fixed-capacity power-of-two ring of preallocated slots, each owning a
//! reusable wire buffer. Messages are encoded *once*, directly into the
//! slot ([`IkcChannel::send_with`]), with the CRC computed over that
//! single wire buffer during encode; retransmits replay pre-encoded
//! bytes ([`IkcChannel::send_encoded`]) without re-serializing or
//! re-checksumming. Receivers borrow the slot in place via
//! [`IkcChannel::recv_ref`] — no copy, no refcount traffic.

use crate::mck::syscall::{SyscallReply, SyscallRequest};
use bytes::Bytes;

/// Message discriminator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MsgKind {
    /// LWK -> Linux: offloaded syscall.
    SyscallRequest,
    /// Linux -> LWK: offload result.
    SyscallReply,
    /// LWK -> Linux: resolve a device-mapping page (Fig. 4, step 8).
    PfnRequest,
    /// Linux -> LWK: resolved physical address (Fig. 4, step 10).
    PfnReply,
    /// Management traffic (boot/shutdown handshakes).
    Control,
}

impl MsgKind {
    /// Stable wire tag, mixed into the checksum so a corrupted kind
    /// cannot masquerade as a valid message of another kind.
    fn tag(self) -> u8 {
        match self {
            MsgKind::SyscallRequest => 1,
            MsgKind::SyscallReply => 2,
            MsgKind::PfnRequest => 3,
            MsgKind::PfnReply => 4,
            MsgKind::Control => 5,
        }
    }
}

/// Slice-by-8 lookup tables: `CRC_TABLES[0]` is the classic byte-at-a-time
/// table; table `j` advances a byte through `j` additional zero bytes, so
/// eight bytes fold in one step with identical results to the serial form.
const CRC_TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut j = 1;
    while j < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[j - 1][i];
            tables[j][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        j += 1;
    }
    tables
};

/// Streaming CRC-32 (IEEE 802.3 polynomial, reflected). Lets the message
/// checksum cover the kind tag followed by the payload without ever
/// materializing that concatenation in a temporary buffer. The hot loop
/// is slice-by-8: the wire checksums sit directly on the offload round
/// trip (twice per leg), so bytes-per-cycle here is end-to-end latency.
#[derive(Clone, Copy, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Crc32 { state: !0u32 }
    }

    /// Fold `data` into the running checksum.
    #[inline]
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        let mut chunks = data.chunks_exact(8);
        for ch in &mut chunks {
            let lo = u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]) ^ crc;
            let hi = u32::from_le_bytes([ch[4], ch[5], ch[6], ch[7]]);
            crc = CRC_TABLES[7][(lo & 0xFF) as usize]
                ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
                ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
                ^ CRC_TABLES[4][(lo >> 24) as usize]
                ^ CRC_TABLES[3][(hi & 0xFF) as usize]
                ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
                ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
                ^ CRC_TABLES[0][(hi >> 24) as usize];
        }
        for &b in chunks.remainder() {
            crc = CRC_TABLES[0][((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
        }
        self.state = crc;
    }

    /// Final checksum value.
    #[inline]
    pub fn finish(self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// CRC-32 of a contiguous buffer (table-driven, compile-time table).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finish()
}

/// Checksum of a message: CRC-32 over the kind tag followed by the wire
/// payload. Streaming, so no tag+payload temporary is allocated.
pub fn message_checksum(kind: MsgKind, payload: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(&[kind.tag()]);
    c.update(payload);
    c.finish()
}

/// One IKC message. The checksum covers the kind tag and the payload;
/// receivers must [`verify`](IkcMessage::verify) before decoding and
/// NACK on mismatch (the fault model flips payload bits in flight).
///
/// This owned form is the channel's *compatibility* currency (tests,
/// cold paths); the hot path never materializes it — it encodes into
/// ring slots and reads them back by reference as [`WireMsg`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IkcMessage {
    /// Payload discriminator.
    pub kind: MsgKind,
    /// Serialized payload.
    pub payload: Bytes,
    /// CRC-32 of the kind tag followed by the payload bytes.
    pub checksum: u32,
}

impl IkcMessage {
    /// Build a message with a correct checksum.
    pub fn new(kind: MsgKind, payload: Bytes) -> Self {
        let checksum = message_checksum(kind, &payload);
        IkcMessage { kind, payload, checksum }
    }

    /// True when the checksum matches the payload — the message
    /// survived the channel intact.
    pub fn verify(&self) -> bool {
        self.checksum == message_checksum(self.kind, &self.payload)
    }

    /// In-flight corruption: returns a copy with one payload bit
    /// flipped (chosen by `flip`) and the checksum left stale, exactly
    /// what a receiver's `verify` must catch. Empty payloads get a
    /// corrupted checksum instead. (Fault-injection/test path; in-ring
    /// corruption uses [`IkcChannel::corrupt_newest`].)
    pub fn corrupted(&self, flip: u64) -> Self {
        let mut c = self.clone();
        if self.payload.is_empty() {
            c.checksum ^= 1;
            return c;
        }
        let mut bytes = self.payload.to_vec();
        let bit = (flip % (bytes.len() as u64 * 8)) as usize;
        bytes[bit / 8] ^= 1 << (bit % 8);
        c.payload = Bytes::from(bytes);
        c
    }

    /// Wrap a syscall request.
    pub fn syscall_request(req: &SyscallRequest) -> Self {
        IkcMessage::new(MsgKind::SyscallRequest, Bytes::from(req.encode()))
    }

    /// Wrap a syscall reply.
    pub fn syscall_reply(rep: &SyscallReply) -> Self {
        IkcMessage::new(MsgKind::SyscallReply, Bytes::from(rep.encode()))
    }

    /// Wrap a PFN resolution request.
    pub fn pfn_request(req: &PfnRequest) -> Self {
        IkcMessage::new(MsgKind::PfnRequest, Bytes::from(req.encode()))
    }

    /// Wrap a PFN resolution reply.
    pub fn pfn_reply(rep: &PfnReply) -> Self {
        IkcMessage::new(MsgKind::PfnReply, Bytes::from(rep.encode()))
    }

    /// Wrap a control message.
    pub fn control(msg: &ControlMsg) -> Self {
        IkcMessage::new(MsgKind::Control, Bytes::from(msg.encode()))
    }
}

/// A message borrowed straight out of a ring slot: the zero-copy view
/// the hot path decodes from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WireMsg<'a> {
    /// Payload discriminator.
    pub kind: MsgKind,
    /// Wire payload bytes (slot-resident).
    pub payload: &'a [u8],
    /// Checksum as enqueued (stale if the message was corrupted in
    /// flight).
    pub checksum: u32,
}

impl WireMsg<'_> {
    /// True when the checksum matches the payload.
    pub fn verify(&self) -> bool {
        self.checksum == message_checksum(self.kind, self.payload)
    }

    /// Copy out into an owned [`IkcMessage`] (cold paths only).
    pub fn to_owned(&self) -> IkcMessage {
        IkcMessage {
            kind: self.kind,
            payload: Bytes::copy_from_slice(self.payload),
            checksum: self.checksum,
        }
    }
}

/// Management traffic riding the Control kind: liveness heartbeats for
/// proxy-death detection and NACKs for the corruption/retransmit
/// protocol.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ControlMsg {
    /// Linux -> LWK liveness probe for the proxy serving this channel.
    Heartbeat {
        /// Monotone heartbeat number.
        beat: u64,
    },
    /// LWK -> Linux (or reverse) acknowledgment of a heartbeat.
    HeartbeatAck {
        /// Echoed heartbeat number.
        beat: u64,
    },
    /// Receiver saw a checksum mismatch: retransmit offload `seq`.
    Nack {
        /// Sequence number of the corrupted message.
        seq: u64,
    },
    /// Linux announces the proxy died; the LWK must fail over.
    ProxyDead {
        /// Pid of the dead proxy process.
        proxy_pid: u32,
    },
}

impl ControlMsg {
    /// Serialize into `out` (tag byte + one u64 field).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let (tag, val) = match *self {
            ControlMsg::Heartbeat { beat } => (1u8, beat),
            ControlMsg::HeartbeatAck { beat } => (2, beat),
            ControlMsg::Nack { seq } => (3, seq),
            ControlMsg::ProxyDead { proxy_pid } => (4, u64::from(proxy_pid)),
        };
        out.push(tag);
        out.extend_from_slice(&val.to_le_bytes());
    }

    /// Serialize: tag byte + one u64 field.
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(9);
        self.encode_into(&mut v);
        v
    }

    /// Deserialize; `None` on truncation or an unknown tag.
    pub fn decode(b: &[u8]) -> Option<Self> {
        if b.len() != 9 {
            return None;
        }
        let val = u64::from_le_bytes(b[1..9].try_into().ok()?);
        match b[0] {
            1 => Some(ControlMsg::Heartbeat { beat: val }),
            2 => Some(ControlMsg::HeartbeatAck { beat: val }),
            3 => Some(ControlMsg::Nack { seq: val }),
            4 => u32::try_from(val).ok().map(|proxy_pid| ControlMsg::ProxyDead { proxy_pid }),
            _ => None,
        }
    }
}

/// Device-fault resolution request: "McKernel's page fault handler ...
/// requests the IHK module on Linux to resolve the physical address based
/// on the tracking object and the offset in the mapping" (Sec. III-B).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PfnRequest {
    /// Correlates request and reply.
    pub seq: u64,
    /// Tracking-object id.
    pub tracking: u64,
    /// Byte offset within the tracked mapping.
    pub offset: u64,
}

/// Reply carrying the physical address.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PfnReply {
    /// Correlates request and reply.
    pub seq: u64,
    /// Resolved physical address (0 == failure).
    pub phys: u64,
}

impl PfnRequest {
    /// Serialize into `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.tracking.to_le_bytes());
        out.extend_from_slice(&self.offset.to_le_bytes());
    }

    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(24);
        self.encode_into(&mut v);
        v
    }

    /// Deserialize.
    pub fn decode(b: &[u8]) -> Option<Self> {
        if b.len() != 24 {
            return None;
        }
        Some(PfnRequest {
            seq: u64::from_le_bytes(b[0..8].try_into().ok()?),
            tracking: u64::from_le_bytes(b[8..16].try_into().ok()?),
            offset: u64::from_le_bytes(b[16..24].try_into().ok()?),
        })
    }
}

impl PfnReply {
    /// Serialize into `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.phys.to_le_bytes());
    }

    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(16);
        self.encode_into(&mut v);
        v
    }

    /// Deserialize.
    pub fn decode(b: &[u8]) -> Option<Self> {
        if b.len() != 16 {
            return None;
        }
        Some(PfnReply {
            seq: u64::from_le_bytes(b[0..8].try_into().ok()?),
            phys: u64::from_le_bytes(b[8..16].try_into().ok()?),
        })
    }
}

/// Send failure: the bounded queue is full (back-pressure; the sender
/// spins/retries, which the cost model surfaces as delay).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct IkcFull;

/// One ring slot: a reusable wire buffer plus the message header. The
/// buffer's capacity is retained across reuse, so after warm-up the
/// channel performs no allocation at any queue depth.
#[derive(Debug, Default)]
struct Slot {
    kind: Option<MsgKind>,
    checksum: u32,
    buf: Vec<u8>,
}

/// A one-directional bounded FIFO channel: a power-of-two ring of
/// preallocated slots.
///
/// `head`/`tail` are absolute (monotone) positions; the slot index is
/// `pos & mask`. Back-pressure triggers at the *requested* capacity even
/// when the slot count was rounded up to a power of two.
#[derive(Debug)]
pub struct IkcChannel {
    slots: Box<[Slot]>,
    mask: u64,
    capacity: usize,
    /// Next slot to dequeue (absolute position).
    head: u64,
    /// Next slot to enqueue (absolute position).
    tail: u64,
    sent: u64,
    received: u64,
    full_events: u64,
    /// MPK protection key tagging the slot arena, if the kernel armed
    /// intra-kernel domains. A tagged ring may only be touched while
    /// the matching domain is open (the fast paths charge a
    /// `domain_switch` to open it); untagged rings behave as before.
    pkey: Option<u8>,
}

impl IkcChannel {
    /// Channel with the given queue depth. The slot arena is sized to
    /// the next power of two, but back-pressure honors `capacity`
    /// exactly.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        let nslots = capacity.next_power_of_two();
        let slots: Vec<Slot> = (0..nslots).map(|_| Slot::default()).collect();
        IkcChannel {
            slots: slots.into_boxed_slice(),
            mask: (nslots - 1) as u64,
            capacity,
            head: 0,
            tail: 0,
            sent: 0,
            received: 0,
            full_events: 0,
            pkey: None,
        }
    }

    /// Tag the ring's slot arena with an MPK protection key. Idempotent;
    /// retagging with a different key is a bug (two domains cannot own
    /// one arena).
    pub fn set_pkey(&mut self, key: u8) {
        assert!(
            self.pkey.is_none_or(|k| k == key),
            "IKC ring already tagged with a different pkey"
        );
        self.pkey = Some(key);
    }

    /// Protection key tagging this ring, if domains are armed.
    pub fn pkey(&self) -> Option<u8> {
        self.pkey
    }

    /// Default depth used by the stack (and swept by the A6 ablation).
    pub fn default_depth() -> usize {
        64
    }

    #[inline]
    fn full(&mut self) -> bool {
        if (self.tail - self.head) as usize >= self.capacity {
            self.full_events += 1;
            return true;
        }
        false
    }

    /// Enqueue a message whose payload is produced by `fill`, which
    /// writes wire bytes directly into the slot's reusable buffer. The
    /// checksum is computed over that single buffer during the enqueue
    /// (no re-serialization anywhere later). Returns the checksum.
    pub fn send_with(
        &mut self,
        kind: MsgKind,
        fill: impl FnOnce(&mut Vec<u8>),
    ) -> Result<u32, IkcFull> {
        if self.full() {
            return Err(IkcFull);
        }
        let slot = &mut self.slots[(self.tail & self.mask) as usize];
        slot.buf.clear();
        fill(&mut slot.buf);
        let checksum = message_checksum(kind, &slot.buf);
        slot.kind = Some(kind);
        slot.checksum = checksum;
        self.tail += 1;
        self.sent += 1;
        Ok(checksum)
    }

    /// Enqueue pre-encoded wire bytes with a precomputed checksum — the
    /// retransmit path: the sender replays the bytes it already encoded
    /// (and their CRC) without touching the serializer again.
    pub fn send_encoded(
        &mut self,
        kind: MsgKind,
        payload: &[u8],
        checksum: u32,
    ) -> Result<(), IkcFull> {
        if self.full() {
            return Err(IkcFull);
        }
        let slot = &mut self.slots[(self.tail & self.mask) as usize];
        slot.buf.clear();
        slot.buf.extend_from_slice(payload);
        slot.kind = Some(kind);
        slot.checksum = checksum;
        self.tail += 1;
        self.sent += 1;
        Ok(())
    }

    /// Enqueue an owned message (compatibility path; copies the payload
    /// into the slot arena).
    pub fn send(&mut self, msg: IkcMessage) -> Result<(), IkcFull> {
        self.send_encoded(msg.kind, &msg.payload, msg.checksum)
    }

    /// Dequeue the oldest message, borrowing its bytes in place —
    /// nothing is copied or allocated. The borrow must end before the
    /// next channel operation (slot reuse).
    pub fn recv_ref(&mut self) -> Option<WireMsg<'_>> {
        if self.head == self.tail {
            return None;
        }
        let idx = (self.head & self.mask) as usize;
        self.head += 1;
        self.received += 1;
        let slot = &self.slots[idx];
        Some(WireMsg {
            kind: slot.kind.expect("occupied slot has a kind"),
            payload: &slot.buf,
            checksum: slot.checksum,
        })
    }

    /// Dequeue the oldest message as an owned value (compatibility
    /// path; copies the slot bytes out).
    pub fn recv(&mut self) -> Option<IkcMessage> {
        self.recv_ref().map(|m| m.to_owned())
    }

    /// Fault injection: flip one payload bit (chosen by `flip`) of the
    /// most recently enqueued message, leaving its checksum stale —
    /// in-flight corruption the receiver's `verify` must catch. Empty
    /// payloads get a corrupted checksum instead. No-op on an empty
    /// channel.
    pub fn corrupt_newest(&mut self, flip: u64) {
        if self.head == self.tail {
            return;
        }
        let slot = &mut self.slots[((self.tail - 1) & self.mask) as usize];
        if slot.buf.is_empty() {
            slot.checksum ^= 1;
            return;
        }
        let bit = (flip % (slot.buf.len() as u64 * 8)) as usize;
        slot.buf[bit / 8] ^= 1 << (bit % 8);
    }

    /// Messages waiting.
    pub fn len(&self) -> usize {
        (self.tail - self.head) as usize
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.head == self.tail
    }

    /// (sent, received, times-full) counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.sent, self.received, self.full_events)
    }
}

/// The bidirectional channel pair between one LWK and Linux.
#[derive(Debug)]
pub struct IkcPair {
    /// LWK -> Linux direction.
    pub to_linux: IkcChannel,
    /// Linux -> LWK direction.
    pub to_lwk: IkcChannel,
}

impl IkcPair {
    /// Pair with symmetric depth.
    pub fn new(depth: usize) -> Self {
        IkcPair {
            to_linux: IkcChannel::new(depth),
            to_lwk: IkcChannel::new(depth),
        }
    }

    /// Tag both directions with one protection key — the rings are one
    /// shared surface as far as the domain model is concerned.
    pub fn set_pkey(&mut self, key: u8) {
        self.to_linux.set_pkey(key);
        self.to_lwk.set_pkey(key);
    }
}

impl Default for IkcPair {
    fn default() -> Self {
        IkcPair::new(IkcChannel::default_depth())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abi::Sysno;

    #[test]
    fn fifo_order_preserved() {
        let mut ch = IkcChannel::new(8);
        for i in 0..5u64 {
            ch.send(IkcMessage::pfn_request(&PfnRequest {
                seq: i,
                tracking: 1,
                offset: 0,
            }))
            .unwrap();
        }
        for i in 0..5u64 {
            let m = ch.recv().unwrap();
            assert_eq!(m.kind, MsgKind::PfnRequest);
            assert_eq!(PfnRequest::decode(&m.payload).unwrap().seq, i);
        }
        assert!(ch.recv().is_none());
    }

    #[test]
    fn bounded_queue_back_pressures() {
        let mut ch = IkcChannel::new(2);
        let msg = IkcMessage::new(MsgKind::Control, Bytes::new());
        ch.send(msg.clone()).unwrap();
        ch.send(msg.clone()).unwrap();
        assert_eq!(ch.send(msg.clone()), Err(IkcFull));
        assert_eq!(ch.stats(), (2, 0, 1));
        ch.recv().unwrap();
        ch.send(msg).unwrap();
    }

    #[test]
    fn non_power_of_two_capacity_back_pressures_exactly() {
        let mut ch = IkcChannel::new(3);
        let msg = IkcMessage::new(MsgKind::Control, Bytes::new());
        for _ in 0..3 {
            ch.send(msg.clone()).unwrap();
        }
        assert_eq!(ch.send(msg.clone()), Err(IkcFull), "capacity 3, not 4");
        ch.recv().unwrap();
        ch.send(msg).unwrap();
        assert_eq!(ch.len(), 3);
    }

    #[test]
    fn ring_wraps_around_many_times() {
        let mut ch = IkcChannel::new(4);
        for round in 0..100u64 {
            for i in 0..3 {
                ch.send(IkcMessage::pfn_request(&PfnRequest {
                    seq: round * 3 + i,
                    tracking: round,
                    offset: i,
                }))
                .unwrap();
            }
            for i in 0..3 {
                let m = ch.recv().unwrap();
                assert!(m.verify());
                assert_eq!(
                    PfnRequest::decode(&m.payload).unwrap().seq,
                    round * 3 + i
                );
            }
        }
        assert!(ch.is_empty());
        assert_eq!(ch.stats(), (300, 300, 0));
    }

    #[test]
    fn send_with_encodes_once_into_slot() {
        let mut ch = IkcChannel::new(4);
        let req = SyscallRequest {
            seq: 9,
            pid: 1,
            tid: 1,
            sysno: Sysno::Read.nr(),
            args: [1, 2, 3, 4, 5, 6],
        };
        let ck = ch
            .send_with(MsgKind::SyscallRequest, |buf| req.encode_into(buf))
            .unwrap();
        let m = ch.recv_ref().unwrap();
        assert_eq!(m.checksum, ck);
        assert!(m.verify());
        assert_eq!(SyscallRequest::decode(m.payload), Some(req));
    }

    #[test]
    fn send_encoded_replays_bytes_and_checksum() {
        let mut ch = IkcChannel::new(4);
        let rep = SyscallReply { seq: 5, ret: 42 };
        let wire = rep.encode();
        let ck = message_checksum(MsgKind::SyscallReply, &wire);
        // Original plus one retransmit replay — same bytes, same CRC,
        // no re-encode.
        ch.send_encoded(MsgKind::SyscallReply, &wire, ck).unwrap();
        ch.send_encoded(MsgKind::SyscallReply, &wire, ck).unwrap();
        for _ in 0..2 {
            let m = ch.recv_ref().unwrap();
            assert!(m.verify());
            assert_eq!(SyscallReply::decode(m.payload), Some(rep));
        }
    }

    #[test]
    fn corrupt_newest_is_caught_by_verify() {
        let mut ch = IkcChannel::new(4);
        let rep = SyscallReply { seq: 5, ret: 42 };
        ch.send_with(MsgKind::SyscallReply, |b| rep.encode_into(b))
            .unwrap();
        ch.corrupt_newest(13);
        assert!(!ch.recv_ref().unwrap().verify());
        // Empty payloads corrupt through the checksum.
        ch.send_with(MsgKind::Control, |_| {}).unwrap();
        ch.corrupt_newest(0);
        assert!(!ch.recv_ref().unwrap().verify());
        // Corrupting an empty channel is a no-op.
        ch.corrupt_newest(7);
    }

    #[test]
    fn pkey_tagging_is_sticky_and_pairwise() {
        let mut pair = IkcPair::default();
        assert_eq!(pair.to_linux.pkey(), None, "untagged by default");
        pair.set_pkey(1);
        assert_eq!(pair.to_linux.pkey(), Some(1));
        assert_eq!(pair.to_lwk.pkey(), Some(1));
        pair.set_pkey(1); // idempotent retag is fine
    }

    #[test]
    #[should_panic(expected = "already tagged")]
    fn retagging_with_a_different_pkey_is_a_bug() {
        let mut ch = IkcChannel::new(4);
        ch.set_pkey(1);
        ch.set_pkey(2);
    }

    #[test]
    fn syscall_round_trip_through_channel() {
        let mut pair = IkcPair::default();
        let req = SyscallRequest {
            seq: 42,
            pid: 1,
            tid: 2,
            sysno: Sysno::Read.nr(),
            args: [5, 0x1000, 512, 0, 0, 0],
        };
        pair.to_linux.send(IkcMessage::syscall_request(&req)).unwrap();
        let m = pair.to_linux.recv().unwrap();
        assert_eq!(m.kind, MsgKind::SyscallRequest);
        let got = SyscallRequest::decode(&m.payload).unwrap();
        assert_eq!(got, req);
        let rep = SyscallReply { seq: 42, ret: 512 };
        pair.to_lwk.send(IkcMessage::syscall_reply(&rep)).unwrap();
        let m = pair.to_lwk.recv().unwrap();
        assert_eq!(SyscallReply::decode(&m.payload), Some(rep));
    }

    #[test]
    fn checksum_catches_single_bit_flips() {
        let req = SyscallRequest {
            seq: 7,
            pid: 1,
            tid: 1,
            sysno: Sysno::Read.nr(),
            args: [3, 0x2000, 64, 0, 0, 0],
        };
        let msg = IkcMessage::syscall_request(&req);
        assert!(msg.verify());
        for flip in 0..(msg.payload.len() as u64 * 8) {
            assert!(!msg.corrupted(flip).verify(), "bit {flip} undetected");
        }
        // Empty payloads are covered through the checksum itself.
        let ctl = IkcMessage::new(MsgKind::Control, Bytes::new());
        assert!(ctl.verify());
        assert!(!ctl.corrupted(0).verify());
    }

    #[test]
    fn control_messages_round_trip() {
        for msg in [
            ControlMsg::Heartbeat { beat: 3 },
            ControlMsg::HeartbeatAck { beat: 3 },
            ControlMsg::Nack { seq: 99 },
            ControlMsg::ProxyDead { proxy_pid: 500 },
        ] {
            assert_eq!(ControlMsg::decode(&msg.encode()), Some(msg));
            let wrapped = IkcMessage::control(&msg);
            assert!(wrapped.verify());
            assert_eq!(ControlMsg::decode(&wrapped.payload), Some(msg));
        }
        assert_eq!(ControlMsg::decode(&[1, 0, 0]), None);
        assert_eq!(ControlMsg::decode(&[9; 9]), None);
    }

    #[test]
    fn crc32_known_vector() {
        // "123456789" -> 0xCBF43926 is the canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        // Streaming over split input matches the one-shot value.
        let mut c = Crc32::new();
        c.update(b"1234");
        c.update(b"56789");
        assert_eq!(c.finish(), 0xCBF4_3926);
    }

    #[test]
    fn slice_by_8_matches_serial_reference_at_every_length() {
        // Bit-serial CRC-32 reference (no tables). The slice-by-8 loop
        // plus its remainder handling must agree at every length that
        // exercises a different chunk/tail split, and across arbitrary
        // streaming splits.
        fn reference(data: &[u8]) -> u32 {
            let mut crc = !0u32;
            for &b in data {
                crc ^= u32::from(b);
                for _ in 0..8 {
                    crc = if crc & 1 != 0 {
                        0xEDB8_8320 ^ (crc >> 1)
                    } else {
                        crc >> 1
                    };
                }
            }
            !crc
        }
        let data: Vec<u8> = (0..100u32).map(|i| (i.wrapping_mul(37) ^ 0x5A) as u8).collect();
        for len in 0..data.len() {
            assert_eq!(crc32(&data[..len]), reference(&data[..len]), "len {len}");
            // Uneven streaming split must match the one-shot value.
            let split = len / 3;
            let mut c = Crc32::new();
            c.update(&data[..split]);
            c.update(&data[split..len]);
            assert_eq!(c.finish(), crc32(&data[..len]), "split at {split}/{len}");
        }
    }

    #[test]
    fn message_checksum_matches_legacy_concat() {
        // The streaming checksum must equal CRC over tag || payload —
        // the wire format is unchanged.
        let payload = b"some payload bytes";
        let mut concat = vec![MsgKind::PfnReply.tag()];
        concat.extend_from_slice(payload);
        assert_eq!(message_checksum(MsgKind::PfnReply, payload), crc32(&concat));
    }

    #[test]
    fn pfn_messages_round_trip() {
        let req = PfnRequest {
            seq: 9,
            tracking: 3,
            offset: 0x2000,
        };
        assert_eq!(PfnRequest::decode(&req.encode()), Some(req));
        let rep = PfnReply {
            seq: 9,
            phys: 0x10_0000_2000,
        };
        assert_eq!(PfnReply::decode(&rep.encode()), Some(rep));
        assert_eq!(PfnRequest::decode(&[0; 23]), None);
        assert_eq!(PfnReply::decode(&[0; 15]), None);
    }
}
