//! Inter-Kernel Communication: bounded message queues between McKernel and
//! Linux, with typed payloads for syscall delegation and the device-mapping
//! protocol (Fig. 4).

use crate::mck::syscall::{SyscallReply, SyscallRequest};
use bytes::Bytes;
use std::collections::VecDeque;

/// Message discriminator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MsgKind {
    /// LWK -> Linux: offloaded syscall.
    SyscallRequest,
    /// Linux -> LWK: offload result.
    SyscallReply,
    /// LWK -> Linux: resolve a device-mapping page (Fig. 4, step 8).
    PfnRequest,
    /// Linux -> LWK: resolved physical address (Fig. 4, step 10).
    PfnReply,
    /// Management traffic (boot/shutdown handshakes).
    Control,
}

/// One IKC message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IkcMessage {
    /// Payload discriminator.
    pub kind: MsgKind,
    /// Serialized payload.
    pub payload: Bytes,
}

impl IkcMessage {
    /// Wrap a syscall request.
    pub fn syscall_request(req: &SyscallRequest) -> Self {
        IkcMessage {
            kind: MsgKind::SyscallRequest,
            payload: Bytes::from(req.encode()),
        }
    }

    /// Wrap a syscall reply.
    pub fn syscall_reply(rep: &SyscallReply) -> Self {
        IkcMessage {
            kind: MsgKind::SyscallReply,
            payload: Bytes::from(rep.encode()),
        }
    }

    /// Wrap a PFN resolution request.
    pub fn pfn_request(req: &PfnRequest) -> Self {
        IkcMessage {
            kind: MsgKind::PfnRequest,
            payload: Bytes::from(req.encode()),
        }
    }

    /// Wrap a PFN resolution reply.
    pub fn pfn_reply(rep: &PfnReply) -> Self {
        IkcMessage {
            kind: MsgKind::PfnReply,
            payload: Bytes::from(rep.encode()),
        }
    }
}

/// Device-fault resolution request: "McKernel's page fault handler ...
/// requests the IHK module on Linux to resolve the physical address based
/// on the tracking object and the offset in the mapping" (Sec. III-B).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PfnRequest {
    /// Correlates request and reply.
    pub seq: u64,
    /// Tracking-object id.
    pub tracking: u64,
    /// Byte offset within the tracked mapping.
    pub offset: u64,
}

/// Reply carrying the physical address.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PfnReply {
    /// Correlates request and reply.
    pub seq: u64,
    /// Resolved physical address (0 == failure).
    pub phys: u64,
}

impl PfnRequest {
    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(24);
        v.extend_from_slice(&self.seq.to_le_bytes());
        v.extend_from_slice(&self.tracking.to_le_bytes());
        v.extend_from_slice(&self.offset.to_le_bytes());
        v
    }

    /// Deserialize.
    pub fn decode(b: &[u8]) -> Option<Self> {
        if b.len() != 24 {
            return None;
        }
        Some(PfnRequest {
            seq: u64::from_le_bytes(b[0..8].try_into().ok()?),
            tracking: u64::from_le_bytes(b[8..16].try_into().ok()?),
            offset: u64::from_le_bytes(b[16..24].try_into().ok()?),
        })
    }
}

impl PfnReply {
    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(16);
        v.extend_from_slice(&self.seq.to_le_bytes());
        v.extend_from_slice(&self.phys.to_le_bytes());
        v
    }

    /// Deserialize.
    pub fn decode(b: &[u8]) -> Option<Self> {
        if b.len() != 16 {
            return None;
        }
        Some(PfnReply {
            seq: u64::from_le_bytes(b[0..8].try_into().ok()?),
            phys: u64::from_le_bytes(b[8..16].try_into().ok()?),
        })
    }
}

/// Send failure: the bounded queue is full (back-pressure; the sender
/// spins/retries, which the cost model surfaces as delay).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct IkcFull;

/// A one-directional bounded FIFO channel.
#[derive(Debug)]
pub struct IkcChannel {
    queue: VecDeque<IkcMessage>,
    capacity: usize,
    sent: u64,
    received: u64,
    full_events: u64,
}

impl IkcChannel {
    /// Channel with the given queue depth.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        IkcChannel {
            queue: VecDeque::with_capacity(capacity),
            capacity,
            sent: 0,
            received: 0,
            full_events: 0,
        }
    }

    /// Default depth used by the stack (and swept by the A6 ablation).
    pub fn default_depth() -> usize {
        64
    }

    /// Enqueue a message.
    pub fn send(&mut self, msg: IkcMessage) -> Result<(), IkcFull> {
        if self.queue.len() >= self.capacity {
            self.full_events += 1;
            return Err(IkcFull);
        }
        self.queue.push_back(msg);
        self.sent += 1;
        Ok(())
    }

    /// Dequeue the oldest message.
    pub fn recv(&mut self) -> Option<IkcMessage> {
        let m = self.queue.pop_front();
        if m.is_some() {
            self.received += 1;
        }
        m
    }

    /// Messages waiting.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// (sent, received, times-full) counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.sent, self.received, self.full_events)
    }
}

/// The bidirectional channel pair between one LWK and Linux.
#[derive(Debug)]
pub struct IkcPair {
    /// LWK -> Linux direction.
    pub to_linux: IkcChannel,
    /// Linux -> LWK direction.
    pub to_lwk: IkcChannel,
}

impl IkcPair {
    /// Pair with symmetric depth.
    pub fn new(depth: usize) -> Self {
        IkcPair {
            to_linux: IkcChannel::new(depth),
            to_lwk: IkcChannel::new(depth),
        }
    }
}

impl Default for IkcPair {
    fn default() -> Self {
        IkcPair::new(IkcChannel::default_depth())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abi::Sysno;

    #[test]
    fn fifo_order_preserved() {
        let mut ch = IkcChannel::new(8);
        for i in 0..5u64 {
            ch.send(IkcMessage::pfn_request(&PfnRequest {
                seq: i,
                tracking: 1,
                offset: 0,
            }))
            .unwrap();
        }
        for i in 0..5u64 {
            let m = ch.recv().unwrap();
            assert_eq!(m.kind, MsgKind::PfnRequest);
            assert_eq!(PfnRequest::decode(&m.payload).unwrap().seq, i);
        }
        assert!(ch.recv().is_none());
    }

    #[test]
    fn bounded_queue_back_pressures() {
        let mut ch = IkcChannel::new(2);
        let msg = IkcMessage {
            kind: MsgKind::Control,
            payload: Bytes::new(),
        };
        ch.send(msg.clone()).unwrap();
        ch.send(msg.clone()).unwrap();
        assert_eq!(ch.send(msg.clone()), Err(IkcFull));
        assert_eq!(ch.stats(), (2, 0, 1));
        ch.recv().unwrap();
        ch.send(msg).unwrap();
    }

    #[test]
    fn syscall_round_trip_through_channel() {
        let mut pair = IkcPair::default();
        let req = SyscallRequest {
            seq: 42,
            pid: 1,
            tid: 2,
            sysno: Sysno::Read.nr(),
            args: [5, 0x1000, 512, 0, 0, 0],
        };
        pair.to_linux.send(IkcMessage::syscall_request(&req)).unwrap();
        let m = pair.to_linux.recv().unwrap();
        assert_eq!(m.kind, MsgKind::SyscallRequest);
        let got = SyscallRequest::decode(&m.payload).unwrap();
        assert_eq!(got, req);
        let rep = SyscallReply { seq: 42, ret: 512 };
        pair.to_lwk.send(IkcMessage::syscall_reply(&rep)).unwrap();
        let m = pair.to_lwk.recv().unwrap();
        assert_eq!(SyscallReply::decode(&m.payload), Some(rep));
    }

    #[test]
    fn pfn_messages_round_trip() {
        let req = PfnRequest {
            seq: 9,
            tracking: 3,
            offset: 0x2000,
        };
        assert_eq!(PfnRequest::decode(&req.encode()), Some(req));
        let rep = PfnReply {
            seq: 9,
            phys: 0x10_0000_2000,
        };
        assert_eq!(PfnReply::decode(&rep.encode()), Some(rep));
        assert_eq!(PfnRequest::decode(&[0; 23]), None);
        assert_eq!(PfnReply::decode(&[0; 15]), None);
    }
}
