//! Inter-Kernel Communication: bounded message queues between McKernel and
//! Linux, with typed payloads for syscall delegation and the device-mapping
//! protocol (Fig. 4).

use crate::mck::syscall::{SyscallReply, SyscallRequest};
use bytes::Bytes;
use std::collections::VecDeque;

/// Message discriminator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MsgKind {
    /// LWK -> Linux: offloaded syscall.
    SyscallRequest,
    /// Linux -> LWK: offload result.
    SyscallReply,
    /// LWK -> Linux: resolve a device-mapping page (Fig. 4, step 8).
    PfnRequest,
    /// Linux -> LWK: resolved physical address (Fig. 4, step 10).
    PfnReply,
    /// Management traffic (boot/shutdown handshakes).
    Control,
}

impl MsgKind {
    /// Stable wire tag, mixed into the checksum so a corrupted kind
    /// cannot masquerade as a valid message of another kind.
    fn tag(self) -> u8 {
        match self {
            MsgKind::SyscallRequest => 1,
            MsgKind::SyscallReply => 2,
            MsgKind::PfnRequest => 3,
            MsgKind::PfnReply => 4,
            MsgKind::Control => 5,
        }
    }
}

/// CRC-32 (IEEE 802.3 polynomial, reflected). Table-driven; the table
/// is computed at compile time.
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut crc = !0u32;
    for &b in data {
        crc = TABLE[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// One IKC message. The checksum covers the kind tag and the payload;
/// receivers must [`verify`](IkcMessage::verify) before decoding and
/// NACK on mismatch (the fault model flips payload bits in flight).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IkcMessage {
    /// Payload discriminator.
    pub kind: MsgKind,
    /// Serialized payload.
    pub payload: Bytes,
    /// CRC-32 of the kind tag followed by the payload bytes.
    pub checksum: u32,
}

impl IkcMessage {
    /// Build a message with a correct checksum.
    pub fn new(kind: MsgKind, payload: Bytes) -> Self {
        let checksum = Self::compute_checksum(kind, &payload);
        IkcMessage { kind, payload, checksum }
    }

    fn compute_checksum(kind: MsgKind, payload: &[u8]) -> u32 {
        let mut buf = Vec::with_capacity(payload.len() + 1);
        buf.push(kind.tag());
        buf.extend_from_slice(payload);
        crc32(&buf)
    }

    /// True when the checksum matches the payload — the message
    /// survived the channel intact.
    pub fn verify(&self) -> bool {
        self.checksum == Self::compute_checksum(self.kind, &self.payload)
    }

    /// In-flight corruption: returns a copy with one payload bit
    /// flipped (chosen by `flip`) and the checksum left stale, exactly
    /// what a receiver's `verify` must catch. Empty payloads get a
    /// corrupted checksum instead.
    pub fn corrupted(&self, flip: u64) -> Self {
        let mut c = self.clone();
        if self.payload.is_empty() {
            c.checksum ^= 1;
            return c;
        }
        let mut bytes = self.payload.to_vec();
        let bit = (flip % (bytes.len() as u64 * 8)) as usize;
        bytes[bit / 8] ^= 1 << (bit % 8);
        c.payload = Bytes::from(bytes);
        c
    }

    /// Wrap a syscall request.
    pub fn syscall_request(req: &SyscallRequest) -> Self {
        IkcMessage::new(MsgKind::SyscallRequest, Bytes::from(req.encode()))
    }

    /// Wrap a syscall reply.
    pub fn syscall_reply(rep: &SyscallReply) -> Self {
        IkcMessage::new(MsgKind::SyscallReply, Bytes::from(rep.encode()))
    }

    /// Wrap a PFN resolution request.
    pub fn pfn_request(req: &PfnRequest) -> Self {
        IkcMessage::new(MsgKind::PfnRequest, Bytes::from(req.encode()))
    }

    /// Wrap a PFN resolution reply.
    pub fn pfn_reply(rep: &PfnReply) -> Self {
        IkcMessage::new(MsgKind::PfnReply, Bytes::from(rep.encode()))
    }

    /// Wrap a control message.
    pub fn control(msg: &ControlMsg) -> Self {
        IkcMessage::new(MsgKind::Control, Bytes::from(msg.encode()))
    }
}

/// Management traffic riding the Control kind: liveness heartbeats for
/// proxy-death detection and NACKs for the corruption/retransmit
/// protocol.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ControlMsg {
    /// Linux -> LWK liveness probe for the proxy serving this channel.
    Heartbeat {
        /// Monotone heartbeat number.
        beat: u64,
    },
    /// LWK -> Linux (or reverse) acknowledgment of a heartbeat.
    HeartbeatAck {
        /// Echoed heartbeat number.
        beat: u64,
    },
    /// Receiver saw a checksum mismatch: retransmit offload `seq`.
    Nack {
        /// Sequence number of the corrupted message.
        seq: u64,
    },
    /// Linux announces the proxy died; the LWK must fail over.
    ProxyDead {
        /// Pid of the dead proxy process.
        proxy_pid: u32,
    },
}

impl ControlMsg {
    /// Serialize: tag byte + one u64 field.
    pub fn encode(&self) -> Vec<u8> {
        let (tag, val) = match *self {
            ControlMsg::Heartbeat { beat } => (1u8, beat),
            ControlMsg::HeartbeatAck { beat } => (2, beat),
            ControlMsg::Nack { seq } => (3, seq),
            ControlMsg::ProxyDead { proxy_pid } => (4, u64::from(proxy_pid)),
        };
        let mut v = Vec::with_capacity(9);
        v.push(tag);
        v.extend_from_slice(&val.to_le_bytes());
        v
    }

    /// Deserialize; `None` on truncation or an unknown tag.
    pub fn decode(b: &[u8]) -> Option<Self> {
        if b.len() != 9 {
            return None;
        }
        let val = u64::from_le_bytes(b[1..9].try_into().ok()?);
        match b[0] {
            1 => Some(ControlMsg::Heartbeat { beat: val }),
            2 => Some(ControlMsg::HeartbeatAck { beat: val }),
            3 => Some(ControlMsg::Nack { seq: val }),
            4 => u32::try_from(val).ok().map(|proxy_pid| ControlMsg::ProxyDead { proxy_pid }),
            _ => None,
        }
    }
}

/// Device-fault resolution request: "McKernel's page fault handler ...
/// requests the IHK module on Linux to resolve the physical address based
/// on the tracking object and the offset in the mapping" (Sec. III-B).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PfnRequest {
    /// Correlates request and reply.
    pub seq: u64,
    /// Tracking-object id.
    pub tracking: u64,
    /// Byte offset within the tracked mapping.
    pub offset: u64,
}

/// Reply carrying the physical address.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PfnReply {
    /// Correlates request and reply.
    pub seq: u64,
    /// Resolved physical address (0 == failure).
    pub phys: u64,
}

impl PfnRequest {
    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(24);
        v.extend_from_slice(&self.seq.to_le_bytes());
        v.extend_from_slice(&self.tracking.to_le_bytes());
        v.extend_from_slice(&self.offset.to_le_bytes());
        v
    }

    /// Deserialize.
    pub fn decode(b: &[u8]) -> Option<Self> {
        if b.len() != 24 {
            return None;
        }
        Some(PfnRequest {
            seq: u64::from_le_bytes(b[0..8].try_into().ok()?),
            tracking: u64::from_le_bytes(b[8..16].try_into().ok()?),
            offset: u64::from_le_bytes(b[16..24].try_into().ok()?),
        })
    }
}

impl PfnReply {
    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(16);
        v.extend_from_slice(&self.seq.to_le_bytes());
        v.extend_from_slice(&self.phys.to_le_bytes());
        v
    }

    /// Deserialize.
    pub fn decode(b: &[u8]) -> Option<Self> {
        if b.len() != 16 {
            return None;
        }
        Some(PfnReply {
            seq: u64::from_le_bytes(b[0..8].try_into().ok()?),
            phys: u64::from_le_bytes(b[8..16].try_into().ok()?),
        })
    }
}

/// Send failure: the bounded queue is full (back-pressure; the sender
/// spins/retries, which the cost model surfaces as delay).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct IkcFull;

/// A one-directional bounded FIFO channel.
#[derive(Debug)]
pub struct IkcChannel {
    queue: VecDeque<IkcMessage>,
    capacity: usize,
    sent: u64,
    received: u64,
    full_events: u64,
}

impl IkcChannel {
    /// Channel with the given queue depth.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        IkcChannel {
            queue: VecDeque::with_capacity(capacity),
            capacity,
            sent: 0,
            received: 0,
            full_events: 0,
        }
    }

    /// Default depth used by the stack (and swept by the A6 ablation).
    pub fn default_depth() -> usize {
        64
    }

    /// Enqueue a message.
    pub fn send(&mut self, msg: IkcMessage) -> Result<(), IkcFull> {
        if self.queue.len() >= self.capacity {
            self.full_events += 1;
            return Err(IkcFull);
        }
        self.queue.push_back(msg);
        self.sent += 1;
        Ok(())
    }

    /// Dequeue the oldest message.
    pub fn recv(&mut self) -> Option<IkcMessage> {
        let m = self.queue.pop_front();
        if m.is_some() {
            self.received += 1;
        }
        m
    }

    /// Messages waiting.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// (sent, received, times-full) counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.sent, self.received, self.full_events)
    }
}

/// The bidirectional channel pair between one LWK and Linux.
#[derive(Debug)]
pub struct IkcPair {
    /// LWK -> Linux direction.
    pub to_linux: IkcChannel,
    /// Linux -> LWK direction.
    pub to_lwk: IkcChannel,
}

impl IkcPair {
    /// Pair with symmetric depth.
    pub fn new(depth: usize) -> Self {
        IkcPair {
            to_linux: IkcChannel::new(depth),
            to_lwk: IkcChannel::new(depth),
        }
    }
}

impl Default for IkcPair {
    fn default() -> Self {
        IkcPair::new(IkcChannel::default_depth())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abi::Sysno;

    #[test]
    fn fifo_order_preserved() {
        let mut ch = IkcChannel::new(8);
        for i in 0..5u64 {
            ch.send(IkcMessage::pfn_request(&PfnRequest {
                seq: i,
                tracking: 1,
                offset: 0,
            }))
            .unwrap();
        }
        for i in 0..5u64 {
            let m = ch.recv().unwrap();
            assert_eq!(m.kind, MsgKind::PfnRequest);
            assert_eq!(PfnRequest::decode(&m.payload).unwrap().seq, i);
        }
        assert!(ch.recv().is_none());
    }

    #[test]
    fn bounded_queue_back_pressures() {
        let mut ch = IkcChannel::new(2);
        let msg = IkcMessage::new(MsgKind::Control, Bytes::new());
        ch.send(msg.clone()).unwrap();
        ch.send(msg.clone()).unwrap();
        assert_eq!(ch.send(msg.clone()), Err(IkcFull));
        assert_eq!(ch.stats(), (2, 0, 1));
        ch.recv().unwrap();
        ch.send(msg).unwrap();
    }

    #[test]
    fn syscall_round_trip_through_channel() {
        let mut pair = IkcPair::default();
        let req = SyscallRequest {
            seq: 42,
            pid: 1,
            tid: 2,
            sysno: Sysno::Read.nr(),
            args: [5, 0x1000, 512, 0, 0, 0],
        };
        pair.to_linux.send(IkcMessage::syscall_request(&req)).unwrap();
        let m = pair.to_linux.recv().unwrap();
        assert_eq!(m.kind, MsgKind::SyscallRequest);
        let got = SyscallRequest::decode(&m.payload).unwrap();
        assert_eq!(got, req);
        let rep = SyscallReply { seq: 42, ret: 512 };
        pair.to_lwk.send(IkcMessage::syscall_reply(&rep)).unwrap();
        let m = pair.to_lwk.recv().unwrap();
        assert_eq!(SyscallReply::decode(&m.payload), Some(rep));
    }

    #[test]
    fn checksum_catches_single_bit_flips() {
        let req = SyscallRequest {
            seq: 7,
            pid: 1,
            tid: 1,
            sysno: Sysno::Read.nr(),
            args: [3, 0x2000, 64, 0, 0, 0],
        };
        let msg = IkcMessage::syscall_request(&req);
        assert!(msg.verify());
        for flip in 0..(msg.payload.len() as u64 * 8) {
            assert!(!msg.corrupted(flip).verify(), "bit {flip} undetected");
        }
        // Empty payloads are covered through the checksum itself.
        let ctl = IkcMessage::new(MsgKind::Control, Bytes::new());
        assert!(ctl.verify());
        assert!(!ctl.corrupted(0).verify());
    }

    #[test]
    fn control_messages_round_trip() {
        for msg in [
            ControlMsg::Heartbeat { beat: 3 },
            ControlMsg::HeartbeatAck { beat: 3 },
            ControlMsg::Nack { seq: 99 },
            ControlMsg::ProxyDead { proxy_pid: 500 },
        ] {
            assert_eq!(ControlMsg::decode(&msg.encode()), Some(msg));
            let wrapped = IkcMessage::control(&msg);
            assert!(wrapped.verify());
            assert_eq!(ControlMsg::decode(&wrapped.payload), Some(msg));
        }
        assert_eq!(ControlMsg::decode(&[1, 0, 0]), None);
        assert_eq!(ControlMsg::decode(&[9; 9]), None);
    }

    #[test]
    fn crc32_known_vector() {
        // "123456789" -> 0xCBF43926 is the canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn pfn_messages_round_trip() {
        let req = PfnRequest {
            seq: 9,
            tracking: 3,
            offset: 0x2000,
        };
        assert_eq!(PfnRequest::decode(&req.encode()), Some(req));
        let rep = PfnReply {
            seq: 9,
            phys: 0x10_0000_2000,
        };
        assert_eq!(PfnReply::decode(&rep.encode()), Some(rep));
        assert_eq!(PfnRequest::decode(&[0; 23]), None);
        assert_eq!(PfnReply::decode(&[0; 15]), None);
    }
}
