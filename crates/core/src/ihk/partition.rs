//! Dynamic CPU and memory partitioning.
//!
//! IHK reserves CPU cores and physical memory from the running Linux and
//! hands them to an LWK instance; releasing returns them with no host
//! reboot. CPU ownership is tracked here; memory ownership is delegated to
//! [`hwmodel::memory::PhysMemory`]'s frame-owner intervals.

use hwmodel::addr::PhysAddr;
use hwmodel::cpu::{CoreId, NumaId};
use hwmodel::memory::{FrameOwner, PhysMemory};
use std::collections::BTreeSet;

/// Reservation granularity for LWK memory: buddy max block (4 MiB).
pub const MEM_ALIGN: u64 = 4 << 20;

/// Errors from reservation operations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PartitionError {
    /// A requested core is already reserved (or out of range).
    CpuUnavailable(CoreId),
    /// Not enough free contiguous memory in the requested NUMA domain.
    MemUnavailable {
        /// Domain asked for.
        numa: NumaId,
        /// Bytes asked for.
        bytes: u64,
    },
    /// Release of something not reserved.
    NotReserved,
    /// Release of a core that still holds live offload state (an
    /// in-flight delegated syscall). The caller must drain the core —
    /// complete or fail the offload, shoot down its software TLB,
    /// reclaim its delegator slab entries — and clear the busy mark
    /// before the release can succeed. Online resizing depends on this
    /// being a typed error rather than a silent success.
    CoreBusy(CoreId),
}

/// A reserved resource set assigned to one LWK instance.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Partition {
    /// Reserved cores (Linux's scheduler no longer sees these).
    pub cores: Vec<CoreId>,
    /// Reserved physical range base (4 MiB aligned).
    pub mem_base: PhysAddr,
    /// Reserved length in bytes.
    pub mem_len: u64,
}

/// Tracks which cores are carved out of Linux.
#[derive(Debug, Default)]
pub struct CpuRegistry {
    reserved: BTreeSet<CoreId>,
    /// Reserved cores with live offload state: releasing one is a typed
    /// [`PartitionError::CoreBusy`] until the owner drains and clears it.
    busy: BTreeSet<CoreId>,
    total_cores: u16,
}

impl CpuRegistry {
    /// Registry over `total_cores` cores.
    pub fn new(total_cores: u16) -> Self {
        CpuRegistry {
            reserved: BTreeSet::new(),
            busy: BTreeSet::new(),
            total_cores,
        }
    }

    /// Reserve a set of cores; all-or-nothing.
    pub fn reserve(&mut self, cores: &[CoreId]) -> Result<(), PartitionError> {
        for &c in cores {
            if c.0 >= self.total_cores || self.reserved.contains(&c) {
                return Err(PartitionError::CpuUnavailable(c));
            }
        }
        self.reserved.extend(cores.iter().copied());
        Ok(())
    }

    /// Release cores back to Linux; all-or-nothing. A core still marked
    /// busy (live offload state) fails the whole release with
    /// [`PartitionError::CoreBusy`] — nothing is released.
    pub fn release(&mut self, cores: &[CoreId]) -> Result<(), PartitionError> {
        for &c in cores {
            if !self.reserved.contains(&c) {
                return Err(PartitionError::NotReserved);
            }
            if self.busy.contains(&c) {
                return Err(PartitionError::CoreBusy(c));
            }
        }
        for c in cores {
            self.reserved.remove(c);
        }
        Ok(())
    }

    /// Mark a reserved core as holding live offload state. Errors with
    /// [`PartitionError::NotReserved`] for a core Linux still owns
    /// (Linux cores have no offload state to pin).
    pub fn mark_busy(&mut self, core: CoreId) -> Result<(), PartitionError> {
        if !self.reserved.contains(&core) {
            return Err(PartitionError::NotReserved);
        }
        self.busy.insert(core);
        Ok(())
    }

    /// Clear a core's busy mark (offload drained). Idempotent.
    pub fn clear_busy(&mut self, core: CoreId) {
        self.busy.remove(&core);
    }

    /// Whether a core currently holds live offload state.
    pub fn is_busy(&self, core: CoreId) -> bool {
        self.busy.contains(&core)
    }

    /// Whether a core is currently reserved away from Linux.
    pub fn is_reserved(&self, core: CoreId) -> bool {
        self.reserved.contains(&core)
    }

    /// Cores Linux still schedules on.
    pub fn linux_cores(&self) -> Vec<CoreId> {
        (0..self.total_cores)
            .map(CoreId)
            .filter(|c| !self.reserved.contains(c))
            .collect()
    }
}

/// Reserve `bytes` of physically contiguous memory in `numa` (searching
/// top-down so Linux keeps the low range it booted with). Returns the base.
pub fn reserve_memory(
    mem: &mut PhysMemory,
    numa: NumaId,
    bytes: u64,
) -> Result<PhysAddr, PartitionError> {
    let bytes = bytes.div_ceil(MEM_ALIGN) * MEM_ALIGN;
    let (dom_start, dom_end) = mem.numa_range(numa);
    if bytes > dom_end - dom_start {
        return Err(PartitionError::MemUnavailable { numa, bytes });
    }
    // Scan candidate bases top-down at MEM_ALIGN granularity. Ownership is
    // stored as coalesced intervals, so probing the first byte and asking
    // "is the whole candidate inside one Linux-owned interval" is O(log n):
    // owner_of on the base plus a check that no boundary cuts the range.
    let mut base = (dom_end.raw() - bytes) / MEM_ALIGN * MEM_ALIGN;
    loop {
        if base < dom_start.raw() {
            return Err(PartitionError::MemUnavailable { numa, bytes });
        }
        if mem.range_uniformly_owned(PhysAddr(base), bytes, FrameOwner::Linux) {
            mem.set_owner(PhysAddr(base), bytes, FrameOwner::Lwk);
            return Ok(PhysAddr(base));
        }
        if base < MEM_ALIGN {
            return Err(PartitionError::MemUnavailable { numa, bytes });
        }
        base -= MEM_ALIGN;
    }
}

/// Return a reserved range to Linux.
pub fn release_memory(
    mem: &mut PhysMemory,
    base: PhysAddr,
    len: u64,
) -> Result<(), PartitionError> {
    if mem.owner_of(base) != FrameOwner::Lwk {
        return Err(PartitionError::NotReserved);
    }
    mem.set_owner(base, len, FrameOwner::Linux);
    mem.clear_range(base, len);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_reserve_release_cycle() {
        let mut r = CpuRegistry::new(20);
        let lwk: Vec<CoreId> = (10..19).map(CoreId).collect();
        r.reserve(&lwk).unwrap();
        assert!(r.is_reserved(CoreId(10)));
        assert_eq!(r.linux_cores().len(), 11);
        r.release(&lwk).unwrap();
        assert_eq!(r.linux_cores().len(), 20);
    }

    #[test]
    fn cpu_double_reserve_is_atomic_failure() {
        let mut r = CpuRegistry::new(20);
        r.reserve(&[CoreId(5)]).unwrap();
        let err = r.reserve(&[CoreId(4), CoreId(5)]).unwrap_err();
        assert_eq!(err, PartitionError::CpuUnavailable(CoreId(5)));
        // All-or-nothing: CoreId(4) must not have been taken.
        assert!(!r.is_reserved(CoreId(4)));
    }

    #[test]
    fn busy_core_release_is_typed_error() {
        let mut r = CpuRegistry::new(20);
        let lwk: Vec<CoreId> = (10..19).map(CoreId).collect();
        r.reserve(&lwk).unwrap();
        r.mark_busy(CoreId(18)).unwrap();
        assert!(r.is_busy(CoreId(18)));
        // The busy core fails the release with the typed error...
        assert_eq!(
            r.release(&[CoreId(18)]),
            Err(PartitionError::CoreBusy(CoreId(18)))
        );
        // ...and all-or-nothing: a mixed release frees neither core.
        assert_eq!(
            r.release(&[CoreId(17), CoreId(18)]),
            Err(PartitionError::CoreBusy(CoreId(18)))
        );
        assert!(r.is_reserved(CoreId(17)));
        // Drained: the release goes through.
        r.clear_busy(CoreId(18));
        r.release(&[CoreId(17), CoreId(18)]).unwrap();
        assert!(!r.is_reserved(CoreId(18)));
    }

    #[test]
    fn busy_mark_needs_a_reservation() {
        let mut r = CpuRegistry::new(20);
        assert_eq!(r.mark_busy(CoreId(3)), Err(PartitionError::NotReserved));
        r.clear_busy(CoreId(3)); // idempotent no-op on a Linux core
        assert!(!r.is_busy(CoreId(3)));
    }

    #[test]
    fn cpu_out_of_range_rejected() {
        let mut r = CpuRegistry::new(20);
        assert!(r.reserve(&[CoreId(20)]).is_err());
        assert_eq!(r.release(&[CoreId(3)]), Err(PartitionError::NotReserved));
    }

    #[test]
    fn memory_reserved_top_down_in_numa_domain() {
        let mut mem = PhysMemory::new(2 << 30, 2);
        let base = reserve_memory(&mut mem, NumaId(1), 128 << 20).unwrap();
        let (dstart, dend) = mem.numa_range(NumaId(1));
        assert!(base >= dstart && base.raw() + (128 << 20) <= dend.raw());
        assert_eq!(base.raw() + (128 << 20), dend.raw(), "top-down placement");
        assert_eq!(mem.owner_of(base), FrameOwner::Lwk);
        assert_eq!(mem.bytes_owned_by(FrameOwner::Lwk), 128 << 20);
    }

    #[test]
    fn second_reservation_stacks_below() {
        let mut mem = PhysMemory::new(2 << 30, 2);
        let b1 = reserve_memory(&mut mem, NumaId(1), 64 << 20).unwrap();
        let b2 = reserve_memory(&mut mem, NumaId(1), 64 << 20).unwrap();
        assert_eq!(b2.raw() + (64 << 20), b1.raw());
    }

    #[test]
    fn memory_release_returns_to_linux_and_clears() {
        let mut mem = PhysMemory::new(2 << 30, 2);
        let base = reserve_memory(&mut mem, NumaId(0), 64 << 20).unwrap();
        mem.write_u64(base, 0x1234);
        release_memory(&mut mem, base, 64 << 20).unwrap();
        assert_eq!(mem.owner_of(base), FrameOwner::Linux);
        assert_eq!(mem.read_u64(base), 0, "contents dropped on release");
        assert_eq!(
            release_memory(&mut mem, base, 64 << 20),
            Err(PartitionError::NotReserved)
        );
    }

    #[test]
    fn oversize_reservation_fails_cleanly() {
        let mut mem = PhysMemory::new(1 << 30, 2); // 512 MiB per domain
        let before = mem.bytes_owned_by(FrameOwner::Linux);
        assert!(matches!(
            reserve_memory(&mut mem, NumaId(0), 1 << 30),
            Err(PartitionError::MemUnavailable { .. })
        ));
        assert_eq!(mem.bytes_owned_by(FrameOwner::Linux), before);
    }
}
