//! The IHK system-call delegator — a kernel module loaded into Linux
//! ("the latest version of IHK is implemented as a collection of kernel
//! modules without any modifications to the kernel code itself", Sec. II).
//!
//! It owns two pieces of state:
//!
//! * the pending-request table matching offloaded syscalls to the proxy
//!   processes that execute them ("the corresponding proxy process ... is
//!   by default waiting for system call requests through an `ioctl()` call
//!   into IHK's system call delegator kernel module", Sec. III-A);
//! * the **tracking objects** created when a device file is mapped
//!   (Fig. 4, step 3) and consulted on every LWK-side device fault.

use crate::abi::Pid;
use crate::mck::syscall::{SyscallReply, SyscallRequest};
use hwmodel::addr::PhysAddr;
use std::collections::{HashMap, VecDeque};

/// A device-file mapping tracked on the Linux side.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrackingObject {
    /// Id handed back to McKernel.
    pub id: u64,
    /// Owning (McKernel) process.
    pub pid: Pid,
    /// Device file name.
    pub dev_name: String,
    /// Physical base the mapping resolves to (BAR base + file offset).
    pub phys_base: PhysAddr,
    /// Mapping length.
    pub len: u64,
    /// Virtual address of the proxy-side mapping (never touched by the
    /// proxy — "the proxy process on Linux will never access its mapping,
    /// because the proxy process never runs actual application code").
    pub proxy_va: u64,
}

impl TrackingObject {
    /// Resolve a byte offset to a physical address (Fig. 4, step 9).
    pub fn resolve(&self, offset: u64) -> Option<PhysAddr> {
        if offset >= self.len {
            return None;
        }
        Some(self.phys_base + offset)
    }
}

/// Per-proxy delegation state.
#[derive(Debug, Default)]
struct ProxySlot {
    /// Requests waiting for the proxy to pick up via `ioctl()`.
    inbox: VecDeque<SyscallRequest>,
    /// Whether the proxy is parked in the delegator waiting for work.
    parked: bool,
}

/// The delegator module state (one per LWK instance).
#[derive(Debug, Default)]
pub struct Delegator {
    proxies: HashMap<Pid, ProxySlot>,
    /// In-flight requests: seq -> proxy pid.
    in_flight: HashMap<u64, Pid>,
    tracking: HashMap<u64, TrackingObject>,
    next_tracking: u64,
}

/// What the delegator wants done after accepting a request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DispatchAction {
    /// The named proxy was parked in `ioctl()` and must be woken.
    WakeProxy(Pid),
    /// The proxy is busy executing another call; the request queues.
    Queued,
    /// No proxy registered for this pid (protocol error).
    NoProxy,
}

impl Delegator {
    /// Fresh module state.
    pub fn new() -> Self {
        Delegator::default()
    }

    /// Register a proxy process for an application. The proxy immediately
    /// parks waiting for requests.
    pub fn register_proxy(&mut self, proxy_pid: Pid) {
        self.proxies.insert(
            proxy_pid,
            ProxySlot {
                inbox: VecDeque::new(),
                parked: true,
            },
        );
    }

    /// Remove a proxy (application teardown).
    pub fn unregister_proxy(&mut self, proxy_pid: Pid) {
        self.proxies.remove(&proxy_pid);
        self.in_flight.retain(|_, p| *p != proxy_pid);
        self.tracking.retain(|_, t| t.pid != proxy_pid);
    }

    /// IKC interrupt handler: a syscall request arrived from the LWK for
    /// the application served by `proxy_pid`.
    pub fn on_syscall_request(&mut self, proxy_pid: Pid, req: SyscallRequest) -> DispatchAction {
        let Some(slot) = self.proxies.get_mut(&proxy_pid) else {
            return DispatchAction::NoProxy;
        };
        self.in_flight.insert(req.seq, proxy_pid);
        slot.inbox.push_back(req);
        if slot.parked {
            slot.parked = false;
            DispatchAction::WakeProxy(proxy_pid)
        } else {
            DispatchAction::Queued
        }
    }

    /// The proxy's `ioctl()` fetch: take the next request, or park.
    pub fn proxy_fetch(&mut self, proxy_pid: Pid) -> Option<SyscallRequest> {
        let slot = self.proxies.get_mut(&proxy_pid)?;
        match slot.inbox.pop_front() {
            Some(r) => Some(r),
            None => {
                slot.parked = true;
                None
            }
        }
    }

    /// The proxy finished executing a request; build the reply for IKC.
    /// Returns `None` for an unknown sequence number (double completion).
    pub fn complete(&mut self, seq: u64, ret: i64) -> Option<SyscallReply> {
        self.in_flight.remove(&seq)?;
        Some(SyscallReply { seq, ret })
    }

    /// Number of requests not yet completed.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Create a tracking object for a freshly mapped device file
    /// (Fig. 4, step 3). Returns its id.
    pub fn create_tracking(
        &mut self,
        pid: Pid,
        dev_name: &str,
        phys_base: PhysAddr,
        len: u64,
        proxy_va: u64,
    ) -> u64 {
        self.next_tracking += 1;
        let id = self.next_tracking;
        self.tracking.insert(
            id,
            TrackingObject {
                id,
                pid,
                dev_name: dev_name.to_string(),
                phys_base,
                len,
                proxy_va,
            },
        );
        id
    }

    /// Resolve a device fault (Fig. 4, step 9): tracking id + offset to a
    /// physical address.
    pub fn resolve_pfn(&mut self, tracking: u64, offset: u64) -> Option<PhysAddr> {
        self.tracking.get(&tracking)?.resolve(offset)
    }

    /// Tracking object accessor (tests / teardown).
    pub fn tracking(&self, id: u64) -> Option<&TrackingObject> {
        self.tracking.get(&id)
    }

    /// Drop a tracking object (munmap of the device range).
    pub fn drop_tracking(&mut self, id: u64) -> bool {
        self.tracking.remove(&id).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abi::Sysno;

    fn req(seq: u64) -> SyscallRequest {
        SyscallRequest {
            seq,
            pid: 1000,
            tid: 1000,
            sysno: Sysno::Write.nr(),
            args: [0; 6],
        }
    }

    #[test]
    fn parked_proxy_is_woken_once() {
        let mut d = Delegator::new();
        let proxy = Pid(500);
        d.register_proxy(proxy);
        assert_eq!(
            d.on_syscall_request(proxy, req(1)),
            DispatchAction::WakeProxy(proxy)
        );
        // Second request while the first is unfetched: proxy already awake.
        assert_eq!(d.on_syscall_request(proxy, req(2)), DispatchAction::Queued);
        assert_eq!(d.proxy_fetch(proxy).unwrap().seq, 1);
        assert_eq!(d.proxy_fetch(proxy).unwrap().seq, 2);
        // Inbox empty: proxy parks again.
        assert_eq!(d.proxy_fetch(proxy), None);
        assert_eq!(
            d.on_syscall_request(proxy, req(3)),
            DispatchAction::WakeProxy(proxy)
        );
    }

    #[test]
    fn completion_matches_sequence() {
        let mut d = Delegator::new();
        let proxy = Pid(500);
        d.register_proxy(proxy);
        d.on_syscall_request(proxy, req(7));
        assert_eq!(d.in_flight(), 1);
        let rep = d.complete(7, 512).unwrap();
        assert_eq!(rep, SyscallReply { seq: 7, ret: 512 });
        assert_eq!(d.in_flight(), 0);
        assert_eq!(d.complete(7, 512), None, "double completion rejected");
    }

    #[test]
    fn unregistered_proxy_rejected() {
        let mut d = Delegator::new();
        assert_eq!(d.on_syscall_request(Pid(1), req(1)), DispatchAction::NoProxy);
        assert_eq!(d.proxy_fetch(Pid(1)), None);
    }

    #[test]
    fn tracking_object_resolution() {
        let mut d = Delegator::new();
        let id = d.create_tracking(
            Pid(1000),
            "infiniband/uverbs0",
            PhysAddr(0x10_0000_0000),
            0x4000,
            0x7f55_0000_0000,
        );
        assert_eq!(
            d.resolve_pfn(id, 0x2000),
            Some(PhysAddr(0x10_0000_2000))
        );
        assert_eq!(d.resolve_pfn(id, 0x4000), None, "offset past mapping");
        assert_eq!(d.resolve_pfn(id + 1, 0), None, "unknown tracking id");
        assert!(d.drop_tracking(id));
        assert!(!d.drop_tracking(id));
        assert_eq!(d.resolve_pfn(id, 0), None);
    }

    #[test]
    fn unregister_cleans_tracking_and_inflight() {
        let mut d = Delegator::new();
        let proxy = Pid(500);
        d.register_proxy(proxy);
        d.on_syscall_request(proxy, req(1));
        d.create_tracking(proxy, "eth0", PhysAddr(0x10_0000_0000), 0x1000, 0);
        d.unregister_proxy(proxy);
        assert_eq!(d.in_flight(), 0);
        assert_eq!(d.complete(1, 0), None);
    }
}
