//! The IHK system-call delegator — a kernel module loaded into Linux
//! ("the latest version of IHK is implemented as a collection of kernel
//! modules without any modifications to the kernel code itself", Sec. II).
//!
//! It owns two pieces of state:
//!
//! * the pending-request table matching offloaded syscalls to the proxy
//!   processes that execute them ("the corresponding proxy process ... is
//!   by default waiting for system call requests through an `ioctl()` call
//!   into IHK's system call delegator kernel module", Sec. III-A);
//! * the **tracking objects** created when a device file is mapped
//!   (Fig. 4, step 3) and consulted on every LWK-side device fault.
//!
//! Both per-request tables sit on the offload hot path, so they are
//! slabs indexed by the low bits of the sequence number with the full
//! sequence stored as a generation tag — O(1) insert, lookup, and
//! eviction, no hashing and no allocation in steady state. Offload
//! sequence numbers are assigned monotonically per node, so the
//! direct-mapped reply cache degenerates to exactly a sliding window of
//! the last [`COMPLETED_CACHE`] completions; the in-flight slab keeps a
//! (steady-state empty) overflow map so aliased sequence numbers — which
//! only arise in adversarial tests — still behave correctly.

use crate::abi::{Errno, Pid};
use crate::mck::syscall::{SyscallReply, SyscallRequest};
use hwmodel::addr::PhysAddr;
use std::collections::{HashMap, VecDeque};

/// A device-file mapping tracked on the Linux side.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrackingObject {
    /// Id handed back to McKernel.
    pub id: u64,
    /// Owning (McKernel) process.
    pub pid: Pid,
    /// Device file name.
    pub dev_name: String,
    /// Physical base the mapping resolves to (BAR base + file offset).
    pub phys_base: PhysAddr,
    /// Mapping length.
    pub len: u64,
    /// Virtual address of the proxy-side mapping (never touched by the
    /// proxy — "the proxy process on Linux will never access its mapping,
    /// because the proxy process never runs actual application code").
    pub proxy_va: u64,
}

impl TrackingObject {
    /// Resolve a byte offset to a physical address (Fig. 4, step 9).
    /// `None` on out-of-range offsets, including any `phys_base +
    /// offset` that would overflow the physical address space.
    pub fn resolve(&self, offset: u64) -> Option<PhysAddr> {
        if offset >= self.len {
            return None;
        }
        self.phys_base.raw().checked_add(offset).map(PhysAddr)
    }
}

/// Per-proxy delegation state.
#[derive(Debug, Default)]
struct ProxySlot {
    /// Requests waiting for the proxy to pick up via `ioctl()`.
    inbox: VecDeque<SyscallRequest>,
    /// Whether the proxy is parked in the delegator waiting for work.
    parked: bool,
}

/// How many completed replies the delegator remembers for
/// retransmit dedup. A retransmitted request whose original already
/// completed (the *reply* was lost) is answered from this cache
/// instead of being executed a second time. Must be a power of two
/// (slab slot index is `seq & (COMPLETED_CACHE - 1)`).
const COMPLETED_CACHE: usize = 128;

/// In-flight slab slots; same power-of-two indexing.
const IN_FLIGHT_SLOTS: usize = 128;

/// Tag value marking an empty slab slot. Sequence numbers start at 1
/// and could not reach this in any simulated horizon.
const EMPTY: u64 = u64::MAX;

/// Direct-mapped completed-reply cache: slot `seq & mask`, tagged with
/// the full sequence number (the high bits act as the slot's
/// generation). Insertion evicts whatever aliased the slot — O(1), no
/// scan, no allocation. With monotone sequence numbers this holds
/// exactly the last `COMPLETED_CACHE` replies.
#[derive(Debug)]
struct ReplyCache {
    seqs: Box<[u64; COMPLETED_CACHE]>,
    rets: Box<[i64; COMPLETED_CACHE]>,
    live: usize,
}

impl Default for ReplyCache {
    fn default() -> Self {
        ReplyCache {
            seqs: Box::new([EMPTY; COMPLETED_CACHE]),
            rets: Box::new([0; COMPLETED_CACHE]),
            live: 0,
        }
    }
}

impl ReplyCache {
    #[inline]
    fn slot(seq: u64) -> usize {
        (seq as usize) & (COMPLETED_CACHE - 1)
    }

    #[inline]
    fn get(&self, seq: u64) -> Option<SyscallReply> {
        let i = Self::slot(seq);
        (self.seqs[i] == seq).then(|| SyscallReply { seq, ret: self.rets[i] })
    }

    /// O(1) insert-with-eviction.
    #[inline]
    fn insert(&mut self, rep: SyscallReply) {
        let i = Self::slot(rep.seq);
        if self.seqs[i] == EMPTY {
            self.live += 1;
        }
        self.seqs[i] = rep.seq;
        self.rets[i] = rep.ret;
    }

    fn len(&self) -> usize {
        self.live
    }
}

/// In-flight request table: direct-mapped slab (seq-tagged slots) with
/// an overflow map for aliased sequence numbers. Offload seqs are
/// monotone and far fewer than `IN_FLIGHT_SLOTS` are ever concurrently
/// outstanding, so the overflow map stays empty in steady state and
/// every operation is a single array access.
#[derive(Debug)]
struct InFlightSlab {
    seqs: Box<[u64; IN_FLIGHT_SLOTS]>,
    pids: Box<[Pid; IN_FLIGHT_SLOTS]>,
    overflow: HashMap<u64, Pid>,
    live: usize,
}

impl Default for InFlightSlab {
    fn default() -> Self {
        InFlightSlab {
            seqs: Box::new([EMPTY; IN_FLIGHT_SLOTS]),
            pids: Box::new([Pid(0); IN_FLIGHT_SLOTS]),
            overflow: HashMap::new(),
            live: 0,
        }
    }
}

impl InFlightSlab {
    #[inline]
    fn slot(seq: u64) -> usize {
        (seq as usize) & (IN_FLIGHT_SLOTS - 1)
    }

    #[inline]
    fn contains(&self, seq: u64) -> bool {
        self.seqs[Self::slot(seq)] == seq || self.overflow.contains_key(&seq)
    }

    #[inline]
    fn insert(&mut self, seq: u64, pid: Pid) {
        let i = Self::slot(seq);
        if self.seqs[i] == EMPTY || self.seqs[i] == seq {
            self.seqs[i] = seq;
            self.pids[i] = pid;
        } else {
            // Aliased slot (128 seqs apart, both in flight): overflow.
            self.overflow.insert(seq, pid);
        }
        self.live += 1;
    }

    #[inline]
    fn remove(&mut self, seq: u64) -> Option<Pid> {
        let i = Self::slot(seq);
        let pid = if self.seqs[i] == seq {
            self.seqs[i] = EMPTY;
            Some(self.pids[i])
        } else {
            self.overflow.remove(&seq)
        }?;
        self.live -= 1;
        Some(pid)
    }

    fn len(&self) -> usize {
        self.live
    }

    /// Remove every entry owned by `pid`; returns their seqs sorted.
    fn remove_for(&mut self, pid: Pid) -> Vec<u64> {
        let mut stranded = Vec::new();
        for i in 0..IN_FLIGHT_SLOTS {
            if self.seqs[i] != EMPTY && self.pids[i] == pid {
                stranded.push(self.seqs[i]);
                self.seqs[i] = EMPTY;
            }
        }
        self.overflow.retain(|seq, p| {
            if *p == pid {
                stranded.push(*seq);
                false
            } else {
                true
            }
        });
        self.live -= stranded.len();
        stranded.sort_unstable();
        stranded
    }
}

/// The delegator module state (one per LWK instance).
#[derive(Debug, Default)]
pub struct Delegator {
    proxies: HashMap<Pid, ProxySlot>,
    /// In-flight requests: seq -> proxy pid (slab).
    in_flight: InFlightSlab,
    /// Recently completed replies, kept for retransmit dedup (slab).
    completed: ReplyCache,
    tracking: HashMap<u64, TrackingObject>,
    next_tracking: u64,
    /// MPK protection key tagging the in-flight/reply slabs, if the
    /// kernel armed intra-kernel domains. Tagged slabs may only be
    /// touched while the matching domain is open.
    pkey: Option<u8>,
}

/// What the delegator wants done after accepting a request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DispatchAction {
    /// The named proxy was parked in `ioctl()` and must be woken.
    WakeProxy(Pid),
    /// The proxy is busy executing another call; the request queues.
    Queued,
    /// Retransmit of a request that already completed (the reply leg
    /// was lost): resend the cached reply, do **not** re-execute.
    Retransmit(SyscallReply),
    /// Retransmit of a request still executing: ignore it; the reply
    /// of the original execution will answer both.
    DuplicateInFlight,
    /// No proxy registered for this pid (protocol error).
    NoProxy,
}

impl Delegator {
    /// Fresh module state.
    pub fn new() -> Self {
        Delegator::default()
    }

    /// Tag the delegator slabs with an MPK protection key. Idempotent;
    /// retagging with a different key is a bug.
    pub fn set_pkey(&mut self, key: u8) {
        assert!(
            self.pkey.is_none_or(|k| k == key),
            "delegator slabs already tagged with a different pkey"
        );
        self.pkey = Some(key);
    }

    /// Protection key tagging the slabs, if domains are armed.
    pub fn pkey(&self) -> Option<u8> {
        self.pkey
    }

    /// Register a proxy process for an application. The proxy immediately
    /// parks waiting for requests.
    pub fn register_proxy(&mut self, proxy_pid: Pid) {
        self.proxies.insert(
            proxy_pid,
            ProxySlot {
                inbox: VecDeque::new(),
                parked: true,
            },
        );
    }

    /// Remove a proxy (application teardown or proxy death). Every
    /// request still in flight on that proxy is answered with `-EIO` so
    /// the LWK-side waiter unblocks instead of hanging forever; the
    /// replies come back sorted by sequence number for determinism.
    pub fn unregister_proxy(&mut self, proxy_pid: Pid) -> Vec<SyscallReply> {
        self.proxies.remove(&proxy_pid);
        self.tracking.retain(|_, t| t.pid != proxy_pid);
        self.in_flight
            .remove_for(proxy_pid)
            .into_iter()
            .map(|seq| SyscallReply { seq, ret: -(Errno::EIO as i64) })
            .collect()
    }

    /// Drop every tracking object owned by `pid`; returns how many were
    /// reclaimed. Tracking objects are created under the *application*
    /// pid (Fig. 4 step 3), so proxy-death cleanup calls this with the
    /// app's pid after [`unregister_proxy`](Self::unregister_proxy).
    pub fn reclaim_tracking_for(&mut self, pid: Pid) -> usize {
        let before = self.tracking.len();
        self.tracking.retain(|_, t| t.pid != pid);
        before - self.tracking.len()
    }

    /// Number of live tracking objects.
    pub fn tracking_count(&self) -> usize {
        self.tracking.len()
    }

    /// IKC interrupt handler: a syscall request arrived from the LWK for
    /// the application served by `proxy_pid`.
    ///
    /// Retransmits are recognized by sequence number and never executed
    /// twice: a seq still in flight is ignored (the original execution's
    /// reply answers both), and a seq in the completed cache is answered
    /// with the cached reply.
    pub fn on_syscall_request(&mut self, proxy_pid: Pid, req: SyscallRequest) -> DispatchAction {
        if let Some(rep) = self.completed.get(req.seq) {
            return DispatchAction::Retransmit(rep);
        }
        if self.in_flight.contains(req.seq) {
            return DispatchAction::DuplicateInFlight;
        }
        let Some(slot) = self.proxies.get_mut(&proxy_pid) else {
            return DispatchAction::NoProxy;
        };
        self.in_flight.insert(req.seq, proxy_pid);
        slot.inbox.push_back(req);
        if slot.parked {
            slot.parked = false;
            DispatchAction::WakeProxy(proxy_pid)
        } else {
            DispatchAction::Queued
        }
    }

    /// The proxy's `ioctl()` fetch: take the next request, or park.
    pub fn proxy_fetch(&mut self, proxy_pid: Pid) -> Option<SyscallRequest> {
        let slot = self.proxies.get_mut(&proxy_pid)?;
        match slot.inbox.pop_front() {
            Some(r) => Some(r),
            None => {
                slot.parked = true;
                None
            }
        }
    }

    /// The proxy finished executing a request; build the reply for IKC.
    /// Returns `None` for an unknown sequence number (double completion).
    /// The reply is remembered in a bounded cache so a retransmit of the
    /// same request (lost reply) can be answered without re-executing.
    pub fn complete(&mut self, seq: u64, ret: i64) -> Option<SyscallReply> {
        self.in_flight.remove(seq)?;
        let rep = SyscallReply { seq, ret };
        self.completed.insert(rep);
        Some(rep)
    }

    /// Number of requests not yet completed.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Occupancy of the completed-reply cache (bounded by
    /// `COMPLETED_CACHE`; exposed so tests can pin the bound).
    pub fn completed_cache_len(&self) -> usize {
        self.completed.len()
    }

    /// Reclaim the completed-reply slab: drop every cached reply and
    /// return how many were freed. Only legal on a quiesced delegator —
    /// with a request still in flight a retransmit window could still be
    /// open, and dropping its dedup entry would allow a double
    /// execution. The online core-release drain protocol calls this
    /// after proving `in_flight() == 0`.
    pub fn reclaim_completed(&mut self) -> usize {
        assert_eq!(
            self.in_flight.len(),
            0,
            "reply-slab reclaim on a delegator with offloads in flight"
        );
        let n = self.completed.live;
        self.completed.seqs.fill(EMPTY);
        self.completed.live = 0;
        n
    }

    /// Create a tracking object for a freshly mapped device file
    /// (Fig. 4, step 3). Returns its id.
    pub fn create_tracking(
        &mut self,
        pid: Pid,
        dev_name: &str,
        phys_base: PhysAddr,
        len: u64,
        proxy_va: u64,
    ) -> u64 {
        self.next_tracking += 1;
        let id = self.next_tracking;
        self.tracking.insert(
            id,
            TrackingObject {
                id,
                pid,
                dev_name: dev_name.to_string(),
                phys_base,
                len,
                proxy_va,
            },
        );
        id
    }

    /// Resolve a device fault (Fig. 4, step 9): tracking id + offset to a
    /// physical address.
    pub fn resolve_pfn(&mut self, tracking: u64, offset: u64) -> Option<PhysAddr> {
        self.tracking.get(&tracking)?.resolve(offset)
    }

    /// Tracking object accessor (tests / teardown).
    pub fn tracking(&self, id: u64) -> Option<&TrackingObject> {
        self.tracking.get(&id)
    }

    /// Drop a tracking object (munmap of the device range).
    pub fn drop_tracking(&mut self, id: u64) -> bool {
        self.tracking.remove(&id).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abi::Sysno;

    fn req(seq: u64) -> SyscallRequest {
        SyscallRequest {
            seq,
            pid: 1000,
            tid: 1000,
            sysno: Sysno::Write.nr(),
            args: [0; 6],
        }
    }

    #[test]
    fn parked_proxy_is_woken_once() {
        let mut d = Delegator::new();
        let proxy = Pid(500);
        d.register_proxy(proxy);
        assert_eq!(
            d.on_syscall_request(proxy, req(1)),
            DispatchAction::WakeProxy(proxy)
        );
        // Second request while the first is unfetched: proxy already awake.
        assert_eq!(d.on_syscall_request(proxy, req(2)), DispatchAction::Queued);
        assert_eq!(d.proxy_fetch(proxy).unwrap().seq, 1);
        assert_eq!(d.proxy_fetch(proxy).unwrap().seq, 2);
        // Inbox empty: proxy parks again.
        assert_eq!(d.proxy_fetch(proxy), None);
        assert_eq!(
            d.on_syscall_request(proxy, req(3)),
            DispatchAction::WakeProxy(proxy)
        );
    }

    #[test]
    fn completion_matches_sequence() {
        let mut d = Delegator::new();
        let proxy = Pid(500);
        d.register_proxy(proxy);
        d.on_syscall_request(proxy, req(7));
        assert_eq!(d.in_flight(), 1);
        let rep = d.complete(7, 512).unwrap();
        assert_eq!(rep, SyscallReply { seq: 7, ret: 512 });
        assert_eq!(d.in_flight(), 0);
        assert_eq!(d.complete(7, 512), None, "double completion rejected");
    }

    #[test]
    fn unregistered_proxy_rejected() {
        let mut d = Delegator::new();
        assert_eq!(d.on_syscall_request(Pid(1), req(1)), DispatchAction::NoProxy);
        assert_eq!(d.proxy_fetch(Pid(1)), None);
    }

    #[test]
    fn tracking_object_resolution() {
        let mut d = Delegator::new();
        let id = d.create_tracking(
            Pid(1000),
            "infiniband/uverbs0",
            PhysAddr(0x10_0000_0000),
            0x4000,
            0x7f55_0000_0000,
        );
        assert_eq!(
            d.resolve_pfn(id, 0x2000),
            Some(PhysAddr(0x10_0000_2000))
        );
        assert_eq!(d.resolve_pfn(id, 0x4000), None, "offset past mapping");
        assert_eq!(d.resolve_pfn(id + 1, 0), None, "unknown tracking id");
        assert!(d.drop_tracking(id));
        assert!(!d.drop_tracking(id));
        assert_eq!(d.resolve_pfn(id, 0), None);
    }

    #[test]
    fn unregister_cleans_tracking_and_inflight() {
        let mut d = Delegator::new();
        let proxy = Pid(500);
        d.register_proxy(proxy);
        d.on_syscall_request(proxy, req(1));
        d.create_tracking(proxy, "eth0", PhysAddr(0x10_0000_0000), 0x1000, 0);
        d.unregister_proxy(proxy);
        assert_eq!(d.in_flight(), 0);
        assert_eq!(d.complete(1, 0), None);
        assert_eq!(d.tracking_count(), 0);
    }

    #[test]
    fn unregister_answers_stranded_requests_with_eio() {
        let mut d = Delegator::new();
        let proxy = Pid(500);
        d.register_proxy(proxy);
        d.on_syscall_request(proxy, req(3));
        d.on_syscall_request(proxy, req(1));
        d.on_syscall_request(proxy, req(2));
        let replies = d.unregister_proxy(proxy);
        assert_eq!(
            replies,
            vec![
                SyscallReply { seq: 1, ret: -(Errno::EIO as i64) },
                SyscallReply { seq: 2, ret: -(Errno::EIO as i64) },
                SyscallReply { seq: 3, ret: -(Errno::EIO as i64) },
            ],
            "sorted by seq, all -EIO"
        );
        assert_eq!(d.in_flight(), 0);
        // Other proxies' in-flight work is untouched.
        let other = Pid(600);
        d.register_proxy(other);
        d.on_syscall_request(other, req(10));
        assert!(d.unregister_proxy(Pid(999)).is_empty());
        assert_eq!(d.in_flight(), 1);
    }

    #[test]
    fn retransmit_of_inflight_request_is_not_double_executed() {
        let mut d = Delegator::new();
        let proxy = Pid(500);
        d.register_proxy(proxy);
        assert_eq!(
            d.on_syscall_request(proxy, req(5)),
            DispatchAction::WakeProxy(proxy)
        );
        // The retransmit arrives while the original is still in flight.
        assert_eq!(
            d.on_syscall_request(proxy, req(5)),
            DispatchAction::DuplicateInFlight
        );
        // Only one copy in the inbox.
        assert_eq!(d.proxy_fetch(proxy).unwrap().seq, 5);
        assert_eq!(d.proxy_fetch(proxy), None);
    }

    #[test]
    fn retransmit_after_completion_replays_cached_reply() {
        let mut d = Delegator::new();
        let proxy = Pid(500);
        d.register_proxy(proxy);
        d.on_syscall_request(proxy, req(8));
        d.proxy_fetch(proxy);
        let rep = d.complete(8, 4096).unwrap();
        // The reply was lost; the LWK retransmits request 8.
        assert_eq!(
            d.on_syscall_request(proxy, req(8)),
            DispatchAction::Retransmit(rep),
            "cached reply, no second execution"
        );
        assert_eq!(d.in_flight(), 0, "retransmit adds no in-flight entry");
    }

    #[test]
    fn completed_cache_is_bounded() {
        let mut d = Delegator::new();
        let proxy = Pid(500);
        d.register_proxy(proxy);
        let total = (COMPLETED_CACHE + 10) as u64;
        for seq in 0..total {
            d.on_syscall_request(proxy, req(seq));
            d.proxy_fetch(proxy);
            d.complete(seq, 0).unwrap();
        }
        // Oldest entries evicted: a very old retransmit re-executes (it
        // queues as a fresh request), while a recent one replays.
        assert_eq!(d.on_syscall_request(proxy, req(0)), DispatchAction::Queued);
        assert_eq!(d.in_flight(), 1, "evicted seq re-enters in flight");
        assert_eq!(
            d.on_syscall_request(proxy, req(total - 1)),
            DispatchAction::Retransmit(SyscallReply { seq: total - 1, ret: 0 })
        );
    }

    #[test]
    fn completed_cache_bound_pinned_with_o1_eviction() {
        // Pins the slab bound: run 20x the capacity through the cache
        // and check (a) occupancy never exceeds COMPLETED_CACHE, (b) the
        // cache is exactly the sliding window of the most recent
        // COMPLETED_CACHE completions (monotone seqs), i.e. eviction is
        // the O(1) direct-mapped overwrite, not a scan over a shrinking
        // survivor set.
        let mut d = Delegator::new();
        let proxy = Pid(500);
        d.register_proxy(proxy);
        let total = (COMPLETED_CACHE * 20) as u64;
        for seq in 0..total {
            d.on_syscall_request(proxy, req(seq));
            d.proxy_fetch(proxy);
            d.complete(seq, seq as i64).unwrap();
            assert!(d.completed_cache_len() <= COMPLETED_CACHE);
        }
        assert_eq!(d.completed_cache_len(), COMPLETED_CACHE);
        // Every seq in the trailing window replays from cache...
        for seq in (total - COMPLETED_CACHE as u64)..total {
            assert_eq!(
                d.on_syscall_request(proxy, req(seq)),
                DispatchAction::Retransmit(SyscallReply { seq, ret: seq as i64 })
            );
        }
        // ...and everything older was evicted.
        for seq in [0, 1, total - COMPLETED_CACHE as u64 - 1] {
            assert_eq!(d.on_syscall_request(proxy, req(seq)), DispatchAction::Queued);
        }
    }

    #[test]
    fn aliased_inflight_seqs_do_not_collide() {
        // Two seqs 128 apart (same slab slot) in flight at once: the
        // overflow path must keep them distinct.
        let mut d = Delegator::new();
        let proxy = Pid(500);
        d.register_proxy(proxy);
        let (a, b) = (5u64, 5 + IN_FLIGHT_SLOTS as u64);
        d.on_syscall_request(proxy, req(a));
        d.on_syscall_request(proxy, req(b));
        assert_eq!(d.in_flight(), 2);
        assert_eq!(
            d.on_syscall_request(proxy, req(b)),
            DispatchAction::DuplicateInFlight
        );
        assert_eq!(d.complete(a, 1), Some(SyscallReply { seq: a, ret: 1 }));
        assert_eq!(d.complete(b, 2), Some(SyscallReply { seq: b, ret: 2 }));
        assert_eq!(d.in_flight(), 0);
    }

    #[test]
    fn resolve_checked_against_phys_overflow() {
        let t = TrackingObject {
            id: 1,
            pid: Pid(1000),
            dev_name: "uverbs0".into(),
            phys_base: PhysAddr(u64::MAX - 0x100),
            len: 0x1000,
            proxy_va: 0,
        };
        assert_eq!(t.resolve(0x80), Some(PhysAddr(u64::MAX - 0x80)));
        assert_eq!(t.resolve(0x200), None, "phys_base + offset overflows");
        assert_eq!(t.resolve(0x1000), None, "past mapping end");
    }

    #[test]
    fn reclaim_tracking_for_app_pid() {
        let mut d = Delegator::new();
        let app = Pid(1000);
        d.create_tracking(app, "uverbs0", PhysAddr(0x10_0000_0000), 0x1000, 0);
        d.create_tracking(app, "uverbs0", PhysAddr(0x10_0001_0000), 0x1000, 0);
        d.create_tracking(Pid(2000), "eth0", PhysAddr(0x20_0000_0000), 0x1000, 0);
        assert_eq!(d.reclaim_tracking_for(app), 2);
        assert_eq!(d.tracking_count(), 1);
    }
}
