//! LWK lifecycle management: create an OS instance, assign resources,
//! boot McKernel, shut it down, release resources — all dynamically, with
//! no host reboot.

use crate::costs::CostModel;
use crate::ihk::partition::{
    release_memory, reserve_memory, CpuRegistry, Partition, PartitionError,
};
use crate::mck::McKernel;
use hwmodel::cpu::{CoreId, NumaId};
use hwmodel::memory::PhysMemory;

/// Lifecycle state of an OS instance.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OsState {
    /// Created, resources assigned, not booted.
    Assigned,
    /// LWK running.
    Booted,
    /// Shut down; resources released.
    Destroyed,
}

/// One managed LWK instance.
#[derive(Debug)]
pub struct OsInstance {
    /// Instance number (mirrors `/dev/mcos0`, `/dev/mcos1`, ...).
    pub index: u32,
    /// Assigned resources.
    pub partition: Partition,
    /// Lifecycle state.
    pub state: OsState,
}

/// Per-node IHK manager.
#[derive(Debug)]
pub struct IhkManager {
    cpus: CpuRegistry,
    instances: Vec<OsInstance>,
}

impl IhkManager {
    /// Manager for a node with `total_cores` cores.
    pub fn new(total_cores: u16) -> Self {
        IhkManager {
            cpus: CpuRegistry::new(total_cores),
            instances: Vec::new(),
        }
    }

    /// Cores Linux currently schedules on.
    pub fn linux_cores(&self) -> Vec<CoreId> {
        self.cpus.linux_cores()
    }

    /// Whether a core is reserved away from Linux.
    pub fn is_reserved(&self, core: CoreId) -> bool {
        self.cpus.is_reserved(core)
    }

    /// Reserve cores + memory and create an OS instance.
    pub fn create_os(
        &mut self,
        mem: &mut PhysMemory,
        cores: &[CoreId],
        numa: NumaId,
        mem_bytes: u64,
    ) -> Result<u32, PartitionError> {
        self.cpus.reserve(cores)?;
        let mem_base = match reserve_memory(mem, numa, mem_bytes) {
            Ok(b) => b,
            Err(e) => {
                self.cpus.release(cores).expect("just reserved");
                return Err(e);
            }
        };
        let index = self.instances.len() as u32;
        self.instances.push(OsInstance {
            index,
            partition: Partition {
                cores: cores.to_vec(),
                mem_base,
                mem_len: mem_bytes.div_ceil(4 << 20) * (4 << 20),
            },
            state: OsState::Assigned,
        });
        Ok(index)
    }

    /// Boot McKernel on an assigned instance.
    pub fn boot(&mut self, index: u32, costs: CostModel) -> Result<McKernel, PartitionError> {
        let inst = self
            .instances
            .get_mut(index as usize)
            .ok_or(PartitionError::NotReserved)?;
        assert_eq!(inst.state, OsState::Assigned, "boot from wrong state");
        inst.state = OsState::Booted;
        Ok(McKernel::boot(
            inst.partition.cores.clone(),
            inst.partition.mem_base,
            inst.partition.mem_len,
            costs,
        ))
    }

    /// Shut the instance down and return its resources to Linux.
    pub fn destroy(&mut self, index: u32, mem: &mut PhysMemory) -> Result<(), PartitionError> {
        let inst = self
            .instances
            .get_mut(index as usize)
            .ok_or(PartitionError::NotReserved)?;
        assert_ne!(inst.state, OsState::Destroyed, "double destroy");
        release_memory(mem, inst.partition.mem_base, inst.partition.mem_len)?;
        self.cpus.release(&inst.partition.cores)?;
        inst.state = OsState::Destroyed;
        Ok(())
    }

    /// Instance accessor.
    pub fn instance(&self, index: u32) -> Option<&OsInstance> {
        self.instances.get(index as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lwk_cores() -> Vec<CoreId> {
        (10..19).map(CoreId).collect()
    }

    #[test]
    fn full_lifecycle_without_reboot() {
        let mut mem = PhysMemory::new(8 << 30, 2);
        let mut ihk = IhkManager::new(20);
        // Paper configuration: 9 LWK cores in NUMA 1, core 19 left to the
        // proxy, memory from NUMA 1.
        let idx = ihk
            .create_os(&mut mem, &lwk_cores(), NumaId(1), 2 << 30)
            .unwrap();
        assert_eq!(ihk.linux_cores().len(), 11);
        let k = ihk.boot(idx, CostModel::default()).unwrap();
        assert_eq!(k.cores().len(), 9);
        assert_eq!(k.alloc.len_bytes(), 2 << 30);
        // Dynamic release: resources come back with no reboot.
        ihk.destroy(idx, &mut mem).unwrap();
        assert_eq!(ihk.linux_cores().len(), 20);
        // And can be re-reserved immediately (the reinit-between-runs policy).
        let idx2 = ihk
            .create_os(&mut mem, &lwk_cores(), NumaId(1), 2 << 30)
            .unwrap();
        assert_ne!(idx, idx2);
    }

    #[test]
    fn failed_memory_reservation_rolls_back_cpus() {
        let mut mem = PhysMemory::new(2 << 30, 2); // only 1 GiB per domain
        let mut ihk = IhkManager::new(20);
        let err = ihk
            .create_os(&mut mem, &lwk_cores(), NumaId(1), 4 << 30)
            .unwrap_err();
        assert!(matches!(err, PartitionError::MemUnavailable { .. }));
        assert_eq!(ihk.linux_cores().len(), 20, "CPU reservation rolled back");
    }

    #[test]
    fn conflicting_core_sets_rejected() {
        let mut mem = PhysMemory::new(8 << 30, 2);
        let mut ihk = IhkManager::new(20);
        ihk.create_os(&mut mem, &lwk_cores(), NumaId(1), 1 << 30)
            .unwrap();
        let err = ihk
            .create_os(&mut mem, &[CoreId(18), CoreId(19)], NumaId(0), 1 << 30)
            .unwrap_err();
        assert_eq!(err, PartitionError::CpuUnavailable(CoreId(18)));
    }

    #[test]
    fn two_instances_coexist() {
        let mut mem = PhysMemory::new(8 << 30, 2);
        let mut ihk = IhkManager::new(20);
        let a = ihk
            .create_os(&mut mem, &[CoreId(10), CoreId(11)], NumaId(1), 1 << 30)
            .unwrap();
        let b = ihk
            .create_os(&mut mem, &[CoreId(12), CoreId(13)], NumaId(1), 1 << 30)
            .unwrap();
        let ka = ihk.boot(a, CostModel::default()).unwrap();
        let kb = ihk.boot(b, CostModel::default()).unwrap();
        // Disjoint physical ranges.
        assert!(
            ka.alloc.base().raw() + ka.alloc.len_bytes() <= kb.alloc.base().raw()
                || kb.alloc.base().raw() + kb.alloc.len_bytes() <= ka.alloc.base().raw()
        );
        assert_eq!(ihk.linux_cores().len(), 16);
    }
}
