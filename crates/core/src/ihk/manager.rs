//! LWK lifecycle management: create an OS instance, assign resources,
//! boot McKernel, shut it down, release resources — all dynamically, with
//! no host reboot.

use crate::costs::CostModel;
use crate::ihk::partition::{
    release_memory, reserve_memory, CpuRegistry, Partition, PartitionError,
};
use crate::mck::McKernel;
use hwmodel::cpu::{CoreId, NumaId};
use hwmodel::memory::PhysMemory;

/// Lifecycle state of an OS instance.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OsState {
    /// Created, resources assigned, not booted.
    Assigned,
    /// LWK running.
    Booted,
    /// Shut down; resources released.
    Destroyed,
}

/// One managed LWK instance.
#[derive(Debug)]
pub struct OsInstance {
    /// Instance number (mirrors `/dev/mcos0`, `/dev/mcos1`, ...).
    pub index: u32,
    /// Assigned resources.
    pub partition: Partition,
    /// Lifecycle state.
    pub state: OsState,
}

/// Per-node IHK manager.
#[derive(Debug)]
pub struct IhkManager {
    cpus: CpuRegistry,
    instances: Vec<OsInstance>,
}

impl IhkManager {
    /// Manager for a node with `total_cores` cores.
    pub fn new(total_cores: u16) -> Self {
        IhkManager {
            cpus: CpuRegistry::new(total_cores),
            instances: Vec::new(),
        }
    }

    /// Cores Linux currently schedules on.
    pub fn linux_cores(&self) -> Vec<CoreId> {
        self.cpus.linux_cores()
    }

    /// Whether a core is reserved away from Linux.
    pub fn is_reserved(&self, core: CoreId) -> bool {
        self.cpus.is_reserved(core)
    }

    /// Reserve cores + memory and create an OS instance.
    pub fn create_os(
        &mut self,
        mem: &mut PhysMemory,
        cores: &[CoreId],
        numa: NumaId,
        mem_bytes: u64,
    ) -> Result<u32, PartitionError> {
        self.cpus.reserve(cores)?;
        let mem_base = match reserve_memory(mem, numa, mem_bytes) {
            Ok(b) => b,
            Err(e) => {
                self.cpus.release(cores).expect("just reserved");
                return Err(e);
            }
        };
        let index = self.instances.len() as u32;
        self.instances.push(OsInstance {
            index,
            partition: Partition {
                cores: cores.to_vec(),
                mem_base,
                mem_len: mem_bytes.div_ceil(4 << 20) * (4 << 20),
            },
            state: OsState::Assigned,
        });
        Ok(index)
    }

    /// Boot McKernel on an assigned instance.
    pub fn boot(&mut self, index: u32, costs: CostModel) -> Result<McKernel, PartitionError> {
        let inst = self
            .instances
            .get_mut(index as usize)
            .ok_or(PartitionError::NotReserved)?;
        assert_eq!(inst.state, OsState::Assigned, "boot from wrong state");
        inst.state = OsState::Booted;
        Ok(McKernel::boot(
            inst.partition.cores.clone(),
            inst.partition.mem_base,
            inst.partition.mem_len,
            costs,
        ))
    }

    /// Shut the instance down and return its resources to Linux.
    pub fn destroy(&mut self, index: u32, mem: &mut PhysMemory) -> Result<(), PartitionError> {
        let inst = self
            .instances
            .get_mut(index as usize)
            .ok_or(PartitionError::NotReserved)?;
        assert_ne!(inst.state, OsState::Destroyed, "double destroy");
        release_memory(mem, inst.partition.mem_base, inst.partition.mem_len)?;
        self.cpus.release(&inst.partition.cores)?;
        inst.state = OsState::Destroyed;
        Ok(())
    }

    /// Instance accessor.
    pub fn instance(&self, index: u32) -> Option<&OsInstance> {
        self.instances.get(index as usize)
    }

    /// Online expansion: reserve `cores` away from Linux and add them to
    /// a live instance's partition — no reboot, the LWK picks them up
    /// via `McKernel::online_core`. All-or-nothing like `create_os`.
    pub fn grow_os(&mut self, index: u32, cores: &[CoreId]) -> Result<(), PartitionError> {
        let inst = self
            .instances
            .get_mut(index as usize)
            .ok_or(PartitionError::NotReserved)?;
        assert_ne!(inst.state, OsState::Destroyed, "grow of a destroyed instance");
        self.cpus.reserve(cores)?;
        inst.partition.cores.extend_from_slice(cores);
        Ok(())
    }

    /// Online shrink: return `cores` of a live instance to Linux. Each
    /// must belong to the instance ([`PartitionError::NotReserved`]
    /// otherwise) and must have been drained — a core still marked busy
    /// fails the whole shrink with [`PartitionError::CoreBusy`] and
    /// releases nothing. The partition must keep at least one core.
    pub fn shrink_os(&mut self, index: u32, cores: &[CoreId]) -> Result<(), PartitionError> {
        let inst = self
            .instances
            .get_mut(index as usize)
            .ok_or(PartitionError::NotReserved)?;
        assert_ne!(inst.state, OsState::Destroyed, "shrink of a destroyed instance");
        for c in cores {
            if !inst.partition.cores.contains(c) {
                return Err(PartitionError::NotReserved);
            }
        }
        assert!(
            inst.partition.cores.len() > cores.len(),
            "shrink would leave the LWK without cores"
        );
        self.cpus.release(cores)?;
        inst.partition.cores.retain(|c| !cores.contains(c));
        Ok(())
    }

    /// Set or clear the live-offload busy mark on a reserved core (the
    /// node runtime pins cores for the duration of an offload round
    /// trip; a busy core cannot be shrunk out of the partition).
    pub fn set_core_busy(&mut self, core: CoreId, busy: bool) -> Result<(), PartitionError> {
        if busy {
            self.cpus.mark_busy(core)
        } else {
            self.cpus.clear_busy(core);
            Ok(())
        }
    }

    /// Whether a core carries the live-offload busy mark.
    pub fn is_core_busy(&self, core: CoreId) -> bool {
        self.cpus.is_busy(core)
    }
}

/// Liveness tracking for one proxy process via heartbeat `Control`
/// messages over IKC.
///
/// The delegator side sends `Heartbeat { beat }` every
/// [`interval`](HeartbeatMonitor::interval); the proxy answers with
/// `HeartbeatAck`. If [`miss_threshold`](HeartbeatMonitor::miss_threshold)
/// consecutive beats go unanswered the proxy is declared dead, which
/// upper layers turn into `-EIO` replies for stranded offloads, a
/// SIGKILL for the LWK application, and partition reclamation. The
/// detection latency is therefore bounded by
/// `interval * miss_threshold` ([`detection_bound`](HeartbeatMonitor::detection_bound)).
#[derive(Clone, Copy, Debug)]
pub struct HeartbeatMonitor {
    /// Time between heartbeat probes.
    pub interval: simcore::Cycles,
    /// Consecutive unanswered beats that declare death.
    pub miss_threshold: u32,
    next_beat: u64,
    last_acked: u64,
    next_due: simcore::Cycles,
    dead: bool,
}

impl HeartbeatMonitor {
    /// Monitor with the given probe interval and miss threshold.
    pub fn new(interval: simcore::Cycles, miss_threshold: u32) -> Self {
        assert!(miss_threshold >= 1);
        HeartbeatMonitor {
            interval,
            miss_threshold,
            next_beat: 0,
            last_acked: 0,
            next_due: simcore::Cycles::ZERO,
            dead: false,
        }
    }

    /// Default tuning: 100 us probes, 3 misses — death is detected
    /// within 300 us of the proxy's last sign of life.
    pub fn paper_default() -> Self {
        HeartbeatMonitor::new(simcore::Cycles::from_us(100), 3)
    }

    /// Worst-case time from proxy death to detection.
    pub fn detection_bound(&self) -> simcore::Cycles {
        self.interval * u64::from(self.miss_threshold)
    }

    /// If a probe is due at `now`, emit its beat number and schedule
    /// the next one. Declares death when the ack deficit reaches the
    /// threshold.
    pub fn poll(&mut self, now: simcore::Cycles) -> Option<u64> {
        if self.dead || now < self.next_due {
            return None;
        }
        let outstanding = self.next_beat - self.last_acked;
        if outstanding >= u64::from(self.miss_threshold) {
            self.dead = true;
            return None;
        }
        self.next_beat += 1;
        self.next_due = now + self.interval;
        Some(self.next_beat)
    }

    /// Record an ack for `beat` (acks may arrive out of order; only
    /// the newest matters).
    pub fn ack(&mut self, beat: u64) {
        self.last_acked = self.last_acked.max(beat.min(self.next_beat));
    }

    /// True once the miss threshold was reached.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Force the dead state (e.g. Linux reaped the proxy and told us
    /// directly via `ControlMsg::ProxyDead`).
    pub fn mark_dead(&mut self) {
        self.dead = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lwk_cores() -> Vec<CoreId> {
        (10..19).map(CoreId).collect()
    }

    #[test]
    fn full_lifecycle_without_reboot() {
        let mut mem = PhysMemory::new(8 << 30, 2);
        let mut ihk = IhkManager::new(20);
        // Paper configuration: 9 LWK cores in NUMA 1, core 19 left to the
        // proxy, memory from NUMA 1.
        let idx = ihk
            .create_os(&mut mem, &lwk_cores(), NumaId(1), 2 << 30)
            .unwrap();
        assert_eq!(ihk.linux_cores().len(), 11);
        let k = ihk.boot(idx, CostModel::default()).unwrap();
        assert_eq!(k.cores().len(), 9);
        assert_eq!(k.alloc.len_bytes(), 2 << 30);
        // Dynamic release: resources come back with no reboot.
        ihk.destroy(idx, &mut mem).unwrap();
        assert_eq!(ihk.linux_cores().len(), 20);
        // And can be re-reserved immediately (the reinit-between-runs policy).
        let idx2 = ihk
            .create_os(&mut mem, &lwk_cores(), NumaId(1), 2 << 30)
            .unwrap();
        assert_ne!(idx, idx2);
    }

    #[test]
    fn failed_memory_reservation_rolls_back_cpus() {
        let mut mem = PhysMemory::new(2 << 30, 2); // only 1 GiB per domain
        let mut ihk = IhkManager::new(20);
        let err = ihk
            .create_os(&mut mem, &lwk_cores(), NumaId(1), 4 << 30)
            .unwrap_err();
        assert!(matches!(err, PartitionError::MemUnavailable { .. }));
        assert_eq!(ihk.linux_cores().len(), 20, "CPU reservation rolled back");
    }

    #[test]
    fn conflicting_core_sets_rejected() {
        let mut mem = PhysMemory::new(8 << 30, 2);
        let mut ihk = IhkManager::new(20);
        ihk.create_os(&mut mem, &lwk_cores(), NumaId(1), 1 << 30)
            .unwrap();
        let err = ihk
            .create_os(&mut mem, &[CoreId(18), CoreId(19)], NumaId(0), 1 << 30)
            .unwrap_err();
        assert_eq!(err, PartitionError::CpuUnavailable(CoreId(18)));
    }

    #[test]
    fn online_grow_and_shrink_without_reboot() {
        let mut mem = PhysMemory::new(8 << 30, 2);
        let mut ihk = IhkManager::new(20);
        let idx = ihk
            .create_os(&mut mem, &lwk_cores(), NumaId(1), 2 << 30)
            .unwrap();
        ihk.boot(idx, CostModel::default()).unwrap();
        // Shrink a live instance: core 18 goes back to Linux.
        ihk.shrink_os(idx, &[CoreId(18)]).unwrap();
        assert!(!ihk.is_reserved(CoreId(18)));
        assert_eq!(ihk.instance(idx).unwrap().partition.cores.len(), 8);
        assert_eq!(ihk.linux_cores().len(), 12);
        // Grow it back.
        ihk.grow_os(idx, &[CoreId(18)]).unwrap();
        assert!(ihk.is_reserved(CoreId(18)));
        assert_eq!(ihk.instance(idx).unwrap().partition.cores.len(), 9);
        // Shrinking a core the instance does not own is typed.
        assert_eq!(
            ihk.shrink_os(idx, &[CoreId(2)]),
            Err(PartitionError::NotReserved)
        );
        // A busy core blocks the shrink until drained.
        ihk.set_core_busy(CoreId(18), true).unwrap();
        assert_eq!(
            ihk.shrink_os(idx, &[CoreId(18)]),
            Err(PartitionError::CoreBusy(CoreId(18)))
        );
        ihk.set_core_busy(CoreId(18), false).unwrap();
        ihk.shrink_os(idx, &[CoreId(18)]).unwrap();
    }

    #[test]
    fn heartbeat_detects_death_within_bound() {
        use simcore::Cycles;
        let mut hb = HeartbeatMonitor::new(Cycles::from_us(100), 3);
        assert_eq!(hb.detection_bound(), Cycles::from_us(300));
        // Healthy proxy: probe, ack, repeat.
        let mut now = Cycles::ZERO;
        for _ in 0..5 {
            let beat = hb.poll(now).expect("probe due");
            hb.ack(beat);
            now += hb.interval;
        }
        assert!(!hb.is_dead());
        // Proxy dies: probes go unanswered; death within the bound.
        let died_at = now;
        let mut detected_at = None;
        for _ in 0..10 {
            hb.poll(now);
            if hb.is_dead() {
                detected_at = Some(now);
                break;
            }
            now += hb.interval;
        }
        let detected_at = detected_at.expect("death detected");
        assert!(detected_at - died_at <= hb.detection_bound());
    }

    #[test]
    fn heartbeat_not_due_before_interval() {
        use simcore::Cycles;
        let mut hb = HeartbeatMonitor::new(Cycles::from_us(100), 3);
        let b = hb.poll(Cycles::ZERO).expect("first probe fires at 0");
        hb.ack(b);
        assert_eq!(hb.poll(Cycles::from_us(50)), None, "not due yet");
        assert!(hb.poll(Cycles::from_us(100)).is_some());
    }

    #[test]
    fn mark_dead_is_terminal() {
        let mut hb = HeartbeatMonitor::paper_default();
        hb.mark_dead();
        assert!(hb.is_dead());
        assert_eq!(hb.poll(simcore::Cycles::from_secs(1)), None);
    }

    #[test]
    fn two_instances_coexist() {
        let mut mem = PhysMemory::new(8 << 30, 2);
        let mut ihk = IhkManager::new(20);
        let a = ihk
            .create_os(&mut mem, &[CoreId(10), CoreId(11)], NumaId(1), 1 << 30)
            .unwrap();
        let b = ihk
            .create_os(&mut mem, &[CoreId(12), CoreId(13)], NumaId(1), 1 << 30)
            .unwrap();
        let ka = ihk.boot(a, CostModel::default()).unwrap();
        let kb = ihk.boot(b, CostModel::default()).unwrap();
        // Disjoint physical ranges.
        assert!(
            ka.alloc.base().raw() + ka.alloc.len_bytes() <= kb.alloc.base().raw()
                || kb.alloc.base().raw() + kb.alloc.len_bytes() <= ka.alloc.base().raw()
        );
        assert_eq!(ihk.linux_cores().len(), 16);
    }
}
