//! LWK lifecycle management: create an OS instance, assign resources,
//! boot McKernel, shut it down, release resources — all dynamically, with
//! no host reboot.

use crate::costs::CostModel;
use crate::ihk::partition::{
    release_memory, reserve_memory, CpuRegistry, Partition, PartitionError,
};
use crate::mck::McKernel;
use hwmodel::cpu::{CoreId, NumaId};
use hwmodel::memory::PhysMemory;

/// Lifecycle state of an OS instance.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OsState {
    /// Created, resources assigned, not booted.
    Assigned,
    /// LWK running.
    Booted,
    /// Shut down; resources released.
    Destroyed,
}

/// One managed LWK instance.
#[derive(Debug)]
pub struct OsInstance {
    /// Instance number (mirrors `/dev/mcos0`, `/dev/mcos1`, ...).
    pub index: u32,
    /// Assigned resources.
    pub partition: Partition,
    /// Lifecycle state.
    pub state: OsState,
}

/// Per-node IHK manager.
#[derive(Debug)]
pub struct IhkManager {
    cpus: CpuRegistry,
    instances: Vec<OsInstance>,
}

impl IhkManager {
    /// Manager for a node with `total_cores` cores.
    pub fn new(total_cores: u16) -> Self {
        IhkManager {
            cpus: CpuRegistry::new(total_cores),
            instances: Vec::new(),
        }
    }

    /// Cores Linux currently schedules on.
    pub fn linux_cores(&self) -> Vec<CoreId> {
        self.cpus.linux_cores()
    }

    /// Whether a core is reserved away from Linux.
    pub fn is_reserved(&self, core: CoreId) -> bool {
        self.cpus.is_reserved(core)
    }

    /// Reserve cores + memory and create an OS instance.
    pub fn create_os(
        &mut self,
        mem: &mut PhysMemory,
        cores: &[CoreId],
        numa: NumaId,
        mem_bytes: u64,
    ) -> Result<u32, PartitionError> {
        self.cpus.reserve(cores)?;
        let mem_base = match reserve_memory(mem, numa, mem_bytes) {
            Ok(b) => b,
            Err(e) => {
                self.cpus.release(cores).expect("just reserved");
                return Err(e);
            }
        };
        let index = self.instances.len() as u32;
        self.instances.push(OsInstance {
            index,
            partition: Partition {
                cores: cores.to_vec(),
                mem_base,
                mem_len: mem_bytes.div_ceil(4 << 20) * (4 << 20),
            },
            state: OsState::Assigned,
        });
        Ok(index)
    }

    /// Boot McKernel on an assigned instance.
    pub fn boot(&mut self, index: u32, costs: CostModel) -> Result<McKernel, PartitionError> {
        let inst = self
            .instances
            .get_mut(index as usize)
            .ok_or(PartitionError::NotReserved)?;
        assert_eq!(inst.state, OsState::Assigned, "boot from wrong state");
        inst.state = OsState::Booted;
        Ok(McKernel::boot(
            inst.partition.cores.clone(),
            inst.partition.mem_base,
            inst.partition.mem_len,
            costs,
        ))
    }

    /// Shut the instance down and return its resources to Linux.
    pub fn destroy(&mut self, index: u32, mem: &mut PhysMemory) -> Result<(), PartitionError> {
        let inst = self
            .instances
            .get_mut(index as usize)
            .ok_or(PartitionError::NotReserved)?;
        assert_ne!(inst.state, OsState::Destroyed, "double destroy");
        release_memory(mem, inst.partition.mem_base, inst.partition.mem_len)?;
        self.cpus.release(&inst.partition.cores)?;
        inst.state = OsState::Destroyed;
        Ok(())
    }

    /// Instance accessor.
    pub fn instance(&self, index: u32) -> Option<&OsInstance> {
        self.instances.get(index as usize)
    }
}

/// Liveness tracking for one proxy process via heartbeat `Control`
/// messages over IKC.
///
/// The delegator side sends `Heartbeat { beat }` every
/// [`interval`](HeartbeatMonitor::interval); the proxy answers with
/// `HeartbeatAck`. If [`miss_threshold`](HeartbeatMonitor::miss_threshold)
/// consecutive beats go unanswered the proxy is declared dead, which
/// upper layers turn into `-EIO` replies for stranded offloads, a
/// SIGKILL for the LWK application, and partition reclamation. The
/// detection latency is therefore bounded by
/// `interval * miss_threshold` ([`detection_bound`](HeartbeatMonitor::detection_bound)).
#[derive(Clone, Copy, Debug)]
pub struct HeartbeatMonitor {
    /// Time between heartbeat probes.
    pub interval: simcore::Cycles,
    /// Consecutive unanswered beats that declare death.
    pub miss_threshold: u32,
    next_beat: u64,
    last_acked: u64,
    next_due: simcore::Cycles,
    dead: bool,
}

impl HeartbeatMonitor {
    /// Monitor with the given probe interval and miss threshold.
    pub fn new(interval: simcore::Cycles, miss_threshold: u32) -> Self {
        assert!(miss_threshold >= 1);
        HeartbeatMonitor {
            interval,
            miss_threshold,
            next_beat: 0,
            last_acked: 0,
            next_due: simcore::Cycles::ZERO,
            dead: false,
        }
    }

    /// Default tuning: 100 us probes, 3 misses — death is detected
    /// within 300 us of the proxy's last sign of life.
    pub fn paper_default() -> Self {
        HeartbeatMonitor::new(simcore::Cycles::from_us(100), 3)
    }

    /// Worst-case time from proxy death to detection.
    pub fn detection_bound(&self) -> simcore::Cycles {
        self.interval * u64::from(self.miss_threshold)
    }

    /// If a probe is due at `now`, emit its beat number and schedule
    /// the next one. Declares death when the ack deficit reaches the
    /// threshold.
    pub fn poll(&mut self, now: simcore::Cycles) -> Option<u64> {
        if self.dead || now < self.next_due {
            return None;
        }
        let outstanding = self.next_beat - self.last_acked;
        if outstanding >= u64::from(self.miss_threshold) {
            self.dead = true;
            return None;
        }
        self.next_beat += 1;
        self.next_due = now + self.interval;
        Some(self.next_beat)
    }

    /// Record an ack for `beat` (acks may arrive out of order; only
    /// the newest matters).
    pub fn ack(&mut self, beat: u64) {
        self.last_acked = self.last_acked.max(beat.min(self.next_beat));
    }

    /// True once the miss threshold was reached.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Force the dead state (e.g. Linux reaped the proxy and told us
    /// directly via `ControlMsg::ProxyDead`).
    pub fn mark_dead(&mut self) {
        self.dead = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lwk_cores() -> Vec<CoreId> {
        (10..19).map(CoreId).collect()
    }

    #[test]
    fn full_lifecycle_without_reboot() {
        let mut mem = PhysMemory::new(8 << 30, 2);
        let mut ihk = IhkManager::new(20);
        // Paper configuration: 9 LWK cores in NUMA 1, core 19 left to the
        // proxy, memory from NUMA 1.
        let idx = ihk
            .create_os(&mut mem, &lwk_cores(), NumaId(1), 2 << 30)
            .unwrap();
        assert_eq!(ihk.linux_cores().len(), 11);
        let k = ihk.boot(idx, CostModel::default()).unwrap();
        assert_eq!(k.cores().len(), 9);
        assert_eq!(k.alloc.len_bytes(), 2 << 30);
        // Dynamic release: resources come back with no reboot.
        ihk.destroy(idx, &mut mem).unwrap();
        assert_eq!(ihk.linux_cores().len(), 20);
        // And can be re-reserved immediately (the reinit-between-runs policy).
        let idx2 = ihk
            .create_os(&mut mem, &lwk_cores(), NumaId(1), 2 << 30)
            .unwrap();
        assert_ne!(idx, idx2);
    }

    #[test]
    fn failed_memory_reservation_rolls_back_cpus() {
        let mut mem = PhysMemory::new(2 << 30, 2); // only 1 GiB per domain
        let mut ihk = IhkManager::new(20);
        let err = ihk
            .create_os(&mut mem, &lwk_cores(), NumaId(1), 4 << 30)
            .unwrap_err();
        assert!(matches!(err, PartitionError::MemUnavailable { .. }));
        assert_eq!(ihk.linux_cores().len(), 20, "CPU reservation rolled back");
    }

    #[test]
    fn conflicting_core_sets_rejected() {
        let mut mem = PhysMemory::new(8 << 30, 2);
        let mut ihk = IhkManager::new(20);
        ihk.create_os(&mut mem, &lwk_cores(), NumaId(1), 1 << 30)
            .unwrap();
        let err = ihk
            .create_os(&mut mem, &[CoreId(18), CoreId(19)], NumaId(0), 1 << 30)
            .unwrap_err();
        assert_eq!(err, PartitionError::CpuUnavailable(CoreId(18)));
    }

    #[test]
    fn heartbeat_detects_death_within_bound() {
        use simcore::Cycles;
        let mut hb = HeartbeatMonitor::new(Cycles::from_us(100), 3);
        assert_eq!(hb.detection_bound(), Cycles::from_us(300));
        // Healthy proxy: probe, ack, repeat.
        let mut now = Cycles::ZERO;
        for _ in 0..5 {
            let beat = hb.poll(now).expect("probe due");
            hb.ack(beat);
            now += hb.interval;
        }
        assert!(!hb.is_dead());
        // Proxy dies: probes go unanswered; death within the bound.
        let died_at = now;
        let mut detected_at = None;
        for _ in 0..10 {
            hb.poll(now);
            if hb.is_dead() {
                detected_at = Some(now);
                break;
            }
            now += hb.interval;
        }
        let detected_at = detected_at.expect("death detected");
        assert!(detected_at - died_at <= hb.detection_bound());
    }

    #[test]
    fn heartbeat_not_due_before_interval() {
        use simcore::Cycles;
        let mut hb = HeartbeatMonitor::new(Cycles::from_us(100), 3);
        let b = hb.poll(Cycles::ZERO).expect("first probe fires at 0");
        hb.ack(b);
        assert_eq!(hb.poll(Cycles::from_us(50)), None, "not due yet");
        assert!(hb.poll(Cycles::from_us(100)).is_some());
    }

    #[test]
    fn mark_dead_is_terminal() {
        let mut hb = HeartbeatMonitor::paper_default();
        hb.mark_dead();
        assert!(hb.is_dead());
        assert_eq!(hb.poll(simcore::Cycles::from_secs(1)), None);
    }

    #[test]
    fn two_instances_coexist() {
        let mut mem = PhysMemory::new(8 << 30, 2);
        let mut ihk = IhkManager::new(20);
        let a = ihk
            .create_os(&mut mem, &[CoreId(10), CoreId(11)], NumaId(1), 1 << 30)
            .unwrap();
        let b = ihk
            .create_os(&mut mem, &[CoreId(12), CoreId(13)], NumaId(1), 1 << 30)
            .unwrap();
        let ka = ihk.boot(a, CostModel::default()).unwrap();
        let kb = ihk.boot(b, CostModel::default()).unwrap();
        // Disjoint physical ranges.
        assert!(
            ka.alloc.base().raw() + ka.alloc.len_bytes() <= kb.alloc.base().raw()
                || kb.alloc.base().raw() + kb.alloc.len_bytes() <= ka.alloc.base().raw()
        );
        assert_eq!(ihk.linux_cores().len(), 16);
    }
}
