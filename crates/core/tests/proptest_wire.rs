//! Property tests for the IKC wire formats: decoders must be total
//! (never panic, whatever bytes arrive off the channel), round trips
//! must be lossless, and the message checksum must catch every injected
//! single-bit corruption.

use hlwk_core::ihk::ikc::{ControlMsg, IkcMessage, MsgKind, PfnReply, PfnRequest};
use hlwk_core::mck::syscall::{SyscallReply, SyscallRequest};
use proptest::prelude::*;

/// Arbitrary byte blobs around the interesting sizes (empty, one off the
/// wire sizes, way oversized).
fn wire_bytes() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..=255u8, 0..96)
}

fn syscall_request() -> impl Strategy<Value = SyscallRequest> {
    (
        0u64..u64::MAX,
        0u32..u32::MAX,
        0u32..u32::MAX,
        0u32..512,
        (0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX),
    )
        .prop_map(|(seq, pid, tid, sysno, (a, b, c))| SyscallRequest {
            seq,
            pid,
            tid,
            sysno,
            args: [a, b, c, a ^ b, b ^ c, c ^ a],
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// No decoder panics on arbitrary input; they return `None` or a
    /// value, never abort. (The offload path feeds them bytes straight
    /// off a channel the fault model corrupts.)
    #[test]
    fn decoders_are_total(bytes in wire_bytes()) {
        let _ = SyscallRequest::decode(&bytes);
        let _ = SyscallReply::decode(&bytes);
        let _ = PfnRequest::decode(&bytes);
        let _ = PfnReply::decode(&bytes);
        let _ = ControlMsg::decode(&bytes);
    }

    /// Wrong-length input is always rejected, and exact-length garbage
    /// decodes to *something* for the header-less fixed layouts rather
    /// than panicking.
    #[test]
    fn decoders_reject_wrong_lengths(bytes in wire_bytes()) {
        if bytes.len() != SyscallRequest::WIRE_SIZE {
            prop_assert!(SyscallRequest::decode(&bytes).is_none());
        }
        if bytes.len() != SyscallReply::WIRE_SIZE {
            prop_assert!(SyscallReply::decode(&bytes).is_none());
        }
        if bytes.len() != 24 {
            prop_assert!(PfnRequest::decode(&bytes).is_none());
        }
        if bytes.len() != 16 {
            prop_assert!(PfnReply::decode(&bytes).is_none());
        }
        if bytes.len() != 9 {
            prop_assert!(ControlMsg::decode(&bytes).is_none());
        }
    }

    /// encode -> decode is the identity for syscall requests.
    #[test]
    fn syscall_request_round_trips(req in syscall_request()) {
        prop_assert_eq!(SyscallRequest::decode(&req.encode()), Some(req));
    }

    /// encode -> decode is the identity for replies / PFN traffic.
    #[test]
    fn small_messages_round_trip(seq in 0u64..u64::MAX, val in 0u64..u64::MAX) {
        let rep = SyscallReply { seq, ret: val as i64 };
        prop_assert_eq!(SyscallReply::decode(&rep.encode()), Some(rep));
        let preq = PfnRequest { seq, tracking: val, offset: seq ^ val };
        prop_assert_eq!(PfnRequest::decode(&preq.encode()), Some(preq));
        let prep = PfnReply { seq, phys: val };
        prop_assert_eq!(PfnReply::decode(&prep.encode()), Some(prep));
    }

    /// encode -> decode is the identity for every control message.
    #[test]
    fn control_messages_round_trip(val in 0u64..u64::MAX, pid in 0u32..u32::MAX) {
        for msg in [
            ControlMsg::Heartbeat { beat: val },
            ControlMsg::HeartbeatAck { beat: val },
            ControlMsg::Nack { seq: val },
            ControlMsg::ProxyDead { proxy_pid: pid },
        ] {
            prop_assert_eq!(ControlMsg::decode(&msg.encode()), Some(msg));
        }
    }

    /// encode -> corrupt -> verify: the CRC catches every injected
    /// corruption, for every message kind, at every flip position.
    #[test]
    fn corruption_is_always_detected(req in syscall_request(), flip in 0u64..u64::MAX) {
        let messages = [
            IkcMessage::syscall_request(&req),
            IkcMessage::syscall_reply(&SyscallReply { seq: req.seq, ret: req.args[0] as i64 }),
            IkcMessage::pfn_request(&PfnRequest {
                seq: req.seq,
                tracking: req.args[1],
                offset: req.args[2],
            }),
            IkcMessage::pfn_reply(&PfnReply { seq: req.seq, phys: req.args[3] }),
            IkcMessage::control(&ControlMsg::Nack { seq: req.seq }),
        ];
        for msg in messages {
            prop_assert!(msg.verify(), "pristine message must verify");
            let bad = msg.corrupted(flip);
            prop_assert!(!bad.verify(), "corruption must be detected");
        }
    }

    /// A corrupted kind tag cannot masquerade as a valid message of
    /// another kind: the tag is part of the checksummed bytes.
    #[test]
    fn kind_is_covered_by_the_checksum(seq in 0u64..u64::MAX) {
        let rep = SyscallReply { seq, ret: 0 };
        let msg = IkcMessage::syscall_reply(&rep);
        let forged = IkcMessage {
            kind: MsgKind::PfnReply,
            payload: msg.payload.clone(),
            checksum: msg.checksum,
        };
        prop_assert!(!forged.verify());
    }
}
