//! Property tests for the VMA layer and the unified address space,
//! checked against reference models under random operation sequences.

use hlwk_core::costs::CostModel;
use hlwk_core::mck::mem::pagetable::{PageTable, PteFlags};
use hlwk_core::mck::mem::vm::{VmSpace, VmaKind, EXCLUDED_END, EXCLUDED_START};
use hlwk_core::proxy::unified::UnifiedAddressSpace;
use hwmodel::addr::{PhysAddr, VirtAddr, PAGE_SIZE};
use hwmodel::memory::PhysMemory;
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Clone, Debug)]
enum VmOp {
    Mmap { pages: u64 },
    MmapFixed { slot: u8, pages: u64 },
    Munmap { slot: u8, off_pages: u64, pages: u64 },
    Query { addr_page: u64 },
}

fn vm_ops() -> impl Strategy<Value = Vec<VmOp>> {
    prop::collection::vec(
        prop_oneof![
            (1u64..64).prop_map(|pages| VmOp::Mmap { pages }),
            (0u8..16, 1u64..32).prop_map(|(slot, pages)| VmOp::MmapFixed { slot, pages }),
            (0u8..16, 0u64..8, 1u64..40)
                .prop_map(|(slot, off_pages, pages)| VmOp::Munmap { slot, off_pages, pages }),
            (0u64..2048).prop_map(|addr_page| VmOp::Query { addr_page }),
        ],
        1..120,
    )
}

/// Fixed-slot base addresses spaced widely apart.
fn slot_base(slot: u8) -> u64 {
    0x7000_0000 + u64::from(slot) * 0x100_0000
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]
    /// The VMA tree agrees with a flat page-granular reference model:
    /// mapped pages match exactly, VMAs never overlap, and the excluded
    /// proxy window is never covered.
    #[test]
    fn vmspace_matches_reference(ops in vm_ops()) {
        let mut vs = VmSpace::new(true);
        // Reference: page number -> mapped?
        let mut model: BTreeMap<u64, bool> = BTreeMap::new();
        for op in ops {
            match op {
                VmOp::Mmap { pages } => {
                    let len = pages * PAGE_SIZE;
                    if let Ok(va) = vs.mmap(len, VmaKind::Anon { large_ok: false }, true, None) {
                        for p in 0..pages {
                            let page = (va.raw() + p * PAGE_SIZE) / PAGE_SIZE;
                            prop_assert!(
                                model.insert(page, true).is_none(),
                                "allocator returned an overlapping range"
                            );
                        }
                        prop_assert!(
                            va.raw() + len <= EXCLUDED_START || va.raw() >= EXCLUDED_END,
                            "mapping enters the excluded window"
                        );
                    }
                }
                VmOp::MmapFixed { slot, pages } => {
                    let base = slot_base(slot);
                    let len = pages * PAGE_SIZE;
                    let overlap = (0..pages)
                        .any(|p| model.contains_key(&((base + p * PAGE_SIZE) / PAGE_SIZE)));
                    let r = vs.mmap(
                        len,
                        VmaKind::Anon { large_ok: false },
                        true,
                        Some(VirtAddr(base)),
                    );
                    if overlap {
                        prop_assert!(r.is_err(), "fixed mmap over existing range must fail");
                    } else {
                        prop_assert!(r.is_ok());
                        for p in 0..pages {
                            model.insert((base + p * PAGE_SIZE) / PAGE_SIZE, true);
                        }
                    }
                }
                VmOp::Munmap { slot, off_pages, pages } => {
                    let start = slot_base(slot) + off_pages * PAGE_SIZE;
                    let removed = vs
                        .munmap(VirtAddr(start), pages * PAGE_SIZE)
                        .expect("aligned munmap never errors");
                    // Model removal.
                    let mut model_removed = 0u64;
                    for p in 0..pages {
                        if model.remove(&((start + p * PAGE_SIZE) / PAGE_SIZE)).is_some() {
                            model_removed += 1;
                        }
                    }
                    let vm_removed: u64 =
                        removed.iter().map(|v| v.len() / PAGE_SIZE).sum();
                    prop_assert_eq!(vm_removed, model_removed);
                }
                VmOp::Query { addr_page } => {
                    let va = VirtAddr(0x7000_0000 + addr_page * PAGE_SIZE);
                    prop_assert_eq!(
                        vs.vma_at(va).is_some(),
                        model.contains_key(&(va.raw() / PAGE_SIZE)),
                        "vma_at disagrees with model at {:?}", va
                    );
                }
            }
            // Global invariant: total mapped bytes agree.
            prop_assert_eq!(vs.mapped_bytes(), model.len() as u64 * PAGE_SIZE);
        }
    }
}

#[derive(Clone, Debug)]
enum UasOp {
    MapPage { slot: u16 },
    WriteApp { slot: u16, val: u8 },
    ProxyRead { slot: u16 },
    RemapPage { slot: u16 },
}

fn uas_ops() -> impl Strategy<Value = Vec<UasOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u16..24).prop_map(|slot| UasOp::MapPage { slot }),
            (0u16..24, 1u8..255).prop_map(|(slot, val)| UasOp::WriteApp { slot, val }),
            (0u16..24).prop_map(|slot| UasOp::ProxyRead { slot }),
            (0u16..24).prop_map(|slot| UasOp::RemapPage { slot }),
        ],
        1..150,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]
    /// The unified-address-space coherence property: whatever the app's
    /// memory holds, a proxy read through the pseudo mapping returns it —
    /// across arbitrary interleavings of mapping, writing, reading, and
    /// remapping (with invalidation).
    #[test]
    fn proxy_always_sees_app_bytes(ops in uas_ops()) {
        let mut pt = PageTable::new();
        let mut mem = PhysMemory::new(64 << 20, 1);
        let mut uas = UnifiedAddressSpace::new();
        let costs = CostModel::default();
        // Model: slot -> expected byte (if mapped).
        let mut expected: BTreeMap<u16, u8> = BTreeMap::new();
        let mut mapped: BTreeMap<u16, PhysAddr> = BTreeMap::new();
        let mut next_frame = 0x10_0000u64;
        let va_of = |slot: u16| VirtAddr(0x100_0000 + u64::from(slot) * PAGE_SIZE);
        for op in ops {
            match op {
                UasOp::MapPage { slot } => {
                    if let std::collections::btree_map::Entry::Vacant(e) = mapped.entry(slot) {
                        let pa = PhysAddr(next_frame);
                        next_frame += PAGE_SIZE;
                        pt.map_4k(va_of(slot), pa, PteFlags::rw()).expect("fresh");
                        e.insert(pa);
                        expected.insert(slot, 0);
                    }
                }
                UasOp::WriteApp { slot, val } => {
                    if let Some(&pa) = mapped.get(&slot) {
                        // The app writes through its own translation.
                        mem.write(pa, &[val]);
                        expected.insert(slot, val);
                    }
                }
                UasOp::ProxyRead { slot } => {
                    let mut buf = [0xEEu8; 1];
                    let r = uas.read(va_of(slot), &mut buf, &pt, &mem, &costs);
                    match expected.get(&slot) {
                        Some(&want) => {
                            prop_assert!(r.is_ok());
                            prop_assert_eq!(buf[0], want, "slot {} stale", slot);
                        }
                        None => prop_assert!(r.is_err(), "unmapped slot must fault"),
                    }
                }
                UasOp::RemapPage { slot } => {
                    if let std::collections::btree_map::Entry::Occupied(mut e) = mapped.entry(slot) {
                        // McKernel moves the page to a fresh frame and
                        // synchronizes the pseudo mapping (munmap sync).
                        pt.unmap(va_of(slot)).expect("was mapped");
                        let pa = PhysAddr(next_frame);
                        next_frame += PAGE_SIZE;
                        pt.map_4k(va_of(slot), pa, PteFlags::rw()).expect("fresh");
                        uas.invalidate_range(va_of(slot), PAGE_SIZE);
                        e.insert(pa);
                        expected.insert(slot, 0); // new frame reads zero
                    }
                }
            }
        }
    }
}
