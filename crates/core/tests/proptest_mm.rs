//! Property tests for McKernel memory management: the buddy allocator and
//! the page table are checked against simple reference models under random
//! operation sequences.

use hlwk_core::mck::mem::pagetable::{PageSize, PageTable, PteFlags};
use hlwk_core::mck::mem::phys::{AllocError, BuddyAllocator, MAX_ORDER};
use hwmodel::addr::{PhysAddr, VirtAddr, PAGE_SIZE, PAGE_SIZE_2M};
use proptest::prelude::*;
use std::collections::HashMap;

const POOL_BASE: u64 = 64 << 20;
const POOL_LEN: u64 = 8 << 20;

#[derive(Clone, Debug)]
enum AllocOp {
    Alloc(u8),
    FreeNth(usize),
}

fn alloc_ops() -> impl Strategy<Value = Vec<AllocOp>> {
    prop::collection::vec(
        prop_oneof![
            (0..=MAX_ORDER).prop_map(AllocOp::Alloc),
            (0usize..64).prop_map(AllocOp::FreeNth),
        ],
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    /// Invariants hold and accounting is exact under arbitrary alloc/free
    /// interleavings; blocks never overlap.
    #[test]
    fn buddy_invariants_under_random_ops(ops in alloc_ops()) {
        let mut a = BuddyAllocator::new(PhysAddr(POOL_BASE), POOL_LEN);
        let mut live: Vec<(PhysAddr, u8)> = Vec::new();
        for (i, op) in ops.into_iter().enumerate() {
            match op {
                AllocOp::Alloc(order) => match a.alloc(order) {
                    Ok(p) => {
                        // Natural alignment.
                        prop_assert_eq!(
                            (p.raw() - POOL_BASE) % (PAGE_SIZE << order), 0
                        );
                        // No overlap with any live block.
                        for &(q, qo) in &live {
                            let (ps, pe) = (p.raw(), p.raw() + (PAGE_SIZE << order));
                            let (qs, qe) = (q.raw(), q.raw() + (PAGE_SIZE << qo));
                            prop_assert!(pe <= qs || qe <= ps, "overlap");
                        }
                        live.push((p, order));
                    }
                    Err(AllocError::OutOfMemory) => {}
                    Err(e) => prop_assert!(false, "unexpected {e:?}"),
                },
                AllocOp::FreeNth(i) => {
                    if !live.is_empty() {
                        let (p, _) = live.swap_remove(i % live.len());
                        a.free(p).expect("live block frees cleanly");
                    }
                }
            }
            // Full invariant sweep is O(pages); sample it.
            if i % 29 == 0 {
                a.check_invariants().map_err(|e| {
                    TestCaseError::fail(format!("invariant: {e}"))
                })?;
            }
        }
        a.check_invariants().map_err(|e| {
            TestCaseError::fail(format!("invariant: {e}"))
        })?;
        // Free everything: allocator must return to pristine.
        for (p, _) in live {
            a.free(p).unwrap();
        }
        prop_assert_eq!(a.free_bytes(), POOL_LEN);
        prop_assert_eq!(a.largest_free_order(), Some(MAX_ORDER));
    }
}

#[derive(Clone, Debug)]
enum PtOp {
    Map4k { slot: u16, frame: u16 },
    Map2m { slot: u16, frame: u16 },
    Unmap { slot: u16 },
    Translate { slot: u16, off: u32 },
}

fn pt_ops() -> impl Strategy<Value = Vec<PtOp>> {
    // Slots index into a small set of 2 MiB-aligned virtual windows so
    // collisions between 4K and 2M mappings actually happen.
    prop::collection::vec(
        prop_oneof![
            (0u16..32, 0u16..512).prop_map(|(slot, frame)| PtOp::Map4k { slot, frame }),
            (0u16..32, 0u16..64).prop_map(|(slot, frame)| PtOp::Map2m { slot, frame }),
            (0u16..32).prop_map(|slot| PtOp::Unmap { slot }),
            (0u16..32, 0u32..0x20_0000).prop_map(|(slot, off)| PtOp::Translate { slot, off }),
        ],
        1..300,
    )
}

fn slot_va(slot: u16) -> u64 {
    0x4000_0000 + (slot as u64) * PAGE_SIZE_2M
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    /// The page table agrees with a flat reference map under random
    /// map/unmap/translate sequences mixing 4 KiB and 2 MiB leaves.
    #[test]
    fn pagetable_matches_reference_model(ops in pt_ops()) {
        let mut pt = PageTable::new();
        // Reference: page-va -> (phys base, is_2m)
        let mut model: HashMap<u64, (u64, bool)> = HashMap::new();
        for op in ops {
            match op {
                PtOp::Map4k { slot, frame } => {
                    let va = slot_va(slot) + u64::from(frame) * PAGE_SIZE;
                    let pa = 0x100_0000 + u64::from(frame) * PAGE_SIZE
                        + u64::from(slot) * PAGE_SIZE_2M;
                    let conflict = model.contains_key(&va)
                        || model.contains_key(&slot_va(slot))
                            && model[&slot_va(slot)].1;
                    let r = pt.map_4k(VirtAddr(va), PhysAddr(pa), PteFlags::rw());
                    if conflict {
                        prop_assert!(r.is_err(), "model expected conflict at {va:#x}");
                    } else if r.is_ok() {
                        model.insert(va, (pa, false));
                    }
                }
                PtOp::Map2m { slot, frame } => {
                    let va = slot_va(slot);
                    let pa = (0x4000_0000 + u64::from(frame) * PAGE_SIZE_2M)
                        / PAGE_SIZE_2M * PAGE_SIZE_2M;
                    // Conflicts with any 4K page inside the window or an
                    // existing 2M leaf.
                    let window_conflict = model
                        .keys()
                        .any(|&k| k >= va && k < va + PAGE_SIZE_2M);
                    let r = pt.map_2m(VirtAddr(va), PhysAddr(pa), PteFlags::rw());
                    if window_conflict {
                        prop_assert!(r.is_err());
                    } else {
                        prop_assert!(r.is_ok());
                        model.insert(va, (pa, true));
                    }
                }
                PtOp::Unmap { slot } => {
                    let va = slot_va(slot);
                    // Remove whichever leaf covers the window start.
                    let removed = pt.unmap(VirtAddr(va));
                    match removed {
                        Some((pa, PageSize::Size2m)) => {
                            prop_assert_eq!(model.remove(&va), Some((pa.raw(), true)));
                        }
                        Some((pa, PageSize::Size4k)) => {
                            prop_assert_eq!(model.remove(&va), Some((pa.raw(), false)));
                        }
                        None => prop_assert!(!model.contains_key(&va)),
                    }
                }
                PtOp::Translate { slot, off } => {
                    let va = slot_va(slot) + u64::from(off);
                    let got = pt.translate(VirtAddr(va));
                    // Compute expectation from the model.
                    let page_va = va / PAGE_SIZE * PAGE_SIZE;
                    let win_va = va / PAGE_SIZE_2M * PAGE_SIZE_2M;
                    let expected = if let Some(&(pa, true)) = model.get(&win_va) {
                        Some(pa + (va - win_va))
                    } else {
                        model
                            .get(&page_va)
                            .filter(|&&(_, big)| !big)
                            .map(|&(pa, _)| pa + (va - page_va))
                    };
                    prop_assert_eq!(got.map(|t| t.phys.raw()), expected);
                }
            }
        }
        // Leaf accounting matches the model.
        let (n4k, n2m) = pt.leaf_counts();
        let m2m = model.values().filter(|v| v.1).count() as u64;
        let m4k = model.values().filter(|v| !v.1).count() as u64;
        prop_assert_eq!((n4k, n2m), (m4k, m2m));
    }
}

// ---------------------------------------------------------------------------
// FrameAllocator: NUMA arenas + per-CPU caches against a reference model.
// ---------------------------------------------------------------------------

use hlwk_core::mck::mem::phys::{FrameAllocator, ORDER_2M};
use hwmodel::cpu::NumaId;

#[derive(Clone, Debug)]
enum FaOp {
    /// Allocate `order` on `cpu` (orders limited to the interesting mix:
    /// PCP-cached 0 and 2M plus a direct mid order).
    Alloc { cpu: u8, order_sel: u8 },
    /// Free the nth live block through `cpu`'s cache path.
    FreeNth { cpu: u8, n: usize },
    /// Free the nth live block via the direct (teardown) path.
    FreeDirectNth { n: usize },
}

fn fa_ops() -> impl Strategy<Value = Vec<FaOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u8..4, 0u8..3).prop_map(|(cpu, order_sel)| FaOp::Alloc { cpu, order_sel }),
            (0u8..4, 0usize..64).prop_map(|(cpu, n)| FaOp::FreeNth { cpu, n }),
            (0usize..64).prop_map(|n| FaOp::FreeDirectNth { n }),
        ],
        1..250,
    )
}

fn mk_fa() -> FrameAllocator {
    // Two NUMA domains, non-adjacent physical ranges, 4 CPUs split 2/2.
    FrameAllocator::new(
        &[
            (PhysAddr(64 << 20), 4 << 20, NumaId(0)),
            (PhysAddr(256 << 20), 4 << 20, NumaId(1)),
        ],
        &[NumaId(0), NumaId(0), NumaId(1), NumaId(1)],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    /// The NUMA/PCP frame engine agrees with a flat reference model under
    /// random alloc/free interleavings across CPUs and both free paths:
    /// exact free-byte accounting, natural alignment, no overlap, and full
    /// coalescing back to pristine after free-all + cache drain.
    #[test]
    fn frame_allocator_matches_reference_model(ops in fa_ops()) {
        let mut f = mk_fa();
        let total = f.len_bytes();
        // Reference model: the set of live blocks (addr, order).
        let mut live: Vec<(PhysAddr, u8)> = Vec::new();
        for (i, op) in ops.into_iter().enumerate() {
            match op {
                FaOp::Alloc { cpu, order_sel } => {
                    let order = [0u8, 3, ORDER_2M][order_sel as usize];
                    if let Ok(p) = f.alloc_on(cpu as usize, order) {
                        // Natural alignment within the owning arena.
                        let base = if p.raw() < 256 << 20 { 64u64 << 20 } else { 256 << 20 };
                        prop_assert_eq!((p.raw() - base) % (PAGE_SIZE << order), 0);
                        // No overlap with any live block.
                        for &(q, qo) in &live {
                            let (ps, pe) = (p.raw(), p.raw() + (PAGE_SIZE << order));
                            let (qs, qe) = (q.raw(), q.raw() + (PAGE_SIZE << qo));
                            prop_assert!(pe <= qs || qe <= ps, "overlap");
                        }
                        // The frame engine knows where it put the block.
                        prop_assert!(f.domain_of(p).is_some());
                        live.push((p, order));
                    }
                }
                FaOp::FreeNth { cpu, n } => {
                    if !live.is_empty() {
                        let (p, _) = live.swap_remove(n % live.len());
                        f.free_on(cpu as usize, p).expect("live block frees");
                    }
                }
                FaOp::FreeDirectNth { n } => {
                    if !live.is_empty() {
                        let (p, _) = live.swap_remove(n % live.len());
                        f.free(p).expect("live block frees directly");
                    }
                }
            }
            // Exact accounting: free (incl. cached) + live == total.
            let live_bytes: u64 = live.iter().map(|&(_, o)| PAGE_SIZE << o).sum();
            prop_assert_eq!(f.free_bytes() + live_bytes, total);
            prop_assert_eq!(f.allocation_count(), live.len());
            if i % 37 == 0 {
                f.check_invariants().map_err(|e| {
                    TestCaseError::fail(format!("invariant: {e}"))
                })?;
            }
        }
        // Free-all + drain: full coalescing back to pristine arenas.
        for (p, _) in live {
            f.free(p).unwrap();
        }
        f.drain_all();
        prop_assert_eq!(f.free_bytes(), total);
        prop_assert_eq!(f.largest_free_order(), Some(MAX_ORDER));
        f.check_invariants().map_err(|e| {
            TestCaseError::fail(format!("invariant: {e}"))
        })?;
    }
}

// ---------------------------------------------------------------------------
// Fault-around vs one-at-a-time faulting.
// ---------------------------------------------------------------------------

use hlwk_core::costs::CostModel;
use hlwk_core::mck::mem::vm::VmaKind;
use hlwk_core::mck::mem::{handle_fault_with_window, AddressSpace, FaultOutcome};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    /// Fault-around is an optimization, not a semantic change: after the
    /// same sequence of touches, a window-W address space maps a superset
    /// of the window-1 one (same flags), the faulted page is always
    /// mapped, and touching every page leaves both spaces translating
    /// identically (every page mapped, one distinct frame per page).
    #[test]
    fn fault_around_equivalent_to_one_at_a_time(
        npages in 1u64..64,
        window in 2u64..32,
        touches in prop::collection::vec(0u64..64, 1..40),
    ) {
        let costs = CostModel::default();
        let mut wide = AddressSpace::new(true);
        let mut one = AddressSpace::new(true);
        let mut fa_wide = FrameAllocator::single(PhysAddr(64 << 20), 8 << 20, 2);
        let mut fa_one = FrameAllocator::single(PhysAddr(64 << 20), 8 << 20, 2);
        let len = npages * PAGE_SIZE;
        let va_w = wide.vm.mmap(len, VmaKind::Anon { large_ok: false }, true, None).unwrap();
        let va_o = one.vm.mmap(len, VmaKind::Anon { large_ok: false }, true, None).unwrap();
        for &t in &touches {
            let off = (t % npages) * PAGE_SIZE;
            let rw = handle_fault_with_window(
                &mut wide, &mut fa_wide, &costs, 0, va_w + off, window);
            let ro = handle_fault_with_window(
                &mut one, &mut fa_one, &costs, 0, va_o + off, 1);
            prop_assert!(matches!(rw, FaultOutcome::Mapped { .. }));
            prop_assert!(matches!(ro, FaultOutcome::Mapped { .. }));
            // The faulted page itself is mapped in both.
            prop_assert!(wide.pt.translate(va_w + off).is_some());
            prop_assert!(one.pt.translate(va_o + off).is_some());
        }
        // Window-1 mapped set is a subset of the fault-around set, with
        // identical flags.
        for i in 0..npages {
            let tw = wide.pt.translate(va_w + i * PAGE_SIZE);
            let to = one.pt.translate(va_o + i * PAGE_SIZE);
            if let Some(to) = to {
                let tw = tw.expect("window-1-mapped page must be mapped under fault-around");
                prop_assert_eq!(tw.flags, to.flags);
                prop_assert_eq!(tw.size, to.size);
            }
        }
        // Touch every page: both spaces end fully and identically mapped.
        let mut phys_seen = std::collections::HashSet::new();
        for i in 0..npages {
            let off = i * PAGE_SIZE;
            handle_fault_with_window(&mut wide, &mut fa_wide, &costs, 0, va_w + off, window);
            handle_fault_with_window(&mut one, &mut fa_one, &costs, 0, va_o + off, 1);
            let tw = wide.pt.translate(va_w + off).expect("mapped");
            let to = one.pt.translate(va_o + off).expect("mapped");
            prop_assert_eq!(tw.flags, to.flags);
            prop_assert_eq!(tw.size, to.size);
            prop_assert!(phys_seen.insert(tw.phys.page_align_down().raw()),
                "one distinct frame per page");
        }
        prop_assert_eq!(wide.pt.leaf_counts().0, npages);
        prop_assert_eq!(one.pt.leaf_counts().0, npages);
        prop_assert_eq!(fa_wide.allocation_count() as u64, npages);
        prop_assert_eq!(fa_one.allocation_count() as u64, npages);
    }
}
