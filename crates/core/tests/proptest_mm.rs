//! Property tests for McKernel memory management: the buddy allocator and
//! the page table are checked against simple reference models under random
//! operation sequences.

use hlwk_core::mck::mem::pagetable::{PageSize, PageTable, PteFlags};
use hlwk_core::mck::mem::phys::{AllocError, BuddyAllocator, MAX_ORDER};
use hwmodel::addr::{PhysAddr, VirtAddr, PAGE_SIZE, PAGE_SIZE_2M};
use proptest::prelude::*;
use std::collections::HashMap;

const POOL_BASE: u64 = 64 << 20;
const POOL_LEN: u64 = 8 << 20;

#[derive(Clone, Debug)]
enum AllocOp {
    Alloc(u8),
    FreeNth(usize),
}

fn alloc_ops() -> impl Strategy<Value = Vec<AllocOp>> {
    prop::collection::vec(
        prop_oneof![
            (0..=MAX_ORDER).prop_map(AllocOp::Alloc),
            (0usize..64).prop_map(AllocOp::FreeNth),
        ],
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    /// Invariants hold and accounting is exact under arbitrary alloc/free
    /// interleavings; blocks never overlap.
    #[test]
    fn buddy_invariants_under_random_ops(ops in alloc_ops()) {
        let mut a = BuddyAllocator::new(PhysAddr(POOL_BASE), POOL_LEN);
        let mut live: Vec<(PhysAddr, u8)> = Vec::new();
        for (i, op) in ops.into_iter().enumerate() {
            match op {
                AllocOp::Alloc(order) => match a.alloc(order) {
                    Ok(p) => {
                        // Natural alignment.
                        prop_assert_eq!(
                            (p.raw() - POOL_BASE) % (PAGE_SIZE << order), 0
                        );
                        // No overlap with any live block.
                        for &(q, qo) in &live {
                            let (ps, pe) = (p.raw(), p.raw() + (PAGE_SIZE << order));
                            let (qs, qe) = (q.raw(), q.raw() + (PAGE_SIZE << qo));
                            prop_assert!(pe <= qs || qe <= ps, "overlap");
                        }
                        live.push((p, order));
                    }
                    Err(AllocError::OutOfMemory) => {}
                    Err(e) => prop_assert!(false, "unexpected {e:?}"),
                },
                AllocOp::FreeNth(i) => {
                    if !live.is_empty() {
                        let (p, _) = live.swap_remove(i % live.len());
                        a.free(p).expect("live block frees cleanly");
                    }
                }
            }
            // Full invariant sweep is O(pages); sample it.
            if i % 29 == 0 {
                a.check_invariants().map_err(|e| {
                    TestCaseError::fail(format!("invariant: {e}"))
                })?;
            }
        }
        a.check_invariants().map_err(|e| {
            TestCaseError::fail(format!("invariant: {e}"))
        })?;
        // Free everything: allocator must return to pristine.
        for (p, _) in live {
            a.free(p).unwrap();
        }
        prop_assert_eq!(a.free_bytes(), POOL_LEN);
        prop_assert_eq!(a.largest_free_order(), Some(MAX_ORDER));
    }
}

#[derive(Clone, Debug)]
enum PtOp {
    Map4k { slot: u16, frame: u16 },
    Map2m { slot: u16, frame: u16 },
    Unmap { slot: u16 },
    Translate { slot: u16, off: u32 },
}

fn pt_ops() -> impl Strategy<Value = Vec<PtOp>> {
    // Slots index into a small set of 2 MiB-aligned virtual windows so
    // collisions between 4K and 2M mappings actually happen.
    prop::collection::vec(
        prop_oneof![
            (0u16..32, 0u16..512).prop_map(|(slot, frame)| PtOp::Map4k { slot, frame }),
            (0u16..32, 0u16..64).prop_map(|(slot, frame)| PtOp::Map2m { slot, frame }),
            (0u16..32).prop_map(|slot| PtOp::Unmap { slot }),
            (0u16..32, 0u32..0x20_0000).prop_map(|(slot, off)| PtOp::Translate { slot, off }),
        ],
        1..300,
    )
}

fn slot_va(slot: u16) -> u64 {
    0x4000_0000 + (slot as u64) * PAGE_SIZE_2M
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    /// The page table agrees with a flat reference map under random
    /// map/unmap/translate sequences mixing 4 KiB and 2 MiB leaves.
    #[test]
    fn pagetable_matches_reference_model(ops in pt_ops()) {
        let mut pt = PageTable::new();
        // Reference: page-va -> (phys base, is_2m)
        let mut model: HashMap<u64, (u64, bool)> = HashMap::new();
        for op in ops {
            match op {
                PtOp::Map4k { slot, frame } => {
                    let va = slot_va(slot) + u64::from(frame) * PAGE_SIZE;
                    let pa = 0x100_0000 + u64::from(frame) * PAGE_SIZE
                        + u64::from(slot) * PAGE_SIZE_2M;
                    let conflict = model.contains_key(&va)
                        || model.contains_key(&slot_va(slot))
                            && model[&slot_va(slot)].1;
                    let r = pt.map_4k(VirtAddr(va), PhysAddr(pa), PteFlags::rw());
                    if conflict {
                        prop_assert!(r.is_err(), "model expected conflict at {va:#x}");
                    } else if r.is_ok() {
                        model.insert(va, (pa, false));
                    }
                }
                PtOp::Map2m { slot, frame } => {
                    let va = slot_va(slot);
                    let pa = (0x4000_0000 + u64::from(frame) * PAGE_SIZE_2M)
                        / PAGE_SIZE_2M * PAGE_SIZE_2M;
                    // Conflicts with any 4K page inside the window or an
                    // existing 2M leaf.
                    let window_conflict = model
                        .keys()
                        .any(|&k| k >= va && k < va + PAGE_SIZE_2M);
                    let r = pt.map_2m(VirtAddr(va), PhysAddr(pa), PteFlags::rw());
                    if window_conflict {
                        prop_assert!(r.is_err());
                    } else {
                        prop_assert!(r.is_ok());
                        model.insert(va, (pa, true));
                    }
                }
                PtOp::Unmap { slot } => {
                    let va = slot_va(slot);
                    // Remove whichever leaf covers the window start.
                    let removed = pt.unmap(VirtAddr(va));
                    match removed {
                        Some((pa, PageSize::Size2m)) => {
                            prop_assert_eq!(model.remove(&va), Some((pa.raw(), true)));
                        }
                        Some((pa, PageSize::Size4k)) => {
                            prop_assert_eq!(model.remove(&va), Some((pa.raw(), false)));
                        }
                        None => prop_assert!(!model.contains_key(&va)),
                    }
                }
                PtOp::Translate { slot, off } => {
                    let va = slot_va(slot) + u64::from(off);
                    let got = pt.translate(VirtAddr(va));
                    // Compute expectation from the model.
                    let page_va = va / PAGE_SIZE * PAGE_SIZE;
                    let win_va = va / PAGE_SIZE_2M * PAGE_SIZE_2M;
                    let expected = if let Some(&(pa, true)) = model.get(&win_va) {
                        Some(pa + (va - win_va))
                    } else {
                        model
                            .get(&page_va)
                            .filter(|&&(_, big)| !big)
                            .map(|&(pa, _)| pa + (va - page_va))
                    };
                    prop_assert_eq!(got.map(|t| t.phys.raw()), expected);
                }
            }
        }
        // Leaf accounting matches the model.
        let (n4k, n2m) = pt.leaf_counts();
        let m2m = model.values().filter(|v| v.1).count() as u64;
        let m4k = model.values().filter(|v| !v.1).count() as u64;
        prop_assert_eq!((n4k, n2m), (m4k, m2m));
    }
}
