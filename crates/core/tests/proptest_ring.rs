//! Property tests for the IKC ring buffer: the fixed-capacity slot ring
//! must be observationally identical to an ideal bounded FIFO (a
//! `VecDeque` reference model) under arbitrary interleavings of sends,
//! receives, and fault-injected corruption — including sustained
//! operation far past the wrap point and full-queue back-pressure.

use hlwk_core::ihk::ikc::{message_checksum, IkcChannel, IkcMessage, MsgKind};
use proptest::prelude::*;
use std::collections::VecDeque;

#[derive(Clone, Debug)]
enum RingOp {
    /// Send a payload of the given length, tagged with a running id.
    Send(u8),
    /// Receive one message.
    Recv,
    /// Flip a bit in the newest queued message (fault injection).
    Corrupt(u64),
}

fn ring_ops() -> impl Strategy<Value = Vec<RingOp>> {
    prop::collection::vec(
        prop_oneof![
            3 => (0u8..=96).prop_map(RingOp::Send),
            2 => Just(RingOp::Recv),
            1 => (0u64..4096).prop_map(RingOp::Corrupt),
        ],
        1..400,
    )
}

/// Payload for message `id`: length-varied, deterministic contents.
fn payload(id: u64, len: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (id as u8).wrapping_mul(31).wrapping_add(i))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The ring agrees with a `VecDeque` reference model op-for-op:
    /// same accept/reject decisions at the capacity bound, same FIFO
    /// order out, same payload bytes, same checksum verdicts under
    /// injected corruption.
    #[test]
    fn ring_matches_vecdeque_model(cap in 1usize..24, ops in ring_ops()) {
        let mut ch = IkcChannel::new(cap);
        // Reference model: (kind, wire bytes, checksum). Corruption is
        // mirrored byte-for-byte, so the expected verify verdict falls
        // out of the checksum rather than a flag (two flips that cancel
        // must read as intact on both sides).
        let mut model: VecDeque<(MsgKind, Vec<u8>, u32)> = VecDeque::new();
        let mut next_id = 0u64;
        for op in ops {
            match op {
                RingOp::Send(len) => {
                    let p = payload(next_id, len);
                    let sent = ch
                        .send_with(MsgKind::SyscallRequest, |b| b.extend_from_slice(&p))
                        .is_ok();
                    // Back-pressure triggers exactly at the requested
                    // capacity, not at the rounded-up slot count.
                    prop_assert_eq!(sent, model.len() < cap);
                    if sent {
                        let ck = message_checksum(MsgKind::SyscallRequest, &p);
                        model.push_back((MsgKind::SyscallRequest, p, ck));
                        next_id += 1;
                    }
                }
                RingOp::Recv => {
                    match (ch.recv_ref(), model.pop_front()) {
                        (None, None) => {}
                        (Some(m), Some((kind, p, ck))) => {
                            prop_assert_eq!(m.kind, kind);
                            prop_assert_eq!(m.payload, &p[..]);
                            prop_assert_eq!(m.verify(), message_checksum(kind, &p) == ck);
                        }
                        (got, want) => prop_assert!(
                            false,
                            "ring/model diverged: ring={:?} model={:?}",
                            got.map(|m| m.kind),
                            want.map(|(k, ..)| k)
                        ),
                    }
                }
                RingOp::Corrupt(flip) => {
                    // Only meaningful with something queued; the channel
                    // no-ops on empty exactly as the model does.
                    ch.corrupt_newest(flip);
                    if let Some((_, p, ck)) = model.back_mut() {
                        if p.is_empty() {
                            *ck ^= 1;
                        } else {
                            let bit = (flip % (p.len() as u64 * 8)) as usize;
                            p[bit / 8] ^= 1 << (bit % 8);
                        }
                    }
                }
            }
            prop_assert_eq!(ch.len(), model.len());
            prop_assert_eq!(ch.is_empty(), model.is_empty());
        }
        // Drain: everything still queued comes out in model order.
        while let Some((kind, p, ck)) = model.pop_front() {
            let m = ch.recv_ref().expect("model says non-empty");
            prop_assert_eq!(m.kind, kind);
            prop_assert_eq!(m.payload, &p[..]);
            prop_assert_eq!(m.verify(), message_checksum(kind, &p) == ck);
        }
        prop_assert!(ch.recv_ref().is_none());
    }

    /// Slot reuse never leaks bytes between generations: after the ring
    /// wraps many times, every received payload is exactly what its send
    /// encoded, even when a longer message previously occupied the slot.
    #[test]
    fn slot_reuse_is_clean_across_wraps(cap in 1usize..9, lens in prop::collection::vec(0u8..=96, 64..256)) {
        let mut ch = IkcChannel::new(cap);
        for (id, &len) in lens.iter().enumerate() {
            let p = payload(id as u64, len);
            let ck = ch
                .send_with(MsgKind::Control, |b| b.extend_from_slice(&p))
                .expect("one in, one out: never full");
            prop_assert_eq!(ck, message_checksum(MsgKind::Control, &p));
            let m = ch.recv_ref().expect("just sent");
            prop_assert!(m.verify());
            prop_assert_eq!(m.payload, &p[..]);
        }
        let (sent, received, full_events) = ch.stats();
        prop_assert_eq!(sent, lens.len() as u64);
        prop_assert_eq!(received, lens.len() as u64);
        prop_assert_eq!(full_events, 0);
    }

    /// The owned-message compatibility path (`send`/`recv`) agrees with
    /// the in-place path: a message round-tripped through the ring is
    /// bit-identical to the original, checksum included.
    #[test]
    fn owned_roundtrip_preserves_messages(lens in prop::collection::vec(0u8..=64, 1..40)) {
        let mut ch = IkcChannel::new(lens.len());
        let originals: Vec<IkcMessage> = lens
            .iter()
            .enumerate()
            .map(|(id, &len)| IkcMessage::new(MsgKind::PfnReply, payload(id as u64, len).into()))
            .collect();
        for m in &originals {
            ch.send(m.clone()).expect("sized to fit");
        }
        for want in &originals {
            let got = ch.recv().expect("queued");
            prop_assert_eq!(got.kind, want.kind);
            prop_assert_eq!(&got.payload[..], &want.payload[..]);
            prop_assert_eq!(got.checksum, want.checksum);
            prop_assert!(got.verify());
        }
    }
}
