//! Property tests for the software TLB: with the shootdown discipline
//! the kernel uses (flush the page on unmap), a TLB-fronted translate
//! must agree with the raw radix walk on every query — across arbitrary
//! map/unmap/remap interleavings, mixed 4 KiB / 2 MiB leaves, aliased
//! direct-mapped slots, and any per-CPU access pattern.

use hlwk_core::mck::mem::pagetable::{PageTable, PteFlags};
use hlwk_core::mck::mem::tlb::TlbSet;
use hwmodel::addr::{PhysAddr, VirtAddr, PAGE_SIZE, PAGE_SIZE_2M};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum TlbOp {
    Map4k { slot: u16, frame: u16 },
    Map2m { slot: u16, frame: u16 },
    Unmap4k { slot: u16, frame: u16 },
    Unmap2m { slot: u16 },
    Translate { slot: u16, off: u32, cpu: u8 },
}

/// 2 MiB-aligned virtual windows. The stride is chosen so distinct
/// windows collide in the TLB's direct-mapped 4K slot array (256 slots
/// = 1 MiB of 4K reach), making alias eviction a constantly exercised
/// path rather than a corner case.
fn slot_va(slot: u16) -> u64 {
    0x4000_0000 + u64::from(slot) * PAGE_SIZE_2M
}

fn tlb_ops() -> impl Strategy<Value = Vec<TlbOp>> {
    prop::collection::vec(
        prop_oneof![
            2 => (0u16..16, 0u16..512).prop_map(|(slot, frame)| TlbOp::Map4k { slot, frame }),
            1 => (0u16..16, 0u16..64).prop_map(|(slot, frame)| TlbOp::Map2m { slot, frame }),
            1 => (0u16..16, 0u16..512).prop_map(|(slot, frame)| TlbOp::Unmap4k { slot, frame }),
            1 => (0u16..16).prop_map(|slot| TlbOp::Unmap2m { slot }),
            4 => (0u16..16, 0u32..0x20_0000, 0u8..4)
                .prop_map(|(slot, off, cpu)| TlbOp::Translate { slot, off, cpu }),
        ],
        1..400,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every TLB-fronted translation equals the raw walk, provided
    /// unmaps are followed by a page shootdown — exactly the contract
    /// `AddressSpace::unmap_page` maintains. Remaps (unmap then map the
    /// same window to a different frame) must be observed immediately.
    #[test]
    fn tlb_translate_agrees_with_raw_walk(ops in tlb_ops()) {
        let mut pt = PageTable::new();
        let mut tlb = TlbSet::new(4);
        for op in ops {
            match op {
                TlbOp::Map4k { slot, frame } => {
                    let va = slot_va(slot) + u64::from(frame) * PAGE_SIZE;
                    let pa = 0x1000_0000
                        + u64::from(slot) * PAGE_SIZE_2M
                        + u64::from(frame) * PAGE_SIZE;
                    // Map may fail on conflict; a *successful* map needs
                    // no shootdown (the page had no translation to cache).
                    let _ = pt.map_4k(VirtAddr(va), PhysAddr(pa), PteFlags::rw());
                }
                TlbOp::Map2m { slot, frame } => {
                    let va = slot_va(slot);
                    let pa = 0x8000_0000 + u64::from(frame) * PAGE_SIZE_2M;
                    let _ = pt.map_2m(VirtAddr(va), PhysAddr(pa), PteFlags::rw());
                }
                TlbOp::Unmap4k { slot, frame } => {
                    let va = VirtAddr(slot_va(slot) + u64::from(frame) * PAGE_SIZE);
                    if pt.unmap(va).is_some() {
                        tlb.shootdown_page(va);
                    }
                }
                TlbOp::Unmap2m { slot } => {
                    let va = VirtAddr(slot_va(slot));
                    if pt.unmap(va).is_some() {
                        tlb.shootdown_page(va);
                    }
                }
                TlbOp::Translate { slot, off, cpu } => {
                    let va = VirtAddr(slot_va(slot) + u64::from(off));
                    let cached = tlb.translate_on(usize::from(cpu), &pt, va);
                    let raw = pt.translate(va);
                    prop_assert_eq!(
                        cached, raw,
                        "cpu {} va {:#x}: TLB and raw walk disagree", cpu, va.raw()
                    );
                }
            }
        }
        // Final sweep: every window start and a few interior offsets
        // agree on every CPU (catches stale entries that the random
        // translate mix happened to skip).
        for slot in 0..16u16 {
            for off in [0u64, 0x1000, 0x5123, PAGE_SIZE_2M - 1] {
                let va = VirtAddr(slot_va(slot) + off);
                let raw = pt.translate(va);
                for cpu in 0..4 {
                    prop_assert_eq!(tlb.translate_on(cpu, &pt, va), raw);
                }
            }
        }
    }
}
