//! Reserve/release churn property for `ihk::partition`: under any
//! random interleaving of CPU reservations, releases, busy marks, and
//! memory reservations, (1) no core is ever double-assigned, (2) every
//! byte of physical memory is owned by exactly Linux or the LWK (byte
//! conservation holds after every operation), (3) releasing something
//! not reserved is the typed `NotReserved` error, releasing a busy core
//! the typed `CoreBusy` error — never a silent success or a panic — and
//! (4) after any *balanced* schedule (every successful reservation
//! eventually released) the registry and memory fingerprints are
//! identical to a freshly built pair: online resizing can churn forever
//! without leaking state.

use hlwk_core::ihk::partition::{
    release_memory, reserve_memory, CpuRegistry, PartitionError, MEM_ALIGN,
};
use hwmodel::addr::PhysAddr;
use hwmodel::cpu::{CoreId, NumaId};
use hwmodel::memory::{FrameOwner, PhysMemory};
use proptest::collection::vec;
use proptest::prelude::*;

const TOTAL_CORES: u16 = 20;
const MEM_BYTES: u64 = 2 << 30;
const NUMA_DOMAINS: u16 = 2;

fn core_set(a: u64, b: u64) -> Vec<CoreId> {
    let start = (a % u64::from(TOTAL_CORES)) as u16;
    let len = (b % 4 + 1) as u16;
    (start..(start + len).min(TOTAL_CORES)).map(CoreId).collect()
}

fn conservation(mem: &PhysMemory) -> (u64, u64) {
    let linux = mem.bytes_owned_by(FrameOwner::Linux);
    let lwk = mem.bytes_owned_by(FrameOwner::Lwk);
    (linux, lwk)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn churn_is_typed_conserving_and_leak_free(
        ops in vec((0u8..6, 0u64..64, 0u64..64), 0..40),
    ) {
        let mut cpus = CpuRegistry::new(TOTAL_CORES);
        let mut mem = PhysMemory::new(MEM_BYTES, NUMA_DOMAINS);
        let fresh_linux_cores = CpuRegistry::new(TOTAL_CORES).linux_cores();
        let fresh_linux_bytes = conservation(&mem).0;

        // Mirror model: sets of cores / memory ranges successfully
        // reserved and not yet released.
        let mut live_sets: Vec<Vec<CoreId>> = Vec::new();
        let mut live_mem: Vec<(PhysAddr, u64)> = Vec::new();
        let mut busy: Vec<CoreId> = Vec::new();

        for &(kind, a, b) in &ops {
            match kind {
                // Reserve a small core run: succeeds iff fully free, and
                // failure must be atomic (no partial assignment).
                0 => {
                    let set = core_set(a, b);
                    let was_free: Vec<bool> =
                        set.iter().map(|&c| !cpus.is_reserved(c)).collect();
                    match cpus.reserve(&set) {
                        Ok(()) => {
                            prop_assert!(was_free.iter().all(|&f| f), "double-assign");
                            live_sets.push(set);
                        }
                        Err(PartitionError::CpuUnavailable(c)) => {
                            prop_assert!(cpus.is_reserved(c) || c.0 >= TOTAL_CORES);
                            // All-or-nothing: previously free cores stay free.
                            for (i, &c2) in set.iter().enumerate() {
                                if was_free[i] {
                                    prop_assert!(!cpus.is_reserved(c2), "partial reserve");
                                }
                            }
                        }
                        Err(e) => prop_assert!(false, "unexpected error {e:?}"),
                    }
                }
                // Release a tracked set; busy members give the typed
                // error and release nothing.
                1 => {
                    if live_sets.is_empty() {
                        continue;
                    }
                    let i = (a as usize) % live_sets.len();
                    let set = live_sets[i].clone();
                    let has_busy = set.iter().any(|c| busy.contains(c));
                    match cpus.release(&set) {
                        Ok(()) => {
                            prop_assert!(!has_busy, "busy release silently succeeded");
                            live_sets.swap_remove(i);
                        }
                        Err(PartitionError::CoreBusy(c)) => {
                            prop_assert!(busy.contains(&c), "CoreBusy for a drained core");
                            for &c2 in &set {
                                prop_assert!(cpus.is_reserved(c2), "partial busy release");
                            }
                        }
                        Err(e) => prop_assert!(false, "unexpected error {e:?}"),
                    }
                }
                // Release-after-release (or never-reserved): typed error.
                2 => {
                    let c = CoreId((a % u64::from(TOTAL_CORES)) as u16);
                    if !cpus.is_reserved(c) {
                        prop_assert_eq!(
                            cpus.release(&[c]),
                            Err(PartitionError::NotReserved)
                        );
                    }
                }
                // Busy mark: only reserved cores can pin offload state.
                3 => {
                    let c = CoreId((a % u64::from(TOTAL_CORES)) as u16);
                    match cpus.mark_busy(c) {
                        Ok(()) => {
                            prop_assert!(cpus.is_reserved(c));
                            if !busy.contains(&c) {
                                busy.push(c);
                            }
                        }
                        Err(PartitionError::NotReserved) => {
                            prop_assert!(!cpus.is_reserved(c));
                        }
                        Err(e) => prop_assert!(false, "unexpected error {e:?}"),
                    }
                }
                // Drain: clear one busy mark (idempotent on any core).
                4 => {
                    let c = CoreId((a % u64::from(TOTAL_CORES)) as u16);
                    cpus.clear_busy(c);
                    busy.retain(|&b2| b2 != c);
                }
                // Memory reserve in a random domain.
                _ => {
                    let numa = NumaId((a % u64::from(NUMA_DOMAINS)) as u16);
                    let bytes = (b % 16 + 1) * MEM_ALIGN;
                    if let Ok(base) = reserve_memory(&mut mem, numa, bytes) {
                        prop_assert_eq!(mem.owner_of(base), FrameOwner::Lwk);
                        live_mem.push((base, bytes));
                    }
                }
            }
            // Byte conservation after every single operation.
            let (linux, lwk) = conservation(&mem);
            prop_assert_eq!(linux + lwk, MEM_BYTES, "memory bytes leaked");
            // Reserved + Linux cores partition the core set exactly.
            let linux_cores = cpus.linux_cores().len();
            let reserved: usize = live_sets.iter().map(Vec::len).sum();
            prop_assert_eq!(linux_cores + reserved, usize::from(TOTAL_CORES));
        }

        // Balance the schedule: drain all busy marks, release every
        // live reservation (each release must now succeed exactly once;
        // a second attempt is the typed error).
        for c in busy.drain(..) {
            cpus.clear_busy(c);
        }
        for set in live_sets.drain(..) {
            cpus.release(&set).expect("drained release succeeds");
            prop_assert_eq!(cpus.release(&set), Err(PartitionError::NotReserved));
        }
        for (base, len) in live_mem.drain(..) {
            release_memory(&mut mem, base, len).expect("balanced release");
            prop_assert_eq!(
                release_memory(&mut mem, base, len),
                Err(PartitionError::NotReserved)
            );
        }

        // Fingerprint: indistinguishable from a fresh build.
        prop_assert_eq!(cpus.linux_cores(), fresh_linux_cores);
        prop_assert_eq!(conservation(&mem).0, fresh_linux_bytes);
        prop_assert_eq!(conservation(&mem).1, 0);
        let mut p = 0;
        while p < MEM_BYTES {
            prop_assert_eq!(mem.owner_of(PhysAddr(p)), FrameOwner::Linux);
            p += MEM_ALIGN;
        }
    }
}
