//! The figure grids must be bit-identical at any worker count.
//!
//! `fig8_miniapps` (and every other figure binary) submits its whole
//! (app × nodes × OS × run) grid as one `par::parallel_map` call; each
//! cell builds its own cluster from its own seed, so cells are
//! share-nothing and the output vector must not depend on how the pool
//! slices the index space. This pins that down with a miniature fig8
//! grid evaluated at 1/2/4/8 threads, compared at the `f64` bit level —
//! `==` on floats would also pass for a reordered-reduction bug that
//! happens to round the same, bits will not.

use cluster::experiment::run_seed;
use cluster::{Cluster, ClusterConfig, OsVariant};
use simcore::{par, Cycles};
use workloads::miniapps::MiniApp;

/// A fig8-style cell list, small enough for a test: one app, two node
/// counts, both OS variants, one repetition.
fn cells() -> Vec<(MiniApp, u32, OsVariant, usize)> {
    let app = MiniApp::paper_suite()
        .into_iter()
        .next()
        .expect("paper suite is non-empty");
    let mut cells = Vec::new();
    for nodes in [2u32, 4] {
        for os in [OsVariant::LinuxCgroup, OsVariant::McKernel] {
            cells.push((app.clone(), nodes, os, 0));
        }
    }
    cells
}

fn grid(cells: &[(MiniApp, u32, OsVariant, usize)], threads: usize) -> Vec<u64> {
    par::parallel_map_threads(threads, cells.len(), |ci| {
        let (app, nodes, os, run) = &cells[ci];
        let cfg = ClusterConfig::paper(*os)
            .with_nodes(*nodes)
            .with_seed(run_seed(0xF168, *run));
        let mut cluster = Cluster::build(cfg);
        cluster
            .run_miniapp(app, Cycles::from_ms(1))
            .expect("fault-free")
            .as_secs_f64()
            .to_bits()
    })
}

#[test]
fn fig8_grid_bit_identical_at_any_thread_count() {
    let cells = cells();
    let serial = grid(&cells, 1);
    assert_eq!(serial.len(), cells.len());
    for threads in [2usize, 4, 8] {
        assert_eq!(grid(&cells, threads), serial, "{threads} threads");
    }
}
