//! Shared helpers for the figure-regeneration binaries.
//!
//! Each binary regenerates one figure of the paper's evaluation
//! (Sec. IV), printing the same series the figure plots. Knobs via
//! environment variables so CI can run quick versions:
//!
//! * `HLWK_RUNS` — repetitions (paper: 15);
//! * `HLWK_NODES` — top node count (paper: 64);
//! * `HLWK_FWQ_SECS` — FWQ measurement interval (paper: 30);
//! * `HLWK_OSU_ITERS` — timed iterations per OSU cell.

use simcore::Summary;

/// Repetitions (paper: 15).
pub fn runs() -> usize {
    env_or("HLWK_RUNS", 15)
}

/// Largest node count in sweeps (paper: 64).
pub fn max_nodes() -> u32 {
    env_or("HLWK_NODES", 64)
}

/// FWQ measurement interval in seconds (paper: 30).
pub fn fwq_secs() -> u64 {
    env_or("HLWK_FWQ_SECS", 10)
}

/// OSU timed iterations per cell.
pub fn osu_iters() -> usize {
    env_or("HLWK_OSU_ITERS", 8)
}

/// Mini-app iterations in the resilience sweep (`HLWK_RESIL_ITERS`).
pub fn resil_iters() -> u32 {
    env_or("HLWK_RESIL_ITERS", 12)
}

/// Mini-app iterations in the failure-domain sweep
/// (`HLWK_DOMAIN_ITERS`). The committed `BENCH_resilience.json`
/// baseline is recorded at the default; `--check` runs must not
/// override it.
pub fn domain_iters() -> u32 {
    env_or("HLWK_DOMAIN_ITERS", 12)
}

/// Seed base for the resilience sweep (`HLWK_SEED_BASE`). The default
/// reproduces the golden figure output; `scripts/ci.sh --soak` varies
/// it to hunt for schedule-dependent hangs.
pub fn seed_base() -> u64 {
    env_or("HLWK_SEED_BASE", 0x2E51)
}

/// Master seed for the failure-domain sweep (`HLWK_DOMAIN_SEED`).
/// Leave at the default for `--check` runs against the committed
/// baseline; the soak varies it.
pub fn domain_seed() -> u64 {
    env_or("HLWK_DOMAIN_SEED", 0xD06E_5EED)
}

/// Nodes in the elastic-tenancy serving sweep (`HLWK_SERVE_NODES`).
pub fn serve_nodes() -> u32 {
    env_or("HLWK_SERVE_NODES", 4)
}

/// Serving windows per tenancy profile (`HLWK_SERVE_WINDOWS`). The
/// committed `BENCH_serve.json` baseline is recorded at the default
/// (240 × 10 ms), where the resize storm completes 100+ cycles; CI
/// smokes run shorter.
pub fn serve_windows() -> u32 {
    env_or("HLWK_SERVE_WINDOWS", 240)
}

/// Master seed for the tenancy sweep (`HLWK_SERVE_SEED`). Leave at the
/// default for `--check` runs; the soak varies it.
pub fn serve_seed() -> u64 {
    env_or("HLWK_SERVE_SEED", 0x5E12_7E4A)
}

fn env_or<T: std::str::FromStr + Copy>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Human-readable message size (matches the paper's axis labels).
pub fn size_label(bytes: u64) -> String {
    if bytes >= 1 << 20 {
        format!("{}MB", bytes >> 20)
    } else if bytes >= 1 << 10 {
        format!("{}kB", bytes >> 10)
    } else {
        format!("{bytes}")
    }
}

/// Node counts for a scaling sweep starting at `min`, doubling to
/// [`max_nodes`].
pub fn node_sweep(min: u32) -> Vec<u32> {
    let mut out = Vec::new();
    let mut n = min;
    while n <= max_nodes() {
        out.push(n);
        n *= 2;
    }
    out
}

/// Print a section header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Format a summary as `mean ± std [min..max]`.
pub fn fmt_summary(s: &Summary, unit: &str) -> String {
    format!(
        "{:>10.2} ± {:>8.2} {unit}  [{:.2} .. {:.2}]",
        s.mean, s.std_dev, s.min, s.max
    )
}

/// Minimal parser for the flat `"key": number` JSON `fig_engine` writes.
pub fn parse_metrics(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((key, val)) = line.split_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        if let Ok(v) = val.trim().parse::<f64>() {
            out.push((key.to_string(), v));
        }
    }
    out
}

/// Render metrics back into the flat `fig_engine`-style JSON.
pub fn metrics_to_json(metrics: &[(String, f64)]) -> String {
    let mut out = String::from("{\n  \"bench\": \"fig_engine\",\n  \"metrics\": {\n");
    for (i, (k, v)) in metrics.iter().enumerate() {
        let comma = if i + 1 == metrics.len() { "" } else { "," };
        out.push_str(&format!("    \"{k}\": {v:.2}{comma}\n"));
    }
    out.push_str("  }\n}\n");
    out
}

/// Merge `fresh` into the metrics already in `path` (keeps existing
/// entries; replaces stale values for the same keys), preserving order.
/// `fig_engine` rewrites the file wholesale, so the sweeps that ride
/// along (`fig_scale`, `fig_scale_app`) must run after it and merge.
pub fn merge_metrics_into(path: &str, fresh: &[(String, f64)]) {
    let mut metrics = std::fs::read_to_string(path)
        .map(|s| parse_metrics(&s))
        .unwrap_or_default();
    for (k, v) in fresh {
        match metrics.iter_mut().find(|(mk, _)| mk == k) {
            Some((_, mv)) => *mv = *v,
            None => metrics.push((k.clone(), *v)),
        }
    }
    std::fs::write(path, metrics_to_json(&metrics)).expect("write benchmark output");
    println!("merged {} metrics into {path}", fresh.len());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_labels() {
        assert_eq!(size_label(2), "2");
        assert_eq!(size_label(1024), "1kB");
        assert_eq!(size_label(512 << 10), "512kB");
        assert_eq!(size_label(1 << 20), "1MB");
    }

    #[test]
    fn node_sweep_doubles() {
        std::env::remove_var("HLWK_NODES");
        assert_eq!(node_sweep(2), vec![2, 4, 8, 16, 32, 64]);
        assert_eq!(node_sweep(8), vec![8, 16, 32, 64]);
    }
}
