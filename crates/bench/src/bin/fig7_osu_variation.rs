//! Figure 7: maximum performance variation of the OSU collectives when a
//! Hadoop workload is co-located, for the three isolation configurations.
//!
//! Y value per (operation, size): `(max - min) / mean * 100` over the
//! repetitions — "the maximum variation in percentage compared to the
//! average value".
//!
//! All (collective × OS variant × repetition) cells run as one pool
//! submission (whole-figure parallelism).

use bench::{header, max_nodes, osu_iters, runs, size_label};
use cluster::experiment::run_seed;
use cluster::{Cluster, ClusterConfig, OsVariant};
use simcore::{par, Cycles, Summary};
use workloads::osu::{Collective, OsuConfig};

fn main() {
    let nodes = max_nodes();
    let n_runs = runs();
    let osu_cfg = OsuConfig {
        warmup: 5,
        iters: osu_iters(),
        iter_gap: simcore::Cycles::from_us(300),
    };
    header(&format!(
        "Figure 7 — max performance variation (%) under co-located Hadoop, {nodes} nodes, {n_runs} runs"
    ));
    let variants = OsVariant::all();
    let colls = Collective::all();

    let cells: Vec<(Collective, OsVariant, usize)> = colls
        .iter()
        .flat_map(|&coll| {
            variants
                .iter()
                .flat_map(move |&os| (0..n_runs).map(move |run| (coll, os, run)))
        })
        .collect();
    let per_cell: Vec<Vec<f64>> = par::parallel_map(cells.len(), |ci| {
        let (coll, os, run) = cells[ci];
        let sizes = coll.message_sizes();
        let cfg = ClusterConfig::paper(os)
            .with_nodes(nodes)
            .with_insitu()
            .with_seed(run_seed(0xF167, run));
        let mut cluster = Cluster::build(cfg);
        let mut at = Cycles::from_ms(1);
        sizes
            .iter()
            .map(|&bytes| {
                let res = cluster.run_osu(coll, bytes, &osu_cfg, at).expect("fault-free");
                // Real OSU sweeps take minutes: cells are separated by
                // startup/teardown, sampling different phases of the
                // co-located job.
                at = res.end + Cycles::from_secs(2);
                res.latencies_us.iter().sum::<f64>()
                    / res.latencies_us.len() as f64
            })
            .collect()
    });

    let mut cursor = 0usize;
    for coll in colls {
        println!("\n--- {} ---", coll.name());
        println!(
            "{:>8} {:>22} {:>22} {:>12}",
            "size",
            "Linux+cgroup",
            "Linux+cgroup+isolcpus",
            "McKernel"
        );
        let sizes = coll.message_sizes();
        let mut per_variant: Vec<Vec<f64>> = Vec::new();
        for _os in variants {
            let per_run = &per_cell[cursor..cursor + n_runs];
            cursor += n_runs;
            // Variation across runs per size.
            let variation: Vec<f64> = (0..sizes.len())
                .map(|i| {
                    let vals: Vec<f64> = per_run.iter().map(|r| r[i]).collect();
                    Summary::from_samples(&vals).max_variation_pct()
                })
                .collect();
            per_variant.push(variation);
        }
        for (i, &bytes) in sizes.iter().enumerate() {
            println!(
                "{:>8} {:>21.1}% {:>21.1}% {:>11.1}%",
                size_label(bytes),
                per_variant[0][i],
                per_variant[1][i],
                per_variant[2][i]
            );
        }
    }
    println!("\nPaper shape: Linux+cgroup up to ~29%; McKernel ~2-6% on average; for");
    println!("large Reduce/Allreduce messages McKernel approaches or exceeds isolcpus");
    println!("(RDMA registration offloads through write()).");
}
