//! Correlated failure domains: asynchronous hierarchical checkpointing
//! vs blocking checkpoint-restart vs abort, under node- and rack-scale
//! fail-stops.
//!
//! Not a figure from the paper — its clusters are assumed reliable —
//! but the production question the recovery layer exists to answer:
//! when a whole rack dies (ToR switch, PDU), how much work rolls back
//! and does the job even survive? Grid: OS variant × recovery policy ×
//! fault scenario on 8 nodes, with the rack kill run at two domain
//! sizes (2 racks of 4 and 4 racks of 2).
//!
//! Scenarios:
//! * `none`      — fault-free; measures checkpoint overhead alone;
//! * `node-kill` — node 5 fail-stops at 84% of the job;
//! * `rack/4`    — rack 1 of 2 (nodes 4..8) fail-stops at 84%;
//! * `rack/2`    — rack 1 of 4 (nodes 2..4) fail-stops at 84%;
//! * `storm`     — stochastic correlated faults (per-node and per-rack
//!   Poisson arrivals from the domain plan's own RNG streams).
//!
//! Policies: abort, blocking checkpoint-restart (interval 2), and the
//! hierarchical checkpointer with partner-rack (`hier…xrack`) and
//! same-rack (`hier…srack`) buddy placement. The rack kills separate
//! the two placements: same-rack buddies die with their owners and
//! recovery falls back to the global checkpoint, while partner-rack
//! buddies survive and restore from the much newer local snapshot.
//!
//! The summary metrics land in `BENCH_resilience.json`. Unlike the
//! wall-clock benches (`fig_mem` &c.) every number here is simulated
//! time — deterministic across machines — so `--check` compares against
//! the committed baseline exactly (to printed precision), and three
//! acceptance claims are asserted outright in every mode:
//!
//! 1. buddy restore rolls back strictly less work than global restore
//!    under the rack kill;
//! 2. degraded mode completes the rack-kill run that abort loses;
//! 3. asynchronous checkpoint overhead is below blocking overhead.
//!
//! Knobs: `HLWK_DOMAIN_ITERS` (job length) and `HLWK_DOMAIN_SEED`
//! (master seed) — leave both at the defaults for `--check` —
//! plus `HLWK_BENCH_OUT` (output path).

use bench::{domain_iters, domain_seed, header};
use cluster::{
    run_resilient, BuddyPlacement, Cluster, ClusterConfig, HierarchicalCkpt, OsVariant,
    RecoveryCosts, RecoveryPolicy, RecoveryReport,
};
use simcore::fault::{DomainEvent, DomainEventKind, DomainFaultConfig, DomainScope};
use simcore::{par, Cycles};
use workloads::miniapps::MiniApp;

const NODES: u32 = 8;
/// Where in the job the deterministic kills land (fraction of estimated
/// run time). 0.84 puts the death inside iteration ~9 of 12: past the
/// iter-8 local snapshot *and* its buddy commit, past the iter-6 global
/// commit — so buddy restore (rollback 1) and global restore
/// (rollback 3) separate with both strictly positive.
const KILL_FRAC: f64 = 0.84;
/// Storm arrival rates: hot enough that a ~4 s job sees correlated
/// losses, cool enough that survivors usually remain.
const STORM_NODE_PER_HOUR: f64 = 120.0;
const STORM_RACK_PER_HOUR: f64 = 60.0;

#[derive(Clone, Copy, PartialEq)]
enum Scenario {
    None,
    NodeKill,
    /// Deterministic rack-1 kill at the given rack width.
    RackKill { nodes_per_rack: u32 },
    Storm,
}

const SCENARIOS: [Scenario; 5] = [
    Scenario::None,
    Scenario::NodeKill,
    Scenario::RackKill { nodes_per_rack: 4 },
    Scenario::RackKill { nodes_per_rack: 2 },
    Scenario::Storm,
];

impl Scenario {
    fn label(self) -> String {
        match self {
            Scenario::None => "none".into(),
            Scenario::NodeKill => "node-kill".into(),
            Scenario::RackKill { nodes_per_rack } => format!("rack/{nodes_per_rack}"),
            Scenario::Storm => "storm".into(),
        }
    }

    fn nodes_per_rack(self) -> u32 {
        match self {
            Scenario::RackKill { nodes_per_rack } => nodes_per_rack,
            _ => 4,
        }
    }
}

fn policies() -> Vec<RecoveryPolicy> {
    vec![
        RecoveryPolicy::Abort,
        RecoveryPolicy::CheckpointRestart { interval: 2 },
        RecoveryPolicy::Hierarchical(HierarchicalCkpt::paper_default()),
        RecoveryPolicy::Hierarchical(HierarchicalCkpt {
            buddy: BuddyPlacement::SameRack,
            ..HierarchicalCkpt::paper_default()
        }),
    ]
}

fn app() -> MiniApp {
    MiniApp {
        iterations: domain_iters(),
        ..MiniApp::hpccg()
    }
}

fn run_cell(os: OsVariant, policy: RecoveryPolicy, scenario: Scenario) -> Result<RecoveryReport, Cycles> {
    let start = Cycles::from_ms(1);
    let app = app();
    let mut cfg = ClusterConfig::paper(os)
        .with_nodes(NODES)
        .with_seed(domain_seed())
        .with_domains(scenario.nodes_per_rack(), 2);
    cfg.horizon_secs = 60;
    let est = app.thread_quantum(NODES as usize) + Cycles::from_ms(1);
    let kill_at = start + est.scale(f64::from(app.iterations) * KILL_FRAC);
    match scenario {
        Scenario::None => {}
        Scenario::NodeKill => {
            cfg = cfg.with_domain_event(DomainEvent {
                at: kill_at,
                scope: DomainScope::Node(5),
                kind: DomainEventKind::FailStop,
            });
        }
        Scenario::RackKill { .. } => {
            cfg = cfg.with_domain_event(DomainEvent {
                at: kill_at,
                scope: DomainScope::Rack(1),
                kind: DomainEventKind::FailStop,
            });
        }
        Scenario::Storm => {
            cfg = cfg.with_domain_faults(
                DomainFaultConfig::off()
                    .with_node_fails(STORM_NODE_PER_HOUR)
                    .with_rack_fails(STORM_RACK_PER_HOUR),
            );
        }
    }
    let mut c = Cluster::build(cfg);
    run_resilient(&mut c, &app, policy, &RecoveryCosts::default(), start)
        .map_err(|f| f.detected_at)
}

/// Round to the precision `to_json` prints, so fresh runs compare
/// exactly against a parsed baseline.
fn round4(v: f64) -> f64 {
    (v * 1e4).round() / 1e4
}

fn collect() -> Vec<(&'static str, f64)> {
    let oses = [OsVariant::LinuxCgroup, OsVariant::McKernel];
    let pols = policies();
    let mut cells = Vec::new();
    for &os in &oses {
        for &p in &pols {
            for s in SCENARIOS {
                cells.push((os, p, s));
            }
        }
    }
    let rows: Vec<Result<RecoveryReport, Cycles>> =
        par::parallel_map(cells.len(), |ci| run_cell(cells[ci].0, cells[ci].1, cells[ci].2));
    let idx = |oi: usize, pi: usize, si: usize| (oi * pols.len() + pi) * SCENARIOS.len() + si;

    for (oi, os) in oses.iter().enumerate() {
        println!("\n--- {} ---", os.label());
        println!(
            "{:>22} {:>10} {:>10} {:>7} {:>6} {:>6} {:>8} {:>6}",
            "policy", "scenario", "time", "redone", "l.ckpt", "g.ckpt", "restore", "alive"
        );
        for (pi, p) in pols.iter().enumerate() {
            for (si, s) in SCENARIOS.iter().enumerate() {
                match &rows[idx(oi, pi, si)] {
                    Ok(rep) => println!(
                        "{:>22} {:>10} {:>9.3}s {:>7} {:>6} {:>6} {:>8} {:>6}",
                        p.label(),
                        s.label(),
                        rep.time.as_secs_f64(),
                        rep.redone_iters,
                        rep.local_ckpts,
                        rep.global_ckpts,
                        match (rep.buddy_restores, rep.global_restores) {
                            (0, 0) => "-".into(),
                            (b, g) => format!("{b}b/{g}g"),
                        },
                        rep.survivors
                    ),
                    Err(at) => println!(
                        "{:>22} {:>10} {:>10} {:>7} {:>6} {:>6} {:>8} {:>6}",
                        p.label(),
                        s.label(),
                        format!("ABORT@{:.2}s", at.as_secs_f64()),
                        "-",
                        "-",
                        "-",
                        "-",
                        "-"
                    ),
                }
            }
        }
    }

    // Metric cells: McKernel (oi 1) unless named otherwise. Policy
    // indices mirror `policies()`: 0 abort, 1 blocking, 2 hier-xrack,
    // 3 hier-srack; scenario indices mirror `SCENARIOS`.
    let cell = |oi: usize, pi: usize, si: usize| &rows[idx(oi, pi, si)];
    let ok = |pi: usize, si: usize| cell(1, pi, si).as_ref().expect("completes");
    let plain = ok(0, 0).time.as_secs_f64();
    let overhead = |t: f64| 100.0 * (t - plain) / plain;
    let xrack_rack = ok(2, 2);
    let srack_rack = ok(3, 2);
    let storm_hier = cell(1, 2, 4);
    vec![
        ("plain_time_s", round4(plain)),
        ("hier_overhead_pct", round4(overhead(ok(2, 0).time.as_secs_f64()))),
        ("blocking_overhead_pct", round4(overhead(ok(1, 0).time.as_secs_f64()))),
        ("node_redone_hier", f64::from(ok(2, 1).redone_iters)),
        ("rack_redone_buddy", f64::from(xrack_rack.redone_iters)),
        ("rack_redone_global", f64::from(srack_rack.redone_iters)),
        ("rack_buddy_restores", f64::from(xrack_rack.buddy_restores)),
        ("rack_global_restores", f64::from(srack_rack.global_restores)),
        (
            "rack_completed_abort",
            f64::from(u8::from(cell(1, 0, 2).is_ok())),
        ),
        ("rack_completed_degraded", 1.0),
        (
            "recovered_frac_rack",
            round4(xrack_rack.survivors as f64 / f64::from(NODES)),
        ),
        ("rack_ranks_lost", f64::from(xrack_rack.ranks_lost)),
        ("rack_detect_us", round4(xrack_rack.detection_latency.map_or(0.0, |d| d.as_us_f64()))),
        ("rack_time_degraded_s", round4(xrack_rack.time.as_secs_f64())),
        // Domain-size axis: the narrow-rack kill loses 2 ranks, not 4.
        ("rack2_redone_buddy", f64::from(ok(2, 3).redone_iters)),
        (
            "recovered_frac_rack2",
            round4(ok(2, 3).survivors as f64 / f64::from(NODES)),
        ),
        // OS axis: same degraded rack-kill run on Linux+cgroup.
        (
            "linux_rack_time_degraded_s",
            round4(cell(0, 2, 2).as_ref().expect("completes").time.as_secs_f64()),
        ),
        // Storm axis: stochastic correlated faults under the degraded
        // hierarchical policy — completion plus how much was lost.
        (
            "storm_completed_hier",
            f64::from(u8::from(storm_hier.is_ok())),
        ),
        (
            "storm_ranks_lost_hier",
            storm_hier.as_ref().map_or(f64::from(NODES), |r| f64::from(r.ranks_lost)),
        ),
    ]
}

fn find(metrics: &[(&str, f64)], k: &str) -> f64 {
    metrics.iter().find(|(mk, _)| *mk == k).expect("present").1
}

/// The acceptance claims, enforced in every mode.
fn assert_claims(metrics: &[(&str, f64)]) -> bool {
    let mut failed = false;
    let buddy = find(metrics, "rack_redone_buddy");
    let global = find(metrics, "rack_redone_global");
    if buddy >= global {
        eprintln!(
            "CLAIM VIOLATION: buddy restore redid {buddy} iters, not strictly less than global's {global}"
        );
        failed = true;
    }
    if find(metrics, "rack_completed_abort") != 0.0 {
        eprintln!("CLAIM VIOLATION: abort unexpectedly survived the rack kill");
        failed = true;
    }
    if find(metrics, "rack_buddy_restores") < 1.0 || find(metrics, "rack_global_restores") < 1.0 {
        eprintln!(
            "CLAIM VIOLATION: expected >=1 buddy restore (xrack) and >=1 global restore (srack)"
        );
        failed = true;
    }
    let hier = find(metrics, "hier_overhead_pct");
    let blocking = find(metrics, "blocking_overhead_pct");
    if hier >= blocking {
        eprintln!(
            "CLAIM VIOLATION: async hierarchical overhead {hier:.4}% not below blocking {blocking:.4}%"
        );
        failed = true;
    }
    failed
}

fn to_json(metrics: &[(&str, f64)]) -> String {
    let mut out = String::from("{\n  \"bench\": \"fig_domains\",\n  \"metrics\": {\n");
    for (i, (k, v)) in metrics.iter().enumerate() {
        let comma = if i + 1 == metrics.len() { "" } else { "," };
        out.push_str(&format!("    \"{k}\": {v:.4}{comma}\n"));
    }
    out.push_str("  }\n}\n");
    out
}

/// Minimal parser for the flat `"key": number` JSON this binary writes.
fn parse_metrics(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((key, val)) = line.split_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        if let Ok(v) = val.trim().parse::<f64>() {
            out.push((key.to_string(), v));
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let iters = domain_iters();
    header(&format!(
        "Failure domains — HPC-CG x{iters} on {NODES} nodes; deterministic kills at {:.0}% of the job",
        KILL_FRAC * 100.0
    ));
    let metrics = collect();
    println!();
    for (k, v) in &metrics {
        println!("{k:>28}: {v:10.4}");
    }
    let mut failed = assert_claims(&metrics);

    if let Some(i) = args.iter().position(|a| a == "--check") {
        let path = args.get(i + 1).expect("--check needs a baseline path");
        let baseline = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let base = parse_metrics(&baseline);
        for (k, v) in &metrics {
            match base.iter().find(|(bk, _)| bk == k) {
                // Simulated time is deterministic: any drift at printed
                // precision is a real behavior change, not noise.
                Some((_, bv)) if (v - bv).abs() > 1e-9 => {
                    eprintln!("DETERMINISM REGRESSION: {k} = {v:.4} vs baseline {bv:.4}");
                    failed = true;
                }
                Some(_) => {}
                None => eprintln!("warning: baseline is missing metric {k}"),
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!("domain check passed (exact match vs {path}; all claims hold)");
        return;
    }

    if failed {
        std::process::exit(1);
    }
    let out = std::env::var("HLWK_BENCH_OUT").unwrap_or_else(|_| "BENCH_resilience.json".into());
    std::fs::write(&out, to_json(&metrics)).expect("write benchmark output");
    println!("wrote {out}");
}
