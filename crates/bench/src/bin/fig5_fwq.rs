//! Figure 5: FWQ noise measurements for Linux and McKernel with and
//! without a competing Hadoop workload.
//!
//! Reproduces the five panels: (a) Linux+cgroup, (b) McKernel,
//! (c) Linux+cgroup with Hadoop, (d) Linux+cgroup+isolcpus with Hadoop,
//! (e) McKernel with Hadoop. For each, the worst 480-sample window of a
//! measurement interval is reported (the paper's selection rule), plus
//! the per-panel sample series on request (`HLWK_SERIES=1`).

use bench::{fwq_secs, header};
use cluster::{Cluster, ClusterConfig, OsVariant};
use simcore::{Cycles, LogHistogram, Summary};
use workloads::fwq;

struct Panel {
    label: &'static str,
    os: OsVariant,
    insitu: bool,
}

fn main() {
    let panels = [
        Panel {
            label: "(a) Linux+cgroup",
            os: OsVariant::LinuxCgroup,
            insitu: false,
        },
        Panel {
            label: "(b) McKernel",
            os: OsVariant::McKernel,
            insitu: false,
        },
        Panel {
            label: "(c) Linux+cgroup with Hadoop",
            os: OsVariant::LinuxCgroup,
            insitu: true,
        },
        Panel {
            label: "(d) Linux+cgroup+isolcpus with Hadoop",
            os: OsVariant::LinuxCgroupIsolcpus,
            insitu: true,
        },
        Panel {
            label: "(e) McKernel with Hadoop",
            os: OsVariant::McKernel,
            insitu: true,
        },
    ];
    let secs = fwq_secs();
    let quantum = fwq::DEFAULT_QUANTUM;
    header(&format!(
        "Figure 5 — FWQ noise (quantum {} cycles, {secs}s interval, worst {} samples)",
        quantum.raw(),
        fwq::WINDOW
    ));
    println!(
        "{:<40} {:>10} {:>10} {:>10} {:>10} {:>9} {:>9}",
        "configuration", "min(cy)", "mean(cy)", "max(cy)", "slowdown", "spikes", "tail>2x"
    );
    for p in panels {
        let mut cfg = ClusterConfig::paper(p.os).with_nodes(1).with_seed(0xF165);
        cfg.insitu = p.insitu;
        cfg.horizon_secs = secs + 2;
        let mut cluster = Cluster::build(cfg);
        let samples = cluster.fwq(quantum, Cycles::from_secs(secs), Cycles::from_us(1));
        let worst = fwq::worst_window(&samples, fwq::WINDOW);
        let as_f: Vec<f64> = worst.iter().map(|&x| x as f64).collect();
        let s = Summary::from_samples(&as_f);
        let spikes = worst
            .iter()
            .filter(|&&x| x > 2 * quantum.raw())
            .count();
        // Distribution over the FULL interval (not just the worst
        // window): what fraction of all samples exceeded 2x the quantum.
        let mut hist = LogHistogram::new();
        hist.record_all(&samples);
        println!(
            "{:<40} {:>10.0} {:>10.0} {:>10.0} {:>9.1}x {:>9} {:>8.4}%",
            p.label,
            s.min,
            s.mean,
            s.max,
            s.max / quantum.raw() as f64,
            spikes,
            hist.tail_fraction_above(2 * quantum.raw()) * 100.0
        );
        if std::env::var("HLWK_HIST").is_ok() {
            print!("{}", hist.render(48));
        }
        if std::env::var("HLWK_SERIES").is_ok() {
            println!("  series: {:?}", worst);
        }
    }
    println!(
        "\nPaper shape: (a) low jitter, (b) virtually constant, (c) spikes up to ~16x,\n(d) improved but still significant variation, (e) no disturbance at all."
    );
}
