//! Figure 5: FWQ noise measurements for Linux and McKernel with and
//! without a competing Hadoop workload.
//!
//! Reproduces the five panels: (a) Linux+cgroup, (b) McKernel,
//! (c) Linux+cgroup with Hadoop, (d) Linux+cgroup+isolcpus with Hadoop,
//! (e) McKernel with Hadoop. For each, the worst 480-sample window of a
//! measurement interval is reported (the paper's selection rule), plus
//! the per-panel sample series on request (`HLWK_SERIES=1`).
//!
//! The five panels are independent single-node clusters and run as one
//! pool submission (whole-figure parallelism); each panel's derived
//! values are computed in its task and printed in panel order.

use bench::{fwq_secs, header};
use cluster::{Cluster, ClusterConfig, OsVariant};
use simcore::{par, Cycles, LogHistogram, Summary};
use workloads::fwq;

struct Panel {
    label: &'static str,
    os: OsVariant,
    insitu: bool,
}

/// Everything a panel's output rows need, computed in its pool task.
struct PanelResult {
    summary: Summary,
    spikes: usize,
    tail_pct: f64,
    hist_render: Option<String>,
    series: Option<String>,
}

fn main() {
    let panels = [
        Panel {
            label: "(a) Linux+cgroup",
            os: OsVariant::LinuxCgroup,
            insitu: false,
        },
        Panel {
            label: "(b) McKernel",
            os: OsVariant::McKernel,
            insitu: false,
        },
        Panel {
            label: "(c) Linux+cgroup with Hadoop",
            os: OsVariant::LinuxCgroup,
            insitu: true,
        },
        Panel {
            label: "(d) Linux+cgroup+isolcpus with Hadoop",
            os: OsVariant::LinuxCgroupIsolcpus,
            insitu: true,
        },
        Panel {
            label: "(e) McKernel with Hadoop",
            os: OsVariant::McKernel,
            insitu: true,
        },
    ];
    let secs = fwq_secs();
    let quantum = fwq::DEFAULT_QUANTUM;
    let want_hist = std::env::var("HLWK_HIST").is_ok();
    let want_series = std::env::var("HLWK_SERIES").is_ok();
    header(&format!(
        "Figure 5 — FWQ noise (quantum {} cycles, {secs}s interval, worst {} samples)",
        quantum.raw(),
        fwq::WINDOW
    ));
    println!(
        "{:<40} {:>10} {:>10} {:>10} {:>10} {:>9} {:>9}",
        "configuration", "min(cy)", "mean(cy)", "max(cy)", "slowdown", "spikes", "tail>2x"
    );
    let results: Vec<PanelResult> = par::parallel_map(panels.len(), |pi| {
        let p = &panels[pi];
        let mut cfg = ClusterConfig::paper(p.os).with_nodes(1).with_seed(0xF165);
        cfg.insitu = p.insitu;
        cfg.horizon_secs = secs + 2;
        let mut cluster = Cluster::build(cfg);
        let samples = cluster.fwq(quantum, Cycles::from_secs(secs), Cycles::from_us(1));
        let worst = fwq::worst_window(&samples, fwq::WINDOW);
        let as_f: Vec<f64> = worst.iter().map(|&x| x as f64).collect();
        let summary = Summary::from_samples(&as_f);
        let spikes = worst
            .iter()
            .filter(|&&x| x > 2 * quantum.raw())
            .count();
        // Distribution over the FULL interval (not just the worst
        // window): what fraction of all samples exceeded 2x the quantum.
        let mut hist = LogHistogram::new();
        hist.record_all(&samples);
        PanelResult {
            summary,
            spikes,
            tail_pct: hist.tail_fraction_above(2 * quantum.raw()) * 100.0,
            hist_render: want_hist.then(|| hist.render(48)),
            series: want_series.then(|| format!("{worst:?}")),
        }
    });
    for (p, r) in panels.iter().zip(&results) {
        println!(
            "{:<40} {:>10.0} {:>10.0} {:>10.0} {:>9.1}x {:>9} {:>8.4}%",
            p.label,
            r.summary.min,
            r.summary.mean,
            r.summary.max,
            r.summary.max / quantum.raw() as f64,
            r.spikes,
            r.tail_pct
        );
        if let Some(h) = &r.hist_render {
            print!("{h}");
        }
        if let Some(s) = &r.series {
            println!("  series: {s}");
        }
    }
    println!(
        "\nPaper shape: (a) low jitter, (b) virtually constant, (c) spikes up to ~16x,\n(d) improved but still significant variation, (e) no disturbance at all."
    );
}
