//! Offload hot-path microbenchmarks — the tracked perf baseline.
//!
//! Unlike the `fig*` binaries (which regenerate paper figures in
//! *modeled* time), this binary measures **host wall-clock** cost of the
//! three structures the offload path hammers: the end-to-end offload
//! round trip, address translation, and the IKC channel itself. The
//! numbers land in `BENCH_offload.json` so every future PR is held to a
//! perf trajectory (CI compares against the committed baseline with a
//! 2x tolerance — see `scripts/ci.sh --bench-smoke`).
//!
//! Knobs:
//! * `HLWK_BENCH_ITERS` — iterations per metric (default 20000);
//! * `HLWK_BENCH_OUT`   — output JSON path (default `BENCH_offload.json`);
//! * `--check <path>`   — compare a fresh run against a committed
//!   baseline instead of writing one; exits non-zero past 2x.

use cluster::{node::NodeRuntime, ClusterConfig, OsVariant};
use hlwk_core::abi::Sysno;
use hlwk_core::ihk::ikc::{IkcChannel, MsgKind};
use hlwk_core::mck::mem::pagetable::{PageTable, PteFlags};
use hlwk_core::mck::mem::tlb::SoftTlb;
use hlwk_core::mck::syscall::SyscallRequest;
use hwmodel::addr::{PhysAddr, VirtAddr, PAGE_SIZE, PAGE_SIZE_2M};
use simcore::{Cycles, StreamRng};
use std::hint::black_box;
use std::time::Instant;

/// Tolerance for the CI regression gate: a metric may regress up to
/// this factor against the committed baseline before CI fails.
const REGRESSION_TOLERANCE: f64 = 2.0;

fn iters() -> u64 {
    std::env::var("HLWK_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000)
}

/// Best-of-3 wall-clock nanoseconds per call of `f` over `n` calls.
fn measure<F: FnMut()>(n: u64, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..n {
            f();
        }
        let ns = start.elapsed().as_nanos() as f64 / n as f64;
        if ns < best {
            best = ns;
        }
    }
    best
}

fn build_node() -> NodeRuntime {
    let mut cfg = ClusterConfig::paper(OsVariant::McKernel).with_nodes(1);
    cfg.horizon_secs = 5;
    NodeRuntime::build(&cfg, 0, &StreamRng::root(1))
}

/// The offload round trip: marshal, IKC, delegator, proxy service with
/// unified-address-space dereference, reply. The headline metric.
fn bench_offload_roundtrip(n: u64) -> f64 {
    let mut node = build_node();
    let mut t = Cycles::from_ms(1);
    measure(n, || {
        t += Cycles(1000);
        black_box(node.offload_syscall(
            Sysno::GetRandom,
            [node.arena_va.raw(), 64, 0, 0, 0, 0],
            t,
        ));
    })
}

fn populated_pt() -> PageTable {
    let mut pt = PageTable::new();
    for i in 0..512u64 {
        pt.map_4k(
            VirtAddr(0x40_0000_0000 + i * PAGE_SIZE),
            PhysAddr(0x10_0000 + i * PAGE_SIZE),
            PteFlags::rw(),
        )
        .expect("unmapped");
    }
    for i in 0..16u64 {
        pt.map_2m(
            VirtAddr(0x80_0000_0000 + i * PAGE_SIZE_2M),
            PhysAddr(0x4000_0000 + i * PAGE_SIZE_2M),
            PteFlags::rw(),
        )
        .expect("unmapped");
    }
    pt
}

/// Same page translated repeatedly — a software-TLB hit (one array
/// index + tag compare in front of the radix walk).
fn bench_translate_hit(n: u64) -> f64 {
    let pt = populated_pt();
    let mut tlb = SoftTlb::new();
    measure(n, || {
        black_box(tlb.translate(&pt, VirtAddr(0x40_0000_5123)));
        black_box(tlb.translate(&pt, VirtAddr(0x80_0010_0123)));
    }) / 2.0
}

/// Sweeping translations (every lookup a different page: worst case for
/// any cache, exercises the raw walk).
fn bench_translate_miss(n: u64) -> f64 {
    let pt = populated_pt();
    let mut i = 0u64;
    measure(n, || {
        let va = 0x40_0000_0000 + (i % 512) * PAGE_SIZE + 0x123;
        i = i.wrapping_add(97);
        black_box(pt.translate(VirtAddr(va)));
    })
}

/// IKC send+recv pair throughput at the default queue depth, using the
/// zero-allocation path: encode-into-slot sends, by-reference receives.
fn bench_channel(n: u64) -> f64 {
    let mut ch = IkcChannel::new(IkcChannel::default_depth());
    let req = SyscallRequest {
        seq: 1,
        pid: 1000,
        tid: 1000,
        sysno: Sysno::Write.nr(),
        args: [3, 0x2000_0000, 4096, 0, 0, 0],
    };
    let mut seq = 0u64;
    measure(n, || {
        // Fill and drain half the queue per iteration.
        for _ in 0..32 {
            let mut r = req;
            seq += 1;
            r.seq = seq;
            ch.send_with(MsgKind::SyscallRequest, |b| r.encode_into(b))
                .expect("fits");
        }
        for _ in 0..32 {
            let m = ch.recv_ref().expect("just sent");
            black_box(m.verify());
            black_box(SyscallRequest::decode(m.payload));
        }
    }) / 64.0
}

fn run_all() -> Vec<(&'static str, f64)> {
    let n = iters();
    vec![
        ("offload_roundtrip_ns", bench_offload_roundtrip(n)),
        ("translate_hit_ns", bench_translate_hit(n)),
        ("translate_miss_ns", bench_translate_miss(n)),
        ("channel_send_recv_ns", bench_channel(n / 32)),
    ]
}

fn to_json(metrics: &[(&str, f64)]) -> String {
    let mut out = String::from("{\n  \"bench\": \"fig_offload_hotpath\",\n  \"metrics\": {\n");
    for (i, (k, v)) in metrics.iter().enumerate() {
        let comma = if i + 1 == metrics.len() { "" } else { "," };
        out.push_str(&format!("    \"{k}\": {v:.2}{comma}\n"));
    }
    out.push_str("  }\n}\n");
    out
}

/// Minimal parser for the flat `"key": number` JSON this binary writes.
fn parse_metrics(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((key, val)) = line.split_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        if let Ok(v) = val.trim().parse::<f64>() {
            out.push((key.to_string(), v));
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let metrics = run_all();
    println!("=== offload hot path (host wall clock) ===");
    for (k, v) in &metrics {
        println!("{k:>24}: {v:10.1} ns");
    }

    if let Some(i) = args.iter().position(|a| a == "--check") {
        let path = args.get(i + 1).expect("--check needs a baseline path");
        let baseline = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let base = parse_metrics(&baseline);
        let mut failed = false;
        for (k, v) in &metrics {
            match base.iter().find(|(bk, _)| bk == k) {
                Some((_, bv)) if *v > bv * REGRESSION_TOLERANCE => {
                    eprintln!(
                        "PERF REGRESSION: {k} = {v:.1} ns vs baseline {bv:.1} ns (>{REGRESSION_TOLERANCE}x)"
                    );
                    failed = true;
                }
                Some((_, bv)) => {
                    println!("{k:>24}: ok ({:.2}x of baseline)", v / bv);
                }
                None => eprintln!("warning: baseline is missing metric {k}"),
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!("perf check passed (tolerance {REGRESSION_TOLERANCE}x)");
        return;
    }

    let out = std::env::var("HLWK_BENCH_OUT").unwrap_or_else(|_| "BENCH_offload.json".into());
    std::fs::write(&out, to_json(&metrics)).expect("write benchmark output");
    println!("wrote {out}");
}
