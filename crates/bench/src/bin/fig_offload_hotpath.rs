//! Offload hot-path microbenchmarks — the tracked perf baseline.
//!
//! Unlike the `fig*` binaries (which regenerate paper figures in
//! *modeled* time), this binary measures **host wall-clock** cost of the
//! structures the offload path hammers: the end-to-end offload round
//! trip (interleaved with the promoted in-LWK read it is compared
//! against, so the bypass-floor ratio is ambient-burst-proof), address
//! translation, and the IKC channel itself. The numbers land in
//! `BENCH_offload.json` so every future PR is held to a perf trajectory
//! (CI compares against the committed baseline with a 2x tolerance —
//! see `scripts/ci.sh --bench-smoke`); `fig_bypass` merges the rest of
//! the bypass sweep into the same file.
//!
//! Knobs:
//! * `HLWK_BENCH_ITERS` — iterations per metric (default 20000);
//! * `HLWK_BENCH_OUT`   — output JSON path (default `BENCH_offload.json`);
//! * `--check <path>`   — compare a fresh run against a committed
//!   baseline instead of writing one; exits non-zero past 2x.

use cluster::{node::NodeRuntime, ClusterConfig, OsVariant};
use hlwk_core::abi::Sysno;
use hlwk_core::ihk::ikc::{IkcChannel, MsgKind};
use hlwk_core::mck::mem::pagetable::{PageTable, PteFlags};
use hlwk_core::mck::mem::tlb::SoftTlb;
use hlwk_core::mck::syscall::{BypassConfig, SyscallRequest};
use hwmodel::addr::{PhysAddr, VirtAddr, PAGE_SIZE, PAGE_SIZE_2M};
use simcore::{Cycles, StreamRng};
use std::hint::black_box;
use std::time::Instant;

/// Tolerance for the CI regression gate: a metric may regress up to
/// this factor against the committed baseline before CI fails.
const REGRESSION_TOLERANCE: f64 = 2.0;

/// Floor for the profile-guided bypass: a promoted read must beat the
/// full offload round trip by at least this factor, with the MPK-style
/// protection domains armed (their entry/exit bookkeeping is part of
/// the measured cost).
const BYPASS_FLOOR: f64 = 3.0;

fn iters() -> u64 {
    std::env::var("HLWK_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000)
}

/// Best-of-3 wall-clock nanoseconds per call of `f` over `n` calls.
fn measure<F: FnMut()>(n: u64, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..n {
            f();
        }
        let ns = start.elapsed().as_nanos() as f64 / n as f64;
        if ns < best {
            best = ns;
        }
    }
    best
}

/// Best-of-5 per side with the trials interleaved a, b, a, b, …: the
/// bypass floor below compares two measured minima, and on a shared
/// host a sustained ambient-load burst covering one side's entire
/// sequential best-of-5 run could fake a >3x swing either way.
/// Interleaved, a burst degrades both minima or neither.
fn measure_pair<F: FnMut(), G: FnMut()>(n: u64, mut a: F, mut b: G) -> (f64, f64) {
    let mut best = (f64::INFINITY, f64::INFINITY);
    for _ in 0..5 {
        let start = Instant::now();
        for _ in 0..n {
            a();
        }
        best.0 = best.0.min(start.elapsed().as_nanos() as f64 / n as f64);
        let start = Instant::now();
        for _ in 0..n {
            b();
        }
        best.1 = best.1.min(start.elapsed().as_nanos() as f64 / n as f64);
    }
    best
}

fn build_node() -> NodeRuntime {
    let mut cfg = ClusterConfig::paper(OsVariant::McKernel).with_nodes(1);
    cfg.horizon_secs = 5;
    NodeRuntime::build(&cfg, 0, &StreamRng::root(1))
}

/// Open a regular (page-cached) file through the full offload path,
/// reusing the already-faulted arena page for the path string.
fn open_regular(node: &mut NodeRuntime) -> (u64, Cycles) {
    let pa = node
        .mck
        .as_ref()
        .expect("mckernel node")
        .process(node.app_pid)
        .expect("app")
        .aspace
        .pt
        .translate(node.arena_va)
        .expect("arena faulted at setup")
        .phys;
    node.hw.mem.write(pa, b"/data/bench.bin\0");
    let (fd, t) = node.offload_syscall(
        Sysno::Open,
        [node.arena_va.raw(), 0, 0, 0, 0, 0],
        Cycles::from_ms(1),
    );
    assert!(fd >= 0, "offloaded open failed: {fd}");
    (fd as u64, t)
}

/// The headline pair, interleaved: the full offload round trip
/// (marshal, IKC, delegator, proxy service with unified-address-space
/// dereference, reply) against a promoted in-LWK read with protection
/// domains armed. The `--check` floor gates on this ratio, so the two
/// sides must be measured under the same ambient load.
fn bench_offload_vs_bypass(n: u64) -> (f64, f64) {
    let mut off = build_node();
    let mut t_off = Cycles::from_ms(1);
    let arena = off.arena_va.raw();

    let mut fast = build_node();
    fast.mck.as_mut().expect("mckernel node").bypass = BypassConfig {
        enabled: true,
        promote_after: 1,
        domains: false,
    };
    fast.enable_domains();
    let (fd, t) = open_regular(&mut fast);
    // Warm the promotion: one offloaded read seeds the heat profiler
    // and the promotability lease; everything after stays in-LWK.
    let buf = fast.arena_va.raw();
    let (r, mut t_fast) = fast.offload_syscall(Sysno::Read, [fd, buf, 64, 0, 0, 0], t);
    assert_eq!(r, 64);

    let pair = measure_pair(
        n,
        || {
            t_off += Cycles(1000);
            black_box(off.offload_syscall(Sysno::GetRandom, [arena, 64, 0, 0, 0, 0], t_off));
        },
        || {
            t_fast += Cycles(1000);
            black_box(fast.offload_syscall(Sysno::Read, [fd, buf, 64, 0, 0, 0], t_fast));
        },
    );
    // Honesty: the fast side really did bypass (exactly one offloaded
    // read — the warmup — ever reached Linux's read arm).
    assert!(fast.bypass_promoted >= 5 * n);
    assert_eq!(fast.bypass_fallbacks, 0);
    pair
}

fn populated_pt() -> PageTable {
    let mut pt = PageTable::new();
    for i in 0..512u64 {
        pt.map_4k(
            VirtAddr(0x40_0000_0000 + i * PAGE_SIZE),
            PhysAddr(0x10_0000 + i * PAGE_SIZE),
            PteFlags::rw(),
        )
        .expect("unmapped");
    }
    for i in 0..16u64 {
        pt.map_2m(
            VirtAddr(0x80_0000_0000 + i * PAGE_SIZE_2M),
            PhysAddr(0x4000_0000 + i * PAGE_SIZE_2M),
            PteFlags::rw(),
        )
        .expect("unmapped");
    }
    pt
}

/// Same page translated repeatedly — a software-TLB hit (one array
/// index + tag compare in front of the radix walk).
fn bench_translate_hit(n: u64) -> f64 {
    let pt = populated_pt();
    let mut tlb = SoftTlb::new();
    measure(n, || {
        black_box(tlb.translate(&pt, VirtAddr(0x40_0000_5123)));
        black_box(tlb.translate(&pt, VirtAddr(0x80_0010_0123)));
    }) / 2.0
}

/// Sweeping translations (every lookup a different page: worst case for
/// any cache, exercises the raw walk).
fn bench_translate_miss(n: u64) -> f64 {
    let pt = populated_pt();
    let mut i = 0u64;
    measure(n, || {
        let va = 0x40_0000_0000 + (i % 512) * PAGE_SIZE + 0x123;
        i = i.wrapping_add(97);
        black_box(pt.translate(VirtAddr(va)));
    })
}

/// IKC send+recv pair throughput at the default queue depth, using the
/// zero-allocation path: encode-into-slot sends, by-reference receives.
fn bench_channel(n: u64) -> f64 {
    let mut ch = IkcChannel::new(IkcChannel::default_depth());
    let req = SyscallRequest {
        seq: 1,
        pid: 1000,
        tid: 1000,
        sysno: Sysno::Write.nr(),
        args: [3, 0x2000_0000, 4096, 0, 0, 0],
    };
    let mut seq = 0u64;
    measure(n, || {
        // Fill and drain half the queue per iteration.
        for _ in 0..32 {
            let mut r = req;
            seq += 1;
            r.seq = seq;
            ch.send_with(MsgKind::SyscallRequest, |b| r.encode_into(b))
                .expect("fits");
        }
        for _ in 0..32 {
            let m = ch.recv_ref().expect("just sent");
            black_box(m.verify());
            black_box(SyscallRequest::decode(m.payload));
        }
    }) / 64.0
}

fn run_all() -> Vec<(&'static str, f64)> {
    let n = iters();
    let (roundtrip, bypass_read) = bench_offload_vs_bypass(n);
    vec![
        ("offload_roundtrip_ns", roundtrip),
        ("bypass_read_ns", bypass_read),
        ("translate_hit_ns", bench_translate_hit(n)),
        ("translate_miss_ns", bench_translate_miss(n)),
        ("channel_send_recv_ns", bench_channel(n / 32)),
        // Environment honesty: how hard this baseline was driven. Not a
        // performance metric — `--check` exempts it from the gate.
        ("bench_iters", n as f64),
    ]
}

fn to_json(metrics: &[(&str, f64)]) -> String {
    let mut out = String::from("{\n  \"bench\": \"fig_offload_hotpath\",\n  \"metrics\": {\n");
    for (i, (k, v)) in metrics.iter().enumerate() {
        let comma = if i + 1 == metrics.len() { "" } else { "," };
        out.push_str(&format!("    \"{k}\": {v:.2}{comma}\n"));
    }
    out.push_str("  }\n}\n");
    out
}

/// Minimal parser for the flat `"key": number` JSON this binary writes.
fn parse_metrics(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((key, val)) = line.split_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        if let Ok(v) = val.trim().parse::<f64>() {
            out.push((key.to_string(), v));
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let metrics = run_all();
    println!("=== offload hot path (host wall clock) ===");
    for (k, v) in &metrics {
        if *k == "bench_iters" {
            println!("{k:>24}: {v:10.0}");
        } else {
            println!("{k:>24}: {v:10.1} ns");
        }
    }

    if let Some(i) = args.iter().position(|a| a == "--check") {
        let path = args.get(i + 1).expect("--check needs a baseline path");
        let baseline = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let base = parse_metrics(&baseline);
        let mut failed = false;
        for (k, v) in &metrics {
            if *k == "bench_iters" {
                continue; // environment record, not a perf metric
            }
            match base.iter().find(|(bk, _)| bk == k) {
                Some((_, bv)) if *v > bv * REGRESSION_TOLERANCE => {
                    eprintln!(
                        "PERF REGRESSION: {k} = {v:.1} ns vs baseline {bv:.1} ns (>{REGRESSION_TOLERANCE}x)"
                    );
                    failed = true;
                }
                Some((_, bv)) => {
                    println!("{k:>24}: ok ({:.2}x of baseline)", v / bv);
                }
                None => eprintln!("warning: baseline is missing metric {k}"),
            }
        }
        // Bypass floor on the FRESH interleaved pair (not the committed
        // baseline): the promoted read must beat the offload round trip
        // by BYPASS_FLOOR even while paying domain switches.
        let get = |name: &str| metrics.iter().find(|(k, _)| *k == name).map(|(_, v)| *v);
        if let (Some(rt), Some(by)) = (get("offload_roundtrip_ns"), get("bypass_read_ns")) {
            if by * BYPASS_FLOOR > rt {
                eprintln!(
                    "BYPASS FLOOR: promoted read {by:.1} ns is not {BYPASS_FLOOR}x faster \
                     than the {rt:.1} ns offload roundtrip"
                );
                failed = true;
            } else {
                println!("{:>24}: ok ({:.1}x of roundtrip)", "bypass floor", rt / by);
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!("perf check passed (tolerance {REGRESSION_TOLERANCE}x)");
        return;
    }

    let out = std::env::var("HLWK_BENCH_OUT").unwrap_or_else(|_| "BENCH_offload.json".into());
    std::fs::write(&out, to_json(&metrics)).expect("write benchmark output");
    println!("wrote {out}");
}
