//! Fig. 8/9-style scaling sweep at 1024 and 4096 nodes — the headline
//! workload of the partitioned event engine.
//!
//! The per-figure binaries top out at 64 nodes because the collectives
//! layer walks one shared fabric serially. This sweep runs the
//! `mpisim::windowed` BSP model (per-node partitions, LogGP links,
//! conservative lookahead windows) at the paper-scale node counts, in two
//! noise profiles echoing Fig. 8's OS axis: *quiet* (McKernel-like, ~zero
//! per-iteration jitter) and *noisy* (Linux-like jitter, which recursive
//! doubling amplifies into whole-machine stragglers).
//!
//! For each node count it also measures the **intra-run speedup**: host
//! wall-clock of the identical run on 1 worker thread vs the full
//! `simcore::par` pool, asserting the trace digests match exactly —
//! thread count must change wall time only, never results. The speedup
//! lands in `BENCH_engine.json` (merged into the existing metrics, not
//! overwriting them) as `scale_1024_speedup_x` / `scale_4096_speedup_x`.
//!
//! Modes:
//! * default       — sweep + merge metrics into `HLWK_BENCH_OUT`
//!   (default `BENCH_engine.json`);
//! * `--check <p>` — re-run the 1024 point and gate: digests identical at
//!   1/2/4/pool threads, and the speedup above a floor when this host has
//!   real workers (on one core the ratio is scheduling noise, skipped);
//! * `--soak`      — multi-seed hang hunt: runs with deterministic NIC
//!   blackouts armed, which shrinks the engine window to the bare wire
//!   latency (the fault-mode lookahead of `ReliableFabric`). A
//!   conservative-sync bug (window too wide, or a lost wake) shows up as
//!   a lookahead panic, a non-`Done` node, or a diverging digest.
//!
//! `HLWK_SCALE_ITERS` sets BSP iterations per run (default 6).

use mpisim::windowed::{self, Blackout, WindowedConfig, WindowedRun};
use simcore::{par, Cycles};
use std::time::Instant;

fn iterations() -> u32 {
    std::env::var("HLWK_SCALE_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(6)
}

/// Quiet profile: McKernel-like — the LWK schedules nothing behind the
/// application's back, so per-iteration compute is essentially exact.
fn quiet(nodes: usize) -> WindowedConfig {
    WindowedConfig {
        jitter: Cycles::ZERO,
        ..WindowedConfig::paper(nodes, iterations())
    }
}

/// Noisy profile: Linux-like — timer ticks, kworkers and RCU callbacks
/// stretch some ranks' compute blocks; the allreduce then holds every
/// node hostage to the slowest one.
fn noisy(nodes: usize) -> WindowedConfig {
    WindowedConfig {
        jitter: Cycles::from_us(60),
        ..WindowedConfig::paper(nodes, iterations())
    }
}

/// Wall-clock milliseconds (best of `trials`) plus the run result, which
/// is asserted identical across trials.
fn timed(cfg: &WindowedConfig, threads: usize, trials: u32) -> (f64, WindowedRun) {
    let mut best = f64::INFINITY;
    let mut result: Option<WindowedRun> = None;
    for _ in 0..trials {
        let start = Instant::now();
        let r = windowed::run(cfg, threads);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        if let Some(prev) = result {
            assert_eq!(prev, r, "identical config must reproduce identically");
        }
        result = Some(r);
        if ms < best {
            best = ms;
        }
    }
    (best, result.expect("at least one trial"))
}

/// One node-count point: noise table row + intra-run speedup.
struct Point {
    nodes: usize,
    quiet_s: f64,
    noisy_s: f64,
    wall_1t_ms: f64,
    wall_nt_ms: f64,
    events: u64,
}

impl Point {
    fn speedup(&self) -> f64 {
        self.wall_1t_ms / self.wall_nt_ms
    }
}

fn run_point(nodes: usize) -> Point {
    let threads = par::pool_size();
    let q = quiet(nodes);
    let (wall_1t, r1) = timed(&q, 1, 3);
    let (wall_nt, rn) = timed(&q, threads, 3);
    assert_eq!(
        r1, rn,
        "{nodes}-node run must be bit-identical at 1 and {threads} threads"
    );
    let (_, noisy_run) = timed(&noisy(nodes), threads, 1);
    Point {
        nodes,
        quiet_s: r1.makespan.as_secs_f64(),
        noisy_s: noisy_run.makespan.as_secs_f64(),
        wall_1t_ms: wall_1t,
        wall_nt_ms: wall_nt,
        events: r1.events,
    }
}

/// Deterministic blackout schedule for soak seed `s`: two nodes go dark
/// for staggered windows early in the run. RNG-free, so every failure
/// reproduces from its seed alone.
fn soak_config(nodes: usize, s: u64) -> WindowedConfig {
    let mut cfg = noisy(nodes);
    cfg.seed = cfg.seed.wrapping_add(s);
    let pick = |k: u64| (s.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(k as u32) as usize) % nodes;
    cfg.blackouts = vec![
        Blackout {
            node: pick(7),
            from: Cycles::from_us(400 + 30 * s),
            until: Cycles::from_us(900 + 70 * s),
        },
        Blackout {
            node: pick(31),
            from: Cycles::from_ms(1),
            until: Cycles::from_ms(1) + Cycles::from_us(200 * (s + 1)),
        },
    ];
    cfg
}

fn soak(seeds: u64) -> bool {
    let nodes = 256;
    let threads = par::pool_size();
    println!("=== soak: {seeds} seeds x {nodes} nodes, blackouts armed (lookahead = wire latency) ===");
    let mut ok = true;
    for s in 0..seeds {
        let cfg = soak_config(nodes, s);
        assert!(cfg.lookahead() < cfg.link.lookahead(), "soak must run the shrunken window");
        let (_, a) = timed(&cfg, 1, 1);
        let (_, b) = timed(&cfg, threads, 1);
        let line = if a == b { "ok" } else { "DIGEST MISMATCH" };
        ok &= a == b;
        println!(
            "  seed {s:>2}: makespan {:>9.3} ms, {:>8} events, digest {:016x}  {line}",
            a.makespan.as_secs_f64() * 1e3,
            a.events,
            a.digest
        );
    }
    ok
}

/// Speedup floor for this host: none on one core (the ratio is noise),
/// modest with 2-3 workers, the ISSUE's 4-thread target from 4 up.
fn speedup_floor() -> Option<f64> {
    match par::pool_size() {
        0 | 1 => None,
        2 | 3 => Some(1.2),
        _ => Some(2.5),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();

    if args.iter().any(|a| a == "--soak") {
        let seeds = args
            .iter()
            .position(|a| a == "--soak")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(6);
        if !soak(seeds) {
            std::process::exit(1);
        }
        println!("soak passed: every seed drained, digests thread-invariant");
        return;
    }

    if let Some(i) = args.iter().position(|a| a == "--check") {
        // The baseline path argument is accepted for symmetry with
        // fig_engine, but speedups are machine-shaped so the gate is a
        // floor on a fresh run, not a baseline comparison.
        let _ = args.get(i + 1);
        let threads = par::pool_size();
        let cfg = quiet(1024);
        // Digest invariance at every thread count the ISSUE names.
        let (_, base) = timed(&cfg, 1, 1);
        for t in [2usize, 4, threads.max(1)] {
            let (_, r) = timed(&cfg, t, 1);
            assert_eq!(r, base, "1024-node digest must not depend on {t} threads");
        }
        println!("determinism: 1024-node digest {:016x} identical at 1/2/4/{threads} threads", base.digest);
        let p = run_point(1024);
        match speedup_floor() {
            Some(floor) if p.speedup() < floor => {
                eprintln!(
                    "PERF REGRESSION: scale_1024_speedup_x = {:.2}x on {threads} workers (floor {floor:.1}x)",
                    p.speedup()
                );
                std::process::exit(1);
            }
            Some(floor) => println!(
                "scale_1024_speedup_x: ok ({:.2}x on {threads} workers, floor {floor:.1}x)",
                p.speedup()
            ),
            None => println!(
                "scale_1024_speedup_x: {:.2}x (single worker — informational only)",
                p.speedup()
            ),
        }
        println!("scale check passed");
        return;
    }

    let points: Vec<Point> = [1024usize, 4096].iter().map(|&n| run_point(n)).collect();

    println!("=== windowed BSP sweep (quiet = McKernel-like, noisy = Linux-like) ===");
    println!(
        "{:>6} {:>10} {:>10} {:>9} {:>12} {:>12} {:>9}",
        "nodes", "quiet s", "noisy s", "noise x", "wall 1t ms", "wall Nt ms", "speedup"
    );
    for p in &points {
        println!(
            "{:>6} {:>10.4} {:>10.4} {:>9.3} {:>12.1} {:>12.1} {:>8.2}x",
            p.nodes,
            p.quiet_s,
            p.noisy_s,
            p.noisy_s / p.quiet_s,
            p.wall_1t_ms,
            p.wall_nt_ms,
            p.speedup()
        );
    }
    println!(
        "pool: {} worker(s); events per 1024-node run: {}",
        par::pool_size(),
        points[0].events
    );

    let fresh: Vec<(String, f64)> = points
        .iter()
        .flat_map(|p| {
            [
                (format!("scale_{}_wall_1t_ms", p.nodes), p.wall_1t_ms),
                (format!("scale_{}_wall_nt_ms", p.nodes), p.wall_nt_ms),
                (format!("scale_{}_speedup_x", p.nodes), p.speedup()),
            ]
        })
        .collect();
    let out = std::env::var("HLWK_BENCH_OUT").unwrap_or_else(|_| "BENCH_engine.json".into());
    bench::merge_metrics_into(&out, &fresh);
}
