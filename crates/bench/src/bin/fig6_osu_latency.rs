//! Figure 6: OSU collective latency vs message size, Linux vs McKernel,
//! 64 nodes, 15 repetitions; reports average latency and run-to-run
//! variation (the paper's error bars).

use bench::{fmt_summary, header, max_nodes, osu_iters, runs, size_label};
use cluster::experiment::{parallel_runs, run_seed};
use cluster::{Cluster, ClusterConfig, OsVariant};
use simcore::{Cycles, Summary};
use workloads::osu::{Collective, OsuConfig};

fn main() {
    let nodes = max_nodes();
    let n_runs = runs();
    let osu_cfg = OsuConfig {
        warmup: 5,
        iters: osu_iters(),
        iter_gap: simcore::Cycles::from_us(300),
    };
    header(&format!(
        "Figure 6 — OSU collective latency, {nodes} nodes, {n_runs} runs, avg ± variation (us)"
    ));
    for coll in Collective::all() {
        println!("\n--- {} ---", coll.name());
        println!(
            "{:>8} {:>38} {:>38}",
            "size", "Linux", "McKernel"
        );
        let sizes = coll.message_sizes();
        // One full size sweep per run per OS, runs in parallel.
        let sweep = |os: OsVariant| -> Vec<Vec<f64>> {
            let sizes = sizes.clone();
            let per_run: Vec<Vec<f64>> = parallel_runs(n_runs, |run| {
                let cfg = ClusterConfig::paper(os)
                    .with_nodes(nodes)
                    .with_seed(run_seed(0xF166, run));
                let mut cluster = Cluster::build(cfg);
                let mut at = Cycles::from_ms(1);
                sizes
                    .iter()
                    .map(|&bytes| {
                        let res = cluster.run_osu(coll, bytes, &osu_cfg, at);
                        // Real OSU sweeps take minutes: cells are separated by
                        // startup/teardown, sampling different phases of the
                        // co-located job.
                        at = res.end + Cycles::from_secs(2);
                        res.latencies_us.iter().sum::<f64>()
                            / res.latencies_us.len() as f64
                    })
                    .collect()
            });
            per_run
        };
        let linux = sweep(OsVariant::LinuxCgroup);
        let mck = sweep(OsVariant::McKernel);
        for (i, &bytes) in sizes.iter().enumerate() {
            let l: Vec<f64> = linux.iter().map(|r| r[i]).collect();
            let m: Vec<f64> = mck.iter().map(|r| r[i]).collect();
            let ls = Summary::from_samples(&l);
            let ms = Summary::from_samples(&m);
            println!(
                "{:>8} {:>38} {:>38}",
                size_label(bytes),
                fmt_summary(&ls, "us"),
                fmt_summary(&ms, "us")
            );
        }
    }
    println!("\nPaper shape: similar averages on both OSes (McKernel slightly ahead for");
    println!("scatter/gather, Linux slightly ahead for small reduce), with visibly lower");
    println!("variation on McKernel across all operations.");
}
