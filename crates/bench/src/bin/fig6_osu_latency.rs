//! Figure 6: OSU collective latency vs message size, Linux vs McKernel,
//! 64 nodes, 15 repetitions; reports average latency and run-to-run
//! variation (the paper's error bars).
//!
//! The whole figure — every (collective × OS variant × repetition) cell
//! — is one submission to the bounded work-stealing pool, so all host
//! cores stay busy for the figure's full duration instead of joining at
//! each sweep boundary. Each cell runs one full size sweep (the sizes
//! within a run share a cluster and advance simulated time, so they stay
//! serial inside the cell).

use bench::{fmt_summary, header, max_nodes, osu_iters, runs, size_label};
use cluster::experiment::run_seed;
use cluster::{Cluster, ClusterConfig, OsVariant};
use simcore::{par, Cycles, Summary};
use workloads::osu::{Collective, OsuConfig};

fn main() {
    let nodes = max_nodes();
    let n_runs = runs();
    let osu_cfg = OsuConfig {
        warmup: 5,
        iters: osu_iters(),
        iter_gap: simcore::Cycles::from_us(300),
    };
    header(&format!(
        "Figure 6 — OSU collective latency, {nodes} nodes, {n_runs} runs, avg ± variation (us)"
    ));

    // Flatten the figure's full grid into one pool submission.
    let colls = Collective::all();
    let oses = [OsVariant::LinuxCgroup, OsVariant::McKernel];
    let cells: Vec<(Collective, OsVariant, usize)> = colls
        .iter()
        .flat_map(|&coll| {
            oses.iter()
                .flat_map(move |&os| (0..n_runs).map(move |run| (coll, os, run)))
        })
        .collect();
    let per_cell: Vec<Vec<f64>> = par::parallel_map(cells.len(), |ci| {
        let (coll, os, run) = cells[ci];
        let sizes = coll.message_sizes();
        let cfg = ClusterConfig::paper(os)
            .with_nodes(nodes)
            .with_seed(run_seed(0xF166, run));
        let mut cluster = Cluster::build(cfg);
        let mut at = Cycles::from_ms(1);
        sizes
            .iter()
            .map(|&bytes| {
                let res = cluster.run_osu(coll, bytes, &osu_cfg, at).expect("fault-free");
                // Real OSU sweeps take minutes: cells are separated by
                // startup/teardown, sampling different phases of the
                // co-located job.
                at = res.end + Cycles::from_secs(2);
                res.latencies_us.iter().sum::<f64>()
                    / res.latencies_us.len() as f64
            })
            .collect()
    });

    // Cells are grouped (collective-major, then OS, then run) in the
    // exact order the table consumes them.
    let mut cursor = 0usize;
    for coll in colls {
        println!("\n--- {} ---", coll.name());
        println!(
            "{:>8} {:>38} {:>38}",
            "size", "Linux", "McKernel"
        );
        let sizes = coll.message_sizes();
        let linux = &per_cell[cursor..cursor + n_runs];
        let mck = &per_cell[cursor + n_runs..cursor + 2 * n_runs];
        cursor += 2 * n_runs;
        for (i, &bytes) in sizes.iter().enumerate() {
            let l: Vec<f64> = linux.iter().map(|r| r[i]).collect();
            let m: Vec<f64> = mck.iter().map(|r| r[i]).collect();
            let ls = Summary::from_samples(&l);
            let ms = Summary::from_samples(&m);
            println!(
                "{:>8} {:>38} {:>38}",
                size_label(bytes),
                fmt_summary(&ls, "us"),
                fmt_summary(&ms, "us")
            );
        }
    }
    println!("\nPaper shape: similar averages on both OSes (McKernel slightly ahead for");
    println!("scatter/gather, Linux slightly ahead for small reduce), with visibly lower");
    println!("variation on McKernel across all operations.");
}
