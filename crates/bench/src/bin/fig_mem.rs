//! Memory-subsystem microbenchmarks — the tracked perf baseline for the
//! flat O(1) buddy + NUMA/PCP frame engine.
//!
//! Like `fig_offload_hotpath`, this measures **host wall-clock** cost of
//! the structures the memory path hammers, not modeled time:
//!
//! * alloc/free churn on the flat buddy vs the retired `BTreeSet`-based
//!   implementation (kept below, verbatim policy, for an honest delta);
//! * a fragmentation sweep (fill, scatter-free, full recoalesce);
//! * a first-touch fault storm (fault-around + PCP caches) at 1 and N
//!   CPUs, reporting the steady-state PCP hit rate.
//!
//! The numbers land in `BENCH_mem.json`; CI compares fresh runs against
//! the committed baseline with a 2x tolerance and additionally enforces
//! two hard floors: churn speedup >= 2x over the retired allocator and
//! PCP hit rate > 90% (see `scripts/ci.sh --bench-smoke`).
//!
//! Knobs:
//! * `HLWK_BENCH_ITERS` — op budget per metric (default 20000);
//! * `HLWK_BENCH_OUT`   — output JSON path (default `BENCH_mem.json`);
//! * `--check <path>`   — compare a fresh run against a committed
//!   baseline instead of writing one; exits non-zero past tolerance.

use hlwk_core::costs::CostModel;
use hlwk_core::mck::mem::phys::{BuddyAllocator, FrameAllocator, MAX_ORDER, ORDER_2M};
use hlwk_core::mck::mem::vm::VmaKind;
use hlwk_core::mck::mem::{handle_fault, unmap_range, AddressSpace, FaultOutcome};
use hwmodel::addr::{PhysAddr, PAGE_SHIFT, PAGE_SIZE};
use std::hint::black_box;
use std::time::Instant;

/// Tolerance for the CI regression gate on `*_ns` metrics.
const REGRESSION_TOLERANCE: f64 = 2.0;
/// Hard floor: the flat buddy must stay at least this much faster than
/// the retired `BTreeSet` implementation on the churn workload.
const MIN_CHURN_SPEEDUP: f64 = 2.0;
/// Hard floor: steady-state PCP hit rate during the fault storm.
const MIN_PCP_HIT_PCT: f64 = 90.0;

/// Churn pool: 64 MiB (16384 frames) — big enough that the retired
/// implementation's tree/hash traffic shows, small enough to stay hot.
const POOL_BASE: u64 = 1 << 30;
const POOL_LEN: u64 = 64 << 20;

fn iters() -> u64 {
    std::env::var("HLWK_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000)
}

/// Best-of-3 wall-clock nanoseconds per unit over `n` calls of `f`,
/// where each call reports how many units it performed.
fn measure_per_op<F: FnMut() -> u64>(n: u64, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let mut ops = 0u64;
        let start = Instant::now();
        for _ in 0..n {
            ops += f();
        }
        let ns = start.elapsed().as_nanos() as f64 / ops.max(1) as f64;
        if ns < best {
            best = ns;
        }
    }
    best
}

// ---------------------------------------------------------------------------
// The retired BTreeSet/HashMap buddy allocator (pre-PR 4), embedded so
// the speedup claim stays measurable forever (same precedent as the
// retired heap engine kept inside `fig_engine`). Allocation policy is
// lowest-address-first; only the operations the bench exercises are kept.
// ---------------------------------------------------------------------------

mod retired {
    use hwmodel::addr::{PhysAddr, PAGE_SHIFT, PAGE_SIZE};
    use std::collections::{BTreeSet, HashMap};

    pub const MAX_ORDER: u8 = 10;

    pub struct BTreeBuddy {
        base: PhysAddr,
        free: Vec<BTreeSet<u64>>,
        allocated: HashMap<u64, u8>,
        free_pages: u64,
    }

    impl BTreeBuddy {
        pub fn new(base: PhysAddr, len: u64) -> Self {
            let block = PAGE_SIZE << MAX_ORDER;
            assert!(len > 0 && len % block == 0 && base.raw() % block == 0);
            let mut free: Vec<BTreeSet<u64>> = (0..=MAX_ORDER).map(|_| BTreeSet::new()).collect();
            let pages = len >> PAGE_SHIFT;
            let top = &mut free[MAX_ORDER as usize];
            for off in (0..pages).step_by(1usize << MAX_ORDER) {
                top.insert(off);
            }
            BTreeBuddy {
                base,
                free,
                allocated: HashMap::new(),
                free_pages: pages,
            }
        }

        pub fn free_bytes(&self) -> u64 {
            self.free_pages << PAGE_SHIFT
        }

        pub fn alloc(&mut self, order: u8) -> Option<PhysAddr> {
            let mut o = order;
            while (o as usize) < self.free.len() && self.free[o as usize].is_empty() {
                o += 1;
            }
            if o > MAX_ORDER {
                return None;
            }
            let off = *self.free[o as usize].iter().next().expect("nonempty");
            self.free[o as usize].remove(&off);
            while o > order {
                o -= 1;
                self.free[o as usize].insert(off + (1u64 << o));
            }
            self.allocated.insert(off, order);
            self.free_pages -= 1u64 << order;
            Some(self.base + (off << PAGE_SHIFT))
        }

        pub fn free(&mut self, addr: PhysAddr) {
            let mut off = (addr - self.base) >> PAGE_SHIFT;
            let mut order = self.allocated.remove(&off).expect("allocated");
            self.free_pages += 1u64 << order;
            while order < MAX_ORDER {
                let buddy = off ^ (1u64 << order);
                if !self.free[order as usize].remove(&buddy) {
                    break;
                }
                off = off.min(buddy);
                order += 1;
            }
            self.free[order as usize].insert(off);
        }
    }
}

// ---------------------------------------------------------------------------
// Workloads (identical op sequences for both implementations).
// ---------------------------------------------------------------------------

/// Deterministic xorshift step.
#[inline]
fn next_rng(r: &mut u64) -> u64 {
    *r ^= *r << 13;
    *r ^= *r >> 7;
    *r ^= *r << 17;
    *r
}

/// Order mix for the churn episode: mostly hot order-0, some mid orders,
/// the occasional 2 MiB block — the fault-path profile.
const CHURN_ORDERS: [u8; 8] = [0, 0, 0, 0, 1, 2, 3, ORDER_2M];

/// The operations both buddy implementations expose to the workloads.
trait Pool {
    fn alloc(&mut self, order: u8) -> Option<PhysAddr>;
    fn free(&mut self, p: PhysAddr);
    fn pristine(&self) -> bool;
}

impl Pool for BuddyAllocator {
    fn alloc(&mut self, order: u8) -> Option<PhysAddr> {
        BuddyAllocator::alloc(self, order).ok()
    }
    fn free(&mut self, p: PhysAddr) {
        BuddyAllocator::free(self, p).expect("live block");
    }
    fn pristine(&self) -> bool {
        self.largest_free_order() == Some(MAX_ORDER)
    }
}

impl Pool for retired::BTreeBuddy {
    fn alloc(&mut self, order: u8) -> Option<PhysAddr> {
        retired::BTreeBuddy::alloc(self, order)
    }
    fn free(&mut self, p: PhysAddr) {
        retired::BTreeBuddy::free(self, p);
    }
    fn pristine(&self) -> bool {
        self.free_bytes() == POOL_LEN
    }
}

/// One churn episode: `target_ops` interleaved alloc/free with a held
/// set, then drain. Starts and ends pristine. Returns ops performed.
fn churn_episode(pool: &mut impl Pool, target_ops: u64) -> u64 {
    let mut rng = 0x9E37_79B9_7F4A_7C15u64;
    let mut held: Vec<PhysAddr> = Vec::with_capacity(1024);
    let mut ops = 0u64;
    while ops < target_ops {
        let r = next_rng(&mut rng);
        if held.len() < 64 || r & 3 != 0 {
            let order = CHURN_ORDERS[(r >> 8) as usize % CHURN_ORDERS.len()];
            match pool.alloc(order) {
                Some(p) => held.push(p),
                None => {
                    // Pool pressure: release the older half.
                    for p in held.drain(..held.len() / 2) {
                        pool.free(p);
                        ops += 1;
                    }
                }
            }
        } else {
            let i = (r >> 16) as usize % held.len();
            pool.free(held.swap_remove(i));
        }
        ops += 1;
    }
    for p in held.drain(..) {
        pool.free(p);
        ops += 1;
    }
    ops
}

fn bench_churn_flat(n: u64, per_episode: u64) -> f64 {
    let mut a = BuddyAllocator::new(PhysAddr(POOL_BASE), POOL_LEN);
    measure_per_op(n, || churn_episode(&mut a, per_episode))
}

fn bench_churn_btreeset(n: u64, per_episode: u64) -> f64 {
    let mut a = retired::BTreeBuddy::new(PhysAddr(POOL_BASE), POOL_LEN);
    measure_per_op(n, || churn_episode(&mut a, per_episode))
}

/// Fragmentation sweep: fill the pool with order-0 frames, free them in
/// bit-reversed order (worst case for coalescing — merges only become
/// possible near the end), verify full recoalescence. Returns ops.
fn frag_episode(pool: &mut impl Pool, pages: u64) -> u64 {
    let bits = 64 - (pages - 1).leading_zeros();
    let mut held = Vec::with_capacity(pages as usize);
    while let Some(p) = pool.alloc(0) {
        held.push(p);
    }
    let n = held.len() as u64;
    for i in 0..n {
        let j = (i.reverse_bits() >> (64 - bits)) % n;
        pool.free(held[j as usize]);
    }
    held.clear();
    assert!(pool.pristine(), "pool must recoalesce to pristine");
    2 * n
}

fn bench_frag_flat(n: u64) -> f64 {
    let mut a = BuddyAllocator::new(PhysAddr(POOL_BASE), POOL_LEN);
    measure_per_op(n, || frag_episode(&mut a, POOL_LEN >> PAGE_SHIFT))
}

fn bench_frag_btreeset(n: u64) -> f64 {
    let mut a = retired::BTreeBuddy::new(PhysAddr(POOL_BASE), POOL_LEN);
    measure_per_op(n, || frag_episode(&mut a, POOL_LEN >> PAGE_SHIFT))
}

/// First-touch fault storm: an anonymous 4 KiB VMA swept trap by trap
/// (fault-around populates 16 pages per trap, frames come from the
/// faulting CPU's PCP cache), then torn down. Faults round-robin over
/// `ncpus`. Returns (ns per populated page, PCP hit rate %).
fn bench_fault_storm(n: u64, ncpus: usize) -> (f64, f64) {
    const STORM_BYTES: u64 = 16 << 20;
    let mut alloc = FrameAllocator::single(PhysAddr(POOL_BASE), 64 << 20, ncpus);
    let costs = CostModel::default();
    let ns = measure_per_op(n, || {
        let mut aspace = AddressSpace::new(true);
        let va = aspace
            .vm
            .mmap(STORM_BYTES, VmaKind::Anon { large_ok: false }, true, None)
            .expect("fits");
        let mut pages = 0u64;
        let mut cpu = 0usize;
        let mut off = 0u64;
        while off < STORM_BYTES {
            match handle_fault(&mut aspace, &mut alloc, &costs, cpu, va + off) {
                FaultOutcome::Mapped { pages: p, .. } => {
                    pages += p;
                    off += p.max(1) * PAGE_SIZE;
                }
                o => panic!("storm fault failed: {o:?}"),
            }
            cpu = (cpu + 1) % ncpus;
        }
        unmap_range(&mut aspace, &mut alloc, &costs, va, STORM_BYTES).expect("teardown");
        black_box(pages)
    });
    let s = alloc.stats;
    let hit_pct = 100.0 * s.pcp_hit as f64 / (s.pcp_hit + s.pcp_refill).max(1) as f64;
    (ns, hit_pct)
}

fn run_all() -> Vec<(&'static str, f64)> {
    let n = iters();
    // Episode sizes chosen so each metric does ~`n` total units of work.
    let churn_eps = (n / 4096).max(1);
    let flat = bench_churn_flat(churn_eps, 4096);
    let btree = bench_churn_btreeset(churn_eps, 4096);
    let frag_eps = (n / (2 * (POOL_LEN >> PAGE_SHIFT))).max(1);
    let (storm1, hit1) = bench_fault_storm((n / 4096).max(1), 1);
    let (storm4, hit4) = bench_fault_storm((n / 4096).max(1), 4);
    vec![
        ("churn_flat_ns", flat),
        ("churn_btreeset_ns", btree),
        ("churn_speedup_x", btree / flat),
        ("frag_flat_ns", bench_frag_flat(frag_eps)),
        ("frag_btreeset_ns", bench_frag_btreeset(frag_eps)),
        ("fault_storm_1cpu_ns", storm1),
        ("fault_storm_4cpu_ns", storm4),
        ("pcp_hit_pct", hit1.min(hit4)),
    ]
}

fn to_json(metrics: &[(&str, f64)]) -> String {
    let mut out = String::from("{\n  \"bench\": \"fig_mem\",\n  \"metrics\": {\n");
    for (i, (k, v)) in metrics.iter().enumerate() {
        let comma = if i + 1 == metrics.len() { "" } else { "," };
        out.push_str(&format!("    \"{k}\": {v:.2}{comma}\n"));
    }
    out.push_str("  }\n}\n");
    out
}

/// Minimal parser for the flat `"key": number` JSON this binary writes.
fn parse_metrics(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((key, val)) = line.split_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        if let Ok(v) = val.trim().parse::<f64>() {
            out.push((key.to_string(), v));
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let metrics = run_all();
    println!("=== memory subsystem (host wall clock) ===");
    for (k, v) in &metrics {
        if k.ends_with("_ns") {
            println!("{k:>24}: {v:10.1} ns");
        } else {
            println!("{k:>24}: {v:10.2}");
        }
    }

    // Hard floors hold in every mode: the acceptance claims themselves.
    let mut failed = false;
    for (k, v, floor) in [
        ("churn_speedup_x", None, MIN_CHURN_SPEEDUP),
        ("pcp_hit_pct", None::<f64>, MIN_PCP_HIT_PCT),
    ] {
        let _ = v;
        let got = metrics.iter().find(|(mk, _)| *mk == k).expect("present").1;
        if got < floor {
            eprintln!("FLOOR VIOLATION: {k} = {got:.2} < required {floor:.2}");
            failed = true;
        }
    }

    if let Some(i) = args.iter().position(|a| a == "--check") {
        let path = args.get(i + 1).expect("--check needs a baseline path");
        let baseline = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let base = parse_metrics(&baseline);
        for (k, v) in &metrics {
            if !k.ends_with("_ns") {
                continue; // ratios/rates are gated by the hard floors
            }
            match base.iter().find(|(bk, _)| bk == k) {
                Some((_, bv)) if *v > bv * REGRESSION_TOLERANCE => {
                    eprintln!(
                        "PERF REGRESSION: {k} = {v:.1} ns vs baseline {bv:.1} ns (>{REGRESSION_TOLERANCE}x)"
                    );
                    failed = true;
                }
                Some((_, bv)) => {
                    println!("{k:>24}: ok ({:.2}x of baseline)", v / bv);
                }
                None => eprintln!("warning: baseline is missing metric {k}"),
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "perf check passed (tolerance {REGRESSION_TOLERANCE}x, speedup >= {MIN_CHURN_SPEEDUP}x, PCP hit > {MIN_PCP_HIT_PCT}%)"
        );
        return;
    }

    if failed {
        std::process::exit(1);
    }
    let out = std::env::var("HLWK_BENCH_OUT").unwrap_or_else(|_| "BENCH_mem.json".into());
    std::fs::write(&out, to_json(&metrics)).expect("write benchmark output");
    println!("wrote {out}");
}
