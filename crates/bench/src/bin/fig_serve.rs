//! Elastic multi-tenant serving: SLO-driven online LWK/Linux resizing
//! under a latency-sensitive request stream co-located with gang-
//! scheduled MPI jobs (`cluster::tenancy`, DESIGN.md D15).
//!
//! Not a figure from the paper — the paper partitions once at boot —
//! but the serving story its reserve-without-reboot mechanism enables:
//! LibrettOS-style dynamic adaptation of the LWK/Linux boundary to the
//! workload mix. Four profiles on the same cluster:
//!
//! * `idle`     — request stream alone at nominal load; the SLO
//!   controller sits in its dead band and never resizes;
//! * `coloc`    — two gang jobs ride the LWK cores (the high-priority
//!   one preempts the low via checkpoint rollback) while the stream
//!   serves beside them; p99 is gated against idle;
//! * `overload` — 2x admission rate; bounded admission sheds the
//!   excess (p999 hits the shed ceiling, p50 barely moves) and the
//!   breached SLO shrinks the LWK online for serving relief;
//! * `storm`    — a forced resize every window (100+ reserve/release
//!   cycles at the default length) with a width-pinned job that is
//!   evicted and resumed on every cycle; proves no request is lost,
//!   no job corrupted, and every released core fully reclaimed.
//!
//! Every number is simulated time — deterministic at any
//! `HLWK_THREADS`/`HLWK_ENGINE_THREADS` — so `--check` compares the
//! committed `BENCH_serve.json` exactly. Claims asserted in every
//! mode:
//!
//! 1. conservation: every profile's arrivals == completed + shed;
//! 2. idle never resizes and sheds only a tail-trim fraction (<1%);
//!    overload stays within 1.5x of idle p50 throughout, sheds in
//!    bulk and degrades p999 above idle while saturated (pre-shrink),
//!    then >=1 SLO shrink restores the tail to idle-like levels;
//! 3. co-location keeps p99 within 1.5x of idle;
//! 4. both coloc jobs finish with byte-identical digests across >=1
//!    priority preemption;
//! 5. the storm completes its resize cycles (at least windows/2 - 2,
//!    and at least 100 at full length) with zero lost requests, the
//!    job resumed to a byte-identical digest, and every released core
//!    audited clean.
//!
//! Knobs: `HLWK_SERVE_NODES`, `HLWK_SERVE_WINDOWS`, `HLWK_SERVE_SEED`
//! (defaults match the committed baseline), `HLWK_BENCH_OUT`.
//! `--soak N` reruns the storm profile under N extra seeds.

use bench::{header, serve_nodes, serve_seed, serve_windows};
use cluster::{run_tenancy, Cluster, ClusterConfig, JobSpec, OsVariant, TenancyConfig, TenancyReport};
use simcore::{par, Cycles};
use workloads::miniapps::{IterComm, MiniApp};

#[derive(Clone, Copy, PartialEq)]
enum Profile {
    Idle,
    Coloc,
    Overload,
    Storm,
}

const PROFILES: [Profile; 4] = [Profile::Idle, Profile::Coloc, Profile::Overload, Profile::Storm];

impl Profile {
    fn label(self) -> &'static str {
        match self {
            Profile::Idle => "idle",
            Profile::Coloc => "coloc",
            Profile::Overload => "overload",
            Profile::Storm => "storm",
        }
    }
}

/// A small BSP gang: ~1 ms iterations so several fit per 10 ms window.
fn gang(priority: u8, arrive_window: u32, min_width: usize, iterations: u32) -> JobSpec {
    JobSpec {
        name: "gang",
        priority,
        arrive_window,
        min_width,
        app: MiniApp {
            iterations,
            work_per_iter: Cycles::from_ms(8),
            comm: IterComm {
                allreduces: vec![8],
                allgathers: vec![],
                halo_bytes: Some(4 << 10),
            },
            ..MiniApp::hpccg()
        },
    }
}

fn scenario(profile: Profile, seed: u64) -> TenancyConfig {
    let mut cfg = TenancyConfig::serving_default(serve_windows(), seed);
    // Hold the total baseline pool at the tuned 8-server operating
    // point (~56% utilization, pooled variance included) for any
    // HLWK_SERVE_NODES by scaling servers-per-node inversely: the
    // serving plane's dynamics are then identical at any node count
    // and only the elastic gain per shrink (one core per node) varies.
    cfg.base_serve_cores = (8 / serve_nodes()).max(1);
    match profile {
        Profile::Idle => {}
        Profile::Coloc => {
            // Low-priority long job from the start; a high-priority
            // short job lands on top of it and preempts.
            cfg.jobs = vec![gang(1, 0, 6, 64), gang(5, 2, 6, 16)];
        }
        Profile::Overload => {
            cfg.overload_x = 2.0;
        }
        Profile::Storm => {
            // Width-pinned gang: every shrink to lwk_min evicts it,
            // every grow resumes it from checkpoint.
            cfg.storm_period = Some(1);
            cfg.lwk_min = 8;
            cfg.jobs = vec![gang(1, 0, 9, 64)];
        }
    }
    cfg
}

fn run_profile(profile: Profile, seed: u64) -> TenancyReport {
    let mut ccfg = ClusterConfig::paper(OsVariant::McKernel)
        .with_nodes(serve_nodes())
        .with_seed(seed);
    ccfg.horizon_secs = 30;
    let mut cluster = Cluster::build(ccfg);
    run_tenancy(&mut cluster, &scenario(profile, seed))
}

/// Round to the precision `to_json` prints, so fresh runs compare
/// exactly against a parsed baseline.
fn round4(v: f64) -> f64 {
    (v * 1e4).round() / 1e4
}

fn collect() -> Vec<(String, f64)> {
    let reports: Vec<TenancyReport> =
        par::parallel_map(PROFILES.len(), |i| run_profile(PROFILES[i], serve_seed()));

    println!(
        "{:>9} {:>9} {:>9} {:>7} {:>8} {:>8} {:>8} {:>8} {:>6} {:>6} {:>6} {:>5} {:>5}",
        "profile", "arrivals", "served", "shed", "p50us", "p99us", "p999us", "maxus", "shrink",
        "grow", "preempt", "jobs", "width"
    );
    for (p, r) in PROFILES.iter().zip(&reports) {
        println!(
            "{:>9} {:>9} {:>9} {:>7} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>6} {:>6} {:>6} {:>5} {:>5}",
            p.label(),
            r.arrivals,
            r.completed,
            r.shed,
            r.p50_us,
            r.p99_us,
            r.p999_us,
            r.max_us,
            r.shrinks,
            r.grows,
            r.preemptions,
            r.jobs_done,
            r.final_width,
        );
    }

    let mut metrics = Vec::new();
    for (p, r) in PROFILES.iter().zip(&reports) {
        let l = p.label();
        metrics.push((format!("{l}_arrivals"), r.arrivals as f64));
        metrics.push((format!("{l}_completed"), r.completed as f64));
        metrics.push((format!("{l}_shed"), r.shed as f64));
        metrics.push((format!("{l}_p50_us"), round4(r.p50_us)));
        metrics.push((format!("{l}_p99_us"), round4(r.p99_us)));
        metrics.push((format!("{l}_worst_p99_us"), round4(r.worst_p99_us)));
        metrics.push((format!("{l}_p999_us"), round4(r.p999_us)));
        metrics.push((format!("{l}_max_us"), round4(r.max_us)));
        metrics.push((format!("{l}_shrinks"), f64::from(r.shrinks)));
        metrics.push((format!("{l}_grows"), f64::from(r.grows)));
        metrics.push((format!("{l}_min_width"), r.min_width as f64));
    }
    let storm = &reports[3];
    let coloc = &reports[1];
    let over = &reports[2];
    metrics.push(("overload_pre_arrivals".into(), over.pre_relief_arrivals as f64));
    metrics.push(("overload_pre_shed".into(), over.pre_relief_shed as f64));
    metrics.push(("overload_pre_p999_us".into(), round4(over.pre_relief_p999_us)));
    metrics.push(("overload_post_p999_us".into(), round4(over.post_relief_p999_us)));
    metrics.push(("storm_resize_cycles".into(), f64::from(storm.resize_cycles)));
    metrics.push(("storm_cores_audited".into(), f64::from(storm.cores_audited)));
    metrics.push(("storm_preemptions".into(), f64::from(storm.preemptions)));
    metrics.push(("storm_resumes".into(), f64::from(storm.resumes)));
    metrics.push(("storm_redone_iters".into(), f64::from(storm.redone_iters)));
    metrics.push(("storm_jobs_done".into(), f64::from(storm.jobs_done)));
    metrics.push(("storm_digests_ok".into(), f64::from(u8::from(storm.digests_ok))));
    metrics.push(("coloc_preemptions".into(), f64::from(coloc.preemptions)));
    metrics.push(("coloc_jobs_done".into(), f64::from(coloc.jobs_done)));
    metrics.push(("coloc_digests_ok".into(), f64::from(u8::from(coloc.digests_ok))));
    metrics.push(("partitioned".into(), f64::from(u8::from(reports.iter().all(|r| r.partitioned)))));
    metrics
}

fn find(metrics: &[(String, f64)], k: &str) -> f64 {
    metrics.iter().find(|(mk, _)| mk == k).expect("present").1
}

/// The acceptance claims, enforced in every mode. Returns true if any
/// failed.
fn assert_claims(metrics: &[(String, f64)]) -> bool {
    let mut failed = false;
    let mut claim = |ok: bool, msg: &str| {
        if !ok {
            eprintln!("CLAIM VIOLATION: {msg}");
            failed = true;
        }
    };

    // 1. Loss-free serving: conservation in every profile.
    for p in PROFILES {
        let l = p.label();
        let lost = find(metrics, &format!("{l}_arrivals"))
            - find(metrics, &format!("{l}_completed"))
            - find(metrics, &format!("{l}_shed"));
        claim(lost == 0.0, &format!("{l}: {lost} requests lost"));
    }

    // 2. Idle never resizes; overload sheds, stays within 1.5x of idle
    //    p50, degrades the tail, and gets elastic relief.
    claim(find(metrics, "idle_shrinks") == 0.0, "idle profile resized");
    // Bounded admission trims the extreme tail even at nominal load
    // (that is what "p999 degrades first" means); idle shed must stay
    // a tail-trim fraction while saturated overload sheds in bulk.
    let idle_frac = find(metrics, "idle_shed") / find(metrics, "idle_arrivals");
    claim(
        idle_frac < 0.01,
        &format!("idle shed {:.2}% of arrivals, above 1%", idle_frac * 100.0),
    );
    claim(find(metrics, "overload_shed") > 0.0, "2x overload did not shed");
    // Degradation and relief are phases of the same overload run: the
    // pre-shrink pool is saturated (bulk shed, tail pinned at the
    // admission ceiling), the post-shrink pool has the released LWK
    // cores and restores the tail to idle-like levels.
    let pre_frac = find(metrics, "overload_pre_shed") / find(metrics, "overload_pre_arrivals");
    claim(
        pre_frac > 2.0 * idle_frac.max(0.001),
        &format!(
            "saturated overload shed only {:.2}% (idle {:.2}%)",
            pre_frac * 100.0,
            idle_frac * 100.0
        ),
    );
    let p50_ratio = find(metrics, "overload_p50_us") / find(metrics, "idle_p50_us");
    claim(
        p50_ratio <= 1.5,
        &format!("overload p50 {p50_ratio:.3}x idle, above 1.5x"),
    );
    claim(
        find(metrics, "overload_pre_p999_us") > find(metrics, "idle_p999_us"),
        "saturated overload did not degrade p999 above idle",
    );
    claim(
        find(metrics, "overload_shrinks") >= 1.0,
        "overload SLO breach triggered no elastic shrink",
    );
    claim(
        find(metrics, "overload_post_p999_us") <= 1.25 * find(metrics, "idle_p999_us"),
        "elastic relief did not restore the overload tail",
    );

    // 3. Co-location isolation floor. Simulated time, so this is
    //    deterministic at any pool size — no wall-clock caveat.
    let p99_ratio = find(metrics, "coloc_p99_us") / find(metrics, "idle_p99_us");
    claim(
        p99_ratio <= 1.5,
        &format!("coloc p99 {p99_ratio:.3}x idle, above 1.5x"),
    );

    // 4. Preempted jobs finish with byte-identical results.
    claim(find(metrics, "coloc_preemptions") >= 1.0, "coloc saw no priority preemption");
    claim(find(metrics, "coloc_jobs_done") == 2.0, "coloc jobs did not finish");
    claim(find(metrics, "coloc_digests_ok") == 1.0, "coloc digest mismatch");

    // 5. The resize storm: cycle floor, reclaim audit, job survival.
    let windows = f64::from(serve_windows());
    let cycles = find(metrics, "storm_resize_cycles");
    claim(
        cycles >= windows / 2.0 - 2.0,
        &format!("storm completed {cycles} cycles, below floor"),
    );
    if serve_windows() >= 240 {
        claim(cycles >= 100.0, &format!("storm cycles {cycles} < 100 at full length"));
    }
    claim(
        find(metrics, "storm_cores_audited")
            == find(metrics, "storm_shrinks") * f64::from(serve_nodes()),
        "a released core skipped the reclaim audit",
    );
    claim(find(metrics, "storm_preemptions") >= 1.0, "storm never evicted the gang");
    claim(find(metrics, "storm_resumes") >= 1.0, "storm never resumed the gang");
    claim(find(metrics, "storm_jobs_done") == 1.0, "storm lost the gang job");
    claim(find(metrics, "storm_digests_ok") == 1.0, "storm corrupted the gang job");
    claim(find(metrics, "partitioned") == 1.0, "a profile fell off the partitioned engine");
    failed
}

fn to_json(metrics: &[(String, f64)]) -> String {
    let mut out = String::from("{\n  \"bench\": \"fig_serve\",\n  \"metrics\": {\n");
    for (i, (k, v)) in metrics.iter().enumerate() {
        let comma = if i + 1 == metrics.len() { "" } else { "," };
        out.push_str(&format!("    \"{k}\": {v:.4}{comma}\n"));
    }
    out.push_str("  }\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();

    if let Some(i) = args.iter().position(|a| a == "--soak") {
        let seeds: u64 = args
            .get(i + 1)
            .and_then(|s| s.parse().ok())
            .expect("--soak needs a seed count");
        for s in 0..seeds {
            let seed = serve_seed() ^ (0x9E37_79B9 * (s + 1));
            let rep = run_profile(Profile::Storm, seed);
            let lost = rep.arrivals - rep.completed - rep.shed;
            let ok = lost == 0
                && rep.digests_ok
                && rep.jobs_done == 1
                && rep.cores_audited == rep.shrinks * serve_nodes();
            println!(
                "soak seed {seed:#x}: {} cycles, {} preemptions, lost {lost}, {}",
                rep.resize_cycles,
                rep.preemptions,
                if ok { "ok" } else { "FAILED" }
            );
            if !ok {
                std::process::exit(1);
            }
        }
        println!("serve soak passed ({seeds} seeds)");
        return;
    }

    header(&format!(
        "Elastic tenancy — {} nodes, {} x 10 ms windows per profile",
        serve_nodes(),
        serve_windows()
    ));
    let metrics = collect();
    println!();
    for (k, v) in &metrics {
        println!("{k:>24}: {v:10.4}");
    }
    let mut failed = assert_claims(&metrics);

    if let Some(i) = args.iter().position(|a| a == "--check") {
        let path = args.get(i + 1).expect("--check needs a baseline path");
        let baseline = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let base = bench::parse_metrics(&baseline);
        for (k, v) in &metrics {
            match base.iter().find(|(bk, _)| bk == k) {
                // Simulated time is deterministic: any drift at printed
                // precision is a real behavior change, not noise.
                Some((_, bv)) if (v - bv).abs() > 1e-9 => {
                    eprintln!("DETERMINISM REGRESSION: {k} = {v:.4} vs baseline {bv:.4}");
                    failed = true;
                }
                Some(_) => {}
                None => eprintln!("warning: baseline is missing metric {k}"),
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!("serve check passed (exact match vs {path}; all claims hold)");
        return;
    }

    if failed {
        std::process::exit(1);
    }
    let out = std::env::var("HLWK_BENCH_OUT").unwrap_or_else(|_| "BENCH_serve.json".into());
    std::fs::write(&out, to_json(&metrics)).expect("write benchmark output");
    println!("wrote {out}");
}
