//! Offload-bypass sweep — the in-LWK fast-path benchmark.
//!
//! Host wall-clock companion to `fig_offload_hotpath`: sweeps the
//! promoted hot calls across {offload, bypass, bypass+domains}, then
//! measures the promoted futex and clock paths, the zero-copy device
//! mmap (map + TLB-shootdown unmap, per page), and the raw MPK-style
//! domain-switch bookkeeping. The `bypass_*` metrics merge into
//! `BENCH_offload.json` — run *after* `fig_offload_hotpath`, which
//! rewrites that file wholesale.
//!
//! Knobs:
//! * `HLWK_BENCH_ITERS` — iterations per metric (default 20000);
//! * `HLWK_BENCH_OUT`   — JSON path to merge into
//!   (default `BENCH_offload.json`);
//! * `--check <path>`   — compare a fresh run against a committed
//!   baseline (2x tolerance) and enforce the bypass floor on the fresh
//!   interleaved sweep; exits non-zero on either failure.

use cluster::{node::NodeRuntime, ClusterConfig, OsVariant};
use hlwk_core::abi::Sysno;
use hlwk_core::mck::domains::{DomainId, DomainModel};
use hlwk_core::mck::syscall::BypassConfig;
use hlwk_core::proxy::devmap;
use hwmodel::addr::PAGE_SIZE;
use hwmodel::pci::DeviceClass;
use simcore::{Cycles, StreamRng};
use std::hint::black_box;
use std::time::Instant;

/// CI regression tolerance against the committed baseline.
const REGRESSION_TOLERANCE: f64 = 2.0;

/// The promoted read must beat the full offload round trip by this
/// factor with protection domains armed (ISSUE 8 acceptance floor).
const BYPASS_FLOOR: f64 = 3.0;

fn iters() -> u64 {
    std::env::var("HLWK_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000)
}

/// Best-of-5 wall-clock nanoseconds per call of `f` over `n` calls.
fn measure<F: FnMut()>(n: u64, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        for _ in 0..n {
            f();
        }
        best = best.min(start.elapsed().as_nanos() as f64 / n as f64);
    }
    best
}

/// Best-of-5 per side, trials interleaved a, b, c, a, b, c, …: the
/// sweep compares minima against each other, and interleaving keeps an
/// ambient-load burst from degrading one configuration's entire run
/// while sparing the others.
fn measure_trio<A, B, C>(n: u64, mut a: A, mut b: B, mut c: C) -> (f64, f64, f64)
where
    A: FnMut(),
    B: FnMut(),
    C: FnMut(),
{
    let mut best = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for _ in 0..5 {
        let start = Instant::now();
        for _ in 0..n {
            a();
        }
        best.0 = best.0.min(start.elapsed().as_nanos() as f64 / n as f64);
        let start = Instant::now();
        for _ in 0..n {
            b();
        }
        best.1 = best.1.min(start.elapsed().as_nanos() as f64 / n as f64);
        let start = Instant::now();
        for _ in 0..n {
            c();
        }
        best.2 = best.2.min(start.elapsed().as_nanos() as f64 / n as f64);
    }
    best
}

fn build_node() -> NodeRuntime {
    let mut cfg = ClusterConfig::paper(OsVariant::McKernel).with_nodes(1);
    cfg.horizon_secs = 5;
    NodeRuntime::build(&cfg, 0, &StreamRng::root(1))
}

/// Build a node with the bypass armed (optionally with MPK-style
/// domains) and a regular fd promoted warm: one offloaded read seeds
/// the heat profiler and the promotability lease.
fn warm_bypass_node(domains: bool) -> (NodeRuntime, u64, Cycles) {
    let mut node = build_node();
    node.mck.as_mut().expect("mckernel node").bypass = BypassConfig {
        enabled: true,
        promote_after: 1,
        domains: false,
    };
    if domains {
        node.enable_domains();
    }
    let (fd, t) = open_regular(&mut node);
    let buf = node.arena_va.raw();
    let (r, t) = node.offload_syscall(Sysno::Read, [fd, buf, 64, 0, 0, 0], t);
    assert_eq!(r, 64, "warmup read failed");
    (node, fd, t)
}

/// Open a regular (page-cached) file through the full offload path,
/// reusing the already-faulted arena page for the path string.
fn open_regular(node: &mut NodeRuntime) -> (u64, Cycles) {
    let pa = node
        .mck
        .as_ref()
        .expect("mckernel node")
        .process(node.app_pid)
        .expect("app")
        .aspace
        .pt
        .translate(node.arena_va)
        .expect("arena faulted at setup")
        .phys;
    node.hw.mem.write(pa, b"/data/bench.bin\0");
    let (fd, t) = node.offload_syscall(
        Sysno::Open,
        [node.arena_va.raw(), 0, 0, 0, 0, 0],
        Cycles::from_ms(1),
    );
    assert!(fd >= 0, "offloaded open failed: {fd}");
    (fd as u64, t)
}

/// The three-configuration read sweep: full offload, promoted in-LWK,
/// promoted with domain switches charged and pkeys armed.
fn sweep_read(n: u64) -> (f64, f64, f64) {
    let mut off = build_node();
    let (off_fd, mut t_off) = open_regular(&mut off);
    let off_buf = off.arena_va.raw();

    let (mut fast, fast_fd, mut t_fast) = warm_bypass_node(false);
    let fast_buf = fast.arena_va.raw();

    let (mut hard, hard_fd, mut t_hard) = warm_bypass_node(true);
    let hard_buf = hard.arena_va.raw();

    let trio = measure_trio(
        n,
        || {
            t_off += Cycles(1000);
            black_box(off.offload_syscall(Sysno::Read, [off_fd, off_buf, 64, 0, 0, 0], t_off));
        },
        || {
            t_fast += Cycles(1000);
            black_box(fast.offload_syscall(
                Sysno::Read,
                [fast_fd, fast_buf, 64, 0, 0, 0],
                t_fast,
            ));
        },
        || {
            t_hard += Cycles(1000);
            black_box(hard.offload_syscall(
                Sysno::Read,
                [hard_fd, hard_buf, 64, 0, 0, 0],
                t_hard,
            ));
        },
    );
    // Honesty: the promoted sides never fell back, and the domain model
    // on the guarded node really switched twice per call.
    for node in [&fast, &hard] {
        assert!(node.bypass_promoted >= 5 * n);
        assert_eq!(node.bypass_fallbacks, 0);
    }
    let guarded = hard.mck.as_ref().expect("mckernel node");
    assert!(guarded.domains.switches >= 10 * n, "pkey switches uncharged");
    trio
}

/// Promoted futex wake (no waiters: the pure fast-path cost), domains
/// armed.
fn bench_futex(n: u64) -> f64 {
    let (mut node, _, mut t) = warm_bypass_node(true);
    let word = node.arena_va.raw();
    // Warm the futex promotion with one offloaded wake.
    let (r, t2) = node.offload_syscall(Sysno::Futex, [word, 129, 1, 0, 0, 0], t);
    assert_eq!(r, 0);
    t = t2;
    measure(n, || {
        t += Cycles(1000);
        black_box(node.offload_syscall(Sysno::Futex, [word, 129, 1, 0, 0, 0], t));
    })
}

/// Promoted `clock_gettime` from the vDSO-style shared time page,
/// domains armed.
fn bench_clock(n: u64) -> f64 {
    let (mut node, _, mut t) = warm_bypass_node(true);
    node.publish_time(1_000_000_000);
    // Warm the clock promotion with one offloaded read of Linux's vDSO.
    let (r, t2) = node.offload_syscall(Sysno::ClockGettime, [0; 6], t);
    assert_eq!(r, 1_000_000_000);
    t = t2;
    measure(n, || {
        t += Cycles(1000);
        black_box(node.offload_syscall(Sysno::ClockGettime, [0; 6], t));
    })
}

/// Zero-copy device mmap: eager batched PFN resolve + PTE install,
/// then the TLB-coherent unmap. Reported per page.
fn bench_devmap_zero_copy(n: u64) -> f64 {
    const PAGES: u64 = 16;
    let mut node = build_node();
    let dev = node
        .hw
        .device_of_class(DeviceClass::InfinibandHca)
        .expect("testbed has an HCA")
        .clone();
    let app_pid = node.app_pid;
    let proxy_pid = node.proxy_pid.expect("proxy spawned");
    measure(n, || {
        let mck = node.mck.as_mut().expect("mckernel node");
        let (proxy, delegator) = node
            .linux
            .proxy_and_delegator(proxy_pid)
            .expect("registered");
        let zc = devmap::device_mmap_zero_copy(
            mck,
            app_pid,
            proxy,
            delegator,
            &dev,
            0,
            0,
            PAGES * PAGE_SIZE,
        )
        .expect("UAR maps");
        devmap::device_munmap_zero_copy(
            mck,
            app_pid,
            delegator,
            zc.map.lwk_va,
            PAGES * PAGE_SIZE,
            zc.map.tracking,
        )
        .expect("unmaps");
    }) / PAGES as f64
}

/// Raw cost of one protection-domain switch (PKRU update bookkeeping),
/// measured as enter/exit pairs.
fn bench_domain_switch(n: u64) -> f64 {
    let mut d = DomainModel::enabled(Cycles::from_ns(25));
    measure(n, || {
        black_box(d.enter(DomainId::IkcRing));
        black_box(d.exit());
    }) / 2.0
}

fn to_json(metrics: &[(String, f64)]) -> String {
    let mut out = String::from("{\n  \"bench\": \"fig_offload_hotpath\",\n  \"metrics\": {\n");
    for (i, (k, v)) in metrics.iter().enumerate() {
        let comma = if i + 1 == metrics.len() { "" } else { "," };
        out.push_str(&format!("    \"{k}\": {v:.2}{comma}\n"));
    }
    out.push_str("  }\n}\n");
    out
}

/// Minimal parser for the flat `"key": number` JSON these benches write.
fn parse_metrics(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((key, val)) = line.split_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        if let Ok(v) = val.trim().parse::<f64>() {
            out.push((key.to_string(), v));
        }
    }
    out
}

/// Merge `fresh` into the metrics already in `path` (keeps
/// `fig_offload_hotpath`'s numbers; replaces stale `bypass_*` entries),
/// preserving order.
fn merge_into(path: &str, fresh: &[(String, f64)]) {
    let mut metrics = std::fs::read_to_string(path)
        .map(|s| parse_metrics(&s))
        .unwrap_or_default();
    for (k, v) in fresh {
        match metrics.iter_mut().find(|(mk, _)| mk == k) {
            Some((_, mv)) => *mv = *v,
            None => metrics.push((k.clone(), *v)),
        }
    }
    std::fs::write(path, to_json(&metrics)).expect("write benchmark output");
    println!("merged {} bypass metrics into {path}", fresh.len());
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n = iters();

    let (read_off, read_fast, read_hard) = sweep_read(n);
    println!("=== offload bypass sweep (host wall clock, read 64B) ===");
    println!("{:>24}: {read_off:10.1} ns", "offload");
    println!("{:>24}: {read_fast:10.1} ns", "bypass");
    println!("{:>24}: {read_hard:10.1} ns", "bypass+domains");
    println!(
        "{:>24}: {:10.1}x (floor {BYPASS_FLOOR}x)",
        "net win",
        read_off / read_hard
    );

    let fresh: Vec<(String, f64)> = vec![
        ("bypass_futex_ns".into(), bench_futex(n)),
        ("bypass_clock_ns".into(), bench_clock(n)),
        ("devmap_zero_copy_ns".into(), bench_devmap_zero_copy(n / 64)),
        ("domain_switch_ns".into(), bench_domain_switch(n)),
    ];
    println!("=== bypass fast paths (host wall clock) ===");
    for (k, v) in &fresh {
        println!("{k:>24}: {v:10.1} ns");
    }

    if let Some(i) = args.iter().position(|a| a == "--check") {
        let path = args.get(i + 1).expect("--check needs a baseline path");
        let baseline = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let base = parse_metrics(&baseline);
        let mut failed = false;
        for (k, v) in &fresh {
            match base.iter().find(|(bk, _)| bk == k) {
                Some((_, bv)) if *v > bv * REGRESSION_TOLERANCE => {
                    eprintln!(
                        "PERF REGRESSION: {k} = {v:.1} ns vs baseline {bv:.1} ns (>{REGRESSION_TOLERANCE}x)"
                    );
                    failed = true;
                }
                Some((_, bv)) => {
                    println!("{k:>24}: ok ({:.2}x of baseline)", v / bv);
                }
                None => eprintln!("warning: baseline is missing metric {k}"),
            }
        }
        // Floor on the FRESH interleaved sweep: the promoted read must
        // beat the offloaded read by BYPASS_FLOOR even while paying
        // domain switches. Both sides came from the same interleaved
        // run, so ambient load cannot fake a verdict.
        if read_hard * BYPASS_FLOOR > read_off {
            eprintln!(
                "BYPASS FLOOR: promoted read {read_hard:.1} ns is not {BYPASS_FLOOR}x faster \
                 than the {read_off:.1} ns offloaded read"
            );
            failed = true;
        } else {
            println!(
                "{:>24}: ok ({:.1}x of offloaded read)",
                "bypass floor",
                read_off / read_hard
            );
        }
        if failed {
            std::process::exit(1);
        }
        println!("perf check passed (tolerance {REGRESSION_TOLERANCE}x)");
        return;
    }

    let out = std::env::var("HLWK_BENCH_OUT").unwrap_or_else(|_| "BENCH_offload.json".into());
    merge_into(&out, &fresh);
}
