//! Future-work ablation — "in the future, we will further investigate
//! eliminating the RDMA registration issue" (Sec. VI).
//!
//! The paper proposes making MPI aware of the hybrid setting so internal
//! buffers are pre-registered at init and registration `write()`s never
//! offload on the critical path. This bin measures large-message Reduce
//! variation under Hadoop, with and without that fix. The full
//! (size × MPI variant × repetition) grid is one pool submission.

use bench::{header, size_label};
use cluster::experiment::run_seed;
use cluster::{Cluster, ClusterConfig, OsVariant};
use simcore::{par, Cycles, Summary};
use workloads::osu::{Collective, OsuConfig};

const SIZES: [u64; 3] = [64 << 10, 256 << 10, 1 << 20];

fn main() {
    let nodes = bench::max_nodes().min(16);
    let runs = bench::runs().min(10);
    header(&format!(
        "Future-work ablation — hybrid-aware MPI registration (Reduce, McKernel+Hadoop, {nodes} nodes, {runs} runs)"
    ));
    println!(
        "{:>8} {:>20} {:>20} {:>22}",
        "size", "stock MVAPICH", "hybrid-aware MPI", "variation reduction"
    );

    // Cells in table order: size-major, then {stock, fixed}, then run.
    let cells: Vec<(u64, bool, usize)> = SIZES
        .iter()
        .flat_map(|&bytes| {
            [false, true]
                .into_iter()
                .flat_map(move |aware| (0..runs).map(move |run| (bytes, aware, run)))
        })
        .collect();
    let vals: Vec<f64> = par::parallel_map(cells.len(), |ci| {
        let (bytes, hybrid_aware, run) = cells[ci];
        let osu = OsuConfig {
            warmup: 5,
            iters: 6,
            iter_gap: Cycles::from_us(300),
        };
        let mut cfg = ClusterConfig::paper(OsVariant::McKernel)
            .with_nodes(nodes)
            .with_insitu()
            .with_seed(run_seed(0x8E6F, run));
        cfg.mpi_hybrid_aware = hybrid_aware;
        let mut cluster = Cluster::build(cfg);
        let res = cluster.run_osu(Collective::Reduce, bytes, &osu, Cycles::from_ms(1)).expect("fault-free");
        res.latencies_us.iter().sum::<f64>() / res.latencies_us.len() as f64
    });

    let mut cursor = 0usize;
    for bytes in SIZES {
        let stock = Summary::from_samples(&vals[cursor..cursor + runs]);
        let fixed = Summary::from_samples(&vals[cursor + runs..cursor + 2 * runs]);
        cursor += 2 * runs;
        println!(
            "{:>8} {:>14.1}us {:>4.0}% {:>14.1}us {:>4.0}% {:>21.1}x",
            size_label(bytes),
            stock.mean,
            stock.max_variation_pct(),
            fixed.mean,
            fixed.max_variation_pct(),
            stock.max_variation_pct() / fixed.max_variation_pct().max(0.01)
        );
    }
    println!("\nExpected: the fix collapses McKernel's large-message variation to its");
    println!("small-message noise floor — the artifact is entirely the offloaded");
    println!("registration path, not the data path.");
}
