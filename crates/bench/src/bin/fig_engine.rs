//! Event-engine microbenchmarks — the tracked perf baseline for PR 3.
//!
//! Measures **host wall-clock** cost of the two structures this PR
//! rebuilt: the hierarchical timer wheel behind `simcore::EventQueue`
//! (against an embedded copy of the retired `BinaryHeap` + tombstone
//! implementation it replaced) and the `simcore::par` bounded
//! work-stealing pool (via a reduced fig6 sweep at 1 thread vs all
//! threads). The numbers land in `BENCH_engine.json` so every future PR
//! is held to a perf trajectory (CI compares against the committed
//! baseline with a 2x tolerance — see `scripts/ci.sh --bench-smoke`).
//!
//! Workloads:
//! * *dense* — hold-pattern churn entirely inside the level-0 window
//!   (delays < 256 cycles): pop one, schedule one, forever;
//! * *sparse* — delays up to 2^40 cycles, forcing traffic through the
//!   upper wheel levels and their promotion cascades;
//! * *cancel* — arm-and-disarm, the preemption-timer pattern;
//! * *fig6* — end-to-end reduced figure sweep, serial vs full pool.
//!
//! Knobs:
//! * `HLWK_BENCH_ITERS` — iterations per metric (default 20000);
//! * `HLWK_BENCH_OUT`   — output JSON path (default `BENCH_engine.json`);
//! * `--check <path>`   — compare a fresh run against a committed
//!   baseline instead of writing one; exits non-zero past 2x.

use cluster::experiment::run_seed;
use cluster::{Cluster, ClusterConfig, OsVariant};
use simcore::event::EventQueue;
use simcore::{par, Cycles, StreamRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::hint::black_box;
use std::time::Instant;
use workloads::osu::{Collective, OsuConfig};

/// Tolerance for the CI regression gate: a `*_ns` metric may regress up
/// to this factor against the committed baseline before CI fails.
const REGRESSION_TOLERANCE: f64 = 2.0;

/// Prefill depth for the hold-pattern churn benchmarks. ~4k live events
/// matches a busy 64-node cluster's timer population.
const HOLD: usize = 4096;

fn iters() -> u64 {
    std::env::var("HLWK_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000)
}

/// Best-of-5 per side with the trials interleaved a, b, a, b, …: the
/// speedup gates below compare two measured minima, and on a shared
/// host a sustained ambient-load burst that covers one side's entire
/// sequential best-of-5 run can fake a >2x swing in either direction.
/// Interleaved, a burst degrades both minima or neither.
fn measure_pair<F: FnMut(), G: FnMut()>(n: u64, mut a: F, mut b: G) -> (f64, f64) {
    let mut best = (f64::INFINITY, f64::INFINITY);
    for _ in 0..5 {
        let start = Instant::now();
        for _ in 0..n {
            a();
        }
        best.0 = best.0.min(start.elapsed().as_nanos() as f64 / n as f64);
        let start = Instant::now();
        for _ in 0..n {
            b();
        }
        best.1 = best.1.min(start.elapsed().as_nanos() as f64 / n as f64);
    }
    best
}

// ---------------------------------------------------------------------
// Embedded copy of the retired heap-based EventQueue (pre-PR 3), kept
// here verbatim-in-spirit as the comparison baseline: a BinaryHeap
// ordered by (time, seq) with lazy tombstone cancellation.
// ---------------------------------------------------------------------

struct HeapQueue {
    heap: BinaryHeap<Reverse<(Cycles, u64, u64)>>,
    cancelled: HashSet<u64>,
    next_seq: u64,
}

impl HeapQueue {
    fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
        }
    }

    fn schedule(&mut self, at: Cycles, payload: u64) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse((at, seq, payload)));
        seq
    }

    fn cancel(&mut self, seq: u64) -> bool {
        self.cancelled.insert(seq)
    }

    fn pop(&mut self) -> Option<(Cycles, u64)> {
        while let Some(Reverse((at, seq, payload))) = self.heap.pop() {
            if self.cancelled.remove(&seq) {
                continue;
            }
            return Some((at, payload));
        }
        None
    }
}

/// Deterministic delay sequence shared by wheel and heap runs so both
/// see byte-identical workloads.
fn delays(n: usize, max_delay: u64, seed: u64) -> Vec<u64> {
    let mut rng = StreamRng::root(seed);
    (0..n).map(|_| rng.range_u64(1, max_delay)).collect()
}

/// Hold-pattern churn, wheel and heap interleaved: prefill `HOLD`
/// events into each, then each op pops the nearest event and schedules
/// a replacement. Both queues see byte-identical delay sequences.
/// Returns `(wheel_ns, heap_ns)`.
fn bench_churn_pair(n: u64, max_delay: u64, seed: u64) -> (f64, f64) {
    let ds = delays(HOLD + n as usize * 3, max_delay, seed);
    let mut wq: EventQueue<u64> = EventQueue::new();
    let mut hq = HeapQueue::new();
    let (mut wnow, mut hnow) = (Cycles::ZERO, Cycles::ZERO);
    let (mut wdi, mut hdi) = (0usize, 0usize);
    for _ in 0..HOLD {
        wq.schedule(wnow + Cycles(ds[wdi]), wdi as u64);
        wdi += 1;
        hq.schedule(hnow + Cycles(ds[hdi]), hdi as u64);
        hdi += 1;
    }
    measure_pair(
        n,
        || {
            let (at, p) = wq.pop().expect("hold pattern never drains");
            wnow = at;
            black_box(p);
            wq.schedule(wnow + Cycles(ds[wdi % ds.len()]), wdi as u64);
            wdi += 1;
        },
        || {
            let (at, p) = hq.pop().expect("hold pattern never drains");
            hnow = at;
            black_box(p);
            hq.schedule(hnow + Cycles(ds[hdi % ds.len()]), hdi as u64);
            hdi += 1;
        },
    )
}

/// Arm-and-disarm: schedule a timer, cancel it immediately — the
/// preemption-timer pattern the scheduler runs on every dispatch.
/// Returns `(wheel_ns, heap_ns)`.
fn bench_cancel_pair(n: u64) -> (f64, f64) {
    let mut wq: EventQueue<u64> = EventQueue::new();
    let mut hq = HeapQueue::new();
    let now = Cycles::from_ms(1);
    measure_pair(
        n,
        || {
            let key = wq.schedule(now + Cycles(500), 7);
            black_box(wq.cancel(key));
        },
        || {
            let key = hq.schedule(now + Cycles(500), 7);
            black_box(hq.cancel(key));
        },
    )
}

// ---------------------------------------------------------------------
// End-to-end pool benchmark: a reduced fig6 sweep, serial vs full pool.
// ---------------------------------------------------------------------

/// One reduced fig6 cell: a full size sweep for (collective, OS, run)
/// on a small cluster. Mirrors `fig6_osu_latency` with cheaper knobs.
fn fig6_cell(coll: Collective, os: OsVariant, run: usize) -> f64 {
    let osu_cfg = OsuConfig {
        warmup: 2,
        iters: 3,
        iter_gap: Cycles::from_us(300),
    };
    let cfg = ClusterConfig::paper(os)
        .with_nodes(8)
        .with_seed(run_seed(0xF166, run));
    let mut cluster = Cluster::build(cfg);
    let mut at = Cycles::from_ms(1);
    let mut acc = 0.0;
    for bytes in coll.message_sizes() {
        let res = cluster.run_osu(coll, bytes, &osu_cfg, at).expect("fault-free");
        at = res.end + Cycles::from_secs(2);
        acc += res.latencies_us.iter().sum::<f64>() / res.latencies_us.len() as f64;
    }
    acc
}

/// Wall-clock milliseconds for the reduced fig6 grid on `threads`
/// workers. Returns the checksum too so the work cannot be elided and
/// the 1-thread/N-thread results can be compared for determinism.
fn fig6_wall_ms(threads: usize) -> (f64, Vec<f64>) {
    let colls = Collective::all();
    let oses = [OsVariant::LinuxCgroup, OsVariant::McKernel];
    let runs = 2usize;
    let cells: Vec<(Collective, OsVariant, usize)> = colls
        .iter()
        .flat_map(|&coll| {
            oses.iter()
                .flat_map(move |&os| (0..runs).map(move |run| (coll, os, run)))
        })
        .collect();
    let start = Instant::now();
    let vals = par::parallel_map_threads(threads, cells.len(), |ci| {
        let (coll, os, run) = cells[ci];
        fig6_cell(coll, os, run)
    });
    (start.elapsed().as_secs_f64() * 1e3, vals)
}

fn run_all() -> Vec<(&'static str, f64)> {
    let n = iters();
    // Dense: every delay inside the level-0 window (the common case for
    // p2p hops and scheduler ticks).
    let (wheel_dense, heap_dense) = bench_churn_pair(n, 256, 11);
    // Sparse: delays spanning the upper wheel levels (up to 2^40).
    let (wheel_sparse, heap_sparse) = bench_churn_pair(n, 1 << 40, 13);
    let (wheel_cancel, heap_cancel) = bench_cancel_pair(n);

    let threads = par::pool_size();
    // Interleave the serial/parallel trials and keep the best of each:
    // back-to-back one-shot runs let ambient host load (or a thermal
    // ramp) land entirely on one side and fake a speedup — or a
    // regression — even when both sides do identical work.
    let (mut serial_ms, mut par_ms) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..3 {
        let (s_ms, serial_vals) = fig6_wall_ms(1);
        let (p_ms, par_vals) = fig6_wall_ms(threads);
        assert_eq!(
            serial_vals, par_vals,
            "fig6 per-cell values must be identical at any thread count"
        );
        serial_ms = serial_ms.min(s_ms);
        par_ms = par_ms.min(p_ms);
    }

    let mut metrics = vec![
        ("wheel_dense_ns", wheel_dense),
        ("heap_dense_ns", heap_dense),
        ("dense_speedup_x", heap_dense / wheel_dense),
        ("wheel_sparse_ns", wheel_sparse),
        ("heap_sparse_ns", heap_sparse),
        ("sparse_speedup_x", heap_sparse / wheel_sparse),
        ("wheel_cancel_ns", wheel_cancel),
        ("heap_cancel_ns", heap_cancel),
        ("fig6_serial_ms", serial_ms),
        ("fig6_parallel_ms", par_ms),
    ];
    // On a single-worker host the serial/parallel ratio is pure
    // scheduling noise (a committed 0.97x reads as a regression when it
    // means nothing). Omit the ratio rather than commit a lie; the raw
    // wall times stay for reference and `pool_threads` records why.
    if threads > 1 {
        metrics.push(("fig6_speedup_x", serial_ms / par_ms));
    }
    metrics.push(("pool_threads", threads as f64));
    metrics
}

fn to_json(metrics: &[(&str, f64)]) -> String {
    let mut out = String::from("{\n  \"bench\": \"fig_engine\",\n  \"metrics\": {\n");
    for (i, (k, v)) in metrics.iter().enumerate() {
        let comma = if i + 1 == metrics.len() { "" } else { "," };
        out.push_str(&format!("    \"{k}\": {v:.2}{comma}\n"));
    }
    out.push_str("  }\n}\n");
    out
}

/// Minimal parser for the flat `"key": number` JSON this binary writes.
fn parse_metrics(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((key, val)) = line.split_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        if let Ok(v) = val.trim().parse::<f64>() {
            out.push((key.to_string(), v));
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let metrics = run_all();
    println!("=== event engine (host wall clock) ===");
    for (k, v) in &metrics {
        if k.ends_with("_x") {
            println!("{k:>20}: {v:10.2}x");
        } else if k.ends_with("_ms") {
            println!("{k:>20}: {v:10.1} ms");
        } else if *k == "pool_threads" {
            println!("{k:>20}: {v:10.0}");
        } else {
            println!("{k:>20}: {v:10.1} ns");
        }
    }
    if par::pool_size() <= 1 {
        println!("speedup floor skipped: pool_threads=1");
    }

    if let Some(i) = args.iter().position(|a| a == "--check") {
        let path = args.get(i + 1).expect("--check needs a baseline path");
        let baseline = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let base = parse_metrics(&baseline);
        let mut failed = false;
        // Absolute-cost metrics gate against the committed baseline.
        // Speedup ratios are machine-shaped (core count, load), so the
        // gate on them is a floor, not a baseline comparison: the wheel
        // must decisively beat the heap on its design target (dense
        // horizons), must now at least match it on sparse ones (the
        // level-mask scan plus the singleton fast path put the wheel
        // ahead of the heap even when every delay spans the upper
        // levels), and the pool must deliver real speedup over serial
        // execution — checked only when this host actually has multiple
        // workers, since on one core the ratio is pure scheduling noise.
        for (k, v) in &metrics {
            if k.ends_with("_x") {
                let floor = match *k {
                    "dense_speedup_x" => 1.5,
                    "sparse_speedup_x" => 1.0,
                    "fig6_speedup_x" if par::pool_size() > 1 => 1.2,
                    _ => continue,
                };
                // The floor binds the *committed* baseline exactly — a
                // regressed ratio cannot be baselined away. The fresh
                // smoke run gets a 10% noise grace: sparse's margin is
                // ~1.15x, thin enough that a one-shot CI run on a
                // shared host occasionally dips a hair under the floor
                // without any code change.
                let fresh_floor = floor * 0.9;
                let base_v = base.iter().find(|(bk, _)| bk == k).map(|(_, bv)| *bv);
                // fig6's committed ratio is meaningless if the baseline
                // was recorded on a single-worker host (it is ~1.0 by
                // construction there, whatever this host looks like).
                let base_pool = base
                    .iter()
                    .find(|(bk, _)| bk == "pool_threads")
                    .map_or(1.0, |(_, bv)| *bv);
                let skip_base = *k == "fig6_speedup_x" && base_pool <= 1.0;
                if !skip_base && matches!(base_v, Some(bv) if bv < floor) {
                    eprintln!(
                        "PERF REGRESSION: committed {k} = {:.2}x (floor {floor:.1}x)",
                        base_v.unwrap()
                    );
                    failed = true;
                } else if *v < fresh_floor {
                    eprintln!("PERF REGRESSION: {k} = {v:.2}x (floor {fresh_floor:.2}x)");
                    failed = true;
                } else {
                    println!("{k:>20}: ok ({v:.2}x, floor {fresh_floor:.2}x)");
                }
                continue;
            }
            if *k == "pool_threads" || k.starts_with("heap_") || k.ends_with("_ms") {
                continue; // informational
            }
            match base.iter().find(|(bk, _)| bk == k) {
                Some((_, bv)) if *v > bv * REGRESSION_TOLERANCE => {
                    eprintln!(
                        "PERF REGRESSION: {k} = {v:.1} ns vs baseline {bv:.1} ns (>{REGRESSION_TOLERANCE}x)"
                    );
                    failed = true;
                }
                Some((_, bv)) => {
                    println!("{k:>20}: ok ({:.2}x of baseline)", v / bv);
                }
                None => eprintln!("warning: baseline is missing metric {k}"),
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!("perf check passed (tolerance {REGRESSION_TOLERANCE}x)");
        return;
    }

    let out = std::env::var("HLWK_BENCH_OUT").unwrap_or_else(|_| "BENCH_engine.json".into());
    std::fs::write(&out, to_json(&metrics)).expect("write benchmark output");
    println!("wrote {out}");
}
