//! Fault-recovery sweep: offload latency and goodput as the IKC fault
//! rate rises. Demonstrates graceful degradation — retries and NACK
//! retransmission mask faults at a latency cost, goodput falls smoothly
//! (no cliff), and only extreme rates exhaust the retry budget into
//! `-EIO` failures.
//!
//! Columns: injected drop rate (corruption runs at half the drop rate),
//! mean and p99 latency of *successful* offloads, retransmissions per
//! offload, success fraction, and goodput (successful offloads per
//! simulated millisecond).

use bench::header;
use cluster::node::NodeRuntime;
use cluster::{ClusterConfig, OsVariant};
use hlwk_core::abi::Sysno;
use simcore::fault::FaultConfig;
use simcore::{Cycles, StreamRng};

const OFFLOADS: u64 = 300;

fn cycles_to_us(c: Cycles) -> f64 {
    c.raw() as f64 / 2_800.0
}

struct Cell {
    rate: f64,
    mean_us: f64,
    p99_us: f64,
    retries_per_op: f64,
    success_frac: f64,
    goodput_per_ms: f64,
}

fn run_cell(rate: f64, seed: u64) -> Cell {
    let faults = if rate > 0.0 {
        FaultConfig::message_loss(rate).with_corruption(rate / 2.0)
    } else {
        FaultConfig::off()
    };
    let mut cfg = ClusterConfig::paper(OsVariant::McKernel)
        .with_nodes(1)
        .with_seed(seed)
        .with_faults(faults);
    cfg.horizon_secs = 5;
    let mut node = NodeRuntime::build(&cfg, 0, &StreamRng::root(cfg.seed));

    let start = Cycles::from_ms(1);
    let mut at = start;
    let mut latencies = Vec::new();
    let mut successes = 0u64;
    for i in 0..OFFLOADS {
        let len = 64 + (i % 4) * 64;
        let (ret, done) =
            node.offload_syscall(Sysno::GetRandom, [node.arena_va.raw(), len, 0, 0, 0, 0], at);
        if ret > 0 {
            successes += 1;
            latencies.push(done - at);
        }
        at = done + Cycles::from_us(10);
    }
    latencies.sort();
    let mean_us = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().map(|&c| cycles_to_us(c)).sum::<f64>() / latencies.len() as f64
    };
    let p99_us = if latencies.is_empty() {
        0.0
    } else {
        let idx = ((latencies.len() as f64 * 0.99).ceil() as usize).max(1) - 1;
        cycles_to_us(latencies[idx])
    };
    let elapsed_ms = cycles_to_us(at - start) / 1_000.0;
    Cell {
        rate,
        mean_us,
        p99_us,
        retries_per_op: node.offload_retries as f64 / OFFLOADS as f64,
        success_frac: successes as f64 / OFFLOADS as f64,
        goodput_per_ms: successes as f64 / elapsed_ms,
    }
}

fn main() {
    header(&format!(
        "Fault recovery — {OFFLOADS} offloaded getrandom() calls per fault rate"
    ));
    println!(
        "{:>9} {:>12} {:>12} {:>12} {:>10} {:>14}",
        "drop rate", "mean(us)", "p99(us)", "retries/op", "success", "goodput(/ms)"
    );
    // All fault rates are independent single-node sims: one pool
    // submission for the sweep.
    let rates = [0.0, 0.01, 0.02, 0.05, 0.10, 0.15, 0.20, 0.30];
    let cells: Vec<Cell> =
        simcore::par::parallel_map(rates.len(), |i| run_cell(rates[i], 0xFA));
    let mut prev_success = f64::INFINITY;
    for cell in cells {
        let rate = cell.rate;
        println!(
            "{:>9.2} {:>12.2} {:>12.2} {:>12.3} {:>9.1}% {:>14.2}",
            cell.rate,
            cell.mean_us,
            cell.p99_us,
            cell.retries_per_op,
            cell.success_frac * 100.0,
            cell.goodput_per_ms,
        );
        // Graceful degradation, enforced: success never *increases* by
        // more than noise as the rate rises, and there is no cliff to
        // zero below 10% loss.
        assert!(
            cell.success_frac <= prev_success + 0.02,
            "success fraction must degrade monotonically (±noise)"
        );
        if rate < 0.10 {
            assert!(
                cell.success_frac > 0.99,
                "retries must fully mask sub-10% loss, got {:.3} at rate {rate}",
                cell.success_frac
            );
        }
        assert!(
            cell.success_frac > 0.0,
            "goodput must never collapse to zero"
        );
        prev_success = cell.success_frac;
    }
}
