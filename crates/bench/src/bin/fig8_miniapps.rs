//! Figure 8: mini-application execution time vs node count, Linux+cgroup
//! vs McKernel, plain runs (no in-situ workload).

use bench::{header, node_sweep, runs};
use cluster::experiment::{parallel_runs, run_seed, RunStats};
use cluster::{Cluster, ClusterConfig, OsVariant};
use simcore::Cycles;
use workloads::miniapps::MiniApp;

fn min_nodes(app: &MiniApp) -> u32 {
    match app.name {
        "miniFE" => 2,
        "HPC-CG" => 4,
        _ => 8,
    }
}

fn main() {
    let n_runs = runs();
    header(&format!(
        "Figure 8 — mini-app execution time (s), avg over {n_runs} runs (variation in %)"
    ));
    for app in MiniApp::paper_suite() {
        println!(
            "\n--- {} ({:?} scaling) ---",
            app.name, app.scaling
        );
        println!(
            "{:>6} {:>22} {:>22} {:>10}",
            "nodes", "Linux+cgroup", "McKernel", "mck gain"
        );
        for nodes in node_sweep(min_nodes(&app)) {
            let measure = |os: OsVariant| -> RunStats {
                let app = app.clone();
                let values = parallel_runs(n_runs, |run| {
                    let cfg = ClusterConfig::paper(os)
                        .with_nodes(nodes)
                        .with_seed(run_seed(0xF168, run));
                    let mut cluster = Cluster::build(cfg);
                    cluster
                        .run_miniapp(&app, Cycles::from_ms(1))
                        .as_secs_f64()
                });
                RunStats::new(values)
            };
            let lin = measure(OsVariant::LinuxCgroup);
            let mck = measure(OsVariant::McKernel);
            let gain = (lin.mean() / mck.mean() - 1.0) * 100.0;
            println!(
                "{:>6} {:>14.2}s ({:>4.1}%) {:>14.2}s ({:>4.1}%) {:>9.1}%",
                nodes,
                lin.mean(),
                lin.max_variation_pct(),
                mck.mean(),
                mck.max_variation_pct(),
                gain
            );
        }
    }
    println!("\nPaper shape: McKernel outperforms Linux by ~1-8% across the suite with");
    println!("lower variation (most visible for HPC-CG); the gap comes from contiguous");
    println!("2MiB-backed memory (fewer TLB/LLC misses) plus the absence of OS noise.");
}
