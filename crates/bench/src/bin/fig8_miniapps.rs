//! Figure 8: mini-application execution time vs node count, Linux+cgroup
//! vs McKernel, plain runs (no in-situ workload).
//!
//! The whole (app × node count × OS variant × repetition) grid is one
//! pool submission (whole-figure parallelism).

use bench::{header, node_sweep, runs};
use cluster::experiment::{run_seed, RunStats};
use cluster::{Cluster, ClusterConfig, OsVariant};
use simcore::{par, Cycles};
use workloads::miniapps::MiniApp;

fn min_nodes(app: &MiniApp) -> u32 {
    match app.name {
        "miniFE" => 2,
        "HPC-CG" => 4,
        _ => 8,
    }
}

fn main() {
    let n_runs = runs();
    header(&format!(
        "Figure 8 — mini-app execution time (s), avg over {n_runs} runs (variation in %)"
    ));
    let apps = MiniApp::paper_suite();
    let oses = [OsVariant::LinuxCgroup, OsVariant::McKernel];

    // Cells in exact table-consumption order: app-major, then node
    // count, then OS, then run.
    let mut cells: Vec<(&MiniApp, u32, OsVariant, usize)> = Vec::new();
    for app in &apps {
        for nodes in node_sweep(min_nodes(app)) {
            for os in oses {
                for run in 0..n_runs {
                    cells.push((app, nodes, os, run));
                }
            }
        }
    }
    let values: Vec<f64> = par::parallel_map(cells.len(), |ci| {
        let (app, nodes, os, run) = cells[ci];
        let cfg = ClusterConfig::paper(os)
            .with_nodes(nodes)
            .with_seed(run_seed(0xF168, run));
        let mut cluster = Cluster::build(cfg);
        cluster
            .run_miniapp(app, Cycles::from_ms(1))
            .expect("fault-free")
            .as_secs_f64()
    });

    let mut cursor = 0usize;
    for app in &apps {
        println!(
            "\n--- {} ({:?} scaling) ---",
            app.name, app.scaling
        );
        println!(
            "{:>6} {:>22} {:>22} {:>10}",
            "nodes", "Linux+cgroup", "McKernel", "mck gain"
        );
        for nodes in node_sweep(min_nodes(app)) {
            let lin = RunStats::new(values[cursor..cursor + n_runs].to_vec());
            let mck = RunStats::new(values[cursor + n_runs..cursor + 2 * n_runs].to_vec());
            cursor += 2 * n_runs;
            let gain = (lin.mean() / mck.mean() - 1.0) * 100.0;
            println!(
                "{:>6} {:>14.2}s ({:>4.1}%) {:>14.2}s ({:>4.1}%) {:>9.1}%",
                nodes,
                lin.mean(),
                lin.max_variation_pct(),
                mck.mean(),
                mck.max_variation_pct(),
                gain
            );
        }
    }
    println!("\nPaper shape: McKernel outperforms Linux by ~1-8% across the suite with");
    println!("lower variation (most visible for HPC-CG); the gap comes from contiguous");
    println!("2MiB-backed memory (fewer TLB/LLC misses) plus the absence of OS noise.");
}
