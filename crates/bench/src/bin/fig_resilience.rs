//! Resilience sweep: time-to-completion under link faults and a
//! mid-run node crash, per recovery policy and OS variant.
//!
//! Not a figure from the paper — the paper's clusters are assumed
//! reliable — but the natural follow-up question for a production
//! deployment of the stack: what does a lost node cost the job under
//! each recovery strategy, and how much does the link-level retransmit
//! layer add at realistic loss rates?
//!
//! Grid: OS variant × recovery policy × per-packet loss rate. The
//! loss-free column doubles as a regression gate: the resilient runner
//! must reproduce the plain `run_miniapp` time bit-for-bit (asserted
//! per cell), so wrapping a job in recovery machinery costs nothing
//! until a fault actually fires. Every faulty cell arms a fail-stop
//! crash of node 1 halfway through the job.

use bench::{header, max_nodes, resil_iters, seed_base};
use cluster::experiment::run_seed;
use cluster::{
    run_resilient, Cluster, ClusterConfig, OsVariant, RecoveryCosts, RecoveryPolicy,
    RecoveryReport,
};
use netsim::reliable::CrashTrigger;
use simcore::fault::LinkFaultConfig;
use simcore::{par, Cycles};
use workloads::miniapps::MiniApp;

/// Per-packet loss rates swept (0 = the fault-free equivalence gate).
const LOSS_RATES: [f64; 4] = [0.0, 0.001, 0.01, 0.05];

struct Row {
    /// `Ok`: the job completed (possibly shrunk). `Err`: aborted, with
    /// (failed rank, suspicion-to-confirmation detection latency).
    outcome: Result<RecoveryReport, (usize, Cycles)>,
    /// Fabric messages carried, retransmits included.
    messages: u64,
    /// Packets re-sent by the reliable layer.
    retransmits: u64,
}

fn app() -> MiniApp {
    MiniApp {
        iterations: resil_iters(),
        ..MiniApp::hpccg()
    }
}

fn run_cell(os: OsVariant, policy: RecoveryPolicy, rate: f64, seed: u64) -> Row {
    let nodes = max_nodes().min(16);
    let start = Cycles::from_ms(1);
    let app = app();
    let mut cfg = ClusterConfig::paper(os).with_nodes(nodes).with_seed(seed);
    if rate > 0.0 {
        // Lossy fabric plus a fail-stop crash of node 1 halfway through
        // the job (per-iteration estimate: the OpenMP quantum dominates).
        let est = app.thread_quantum(nodes as usize) + Cycles::from_ms(1);
        let crash_at = start + est.scale(f64::from(app.iterations) / 2.0);
        cfg = cfg
            .with_link_faults(LinkFaultConfig::loss(rate))
            .with_node_crash(1, CrashTrigger::AtTime(crash_at));
    }
    let mut c = Cluster::build(cfg);
    let res = run_resilient(&mut c, &app, policy, &RecoveryCosts::default(), start);
    let (messages, _bytes) = c.fabric.take_stats();
    let rel = c.fabric.reliable_stats();
    let outcome = match res {
        Ok(rep) => {
            if rate == 0.0 && rep.checkpoints == 0 {
                // The loss-free column is the regression gate: recovery
                // machinery must be invisible until a fault fires.
                // (Checkpointing cells are exempt — periodic snapshots
                // cost time by design, faults or not.)
                let plain = Cluster::build(
                    ClusterConfig::paper(os).with_nodes(nodes).with_seed(seed),
                )
                .run_miniapp(&app, start)
                .expect("fault-free");
                assert_eq!(
                    rep.time, plain,
                    "fault-free resilient run must match run_miniapp exactly"
                );
            }
            Ok(rep)
        }
        Err(f) => {
            let died = c.fabric.node_dead_at(1).unwrap_or(f.detected_at);
            Err((f.rank, f.detected_at - died))
        }
    };
    Row {
        outcome,
        messages,
        retransmits: rel.retransmits,
    }
}

fn main() {
    let iters = resil_iters();
    let nodes = max_nodes().min(16);
    header(&format!(
        "Resilience — HPC-CG x{iters} on {nodes} nodes; node 1 fail-stops mid-run in every lossy cell"
    ));
    let oses = [OsVariant::LinuxCgroup, OsVariant::McKernel];
    let policies = [
        RecoveryPolicy::Abort,
        RecoveryPolicy::ShrinkAndRedo,
        RecoveryPolicy::CheckpointRestart { interval: 3 },
    ];
    let mut cells: Vec<(OsVariant, RecoveryPolicy, f64)> = Vec::new();
    for os in oses {
        for policy in policies {
            for rate in LOSS_RATES {
                cells.push((os, policy, rate));
            }
        }
    }
    let rows: Vec<Row> = par::parallel_map(cells.len(), |ci| {
        let (os, policy, rate) = cells[ci];
        run_cell(os, policy, rate, run_seed(seed_base(), ci))
    });

    for (oi, os) in oses.iter().enumerate() {
        println!("\n--- {} ---", os.label());
        println!(
            "{:>12} {:>8} {:>12} {:>12} {:>8} {:>10} {:>6} {:>5}",
            "policy", "loss", "time", "detect(us)", "retrans", "overhead", "redone", "alive"
        );
        for (pi, policy) in policies.iter().enumerate() {
            for (ri, rate) in LOSS_RATES.iter().enumerate() {
                let row = &rows[(oi * policies.len() + pi) * LOSS_RATES.len() + ri];
                let overhead = 100.0 * row.retransmits as f64 / row.messages.max(1) as f64;
                match &row.outcome {
                    Ok(rep) => println!(
                        "{:>12} {:>7.1}% {:>11.2}s {:>12} {:>8} {:>9.2}% {:>6} {:>5}",
                        policy.label(),
                        rate * 100.0,
                        rep.time.as_secs_f64(),
                        rep.detection_latency
                            .map_or("-".to_string(), |d| format!("{:.1}", d.as_us_f64())),
                        row.retransmits,
                        overhead,
                        rep.redone_iters,
                        rep.survivors
                    ),
                    Err((rank, detect)) => println!(
                        "{:>12} {:>7.1}% {:>11} {:>12.1} {:>8} {:>9.2}% {:>6} {:>5}",
                        policy.label(),
                        rate * 100.0,
                        format!("ABORT r{rank}"),
                        detect.as_us_f64(),
                        row.retransmits,
                        overhead,
                        "-",
                        "-"
                    ),
                }
            }
        }
    }
    println!("\nExpected shape: the loss-free abort/shrink-redo cells match the plain runs");
    println!("exactly (asserted per cell; checkpointing pays for its snapshots either");
    println!("way). Under a crash, abort loses the whole job,");
    println!("shrink-redo pays one redone iteration plus a rebuild, checkpoint-restart");
    println!("pays the rollback window; retransmit overhead tracks the loss rate and");
    println!("stays invisible at the application level until the budget drains.");
}
