//! Point-to-point validation: osu_latency / osu_bw equivalents.
//!
//! Not a paper figure — a calibration check that the LogGP parameters
//! reproduce FDR-class point-to-point behaviour (the paper's Fig. 6
//! collectives are built on this substrate).

use bench::{header, size_label};
use mpisim::collectives::{Ctx, Recorder};
use mpisim::host::IdealHost;
use mpisim::p2p::P2pParams;
use mpisim::regcache::RegCache;
use netsim::{LinkParams, ReliableFabric};
use simcore::{par, Cycles, StreamRng};
use workloads::osu::{pt2pt_bandwidth, pt2pt_latency, OsuConfig};

fn with_ctx<R>(f: impl FnOnce(&mut Ctx<'_, IdealHost>) -> R) -> R {
    let mut fabric = ReliableFabric::new(2, LinkParams::fdr_infiniband());
    let mut host = IdealHost::new();
    let params = P2pParams::default();
    let mut regcaches: Vec<RegCache> = (0..2)
        .map(|i| RegCache::new(StreamRng::root(1).stream("r", i as u64)))
        .collect();
    let mut recorder: Recorder = None;
    let mut ctx = Ctx {
        hybrid_aware: false,
        fabric: &mut fabric,
        host: &mut host,
        params: &params,
        regcaches: &mut regcaches,
        recorder: &mut recorder,
        reduce_per_kib: Cycles::from_ns(350),
        churn: 0.0,
        rank_map: None,
        sink: None,
    };
    f(&mut ctx)
}

fn main() {
    header("pt2pt calibration — osu_latency / osu_bw over the modeled FDR link");
    let cfg = OsuConfig::default();
    println!(
        "{:>8} {:>14} {:>16}",
        "size", "latency (us)", "bandwidth (MB/s)"
    );
    // Each size is an independent fabric+host pair: run all sizes as one
    // pool submission, print in size order.
    let rows: Vec<(f64, f64)> = par::parallel_map(21, |p| {
        let bytes = 1u64 << p;
        let lat =
            with_ctx(|ctx| pt2pt_latency(ctx, bytes, &cfg, Cycles::from_us(1))).expect("fault-free");
        let bw = with_ctx(|ctx| {
            pt2pt_bandwidth(
                ctx,
                bytes,
                64,
                &OsuConfig {
                    warmup: 5,
                    iters: 4,
                    iter_gap: Cycles::ZERO,
                },
                Cycles::from_us(1),
            )
        })
        .expect("fault-free");
        (lat, bw)
    });
    for (p, (lat, bw)) in rows.iter().enumerate() {
        let bytes = 1u64 << p;
        println!("{:>8} {:>14.2} {:>16.0}", size_label(bytes), lat, bw);
    }
    println!("\nReference (Connect-IB FDR era): ~1-1.5us small-message latency,");
    println!("~5.8-6.0 GB/s peak bandwidth, rendezvous switch at 16kB.");
}
