//! Profiling harness for the `mpisim` collectives layer at 64 ranks.
//!
//! Not a figure — a host-wall-clock attribution tool: times every
//! collective family at a small and a large message size over an
//! `IdealHost` + fault-free fabric (so only mpisim's own software costs
//! are on the clock), then micro-times the per-message building blocks
//! (`Fabric::send`, `RegCache::needs_registration`, child-stream
//! derivation) to attribute where the nanoseconds go. Findings and the
//! resulting fix live in `EXPERIMENTS.md` ("Profiling the collectives
//! walk").
//!
//! Usage: `prof_collectives [ranks]` (default 64).

use mpisim::collectives::{allgather, allreduce, alltoall, barrier, tree, Ctx, Recorder};
use mpisim::host::IdealHost;
use mpisim::p2p::P2pParams;
use mpisim::regcache::RegCache;
use netsim::{LinkParams, ReliableFabric};
use simcore::{Cycles, StreamRng};
use std::hint::black_box;
use std::time::Instant;

struct Rig {
    fabric: ReliableFabric,
    host: IdealHost,
    params: P2pParams,
    regcaches: Vec<RegCache>,
    recorder: Recorder,
}

impl Rig {
    fn new(p: usize) -> Rig {
        Rig {
            fabric: ReliableFabric::new(p, LinkParams::fdr_infiniband()),
            host: IdealHost::new(),
            params: P2pParams::default(),
            regcaches: (0..p)
                .map(|i| RegCache::new(StreamRng::root(42).stream("rank", i as u64)))
                .collect(),
            recorder: None,
        }
    }

    fn ctx(&mut self, churn: f64) -> Ctx<'_, IdealHost> {
        Ctx {
            hybrid_aware: false,
            fabric: &mut self.fabric,
            host: &mut self.host,
            params: &self.params,
            regcaches: &mut self.regcaches,
            recorder: &mut self.recorder,
            reduce_per_kib: Cycles::from_ns(350),
            churn,
            rank_map: None,
            sink: None,
        }
    }
}

/// Best-of-5 wall nanoseconds for one call of `f`.
fn time_once<F: FnMut()>(mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    best
}

fn main() {
    let p: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let start_clocks = vec![Cycles::from_ms(1); p];
    let ops: Vec<(&str, u64, f64)> = vec![
        // (collective, bytes, internal-buffer churn while it runs)
        ("allreduce_rd", 1024, 0.08),
        ("allreduce_raben", 1 << 20, 0.08),
        ("allgather_rd", 1024, 0.0),
        ("allgather_ring", 1 << 20, 0.0),
        ("alltoall_bruck", 1024, 0.0),
        ("alltoall_pair", 1 << 20, 0.0),
        ("bcast", 1 << 20, 0.0),
        ("reduce", 1 << 20, 0.08),
        ("barrier", 0, 0.0),
    ];

    println!("=== mpisim collectives walk, p = {p} (host wall clock) ===");
    println!(
        "{:>16} {:>9} {:>12} {:>10} {:>12}",
        "op", "bytes", "walk us", "msgs", "ns/msg"
    );
    for (name, bytes, churn) in &ops {
        let mut rig = Rig::new(p);
        rig.fabric.take_stats();
        let mut msgs = 0u64;
        let ns = time_once(|| {
            let mut ctx = rig.ctx(*churn);
            let r = match *name {
                "allreduce_rd" => allreduce::allreduce_rd(&mut ctx, p, *bytes, &start_clocks),
                "allreduce_raben" => {
                    allreduce::allreduce_rabenseifner(&mut ctx, p, *bytes, &start_clocks)
                }
                "allgather_rd" => allgather::allgather_rd(&mut ctx, p, *bytes, &start_clocks),
                "allgather_ring" => allgather::allgather_ring(&mut ctx, p, *bytes, &start_clocks),
                "alltoall_bruck" => alltoall::alltoall_bruck(&mut ctx, p, *bytes, &start_clocks),
                "alltoall_pair" => alltoall::alltoall_pairwise(&mut ctx, p, *bytes, &start_clocks),
                "bcast" => tree::bcast(&mut ctx, p, 0, *bytes, &start_clocks),
                "reduce" => tree::reduce(&mut ctx, p, 0, *bytes, &start_clocks),
                "barrier" => barrier::barrier(&mut ctx, p, &start_clocks),
                _ => unreachable!(),
            };
            black_box(r.expect("fault-free"));
            msgs = rig.fabric.take_stats().0;
        });
        println!(
            "{:>16} {:>9} {:>12.1} {:>10} {:>12.1}",
            name,
            bytes,
            ns / 1e3,
            msgs,
            if msgs > 0 { ns / msgs as f64 } else { 0.0 }
        );
    }

    // ---- building-block attribution -------------------------------------
    println!("\n=== per-message building blocks ===");
    let n = 200_000u64;
    let avg = |total_ns: f64| total_ns / n as f64;

    let mut fabric = ReliableFabric::new(2, LinkParams::fdr_infiniband());
    let mut at = Cycles::from_ms(1);
    let t = time_once(|| {
        for _ in 0..n {
            let tr = fabric.send(0, 1, 4096, at).expect("fault-free");
            at = tr.sender_free;
            black_box(tr);
        }
    });
    println!("{:>44}: {:6.1} ns", "ReliableFabric::send (fault-free)", avg(t));

    let mut cache = RegCache::new(StreamRng::root(7).stream("rank", 0));
    for _ in 0..8 {
        cache.needs_registration(1 << 20, 0.0);
    }
    let t = time_once(|| {
        for _ in 0..n {
            black_box(cache.needs_registration(1 << 20, 0.0));
        }
    });
    println!("{:>44}: {:6.1} ns", "RegCache::needs_registration (churn 0)", avg(t));

    let t = time_once(|| {
        for _ in 0..n {
            black_box(cache.needs_registration(1 << 20, 0.08));
        }
    });
    println!("{:>44}: {:6.1} ns", "RegCache::needs_registration (churn .08)", avg(t));

    let root = StreamRng::root(7);
    let t = time_once(|| {
        for i in 0..n {
            black_box(root.stream("rereg", i));
        }
    });
    println!("{:>44}: {:6.1} ns", "StreamRng::stream(\"rereg\", i) derivation", avg(t));
}
