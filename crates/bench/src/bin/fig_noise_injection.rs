//! Noise-injection sensitivity study (after Ferreira et al., paper ref. 28, which
//! the paper's related-work section builds on).
//!
//! Injects synthetic periodic noise into an otherwise noiseless cluster
//! running HPC-CG, holding the total noise *budget* constant (2.5% CPU)
//! while sweeping its granularity from many short interruptions to few
//! long ones. Classic result: for bulk-synchronous codes, coarse noise is
//! absorbed far worse than fine noise, because each long interruption
//! stalls every rank at the next collective.

use bench::header;
use mpisim::collectives::{Ctx, Recorder};
use mpisim::host::{HostModel, IdealHost};
use mpisim::p2p::P2pParams;
use mpisim::regcache::RegCache;
use netsim::{LinkParams, ReliableFabric};
use simcore::{Cycles, StreamRng};
use workloads::miniapps::{self, MiniApp};

/// Ideal host plus periodic injected noise with per-rank phase offsets.
struct InjectedHost {
    inner: IdealHost,
    period: Cycles,
    duration: Cycles,
    phase: Vec<Cycles>,
}

impl InjectedHost {
    fn new(p: usize, period: Cycles, duration: Cycles, seed: u64) -> Self {
        let mut rng = StreamRng::root(seed);
        InjectedHost {
            inner: IdealHost::new(),
            period,
            duration,
            phase: (0..p)
                .map(|_| Cycles(rng.range_u64(0, period.raw())))
                .collect(),
        }
    }

    /// Total injected noise overlapping `[at, at+work)` on `rank`.
    fn stolen(&self, rank: usize, at: Cycles, work: Cycles) -> Cycles {
        let (p, d) = (self.period.raw(), self.duration.raw());
        let lo = at.raw() + self.phase[rank].raw();
        let hi = lo + work.raw();
        // Noise bursts start at k*p and last d.
        let first = lo / p;
        let last = hi / p;
        let mut total = 0;
        for k in first..=last {
            let (bs, be) = (k * p, k * p + d);
            let s = bs.max(lo);
            let e = be.min(hi);
            if e > s {
                total += e - s;
            }
            // A burst straddling the end also delays completion fully if
            // it started before the work finished (detour simplication:
            // count overlap only).
        }
        Cycles(total)
    }
}

impl HostModel for InjectedHost {
    fn cpu(&mut self, rank: usize, at: Cycles, work: Cycles) -> Cycles {
        at + work + self.stolen(rank, at, work)
    }

    fn mr_register(&mut self, rank: usize, at: Cycles, bytes: u64) -> Cycles {
        self.inner.mr_register(rank, at, bytes)
    }

    fn omp_region(&mut self, rank: usize, at: Cycles, per_thread: Cycles, _t: u32) -> Cycles {
        self.cpu(rank, at, per_thread)
    }
}

fn run(p: usize, period: Cycles, duration: Cycles, seed: u64) -> f64 {
    let app = MiniApp {
        iterations: 40,
        ..MiniApp::hpccg()
    };
    let mut fabric = ReliableFabric::new(p, LinkParams::fdr_infiniband());
    let mut host = InjectedHost::new(p, period, duration, seed);
    let params = P2pParams::default();
    let mut regcaches: Vec<RegCache> = (0..p)
        .map(|i| RegCache::new(StreamRng::root(2).stream("r", i as u64)))
        .collect();
    let mut recorder: Recorder = None;
    let mut ctx = Ctx {
        hybrid_aware: false,
        fabric: &mut fabric,
        host: &mut host,
        params: &params,
        regcaches: &mut regcaches,
        recorder: &mut recorder,
        reduce_per_kib: Cycles::from_ns(350),
        churn: 0.0,
        rank_map: None,
        sink: None,
    };
    miniapps::run(&mut ctx, &app, p, Cycles::from_ms(1))
        .expect("fault-free")
        .as_secs_f64()
}

fn main() {
    let p = 32;
    header(&format!(
        "Noise injection — HPC-CG on {p} noiseless nodes, 2.5% CPU noise budget"
    ));
    // Constant budget: freq x duration = 2.5% of time. The baseline and
    // every granularity are independent sims — one pool submission.
    let sweep = [(10_000u64, "10 kHz"), (1_000, "1 kHz"), (100, "100 Hz"), (10, "10 Hz"), (1, "1 Hz")];
    let configs: Vec<(Cycles, Cycles, u64)> = std::iter::once((Cycles::from_secs(10_000), Cycles(1), 1))
        .chain(sweep.iter().map(|&(freq_hz, _)| {
            let period = Cycles(simcore::time::DEFAULT_FREQ_HZ / freq_hz);
            (period, period.scale(0.025), 7)
        }))
        .collect();
    let times: Vec<f64> =
        simcore::par::parallel_map(configs.len(), |i| run(p, configs[i].0, configs[i].1, configs[i].2));
    let baseline = times[0];
    println!("noiseless baseline: {baseline:.2}s\n");
    println!(
        "{:>12} {:>12} {:>12} {:>12} {:>12}",
        "frequency", "duration", "runtime(s)", "slowdown", "absorbed?"
    );
    for ((&(_, label), &t), &(_, duration, _)) in
        sweep.iter().zip(&times[1..]).zip(&configs[1..])
    {
        let slow = t / baseline - 1.0;
        println!(
            "{:>12} {:>12} {:>12.2} {:>11.1}% {:>12}",
            label,
            format!("{duration}"),
            t,
            slow * 100.0,
            if slow < 0.035 { "yes" } else { "AMPLIFIED" }
        );
    }
    println!("\nExpected: fine-grained noise costs ~its budget (2.5%); coarse noise is");
    println!("amplified by the BSP structure — each long stall blocks all {p} ranks at");
    println!("the next allreduce (Ferreira et al.'s kernel-injection result).");
}
