//! A4 — which kernel mechanism buys the quiet?
//!
//! FWQ on four synthetic core configurations: full Linux noise (ticks +
//! daemons), daemons-only (hypothetical tickless Linux), ticks-only
//! (daemonless), and the LWK (neither, cooperative). Shows that both the
//! tick-less design *and* the absence of kernel threads are needed for
//! McKernel-grade flatness.

use bench::header;
use hwmodel::cpu::CoreId;
use linuxsim::daemons::DaemonSource;
use linuxsim::occupancy::CoreOccupancy;
use linuxsim::runtime::{noiseless_execute, LinuxCoreRuntime};
use linuxsim::tick::TickSource;
use simcore::{Cycles, StreamRng, Summary};
use workloads::fwq;

fn measure(rt: Option<&LinuxCoreRuntime>, occ: &CoreOccupancy) -> Summary {
    let samples = fwq::run_for(
        fwq::DEFAULT_QUANTUM,
        Cycles::from_secs(5),
        Cycles(1),
        |at, w| match rt {
            Some(rt) => rt.execute(at, w, occ).finish,
            None => noiseless_execute(at, w).finish,
        },
    );
    let worst = fwq::worst_window(&samples, fwq::WINDOW);
    Summary::from_samples(&worst.iter().map(|&x| x as f64).collect::<Vec<_>>())
}

fn main() {
    header("Ablation A4 — scheduler/noise mechanism decomposition (FWQ, worst window)");
    let rng = StreamRng::root(0xA4).stream("core", 0);
    let core = CoreId(0);
    let mut occ = CoreOccupancy::new();
    occ.seal();

    let configs: Vec<(&str, Option<LinuxCoreRuntime>)> = vec![
        (
            "ticks + daemons (Linux)",
            Some(LinuxCoreRuntime::with_rng(
                core,
                Some(TickSource::hz1000(rng.stream("tick", 0))),
                DaemonSource::standard_set(&rng),
                rng.stream("exec", 0),
            )),
        ),
        (
            "daemons only (tickless Linux)",
            Some(LinuxCoreRuntime::with_rng(
                core,
                None,
                DaemonSource::standard_set(&rng),
                rng.stream("exec", 1),
            )),
        ),
        (
            "ticks only (no kernel threads)",
            Some(LinuxCoreRuntime::with_rng(
                core,
                Some(TickSource::hz1000(rng.stream("tick", 0))),
                Vec::new(),
                rng.stream("exec", 2),
            )),
        ),
        ("tick-less cooperative (LWK)", None),
    ];

    println!(
        "{:<34} {:>10} {:>10} {:>10} {:>10}",
        "configuration", "mean(cy)", "max(cy)", "p99(cy)", "slowdown"
    );
    for (label, rt) in &configs {
        let s = measure(rt.as_ref(), &occ);
        println!(
            "{:<34} {:>10.0} {:>10.0} {:>10.0} {:>9.1}x",
            label,
            s.mean,
            s.max,
            s.p99,
            s.max / fwq::DEFAULT_QUANTUM.raw() as f64
        );
    }
    println!("\nExpected: removing either the tick or the daemons is not enough —");
    println!("only the LWK configuration is perfectly flat.");
}
