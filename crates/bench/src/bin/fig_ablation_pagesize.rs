//! A3 — the memory-management dividend in isolation.
//!
//! Runs the mini-app suite on McKernel twice: once with its native 2 MiB
//! contiguous backing, once forced to Linux-style scattered 4 KiB pages.
//! The difference is the TLB/LLC part of the paper's 1-8% win (Fig. 8),
//! separated from the noise part.

use bench::header;
use cluster::{Cluster, ClusterConfig, OsVariant};
use hwmodel::interference::PageBacking;
use simcore::{par, Cycles};
use workloads::miniapps::MiniApp;

fn run(app: &MiniApp, backing: PageBacking, nodes: u32) -> f64 {
    let cfg = ClusterConfig::paper(OsVariant::McKernel)
        .with_nodes(nodes)
        .with_seed(0xAB1A);
    let mut cluster = Cluster::build(cfg);
    for n in &mut cluster.host.nodes {
        n.backing = backing;
    }
    cluster.run_miniapp(app, Cycles::from_ms(1)).expect("fault-free").as_secs_f64()
}

fn main() {
    let nodes = 8;
    header(&format!(
        "Ablation A3 — 2MiB contiguous vs 4KiB scattered backing (McKernel, {nodes} nodes)"
    ));
    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>8}",
        "app", "mem-int", "2MiB (s)", "4KiB (s)", "gain"
    );
    // One pool submission for the whole (app × backing) grid.
    let apps = MiniApp::paper_suite();
    let cells: Vec<(&MiniApp, PageBacking)> = apps
        .iter()
        .flat_map(|app| {
            [PageBacking::Large2mContiguous, PageBacking::Small4k]
                .into_iter()
                .map(move |b| (app, b))
        })
        .collect();
    let times: Vec<f64> =
        par::parallel_map(cells.len(), |ci| run(cells[ci].0, cells[ci].1, nodes));
    for (i, app) in apps.iter().enumerate() {
        let large = times[2 * i];
        let small = times[2 * i + 1];
        println!(
            "{:<10} {:>10.2} {:>12.2} {:>12.2} {:>7.1}%",
            app.name,
            app.mem_intensity,
            large,
            small,
            (small / large - 1.0) * 100.0
        );
    }
    println!("\nExpected: gain grows with memory intensity (HPC-CG highest, Modylas");
    println!("lowest) and sits in the low single digits — the TLB/LLC share of the");
    println!("paper's 1-8% McKernel advantage.");
}
