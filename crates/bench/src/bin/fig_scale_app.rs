//! Real mini-apps on the partitioned engine at 1024 and 4096 nodes.
//!
//! `fig_scale` sweeps the *windowed BSP proxy* at paper scale; this
//! binary runs the actual Fig. 8 workload — `workloads::miniapps` over
//! the exact collectives layer (`mpisim::collectives`), with the
//! registration cache, rendezvous protocol and per-port LogGP
//! timelines — through the record-and-replay partitioned path
//! (`mpisim::replay`) at node counts the shared-fabric walk was never
//! meant to reach.
//!
//! Each point records the walk once (symbolic clocks, no fabric/host
//! state touched), then replays the op stream with one partition per
//! node, timing 1 worker thread against the full `simcore::par` pool.
//! The per-node value logs are digest-checked across thread counts and,
//! at 1024 nodes, the resolved clocks are verified against a direct
//! global-wheel walk.
//!
//! Metrics merge into `HLWK_BENCH_OUT` (default `BENCH_engine.json`) as
//! `app_scale_{nodes}_{wall_1t_ms,wall_nt_ms,speedup_x}`. Like
//! `fig_scale`, this must run *after* `fig_engine`, which rewrites the
//! file wholesale.
//!
//! Modes:
//! * default       — 1024- and 4096-node points + metric merge;
//! * `--check`     — 1024-node digest invariance at 1/2/4/pool threads
//!   plus a pool-gated speedup floor (explicitly skipped, with a log
//!   line, when the host has a single worker).
//!
//! `HLWK_SCALE_APP_ITERS` sets BSP iterations per run (default 6).

use mpisim::collectives::{Ctx, Recorder};
use mpisim::host::IdealHost;
use mpisim::record::{decode, resolve};
use mpisim::regcache::RegCache;
use mpisim::{replay, NodeSeat, P2pParams, RecordSink, ReplayConfig, ReplayOp};
use netsim::reliable::ReliableFabric;
use netsim::LinkParams;
use simcore::{par, Cycles, StreamRng};
use std::sync::Arc;
use std::time::Instant;
use workloads::miniapps::{self, MiniApp};

fn iterations() -> u32 {
    std::env::var("HLWK_SCALE_APP_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(6)
}

fn app() -> MiniApp {
    MiniApp {
        iterations: iterations(),
        ..MiniApp::hpccg()
    }
}

fn caches(p: usize) -> Vec<RegCache> {
    (0..p)
        .map(|i| RegCache::new(StreamRng::root(0xF15C).stream("rank", i as u64)))
        .collect()
}

/// Common start clock: 1 ms at the default 2.8 GHz frequency.
const START: Cycles = Cycles(2_800_000);

/// A recorded walk ready to replay: per-node op lists + symbolic finals.
struct Recording {
    ops: Vec<Vec<ReplayOp>>,
    sym: Vec<Cycles>,
    cfg: ReplayConfig,
}

fn record(p: usize) -> Recording {
    let mut fabric = ReliableFabric::new(p, LinkParams::fdr_infiniband());
    let mut host = IdealHost::new();
    let params = P2pParams::default();
    let mut rcs = caches(p);
    let mut rec: Recorder = None;
    let mut sink = RecordSink::new(p);
    let sym = {
        let mut ctx = Ctx {
            hybrid_aware: false,
            fabric: &mut fabric,
            host: &mut host,
            params: &params,
            regcaches: &mut rcs,
            recorder: &mut rec,
            reduce_per_kib: Cycles::from_ns(350),
            churn: 0.0,
            rank_map: None,
            sink: Some(&mut sink),
        };
        miniapps::run_clocks(&mut ctx, &app(), p, START).expect("recording never fails")
    };
    let cfg = ReplayConfig {
        params,
        link: *fabric.params(),
        policy: *fabric.policy(),
        lookahead: fabric.lookahead(),
        view: Arc::new(fabric.partition_view().expect("fault-free")),
    };
    Recording { ops: sink.into_ops(), sym, cfg }
}

/// Replay outcome reduced to comparable values: makespan + trace digest.
#[derive(Clone, Copy, PartialEq, Debug)]
struct Outcome {
    makespan: Cycles,
    digest: u64,
}

/// One timed replay at `threads` workers (fresh seats each run).
fn timed_replay(r: &Recording, p: usize, threads: usize) -> (f64, Outcome) {
    let mut fresh = ReliableFabric::new(p, LinkParams::fdr_infiniband());
    let seats: Vec<NodeSeat<IdealHost>> = fresh
        .detach_ends()
        .into_iter()
        .zip(caches(p))
        .map(|(end, regcache)| NodeSeat { host: IdealHost::new(), regcache, end })
        .collect();
    let ops = r.ops.clone();
    let start = Instant::now();
    let (res, _seats) = replay(ops, seats, &r.cfg, threads);
    let ms = start.elapsed().as_secs_f64() * 1e3;
    let logs = res.expect("fault-free replay");
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    for log in &logs {
        for v in log {
            digest = (digest ^ v.raw()).wrapping_mul(0x100_0000_01b3);
        }
    }
    let makespan = r
        .sym
        .iter()
        .enumerate()
        .map(|(n, &tok)| resolve(decode(tok, n), &logs[n]))
        .max()
        .expect("p >= 1")
        - START;
    (ms, Outcome { makespan, digest })
}

struct Point {
    nodes: usize,
    makespan: Cycles,
    ops: usize,
    wall_1t_ms: f64,
    wall_nt_ms: f64,
}

impl Point {
    fn speedup(&self) -> f64 {
        self.wall_1t_ms / self.wall_nt_ms
    }
}

fn best_of(r: &Recording, p: usize, threads: usize, trials: u32) -> (f64, Outcome) {
    let mut best = f64::INFINITY;
    let mut out: Option<Outcome> = None;
    for _ in 0..trials {
        let (ms, o) = timed_replay(r, p, threads);
        if let Some(prev) = out {
            assert_eq!(prev, o, "identical replay must reproduce identically");
        }
        out = Some(o);
        best = best.min(ms);
    }
    (best, out.expect("at least one trial"))
}

fn run_point(nodes: usize) -> Point {
    let threads = par::pool_size();
    let r = record(nodes);
    let ops: usize = r.ops.iter().map(Vec::len).sum();
    let (wall_1t, o1) = best_of(&r, nodes, 1, 2);
    let (wall_nt, on) = best_of(&r, nodes, threads, 2);
    assert_eq!(
        o1, on,
        "{nodes}-node mini-app must be value-identical at 1 and {threads} threads"
    );
    Point {
        nodes,
        makespan: o1.makespan,
        ops,
        wall_1t_ms: wall_1t,
        wall_nt_ms: wall_nt,
    }
}

/// Verify the replay against a direct global-wheel walk at `p` nodes.
fn verify_against_walk(p: usize, replayed: Cycles) {
    let mut fabric = ReliableFabric::new(p, LinkParams::fdr_infiniband());
    let mut host = IdealHost::new();
    let params = P2pParams::default();
    let mut rcs = caches(p);
    let mut rec: Recorder = None;
    let mut ctx = Ctx {
        hybrid_aware: false,
        fabric: &mut fabric,
        host: &mut host,
        params: &params,
        regcaches: &mut rcs,
        recorder: &mut rec,
        reduce_per_kib: Cycles::from_ns(350),
        churn: 0.0,
        rank_map: None,
        sink: None,
    };
    let walked = miniapps::run(&mut ctx, &app(), p, START).expect("fault-free");
    assert_eq!(replayed, walked, "partitioned replay diverged from the global wheel at {p} nodes");
}

/// Speedup floor: the ISSUE requires enforcement whenever the pool has
/// real workers; on one core the ratio is scheduling noise.
fn speedup_floor() -> Option<f64> {
    match par::pool_size() {
        0 | 1 => None,
        2 | 3 => Some(1.2),
        _ => Some(2.0),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let threads = par::pool_size();

    if args.iter().any(|a| a == "--check") {
        let nodes = 1024;
        let r = record(nodes);
        let (_, base) = timed_replay(&r, nodes, 1);
        for t in [2usize, 4, threads.max(1)] {
            let (_, o) = timed_replay(&r, nodes, t);
            assert_eq!(o, base, "{nodes}-node mini-app digest must not depend on {t} threads");
        }
        verify_against_walk(nodes, base.makespan);
        println!(
            "determinism: {nodes}-node {} digest {:016x} identical at 1/2/4/{threads} threads, walk-verified",
            app().name,
            base.digest
        );
        let p = run_point(nodes);
        match speedup_floor() {
            Some(floor) if p.speedup() < floor => {
                eprintln!(
                    "PERF REGRESSION: app_scale_1024_speedup_x = {:.2}x on {threads} workers (floor {floor:.1}x)",
                    p.speedup()
                );
                std::process::exit(1);
            }
            Some(floor) => println!(
                "app_scale_1024_speedup_x: ok ({:.2}x on {threads} workers, floor {floor:.1}x)",
                p.speedup()
            ),
            None => println!("speedup floor skipped: pool_threads=1"),
        }
        println!("app scale check passed");
        return;
    }

    let points: Vec<Point> = [1024usize, 4096].iter().map(|&n| run_point(n)).collect();
    verify_against_walk(1024, points[0].makespan);

    println!("=== real mini-app ({}) on the partitioned engine ===", app().name);
    println!(
        "{:>6} {:>10} {:>10} {:>12} {:>12} {:>9}",
        "nodes", "app s", "ops", "wall 1t ms", "wall Nt ms", "speedup"
    );
    for p in &points {
        println!(
            "{:>6} {:>10.4} {:>10} {:>12.1} {:>12.1} {:>8.2}x",
            p.nodes,
            p.makespan.as_secs_f64(),
            p.ops,
            p.wall_1t_ms,
            p.wall_nt_ms,
            p.speedup()
        );
    }
    if speedup_floor().is_none() {
        println!("speedup floor skipped: pool_threads=1");
    }

    let fresh: Vec<(String, f64)> = points
        .iter()
        .flat_map(|p| {
            [
                (format!("app_scale_{}_wall_1t_ms", p.nodes), p.wall_1t_ms),
                (format!("app_scale_{}_wall_nt_ms", p.nodes), p.wall_nt_ms),
                (format!("app_scale_{}_speedup_x", p.nodes), p.speedup()),
            ]
        })
        .collect();
    let out = std::env::var("HLWK_BENCH_OUT").unwrap_or_else(|_| "BENCH_engine.json".into());
    bench::merge_metrics_into(&out, &fresh);
}
