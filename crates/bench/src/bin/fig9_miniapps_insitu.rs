//! Figure 9: mini-application execution time under a co-located Hadoop
//! workload, for the three isolation configurations.
//!
//! The whole (app × node count × OS variant × repetition) grid is one
//! pool submission (whole-figure parallelism).

use bench::{header, node_sweep, runs};
use cluster::experiment::{run_seed, RunStats};
use cluster::{Cluster, ClusterConfig, OsVariant};
use simcore::{par, Cycles};
use workloads::miniapps::MiniApp;

fn min_nodes(app: &MiniApp) -> u32 {
    match app.name {
        "miniFE" => 4,
        "HPC-CG" => 4,
        _ => 8,
    }
}

fn main() {
    let n_runs = runs();
    header(&format!(
        "Figure 9 — mini-app execution time (s) with competing Hadoop, avg over {n_runs} runs (variation in %)"
    ));
    let apps = MiniApp::paper_suite();

    let mut cells: Vec<(&MiniApp, u32, OsVariant, usize)> = Vec::new();
    for app in &apps {
        for nodes in node_sweep(min_nodes(app)) {
            for os in OsVariant::all() {
                for run in 0..n_runs {
                    cells.push((app, nodes, os, run));
                }
            }
        }
    }
    let values: Vec<f64> = par::parallel_map(cells.len(), |ci| {
        let (app, nodes, os, run) = cells[ci];
        let cfg = ClusterConfig::paper(os)
            .with_nodes(nodes)
            .with_insitu()
            .with_seed(run_seed(0xF169, run));
        let mut cluster = Cluster::build(cfg);
        cluster
            .run_miniapp(app, Cycles::from_ms(1))
            .expect("fault-free")
            .as_secs_f64()
    });

    let mut worst = [0.0f64; 3];
    let mut worst_ratio = [0.0f64; 3];
    let mut cursor = 0usize;
    for app in &apps {
        println!("\n--- {} ({:?} scaling) ---", app.name, app.scaling);
        println!(
            "{:>6} {:>22} {:>24} {:>20}",
            "nodes", "Linux+cgroup", "Linux+cgroup+isolcpus", "McKernel"
        );
        for nodes in node_sweep(min_nodes(app)) {
            let mut cells_stats = Vec::new();
            for (vi, _os) in OsVariant::all().into_iter().enumerate() {
                let stats = RunStats::new(values[cursor..cursor + n_runs].to_vec());
                cursor += n_runs;
                worst[vi] = worst[vi].max(stats.max_variation_pct());
                worst_ratio[vi] = worst_ratio[vi].max(stats.summary.worst_slowdown());
                cells_stats.push(stats);
            }
            println!(
                "{:>6} {:>14.2}s ({:>4.1}%) {:>16.2}s ({:>4.1}%) {:>12.2}s ({:>4.1}%)",
                nodes,
                cells_stats[0].mean(),
                cells_stats[0].max_variation_pct(),
                cells_stats[1].mean(),
                cells_stats[1].max_variation_pct(),
                cells_stats[2].mean(),
                cells_stats[2].max_variation_pct(),
            );
        }
    }
    println!("\nWorst-case variation across all workloads:");
    for (vi, os) in OsVariant::all().into_iter().enumerate() {
        println!(
            "  {:<24} {:>7.1}%   (slowest/fastest run: {:.1}x)",
            os.label(),
            worst[vi],
            worst_ratio[vi]
        );
    }
    println!("\nPaper shape: worst case ~3.1x (310%) for Linux+cgroup, ~16% for");
    println!("Linux+cgroup+isolcpus, ~3% for McKernel.");
}
