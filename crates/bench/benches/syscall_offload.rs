//! A1 — in-LWK vs offloaded system-call paths.
//!
//! Benchmarks the two hot paths of the hybrid stack: a local McKernel
//! syscall (table dispatch only) against a fully offloaded call (marshal,
//! IKC queue, delegator, proxy service with unified-address-space
//! dereference, reply). Also prints the *modeled* latency of each path,
//! which is the number the paper's design argues about.

use cluster::{node::NodeRuntime, ClusterConfig, OsVariant};
use criterion::{criterion_group, criterion_main, Criterion};
use hlwk_core::abi::Sysno;
use simcore::{Cycles, StreamRng};
use std::hint::black_box;

fn build_node() -> NodeRuntime {
    let mut cfg = ClusterConfig::paper(OsVariant::McKernel).with_nodes(1);
    cfg.horizon_secs = 5;
    NodeRuntime::build(&cfg, 0, &StreamRng::root(1))
}

fn bench(c: &mut Criterion) {
    let mut node = build_node();
    let mut t = Cycles::from_ms(1);

    // Report the modeled latencies once.
    let (_, done) = node.offload_syscall(Sysno::Getpid, [0; 6], t);
    let local_cost = done - t;
    let (_, done) = node.offload_syscall(
        Sysno::GetRandom,
        [node.arena_va.raw(), 64, 0, 0, 0, 0],
        t,
    );
    let offload_cost = done - t;
    println!(
        "modeled latency: local={} offloaded={} (x{:.1})",
        local_cost,
        offload_cost,
        offload_cost.raw() as f64 / local_cost.raw() as f64
    );

    c.bench_function("syscall/local_getpid", |b| {
        b.iter(|| {
            t += Cycles(1000);
            black_box(node.offload_syscall(Sysno::Getpid, [0; 6], t))
        })
    });
    c.bench_function("syscall/offloaded_getrandom", |b| {
        b.iter(|| {
            t += Cycles(1000);
            black_box(node.offload_syscall(
                Sysno::GetRandom,
                [node.arena_va.raw(), 64, 0, 0, 0, 0],
                t,
            ))
        })
    });
    c.bench_function("syscall/offloaded_mr_register_1mb", |b| {
        b.iter(|| {
            t += Cycles(1000);
            black_box(node.mr_register(t, 1 << 20))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
