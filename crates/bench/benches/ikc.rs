//! A6 — IKC queue depth and marshalling throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hlwk_core::ihk::ikc::{IkcChannel, IkcMessage};
use hlwk_core::mck::syscall::{SyscallReply, SyscallRequest};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let req = SyscallRequest {
        seq: 1,
        pid: 1000,
        tid: 1000,
        sysno: 1,
        args: [3, 0x2000_0000, 4096, 0, 0, 0],
    };

    c.bench_function("ikc/marshal_request", |b| {
        b.iter(|| black_box(SyscallRequest::decode(&black_box(&req).encode())))
    });
    c.bench_function("ikc/marshal_reply", |b| {
        let rep = SyscallReply { seq: 1, ret: 4096 };
        b.iter(|| black_box(SyscallReply::decode(&black_box(&rep).encode())))
    });

    let mut group = c.benchmark_group("ikc/queue_depth");
    for depth in [4usize, 64, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            let mut ch = IkcChannel::new(depth);
            b.iter(|| {
                // Fill and drain half the queue.
                for i in 0..depth / 2 {
                    let mut r = req;
                    r.seq = i as u64;
                    ch.send(IkcMessage::syscall_request(&r)).expect("fits");
                }
                for _ in 0..depth / 2 {
                    black_box(ch.recv());
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
