//! A5 — collective algorithm selection.
//!
//! Prints the modeled crossover between recursive doubling and
//! Rabenseifner allreduce / Bruck and pairwise alltoall, and benchmarks
//! the simulation throughput of the algorithm engines.

use criterion::{criterion_group, criterion_main, Criterion};
use mpisim::collectives::{allreduce, alltoall, Ctx, Recorder};
use mpisim::host::IdealHost;
use mpisim::p2p::P2pParams;
use mpisim::regcache::RegCache;
use netsim::{LinkParams, ReliableFabric};
use simcore::{Cycles, StreamRng};
use std::hint::black_box;

struct Rig {
    fabric: ReliableFabric,
    host: IdealHost,
    params: P2pParams,
    regcaches: Vec<RegCache>,
    recorder: Recorder,
}

impl Rig {
    fn new(p: usize) -> Rig {
        Rig {
            fabric: ReliableFabric::new(p, LinkParams::fdr_infiniband()),
            host: IdealHost::new(),
            params: P2pParams::default(),
            regcaches: (0..p)
                .map(|i| RegCache::new(StreamRng::root(1).stream("r", i as u64)))
                .collect(),
            recorder: None,
        }
    }

    fn ctx(&mut self) -> Ctx<'_, IdealHost> {
        Ctx {
            hybrid_aware: false,
            fabric: &mut self.fabric,
            host: &mut self.host,
            params: &self.params,
            regcaches: &mut self.regcaches,
            recorder: &mut self.recorder,
            reduce_per_kib: Cycles::from_ns(350),
            churn: 0.0,
            rank_map: None,
            sink: None,
        }
    }
}

fn report_crossovers() {
    let p = 64;
    println!("\nallreduce algorithm crossover (64 ranks, modeled latency):");
    for bytes in [256u64, 1 << 10, 4 << 10, 64 << 10, 1 << 20] {
        let start = vec![Cycles::ZERO; p];
        let mut a = Rig::new(p);
        let rd = *allreduce::allreduce_rd(&mut a.ctx(), p, bytes, &start)
            .expect("fault-free")
            .iter()
            .max()
            .expect("nonempty");
        let mut b = Rig::new(p);
        let rab = *allreduce::allreduce_rabenseifner(&mut b.ctx(), p, bytes, &start)
            .expect("fault-free")
            .iter()
            .max()
            .expect("nonempty");
        println!(
            "  {:>8}B: recursive-doubling {:>12}  rabenseifner {:>12}  winner: {}",
            bytes,
            rd,
            rab,
            if rd < rab { "RD" } else { "Rabenseifner" }
        );
    }
    println!("alltoall algorithm crossover (64 ranks, modeled latency):");
    for bytes in [8u64, 64, 512, 4 << 10, 64 << 10] {
        let start = vec![Cycles::ZERO; p];
        let mut a = Rig::new(p);
        let bruck = *alltoall::alltoall_bruck(&mut a.ctx(), p, bytes, &start)
            .expect("fault-free")
            .iter()
            .max()
            .expect("nonempty");
        let mut b = Rig::new(p);
        let pw = *alltoall::alltoall_pairwise(&mut b.ctx(), p, bytes, &start)
            .expect("fault-free")
            .iter()
            .max()
            .expect("nonempty");
        println!(
            "  {:>8}B: bruck {:>12}  pairwise {:>12}  winner: {}",
            bytes,
            bruck,
            pw,
            if bruck < pw { "Bruck" } else { "pairwise" }
        );
    }
}

fn bench(c: &mut Criterion) {
    report_crossovers();
    let start64 = vec![Cycles::ZERO; 64];
    c.bench_function("collectives/allreduce_rd_64r_1k", |b| {
        let mut rig = Rig::new(64);
        b.iter(|| black_box(allreduce::allreduce_rd(&mut rig.ctx(), 64, 1024, &start64)))
    });
    c.bench_function("collectives/alltoall_pairwise_64r_4k", |b| {
        let mut rig = Rig::new(64);
        b.iter(|| {
            black_box(alltoall::alltoall_pairwise(
                &mut rig.ctx(),
                64,
                4096,
                &start64,
            ))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
