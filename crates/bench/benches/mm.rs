//! A7 — memory-management micro-costs: buddy allocator and page table.

use criterion::{criterion_group, criterion_main, Criterion};
use hlwk_core::mck::mem::pagetable::{PageTable, PteFlags};
use hlwk_core::mck::mem::phys::{BuddyAllocator, ORDER_2M};
use hwmodel::addr::{PhysAddr, VirtAddr, PAGE_SIZE, PAGE_SIZE_2M};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    c.bench_function("buddy/alloc_free_4k", |b| {
        let mut a = BuddyAllocator::new(PhysAddr(0), 64 << 20);
        b.iter(|| {
            let p = a.alloc(0).expect("free memory");
            black_box(p);
            a.free(p).expect("just allocated");
        })
    });

    c.bench_function("buddy/alloc_free_2m", |b| {
        let mut a = BuddyAllocator::new(PhysAddr(0), 64 << 20);
        b.iter(|| {
            let p = a.alloc(ORDER_2M).expect("free memory");
            black_box(p);
            a.free(p).expect("just allocated");
        })
    });

    c.bench_function("buddy/fragmentation_churn", |b| {
        let mut a = BuddyAllocator::new(PhysAddr(0), 64 << 20);
        let mut held = Vec::new();
        b.iter(|| {
            for _ in 0..32 {
                if let Ok(p) = a.alloc(3) {
                    held.push(p);
                }
            }
            // Free every other block (classic fragmentation pattern).
            let mut i = 0;
            held.retain(|p| {
                i += 1;
                if i % 2 == 0 {
                    a.free(*p).expect("held");
                    false
                } else {
                    true
                }
            });
        });
        for p in held {
            a.free(p).expect("held");
        }
    });

    c.bench_function("pagetable/map_unmap_4k", |b| {
        let mut pt = PageTable::new();
        b.iter(|| {
            pt.map_4k(VirtAddr(0x40_0000), PhysAddr(0x1000), PteFlags::rw())
                .expect("unmapped");
            black_box(pt.translate(VirtAddr(0x40_0123)));
            pt.unmap(VirtAddr(0x40_0000)).expect("mapped");
        })
    });

    c.bench_function("pagetable/translate_4k_vs_2m", |b| {
        let mut pt = PageTable::new();
        for i in 0..512u64 {
            pt.map_4k(
                VirtAddr(0x40_0000_0000 + i * PAGE_SIZE),
                PhysAddr(i * PAGE_SIZE),
                PteFlags::rw(),
            )
            .expect("unmapped");
        }
        pt.map_2m(VirtAddr(0x80_0000_0000), PhysAddr(PAGE_SIZE_2M), PteFlags::rw())
            .expect("unmapped");
        b.iter(|| {
            black_box(pt.translate(VirtAddr(0x40_0000_5123)));
            black_box(pt.translate(VirtAddr(0x80_0010_0123)));
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
