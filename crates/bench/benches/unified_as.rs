//! A2 — unified-address-space fault-resolution cost.
//!
//! Cold faults (consult LWK page tables, install a pseudo-mapping PTE)
//! versus warm hits, and cross-page reads through the pseudo mapping.

use criterion::{criterion_group, criterion_main, Criterion};
use hlwk_core::costs::CostModel;
use hlwk_core::mck::mem::pagetable::{PageTable, PteFlags};
use hlwk_core::proxy::unified::UnifiedAddressSpace;
use hwmodel::addr::{PhysAddr, VirtAddr, PAGE_SIZE};
use hwmodel::memory::PhysMemory;
use std::hint::black_box;

fn setup(pages: u64) -> (PageTable, PhysMemory) {
    let mut pt = PageTable::new();
    for i in 0..pages {
        pt.map_4k(
            VirtAddr(0x100_0000 + i * PAGE_SIZE),
            PhysAddr(0x20_0000 + i * PAGE_SIZE),
            PteFlags::rw(),
        )
        .expect("fresh mapping");
    }
    (pt, PhysMemory::new(1 << 30, 1))
}

fn bench(c: &mut Criterion) {
    let costs = CostModel::default();
    let (pt, mem) = setup(1024);

    c.bench_function("uas/cold_fault", |b| {
        b.iter_batched(
            UnifiedAddressSpace::new,
            |mut uas| {
                for i in 0..64u64 {
                    black_box(
                        uas.resolve(VirtAddr(0x100_0000 + i * PAGE_SIZE), &pt, &costs)
                            .expect("mapped"),
                    );
                }
            },
            criterion::BatchSize::SmallInput,
        )
    });

    c.bench_function("uas/warm_hit", |b| {
        let mut uas = UnifiedAddressSpace::new();
        uas.resolve(VirtAddr(0x100_0000), &pt, &costs).expect("mapped");
        b.iter(|| black_box(uas.resolve(VirtAddr(0x100_0123), &pt, &costs)))
    });

    c.bench_function("uas/read_64k_cross_page", |b| {
        let mut uas = UnifiedAddressSpace::new();
        let mut buf = vec![0u8; 64 << 10];
        b.iter(|| {
            uas.read(VirtAddr(0x100_0000), &mut buf, &pt, &mem, &costs)
                .expect("mapped");
            black_box(&buf);
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
