//! One compute node's runtime: hardware + OS stack + job state.
//!
//! Job setup on a McKernel node is not a cost formula — it walks the real
//! protocols of the core crate: IHK reserves cores and memory and boots
//! the LWK; a proxy process is spawned on the leftover core; the uverbs
//! device is opened through a fully marshalled, IKC-delivered, unified-
//! address-space-dereferenced offloaded `open()`; and the HCA doorbell
//! page is mapped by the eleven-step Fig. 4 flow. Only after all of that
//! does the node run application work.

use crate::config::{ClusterConfig, OsVariant};
use hlwk_core::abi::{encode_result, Errno, Fd, Pid, Sysno, Tid};
use hlwk_core::costs::CostModel;
use hlwk_core::ihk::delegator::DispatchAction;
use hlwk_core::ihk::ikc::{message_checksum, ControlMsg, IkcPair, MsgKind};
use hlwk_core::ihk::manager::HeartbeatMonitor;
use hlwk_core::ihk::partition::PartitionError;
use hlwk_core::mck::domains::{DomainId, DomainModel};
use hlwk_core::mck::mem::FaultOutcome;
use hlwk_core::mck::syscall::{
    BypassConfig, Disposition, RetryPolicy, SyscallReply, SyscallRequest,
};
use hlwk_core::mck::{McKernel, SyscallOutcome};
use hlwk_core::proxy::devmap;
use hlwk_core::IhkManager;
use hwmodel::addr::{VirtAddr, PAGE_SIZE};
use hwmodel::cpu::{CoreId, NumaId};
use hwmodel::interference::{InterferenceModel, MemProfile, PageBacking, Pollution};
use hwmodel::node::{NodeHw, NodeId, NodeSpec};
use hwmodel::pci::DeviceClass;
use linuxsim::vfs::FileKind;
use linuxsim::{LinuxKernel, NoiseConfig};
use netsim::verbs::IbContext;
use simcore::fault::{FaultPlan, MsgFault};
use simcore::{Cycles, StreamRng};
use workloads::hadoop;

/// A node-local operation that could not run because the node (or its
/// LWK application) is gone. Job setup still panics on impossible
/// states — those are configuration bugs — but everything reachable
/// *after* a node death reports typed errors instead.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NodeError {
    /// The node is fail-stopped: nothing on it executes any more.
    NodeDead {
        /// The dead node.
        node: u32,
    },
    /// The LWK partition was torn down (proxy-death recovery reclaimed
    /// it), so there is no kernel to take the syscall.
    LwkGone {
        /// The affected node.
        node: u32,
    },
    /// The LWK is up but the application thread is gone (SIGKILLed
    /// during recovery).
    NoAppThread {
        /// The affected node.
        node: u32,
    },
    /// The LWK returned an outcome the offload driver has no path for.
    UnexpectedOutcome {
        /// The affected node.
        node: u32,
        /// Debug rendering of the outcome.
        outcome: String,
    },
}

impl std::fmt::Display for NodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeError::NodeDead { node } => write!(f, "node {node} is dead"),
            NodeError::LwkGone { node } => write!(f, "node {node}: LWK partition reclaimed"),
            NodeError::NoAppThread { node } => {
                write!(f, "node {node}: application thread gone")
            }
            NodeError::UnexpectedOutcome { node, outcome } => {
                write!(f, "node {node}: unexpected LWK outcome {outcome}")
            }
        }
    }
}

impl std::error::Error for NodeError {}

/// Per-node runtime state.
pub struct NodeRuntime {
    /// Node index (== MPI rank; 1 rank per node).
    pub id: u32,
    /// OS variant this node runs.
    pub os: OsVariant,
    /// Hardware.
    pub hw: NodeHw,
    /// The Linux instance (the whole node, or the Linux partition).
    pub linux: LinuxKernel,
    /// IHK manager (McKernel variant only).
    pub ihk: Option<IhkManager>,
    /// OS-instance index inside `ihk` (needed to destroy the partition).
    pub os_idx: Option<u32>,
    /// The LWK (McKernel variant only).
    pub mck: Option<McKernel>,
    /// IKC channel pair between the kernels.
    pub ikc: IkcPair,
    /// Application process id.
    pub app_pid: Pid,
    /// First application thread (McKernel bookkeeping).
    pub app_tid: Option<Tid>,
    /// Proxy process id (McKernel variant only).
    pub proxy_pid: Option<Pid>,
    /// Cores the 8 OpenMP threads run on.
    pub app_cores: Vec<CoreId>,
    /// uverbs file descriptor (lives in Linux either way).
    pub uverbs_fd: i64,
    /// Per-process verbs context.
    pub ib: IbContext,
    /// Registered-buffer arena base (for MR registration calls).
    pub arena_va: VirtAddr,
    /// Interference model + inputs.
    pub interference: InterferenceModel,
    /// Cache/bandwidth pollution from co-located work.
    pub pollution: Pollution,
    /// Workload memory intensity (set per experiment).
    pub mem_intensity: f64,
    /// Busy phases of the co-located job (empty without in-situ load);
    /// pollution only applies inside them.
    pub busy_phases: Vec<(Cycles, Cycles)>,
    /// How the app's anonymous memory is backed (2 MiB contiguous on
    /// McKernel, 4 KiB scattered on Linux). Public so the A3 ablation can
    /// force either policy.
    pub backing: PageBacking,
    /// Per-node fault-injection plan (disabled by default; draws nothing
    /// while inactive, so fault-free runs are bit-identical to the seed).
    pub faults: FaultPlan,
    /// Timeout/backoff policy for the offload retry loop.
    pub retry: RetryPolicy,
    /// Whether the proxy is still alive. After proxy death every offload
    /// fast-fails with `-EIO`.
    pub proxy_alive: bool,
    /// Whether the whole node is still alive (fail-stop model). A dead
    /// node executes nothing; see [`NodeRuntime::crash_node`].
    pub alive: bool,
    /// Offload retransmissions performed (timeouts, NACKs, back-pressure).
    pub offload_retries: u64,
    /// Checksum NACKs exchanged over IKC.
    pub nacks: u64,
    /// Offloads that ultimately failed with `-EIO` (proxy dead or retry
    /// budget exhausted).
    pub offload_eio: u64,
    /// Syscalls served by the promoted in-LWK fast path (never reached
    /// IKC). A plain field, not a trace counter: the fast path is the
    /// thing being measured, and a string-keyed counter bump would be a
    /// visible fraction of its budget.
    pub bypass_promoted: u64,
    /// Promotion attempts that fell back to the offload path (missing
    /// lease, cold time page, unsupported flag, straddling futex word).
    pub bypass_fallbacks: u64,
    costs: CostModel,
    /// Reusable request wire buffer: each offload encodes its request
    /// here exactly once; retransmits replay these bytes (and their CRC)
    /// without re-serializing. Zero steady-state allocation.
    tx_wire: Vec<u8>,
    /// Promotability lease per fd number, indexed flat by fd for the
    /// hot path ([`LEASE_NONE`] / [`LEASE_REGULAR`] / [`LEASE_OTHER`]):
    /// `LEASE_REGULAR` iff the last offloaded result proved the fd is a
    /// `Regular` file whose read/write/lseek semantics the LWK can
    /// reproduce locally. McKernel itself holds no fd table (fd state
    /// lives in Linux's VFS), so the bypass layer keeps this node-side
    /// shadow; any fd it has no lease for falls back to offload, and
    /// `close()`, job reap, and proxy death all revoke leases.
    fd_lease: Vec<u8>,
}

/// No offloaded call has classified this fd yet (or it was closed).
const LEASE_NONE: u8 = 0;
/// Linux's VFS says the fd is a regular file — promotable.
const LEASE_REGULAR: u8 = 1;
/// Device / proc fd — never promotable, stop re-checking.
const LEASE_OTHER: u8 = 2;
/// Flat lease table cap; fds above it simply stay offloaded.
const LEASE_MAX_FD: u64 = 4096;

impl NodeRuntime {
    /// Build and fully set up one node for `cfg`.
    pub fn build(cfg: &ClusterConfig, idx: u32, rng: &StreamRng) -> NodeRuntime {
        let node_rng = rng.stream("node", u64::from(idx));
        let mut hw = NodeSpec::paper_testbed().build(NodeId(idx));
        let horizon = Cycles::from_secs(cfg.horizon_secs);

        // --- IHK partitioning + LWK boot (McKernel variant). ---
        let costs = CostModel::default();
        let (ihk, mut mck, os_idx) = if cfg.os == OsVariant::McKernel {
            let mut ihk = IhkManager::new(hw.topology.num_cores());
            let os_idx = ihk
                .create_os(&mut hw.mem, &cfg.lwk_cores(), NumaId(1), 16 << 30)
                .expect("testbed node has the resources");
            let mck = ihk.boot(os_idx, costs).expect("fresh instance boots");
            (Some(ihk), Some(mck), Some(os_idx))
        } else {
            (None, None, None)
        };

        // Faults are scoped: the plan exists from the start but stays
        // suspended through boot + job setup, so injection only hits the
        // steady-state offload path.
        let mut faults = FaultPlan::new(cfg.faults, rng.stream("fault", u64::from(idx)));
        faults.set_active(false);

        // --- Linux boot over its cores. ---
        let noise = NoiseConfig {
            isolcpus: cfg.isolcpus().into_iter().collect(),
            daemon_activity: if cfg.insitu { 4.0 } else { 1.0 },
            // Memory pressure (and hence reclaim) lives on NUMA 0: the
            // analytics job's domain, and where Linux itself booted.
            reclaim_cores: Some((0..10).map(CoreId).collect()),
        };
        let devices: Vec<(String, DeviceClass)> = hw
            .devices
            .iter()
            .map(|d| (d.dev_name.clone(), d.class))
            .collect();
        let mut linux = LinuxKernel::boot(
            cfg.linux_cores(),
            devices,
            &noise,
            node_rng.stream("linux", 0),
        );

        // --- In-situ Hadoop load. ---
        let mut pollution = Pollution::NONE;
        let mut busy_phases = Vec::new();
        if cfg.insitu {
            // Phase schedule is CLUSTER-wide (derived from the run seed,
            // not the node id): the analytics job's waves hit every node
            // together. Container placement stays per-node.
            let phases = hadoop::generate_phases(
                &hadoop::HadoopParams::default(),
                horizon,
                &rng.stream("hadoop-phases", 0),
            );
            let load = hadoop::generate_with_phases(
                &hadoop::HadoopParams::default(),
                &cfg.hadoop_cores(),
                horizon,
                phases,
                &node_rng.stream("hadoop", 0),
            );
            for iv in &load.intervals {
                linux.occupancy.add_load(iv.core, iv.start, iv.end, iv.tasks);
            }
            // Same-socket cache pollution only when Hadoop can actually
            // reach the application's socket (cgroup-only variant).
            let hadoop_reaches_app_socket = cfg
                .hadoop_cores()
                .iter()
                .any(|c| hw.topology.numa_of(*c) == NumaId(1) && c.0 < 18);
            // Cross-socket pressure: on Linux the analytics job's page
            // cache and reclaim spill into the application's NUMA domain;
            // IHK's reservation hides the LWK partition from Linux's
            // allocator, leaving McKernel only a QPI-snoop residual.
            let cross_factor = if cfg.os == OsVariant::McKernel { 0.15 } else { 1.0 };
            pollution = Pollution {
                same_socket: if hadoop_reaches_app_socket {
                    load.same_socket_pollution
                } else {
                    0.0
                },
                cross_socket: load.cross_socket_pollution * cross_factor,
            };
            // Phase-gated HDFS/GbE IRQ + flush pressure reaches every
            // *Linux-managed* application core — including isolcpus ones
            // (interrupt handlers don't honor isolcpus). McKernel's app
            // cores are outside Linux entirely, so nothing lands there.
            if cfg.os != OsVariant::McKernel {
                for &core in &cfg.app_cores() {
                    let crng = node_rng.stream("io-noise", u64::from(core.0));
                    linux.add_core_daemon(
                        core,
                        linuxsim::daemons::DaemonSource::eth_irq(crng.stream("eth", 0))
                            .with_activity(5.0)
                            .with_windows(load.busy_phases.clone()),
                    );
                    linux.add_core_daemon(
                        core,
                        linuxsim::daemons::DaemonSource::kworker(crng.stream("kw", 0))
                            .with_activity(3.0)
                            .with_windows(load.busy_phases.clone()),
                    );
                }
            }
            busy_phases = load.busy_phases;
        }
        linux.occupancy.seal();

        let mut node = NodeRuntime {
            id: idx,
            os: cfg.os,
            hw,
            linux,
            ihk,
            os_idx,
            mck: None,
            ikc: IkcPair::default(),
            app_pid: Pid(1),
            app_tid: None,
            proxy_pid: None,
            app_cores: cfg.app_cores(),
            uverbs_fd: -1,
            ib: IbContext::new(),
            arena_va: VirtAddr::NULL,
            interference: InterferenceModel::default(),
            pollution,
            busy_phases,
            mem_intensity: cfg.mem_intensity,
            backing: if cfg.os == OsVariant::McKernel {
                PageBacking::Large2mContiguous
            } else {
                PageBacking::Small4k
            },
            faults,
            retry: RetryPolicy::default(),
            proxy_alive: true,
            alive: true,
            offload_retries: 0,
            nacks: 0,
            offload_eio: 0,
            bypass_promoted: 0,
            bypass_fallbacks: 0,
            costs,
            tx_wire: Vec::with_capacity(SyscallRequest::WIRE_SIZE),
            fd_lease: Vec::new(),
        };

        // --- Job setup. ---
        match cfg.os {
            OsVariant::McKernel => {
                let mut k = mck.take().expect("booted above");
                k.bypass = BypassConfig::from_env();
                let app_pid = k.create_process(None);
                let tid = k.spawn_thread(app_pid, node.app_cores[0]);
                for &core in &node.app_cores[1..] {
                    k.spawn_thread(app_pid, core);
                }
                let proxy_pid = node.linux.spawn_proxy(app_pid, cfg.proxy_core());
                k.process_mut(app_pid).expect("created").proxy_pid = Some(proxy_pid);
                node.app_pid = app_pid;
                node.app_tid = Some(tid);
                node.proxy_pid = Some(proxy_pid);
                node.mck = Some(k);
                node.setup_mck_job();
            }
            _ => {
                node.linux.vfs.create_process(Pid(1));
                let (fd, _) = node
                    .linux
                    .vfs
                    .open(Pid(1), "/dev/infiniband/uverbs0")
                    .expect("uverbs registered");
                node.uverbs_fd = i64::from(fd.0);
                let dev = node
                    .hw
                    .device_of_class(DeviceClass::InfinibandHca)
                    .expect("testbed has an HCA");
                node.ib.doorbell_phys = dev.bar_phys(0, 0);
            }
        }
        // Setup is done: arm the plan (a disabled config stays inert —
        // every draw gate also checks the per-fault rate).
        node.faults.set_active(node.faults.config().enabled);
        node
    }

    /// McKernel job setup: the real offload/devmap protocols.
    fn setup_mck_job(&mut self) {
        let mut now = Cycles::from_us(100);
        // 1. Map a page for the path string and write it through the
        //    McKernel fault path into real physical memory.
        let (path_va, t) = self.mck_mmap_anon(4096, now);
        now = t;
        let path_pa = self
            .mck
            .as_ref()
            .expect("mck set")
            .process(self.app_pid)
            .expect("app")
            .aspace
            .pt
            .translate(path_va)
            .expect("just faulted")
            .phys;
        self.hw.mem.write(path_pa, b"/dev/infiniband/uverbs0\0");
        // 2. Offloaded open() — marshalled, IKC-delivered, path read back
        //    through the unified address space by the proxy.
        let (fd, t) = self.offload_syscall(Sysno::Open, [path_va.raw(), 0, 0, 0, 0, 0], now);
        assert!(fd >= 0, "offloaded open failed: {fd}");
        self.uverbs_fd = fd;
        now = t;
        // 3. Registered-buffer arena (4 MiB, 2 MiB-backed).
        let (arena, t) = self.mck_mmap_anon(4 << 20, now);
        self.arena_va = arena;
        now = t;
        for off in [0u64, 2 << 20] {
            match self
                .mck
                .as_mut()
                .expect("mck set")
                .page_fault(self.app_pid, arena + off)
            {
                FaultOutcome::Mapped { .. } => {}
                o => panic!("arena fault failed: {o:?}"),
            }
        }
        // 4. Doorbell (UAR) page via the Fig. 4 flow.
        let dev = self
            .hw
            .device_of_class(DeviceClass::InfinibandHca)
            .expect("testbed has an HCA")
            .clone();
        let mck = self.mck.as_mut().expect("mck set");
        let (proxy, delegator) = self
            .linux
            .proxy_and_delegator(self.proxy_pid.expect("proxy spawned"))
            .expect("registered");
        let map = devmap::device_mmap(mck, self.app_pid, proxy, delegator, &dev, 0, 0, 8192)
            .expect("UAR maps");
        let (phys, _) = devmap::device_fault(mck, self.app_pid, delegator, map.lwk_va)
            .expect("fault resolves");
        self.ib.doorbell_phys = Some(phys);
        let _ = now;
    }

    /// Anonymous mmap + first-touch fault on the LWK.
    fn mck_mmap_anon(&mut self, len: u64, at: Cycles) -> (VirtAddr, Cycles) {
        let mck = self.mck.as_mut().expect("LWK present");
        let tid = self.app_tid.expect("thread spawned");
        match mck.handle_syscall(
            self.app_pid,
            tid,
            Sysno::Mmap,
            [0, len, 3, 0x22, u64::MAX, 0],
            at,
        ) {
            SyscallOutcome::Done { ret, cost } if ret > 0 => {
                let va = VirtAddr(ret as u64);
                match mck.page_fault(self.app_pid, va) {
                    FaultOutcome::Mapped { cost: fc, .. } => (va, at + cost + fc),
                    o => panic!("anon fault failed: {o:?}"),
                }
            }
            o => panic!("mmap failed: {o:?}"),
        }
    }

    /// Execute one offloaded system call through the full machinery:
    /// McKernel marshal → IKC queue → IPI → delegator → proxy wake →
    /// Linux service (unified-address-space dereferences) → IKC reply.
    /// Returns (return value, completion instant).
    ///
    /// The offload path is recoverable: sequence-numbered requests are
    /// retransmitted after a timeout with exponential backoff, checksum
    /// failures are NACKed and resent, duplicate deliveries are absorbed
    /// by the delegator's completed-reply cache, and a proxy crash turns
    /// into `-EIO` after heartbeat-bounded detection plus full partition
    /// reclamation. With the fault plan inactive the timing and results
    /// are identical to the fault-free path.
    pub fn offload_syscall(&mut self, sysno: Sysno, args: [u64; 6], at: Cycles) -> (i64, Cycles) {
        self.try_offload_syscall(sysno, args, at)
            .expect("node alive with an LWK application")
    }

    /// [`NodeRuntime::offload_syscall`] with the states a node death can
    /// leave behind reported as typed [`NodeError`]s instead of panics:
    /// a fail-stopped node, a reclaimed LWK partition, a SIGKILLed
    /// application thread, or an outcome the driver has no path for.
    pub fn try_offload_syscall(
        &mut self,
        sysno: Sysno,
        args: [u64; 6],
        at: Cycles,
    ) -> Result<(i64, Cycles), NodeError> {
        if !self.alive {
            return Err(NodeError::NodeDead { node: self.id });
        }
        if self.os == OsVariant::McKernel && !self.proxy_alive {
            // The LWK already knows the proxy is gone (ControlMsg::ProxyDead):
            // offloads fail fast without touching IKC.
            self.offload_eio += 1;
            return Ok((-(Errno::EIO as i64), at + self.costs.lwk_syscall));
        }
        let Some(mck) = self.mck.as_mut() else {
            return Err(NodeError::LwkGone { node: self.id });
        };
        let Some(tid) = self.app_tid else {
            return Err(NodeError::NoAppThread { node: self.id });
        };
        // Profile-guided bypass: a call the heat profiler promoted runs
        // entirely on the LWK when every precondition holds. Any miss
        // (unknown fd, cold time page, unsupported flag, straddling
        // futex word) falls through to the normal offload path, so the
        // bypass can change timing but never results.
        if mck.bypass.enabled
            && mck.effective_disposition(self.app_pid, sysno, &args) == Disposition::Promoted
        {
            if let Some(out) = self.promoted_syscall(sysno, args, at) {
                self.bypass_promoted += 1;
                return Ok(out);
            }
            self.bypass_fallbacks += 1;
        }
        let mck = self.mck.as_mut().expect("present above");
        let outcome = mck.handle_syscall(self.app_pid, tid, sysno, args, at);
        Ok(match outcome {
            SyscallOutcome::Offload { req, cost } => {
                let (ret, done) = self.drive_offload(req, at + cost);
                // Feed the heat profiler the observed roundtrip and keep
                // the promotability lease in sync with offload results.
                if let Some(m) = self.mck.as_mut() {
                    m.prof.record_cycles(self.app_pid, sysno, done - at);
                }
                if self.mck.as_ref().is_some_and(|m| m.bypass.enabled) {
                    self.note_offload_result(sysno, &args, ret);
                }
                (ret, done)
            }
            SyscallOutcome::Done { ret, cost } => (ret, at + cost),
            SyscallOutcome::DoneInvalidate { ret, cost, ranges } => {
                self.linux.sync_munmap(self.app_pid, &ranges);
                (ret, at + cost)
            }
            o => {
                return Err(NodeError::UnexpectedOutcome {
                    node: self.id,
                    outcome: format!("{sysno:?}: {o:?}"),
                })
            }
        })
    }

    /// Attempt to run a promoted syscall entirely on the LWK, without
    /// touching IKC, the delegator, or the proxy. Returns `None` when
    /// any precondition fails; the caller then takes the normal offload
    /// path, so a bypass miss can change timing but never results. The
    /// modeled cost is one in-LWK syscall entry plus (when MPK-style
    /// domains are armed) a protection-domain entry/exit pair; the user
    /// copy itself is application-side work, charged the same way the
    /// offload path charges it (not at all — only the kernel-side
    /// machinery is modeled).
    fn promoted_syscall(
        &mut self,
        sysno: Sysno,
        args: [u64; 6],
        at: Cycles,
    ) -> Option<(i64, Cycles)> {
        let proxy_pid = self.proxy_pid?;
        let mut cost = self.costs.lwk_syscall;
        let ret: i64 = match sysno {
            Sysno::Read => {
                // Only fds the offload path proved Regular are served
                // locally; everything else (devices, /proc, unknown
                // fds) stays offloaded. A held lease is an invariant,
                // not a hint: every way a VFS entry can disappear
                // (close, job reap, proxy death) also revokes it, so
                // the hot path skips re-validating against the VFS.
                if self.lease(args[0]) != LEASE_REGULAR {
                    return None;
                }
                let n = args[2].min(64 << 10);
                cost += self.enter_domain(DomainId::FdRing);
                // Same fill bytes and same partial-write-then-EFAULT
                // behavior as Linux's service arm writing through the
                // unified address space.
                match self.lwk_fill_user(VirtAddr(args[1]), n, 0xAB) {
                    Ok(()) => {
                        self.linux
                            .vfs
                            .advance(proxy_pid, Fd(args[0] as i32), n)
                            .expect("held lease implies a live VFS entry");
                        n as i64
                    }
                    Err(()) => encode_result(Err(Errno::EFAULT)),
                }
            }
            Sysno::Write => {
                if self.lease(args[0]) != LEASE_REGULAR {
                    return None;
                }
                let n = args[2].min(64 << 10);
                cost += self.enter_domain(DomainId::FdRing);
                // The offload path reads min(len, 64 KiB) bytes from the
                // app buffer but advances and returns the full length —
                // reproduce that quirk exactly.
                match self.lwk_check_user(VirtAddr(args[1]), n) {
                    Ok(()) => {
                        self.linux
                            .vfs
                            .advance(proxy_pid, Fd(args[0] as i32), args[2])
                            .expect("held lease implies a live VFS entry");
                        args[2] as i64
                    }
                    Err(()) => encode_result(Err(Errno::EFAULT)),
                }
            }
            Sysno::Lseek => {
                if self.lease(args[0]) != LEASE_REGULAR {
                    return None;
                }
                cost += self.enter_domain(DomainId::FdRing);
                match self
                    .linux
                    .vfs
                    .seek(proxy_pid, Fd(args[0] as i32), args[1] as i64, args[2] as u32)
                {
                    Ok(pos) => pos,
                    Err(e) => encode_result(Err(e)),
                }
            }
            Sysno::Futex => {
                const FUTEX_PRIVATE_FLAG: u64 = 128;
                match args[1] & !FUTEX_PRIVATE_FLAG {
                    // FUTEX_WAIT: load the 32-bit word natively. A word
                    // straddling a page boundary is the rare case —
                    // offload it rather than splitting the load.
                    0 => {
                        let va = VirtAddr(args[0]);
                        if va.page_offset() > PAGE_SIZE - 4 {
                            return None;
                        }
                        cost += self.enter_domain(DomainId::FdRing);
                        match self.lwk_read_u32(va) {
                            Some(cur) if cur == args[2] as u32 => 0,
                            Some(_) => encode_result(Err(Errno::EAGAIN)),
                            None => encode_result(Err(Errno::EFAULT)),
                        }
                    }
                    // FUTEX_WAKE: the wait table lives in the LWK
                    // scheduler; through the syscall surface a wake is
                    // always 0, exactly like the offloaded arm.
                    1 => {
                        cost += self.enter_domain(DomainId::FdRing);
                        0
                    }
                    // Other ops delegate (Linux answers -ENOSYS).
                    _ => return None,
                }
            }
            Sysno::ClockGettime => {
                // Cold time page (never published) → offload.
                let ns = self.mck.as_ref()?.time_page()?;
                cost += self.enter_domain(DomainId::TimePage);
                ns as i64
            }
            _ => return None,
        };
        cost += self.exit_domain();
        Some((ret, at + cost))
    }

    /// Current lease state for `fd` (flat-indexed; out-of-range fds
    /// have no lease and stay offloaded).
    #[inline]
    fn lease(&self, fd: u64) -> u8 {
        self.fd_lease.get(fd as usize).copied().unwrap_or(LEASE_NONE)
    }

    /// Maintain the per-fd promotability lease from an offloaded call's
    /// result: a successful read/write/lseek proves the fd exists and
    /// records (from Linux's VFS) whether it is a regular file the LWK
    /// may serve locally; `close()` revokes the lease.
    fn note_offload_result(&mut self, sysno: Sysno, args: &[u64; 6], ret: i64) {
        let fd = args[0];
        if fd >= LEASE_MAX_FD {
            return;
        }
        match sysno {
            Sysno::Read | Sysno::Write | Sysno::Lseek if ret >= 0 => {
                let Some(proxy_pid) = self.proxy_pid else { return };
                let regular = self
                    .linux
                    .vfs
                    .file(proxy_pid, Fd(fd as i32))
                    .is_ok_and(|f| matches!(f.kind, FileKind::Regular { .. }));
                if self.fd_lease.len() <= fd as usize {
                    self.fd_lease.resize(fd as usize + 1, LEASE_NONE);
                }
                self.fd_lease[fd as usize] =
                    if regular { LEASE_REGULAR } else { LEASE_OTHER };
            }
            Sysno::Close => {
                if let Some(l) = self.fd_lease.get_mut(fd as usize) {
                    *l = LEASE_NONE;
                }
            }
            _ => {}
        }
    }

    /// Charge a protection-domain entry (zero while domains are unarmed
    /// or the LWK is already inside `domain`).
    fn enter_domain(&mut self, domain: DomainId) -> Cycles {
        self.mck
            .as_mut()
            .map_or(Cycles::ZERO, |m| m.domains.enter(domain))
    }

    /// Return to the kernel-core domain, charging the switch.
    fn exit_domain(&mut self) -> Cycles {
        self.mck.as_mut().map_or(Cycles::ZERO, |m| m.domains.exit())
    }

    /// Fill `[va, va+len)` in the app's address space with `byte`,
    /// page by page through the LWK page tables. Mirrors the unified
    /// address space's copy loop: pages before the first unmapped one
    /// stay written when the fill faults.
    fn lwk_fill_user(&mut self, va: VirtAddr, len: u64, byte: u8) -> Result<(), ()> {
        let mut done = 0u64;
        while done < len {
            let cur = va + done;
            let pa = {
                let m = self.mck.as_mut().ok_or(())?;
                let proc = m.process_mut(self.app_pid).ok_or(())?;
                proc.aspace.translate(cur).ok_or(())?.phys
            };
            let n = (len - done).min(PAGE_SIZE - cur.page_offset());
            self.hw.mem.fill(pa, n, byte);
            done += n;
        }
        Ok(())
    }

    /// Verify `[va, va+len)` is fully mapped (the promoted `write()`
    /// source-buffer check); reads nothing.
    fn lwk_check_user(&mut self, va: VirtAddr, len: u64) -> Result<(), ()> {
        let mut done = 0u64;
        while done < len {
            let cur = va + done;
            let m = self.mck.as_mut().ok_or(())?;
            let proc = m.process_mut(self.app_pid).ok_or(())?;
            proc.aspace.translate(cur).ok_or(())?;
            done += (len - done).min(PAGE_SIZE - cur.page_offset());
        }
        Ok(())
    }

    /// Load a naturally-contained 32-bit little-endian word from app
    /// memory through the LWK page tables (futex word load).
    fn lwk_read_u32(&mut self, va: VirtAddr) -> Option<u32> {
        let pa = {
            let m = self.mck.as_mut()?;
            let proc = m.process_mut(self.app_pid)?;
            proc.aspace.translate(va)?.phys
        };
        let mut w = [0u8; 4];
        self.hw.mem.read(pa, &mut w);
        Some(u32::from_le_bytes(w))
    }

    /// Publish the current wall-clock to both kernels' vDSO-style time
    /// pages, making `clock_gettime` answerable without any kernel
    /// transition (and keeping the promoted and offloaded answers
    /// identical).
    pub fn publish_time(&mut self, ns: u64) {
        self.linux.publish_vdso_time(ns);
        if let Some(m) = self.mck.as_mut() {
            m.publish_time_page(ns);
        }
    }

    /// Arm the MPK-style protection domains: fast-path state (IKC ring,
    /// delegator slabs, per-fd rings, time page) moves behind pkeys and
    /// every promoted entry/exit pays `costs.domain_switch`.
    pub fn enable_domains(&mut self) {
        let switch = self.costs.domain_switch;
        if let Some(m) = self.mck.as_mut() {
            m.bypass.domains = true;
            m.domains = DomainModel::enabled(switch);
        }
        self.ikc.set_pkey(DomainId::IkcRing as u8);
        self.linux.delegator.set_pkey(DomainId::DelegatorSlab as u8);
    }

    /// The request/reply exchange for one marshalled offload, with the
    /// bounded retry loop around it. `now` is the instant the request is
    /// ready to enter IKC.
    ///
    /// Allocation discipline: the request is serialized exactly once into
    /// the node's reusable wire buffer (CRC computed over those bytes at
    /// the same time); every retransmit replays the buffer through
    /// [`IkcChannel::send_encoded`](hlwk_core::ihk::ikc::IkcChannel);
    /// replies and NACKs are encoded straight into ring slots and read
    /// back by reference. Steady state allocates nothing.
    fn drive_offload(&mut self, req: SyscallRequest, start: Cycles) -> (i64, Cycles) {
        // Encode-once: take the scratch buffer out of self so the borrow
        // checker lets the retry loop borrow self freely.
        let mut tx = std::mem::take(&mut self.tx_wire);
        tx.clear();
        req.encode_into(&mut tx);
        let req_ck = message_checksum(MsgKind::SyscallRequest, &tx);
        let out = self.drive_offload_encoded(&req, &tx, req_ck, start);
        self.tx_wire = tx;
        out
    }

    fn drive_offload_encoded(
        &mut self,
        req: &SyscallRequest,
        req_wire: &[u8],
        req_ck: u32,
        start: Cycles,
    ) -> (i64, Cycles) {
        let costs = self.costs;
        let seq = req.seq;
        let mut now = start;
        let mut attempt: u32 = 0;
        loop {
            if attempt >= self.retry.max_attempts {
                // Retry budget exhausted: the LWK gives up on this call.
                self.offload_eio += 1;
                return (-(Errno::EIO as i64), now);
            }
            let timeout = self.retry.timeout_for(attempt);
            // Injected proxy crash at the configured in-flight depth.
            let inflight = self.linux.delegator.in_flight() as u32 + 1;
            if self.faults.proxy_should_crash(inflight, seq, now) {
                let done = self.handle_proxy_death(now);
                self.offload_eio += 1;
                return (-(Errno::EIO as i64), done);
            }
            // Delegator stall: the module is busy; delivery waits it out.
            let stall = match self.faults.draw_stall(seq, now) {
                Some(s) => s,
                None => Cycles::ZERO,
            };
            // Queue-full back-pressure on the LWK→Linux ring: the send
            // fails and the LWK backs off before retrying.
            if self.faults.draw_backpressure(seq, now) {
                self.offload_retries += 1;
                attempt += 1;
                now += timeout;
                continue;
            }
            // --- Request leg: replay the pre-encoded wire bytes. ---
            let mut req_delay = Cycles::ZERO;
            let mut corrupt_req = false;
            match self.faults.draw_msg_fault("req", seq, now) {
                MsgFault::Drop => {
                    // Lost on the wire: no reply ever comes; the LWK times
                    // out and retransmits.
                    self.offload_retries += 1;
                    attempt += 1;
                    now += timeout;
                    continue;
                }
                MsgFault::Delay(d) => req_delay = d,
                MsgFault::Corrupt => corrupt_req = true,
                MsgFault::None => {}
            }
            self.ikc
                .to_linux
                .send_encoded(MsgKind::SyscallRequest, req_wire, req_ck)
                .expect("IKC queue sized for the workload");
            if corrupt_req {
                // In-flight corruption: flip a payload bit inside the ring
                // slot, leaving the checksum stale.
                self.ikc.to_linux.corrupt_newest(seq);
            }
            let delivered = now + costs.ikc_ipi + stall + req_delay;
            let wire_req = {
                let msg = self.ikc.to_linux.recv_ref().expect("just sent");
                if msg.verify() {
                    Some(SyscallRequest::decode(msg.payload).expect("verified request decodes"))
                } else {
                    None
                }
            };
            let Some(wire_req) = wire_req else {
                // Checksum failure on arrival: the delegator NACKs and the
                // LWK retransmits immediately (no timeout wait).
                self.ikc
                    .to_lwk
                    .send_with(MsgKind::Control, |b| ControlMsg::Nack { seq }.encode_into(b))
                    .expect("IKC queue sized for the workload");
                let _ = self.ikc.to_lwk.recv_ref();
                self.nacks += 1;
                self.offload_retries += 1;
                attempt += 1;
                now = delivered + costs.ikc_send + costs.ikc_ipi;
                continue;
            };
            debug_assert_eq!(wire_req, *req);
            let proxy_pid = self.proxy_pid.expect("proxy spawned");
            let dispatched = delivered + costs.delegator_dispatch;
            let (reply, wake_service) =
                match self.linux.delegator.on_syscall_request(proxy_pid, wire_req) {
                    // Dedup: this seq already completed (the reply leg was
                    // lost); answer from the cache without re-executing.
                    DispatchAction::Retransmit(rep) => (rep, Cycles::ZERO),
                    // Dedup: still executing; wait for the original reply.
                    DispatchAction::DuplicateInFlight => {
                        self.offload_retries += 1;
                        attempt += 1;
                        now = dispatched + timeout;
                        continue;
                    }
                    DispatchAction::NoProxy => {
                        // Proxy vanished between liveness check and dispatch.
                        let done = self.handle_proxy_death(dispatched);
                        self.offload_eio += 1;
                        return (-(Errno::EIO as i64), done);
                    }
                    DispatchAction::WakeProxy(_) | DispatchAction::Queued => {
                        let fetched = self
                            .linux
                            .delegator
                            .proxy_fetch(proxy_pid)
                            .expect("request queued");
                        // Service on Linux with real pointer dereferencing.
                        let svc = {
                            let mck_ref = self.mck.as_ref().expect("LWK present");
                            let pt = &mck_ref.process(self.app_pid).expect("app").aspace.pt;
                            self.linux.service_syscall(
                                proxy_pid,
                                &fetched,
                                dispatched,
                                pt,
                                &mut self.hw.mem,
                            )
                        };
                        let reply = self
                            .linux
                            .delegator
                            .complete(fetched.seq, svc.ret)
                            .expect("in flight");
                        (reply, svc.wake_delay + costs.proxy_dispatch + svc.service)
                    }
                };
            // --- Reply leg: encoded straight into a ring slot. ---
            let mut rep_delay = Cycles::ZERO;
            let mut corrupt_rep = None;
            match self.faults.draw_msg_fault("rep", seq, now) {
                MsgFault::Drop => {
                    // Reply lost: the LWK times out and retransmits the
                    // request, which the completed cache will answer.
                    self.offload_retries += 1;
                    attempt += 1;
                    now = dispatched + wake_service + timeout;
                    continue;
                }
                MsgFault::Delay(d) => rep_delay = d,
                MsgFault::Corrupt => corrupt_rep = Some(seq.rotate_left(17) | 1),
                MsgFault::None => {}
            }
            self.ikc
                .to_lwk
                .send_with(MsgKind::SyscallReply, |b| reply.encode_into(b))
                .expect("IKC queue sized for the workload");
            if let Some(flip) = corrupt_rep {
                self.ikc.to_lwk.corrupt_newest(flip);
            }
            // Batched receive: one drain consumes the whole Linux→LWK
            // backlog instead of one recv per poll.
            if self.drain_replies(seq).is_none() {
                // The LWK NACKs; the delegator resends from its cache on
                // the retransmitted request.
                self.ikc
                    .to_linux
                    .send_with(MsgKind::Control, |b| ControlMsg::Nack { seq }.encode_into(b))
                    .expect("IKC queue sized for the workload");
                let _ = self.ikc.to_linux.recv_ref();
                self.nacks += 1;
                self.offload_retries += 1;
                attempt += 1;
                now = dispatched + wake_service + costs.ikc_send + costs.ikc_ipi;
                continue;
            }
            let finish =
                dispatched + wake_service + costs.ikc_send + costs.ikc_ipi + rep_delay;
            return (reply.ret, finish);
        }
    }

    /// Drain every message queued toward the LWK in a single pass and
    /// return the verified reply for `want_seq` if the batch held one.
    /// Anything else in the backlog (stale `-EIO` replies, control
    /// traffic, corrupted frames) is consumed along the way; a reply
    /// that fails its checksum is treated as not-received so the caller
    /// NACKs exactly as it would for a lone corrupted message.
    fn drain_replies(&mut self, want_seq: u64) -> Option<SyscallReply> {
        let mut found = None;
        while let Some(m) = self.ikc.to_lwk.recv_ref() {
            if m.kind != MsgKind::SyscallReply || !m.verify() {
                continue;
            }
            if let Some(rep) = SyscallReply::decode(m.payload) {
                if rep.seq == want_seq {
                    found = Some(rep);
                }
            }
        }
        found
    }

    /// The proxy died. Heartbeats go unanswered until the monitor declares
    /// death (bounded by `detection_bound`), then Linux reaps the proxy:
    /// stranded offloads are answered with `-EIO` over IKC, the LWK
    /// application is SIGKILLed, tracking objects are dropped and the
    /// whole partition (cores + memory) returns to Linux. Returns the
    /// instant recovery completes.
    fn handle_proxy_death(&mut self, now: Cycles) -> Cycles {
        let mut hb = HeartbeatMonitor::paper_default();
        let mut t = now;
        loop {
            if let Some(beat) = hb.poll(t) {
                // Probe the proxy over the control channel; a dead proxy
                // never acks.
                self.ikc
                    .to_linux
                    .send_with(MsgKind::Control, |b| {
                        ControlMsg::Heartbeat { beat }.encode_into(b)
                    })
                    .expect("IKC queue sized for the workload");
                let _ = self.ikc.to_linux.recv_ref();
            }
            if hb.is_dead() {
                break;
            }
            t += hb.interval;
        }
        debug_assert!(t - now <= hb.detection_bound());
        let proxy_pid = self.proxy_pid.take().expect("proxy was alive");
        let (stranded, app_pid) = self
            .linux
            .kill_proxy(proxy_pid)
            .expect("proxy was registered");
        // Stranded in-flight offloads come back as -EIO replies over IKC,
        // batched: enqueue the whole teardown backlog, drain it once
        // (draining mid-way only if the ring back-pressures).
        for rep in &stranded {
            debug_assert_eq!(rep.ret, -(Errno::EIO as i64));
            if self
                .ikc
                .to_lwk
                .send_with(MsgKind::SyscallReply, |b| rep.encode_into(b))
                .is_err()
            {
                while self.ikc.to_lwk.recv_ref().is_some() {}
                self.ikc
                    .to_lwk
                    .send_with(MsgKind::SyscallReply, |b| rep.encode_into(b))
                    .expect("just drained");
            }
        }
        // Tell the LWK; it SIGKILLs the orphaned application.
        self.ikc
            .to_lwk
            .send_with(MsgKind::Control, |b| {
                ControlMsg::ProxyDead {
                    proxy_pid: proxy_pid.0,
                }
                .encode_into(b)
            })
            .expect("IKC queue sized for the workload");
        // One batched drain delivers everything to the LWK side.
        while self.ikc.to_lwk.recv_ref().is_some() {}
        if let Some(mck) = self.mck.as_mut() {
            let killed = mck.kill_process(app_pid);
            debug_assert!(killed, "application existed");
            debug_assert!(mck.is_pristine(), "SIGKILL must leave the LWK pristine");
        }
        self.mck = None;
        self.app_tid = None;
        self.fd_lease.clear();
        // Reclaim the partition: no reboot needed, exactly like a normal
        // destroy (Sec. IV-B3 reinit policy).
        if let (Some(ihk), Some(os_idx)) = (self.ihk.as_mut(), self.os_idx) {
            ihk.destroy(os_idx, &mut self.hw.mem)
                .expect("instance was booted");
        }
        self.proxy_alive = false;
        t + self.costs.delegator_dispatch
    }

    /// Kill the proxy process now (external fault injection entry point,
    /// e.g. from tests), running the full recovery flow. Returns the
    /// stranded-reply count, or `None` on non-McKernel nodes or if the
    /// proxy is already dead.
    pub fn inject_proxy_death(&mut self, at: Cycles) -> Option<usize> {
        if self.os != OsVariant::McKernel || !self.proxy_alive {
            return None;
        }
        let stranded = self.linux.delegator.in_flight();
        let _ = self.handle_proxy_death(at);
        Some(stranded)
    }

    /// Fail-stop the whole node at `at`. On McKernel the proxy-death
    /// recovery flow runs first (heartbeat-bounded detection, stranded
    /// `-EIO` replies, partition reclamation — node death kills the
    /// proxy along with everything else); either way the node stops
    /// executing and later operations fail with
    /// [`NodeError::NodeDead`]. Returns when local teardown completed.
    /// Peers detect the death separately, through the fabric.
    pub fn crash_node(&mut self, at: Cycles) -> Cycles {
        let done = if self.os == OsVariant::McKernel && self.proxy_alive {
            self.handle_proxy_death(at)
        } else {
            at
        };
        self.alive = false;
        done
    }

    /// Whether the co-located job is in a busy phase at `at`.
    pub fn in_busy_phase(&self, at: Cycles) -> bool {
        self.busy_phases.iter().any(|&(a, b)| a <= at && at < b)
    }

    /// DMA bandwidth degradation while the co-located job is busy: the
    /// HCA reads/writes DRAM that Hadoop's page cache churn also hammers.
    pub fn dma_stretch(&self, at: Cycles) -> f64 {
        if self.in_busy_phase(at) {
            1.0 + self.pollution.cross_socket * 0.12 + self.pollution.same_socket * 0.05
        } else {
            1.0
        }
    }

    /// Interference stretch for the current workload on this node at `at`
    /// (cache/bandwidth pollution exists only during busy phases).
    fn stretch(&self, at: Cycles) -> f64 {
        let pol = if self.in_busy_phase(at) {
            self.pollution
        } else {
            Pollution::NONE
        };
        self.interference.stretch(
            MemProfile {
                mem_intensity: self.mem_intensity,
            },
            self.backing,
            pol,
        )
    }

    /// Execute an application compute quantum on thread `thread_idx`.
    pub fn exec_app_thread(&mut self, thread_idx: usize, at: Cycles, work: Cycles) -> Cycles {
        let stretched = work.scale(self.stretch(at));
        match self.os {
            OsVariant::McKernel => {
                // Tick-less cooperative LWK: nothing shares the core, so
                // the quantum runs to completion exactly.
                let pol = if self.in_busy_phase(at) {
                    self.pollution
                } else {
                    Pollution::NONE
                };
                if let (Some(mck), Some(tid)) = (self.mck.as_mut(), self.app_tid) {
                    if let Some(pc) = mck.perf_counters_mut(tid) {
                        pc.account_compute(
                            stretched,
                            &self.interference,
                            MemProfile {
                                mem_intensity: self.mem_intensity,
                            },
                            self.backing,
                            pol,
                        );
                    }
                }
                at + stretched
            }
            _ => {
                let core = self.app_cores[thread_idx % self.app_cores.len()];
                self.linux.execute_on(core, at, stretched).finish
            }
        }
    }

    /// Execute an 8-thread OpenMP region; ends at the slowest thread.
    pub fn omp_region(&mut self, at: Cycles, per_thread: Cycles, threads: u32) -> Cycles {
        (0..threads as usize)
            .map(|i| self.exec_app_thread(i, at, per_thread))
            .max()
            .unwrap_or(at)
    }

    /// MR registration (the Fig. 7 artifact): a `write()` on the uverbs
    /// fd. Local on Linux; a full offload on McKernel.
    pub fn mr_register(&mut self, at: Cycles, bytes: u64) -> Cycles {
        match self.os {
            OsVariant::McKernel => {
                let (_, done) = self.offload_syscall(
                    Sysno::Write,
                    [
                        self.uverbs_fd as u64,
                        self.arena_va.raw(),
                        bytes.min(4 << 20),
                        0,
                        0,
                        0,
                    ],
                    at,
                );
                done
            }
            _ => {
                let service = self
                    .linux
                    .vfs
                    .rw_cost(Pid(1), hlwk_core::abi::Fd(self.uverbs_fd as i32), bytes)
                    .unwrap_or(Cycles::from_us(5))
                    + self.costs.linux_syscall_entry;
                self.linux
                    .execute_on(self.app_cores[0], at, service)
                    .finish
            }
        }
    }

    /// Online LWK width (schedulable cores). Linux-variant nodes report
    /// their full app-core set.
    pub fn lwk_online_width(&self) -> usize {
        match self.mck.as_ref() {
            Some(mck) => mck.online_cores().len(),
            None => self.app_cores.len(),
        }
    }

    /// Elastic shrink: hand the highest online LWK core back to Linux
    /// through the real IHK release path. The drain protocol, in order:
    /// refuse while offloads are in flight (`CoreBusy`), migrate every
    /// app thread off the victim, offline it in the LWK (run-queue
    /// removal + software-TLB shootdown + per-CPU frame-cache drain),
    /// reclaim the delegator reply slab, and only then release the core
    /// from the IHK partition. Returns the released core.
    pub fn shrink_lwk_core(&mut self) -> Result<CoreId, PartitionError> {
        let (Some(mck), Some(ihk), Some(os_idx)) =
            (self.mck.as_mut(), self.ihk.as_mut(), self.os_idx)
        else {
            panic!("shrink_lwk_core on a Linux-variant node");
        };
        let online = mck.online_cores();
        assert!(online.len() >= 2, "cannot shrink below one LWK core");
        let victim = *online.last().expect("online core");
        if self.linux.delegator.in_flight() > 0 {
            return Err(PartitionError::CoreBusy(victim));
        }
        // Rebalance the gang off the victim: deterministic round-robin
        // over the surviving cores, ascending by tid.
        let survivors: Vec<CoreId> = online[..online.len() - 1].to_vec();
        for (i, tid) in mck.threads_on(victim).into_iter().enumerate() {
            mck.migrate_thread(tid, survivors[i % survivors.len()])
                .expect("migrate off shrinking core");
        }
        mck.offline_core(victim).expect("drained core must offline");
        if self.linux.delegator.completed_cache_len() > 0 {
            self.linux.delegator.reclaim_completed();
        }
        ihk.shrink_os(os_idx, &[victim])?;
        self.app_cores = mck.online_cores();
        Ok(victim)
    }

    /// Elastic expand: reclaim the lowest released core back from Linux
    /// (LIFO against [`NodeRuntime::shrink_lwk_core`]), rebalance the
    /// gang across the widened partition, and return the regrown core.
    pub fn grow_lwk_core(&mut self) -> Result<CoreId, PartitionError> {
        let (Some(mck), Some(ihk), Some(os_idx)) =
            (self.mck.as_mut(), self.ihk.as_mut(), self.os_idx)
        else {
            panic!("grow_lwk_core on a Linux-variant node");
        };
        let candidate = *mck
            .offline_cores()
            .first()
            .expect("grow with no released core");
        ihk.grow_os(os_idx, &[candidate])?;
        mck.online_core(candidate).expect("regrow released core");
        let online = mck.online_cores();
        let mut tids: Vec<Tid> = online
            .iter()
            .flat_map(|&c| mck.threads_on(c))
            .collect();
        tids.sort_unstable();
        for (i, tid) in tids.into_iter().enumerate() {
            mck.migrate_thread(tid, online[i % online.len()])
                .expect("rebalance onto grown core");
        }
        self.app_cores = mck.online_cores();
        Ok(candidate)
    }

    /// Audit that a released core left nothing behind: not reserved in
    /// IHK, offline in the LWK, software TLBs shot down, frame cache
    /// drained, no run queue, and the delegator fully reclaimed. The
    /// resize-storm soak runs this after every release.
    pub fn audit_released_core(&self, core: CoreId) -> Result<(), String> {
        let (Some(mck), Some(ihk)) = (self.mck.as_ref(), self.ihk.as_ref()) else {
            return Err("audit on a Linux-variant node".into());
        };
        if ihk.is_reserved(core) {
            return Err(format!("{core} still reserved in IHK"));
        }
        if mck.core_online(core) {
            return Err(format!("{core} still online in the LWK"));
        }
        let cpu = mck.cpu_index_of(core).ok_or(format!("{core} unknown"))?;
        let tlb = mck.tlb_resident_on(cpu);
        if tlb > 0 {
            return Err(format!("{core}: {tlb} software-TLB entries resident"));
        }
        let pcp = mck.alloc.pcp_cached_on(cpu);
        if pcp > 0 {
            return Err(format!("{core}: {pcp} frames cached in the PCP"));
        }
        if mck.sched.has_core(core) {
            return Err(format!("{core} still has a run queue"));
        }
        if self.linux.delegator.in_flight() > 0 {
            return Err("offloads in flight across the release".into());
        }
        if self.linux.delegator.completed_cache_len() > 0 {
            return Err("delegator reply slab not reclaimed".into());
        }
        Ok(())
    }

    /// Tear the job down. McKernel nodes must return to a pristine LWK —
    /// the paper reinitializes McKernel between runs (Sec. IV-B3).
    pub fn reap_job(&mut self) {
        if let Some(mck) = self.mck.as_mut() {
            mck.reap_process(self.app_pid);
            assert!(mck.is_pristine(), "reinit policy violated");
        }
        if let Some(proxy) = self.proxy_pid {
            self.linux.reap_proxy(proxy);
        }
        self.fd_lease.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;

    fn build(os: OsVariant, insitu: bool) -> NodeRuntime {
        let mut cfg = ClusterConfig::paper(os).with_nodes(1).with_seed(77);
        cfg.insitu = insitu;
        cfg.horizon_secs = 5;
        NodeRuntime::build(&cfg, 0, &StreamRng::root(cfg.seed))
    }

    #[test]
    fn elastic_shrink_release_audit_and_regrow() {
        let mut n = build(OsVariant::McKernel, false);
        let width0 = n.lwk_online_width();
        assert!(width0 >= 2, "paper layout has a multi-core LWK");

        let c1 = n.shrink_lwk_core().unwrap();
        n.audit_released_core(c1).unwrap();
        let c2 = n.shrink_lwk_core().unwrap();
        n.audit_released_core(c2).unwrap();
        assert!(c2 < c1, "victims walk down from the top core");
        assert_eq!(n.lwk_online_width(), width0 - 2);
        assert_eq!(n.app_cores.len(), width0 - 2);

        // Released cores are Linux's again.
        let ihk = n.ihk.as_ref().unwrap();
        assert!(!ihk.is_reserved(c1) && !ihk.is_reserved(c2));

        // The shrunk node still executes app quanta and offloads.
        let done = n.omp_region(Cycles::ZERO, Cycles::from_us(10), 8);
        assert!(done > Cycles::ZERO);
        let (ret, _) = n.offload_syscall(Sysno::Getpid, [0; 6], done);
        assert!(ret >= 0);
        assert_eq!(n.linux.delegator.in_flight(), 0);

        // Grow back LIFO: lowest released core returns first.
        let g1 = n.grow_lwk_core().unwrap();
        assert_eq!(g1, c2);
        let g2 = n.grow_lwk_core().unwrap();
        assert_eq!(g2, c1);
        assert_eq!(n.lwk_online_width(), width0);
        assert!(n.ihk.as_ref().unwrap().is_reserved(c1));

        // Gang is rebalanced over the full width again.
        let mck = n.mck.as_ref().unwrap();
        let spread: usize = mck
            .online_cores()
            .iter()
            .filter(|&&c| !mck.threads_on(c).is_empty())
            .count();
        assert_eq!(spread, 8.min(width0), "threads spread across the gang");
        n.reap_job();
    }

    #[test]
    fn mckernel_node_boots_and_sets_up_the_whole_stack() {
        let n = build(OsVariant::McKernel, false);
        assert!(n.mck.is_some());
        assert!(n.proxy_pid.is_some());
        assert!(n.uverbs_fd >= 3, "offloaded open returned {}", n.uverbs_fd);
        assert!(n.ib.doorbell_phys.is_some());
        assert_ne!(n.arena_va, VirtAddr::NULL);
        // The doorbell resolves into the HCA BAR.
        let bar = n.hw.device_of_class(DeviceClass::InfinibandHca).unwrap().bars[0];
        assert!(bar.contains(n.ib.doorbell_phys.unwrap()));
        // fd state lives on the Linux side.
        assert!(n.linux.vfs.fd_count(n.proxy_pid.unwrap()) >= 4);
        // The unified AS actually faulted pages (path read).
        let proxy = n.linux.proxy(n.proxy_pid.unwrap()).unwrap();
        assert!(proxy.uas.stats().0 >= 1, "pseudo-mapping never used");
    }

    #[test]
    fn linux_node_sets_up_locally() {
        let n = build(OsVariant::LinuxCgroup, false);
        assert!(n.mck.is_none());
        assert!(n.proxy_pid.is_none());
        assert!(n.uverbs_fd >= 3);
        assert!(n.ib.doorbell_phys.is_some());
    }

    #[test]
    fn lwk_compute_is_exact_linux_compute_is_noisy() {
        let mut mck = build(OsVariant::McKernel, false);
        mck.mem_intensity = 0.0; // pure ALU: no stretch at all
        let w = Cycles::from_ms(50);
        let done = mck.exec_app_thread(0, Cycles::from_us(3), w);
        assert_eq!(done, Cycles::from_us(3) + w, "tick-less LWK is exact");
        let mut lin = build(OsVariant::LinuxCgroup, false);
        lin.mem_intensity = 0.0;
        let done = lin.exec_app_thread(0, Cycles::from_us(3), w);
        assert!(done > Cycles::from_us(3) + w, "ticks steal time on Linux");
    }

    #[test]
    fn offloaded_getrandom_round_trips() {
        let mut n = build(OsVariant::McKernel, false);
        // Write into the arena through an offloaded getrandom.
        let (ret, done) = n.offload_syscall(
            Sysno::GetRandom,
            [n.arena_va.raw(), 256, 0, 0, 0, 0],
            Cycles::from_ms(1),
        );
        assert_eq!(ret, 256);
        assert!(done > Cycles::from_ms(1));
        // The bytes are visible in the app's physical memory.
        let pa = n
            .mck
            .as_ref()
            .unwrap()
            .process(n.app_pid)
            .unwrap()
            .aspace
            .pt
            .translate(n.arena_va)
            .unwrap()
            .phys;
        let mut buf = [0u8; 256];
        n.hw.mem.read(pa, &mut buf);
        assert!(buf.iter().any(|&b| b != 0), "random bytes landed");
    }

    #[test]
    fn mr_register_costs_more_on_mckernel_than_linux() {
        let mut mck = build(OsVariant::McKernel, false);
        let mut lin = build(OsVariant::LinuxCgroupIsolcpus, false);
        let at = Cycles::from_ms(2);
        let mck_cost = mck.mr_register(at, 1 << 20) - at;
        let lin_cost = lin.mr_register(at, 1 << 20) - at;
        assert!(
            mck_cost > lin_cost,
            "offloaded registration ({mck_cost}) must exceed local ({lin_cost})"
        );
        // But still microseconds-scale, not catastrophic.
        assert!(mck_cost < Cycles::from_ms(1), "{mck_cost}");
    }

    #[test]
    fn local_syscalls_stay_on_the_lwk() {
        let mut n = build(OsVariant::McKernel, false);
        let before = n.mck.as_ref().unwrap().trace.get("mck.syscall.local");
        let (ret, _) = n.offload_syscall(Sysno::Getpid, [0; 6], Cycles::from_ms(1));
        assert_eq!(ret, n.app_pid.0 as i64);
        let after = n.mck.as_ref().unwrap().trace.get("mck.syscall.local");
        assert_eq!(after, before + 1);
        assert_eq!(n.linux.trace.get("linux.offload.serviced"), 1, "only the open()");
    }

    #[test]
    fn insitu_contention_reaches_app_cores_only_under_cgroup() {
        let cg = build(OsVariant::LinuxCgroup, true);
        let iso = build(OsVariant::LinuxCgroupIsolcpus, true);
        let app_core = CoreId(10);
        assert!(
            cg.linux.occupancy.has_load(app_core),
            "cgroup-only: Hadoop lands on app cores"
        );
        assert!(
            !iso.linux.occupancy.has_load(app_core),
            "isolcpus keeps them off"
        );
        let mck = build(OsVariant::McKernel, true);
        assert!(
            mck.linux.occupancy.has_load(CoreId(19)),
            "Hadoop can occupy the proxy core"
        );
    }

    #[test]
    fn dead_node_operations_are_typed_errors_not_panics() {
        let mut n = build(OsVariant::McKernel, false);
        let at = Cycles::from_ms(1);
        let done = n.crash_node(at);
        // McKernel death runs the proxy-death recovery flow first.
        assert!(done > at, "heartbeat detection takes time");
        assert!(!n.alive);
        assert!(!n.proxy_alive);
        assert!(n.mck.is_none(), "partition reclaimed");
        let err = n
            .try_offload_syscall(Sysno::Getpid, [0; 6], done)
            .expect_err("dead node executes nothing");
        assert_eq!(err, NodeError::NodeDead { node: 0 });
        // Crashing twice is idempotent.
        assert_eq!(n.crash_node(done), done);
    }

    #[test]
    fn linux_node_crash_is_immediate_and_offload_free() {
        let mut n = build(OsVariant::LinuxCgroup, false);
        let at = Cycles::from_ms(2);
        assert_eq!(n.crash_node(at), at, "no proxy flow on Linux");
        assert!(matches!(
            n.try_offload_syscall(Sysno::Getpid, [0; 6], at),
            Err(NodeError::NodeDead { node: 0 })
        ));
    }

    #[test]
    fn reap_restores_pristine_lwk() {
        let mut n = build(OsVariant::McKernel, false);
        n.reap_job();
        assert!(n.mck.as_ref().unwrap().is_pristine());
    }

    /// Arm the bypass programmatically (tests never touch the process
    /// environment) with an immediate promotion threshold.
    fn arm_bypass(n: &mut NodeRuntime, promote_after: u64) {
        n.mck.as_mut().unwrap().bypass = BypassConfig {
            enabled: true,
            promote_after,
            domains: false,
        };
    }

    /// Offload an `open()` of a regular (page-cached) file and return
    /// its fd plus the completion instant.
    fn open_regular(n: &mut NodeRuntime, at: Cycles) -> (u64, Cycles) {
        let (path_va, t) = n.mck_mmap_anon(4096, at);
        let pa = n
            .mck
            .as_ref()
            .unwrap()
            .process(n.app_pid)
            .unwrap()
            .aspace
            .pt
            .translate(path_va)
            .unwrap()
            .phys;
        n.hw.mem.write(pa, b"/data/input.bin\0");
        let (fd, t) = n.offload_syscall(Sysno::Open, [path_va.raw(), 0, 0, 0, 0, 0], t);
        assert!(fd >= 0, "open failed: {fd}");
        (fd as u64, t)
    }

    #[test]
    fn promoted_read_write_lseek_match_the_offloaded_results_exactly() {
        // Two identical nodes, one with the bypass armed; drive the same
        // syscall sequence and demand identical results and fd state.
        let mut base = build(OsVariant::McKernel, false);
        let mut fast = build(OsVariant::McKernel, false);
        arm_bypass(&mut fast, 1);
        let mut outs = Vec::new();
        for n in [&mut base, &mut fast] {
            let (fd, mut t) = open_regular(n, Cycles::from_ms(1));
            let buf = n.arena_va.raw();
            let mut rets = Vec::new();
            // First read offloads on both nodes (cold profiler + no
            // lease); later ones are promoted only on `fast`.
            for _ in 0..4 {
                let (r, t2) = n.offload_syscall(Sysno::Read, [fd, buf, 100, 0, 0, 0], t);
                rets.push(r);
                t = t2;
            }
            let (r, t2) = n.offload_syscall(Sysno::Lseek, [fd, 64, 0, 0, 0, 0], t);
            rets.push(r);
            let (r, t2) = n.offload_syscall(Sysno::Write, [fd, buf, 200, 0, 0, 0], t2);
            rets.push(r);
            // EFAULT: unmapped buffer, both paths.
            let (r, t2) = n.offload_syscall(Sysno::Read, [fd, 0xdead_0000, 8, 0, 0, 0], t2);
            rets.push(r);
            let pos = n
                .linux
                .vfs
                .file(n.proxy_pid.unwrap(), Fd(fd as i32))
                .unwrap()
                .pos;
            let mut data = [0u8; 100];
            let pa = n
                .mck
                .as_ref()
                .unwrap()
                .process(n.app_pid)
                .unwrap()
                .aspace
                .pt
                .translate(n.arena_va)
                .unwrap()
                .phys;
            n.hw.mem.read(pa, &mut data);
            outs.push((rets, pos, data, t2));
        }
        assert_eq!(outs[0].0, outs[1].0, "return values diverged");
        assert_eq!(outs[0].1, outs[1].1, "fd position diverged");
        assert_eq!(outs[0].2, outs[1].2, "app memory diverged");
        // The bypass actually engaged and actually skipped offloads.
        let promoted = fast.bypass_promoted;
        assert!(promoted >= 4, "promoted {promoted} calls");
        assert!(
            fast.linux.trace.get("linux.offload.serviced")
                < base.linux.trace.get("linux.offload.serviced"),
            "promotion must shed offloads"
        );
        // And it is dramatically cheaper in modeled time too.
        assert!(outs[1].3 < outs[0].3, "bypass must not be slower");
    }

    #[test]
    fn promoted_futex_and_clock_match_offload_and_cold_paths_fall_back() {
        let mut n = build(OsVariant::McKernel, false);
        arm_bypass(&mut n, 1);
        let t = Cycles::from_ms(1);
        let word = n.arena_va.raw();
        // Cold profiler: first futex offloads. Word is zeroed memory.
        let (r1, t) = n.offload_syscall(Sysno::Futex, [word, 128, 0, 0, 0, 0], t);
        assert_eq!(r1, 0, "value matches -> modeled spurious wakeup");
        // Promoted now: same convention natively.
        let (r2, t) = n.offload_syscall(Sysno::Futex, [word, 128, 0, 0, 0, 0], t);
        assert_eq!(r2, 0);
        let (r3, t) = n.offload_syscall(Sysno::Futex, [word, 128, 7, 0, 0, 0], t);
        assert_eq!(r3, -(Errno::EAGAIN as i64));
        let (r4, t) = n.offload_syscall(Sysno::Futex, [0xdead_0000, 128, 0, 0, 0, 0], t);
        assert_eq!(r4, -(Errno::EFAULT as i64));
        // FUTEX_WAKE returns 0 on both paths; unknown ops fall back and
        // come back -ENOSYS from Linux.
        let (r5, t) = n.offload_syscall(Sysno::Futex, [word, 129, 1, 0, 0, 0], t);
        assert_eq!(r5, 0);
        let (r6, t) = n.offload_syscall(Sysno::Futex, [word, 9, 0, 0, 0, 0], t);
        assert_eq!(r6, -(Errno::ENOSYS as i64));
        // clock_gettime: cold time page falls back to offload (Linux's
        // vDSO value, 0 until published), then the published value is
        // read from the LWK's shared page with no kernel transition.
        let (c1, t) = n.offload_syscall(Sysno::ClockGettime, [0, 0, 0, 0, 0, 0], t);
        assert_eq!(c1, 0, "unpublished clock reads 0 via offload");
        n.publish_time(987_654_321);
        let serviced_before = n.linux.trace.get("linux.offload.serviced");
        let (c2, _) = n.offload_syscall(Sysno::ClockGettime, [0, 0, 0, 0, 0, 0], t);
        assert_eq!(c2, 987_654_321);
        assert_eq!(
            n.linux.trace.get("linux.offload.serviced"),
            serviced_before,
            "published clock never leaves the LWK"
        );
        assert!(n.bypass_fallbacks >= 1);
    }

    #[test]
    fn device_fds_are_never_promoted() {
        let mut n = build(OsVariant::McKernel, false);
        arm_bypass(&mut n, 1);
        let fd = n.uverbs_fd as u64;
        let buf = n.arena_va.raw();
        let mut t = Cycles::from_ms(1);
        let before = n.linux.trace.get("linux.offload.serviced");
        for _ in 0..5 {
            let (_, t2) = n.offload_syscall(Sysno::Write, [fd, buf, 64, 0, 0, 0], t);
            t = t2;
        }
        assert_eq!(
            n.linux.trace.get("linux.offload.serviced"),
            before + 5,
            "device-fd writes must all reach Linux"
        );
        assert_eq!(n.bypass_promoted, 0);
    }

    #[test]
    fn armed_domains_charge_one_switch_pair_per_promoted_call() {
        let mut cheap = build(OsVariant::McKernel, false);
        let mut guarded = build(OsVariant::McKernel, false);
        arm_bypass(&mut cheap, 1);
        arm_bypass(&mut guarded, 1);
        guarded.enable_domains();
        let t0 = Cycles::from_ms(1);
        let mut done = [Cycles::ZERO; 2];
        for (i, n) in [&mut cheap, &mut guarded].into_iter().enumerate() {
            let (fd, t) = open_regular(n, t0);
            let buf = n.arena_va.raw();
            let (_, t) = n.offload_syscall(Sysno::Read, [fd, buf, 32, 0, 0, 0], t);
            // Promoted from here on.
            let (_, t) = n.offload_syscall(Sysno::Read, [fd, buf, 32, 0, 0, 0], t);
            done[i] = t;
        }
        let switch = CostModel::default().domain_switch;
        assert_eq!(
            done[1] - done[0],
            switch * 2,
            "exactly one enter/exit pair per promoted call"
        );
        assert_eq!(guarded.mck.as_ref().unwrap().domains.switches, 2);
        assert_eq!(guarded.ikc.to_linux.pkey(), Some(DomainId::IkcRing as u8));
        assert_eq!(
            guarded.linux.delegator.pkey(),
            Some(DomainId::DelegatorSlab as u8)
        );
    }

    #[test]
    fn bypass_disabled_leaves_the_trace_untouched() {
        let mut n = build(OsVariant::McKernel, false);
        let (fd, mut t) = open_regular(&mut n, Cycles::from_ms(1));
        for _ in 0..20 {
            let (_, t2) = n.offload_syscall(Sysno::Read, [fd, n.arena_va.raw(), 16, 0, 0, 0], t);
            t = t2;
        }
        assert_eq!(n.bypass_promoted, 0);
        assert_eq!(n.bypass_fallbacks, 0);
        assert!(n.fd_lease.is_empty(), "no lease bookkeeping while disabled");
    }
}
