//! Binding MPI ranks to node runtimes.

use crate::node::NodeRuntime;
use mpisim::host::HostModel;
use simcore::Cycles;

/// The cluster-backed [`HostModel`]: rank `r` is node `r` (one MPI
/// process per node, as in the paper's collective benchmarks).
pub struct ClusterHost {
    /// All node runtimes.
    pub nodes: Vec<NodeRuntime>,
}

impl HostModel for ClusterHost {
    fn cpu(&mut self, rank: usize, at: Cycles, work: Cycles) -> Cycles {
        // MPI library code runs on the rank's first application core.
        self.nodes[rank].exec_app_thread(0, at, work)
    }

    fn mr_register(&mut self, rank: usize, at: Cycles, bytes: u64) -> Cycles {
        self.nodes[rank].mr_register(at, bytes)
    }

    fn omp_region(&mut self, rank: usize, at: Cycles, per_thread: Cycles, threads: u32) -> Cycles {
        self.nodes[rank].omp_region(at, per_thread, threads)
    }

    fn dma_stretch(&mut self, rank: usize, at: Cycles) -> f64 {
        self.nodes[rank].dma_stretch(at)
    }
}

/// One node runtime as a standalone [`HostModel`]: the partitioned
/// replay's per-node seat (`mpisim::NodeSeat`). Every method ignores the
/// rank argument — the seat *is* a single node, and replay only ever
/// passes its own index — and delegates exactly like [`ClusterHost`]
/// does for that node, so per-node state evolves identically on the
/// walk and replay paths.
pub struct NodeHost(pub NodeRuntime);

impl HostModel for NodeHost {
    fn cpu(&mut self, _rank: usize, at: Cycles, work: Cycles) -> Cycles {
        self.0.exec_app_thread(0, at, work)
    }

    fn mr_register(&mut self, _rank: usize, at: Cycles, bytes: u64) -> Cycles {
        self.0.mr_register(at, bytes)
    }

    fn omp_region(&mut self, _rank: usize, at: Cycles, per_thread: Cycles, threads: u32) -> Cycles {
        self.0.omp_region(at, per_thread, threads)
    }

    fn dma_stretch(&mut self, _rank: usize, at: Cycles) -> f64 {
        self.0.dma_stretch(at)
    }
}
