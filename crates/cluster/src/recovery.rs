//! Job-level recovery policies over node failures.
//!
//! The layers below give bounded *detection*: the reliable fabric turns
//! an unreachable peer into a typed [`LinkError`](netsim::LinkError)
//! once its retry budget drains, and the MPI layer's straggler timers
//! turn silence into a [`RankFailure`] instead of a hang. This module
//! decides what the *job* does next:
//!
//! * [`RecoveryPolicy::Abort`] — classic MPI behaviour: the failure
//!   propagates out as a typed error and the job is gone.
//! * [`RecoveryPolicy::ShrinkAndRedo`] — the survivors form a shrunk
//!   communicator (ULFM-style), absorb the lost rank's work share, and
//!   re-run the interrupted iteration.
//! * [`RecoveryPolicy::CheckpointRestart`] — periodic coordinated
//!   snapshots; on failure the survivors roll back to the last
//!   checkpoint and replay from there.
//!
//! Every policy *terminates*: each failure permanently removes a rank,
//! a one-rank job cannot fail (no communication), and detection windows
//! are bounded, so even adversarial fault schedules end in either a
//! typed abort or completion.

use crate::sim::Cluster;
use hlwk_core::ihk::manager::HeartbeatMonitor;
use mpisim::RankFailure;
use simcore::Cycles;
use workloads::miniapps::{self, MiniApp};

/// What the job does when a rank is declared failed mid-run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// Propagate the failure; the job is lost.
    Abort,
    /// Shrink the communicator to the survivors and redo the
    /// interrupted iteration with redistributed work.
    ShrinkAndRedo,
    /// Coordinated checkpoint every `interval` iterations; on failure
    /// the survivors roll back to the last checkpoint and replay.
    CheckpointRestart {
        /// Iterations between checkpoints.
        interval: u32,
    },
}

impl RecoveryPolicy {
    /// Display label for figure output.
    pub fn label(&self) -> String {
        match self {
            RecoveryPolicy::Abort => "abort".to_string(),
            RecoveryPolicy::ShrinkAndRedo => "shrink-redo".to_string(),
            RecoveryPolicy::CheckpointRestart { interval } => format!("ckpt-{interval}"),
        }
    }
}

/// Time models for the recovery machinery itself.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryCosts {
    /// Writing one rank's checkpoint (charged to every rank at each
    /// checkpoint barrier).
    pub ckpt_write: Cycles,
    /// Restoring one rank's state from the checkpoint after a rollback.
    pub ckpt_restore: Cycles,
    /// Rebuilding the communicator + redistributing data after a shrink
    /// (charged once per failure to every survivor).
    pub rebuild: Cycles,
}

impl Default for RecoveryCosts {
    fn default() -> Self {
        RecoveryCosts {
            // ~64 MiB of rank state at ~25 ns/KiB to the burst buffer.
            ckpt_write: Cycles::from_ns(25 * 64 * 1024),
            ckpt_restore: Cycles::from_ns(25 * 64 * 1024),
            rebuild: Cycles::from_ms(5),
        }
    }
}

/// What happened during one resilient run.
#[derive(Clone, Debug)]
pub struct RecoveryReport {
    /// Job start to the last survivor's finish.
    pub time: Cycles,
    /// Rank failures the job absorbed.
    pub failures: u32,
    /// Iterations executed more than once (redo / replay).
    pub redone_iters: u32,
    /// Checkpoints written.
    pub checkpoints: u32,
    /// For the first failure: detector firing to cluster-level
    /// confirmation (heartbeat sweep), the paper-style detection
    /// latency.
    pub detection_latency: Option<Cycles>,
    /// Ranks still alive at completion.
    pub survivors: usize,
}

/// Confirm a suspected death at cluster scope. The observer's failure
/// detector fired at `suspected_at` (straggler timeout or retry-budget
/// exhaustion); the job runtime then sweeps the suspect with the same
/// heartbeat machinery the LWK uses for its proxy
/// ([`HeartbeatMonitor::paper_default`]: misses are declared after a
/// bounded number of unanswered probes), so confirmation lags suspicion
/// by at most [`HeartbeatMonitor::detection_bound`].
fn confirm_death(suspected_at: Cycles) -> Cycles {
    let mut hb = HeartbeatMonitor::paper_default();
    let mut t = suspected_at;
    loop {
        // A dead node never answers the probe.
        let _ = hb.poll(t);
        if hb.is_dead() {
            break;
        }
        t += hb.interval;
    }
    debug_assert!(t - suspected_at <= hb.detection_bound());
    t
}

/// Run `app` on the whole cluster under `policy`, surviving node
/// failures. `Ok` means the job completed (possibly shrunk, possibly
/// with replayed iterations); `Err` is the [`RecoveryPolicy::Abort`]
/// outcome — a typed failure, never a hang — also returned if every
/// rank dies.
pub fn run_resilient(
    cluster: &mut Cluster,
    app: &MiniApp,
    policy: RecoveryPolicy,
    costs: &RecoveryCosts,
    start: Cycles,
) -> Result<RecoveryReport, RankFailure> {
    cluster.set_mem_intensity(app.mem_intensity);
    let p0 = cluster.cfg.nodes as usize;
    // rank -> surviving fabric node. Starts as the identity.
    let mut ranks: Vec<usize> = (0..p0).collect();
    let mut clocks = vec![start; p0];
    let mut quantum = app.thread_quantum(p0);
    let mut iter: u32 = 0;
    // Last durable checkpoint: (iteration, per-rank clocks at the
    // barrier). Iteration 0 is implicitly checkpointed (initial state).
    let mut ckpt: Option<(u32, Vec<Cycles>)> = match policy {
        RecoveryPolicy::CheckpointRestart { .. } => Some((0, clocks.clone())),
        _ => None,
    };
    let mut report = RecoveryReport {
        time: Cycles::ZERO,
        failures: 0,
        redone_iters: 0,
        checkpoints: 0,
        detection_latency: None,
        survivors: p0,
    };
    while iter < app.iterations {
        if let RecoveryPolicy::CheckpointRestart { interval } = policy {
            debug_assert!(interval > 0, "checkpoint interval must be positive");
            if iter > 0 && iter % interval == 0 && ckpt.as_ref().is_some_and(|c| c.0 != iter) {
                for c in &mut clocks {
                    *c += costs.ckpt_write;
                }
                ckpt = Some((iter, clocks.clone()));
                report.checkpoints += 1;
            }
        }
        let pre = clocks.clone();
        let res = {
            let mut ctx = cluster.ctx_with_ranks(&ranks);
            miniapps::step(&mut ctx, app, quantum, &mut clocks)
        };
        match res {
            Ok(()) => iter += 1,
            Err(f) => {
                report.failures += 1;
                let dead_rank = f.rank;
                let dead_node = ranks[dead_rank];
                let confirmed = confirm_death(f.detected_at);
                if report.detection_latency.is_none() {
                    // Paper-style metric: actual death (if the fabric
                    // knows it) to cluster-level confirmation.
                    let died = cluster
                        .fabric
                        .node_dead_at(dead_node)
                        .unwrap_or(f.detected_at);
                    report.detection_latency = Some(confirmed - died);
                }
                // Tear the dead node itself down (proxy-death recovery
                // on McKernel; fail-stop marking either way).
                cluster.host.nodes[dead_node].crash_node(confirmed);
                if policy == RecoveryPolicy::Abort {
                    return Err(f);
                }
                ranks.remove(dead_rank);
                report.survivors = ranks.len();
                if ranks.is_empty() {
                    return Err(f);
                }
                quantum = app.thread_quantum_shrunk(p0, ranks.len());
                match policy {
                    RecoveryPolicy::Abort => unreachable!("handled above"),
                    RecoveryPolicy::ShrinkAndRedo => {
                        // Survivors resume from the iteration start,
                        // paying confirmation + communicator rebuild,
                        // then redo the interrupted iteration.
                        clocks = pre;
                        clocks.remove(dead_rank);
                        for c in &mut clocks {
                            *c = (*c).max(confirmed) + costs.rebuild;
                        }
                        report.redone_iters += 1;
                    }
                    RecoveryPolicy::CheckpointRestart { .. } => {
                        let (ck_iter, ck_clocks) =
                            ckpt.clone().expect("seeded at job start");
                        let mut rolled = ck_clocks;
                        rolled.remove(dead_rank);
                        for c in &mut rolled {
                            *c = (*c).max(confirmed) + costs.rebuild + costs.ckpt_restore;
                        }
                        clocks = rolled;
                        report.redone_iters += iter - ck_iter;
                        iter = ck_iter;
                        // Re-base the checkpoint on the shrunk
                        // communicator so a second failure rolls back
                        // consistently.
                        ckpt = Some((ck_iter, clocks.clone()));
                    }
                }
            }
        }
    }
    report.time = *clocks.iter().max().expect("survivors exist") - start;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ClusterConfig, OsVariant};
    use netsim::reliable::CrashTrigger;

    fn cluster(os: OsVariant, nodes: u32, crash_at: Option<Cycles>) -> Cluster {
        let mut cfg = ClusterConfig::paper(os).with_nodes(nodes).with_seed(99);
        cfg.horizon_secs = 30;
        if let Some(at) = crash_at {
            cfg = cfg.with_node_crash(1, CrashTrigger::AtTime(at));
        }
        Cluster::build(cfg)
    }

    fn short_app() -> MiniApp {
        MiniApp {
            iterations: 8,
            ..MiniApp::hpccg()
        }
    }

    #[test]
    fn fault_free_run_matches_run_miniapp_exactly() {
        let app = short_app();
        let plain = cluster(OsVariant::McKernel, 4, None)
            .run_miniapp(&app, Cycles::from_ms(1))
            .expect("fault-free");
        let mut c = cluster(OsVariant::McKernel, 4, None);
        let rep = run_resilient(
            &mut c,
            &app,
            RecoveryPolicy::ShrinkAndRedo,
            &RecoveryCosts::default(),
            Cycles::from_ms(1),
        )
        .expect("fault-free");
        assert_eq!(rep.time, plain, "resilience wrapper must add zero cost");
        assert_eq!(rep.failures, 0);
        assert_eq!(rep.redone_iters, 0);
        assert_eq!(rep.survivors, 4);
    }

    #[test]
    fn abort_is_a_typed_error_with_bounded_detection() {
        let crash = Cycles::from_ms(400);
        let mut c = cluster(OsVariant::LinuxCgroup, 4, Some(crash));
        let err = run_resilient(
            &mut c,
            &short_app(),
            RecoveryPolicy::Abort,
            &RecoveryCosts::default(),
            Cycles::from_ms(1),
        )
        .expect_err("node 1 dies mid-run");
        assert_eq!(err.rank, 1);
        // Detection is communication-driven, so it is bounded by one BSP
        // iteration (the next time anyone talks to the dead rank,
        // ~330 ms for HPC-CG) plus the straggler timeout and the full
        // retry budget — never unbounded, never a hang.
        let one_iter = short_app().thread_quantum(4) + Cycles::from_ms(50);
        let budget = c.fabric.policy().detection_budget();
        assert!(
            err.detected_at <= crash + one_iter + budget,
            "{} too late",
            err.detected_at
        );
    }

    #[test]
    fn shrink_and_redo_completes_on_survivors() {
        let crash = Cycles::from_ms(400);
        let mut c = cluster(OsVariant::McKernel, 4, Some(crash));
        let rep = run_resilient(
            &mut c,
            &short_app(),
            RecoveryPolicy::ShrinkAndRedo,
            &RecoveryCosts::default(),
            Cycles::from_ms(1),
        )
        .expect("survivors finish the job");
        assert_eq!(rep.failures, 1);
        assert_eq!(rep.survivors, 3);
        assert!(rep.redone_iters >= 1);
        assert!(rep.detection_latency.is_some());
        // The dead node was locally torn down too.
        assert!(!c.host.nodes[1].alive);
        // Weak scaling on 3 survivors re-runs at 4/3 work: slower than
        // the fault-free run but it terminates.
        let plain = cluster(OsVariant::McKernel, 4, None)
            .run_miniapp(&short_app(), Cycles::from_ms(1))
            .expect("fault-free");
        assert!(rep.time > plain);
    }

    #[test]
    fn checkpoint_restart_replays_from_the_last_snapshot() {
        let crash = Cycles::from_ms(900);
        let mut c = cluster(OsVariant::LinuxCgroup, 4, Some(crash));
        let rep = run_resilient(
            &mut c,
            &short_app(),
            RecoveryPolicy::CheckpointRestart { interval: 2 },
            &RecoveryCosts::default(),
            Cycles::from_ms(1),
        )
        .expect("survivors replay and finish");
        assert_eq!(rep.failures, 1);
        assert!(rep.checkpoints >= 1);
        // Rollback replays at most `interval` iterations per failure.
        assert!(rep.redone_iters <= 2 * rep.failures);
        assert_eq!(rep.survivors, 3);
    }

    #[test]
    fn every_policy_terminates_under_in_flight_crash() {
        // AfterSends trigger: the node dies mid-protocol rather than at
        // a tidy time boundary.
        for policy in [
            RecoveryPolicy::Abort,
            RecoveryPolicy::ShrinkAndRedo,
            RecoveryPolicy::CheckpointRestart { interval: 3 },
        ] {
            let mut cfg = ClusterConfig::paper(OsVariant::LinuxCgroup)
                .with_nodes(4)
                .with_seed(7);
            cfg.horizon_secs = 30;
            cfg = cfg.with_node_crash(2, CrashTrigger::AfterSends(40));
            let mut c = Cluster::build(cfg);
            let res = run_resilient(
                &mut c,
                &short_app(),
                policy,
                &RecoveryCosts::default(),
                Cycles::from_ms(1),
            );
            match (policy, res) {
                (RecoveryPolicy::Abort, Err(f)) => assert_eq!(f.rank, 2),
                (RecoveryPolicy::Abort, Ok(_)) => panic!("abort must surface the failure"),
                (_, Ok(rep)) => {
                    assert_eq!(rep.survivors, 3);
                    assert_eq!(rep.failures, 1);
                }
                (p, Err(f)) => panic!("{p:?} must complete, got {f}"),
            }
        }
    }
}
