//! Job-level recovery policies over node failures.
//!
//! The layers below give bounded *detection*: the reliable fabric turns
//! an unreachable peer into a typed [`LinkError`](netsim::LinkError)
//! once its retry budget drains, and the MPI layer's straggler timers
//! turn silence into a [`RankFailure`] instead of a hang. This module
//! decides what the *job* does next:
//!
//! * [`RecoveryPolicy::Abort`] — classic MPI behaviour: the failure
//!   propagates out as a typed error and the job is gone.
//! * [`RecoveryPolicy::ShrinkAndRedo`] — the survivors form a shrunk
//!   communicator (ULFM-style), absorb the lost rank's work share, and
//!   re-run the interrupted iteration.
//! * [`RecoveryPolicy::CheckpointRestart`] — periodic coordinated
//!   snapshots; on failure the survivors roll back to the last
//!   checkpoint and replay from there.
//! * [`RecoveryPolicy::Hierarchical`] — asynchronous hierarchical
//!   checkpointing over the cluster's failure domains: local snapshots
//!   overlap compute (only a copy-on-write fork blocks), each rank's
//!   snapshot is buddy-copied into a *different* failure domain, and
//!   every Nth snapshot additionally drains to the parallel file
//!   system. Rollback distance then depends on *which domain died*:
//!   a node (or any batch whose buddies survived) restores from buddy
//!   copies at the last local snapshot, while a whole-domain loss that
//!   took the buddies too falls back to the last durable global
//!   checkpoint. In degraded mode the survivors keep running at
//!   reduced width instead of aborting.
//!
//! Every policy *terminates*: each failure permanently removes at
//! least one rank, a one-rank job cannot fail (no communication), and
//! detection windows are bounded, so even adversarial fault schedules
//! end in either a typed abort or completion — within
//! `iterations + (p+1) * (max_rollback + 2)` loop steps (asserted by
//! the termination proptest in `tests/proptest_recovery.rs`).

use crate::sim::Cluster;
use hlwk_core::ihk::manager::HeartbeatMonitor;
use mpisim::{FailureBatch, RankFailure};
use simcore::fault::DomainTopology;
use simcore::Cycles;
use workloads::miniapps::MiniApp;

/// What the job does when a rank is declared failed mid-run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// Propagate the failure; the job is lost.
    Abort,
    /// Shrink the communicator to the survivors and redo the
    /// interrupted iteration with redistributed work.
    ShrinkAndRedo,
    /// Coordinated checkpoint every `interval` iterations; on failure
    /// the survivors roll back to the last checkpoint and replay.
    CheckpointRestart {
        /// Iterations between checkpoints.
        interval: u32,
    },
    /// Asynchronous hierarchical checkpointing over failure domains
    /// with batch failure handling (see the module docs).
    Hierarchical(HierarchicalCkpt),
}

/// Knobs for [`RecoveryPolicy::Hierarchical`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HierarchicalCkpt {
    /// Iterations between local snapshots.
    pub local_interval: u32,
    /// Every `global_factor`-th local snapshot also drains to the
    /// parallel file system (global checkpoint).
    pub global_factor: u32,
    /// Where each rank's buddy copy lands.
    pub buddy: BuddyPlacement,
    /// `true`: degraded mode — survivors keep running at reduced width.
    /// `false`: the first confirmed failure aborts the job (but the
    /// checkpoint overhead is still paid, for honest comparisons).
    pub degraded: bool,
}

impl HierarchicalCkpt {
    /// The paper-shaped default: local snapshot every 2 iterations,
    /// global every 6, buddies across racks, degraded mode on.
    pub fn paper_default() -> HierarchicalCkpt {
        HierarchicalCkpt {
            local_interval: 2,
            global_factor: 3,
            buddy: BuddyPlacement::PartnerRack,
            degraded: true,
        }
    }

    /// Iterations between global checkpoints.
    pub fn global_interval(&self) -> u32 {
        self.local_interval * self.global_factor
    }
}

/// Where a rank's buddy checkpoint copy is placed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BuddyPlacement {
    /// The next node within the same rack — cheap, but a rack-level
    /// fault takes the copy down with the original.
    SameRack,
    /// The same position in the partner (next) rack — survives a whole
    /// rack dying, at cross-domain copy cost.
    PartnerRack,
}

impl BuddyPlacement {
    /// The node holding `node`'s buddy copy under `topo`. Degenerate
    /// domains fall back gracefully: a one-rack cluster has no partner
    /// rack, so `PartnerRack` degrades to the same-rack neighbour, and
    /// a one-node rack has no buddy at all (returns `node` itself —
    /// restore impossible if it dies).
    pub fn buddy_of(&self, topo: &DomainTopology, node: usize) -> usize {
        let rack = topo.rack_of(node);
        let home = topo.nodes_in(simcore::fault::DomainScope::Rack(rack));
        let idx = home.iter().position(|&n| n == node).expect("node is in its rack");
        if *self == BuddyPlacement::PartnerRack {
            let partner = topo.partner_rack(rack);
            if partner != rack {
                let target = topo.nodes_in(simcore::fault::DomainScope::Rack(partner));
                return target[idx % target.len()];
            }
        }
        home[(idx + 1) % home.len()]
    }

    fn label(&self) -> &'static str {
        match self {
            BuddyPlacement::SameRack => "srack",
            BuddyPlacement::PartnerRack => "xrack",
        }
    }
}

impl RecoveryPolicy {
    /// Display label for figure output.
    pub fn label(&self) -> String {
        match self {
            RecoveryPolicy::Abort => "abort".to_string(),
            RecoveryPolicy::ShrinkAndRedo => "shrink-redo".to_string(),
            RecoveryPolicy::CheckpointRestart { interval } => format!("ckpt-{interval}"),
            RecoveryPolicy::Hierarchical(h) => format!(
                "hier-{}x{}-{}-{}",
                h.local_interval,
                h.global_factor,
                h.buddy.label(),
                if h.degraded { "deg" } else { "abt" }
            ),
        }
    }

    /// The longest rollback a single failure can force under this
    /// policy, in iterations (termination-bound input).
    pub fn max_rollback(&self) -> u32 {
        match self {
            RecoveryPolicy::Abort => 0,
            RecoveryPolicy::ShrinkAndRedo => 1,
            RecoveryPolicy::CheckpointRestart { interval } => *interval,
            RecoveryPolicy::Hierarchical(h) => h.global_interval(),
        }
    }
}

/// Time models for the recovery machinery itself.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryCosts {
    /// Writing one rank's checkpoint (charged to every rank at each
    /// checkpoint barrier).
    pub ckpt_write: Cycles,
    /// Restoring one rank's state from the checkpoint after a rollback.
    pub ckpt_restore: Cycles,
    /// Rebuilding the communicator + redistributing data after a shrink
    /// (charged once per failure to every survivor).
    pub rebuild: Cycles,
    /// The *blocking* part of an asynchronous local snapshot: the
    /// copy-on-write fork of the rank's state. Everything after it
    /// overlaps compute.
    pub local_snapshot: Cycles,
    /// Snapshot initiation → the local copy is durable on node-local
    /// storage (asynchronous drain; commit time, not charged to the
    /// critical path).
    pub local_drain: Cycles,
    /// Local commit → the buddy copy is durable in the partner failure
    /// domain (asynchronous RDMA push).
    pub buddy_copy: Cycles,
    /// Snapshot initiation → the rank's global copy is durable on the
    /// parallel file system (asynchronous; much slower than the
    /// node-local path).
    pub global_drain: Cycles,
}

impl Default for RecoveryCosts {
    fn default() -> Self {
        RecoveryCosts {
            // ~64 MiB of rank state at ~25 ns/KiB to the burst buffer.
            ckpt_write: Cycles::from_ns(25 * 64 * 1024),
            ckpt_restore: Cycles::from_ns(25 * 64 * 1024),
            rebuild: Cycles::from_ms(5),
            // CoW fork: page-table copy + write-protect, not the data.
            local_snapshot: Cycles::from_us(150),
            // ~64 MiB to node-local NVMe in the background.
            local_drain: Cycles::from_ms(2),
            // ~64 MiB over the fabric to the buddy domain.
            buddy_copy: Cycles::from_ms(12),
            // ~64 MiB to the shared parallel FS under contention.
            global_drain: Cycles::from_ms(40),
        }
    }
}

/// What happened during one resilient run.
#[derive(Clone, Debug)]
pub struct RecoveryReport {
    /// Job start to the last survivor's finish.
    pub time: Cycles,
    /// Rank failures the job absorbed.
    pub failures: u32,
    /// Iterations executed more than once (redo / replay).
    pub redone_iters: u32,
    /// Checkpoints written.
    pub checkpoints: u32,
    /// For the first failure: detector firing to cluster-level
    /// confirmation (heartbeat sweep), the paper-style detection
    /// latency.
    pub detection_latency: Option<Cycles>,
    /// Ranks still alive at completion.
    pub survivors: usize,
    /// Total ranks removed across all failure events (≥ `failures`
    /// under correlated faults: one detection window can lose many).
    pub ranks_lost: u32,
    /// Asynchronous local snapshots initiated (hierarchical only).
    pub local_ckpts: u32,
    /// Global (parallel-FS) checkpoints initiated (hierarchical only).
    pub global_ckpts: u32,
    /// Rollbacks served from buddy copies (hierarchical only).
    pub buddy_restores: u32,
    /// Rollbacks that had to fall back to a global checkpoint
    /// (hierarchical only).
    pub global_restores: u32,
    /// Main-loop passes executed (iterations + failure handling); the
    /// termination proptest bounds this.
    pub steps: u32,
}

impl RecoveryReport {
    fn start(p0: usize) -> RecoveryReport {
        RecoveryReport {
            time: Cycles::ZERO,
            failures: 0,
            redone_iters: 0,
            checkpoints: 0,
            detection_latency: None,
            survivors: p0,
            ranks_lost: 0,
            local_ckpts: 0,
            global_ckpts: 0,
            buddy_restores: 0,
            global_restores: 0,
            steps: 0,
        }
    }
}

/// Confirm a suspected death at cluster scope. The observer's failure
/// detector fired at `suspected_at` (straggler timeout or retry-budget
/// exhaustion); the job runtime then sweeps the suspect with the same
/// heartbeat machinery the LWK uses for its proxy
/// ([`HeartbeatMonitor::paper_default`]: misses are declared after a
/// bounded number of unanswered probes), so confirmation lags suspicion
/// by at most [`HeartbeatMonitor::detection_bound`].
fn confirm_death(suspected_at: Cycles) -> Cycles {
    let mut hb = HeartbeatMonitor::paper_default();
    let mut t = suspected_at;
    loop {
        // A dead node never answers the probe.
        let _ = hb.poll(t);
        if hb.is_dead() {
            break;
        }
        t += hb.interval;
    }
    debug_assert!(t - suspected_at <= hb.detection_bound());
    t
}

/// Run `app` on the whole cluster under `policy`, surviving node
/// failures. `Ok` means the job completed (possibly shrunk, possibly
/// with replayed iterations); `Err` is the [`RecoveryPolicy::Abort`]
/// outcome — a typed failure, never a hang — also returned if every
/// rank dies.
pub fn run_resilient(
    cluster: &mut Cluster,
    app: &MiniApp,
    policy: RecoveryPolicy,
    costs: &RecoveryCosts,
    start: Cycles,
) -> Result<RecoveryReport, RankFailure> {
    if let RecoveryPolicy::Hierarchical(h) = policy {
        return run_hierarchical(cluster, app, h, costs, start);
    }
    cluster.set_mem_intensity(app.mem_intensity);
    let p0 = cluster.cfg.nodes as usize;
    // rank -> surviving fabric node. Starts as the identity.
    let mut ranks: Vec<usize> = (0..p0).collect();
    let mut clocks = vec![start; p0];
    let mut quantum = app.thread_quantum(p0);
    let mut iter: u32 = 0;
    // Last durable checkpoint: (iteration, per-rank clocks at the
    // barrier). Iteration 0 is implicitly checkpointed (initial state).
    let mut ckpt: Option<(u32, Vec<Cycles>)> = match policy {
        RecoveryPolicy::CheckpointRestart { .. } => Some((0, clocks.clone())),
        _ => None,
    };
    let mut report = RecoveryReport::start(p0);
    while iter < app.iterations {
        report.steps += 1;
        if let RecoveryPolicy::CheckpointRestart { interval } = policy {
            debug_assert!(interval > 0, "checkpoint interval must be positive");
            if iter > 0 && iter % interval == 0 && ckpt.as_ref().is_some_and(|c| c.0 != iter) {
                for c in &mut clocks {
                    *c += costs.ckpt_write;
                }
                ckpt = Some((iter, clocks.clone()));
                report.checkpoints += 1;
            }
        }
        let pre = clocks.clone();
        let res = cluster.step_miniapp(app, quantum, &ranks, &mut clocks);
        match res {
            Ok(()) => iter += 1,
            Err(f) => {
                report.failures += 1;
                report.ranks_lost += 1;
                let dead_rank = f.rank;
                let dead_node = ranks[dead_rank];
                let confirmed = confirm_death(f.detected_at);
                if report.detection_latency.is_none() {
                    // Paper-style metric: actual death (if the fabric
                    // knows it) to cluster-level confirmation.
                    let died = cluster
                        .fabric
                        .node_dead_at(dead_node)
                        .unwrap_or(f.detected_at);
                    report.detection_latency = Some(confirmed - died);
                }
                // Tear the dead node itself down (proxy-death recovery
                // on McKernel; fail-stop marking either way).
                cluster.host.nodes[dead_node].crash_node(confirmed);
                if policy == RecoveryPolicy::Abort {
                    return Err(f);
                }
                ranks.remove(dead_rank);
                report.survivors = ranks.len();
                if ranks.is_empty() {
                    return Err(f);
                }
                quantum = app.thread_quantum_shrunk(p0, ranks.len());
                match policy {
                    RecoveryPolicy::Abort => unreachable!("handled above"),
                    RecoveryPolicy::Hierarchical(_) => unreachable!("dispatched above"),
                    RecoveryPolicy::ShrinkAndRedo => {
                        // Survivors resume from the iteration start,
                        // paying confirmation + communicator rebuild,
                        // then redo the interrupted iteration.
                        clocks = pre;
                        clocks.remove(dead_rank);
                        for c in &mut clocks {
                            *c = (*c).max(confirmed) + costs.rebuild;
                        }
                        report.redone_iters += 1;
                    }
                    RecoveryPolicy::CheckpointRestart { .. } => {
                        let (ck_iter, ck_clocks) =
                            ckpt.clone().expect("seeded at job start");
                        let mut rolled = ck_clocks;
                        rolled.remove(dead_rank);
                        for c in &mut rolled {
                            *c = (*c).max(confirmed) + costs.rebuild + costs.ckpt_restore;
                        }
                        clocks = rolled;
                        report.redone_iters += iter - ck_iter;
                        iter = ck_iter;
                        // Re-base the checkpoint on the shrunk
                        // communicator so a second failure rolls back
                        // consistently.
                        ckpt = Some((ck_iter, clocks.clone()));
                    }
                }
            }
        }
    }
    report.time = *clocks.iter().max().expect("survivors exist") - start;
    Ok(report)
}

/// A local snapshot in flight or committed. Clock vectors are indexed
/// by communicator rank; `nodes` records the rank→node map at snapshot
/// time so durability can be judged against node death times.
#[derive(Clone, Debug)]
struct LocalSnap {
    iter: u32,
    clocks: Vec<Cycles>,
    nodes: Vec<usize>,
    /// Per rank: when its buddy copy became durable in the partner
    /// domain (initiation + local drain + buddy push).
    buddy_commit: Vec<Cycles>,
}

/// A global checkpoint on the parallel file system.
#[derive(Clone, Debug)]
struct GlobalSnap {
    iter: u32,
    clocks: Vec<Cycles>,
    nodes: Vec<usize>,
    /// Per rank: when its PFS copy became durable.
    commit: Vec<Cycles>,
}

/// Asynchronous hierarchical checkpointing with degraded-mode recovery
/// (see the module docs and [`HierarchicalCkpt`]). Invariants:
///
/// * only [`RecoveryCosts::local_snapshot`] blocks the critical path at
///   a snapshot — drains and buddy copies *commit* later but cost no
///   compute time;
/// * a failure is widened into the full [`FailureBatch`] dead by the
///   confirmation sweep, and the communicator shrinks **once** for the
///   whole batch;
/// * buddy restore is legal iff every dead rank's buddy copy committed
///   *before its node died* and the buddy node survived the batch;
///   otherwise the newest globally-durable checkpoint wins (iteration
///   0's implicit checkpoint is always durable, so a restore target
///   always exists).
fn run_hierarchical(
    cluster: &mut Cluster,
    app: &MiniApp,
    h: HierarchicalCkpt,
    costs: &RecoveryCosts,
    start: Cycles,
) -> Result<RecoveryReport, RankFailure> {
    assert!(h.local_interval > 0 && h.global_factor > 0);
    cluster.set_mem_intensity(app.mem_intensity);
    let topo = cluster.topo;
    let p0 = cluster.cfg.nodes as usize;
    let mut ranks: Vec<usize> = (0..p0).collect();
    let mut clocks = vec![start; p0];
    let mut quantum = app.thread_quantum(p0);
    let mut iter: u32 = 0;
    // Iteration 0 is implicitly a durable global checkpoint.
    let mut globals: Vec<GlobalSnap> = vec![GlobalSnap {
        iter: 0,
        clocks: clocks.clone(),
        nodes: ranks.clone(),
        commit: vec![start; p0],
    }];
    let mut local: Option<LocalSnap> = None;
    let mut last_ckpt_iter: u32 = 0;
    // Nodes removed from the job (fabric-dead or declared unreachable)
    // — ineligible as buddy restore sources.
    let mut gone = vec![false; p0];
    let mut report = RecoveryReport::start(p0);
    while iter < app.iterations {
        report.steps += 1;
        if iter > 0 && iter % h.local_interval == 0 && last_ckpt_iter != iter {
            // Only the CoW fork blocks; drains overlap compute.
            for c in &mut clocks {
                *c += costs.local_snapshot;
            }
            let buddy_commit: Vec<Cycles> = clocks
                .iter()
                .map(|&c| c + costs.local_drain + costs.buddy_copy)
                .collect();
            local = Some(LocalSnap {
                iter,
                clocks: clocks.clone(),
                nodes: ranks.clone(),
                buddy_commit,
            });
            report.local_ckpts += 1;
            if iter % h.global_interval() == 0 {
                globals.push(GlobalSnap {
                    iter,
                    clocks: clocks.clone(),
                    nodes: ranks.clone(),
                    commit: clocks.iter().map(|&c| c + costs.global_drain).collect(),
                });
                report.global_ckpts += 1;
            }
            last_ckpt_iter = iter;
        }
        let res = cluster.step_miniapp(app, quantum, &ranks, &mut clocks);
        match res {
            Ok(()) => iter += 1,
            Err(f) => {
                report.failures += 1;
                let confirmed = confirm_death(f.detected_at);
                if report.detection_latency.is_none() {
                    let died = cluster
                        .fabric
                        .node_dead_at(ranks[f.rank])
                        .unwrap_or(f.detected_at);
                    report.detection_latency = Some(confirmed - died);
                }
                // Widen the primary failure into the batch dead by the
                // confirmation sweep — a correlated event kills many
                // ranks in one detection window.
                let batch = FailureBatch::new(
                    f,
                    (0..ranks.len())
                        .filter(|&r| cluster.fabric.is_dead(ranks[r], confirmed))
                        .collect(),
                );
                report.ranks_lost += batch.len() as u32;
                for &r in &batch.ranks {
                    cluster.host.nodes[ranks[r]].crash_node(confirmed);
                    gone[ranks[r]] = true;
                }
                if !h.degraded {
                    return Err(f);
                }
                // When a node actually died (vs. an unreachable-peer
                // declaration), judge checkpoint durability against the
                // real death instant, not the later confirmation.
                let death_of = |node: usize| -> Cycles {
                    cluster.fabric.node_dead_at(node).unwrap_or(confirmed)
                };
                // Buddy restore: every dead rank's copy must have
                // committed before its node died, onto a buddy that is
                // not itself part of the batch.
                let buddy_ok = local.as_ref().is_some_and(|s| {
                    batch.ranks.iter().all(|&r| {
                        let node = s.nodes[r];
                        let buddy = h.buddy.buddy_of(&topo, node);
                        buddy != node
                            && !gone[buddy]
                            && !cluster.fabric.is_dead(buddy, confirmed)
                            && s.buddy_commit[r] <= death_of(node)
                    })
                });
                // Shrink once for the whole batch.
                for &r in batch.ranks.iter().rev() {
                    ranks.remove(r);
                }
                report.survivors = ranks.len();
                if ranks.is_empty() {
                    return Err(f);
                }
                quantum = app.thread_quantum_shrunk(p0, ranks.len());
                let (snap_iter, snap_clocks, restore_cost) = if buddy_ok {
                    let s = local.as_ref().expect("buddy_ok implies a local snapshot");
                    report.buddy_restores += 1;
                    (s.iter, s.clocks.clone(), costs.ckpt_restore)
                } else {
                    // Newest global whose dead-rank copies were durable
                    // before those nodes died. Iteration 0 always
                    // qualifies (committed at job start).
                    let g = globals
                        .iter()
                        .rev()
                        .find(|g| {
                            batch
                                .ranks
                                .iter()
                                .all(|&r| g.commit[r] <= death_of(g.nodes[r]))
                        })
                        .expect("iteration 0 is always durable");
                    report.global_restores += 1;
                    // A PFS restore re-reads every rank's state and
                    // re-stages it: restore + the write-back of the
                    // working copy (same asymmetric cost the blocking
                    // policy pays).
                    (g.iter, g.clocks.clone(), costs.ckpt_restore)
                };
                let mut rolled = snap_clocks;
                for &r in batch.ranks.iter().rev() {
                    rolled.remove(r);
                }
                for c in &mut rolled {
                    *c = (*c).max(confirmed) + costs.rebuild + restore_cost;
                }
                clocks = rolled;
                report.redone_iters += iter - snap_iter;
                iter = snap_iter;
                last_ckpt_iter = snap_iter;
                // Re-base both checkpoint levels onto the shrunk
                // communicator so the next failure rolls back
                // consistently (the restored state *is* the new
                // durable baseline).
                globals = vec![GlobalSnap {
                    iter: snap_iter,
                    clocks: clocks.clone(),
                    nodes: ranks.clone(),
                    commit: clocks.clone(),
                }];
                local = Some(LocalSnap {
                    iter: snap_iter,
                    clocks: clocks.clone(),
                    nodes: ranks.clone(),
                    // The restored image is durable everywhere already.
                    buddy_commit: clocks.clone(),
                });
            }
        }
    }
    report.time = *clocks.iter().max().expect("survivors exist") - start;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ClusterConfig, OsVariant};
    use netsim::reliable::CrashTrigger;

    fn cluster(os: OsVariant, nodes: u32, crash_at: Option<Cycles>) -> Cluster {
        let mut cfg = ClusterConfig::paper(os).with_nodes(nodes).with_seed(99);
        cfg.horizon_secs = 30;
        if let Some(at) = crash_at {
            cfg = cfg.with_node_crash(1, CrashTrigger::AtTime(at));
        }
        Cluster::build(cfg)
    }

    fn short_app() -> MiniApp {
        MiniApp {
            iterations: 8,
            ..MiniApp::hpccg()
        }
    }

    #[test]
    fn fault_free_run_matches_run_miniapp_exactly() {
        let app = short_app();
        let plain = cluster(OsVariant::McKernel, 4, None)
            .run_miniapp(&app, Cycles::from_ms(1))
            .expect("fault-free");
        let mut c = cluster(OsVariant::McKernel, 4, None);
        let rep = run_resilient(
            &mut c,
            &app,
            RecoveryPolicy::ShrinkAndRedo,
            &RecoveryCosts::default(),
            Cycles::from_ms(1),
        )
        .expect("fault-free");
        assert_eq!(rep.time, plain, "resilience wrapper must add zero cost");
        assert_eq!(rep.failures, 0);
        assert_eq!(rep.redone_iters, 0);
        assert_eq!(rep.survivors, 4);
    }

    #[test]
    fn abort_is_a_typed_error_with_bounded_detection() {
        let crash = Cycles::from_ms(400);
        let mut c = cluster(OsVariant::LinuxCgroup, 4, Some(crash));
        let err = run_resilient(
            &mut c,
            &short_app(),
            RecoveryPolicy::Abort,
            &RecoveryCosts::default(),
            Cycles::from_ms(1),
        )
        .expect_err("node 1 dies mid-run");
        assert_eq!(err.rank, 1);
        // Detection is communication-driven, so it is bounded by one BSP
        // iteration (the next time anyone talks to the dead rank,
        // ~330 ms for HPC-CG) plus the straggler timeout and the full
        // retry budget — never unbounded, never a hang.
        let one_iter = short_app().thread_quantum(4) + Cycles::from_ms(50);
        let budget = c.fabric.policy().detection_budget();
        assert!(
            err.detected_at <= crash + one_iter + budget,
            "{} too late",
            err.detected_at
        );
    }

    #[test]
    fn shrink_and_redo_completes_on_survivors() {
        let crash = Cycles::from_ms(400);
        let mut c = cluster(OsVariant::McKernel, 4, Some(crash));
        let rep = run_resilient(
            &mut c,
            &short_app(),
            RecoveryPolicy::ShrinkAndRedo,
            &RecoveryCosts::default(),
            Cycles::from_ms(1),
        )
        .expect("survivors finish the job");
        assert_eq!(rep.failures, 1);
        assert_eq!(rep.survivors, 3);
        assert!(rep.redone_iters >= 1);
        assert!(rep.detection_latency.is_some());
        // The dead node was locally torn down too.
        assert!(!c.host.nodes[1].alive);
        // Weak scaling on 3 survivors re-runs at 4/3 work: slower than
        // the fault-free run but it terminates.
        let plain = cluster(OsVariant::McKernel, 4, None)
            .run_miniapp(&short_app(), Cycles::from_ms(1))
            .expect("fault-free");
        assert!(rep.time > plain);
    }

    #[test]
    fn checkpoint_restart_replays_from_the_last_snapshot() {
        let crash = Cycles::from_ms(900);
        let mut c = cluster(OsVariant::LinuxCgroup, 4, Some(crash));
        let rep = run_resilient(
            &mut c,
            &short_app(),
            RecoveryPolicy::CheckpointRestart { interval: 2 },
            &RecoveryCosts::default(),
            Cycles::from_ms(1),
        )
        .expect("survivors replay and finish");
        assert_eq!(rep.failures, 1);
        assert!(rep.checkpoints >= 1);
        // Rollback replays at most `interval` iterations per failure.
        assert!(rep.redone_iters <= 2 * rep.failures);
        assert_eq!(rep.survivors, 3);
    }

    fn domain_cluster(
        os: OsVariant,
        nodes: u32,
        nodes_per_rack: u32,
        event: Option<simcore::fault::DomainEvent>,
    ) -> Cluster {
        let mut cfg = ClusterConfig::paper(os)
            .with_nodes(nodes)
            .with_seed(99)
            .with_domains(nodes_per_rack, 2);
        cfg.horizon_secs = 30;
        if let Some(ev) = event {
            cfg = cfg.with_domain_event(ev);
        }
        Cluster::build(cfg)
    }

    fn rack_kill(rack: usize, at: Cycles) -> simcore::fault::DomainEvent {
        simcore::fault::DomainEvent {
            at,
            scope: simcore::fault::DomainScope::Rack(rack),
            kind: simcore::fault::DomainEventKind::FailStop,
        }
    }

    #[test]
    fn buddy_placement_maps_into_the_right_domain() {
        let topo = DomainTopology::new(8, 4, 2);
        for n in 0..8 {
            let same = BuddyPlacement::SameRack.buddy_of(&topo, n);
            assert_eq!(topo.rack_of(same), topo.rack_of(n), "same-rack stays home");
            assert_ne!(same, n);
            let cross = BuddyPlacement::PartnerRack.buddy_of(&topo, n);
            assert_ne!(topo.rack_of(cross), topo.rack_of(n), "cross-rack leaves home");
        }
    }

    #[test]
    fn hierarchical_fault_free_overhead_is_below_blocking() {
        // The async scheme's blocking cost per snapshot (CoW fork) is a
        // fraction of the blocking-coordinated write, at the *same*
        // checkpoint cadence.
        let app = MiniApp { iterations: 12, ..MiniApp::hpccg() };
        let plain = cluster(OsVariant::McKernel, 4, None)
            .run_miniapp(&app, Cycles::from_ms(1))
            .expect("fault-free");
        let run = |policy| {
            let mut c = cluster(OsVariant::McKernel, 4, None);
            run_resilient(&mut c, &app, policy, &RecoveryCosts::default(), Cycles::from_ms(1))
                .expect("fault-free")
        };
        let hier = run(RecoveryPolicy::Hierarchical(HierarchicalCkpt {
            local_interval: 2,
            global_factor: 3,
            buddy: BuddyPlacement::PartnerRack,
            degraded: true,
        }));
        let blocking = run(RecoveryPolicy::CheckpointRestart { interval: 2 });
        assert_eq!(hier.failures, 0);
        assert_eq!(hier.local_ckpts, 5, "iters 2,4,6,8,10");
        assert_eq!(hier.global_ckpts, 1, "iter 6");
        assert!(hier.time > plain, "snapshots are not free");
        assert!(
            hier.time - plain < blocking.time - plain,
            "async overhead {} must undercut blocking {}",
            (hier.time - plain).as_secs_f64(),
            (blocking.time - plain).as_secs_f64()
        );
    }

    #[test]
    fn node_death_restores_from_buddy_not_global() {
        // One node dies well after a local snapshot's buddy copy
        // committed: rollback must come from the buddy, bounded by the
        // local interval.
        let mut c = cluster(OsVariant::McKernel, 4, Some(Cycles::from_ms(1400)));
        let app = MiniApp { iterations: 12, ..MiniApp::hpccg() };
        let rep = run_resilient(
            &mut c,
            &app,
            RecoveryPolicy::Hierarchical(HierarchicalCkpt::paper_default()),
            &RecoveryCosts::default(),
            Cycles::from_ms(1),
        )
        .expect("degraded mode completes");
        assert_eq!(rep.failures, 1);
        assert_eq!(rep.ranks_lost, 1);
        assert_eq!(rep.buddy_restores, 1);
        assert_eq!(rep.global_restores, 0);
        assert!(
            rep.redone_iters <= HierarchicalCkpt::paper_default().local_interval,
            "buddy rollback is bounded by the local interval, redid {}",
            rep.redone_iters
        );
        assert_eq!(rep.survivors, 3);
    }

    #[test]
    fn rack_death_with_same_rack_buddies_falls_back_to_global() {
        // 8 nodes in 2 racks of 4. Rack 1 dies: same-rack buddies died
        // with their originals, so recovery must use the last global
        // checkpoint; cross-rack buddies survive and serve the restore.
        let app = MiniApp { iterations: 12, ..MiniApp::hpccg() };
        let kill = rack_kill(1, Cycles::from_ms(1600));
        let run = |buddy| {
            let mut c = domain_cluster(OsVariant::McKernel, 8, 4, Some(kill));
            run_resilient(
                &mut c,
                &app,
                RecoveryPolicy::Hierarchical(HierarchicalCkpt {
                    buddy,
                    ..HierarchicalCkpt::paper_default()
                }),
                &RecoveryCosts::default(),
                Cycles::from_ms(1),
            )
            .expect("degraded mode completes either way")
        };
        let same = run(BuddyPlacement::SameRack);
        assert_eq!(same.ranks_lost, 4, "the whole rack went in one batch");
        assert_eq!(same.failures, 1, "one detection window, one shrink");
        assert_eq!(same.global_restores, 1);
        assert_eq!(same.buddy_restores, 0);
        let cross = run(BuddyPlacement::PartnerRack);
        assert_eq!(cross.ranks_lost, 4);
        assert_eq!(cross.buddy_restores, 1, "partner-rack copies survived");
        assert_eq!(cross.global_restores, 0);
        assert!(
            cross.redone_iters <= same.redone_iters,
            "cross-rack buddies can only shorten the rollback"
        );
        assert_eq!(cross.survivors, 4);
    }

    #[test]
    fn degraded_mode_completes_where_abort_mode_loses() {
        let app = MiniApp { iterations: 12, ..MiniApp::hpccg() };
        let kill = rack_kill(1, Cycles::from_ms(1600));
        let abort = {
            let mut c = domain_cluster(OsVariant::McKernel, 8, 4, Some(kill));
            run_resilient(
                &mut c,
                &app,
                RecoveryPolicy::Hierarchical(HierarchicalCkpt {
                    degraded: false,
                    ..HierarchicalCkpt::paper_default()
                }),
                &RecoveryCosts::default(),
                Cycles::from_ms(1),
            )
        };
        assert!(abort.is_err(), "abort mode surfaces the failure");
        let mut c = domain_cluster(OsVariant::McKernel, 8, 4, Some(kill));
        let deg = run_resilient(
            &mut c,
            &app,
            RecoveryPolicy::Hierarchical(HierarchicalCkpt::paper_default()),
            &RecoveryCosts::default(),
            Cycles::from_ms(1),
        )
        .expect("survivors finish at half width");
        assert_eq!(deg.survivors, 4);
        // The dead rack was torn down; the surviving rack was not.
        assert!((4..8).all(|n| !c.host.nodes[n].alive));
        assert!((0..4).all(|n| c.host.nodes[n].alive));
    }

    #[test]
    fn batch_loss_shrinks_once_where_blocking_pays_per_victim() {
        // The blocking-coordinated policy discovers a rack kill one
        // victim at a time (a rollback per rank); the hierarchical
        // policy drains the whole batch in one detection window.
        let app = MiniApp { iterations: 12, ..MiniApp::hpccg() };
        let kill = rack_kill(1, Cycles::from_ms(1600));
        let mut c = domain_cluster(OsVariant::McKernel, 8, 4, Some(kill));
        let blocking = run_resilient(
            &mut c,
            &app,
            RecoveryPolicy::CheckpointRestart { interval: 6 },
            &RecoveryCosts::default(),
            Cycles::from_ms(1),
        )
        .expect("blocking policy also completes");
        assert_eq!(blocking.ranks_lost, 4);
        assert!(blocking.failures >= 2, "per-victim detection windows");
        let mut c = domain_cluster(OsVariant::McKernel, 8, 4, Some(kill));
        let hier = run_resilient(
            &mut c,
            &app,
            RecoveryPolicy::Hierarchical(HierarchicalCkpt::paper_default()),
            &RecoveryCosts::default(),
            Cycles::from_ms(1),
        )
        .expect("hierarchical completes");
        assert_eq!(hier.failures, 1);
        assert!(
            hier.redone_iters < blocking.redone_iters,
            "buddy restore ({}) must roll back strictly less than blocking ({})",
            hier.redone_iters,
            blocking.redone_iters
        );
    }

    #[test]
    fn every_policy_terminates_under_in_flight_crash() {
        // AfterSends trigger: the node dies mid-protocol rather than at
        // a tidy time boundary.
        for policy in [
            RecoveryPolicy::Abort,
            RecoveryPolicy::ShrinkAndRedo,
            RecoveryPolicy::CheckpointRestart { interval: 3 },
            RecoveryPolicy::Hierarchical(HierarchicalCkpt::paper_default()),
        ] {
            let mut cfg = ClusterConfig::paper(OsVariant::LinuxCgroup)
                .with_nodes(4)
                .with_seed(7);
            cfg.horizon_secs = 30;
            cfg = cfg.with_node_crash(2, CrashTrigger::AfterSends(40));
            let mut c = Cluster::build(cfg);
            let res = run_resilient(
                &mut c,
                &short_app(),
                policy,
                &RecoveryCosts::default(),
                Cycles::from_ms(1),
            );
            match (policy, res) {
                (RecoveryPolicy::Abort, Err(f)) => assert_eq!(f.rank, 2),
                (RecoveryPolicy::Abort, Ok(_)) => panic!("abort must surface the failure"),
                (_, Ok(rep)) => {
                    assert_eq!(rep.survivors, 3);
                    assert_eq!(rep.failures, 1);
                }
                (p, Err(f)) => panic!("{p:?} must complete, got {f}"),
            }
        }
    }
}
