//! # cluster — composition and experiment harness
//!
//! Builds simulated compute nodes in each of the paper's configurations
//! and runs the evaluation workloads on them:
//!
//! * [`config`] — the three OS variants (Linux+cgroup,
//!   Linux+cgroup+isolcpus, IHK/McKernel) and co-location settings;
//! * [`node`] — one node's runtime: hardware + Linux (+ IHK/McKernel
//!   partition, proxy process, verbs context); job setup walks the real
//!   protocols: IHK reservation, LWK boot, proxy spawn, offloaded
//!   `open()` of the uverbs device *through the unified address space*,
//!   and the Fig. 4 device-file mmap of the doorbell page;
//! * [`host`] — the [`mpisim::HostModel`] implementation mapping MPI
//!   ranks onto node runtimes (1 rank per node, 8 OpenMP threads);
//! * [`sim`] — the [`sim::Cluster`]: fabric + nodes + workload entry
//!   points (FWQ, OSU collectives, mini-apps);
//! * [`recovery`] — job-level recovery over node failures (abort /
//!   shrink-and-redo / checkpoint-restart) on top of the typed
//!   detection the fabric and MPI layers provide;
//! * [`experiment`] — deterministic seeding, parallel repetition runner
//!   (the [`simcore::par`] bounded work-stealing pool), result tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod experiment;
pub mod host;
pub mod node;
pub mod pipeline;
pub mod recovery;
pub mod sim;
pub mod tenancy;

pub use config::{ClusterConfig, NodeCrash, OsVariant};
pub use experiment::{parallel_runs, RunStats};
pub use node::NodeError;
pub use recovery::{
    run_resilient, BuddyPlacement, HierarchicalCkpt, RecoveryCosts, RecoveryPolicy, RecoveryReport,
};
pub use sim::Cluster;
pub use tenancy::{run_tenancy, JobSpec, TenancyConfig, TenancyReport};
