//! Experiment configurations — the paper's comparison matrix.

use hwmodel::cpu::CoreId;
use netsim::reliable::CrashTrigger;
use simcore::fault::{
    DomainEvent, DomainFaultConfig, DomainTopology, FaultConfig, LinkFaultConfig,
};

/// Which OS stack runs the HPC workload (Sec. IV-A).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OsVariant {
    /// RHEL Linux; the application is pinned to NUMA 1 cores with a
    /// cgroup cpuset, nothing else is restricted.
    LinuxCgroup,
    /// As above, plus `isolcpus=` covering the application cores, so
    /// other user tasks cannot be scheduled there.
    LinuxCgroupIsolcpus,
    /// IHK/McKernel: LWK on 9 NUMA-1 cores + reserved NUMA-1 memory; the
    /// remaining NUMA-1 core runs the proxy process; Linux keeps NUMA 0.
    McKernel,
}

impl OsVariant {
    /// Display label as used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            OsVariant::LinuxCgroup => "Linux+cgroup",
            OsVariant::LinuxCgroupIsolcpus => "Linux+cgroup+isolcpus",
            OsVariant::McKernel => "McKernel",
        }
    }

    /// The three paper configurations.
    pub fn all() -> [OsVariant; 3] {
        [
            OsVariant::LinuxCgroup,
            OsVariant::LinuxCgroupIsolcpus,
            OsVariant::McKernel,
        ]
    }
}

/// Full cluster configuration for one run.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Node count.
    pub nodes: u32,
    /// OS stack under test.
    pub os: OsVariant,
    /// Whether the Hadoop in-situ workload is co-located.
    pub insitu: bool,
    /// Memory intensity of the HPC workload (interference model input).
    pub mem_intensity: f64,
    /// Horizon for noise/load pre-generation (must exceed the run).
    pub horizon_secs: u64,
    /// Master seed.
    pub seed: u64,
    /// The paper's future-work fix (Sec. VI): MPI pre-registers its
    /// internal buffers at init so registration never offloads on the
    /// critical path.
    pub mpi_hybrid_aware: bool,
    /// Fault injection on the offload path (off by default, so every
    /// existing figure runs unchanged; any experiment can turn it on).
    pub faults: FaultConfig,
    /// Fault injection on the fabric links (off by default: the reliable
    /// layer is then an exact passthrough that draws no randomness).
    pub link_faults: LinkFaultConfig,
    /// An armed node-crash fault, if any (fail-stop at a configured
    /// simulated time or in-flight send depth).
    pub node_crash: Option<NodeCrash>,
    /// Failure-domain layout: nodes per rack (ToR switch / PDU scope).
    /// Pure metadata until domain faults or events are armed.
    pub nodes_per_rack: u32,
    /// Failure-domain layout: racks per pod (aggregation switch scope).
    pub racks_per_pod: u32,
    /// Correlated domain-fault injection (off by default: no per-domain
    /// RNG streams are derived and nothing is injected).
    pub domain_faults: DomainFaultConfig,
    /// Deterministic domain events injected on top of (or without) the
    /// stochastic plan — "kill rack 1 at t=X". RNG-free.
    pub domain_events: Vec<DomainEvent>,
}

/// A configured fail-stop node crash.
#[derive(Clone, Copy, Debug)]
pub struct NodeCrash {
    /// Which node dies.
    pub node: usize,
    /// When it dies.
    pub trigger: CrashTrigger,
}

impl ClusterConfig {
    /// A paper-shaped default: 64 nodes, no in-situ load.
    pub fn paper(os: OsVariant) -> ClusterConfig {
        ClusterConfig {
            nodes: 64,
            os,
            insitu: false,
            mem_intensity: 0.6,
            horizon_secs: 120,
            seed: 0xC0FFEE,
            mpi_hybrid_aware: false,
            faults: FaultConfig::off(),
            link_faults: LinkFaultConfig::off(),
            node_crash: None,
            nodes_per_rack: 16,
            racks_per_pod: 2,
            domain_faults: DomainFaultConfig::off(),
            domain_events: Vec::new(),
        }
    }

    /// Same config with a different node count.
    pub fn with_nodes(mut self, n: u32) -> Self {
        self.nodes = n;
        self
    }

    /// Enable the co-located Hadoop workload.
    pub fn with_insitu(mut self) -> Self {
        self.insitu = true;
        self
    }

    /// Change the seed (per repetition).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Run with fault injection on the offload path.
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Run with fault injection on the fabric links.
    pub fn with_link_faults(mut self, link_faults: LinkFaultConfig) -> Self {
        self.link_faults = link_faults;
        self
    }

    /// Arm a fail-stop node crash.
    pub fn with_node_crash(mut self, node: usize, trigger: CrashTrigger) -> Self {
        self.node_crash = Some(NodeCrash { node, trigger });
        self
    }

    /// Set the failure-domain layout (nodes per rack, racks per pod).
    pub fn with_domains(mut self, nodes_per_rack: u32, racks_per_pod: u32) -> Self {
        assert!(nodes_per_rack >= 1 && racks_per_pod >= 1);
        self.nodes_per_rack = nodes_per_rack;
        self.racks_per_pod = racks_per_pod;
        self
    }

    /// Run with stochastic correlated domain faults.
    pub fn with_domain_faults(mut self, domain_faults: DomainFaultConfig) -> Self {
        self.domain_faults = domain_faults;
        self
    }

    /// Inject one deterministic domain event ("kill rack 1 at t=X").
    pub fn with_domain_event(mut self, event: DomainEvent) -> Self {
        self.domain_events.push(event);
        self
    }

    /// The failure-domain layout over this config's node count.
    pub fn topology(&self) -> DomainTopology {
        DomainTopology::new(
            self.nodes as usize,
            self.nodes_per_rack as usize,
            self.racks_per_pod as usize,
        )
    }

    /// Application cores (8 OpenMP threads on NUMA 1).
    pub fn app_cores(&self) -> Vec<CoreId> {
        (10..18).map(CoreId).collect()
    }

    /// LWK partition cores under McKernel (9 NUMA-1 cores).
    pub fn lwk_cores(&self) -> Vec<CoreId> {
        (10..19).map(CoreId).collect()
    }

    /// The proxy / leftover core.
    pub fn proxy_core(&self) -> CoreId {
        CoreId(19)
    }

    /// Cores Linux manages under this variant.
    pub fn linux_cores(&self) -> Vec<CoreId> {
        match self.os {
            OsVariant::McKernel => (0..10).chain(19..20).map(CoreId).collect(),
            _ => (0..20).map(CoreId).collect(),
        }
    }

    /// Cores the Hadoop containers may be scheduled on. cgroup-only:
    /// anywhere Linux schedules ("no restriction on where Hadoop
    /// processes execute"); isolcpus: everything except the isolated
    /// app cores; McKernel: the Linux partition (NUMA 0 + the proxy
    /// core — which is why offloads contend with Hadoop there).
    pub fn hadoop_cores(&self) -> Vec<CoreId> {
        match self.os {
            OsVariant::LinuxCgroup => (0..20).map(CoreId).collect(),
            OsVariant::LinuxCgroupIsolcpus => (0..10).map(CoreId).collect(),
            OsVariant::McKernel => (0..10).chain(19..20).map(CoreId).collect(),
        }
    }

    /// isolcpus boot set.
    pub fn isolcpus(&self) -> Vec<CoreId> {
        match self.os {
            OsVariant::LinuxCgroupIsolcpus => (10..20).map(CoreId).collect(),
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_layout_matches_paper() {
        let cfg = ClusterConfig::paper(OsVariant::McKernel);
        assert_eq!(cfg.app_cores().len(), 8);
        assert_eq!(cfg.lwk_cores().len(), 9, "9 LWK cores in NUMA 1");
        assert_eq!(cfg.proxy_core(), CoreId(19));
        assert_eq!(cfg.linux_cores().len(), 11, "NUMA 0 + proxy core");
        // App cores are inside the LWK partition.
        for c in cfg.app_cores() {
            assert!(cfg.lwk_cores().contains(&c));
        }
    }

    #[test]
    fn hadoop_placement_per_variant() {
        let base = ClusterConfig::paper(OsVariant::LinuxCgroup);
        // cgroup-only: Hadoop may land on the app cores.
        assert!(base.hadoop_cores().contains(&CoreId(10)));
        let iso = ClusterConfig::paper(OsVariant::LinuxCgroupIsolcpus);
        assert!(!iso.hadoop_cores().contains(&CoreId(10)));
        assert_eq!(iso.isolcpus().len(), 10);
        let mck = ClusterConfig::paper(OsVariant::McKernel);
        assert!(!mck.hadoop_cores().contains(&CoreId(10)));
        assert!(
            mck.hadoop_cores().contains(&CoreId(19)),
            "Hadoop can reach the proxy core"
        );
    }

    #[test]
    fn builder_methods() {
        let cfg = ClusterConfig::paper(OsVariant::LinuxCgroup)
            .with_nodes(8)
            .with_insitu()
            .with_seed(7);
        assert_eq!(cfg.nodes, 8);
        assert!(cfg.insitu);
        assert_eq!(cfg.seed, 7);
    }
}
