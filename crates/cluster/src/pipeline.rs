//! Event-driven offload pipeline.
//!
//! [`crate::node::NodeRuntime::offload_syscall`] composes one offload's
//! latency arithmetically, which is exact for a single in-flight request.
//! But the proxy process is *single-threaded* ("it provides execution
//! context on behalf of the application", one context): when several LWK
//! threads offload concurrently, their requests queue at the proxy and
//! service is serialized. This module models that with the discrete-event
//! engine: each request is a chain of events (marshal → IPI → delegator
//! dispatch → proxy wake → service → reply IPI), and the proxy is a
//! shared resource.

use hlwk_core::costs::CostModel;
use simcore::fault::{FaultPlan, MsgFault};
use simcore::{Cycles, EventQueue, PartitionedEngine, SoloWorld, World};

/// Why a burst failed to produce a complete set of latencies.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PipelineError {
    /// An empty burst has no latencies to report.
    EmptyBurst,
    /// Request `index` never completed (its events were lost — e.g. an
    /// injected drop with no retry at this layer).
    Incomplete {
        /// Index of the request that never saw its reply.
        index: usize,
    },
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::EmptyBurst => write!(f, "empty offload burst"),
            PipelineError::Incomplete { index } => {
                write!(f, "request {index} never completed")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// One request's parameters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OffloadRequest {
    /// When the LWK thread issues the call.
    pub issued_at: Cycles,
    /// Linux-side service time of the call itself.
    pub service: Cycles,
    /// Scheduling delay before the proxy first runs for this request.
    pub wake_delay: Cycles,
}

/// Pipeline events.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Ev {
    /// Request `i` delivered to the delegator (after marshal + IPI).
    Delivered(usize),
    /// Proxy finished servicing request `i`.
    Serviced(usize),
    /// Reply for request `i` arrived back at the LWK.
    Completed(usize),
}

struct PipelineWorld {
    costs: CostModel,
    reqs: Vec<OffloadRequest>,
    /// When the proxy becomes free.
    proxy_free_at: Cycles,
    /// Completion instant of each request, indexed by request; `None`
    /// until its reply arrives (and forever, if the request was lost).
    completions: Vec<Option<Cycles>>,
}

impl World for PipelineWorld {
    type Event = Ev;

    fn handle(&mut self, now: Cycles, ev: Ev, q: &mut EventQueue<Ev>) {
        match ev {
            Ev::Delivered(i) => {
                let req = self.reqs[i];
                // The proxy serves requests in delivery order; if it is
                // busy, this one waits. A parked proxy pays the wake-up
                // scheduling delay.
                let dispatch = now + self.costs.delegator_dispatch;
                let start = if self.proxy_free_at <= dispatch {
                    dispatch + req.wake_delay + self.costs.proxy_dispatch
                } else {
                    // Already running: it fetches the next request from
                    // the delegator inbox without sleeping.
                    self.proxy_free_at + self.costs.proxy_dispatch
                };
                let done = start + req.service;
                self.proxy_free_at = done;
                q.schedule(done, Ev::Serviced(i));
            }
            Ev::Serviced(i) => {
                q.schedule(
                    now + self.costs.ikc_send + self.costs.ikc_ipi,
                    Ev::Completed(i),
                );
            }
            Ev::Completed(i) => {
                self.completions[i] = Some(now);
            }
        }
    }
}

/// Run a burst of concurrent offloads through the event-driven pipeline;
/// returns each request's completion instant. Errors instead of panicking
/// when a request never completes or the burst is empty.
pub fn run_burst(
    costs: CostModel,
    reqs: &[OffloadRequest],
) -> Result<Vec<Cycles>, PipelineError> {
    let completions = run_burst_faulted(costs, reqs, &mut FaultPlan::disabled())?;
    completions
        .into_iter()
        .enumerate()
        .map(|(index, c)| c.ok_or(PipelineError::Incomplete { index }))
        .collect()
}

/// Like [`run_burst`], but each request's delivery leg is subjected to
/// the fault plan: a dropped (or corrupted — the delegator discards a
/// bad checksum) request never completes and comes back as `None`; a
/// delayed one completes late. There is no retransmission at this layer —
/// the retry loop lives in `NodeRuntime::offload_syscall` — so the caller
/// sees exactly which requests were lost.
pub fn run_burst_faulted(
    costs: CostModel,
    reqs: &[OffloadRequest],
    faults: &mut FaultPlan,
) -> Result<Vec<Option<Cycles>>, PipelineError> {
    if reqs.is_empty() {
        return Err(PipelineError::EmptyBurst);
    }
    // One node's proxy is one partition of the windowed engine. With a
    // single partition there is no cross-partition constraint, so the
    // lookahead is unbounded and the whole burst drains in one window —
    // trace-identical to the retired global-wheel run (the engine's
    // single-partition path is exactly the serial event loop).
    let mut engine = PartitionedEngine::new(
        vec![SoloWorld(PipelineWorld {
            costs,
            reqs: reqs.to_vec(),
            proxy_free_at: Cycles::ZERO,
            completions: vec![None; reqs.len()],
        })],
        Cycles::MAX,
    );
    for (i, r) in reqs.iter().enumerate() {
        let delivery = r.issued_at + costs.lwk_syscall + costs.ikc_send + costs.ikc_ipi;
        match faults.draw_msg_fault("burst-req", i as u64, delivery) {
            MsgFault::Drop | MsgFault::Corrupt => {}
            MsgFault::Delay(d) => {
                engine.queue_mut(0).schedule(delivery + d, Ev::Delivered(i));
            }
            MsgFault::None => {
                engine.queue_mut(0).schedule(delivery, Ev::Delivered(i));
            }
        }
    }
    engine.run_to_completion(1);
    let world = engine.into_worlds().pop().expect("one partition");
    Ok(world.0.completions)
}

/// The closed-form single-request composition (what
/// `NodeRuntime::offload_syscall` charges) — kept next to the event model
/// so tests can assert they agree.
pub fn single_request_latency(costs: &CostModel, req: &OffloadRequest) -> Cycles {
    costs.lwk_syscall
        + costs.ikc_send
        + costs.ikc_ipi
        + costs.delegator_dispatch
        + req.wake_delay
        + costs.proxy_dispatch
        + req.service
        + costs.ikc_send
        + costs.ikc_ipi
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(at_us: u64, service_us: u64) -> OffloadRequest {
        OffloadRequest {
            issued_at: Cycles::from_us(at_us),
            service: Cycles::from_us(service_us),
            wake_delay: Cycles::from_ns(500),
        }
    }

    #[test]
    fn event_model_matches_closed_form_for_one_request() -> Result<(), PipelineError> {
        let costs = CostModel::default();
        let r = req(10, 3);
        let done = run_burst(costs, &[r])?[0];
        assert_eq!(done, r.issued_at + single_request_latency(&costs, &r));
        Ok(())
    }

    #[test]
    fn concurrent_requests_serialize_at_the_proxy() -> Result<(), PipelineError> {
        let costs = CostModel::default();
        // Four threads offload at the same instant, 5 us service each.
        let burst: Vec<OffloadRequest> = (0..4).map(|_| req(10, 5)).collect();
        let done = run_burst(costs, &burst)?;
        // First request pays the normal latency...
        let mut sorted = done.clone();
        sorted.sort();
        let first = sorted[0];
        assert_eq!(
            first,
            burst[0].issued_at + single_request_latency(&costs, &burst[0])
        );
        // ...each subsequent one queues behind ~one more service time.
        for w in sorted.windows(2) {
            let gap = w[1] - w[0];
            assert!(
                gap >= Cycles::from_us(5),
                "requests must not overlap at the proxy: gap {gap}"
            );
            assert!(gap < Cycles::from_us(7), "but only queueing separates them: {gap}");
        }
        // Total burst completion ~ 4 service times, not 1.
        let last = sorted[sorted.len() - 1];
        assert!(last - first >= Cycles::from_us(15));
        Ok(())
    }

    #[test]
    fn spaced_requests_do_not_queue() -> Result<(), PipelineError> {
        let costs = CostModel::default();
        // 100 us apart with 5 us service: no queueing.
        let burst: Vec<OffloadRequest> =
            (0..4).map(|i| req(10 + i * 100, 5)).collect();
        let done = run_burst(costs, &burst)?;
        for (r, d) in burst.iter().zip(&done) {
            assert_eq!(*d, r.issued_at + single_request_latency(&costs, r));
        }
        Ok(())
    }

    #[test]
    fn busy_proxy_skips_the_wake_delay() -> Result<(), PipelineError> {
        let costs = CostModel::default();
        // Second request arrives while the proxy still works on the first:
        // it must NOT pay another wake delay (the proxy just fetches it).
        let slow_wake = OffloadRequest {
            issued_at: Cycles::from_us(10),
            service: Cycles::from_us(50),
            wake_delay: Cycles::from_us(20),
        };
        let follow = OffloadRequest {
            issued_at: Cycles::from_us(15),
            service: Cycles::from_us(1),
            wake_delay: Cycles::from_us(20), // would apply only if parked
        };
        let done = run_burst(costs, &[slow_wake, follow])?;
        let first_done = done[0];
        // The follow-up completes right after the first, without +20us.
        let delta = done[1] - first_done;
        assert!(
            delta < Cycles::from_us(5),
            "busy-proxy fetch should skip the wake delay: {delta}"
        );
        Ok(())
    }

    #[test]
    fn empty_burst_is_an_error_not_a_panic() {
        assert_eq!(
            run_burst(CostModel::default(), &[]),
            Err(PipelineError::EmptyBurst)
        );
    }

    #[test]
    fn dropped_request_surfaces_as_incomplete() {
        use simcore::fault::FaultConfig;
        use simcore::StreamRng;
        let costs = CostModel::default();
        let burst: Vec<OffloadRequest> = (0..8).map(|i| req(10 + i * 50, 5)).collect();
        let mut plan = FaultPlan::new(
            FaultConfig::message_loss(0.5),
            StreamRng::root(42).stream("pipeline-fault", 0),
        );
        let done = run_burst_faulted(costs, &burst, &mut plan).expect("nonempty burst");
        let lost = done.iter().filter(|c| c.is_none()).count();
        assert_eq!(
            lost as u64,
            plan.counts().0,
            "every drawn drop is a missing completion"
        );
        assert!(lost > 0, "p=0.5 over 8 requests: at least one drop expected");
        // The survivors still obey the closed form (no queueing at 50us spacing).
        for (r, d) in burst.iter().zip(&done) {
            if let Some(d) = d {
                assert_eq!(*d, r.issued_at + single_request_latency(&costs, r));
            }
        }
    }
}
