//! Repetition running and statistics.
//!
//! The paper runs every measurement 15 times and reports average plus
//! variation. Repetitions are independent simulations with derived seeds,
//! executed on the bounded work-stealing pool ([`simcore::par`] — each
//! repetition owns its whole cluster, so there is no shared mutable
//! state and the runs are embarrassingly parallel). Figure binaries
//! flatten their *entire* task grid (collective × OS × run, …) into one
//! pool submission via [`simcore::par::parallel_map`]; this wrapper is
//! the single-dimension convenience used by tests and callers that only
//! sweep repetitions.

use simcore::Summary;

/// Number of repetitions the paper uses.
pub const PAPER_RUNS: usize = 15;

/// Run `n` independent repetitions of `f(run_index)` on the shared task
/// pool and collect results in index order. `f` receives the repetition
/// index and must derive its seed from it for determinism; the output is
/// identical at any `HLWK_THREADS` setting.
pub fn parallel_runs<T: Send, F: Fn(usize) -> T + Sync>(n: usize, f: F) -> Vec<T> {
    simcore::par::parallel_map(n, f)
}

/// Statistics over repeated scalar measurements (one per run).
#[derive(Clone, Debug)]
pub struct RunStats {
    /// Raw per-run values.
    pub values: Vec<f64>,
    /// Summary statistics.
    pub summary: Summary,
}

impl RunStats {
    /// Summarize per-run values.
    pub fn new(values: Vec<f64>) -> RunStats {
        let summary = Summary::from_samples(&values);
        RunStats { values, summary }
    }

    /// Mean.
    pub fn mean(&self) -> f64 {
        self.summary.mean
    }

    /// The paper's variation metric, percent.
    pub fn max_variation_pct(&self) -> f64 {
        self.summary.max_variation_pct()
    }
}

/// Derive a per-run seed from a base seed (keeps runs decorrelated while
/// reproducible).
pub fn run_seed(base: u64, run: usize) -> u64 {
    base ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(run as u64 + 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_runs_preserve_order() {
        let out = parallel_runs(32, |i| i * 2);
        assert_eq!(out, (0..32).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_serial() {
        let f = |i: usize| (i as f64).sqrt() * 3.0;
        let par = parallel_runs(10, f);
        let ser: Vec<f64> = (0..10).map(f).collect();
        assert_eq!(par, ser);
    }

    #[test]
    fn run_stats_metrics() {
        let s = RunStats::new(vec![10.0, 11.0, 12.0]);
        assert!((s.mean() - 11.0).abs() < 1e-12);
        assert!((s.max_variation_pct() - 2.0 / 11.0 * 100.0).abs() < 1e-9);
    }

    #[test]
    fn run_seeds_distinct() {
        let seeds: std::collections::HashSet<u64> =
            (0..100).map(|i| run_seed(42, i)).collect();
        assert_eq!(seeds.len(), 100);
        assert_eq!(run_seed(42, 5), run_seed(42, 5));
    }
}
