//! Elastic multi-tenant partition manager (DESIGN.md D15).
//!
//! The paper's headline mechanism — IHK reserving and releasing CPUs
//! *without a reboot* — is exercised here dynamically: a latency-
//! sensitive request stream serves on the Linux cores while gang-
//! scheduled MPI jobs run on the LWK cores, and an SLO controller
//! resizes the boundary between them mid-run through the real
//! reserve/release path. Every released core walks the full drain
//! protocol (offload drain, thread migration, software-TLB shootdown,
//! per-CPU frame-cache drain, delegator-slab reclaim) and is audited
//! before Linux gets it back.
//!
//! Three cooperating pieces:
//!
//! * **Serving plane** — an open-loop arrival process (deterministic
//!   per-window RNG streams, so resize history never perturbs the
//!   draws) over a pool of Linux serving cores modeled as earliest-
//!   free servers. Admission is bounded: a request whose queue delay
//!   would exceed [`TenancyConfig::max_queue_delay`] is shed, which
//!   caps tail latency and guarantees the run terminates under any
//!   overload factor. Per-window p50/p99/p999 come from
//!   [`simcore::hist::LogHistogram`], whose exact-tail reservoir makes
//!   every reported percentile exact at serving window sizes.
//! * **Batch plane** — a priority job queue of [`workloads::miniapps`]
//!   gangs stepping through [`Cluster::step_miniapp`] (so they run on
//!   the partitioned engine, byte-identical at any
//!   `HLWK_ENGINE_THREADS`). Preemption reuses the asynchronous
//!   hierarchical checkpoint cost model: jobs snapshot every
//!   `local_interval` iterations, eviction rolls back to the last
//!   snapshot, and resumption charges restore + rebuild. A per-
//!   iteration digest fold proves resumed jobs produce byte-identical
//!   results.
//! * **SLO controller** — steers on the previous window's exact p99
//!   with a hysteresis dead band and a cooldown so it never thrashes:
//!   sustained breach shrinks the LWK by one core per node (serving
//!   gains a server per node), sustained calm with batch demand grows
//!   it back. A storm schedule (`storm_period`) overrides the SLO loop
//!   to force continuous resize cycles for the soak.

use crate::recovery::{HierarchicalCkpt, RecoveryCosts};
use crate::sim::Cluster;
use simcore::hist::LogHistogram;
use simcore::{Cycles, StreamRng};
use workloads::miniapps::{MiniApp, THREADS_PER_NODE};

/// One gang job for the batch plane.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Display name.
    pub name: &'static str,
    /// Larger wins; a higher-priority arrival preempts the running job.
    pub priority: u8,
    /// Serving window at which the job enters the queue.
    pub arrive_window: u32,
    /// Minimum LWK width (cores per node) the gang will run at; a
    /// shrink below this evicts the job to the queue.
    pub min_width: usize,
    /// The BSP program (iterations + per-iteration work and comm).
    pub app: MiniApp,
}

/// Scenario knobs for one tenancy run.
#[derive(Clone, Debug)]
pub struct TenancyConfig {
    /// Serving window length (metrics + controller period).
    pub window: Cycles,
    /// Number of windows in the run.
    pub windows: u32,
    /// Mean request interarrival at nominal load.
    pub interarrival: Cycles,
    /// Admission-rate multiplier (2.0 = the overload scenario).
    pub overload_x: f64,
    /// Mean request service time on a Linux serving core.
    pub service: Cycles,
    /// Baseline Linux serving cores per node (before elastic gains).
    pub base_serve_cores: u32,
    /// SLO target for window p99 (breach band upper edge).
    pub slo_p99: Cycles,
    /// Calm band: p99 below `slo_p99 * hyst_lo_frac` counts as calm.
    /// Between the bands neither streak advances — the dead band that
    /// keeps the controller from thrashing.
    pub hyst_lo_frac: f64,
    /// Consecutive breach windows before a shrink.
    pub breach_windows: u32,
    /// Consecutive calm windows before a grow.
    pub calm_windows: u32,
    /// Windows after any resize during which the controller holds.
    pub cooldown_windows: u32,
    /// Floor for the online LWK width (cores per node).
    pub lwk_min: usize,
    /// Queue-delay bound: arrivals that would wait longer are shed.
    pub max_queue_delay: Cycles,
    /// `Some(k)`: ignore the SLO loop and force one resize every `k`
    /// windows, alternating shrink/grow (the resize-storm soak).
    pub storm_period: Option<u32>,
    /// Batch jobs.
    pub jobs: Vec<JobSpec>,
    /// Master seed for the arrival/service jitter streams.
    pub seed: u64,
}

impl TenancyConfig {
    /// A serving-heavy default over `windows` windows: 10 ms windows,
    /// two serving cores per node, ~56% serving utilization at nominal
    /// load (so 2x admission-rate overload saturates the pool), and an
    /// SLO sized so the idle profile sits inside the dead band while a
    /// saturated pool (p99 pinned at the shed ceiling) breaches it.
    pub fn serving_default(windows: u32, seed: u64) -> TenancyConfig {
        TenancyConfig {
            window: Cycles::from_ms(10),
            windows,
            interarrival: Cycles::from_us(10),
            overload_x: 1.0,
            service: Cycles::from_us(45),
            base_serve_cores: 2,
            slo_p99: Cycles::from_us(65),
            hyst_lo_frac: 0.75,
            // Idle windows spike past the SLO now and then (open-loop
            // bursts); only a *pinned* p99 — a saturated pool — holds a
            // breach this many windows in a row.
            breach_windows: 6,
            calm_windows: 8,
            cooldown_windows: 6,
            lwk_min: 5,
            max_queue_delay: Cycles::from_us(20),
            storm_period: None,
            jobs: Vec::new(),
            seed,
        }
    }
}

/// What one tenancy run did. Every figure claim reads from here; all
/// times are simulated and deterministic.
#[derive(Clone, Debug, Default)]
pub struct TenancyReport {
    /// Requests generated by the arrival process.
    pub arrivals: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Requests shed at admission (queue-delay bound).
    pub shed: u64,
    /// Median of per-window exact p50s, µs.
    pub p50_us: f64,
    /// Median of per-window exact p99s, µs.
    pub p99_us: f64,
    /// Worst window's exact p99, µs.
    pub worst_p99_us: f64,
    /// Exact run-global p999, µs.
    pub p999_us: f64,
    /// Exact run-global maximum latency, µs.
    pub max_us: f64,
    /// LWK shrink operations (one core released per node each).
    pub shrinks: u32,
    /// LWK grow operations (one core reserved per node each).
    pub grows: u32,
    /// Completed shrink→grow resize cycles.
    pub resize_cycles: u32,
    /// Released cores that passed the reclaim audit (TLB, PCP,
    /// run queue, delegator).
    pub cores_audited: u32,
    /// Job evictions (width loss or higher-priority arrival).
    pub preemptions: u32,
    /// Checkpoint resumptions after eviction.
    pub resumes: u32,
    /// Iterations rolled back and re-executed across all preemptions.
    pub redone_iters: u32,
    /// Jobs that ran to completion.
    pub jobs_done: u32,
    /// Whether every completed job's digest matched its reference fold
    /// (byte-identical result despite preemption).
    pub digests_ok: bool,
    /// Smallest online LWK width seen.
    pub min_width: usize,
    /// Largest online LWK width seen.
    pub max_width: usize,
    /// Width at the end of the run.
    pub final_width: usize,
    /// Whether the batch plane replayed on the partitioned engine.
    pub partitioned: bool,
    /// Arrivals in windows before the first shrink (the whole run if
    /// the partition never resized).
    pub pre_relief_arrivals: u64,
    /// Sheds in windows before the first shrink.
    pub pre_relief_shed: u64,
    /// Exact p999 over windows before the first shrink, µs (0 if that
    /// phase is empty). Under overload this is the degraded tail the
    /// admission bound caps.
    pub pre_relief_p999_us: f64,
    /// Exact p999 over windows after the first shrink, µs (0 if the
    /// partition never resized). Under overload this shows the elastic
    /// relief restoring the tail.
    pub post_relief_p999_us: f64,
}

/// FNV-1a fold of one iteration index into a job digest. Stepping,
/// rolling back, and re-stepping an iteration folds the same values in
/// the same order, so a preempted-and-resumed job reproduces the
/// uninterrupted digest exactly.
fn fold_iter(digest: u64, iter: u32) -> u64 {
    let mut d = digest ^ 0xcbf2_9ce4_8422_2325;
    for byte in iter.to_le_bytes() {
        d ^= u64::from(byte);
        d = d.wrapping_mul(0x1_0000_01b3);
    }
    d
}

/// Reference digest: the fold over an uninterrupted run.
fn reference_digest(iterations: u32) -> u64 {
    (0..iterations).fold(0, fold_iter)
}

/// In-flight state of one batch job.
#[derive(Clone, Debug)]
struct JobRun {
    spec: usize,
    next_iter: u32,
    digest: u64,
    /// Last committed snapshot: (iteration, digest). Eviction rolls
    /// back here.
    snap: (u32, u64),
    clocks: Vec<Cycles>,
    /// Set after an eviction; the next dispatch charges restore costs.
    evicted: bool,
}

impl JobRun {
    fn fresh(spec: usize, nodes: usize) -> JobRun {
        JobRun {
            spec,
            next_iter: 0,
            digest: 0,
            snap: (0, 0),
            clocks: vec![Cycles::ZERO; nodes],
            evicted: false,
        }
    }

    /// Roll back to the last snapshot and park. Returns the number of
    /// iterations that will be re-executed.
    fn evict(&mut self) -> u32 {
        let redone = self.next_iter - self.snap.0;
        self.next_iter = self.snap.0;
        self.digest = self.snap.1;
        self.evicted = true;
        redone
    }
}

/// The serving pool: per-server next-free instants.
struct ServePool {
    next_free: Vec<Cycles>,
}

impl ServePool {
    fn new(servers: usize) -> ServePool {
        ServePool {
            next_free: vec![Cycles::ZERO; servers],
        }
    }

    /// Earliest-free server (deterministic tie-break: lowest index).
    fn argmin(&self) -> usize {
        let mut best = 0;
        for i in 1..self.next_free.len() {
            if self.next_free[i] < self.next_free[best] {
                best = i;
            }
        }
        best
    }

    /// Add `k` idle servers (an elastic shrink gave Linux cores back).
    fn widen(&mut self, k: usize, now: Cycles) {
        for _ in 0..k {
            self.next_free.push(now);
        }
    }

    /// Remove the `k` least-loaded servers, transferring their residual
    /// busy time to the survivors so no admitted work is lost (work-
    /// conserving narrow).
    fn narrow(&mut self, k: usize, now: Cycles) {
        for _ in 0..k {
            if self.next_free.len() <= 1 {
                break;
            }
            let victim = self.argmin();
            let residual = self.next_free.swap_remove(victim).saturating_sub(now);
            if residual > Cycles::ZERO {
                let heir = self.argmin();
                self.next_free[heir] = self.next_free[heir].max(now) + residual;
            }
        }
    }
}

/// Run the elastic multi-tenant scenario on `cluster`.
///
/// The cluster must be a McKernel-variant build; the batch plane steps
/// its jobs across *all* nodes (one rank per node) while the serving
/// plane runs on the Linux cores of the same nodes.
pub fn run_tenancy(cluster: &mut Cluster, cfg: &TenancyConfig) -> TenancyReport {
    let nodes = cluster.host.nodes.len();
    let rng = StreamRng::root(cfg.seed);
    let costs = RecoveryCosts::default();
    let ckpt = HierarchicalCkpt::paper_default();
    let width0 = cluster.lwk_width();
    let identity: Vec<usize> = (0..nodes).collect();

    let mut report = TenancyReport {
        digests_ok: true,
        min_width: width0,
        max_width: width0,
        ..TenancyReport::default()
    };

    let mut pool = ServePool::new(nodes * cfg.base_serve_cores as usize);
    let mut global = LogHistogram::new();
    // Tail split around the first elastic shrink: degradation before,
    // relief after.
    let mut pre_hist = LogHistogram::new();
    let mut post_hist = LogHistogram::new();
    let mut window_p50s: Vec<u64> = Vec::with_capacity(cfg.windows as usize);
    let mut window_p99s: Vec<u64> = Vec::with_capacity(cfg.windows as usize);

    // Batch plane: parked jobs hold their rollback state; `running` is
    // the single gang the LWK cores execute.
    let mut parked: Vec<JobRun> = Vec::new();
    let mut running: Option<JobRun> = None;

    // Controller state.
    let mut breach_streak = 0u32;
    let mut calm_streak = 0u32;
    let mut cooldown = 0u32;
    let mut prev_p99: Option<u64> = None;
    let mut storm_shrink_next = true;

    for w in 0..cfg.windows {
        let window_start = cfg.window.scale(f64::from(w));
        let window_end = window_start + cfg.window;
        let mut width = cluster.lwk_width();

        // --- Batch arrivals enter the parked queue. ---
        for (si, spec) in cfg.jobs.iter().enumerate() {
            if spec.arrive_window == w {
                parked.push(JobRun::fresh(si, nodes));
            }
        }

        // --- Controller: decide on last window's evidence. ---
        let mut want_shrink = false;
        let mut want_grow = false;
        if let Some(period) = cfg.storm_period {
            if period > 0 && w > 0 && w % period == 0 {
                if storm_shrink_next && width > cfg.lwk_min {
                    want_shrink = true;
                    storm_shrink_next = false;
                } else if !storm_shrink_next && width < width0 {
                    want_grow = true;
                    storm_shrink_next = true;
                }
            }
        } else {
            cooldown = cooldown.saturating_sub(1);
            if let Some(p99) = prev_p99 {
                // Window p99s are recorded in nanoseconds; compare in ns.
                if p99 > cfg.slo_p99.as_ns() {
                    breach_streak += 1;
                    calm_streak = 0;
                } else if p99 < cfg.slo_p99.scale(cfg.hyst_lo_frac).as_ns() {
                    calm_streak += 1;
                    breach_streak = 0;
                } else {
                    // Dead band: neither streak advances, so a p99
                    // hovering around the SLO cannot thrash the
                    // partition boundary.
                    breach_streak = 0;
                    calm_streak = 0;
                }
            }
            let batch_demand = running.is_some() || !parked.is_empty();
            if breach_streak >= cfg.breach_windows && cooldown == 0 && width > cfg.lwk_min {
                want_shrink = true;
            } else if calm_streak >= cfg.calm_windows
                && cooldown == 0
                && width < width0
                && batch_demand
            {
                want_grow = true;
            }
        }

        if want_shrink {
            // A gang that cannot run at the narrower width is evicted
            // first (rollback to its last snapshot).
            let must_evict = running
                .as_ref()
                .is_some_and(|j| width - 1 < cfg.jobs[j.spec].min_width);
            if must_evict {
                let mut job = running.take().expect("checked");
                report.preemptions += 1;
                report.redone_iters += job.evict();
                parked.push(job);
            }
            match cluster.shrink_lwk_all() {
                Ok(released) => {
                    report.shrinks += 1;
                    report.cores_audited += released.len() as u32;
                    pool.widen(nodes, window_start);
                    width = cluster.lwk_width();
                    breach_streak = 0;
                    cooldown = cfg.cooldown_windows;
                }
                Err(_) => {
                    // Offloads in flight (CoreBusy): hold, retry next
                    // window once the delegator drains.
                    if cfg.storm_period.is_some() {
                        storm_shrink_next = true;
                    }
                }
            }
        } else if want_grow {
            cluster
                .grow_lwk_all()
                .expect("grow of a previously released core");
            report.grows += 1;
            if report.resize_cycles < report.shrinks {
                report.resize_cycles += 1;
            }
            pool.narrow(nodes, window_start);
            width = cluster.lwk_width();
            calm_streak = 0;
            cooldown = cfg.cooldown_windows;
        }
        report.min_width = report.min_width.min(width);
        report.max_width = report.max_width.max(width);

        // --- Priority preemption: a higher-priority parked job evicts
        // the running gang (checkpoint rollback), taking the LWK. ---
        if let Some(job) = running.as_ref() {
            let cur = cfg.jobs[job.spec].priority;
            let challenger = best_parked(&parked, &cfg.jobs, width);
            if challenger.is_some_and(|i| cfg.jobs[parked[i].spec].priority > cur) {
                let mut job = running.take().expect("checked");
                report.preemptions += 1;
                report.redone_iters += job.evict();
                parked.push(job);
            }
        }

        // --- Dispatch: highest-priority parked job that fits. ---
        if running.is_none() {
            if let Some(i) = best_parked(&parked, &cfg.jobs, width) {
                let mut job = parked.swap_remove(i);
                let mut start_at = window_start;
                if job.evicted {
                    // Checkpoint restore + communicator rebuild, as in
                    // the recovery layer's restart path.
                    start_at += costs.ckpt_restore + costs.rebuild;
                    report.resumes += 1;
                    job.evicted = false;
                }
                job.clocks = vec![start_at; nodes];
                running = Some(job);
            }
        }

        // --- Step the running gang to the window edge. ---
        let mut job_active = false;
        if let Some(job) = running.as_mut() {
            let spec = &cfg.jobs[job.spec];
            // Gang folding: 8 threads over `width` cores serialize into
            // ceil(8/width) waves.
            let waves = (THREADS_PER_NODE as usize).div_ceil(width) as f64;
            let quantum = spec.app.thread_quantum(nodes).scale(waves);
            job_active = true;
            while job.next_iter < spec.app.iterations
                && job.clocks.iter().max().copied().expect("ranks") < window_end
            {
                cluster
                    .step_miniapp(&spec.app, quantum, &identity, &mut job.clocks)
                    .expect("fault-free tenancy run");
                job.digest = fold_iter(job.digest, job.next_iter);
                job.next_iter += 1;
                if job.next_iter % ckpt.local_interval == 0 {
                    // Asynchronous local snapshot: only the CoW fork
                    // blocks the gang; drain and buddy copy overlap
                    // the next iterations.
                    for c in job.clocks.iter_mut() {
                        *c += costs.local_snapshot;
                    }
                    job.snap = (job.next_iter, job.digest);
                }
            }
            if job.next_iter >= spec.app.iterations {
                report.jobs_done += 1;
                if job.digest != reference_digest(spec.app.iterations) {
                    report.digests_ok = false;
                }
                running = None;
            }
        }

        // --- Serving plane: this window's open-loop arrivals. ---
        let mut arr_rng = rng.stream("arr", u64::from(w));
        let mut svc_rng = rng.stream("svc", u64::from(w));
        let mean_gap_ns = cfg.interarrival.as_ns() as f64 / cfg.overload_x;
        let stretch = if job_active { 1.12 } else { 1.0 };
        let mut hist = LogHistogram::new();
        let mut t = window_start;
        loop {
            t += Cycles::from_ns(arr_rng.exp_mean(mean_gap_ns) as u64);
            if t >= window_end {
                break;
            }
            report.arrivals += 1;
            let si = pool.argmin();
            let start = pool.next_free[si].max(t);
            if start.saturating_sub(t) > cfg.max_queue_delay {
                // Bounded admission: shed rather than queue without
                // limit, so the tail hits this ceiling (p999 degrades)
                // long before the median moves.
                report.shed += 1;
                continue;
            }
            // Uniform service jitter in [0.75, 1.25) of the mean,
            // stretched while a gang computes beside the servers.
            let svc = cfg.service.scale((0.75 + 0.5 * svc_rng.uniform()) * stretch);
            pool.next_free[si] = start + svc;
            report.completed += 1;
            hist.record((start + svc).saturating_sub(t).as_ns());
        }

        // --- Window metrics (exact at serving window sizes). ---
        if hist.total() > 0 {
            window_p50s.push(hist.percentile(0.50).expect("non-empty"));
            let p99 = hist.percentile(0.99).expect("non-empty");
            window_p99s.push(p99);
            prev_p99 = Some(p99);
        }
        global.merge(&hist);
        if report.shrinks == 0 {
            pre_hist.merge(&hist);
            report.pre_relief_arrivals = report.arrivals;
            report.pre_relief_shed = report.shed;
        } else {
            post_hist.merge(&hist);
        }
    }

    report.final_width = cluster.lwk_width();
    report.partitioned = cluster.fabric.partition_view().is_some();
    report.p50_us = median_us(&mut window_p50s);
    report.worst_p99_us = window_p99s.iter().max().map_or(0.0, |&v| v as f64 / 1000.0);
    report.p99_us = median_us(&mut window_p99s);
    report.p999_us = global.percentile(0.999).map_or(0.0, |v| v as f64 / 1000.0);
    report.max_us = global.max().map_or(0.0, |v| v as f64 / 1000.0);
    report.pre_relief_p999_us = pre_hist.percentile(0.999).map_or(0.0, |v| v as f64 / 1000.0);
    report.post_relief_p999_us = post_hist.percentile(0.999).map_or(0.0, |v| v as f64 / 1000.0);
    report
}

/// Index into `parked` of the highest-priority job that fits `width`;
/// FIFO among equal priorities (stable: lowest parked index wins).
fn best_parked(parked: &[JobRun], jobs: &[JobSpec], width: usize) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (i, job) in parked.iter().enumerate() {
        if jobs[job.spec].min_width > width {
            continue;
        }
        match best {
            None => best = Some(i),
            Some(b) if jobs[job.spec].priority > jobs[parked[b].spec].priority => best = Some(i),
            Some(_) => {}
        }
    }
    best
}

fn median_us(samples: &mut [u64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_unstable();
    samples[(samples.len() - 1) / 2] as f64 / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ClusterConfig, OsVariant};

    fn tiny_job(priority: u8, arrive_window: u32, iterations: u32) -> JobSpec {
        JobSpec {
            name: "tiny",
            priority,
            arrive_window,
            min_width: 9,
            app: MiniApp {
                iterations,
                work_per_iter: Cycles::from_ms(8),
                comm: workloads::miniapps::IterComm {
                    allreduces: vec![8],
                    allgathers: vec![],
                    halo_bytes: Some(4 << 10),
                },
                ..MiniApp::hpccg()
            },
        }
    }

    fn build(nodes: u32, seed: u64) -> Cluster {
        let mut cfg = ClusterConfig::paper(OsVariant::McKernel)
            .with_nodes(nodes)
            .with_seed(seed);
        cfg.horizon_secs = 30;
        Cluster::build(cfg)
    }

    #[test]
    fn digest_fold_is_order_exact() {
        // Re-stepping after a rollback reproduces the reference fold.
        let d_ref = reference_digest(7);
        let mut d = 0;
        for i in 0..4 {
            d = fold_iter(d, i);
        }
        let snap = d; // snapshot at iter 4
        let _evicted_midway = fold_iter(fold_iter(d, 4), 5);
        d = snap; // rollback
        for i in 4..7 {
            d = fold_iter(d, i);
        }
        assert_eq!(d, d_ref);
    }

    #[test]
    fn pool_narrow_is_work_conserving() {
        let mut pool = ServePool::new(3);
        let now = Cycles::from_ms(1);
        pool.next_free = vec![now + Cycles::from_us(10), now, now + Cycles::from_us(50)];
        let busy_before: u64 = pool
            .next_free
            .iter()
            .map(|nf| nf.saturating_sub(now).raw())
            .sum();
        pool.narrow(2, now);
        assert_eq!(pool.next_free.len(), 1);
        let busy_after: u64 = pool
            .next_free
            .iter()
            .map(|nf| nf.saturating_sub(now).raw())
            .sum();
        assert_eq!(busy_before, busy_after, "residual work transferred");
    }

    #[test]
    fn conservation_and_termination_under_overload() {
        let mut c = build(2, 11);
        let mut cfg = TenancyConfig::serving_default(6, 11);
        cfg.overload_x = 2.0;
        let rep = run_tenancy(&mut c, &cfg);
        assert_eq!(rep.arrivals, rep.completed + rep.shed, "conservation");
        assert!(rep.shed > 0, "2x overload must shed");
        assert!(rep.arrivals > 0);
    }

    #[test]
    fn storm_preempts_resumes_and_finishes_the_job() {
        let mut c = build(2, 12);
        let mut cfg = TenancyConfig::serving_default(40, 12);
        cfg.storm_period = Some(1);
        cfg.lwk_min = 8;
        cfg.jobs = vec![tiny_job(1, 0, 40)];
        let rep = run_tenancy(&mut c, &cfg);
        assert!(rep.shrinks >= 10, "storm must resize continuously");
        assert_eq!(rep.cores_audited, rep.shrinks * 2, "every release audited");
        assert!(rep.preemptions >= 1, "width loss must evict the gang");
        assert!(rep.resumes >= 1);
        assert_eq!(rep.jobs_done, 1, "job survives the storm");
        assert!(rep.digests_ok, "preempted job must be byte-identical");
        assert_eq!(rep.arrivals, rep.completed + rep.shed);
        assert!(rep.shrinks - rep.grows <= 1, "alternation stays balanced");
        assert!(rep.final_width >= cfg.lwk_min);
    }

    #[test]
    fn priority_preemption_runs_high_first() {
        let mut c = build(2, 13);
        let mut cfg = TenancyConfig::serving_default(60, 13);
        // Pin the width: the 2-node test pool is saturated, and an SLO
        // shrink below the jobs' min_width would park them forever —
        // this test isolates the priority-preemption path.
        cfg.lwk_min = 9;
        cfg.jobs = vec![tiny_job(1, 0, 60), tiny_job(5, 2, 4)];
        let rep = run_tenancy(&mut c, &cfg);
        assert!(rep.preemptions >= 1, "high priority must evict low");
        assert!(rep.resumes >= 1, "low resumes after high completes");
        assert_eq!(rep.jobs_done, 2);
        assert!(rep.digests_ok, "rollback + re-execution is byte-identical");
    }
}
